(* snitchc: the command-line driver of the micro-kernel compiler.

   snitchc list                         -- show the kernel suite (Table 1)
   snitchc compile -k matmul -n 1 -m 5 -K 200 [--flow ours] [--print-ir]
   snitchc run     -k matmul -n 1 -m 5 -K 200 [--flow ours]
   snitchc ablate  -k matmul -n 1 -m 5 -K 200  -- Table 3-style ablation *)

open Cmdliner

let flow_conv =
  let parse = function
    | "ours" -> Ok Mlc_transforms.Pipeline.ours
    | "mlir" -> Ok Mlc_transforms.Pipeline.mlir
    | "clang" -> Ok Mlc_transforms.Pipeline.clang
    | "baseline" -> Ok Mlc_transforms.Pipeline.baseline
    | s -> Error (`Msg (Printf.sprintf "unknown flow %S" s))
  in
  let print fmt _ = Format.pp_print_string fmt "<flow>" in
  Arg.conv (parse, print)

let kernel_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:
          (Printf.sprintf "Kernel to process: one of %s."
             (String.concat ", " Mlc_kernels.Registry.short_names)))

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Rows.")
let m_arg = Arg.(value & opt int 16 & info [ "m" ] ~docv:"M" ~doc:"Columns.")

let k_arg =
  Arg.(value & opt int 16 & info [ "K" ] ~docv:"K" ~doc:"Inner dimension (matmul).")

let flow_arg =
  Arg.(
    value
    & opt flow_conv Mlc_transforms.Pipeline.ours
    & info [ "flow" ] ~docv:"FLOW"
        ~doc:"Compilation flow: ours, mlir, clang or baseline.")

let spec_of kernel n m k =
  match Mlc_kernels.Registry.by_short_name kernel with
  | Some entry -> entry.Mlc_kernels.Registry.instantiate ~n ~m ~k ()
  | None ->
    Printf.eprintf "unknown kernel %S\n" kernel;
    exit 2

let list_cmd =
  let run () =
    Printf.printf "%-14s %-50s %-14s %s\n" "Kernel" "Characteristics"
      "Input Shapes" "FLOPs";
    List.iter
      (fun (e : Mlc_kernels.Registry.entry) ->
        Printf.printf "%-14s %-50s %-14s %s\n" e.name
          (String.concat ", " e.characteristics)
          e.input_shapes e.flops_formula)
      Mlc_kernels.Registry.table1
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Show the kernel suite (paper Table 1).")
    Term.(const run $ const ())

let compile_cmd =
  let print_ir =
    Arg.(value & flag & info [ "print-ir" ] ~doc:"Print the IR after every pass.")
  in
  let pretty =
    Arg.(
      value & flag
      & info [ "pretty" ]
          ~doc:
            "Print the final register-allocated IR in readable structured              form (Figure 6 style) instead of assembly.")
  in
  let run kernel n m k flags print_ir pretty =
    let spec = spec_of kernel n m k in
    let m_ = spec.Mlc_kernels.Builders.build () in
    if pretty then begin
      Mlc_ir.Pass.run m_ (Mlc_transforms.Pipeline.passes flags);
      let fns =
        Mlc_ir.Ir.collect m_ (fun op ->
            Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn)) fns;
      print_string (Mlc_riscv.Rv_pretty.to_string m_)
    end
    else if print_ir then begin
      let entries =
        Mlc_ir.Pass.run_pipeline ~trace:true m_
          (Mlc_transforms.Pipeline.passes flags)
      in
      List.iter
        (fun (e : Mlc_ir.Pass.trace_entry) ->
          Printf.printf "// ----- after %s -----\n%s\n" e.pass_name e.ir_after)
        entries;
      let fns =
        Mlc_ir.Ir.collect m_ (fun op ->
            Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter
        (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn))
        fns;
      print_string (Mlc_riscv.Asm_emit.emit_module m_)
    end
    else begin
      let result = Mlc_transforms.Pipeline.compile ~flags m_ in
      print_string result.Mlc_transforms.Pipeline.asm
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a kernel to Snitch assembly.")
    Term.(
      const run $ kernel_arg $ n_arg $ m_arg $ k_arg $ flow_arg $ print_ir
      $ pretty)

let print_metrics (spec : Mlc_kernels.Builders.spec) (r : Mlc.Runner.run_result) =
  let m = r.Mlc.Runner.metrics in
  Printf.printf "kernel      : %s\n" spec.Mlc_kernels.Builders.kernel_name;
  Printf.printf "cycles      : %d (lower bound %d)\n" m.Mlc.Runner.cycles
    spec.Mlc_kernels.Builders.min_cycles;
  Printf.printf "FPU util    : %.2f %%\n" m.Mlc.Runner.fpu_util;
  Printf.printf "throughput  : %.2f FLOPs/cycle\n" m.Mlc.Runner.flops_per_cycle;
  Printf.printf "loads/stores: %d / %d\n" m.Mlc.Runner.loads m.Mlc.Runner.stores;
  Printf.printf "freps       : %d\n" m.Mlc.Runner.freps;
  (match r.Mlc.Runner.report with
  | Some rep ->
    Printf.printf "registers   : %d/20 FP, %d/15 integer\n"
      rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
  | None -> ());
  Printf.printf "max |error| : %g (vs reference interpreter)\n"
    r.Mlc.Runner.max_abs_err

let run_cmd =
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the per-instruction issue trace (pc cycle: instruction).")
  in
  let run kernel n m k flags trace =
    let spec = spec_of kernel n m k in
    let r = Mlc.Runner.run ~flags ~trace spec in
    print_metrics spec r;
    if trace then begin
      print_endline "--- instruction trace ---";
      List.iter print_endline r.Mlc.Runner.trace
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Compile a kernel, execute it on the Snitch simulator, validate and \
          report metrics.")
    Term.(const run $ kernel_arg $ n_arg $ m_arg $ k_arg $ flow_arg $ trace_arg)

let ablate_cmd =
  let run kernel n m k =
    Printf.printf "%-22s %5s %5s %7s %7s %6s %5s %9s %10s\n" "Optimizations"
      "FP" "Int" "Loads" "Stores" "FMAdd" "FRep" "Cycles" "Occupancy";
    List.iter
      (fun (name, flags) ->
        let spec = spec_of kernel n m k in
        let r = Mlc.Runner.run ~flags spec in
        let rep = Option.get r.Mlc.Runner.report in
        let st = Option.get r.Mlc.Runner.stats in
        let mt = r.Mlc.Runner.metrics in
        Printf.printf "%-22s %2d/20 %2d/15 %7d %7d %6d %5d %9d %9.2f%%\n" name
          rep.Mlc_regalloc.Allocator.fp_count
          rep.Mlc_regalloc.Allocator.int_count mt.Mlc.Runner.loads
          mt.Mlc.Runner.stores (mt.Mlc.Runner.flop_count / 2)
          st.Mlc_riscv.Asm_emit.frep mt.Mlc.Runner.cycles mt.Mlc.Runner.fpu_util)
      Mlc_transforms.Pipeline.ablation_stages
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Apply the pipeline optimisations cumulatively (paper Table 3).")
    Term.(const run $ kernel_arg $ n_arg $ m_arg $ k_arg)

let lowlevel_cmd =
  let run kernel n m k =
    let spec =
      match kernel with
      | "sum" -> Mlc_kernels.Lowlevel.sum32 ~n ~m ()
      | "relu" -> Mlc_kernels.Lowlevel.relu32 ~n ~m ()
      | "matmul_t" | "matmult" -> Mlc_kernels.Lowlevel.matmul_t32 ~n ~m ~k ()
      | other ->
        Printf.eprintf "no handwritten kernel %S (sum, relu, matmul_t)\n" other;
        exit 2
    in
    let r = Mlc.Runner.run_lowlevel spec in
    let mt = r.Mlc.Runner.metrics in
    print_string r.Mlc.Runner.asm;
    Printf.printf "\ncycles      : %d\n" mt.Mlc.Runner.cycles;
    Printf.printf "FPU util    : %.2f %%\n" mt.Mlc.Runner.fpu_util;
    Printf.printf "throughput  : %.2f FLOPs/cycle (peak %.1f)\n"
      mt.Mlc.Runner.flops_per_cycle spec.Mlc_kernels.Lowlevel.peak_throughput;
    (match r.Mlc.Runner.report with
    | Some rep ->
      Printf.printf "registers   : %d/20 FP, %d/15 integer\n"
        rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
    | None -> ());
    Printf.printf "max |error| : %g (vs lane-exact reference)\n"
      r.Mlc.Runner.max_abs_err
  in
  Cmd.v
    (Cmd.info "lowlevel"
       ~doc:
         "Allocate, emit and run a handwritten assembly-level kernel (paper \
          \xC2\xA74.2; f32 packed SIMD).")
    Term.(const run $ kernel_arg $ n_arg $ m_arg $ k_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for case generation.")
  in
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Number of random cases to check.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"CASE"
          ~doc:
            "Replay a single serialised case (as printed in a mismatch \
             report) through the full oracle matrix instead of generating \
             random ones.")
  in
  let run seed count replay =
    let report_failures frs =
      List.iter
        (fun fr -> Format.printf "%a@." Mlc_fuzz.Fuzz.pp_failure fr)
        frs
    in
    match replay with
    | Some case_str -> (
      match Mlc_fuzz.Fuzz_case.of_string case_str with
      | exception Mlc_fuzz.Fuzz_case.Parse_error m ->
        Printf.eprintf "bad case string: %s\n" m;
        exit 2
      | case -> (
        match Mlc_fuzz.Fuzz.check_one case with
        | None ->
          Printf.printf
            "replay ok: case agrees with the interpreter on all %d configs\n"
            (List.length Mlc_fuzz.Fuzz_oracle.configs)
        | Some fr ->
          report_failures [ fr ];
          exit 1))
    | None ->
      let report =
        Mlc_fuzz.Fuzz.run ~log:print_endline ~seed ~count ()
      in
      if report.Mlc_fuzz.Fuzz.failures = [] then
        Printf.printf
          "fuzz: %d cases x %d configs x 2 sim paths: zero mismatches \
           (seed %d)\n"
          report.Mlc_fuzz.Fuzz.cases report.Mlc_fuzz.Fuzz.configs seed
      else begin
        Printf.printf "fuzz: %d mismatches in %d cases (seed %d)\n"
          (List.length report.Mlc_fuzz.Fuzz.failures)
          report.Mlc_fuzz.Fuzz.cases seed;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random linalg kernels through every \
          pipeline config and both simulator paths, validated bit-for-bit \
          against the reference interpreter.")
    Term.(const run $ seed_arg $ count_arg $ replay_arg)

let main =
  Cmd.group
    (Cmd.info "snitchc" ~version:"1.0.0"
       ~doc:"Multi-level compiler backend for Snitch RISC-V micro-kernels.")
    [ list_cmd; compile_cmd; run_cmd; ablate_cmd; lowlevel_cmd; fuzz_cmd ]

let () = exit (Cmd.eval main)
