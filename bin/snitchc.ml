(* snitchc: the command-line driver of the micro-kernel compiler.

   snitchc list                         -- show the kernel suite (Table 1)
   snitchc compile -k matmul -n 1 -m 5 -K 200 [--flow ours] [--print-ir]
   snitchc run     -k matmul -n 1 -m 5 -K 200 [--flow ours] [--cores 8]
   snitchc ablate  -k matmul -n 1 -m 5 -K 200  -- Table 3-style ablation *)

open Cmdliner

(* Flows keep their name next to the flags so replay commands and
   crash-bundle headers can name the configuration. *)
let flow_conv =
  let parse = function
    | "ours" -> Ok ("ours", Mlc_transforms.Pipeline.ours)
    | "mlir" -> Ok ("mlir", Mlc_transforms.Pipeline.mlir)
    | "clang" -> Ok ("clang", Mlc_transforms.Pipeline.clang)
    | "baseline" -> Ok ("baseline", Mlc_transforms.Pipeline.baseline)
    | s -> Error (`Msg (Printf.sprintf "unknown flow %S" s))
  in
  let print fmt (name, _) = Format.pp_print_string fmt name in
  Arg.conv (parse, print)

(* Backend targets resolve through the Backend registry so the error
   path always lists exactly the linked-in backends. *)
let target_conv =
  let parse s =
    match Mlc_transforms.Backend.by_name s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown target %S (have: %s)" s
             (String.concat ", "
                (List.map
                   (fun (b : Mlc_transforms.Backend.t) ->
                     b.Mlc_transforms.Backend.name)
                   Mlc_transforms.Backend.all))))
  in
  let print fmt (b : Mlc_transforms.Backend.t) =
    Format.pp_print_string fmt b.Mlc_transforms.Backend.name
  in
  Arg.conv (parse, print)

let target_arg =
  Arg.(
    value
    & opt target_conv Mlc_transforms.Backend.snitch
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          (Printf.sprintf
             "Backend target: one of %s. The front half of the pipeline is \
              shared; the target supplies the lowering tail, machine \
              parameters and lint classes."
             (String.concat ", "
                (List.map
                   (fun (b : Mlc_transforms.Backend.t) ->
                     b.Mlc_transforms.Backend.name)
                   Mlc_transforms.Backend.all))))

let kernel_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "k"; "kernel" ] ~docv:"KERNEL"
        ~doc:
          (Printf.sprintf "Kernel to process: one of %s."
             (String.concat ", " Mlc_kernels.Registry.short_names)))

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Rows.")
let m_arg = Arg.(value & opt int 16 & info [ "m" ] ~docv:"M" ~doc:"Columns.")

let k_arg =
  Arg.(value & opt int 16 & info [ "K" ] ~docv:"K" ~doc:"Inner dimension (matmul).")

let flow_arg =
  Arg.(
    value
    & opt flow_conv ("ours", Mlc_transforms.Pipeline.ours)
    & info [ "flow" ] ~docv:"FLOW"
        ~doc:"Compilation flow: ours, mlir, clang or baseline.")

let crash_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "crash-dir" ] ~docv:"DIR"
        ~doc:"Directory crash bundles are written to (default .mlc-crash).")

let set_crash_dir = Option.iter Mlc_diag.Crash_bundle.set_dir

(* Parallelism: 0 (the default) resolves to one worker per core. The
   drivers commit results in submission order, so any job count produces
   byte-identical output. *)
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel drivers (0 = one per core). \
           Output is byte-identical for any job count.")

let resolve_jobs j = if j <= 0 then Mlc_parallel.Pool.default_jobs () else j

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the on-disk tier of the compile-artifact cache under \
           DIR (conventionally .mlc-cache); cached artifacts survive \
           across runs and are invalidated by content hash.")

let set_cache_dir = Mlc_parallel.Cache.set_disk_dir

(* Opt-in disk-cache size cap, enforced oldest-first by the cache's own
   amortised sweep. 0 (the default) leaves the tier unbounded. *)
let cache_cap_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-cap-mb" ] ~docv:"MB"
        ~doc:
          "Bound the on-disk compile-artifact cache at $(docv) megabytes; \
           the oldest entries are evicted first (0 = unbounded).")

let set_cache_cap mb =
  if mb > 0 then
    Mlc_parallel.Cache.set_eviction ~max_bytes:(mb * 1024 * 1024) ()

let spec_of kernel n m k =
  match Mlc_kernels.Registry.by_short_name kernel with
  | Some entry -> entry.Mlc_kernels.Registry.instantiate ~n ~m ~k ()
  | None ->
    Printf.eprintf "unknown kernel %S\n" kernel;
    exit 2

let list_cmd =
  let run () =
    Printf.printf "%-14s %-50s %-14s %s\n" "Kernel" "Characteristics"
      "Input Shapes" "FLOPs";
    List.iter
      (fun (e : Mlc_kernels.Registry.entry) ->
        Printf.printf "%-14s %-50s %-14s %s\n" e.name
          (String.concat ", " e.characteristics)
          e.input_shapes e.flops_formula)
      Mlc_kernels.Registry.table1
  in
  Cmd.v
    (Cmd.info "list" ~doc:"Show the kernel suite (paper Table 1).")
    Term.(const run $ const ())

let compile_cmd =
  let print_ir =
    Arg.(value & flag & info [ "print-ir" ] ~doc:"Print the IR after every pass.")
  in
  let pretty =
    Arg.(
      value & flag
      & info [ "pretty" ]
          ~doc:
            "Print the final register-allocated IR in readable structured              form (Figure 6 style) instead of assembly.")
  in
  let emit_generic =
    Arg.(
      value & flag
      & info [ "emit-generic" ]
          ~doc:
            "Print the initial linalg-level module in generic textual form \
             (re-parseable by compile-ir) instead of compiling it.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the machine-code sanitizer on the emitted instruction \
             stream and fail on any error-severity finding.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Run the IR static analyses (structural verifier, \
             abstract-interpretation bounds proof, cluster race check) on \
             the input module and at every pipeline checkpoint, failing on \
             the first error-severity finding.")
  in
  let run kernel n m k (_, flags) backend print_ir pretty emit_generic lint
      verify =
    let spec = spec_of kernel n m k in
    let m_ = spec.Mlc_kernels.Builders.build () in
    let passes = Mlc_transforms.Backend.passes_for backend flags in
    if verify then (
      (* The per-pass checkpoint only covers post-pass states; check the
         input module too so a bad builder fails before the pipeline. *)
      match Mlc_verify.Verify.error_of (Mlc_verify.Verify.check_module m_) with
      | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
      | None -> ());
    let checkpoint =
      if verify then Some Mlc_verify.Verify.checkpoint else None
    in
    if emit_generic then print_string (Mlc_ir.Printer.to_string m_)
    else if pretty then begin
      Mlc_ir.Pass.run ?checkpoint m_ passes;
      let fns =
        Mlc_ir.Ir.collect m_ (fun op ->
            Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn)) fns;
      print_string (Mlc_riscv.Rv_pretty.to_string m_)
    end
    else if print_ir then begin
      let entries =
        Mlc_ir.Pass.run_pipeline ~trace:true ?checkpoint m_ passes
      in
      List.iter
        (fun (e : Mlc_ir.Pass.trace_entry) ->
          Printf.printf "// ----- after %s -----\n%s\n" e.pass_name e.ir_after)
        entries;
      let fns =
        Mlc_ir.Ir.collect m_ (fun op ->
            Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter
        (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn))
        fns;
      print_string (Mlc_riscv.Asm_emit.emit_module m_)
    end
    else begin
      let result = Mlc_transforms.Pipeline.compile ~flags ~lint ~passes m_ in
      print_string result.Mlc_transforms.Pipeline.asm
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a kernel to Snitch assembly.")
    Term.(
      const run $ kernel_arg $ n_arg $ m_arg $ k_arg $ flow_arg $ target_arg
      $ print_ir $ pretty $ emit_generic $ lint $ verify)

let compile_ir_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual IR (.mlir) input file.")
  in
  let verify_at_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "verify-at" ] ~docv:"PASS"
          ~doc:
            "Run the pipeline only up to (and including) $(docv) with the \
             IR static-analysis checkpoint armed after every pass, then \
             print the surviving IR instead of assembly. On a checkpoint \
             failure the diagnostic and the IR at the failing checkpoint \
             are printed to stderr (and captured in the crash bundle).")
  in
  let run file (flow_name, flags) backend crash_dir verify_at =
    set_crash_dir crash_dir;
    let src = In_channel.with_open_text file In_channel.input_all in
    let bundle_ctx =
      {
        Mlc_diag.Crash_bundle.flags =
          Some
            (Printf.sprintf "%s (%s)" flow_name
               (Mlc_transforms.Pipeline.describe_flags flags));
        replay =
          Some (Printf.sprintf "snitchc compile-ir %s --flow %s" file flow_name);
      }
    in
    let m =
      try Mlc_ir.Parser.parse_string src
      with Mlc_ir.Parser.Parse_error msg ->
        let d = Mlc_diag.Diag.make ~component:"parser" msg in
        ignore (Mlc_diag.Crash_bundle.write ~ctx:bundle_ctx d);
        raise (Mlc_diag.Diag.Diagnostic d)
    in
    Mlc_ir.Verifier.verify m;
    match verify_at with
    | Some target ->
      let all = Mlc_transforms.Backend.passes_for backend flags in
      let prefix =
        match Mlc_transforms.Pipeline.passes_up_to all target with
        | Ok prefix -> prefix
        | Error available ->
          Printf.eprintf "compile-ir: no pass named %S in flow %s (have: %s)\n"
            target flow_name
            (String.concat ", " available);
          exit 2
      in
      (match
         Mlc_ir.Pass.run ~bundle_ctx
           ~checkpoint:Mlc_verify.Verify.checkpoint m prefix
       with
      | () ->
        Printf.printf "// verify: clean through %d pass%s (up to %s)\n"
          (List.length prefix)
          (if List.length prefix = 1 then "" else "es")
          target;
        print_string (Mlc_ir.Printer.to_string m)
      | exception Mlc_ir.Pass.Pass_failed d ->
        prerr_string (Mlc_diag.Diag.to_string d);
        prerr_newline ();
        (match d.Mlc_diag.Diag.ir_before with
        | Some ir ->
          Printf.eprintf "--- IR at the failing checkpoint ---\n%s" ir
        | None -> ());
        (match Mlc_diag.Crash_bundle.last_bundle () with
        | Some path -> Printf.eprintf "crash bundle: %s\n" path
        | None -> ());
        exit 1)
    | None ->
      Mlc_ir.Pass.run ~bundle_ctx m
        (Mlc_transforms.Backend.passes_for backend flags);
      let fns =
        Mlc_ir.Ir.collect m (fun op ->
            Mlc_ir.Ir.Op.name op = Mlc_riscv.Rv_func.func_op)
      in
      List.iter
        (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn))
        fns;
      Mlc_ir.Verifier.verify m;
      print_string (Mlc_riscv.Asm_emit.emit_module m)
  in
  Cmd.v
    (Cmd.info "compile-ir"
       ~doc:
         "Compile a textual IR file to Snitch assembly (the crash-bundle \
          replay entry point).")
    Term.(
      const run $ file_arg $ flow_arg $ target_arg $ crash_dir_arg
      $ verify_at_arg)

let check_cmd =
  let opt_kernel_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "k"; "kernel" ] ~docv:"KERNEL"
          ~doc:
            (Printf.sprintf "Kernel to check: one of %s."
               (String.concat ", " Mlc_kernels.Registry.short_names)))
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Check every registry kernel under every pipeline configuration \
             (the fuzz oracle's config matrix) instead of a single kernel.")
  in
  let ir_arg =
    Arg.(
      value & flag
      & info [ "ir" ]
          ~doc:
            "Check the IR instead of the machine code: re-compile with a \
             collecting Mlc_verify checkpoint after every pass and report \
             every structural / bounds / race finding, stamped with the \
             checkpoint that first surfaced it.")
  in
  let run kernel all ir n m k (flow_name, flags) backend jobs cache_dir
      cache_cap =
    set_cache_dir cache_dir;
    set_cache_cap cache_cap;
    let summary =
      if all then
        Mlc_fuzz.Check_all.run_all ~jobs:(resolve_jobs jobs) ~n ~m ~k ~ir ()
      else
        match kernel with
        | None ->
          Printf.eprintf "check: either --kernel or --all is required\n";
          exit 2
        | Some kernel ->
          Mlc_fuzz.Check_all.run_one ~backend ~kernel ~flow:flow_name ~flags
            ~n ~m ~k ~ir ()
    in
    List.iter print_endline summary.Mlc_fuzz.Check_all.lines;
    let checked = summary.Mlc_fuzz.Check_all.checked in
    let errors = summary.Mlc_fuzz.Check_all.errors in
    let what = if ir then "verify" else "lint" in
    if errors = 0 then
      Printf.printf "%s: %d kernel/config combination%s clean\n" what checked
        (if checked = 1 then "" else "s")
    else begin
      Printf.printf "%s: %d error finding%s across %d combination%s\n" what
        errors
        (if errors = 1 then "" else "s")
        checked
        (if checked = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Compile a kernel and run the machine-code sanitizer (CFG + \
          dataflow Snitch-contract checks) over the emitted instruction \
          stream, reporting every finding; with --ir, run the per-pass IR \
          verifier and bounds/race abstract interpretation instead. With \
          --all the kernel x config matrix fans out over a domain pool \
          (-j) through the compile-artifact cache.")
    Term.(
      const run $ opt_kernel_arg $ all_arg $ ir_arg $ n_arg $ m_arg $ k_arg
      $ flow_arg $ target_arg $ jobs_arg $ cache_dir_arg $ cache_cap_arg)

let print_metrics (spec : Mlc_kernels.Builders.spec) (r : Mlc.Runner.run_result) =
  let m = r.Mlc.Runner.metrics in
  Printf.printf "kernel      : %s\n" spec.Mlc_kernels.Builders.kernel_name;
  Printf.printf "cycles      : %d (lower bound %d)\n" m.Mlc.Runner.cycles
    spec.Mlc_kernels.Builders.min_cycles;
  Printf.printf "FPU util    : %.2f %%\n" m.Mlc.Runner.fpu_util;
  Printf.printf "throughput  : %.2f FLOPs/cycle\n" m.Mlc.Runner.flops_per_cycle;
  Printf.printf "loads/stores: %d / %d\n" m.Mlc.Runner.loads m.Mlc.Runner.stores;
  Printf.printf "freps       : %d\n" m.Mlc.Runner.freps;
  (match r.Mlc.Runner.report with
  | Some rep ->
    Printf.printf "registers   : %d/20 FP, %d/15 integer\n"
      rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
  | None -> ());
  (match r.Mlc.Runner.degradation with
  | None -> ()
  | Some d ->
    Printf.printf "degraded    : fell back to %s\n" d.Mlc.Runner.rung;
    List.iter
      (fun (rung, e) -> Printf.printf "  %-18s %s\n" (rung ^ ":") e)
      d.Mlc.Runner.attempts);
  Printf.printf "max |error| : %g (vs reference interpreter)\n"
    r.Mlc.Runner.max_abs_err

(* Cluster runs print a digest of the output bits instead of the raw
   arrays so results at different core counts can be diffed for
   bit-identity (the CI cluster-smoke job greps these lines). *)
let print_cluster_metrics (spec : Mlc_kernels.Builders.spec)
    (r : Mlc.Runner.cluster_result) =
  Printf.printf "kernel      : %s\n" spec.Mlc_kernels.Builders.kernel_name;
  Printf.printf "cores       : %d (%d active x %d chunks, %s)\n"
    r.Mlc.Runner.c_cores r.Mlc.Runner.c_active r.Mlc.Runner.c_halves
    (if r.Mlc.Runner.c_staged then "staged DMA" else "in-place");
  Printf.printf "makespan    : %d cycles over %d epoch%s\n"
    r.Mlc.Runner.c_makespan r.Mlc.Runner.c_epochs
    (if r.Mlc.Runner.c_epochs = 1 then "" else "s");
  Array.iteri
    (fun c (m : Mlc.Runner.metrics) ->
      Printf.printf
        "  core %-2d   : %8d cycles  util %5.1f %%  conflicts %5d  dma %6d B\n"
        c m.Mlc.Runner.cycles
        r.Mlc.Runner.c_util.(c)
        r.Mlc.Runner.c_conflicts.(c)
        r.Mlc.Runner.c_dma_bytes.(c))
    r.Mlc.Runner.c_per_core;
  let digest =
    let buf = Buffer.create 256 in
    List.iter
      (Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)))
      r.Mlc.Runner.c_outputs;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  Printf.printf "output bits : %s\n" digest;
  Printf.printf "max |error| : %g (vs reference interpreter)\n"
    r.Mlc.Runner.c_max_abs_err

let run_cmd =
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print the per-instruction issue trace (pc cycle: instruction).")
  in
  let cores_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"N"
          ~doc:
            "Run on an $(docv)-core cluster (1-32): partition the kernel \
             across cores with the scf.forall tiling lowering and simulate \
             the banked-TCDM/DMA cluster. Results are bit-identical to the \
             single-core run.")
  in
  let no_fallback_arg =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:
            "Fail instead of degrading along the fallback lattice when the \
             requested flow cannot compile.")
  in
  let run kernel n m k (flow_name, flags) backend trace no_fallback crash_dir
      cores =
    set_crash_dir crash_dir;
    let spec = spec_of kernel n m k in
    match cores with
    | Some _
      when backend.Mlc_transforms.Backend.name
           <> Mlc_transforms.Backend.snitch.Mlc_transforms.Backend.name ->
      Printf.eprintf
        "run: --cores drives the Snitch cluster lowering and cannot be \
         combined with --target %s\n"
        backend.Mlc_transforms.Backend.name;
      exit 2
    | Some cores -> (
      (* The graceful front door: window kernels that do not
         row-partition degrade to the single-core pipeline with the
         substitution recorded, instead of failing hard. *)
      match Mlc.Runner.run_parallel ~flags ~cores spec with
      | `Cluster r -> print_cluster_metrics spec r
      | `Degraded r -> print_metrics spec r)
    | None ->
      let crash_ctx =
        {
          Mlc_diag.Crash_bundle.flags =
            None (* filled per rung by the runner *);
          replay =
            Some
              (Printf.sprintf "snitchc run -k %s -n %d -m %d -K %d --flow %s"
                 kernel n m k flow_name);
        }
      in
      let r =
        Mlc.Runner.run ~flags ~trace ~fallback:(not no_fallback) ~crash_ctx
          ~backend spec
      in
      print_metrics spec r;
      if trace then begin
        print_endline "--- instruction trace ---";
        List.iter print_endline r.Mlc.Runner.trace
      end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Compile a kernel, execute it on the Snitch simulator, validate and \
          report metrics.")
    Term.(
      const run $ kernel_arg $ n_arg $ m_arg $ k_arg $ flow_arg $ target_arg
      $ trace_arg $ no_fallback_arg $ crash_dir_arg $ cores_arg)

let ablate_cmd =
  let run kernel n m k =
    Printf.printf "%-22s %5s %5s %7s %7s %6s %5s %9s %10s\n" "Optimizations"
      "FP" "Int" "Loads" "Stores" "FMAdd" "FRep" "Cycles" "Occupancy";
    List.iter
      (fun (name, flags) ->
        let spec = spec_of kernel n m k in
        let r = Mlc.Runner.run ~flags spec in
        let rep = Option.get r.Mlc.Runner.report in
        let st = Option.get r.Mlc.Runner.stats in
        let mt = r.Mlc.Runner.metrics in
        Printf.printf "%-22s %2d/20 %2d/15 %7d %7d %6d %5d %9d %9.2f%%\n" name
          rep.Mlc_regalloc.Allocator.fp_count
          rep.Mlc_regalloc.Allocator.int_count mt.Mlc.Runner.loads
          mt.Mlc.Runner.stores (mt.Mlc.Runner.flop_count / 2)
          st.Mlc_riscv.Asm_emit.frep mt.Mlc.Runner.cycles mt.Mlc.Runner.fpu_util)
      Mlc_transforms.Pipeline.ablation_stages
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Apply the pipeline optimisations cumulatively (paper Table 3).")
    Term.(const run $ kernel_arg $ n_arg $ m_arg $ k_arg)

let lowlevel_cmd =
  let run kernel n m k =
    let spec =
      match kernel with
      | "sum" -> Mlc_kernels.Lowlevel.sum32 ~n ~m ()
      | "relu" -> Mlc_kernels.Lowlevel.relu32 ~n ~m ()
      | "matmul_t" | "matmult" -> Mlc_kernels.Lowlevel.matmul_t32 ~n ~m ~k ()
      | other ->
        Printf.eprintf "no handwritten kernel %S (sum, relu, matmul_t)\n" other;
        exit 2
    in
    let r = Mlc.Runner.run_lowlevel spec in
    let mt = r.Mlc.Runner.metrics in
    print_string r.Mlc.Runner.asm;
    Printf.printf "\ncycles      : %d\n" mt.Mlc.Runner.cycles;
    Printf.printf "FPU util    : %.2f %%\n" mt.Mlc.Runner.fpu_util;
    Printf.printf "throughput  : %.2f FLOPs/cycle (peak %.1f)\n"
      mt.Mlc.Runner.flops_per_cycle spec.Mlc_kernels.Lowlevel.peak_throughput;
    (match r.Mlc.Runner.report with
    | Some rep ->
      Printf.printf "registers   : %d/20 FP, %d/15 integer\n"
        rep.Mlc_regalloc.Allocator.fp_count rep.Mlc_regalloc.Allocator.int_count
    | None -> ());
    Printf.printf "max |error| : %g (vs lane-exact reference)\n"
      r.Mlc.Runner.max_abs_err
  in
  Cmd.v
    (Cmd.info "lowlevel"
       ~doc:
         "Allocate, emit and run a handwritten assembly-level kernel (paper \
          \xC2\xA74.2; f32 packed SIMD).")
    Term.(const run $ kernel_arg $ n_arg $ m_arg $ k_arg)

let fuzz_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for case generation.")
  in
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"N" ~doc:"Number of random cases to check.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"CASE"
          ~doc:
            "Replay a single serialised case (as printed in a mismatch \
             report) through the full oracle matrix instead of generating \
             random ones.")
  in
  let run seed count replay crash_dir jobs cache_dir cache_cap =
    set_crash_dir crash_dir;
    set_cache_dir cache_dir;
    set_cache_cap cache_cap;
    let report_failures frs =
      List.iter
        (fun fr -> Format.printf "%a@." Mlc_fuzz.Fuzz.pp_failure fr)
        frs
    in
    match replay with
    | Some case_str -> (
      match Mlc_fuzz.Fuzz_case.of_string case_str with
      | exception Mlc_fuzz.Fuzz_case.Parse_error m ->
        Printf.eprintf "bad case string: %s\n" m;
        exit 2
      | case -> (
        match Mlc_fuzz.Fuzz.check_one case with
        | None ->
          Printf.printf
            "replay ok: case agrees with the interpreter on all %d configs\n"
            (List.length Mlc_fuzz.Fuzz_oracle.configs)
        | Some fr ->
          report_failures [ fr ];
          exit 1))
    | None ->
      let report =
        Mlc_fuzz.Fuzz.run ~log:print_endline ~jobs:(resolve_jobs jobs) ~seed
          ~count ()
      in
      if report.Mlc_fuzz.Fuzz.failures = [] then
        Printf.printf
          "fuzz: %d cases x %d configs x 2 sim paths: zero mismatches \
           (seed %d)\n"
          report.Mlc_fuzz.Fuzz.cases report.Mlc_fuzz.Fuzz.configs seed
      else begin
        Printf.printf "fuzz: %d mismatches in %d cases (seed %d)\n"
          (List.length report.Mlc_fuzz.Fuzz.failures)
          report.Mlc_fuzz.Fuzz.cases seed;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random linalg kernels through every \
          pipeline config and both simulator paths, validated bit-for-bit \
          against the reference interpreter.")
    Term.(
      const run $ seed_arg $ count_arg $ replay_arg $ crash_dir_arg $ jobs_arg
      $ cache_dir_arg $ cache_cap_arg)

(* The snitchd client: one-shot requests against a running daemon, plus
   the flood driver the chaos harness uses. Request ids default to a
   digest of the payload, so re-running the same command line is an
   idempotent retry, not duplicated work. *)
let client_cmd =
  let module P = Mlc_serve.Protocol in
  let action_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("ping", `Ping); ("run", `Run); ("compile", `Compile);
                  ("check", `Check); ("stats", `Stats);
                  ("shutdown", `Shutdown); ("flood", `Flood);
                ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:
            "One of ping, run, compile, check, stats, shutdown, flood \
             (drive a deterministic mixed workload of --count requests).")
  in
  let socket_arg =
    Arg.(
      value
      & opt string "snitchd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon socket to connect to.")
  in
  let opt_kernel_arg =
    Arg.(
      value & opt string "matmul"
      & info [ "k"; "kernel" ] ~docv:"KERNEL" ~doc:"Kernel for run/compile/check.")
  in
  let id_arg =
    Arg.(
      value & opt string ""
      & info [ "id" ] ~docv:"ID"
          ~doc:
            "Idempotency key (default: a digest of the request payload, so \
             identical invocations retry rather than duplicate).")
  in
  let count_arg =
    Arg.(
      value & opt int 50
      & info [ "count" ] ~docv:"N" ~doc:"Requests for the flood action.")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed for the flood action.")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline (0 = server default).")
  in
  let patience_arg =
    Arg.(
      value & opt float 120.
      & info [ "patience" ] ~docv:"S"
          ~doc:"Total retry budget before the client gives up.")
  in
  let run action socket kernel n m k (flow_name, _) id count seed jobs
      deadline_ms patience =
    let print_body ?(skip = [ "asm" ]) body =
      List.iter
        (fun (key, v) ->
          if not (List.mem key skip) then
            Printf.printf "%-18s: %s\n" key (Mlc_serve.Json.to_string v))
        body
    in
    match action with
    | `Flood ->
      let report =
        Mlc_serve.Client.flood ~socket_path:socket
          ~jobs:(resolve_jobs jobs) ~seed ~patience_s:patience ~count ()
      in
      Printf.printf "flood: sent %d answered %d ok %d failed %d retries %d\n"
        report.Mlc_serve.Client.sent report.Mlc_serve.Client.answered
        report.Mlc_serve.Client.f_ok report.Mlc_serve.Client.f_failed
        report.Mlc_serve.Client.total_retries;
      Printf.printf "digest: %s\n" report.Mlc_serve.Client.digest;
      if report.Mlc_serve.Client.answered < report.Mlc_serve.Client.sent then
        exit 1
    | (`Ping | `Run | `Compile | `Check | `Stats | `Shutdown) as op ->
      let op =
        match op with
        | `Ping -> P.Ping
        | `Run -> P.Run
        | `Compile -> P.Compile
        | `Check -> P.Check
        | `Stats -> P.Stats
        | `Shutdown -> P.Shutdown
      in
      let req =
        {
          P.default_request with
          P.op;
          kernel;
          n;
          m;
          k;
          flow = flow_name;
          deadline_ms;
        }
      in
      let req =
        { req with P.id = (if id <> "" then id else "cli-" ^ P.payload_digest req) }
      in
      let client = Mlc_serve.Client.create ~socket_path:socket () in
      Fun.protect
        ~finally:(fun () -> Mlc_serve.Client.close client)
        (fun () ->
          match Mlc_serve.Client.request ~patience_s:patience client req with
          | exception Mlc_serve.Client.Gave_up msg ->
            Printf.eprintf "client: %s\n" msg;
            exit 1
          | { Mlc_serve.Client.response; retries } ->
            Printf.printf "status            : %s%s\n"
              (P.status_name response.P.status)
              (if retries > 0 then Printf.sprintf " (%d retries)" retries
               else "");
            (match op with
            | P.Compile ->
              (match
                 Mlc_serve.Json.str "asm" (Mlc_serve.Json.Obj response.P.body)
               with
              | Some asm -> print_string asm
              | None -> ());
              print_body ~skip:[ "asm" ] response.P.body
            | _ -> print_body response.P.body);
            if response.P.status <> P.Ok_ then exit 1)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running snitchd: one-shot compile/run/check/stats \
          requests with idempotent retries, or a deterministic flood \
          workload (the chaos harness's load generator).")
    Term.(
      const run $ action_arg $ socket_arg $ opt_kernel_arg $ n_arg $ m_arg
      $ k_arg $ flow_arg $ id_arg $ count_arg $ seed_arg $ jobs_arg
      $ deadline_arg $ patience_arg)

let main =
  Cmd.group
    (Cmd.info "snitchc" ~version:"1.0.0"
       ~doc:"Multi-level compiler backend for Snitch RISC-V micro-kernels.")
    [
      list_cmd;
      compile_cmd;
      compile_ir_cmd;
      check_cmd;
      run_cmd;
      ablate_cmd;
      lowlevel_cmd;
      fuzz_cmd;
      client_cmd;
    ]

(* Every diagnosed failure leaves through here as one structured report:
   diagnostic to stderr, crash bundle on disk (written at the failure
   site when possible, here as a fallback), exit 1. Only genuinely
   unexpected exceptions keep the raw OCaml backtrace dump. *)
let diag_of_exn exn =
  let module D = Mlc_diag.Diag in
  match exn with
  | Mlc_ir.Pass.Pass_failed d | D.Diagnostic d -> d
  | Mlc_ir.Parser.Parse_error m -> D.make ~component:"parser" m
  | Mlc_ir.Lexer.Lex_error (m, off) ->
    D.make ~component:"lexer" (Printf.sprintf "%s (byte offset %d)" m off)
  | Mlc_ir.Verifier.Verification_error m -> D.make ~component:"verifier" m
  | Mlc_regalloc.Allocator.Out_of_registers k ->
    D.make ~component:"regalloc"
      (Printf.sprintf "out of %s registers"
         (match k with
         | Mlc_riscv.Reg.Int_kind -> "integer"
         | Mlc_riscv.Reg.Float_kind -> "float"))
  | Mlc_regalloc.Remat.Still_out_of_registers k ->
    D.make ~component:"regalloc"
      (Printf.sprintf "out of %s registers after rematerialisation"
         (match k with
         | Mlc_riscv.Reg.Int_kind -> "integer"
         | Mlc_riscv.Reg.Float_kind -> "float"))
  | Mlc_regalloc.Allocator.Allocation_conflict m ->
    D.make ~component:"regalloc" m
  | Mlc_regalloc.Linear_scan.Cannot_spill m ->
    D.make ~component:"regalloc" m
  | Mlc_sim.Trap.Trap tr ->
    D.make ~component:"simulator"
      ~notes:(String.split_on_char '\n' (String.trim tr.Mlc_sim.Trap.state))
      (Mlc_sim.Trap.summary tr)
  | Mlc_sim.Mem.Access_fault { msg; _ } -> D.make ~component:"simulator" msg
  | Mlc.Runner.Run_error m -> D.make ~component:"runner" m
  | Mlc_riscv.Asm_emit.Emit_error m -> D.make ~component:"emit" m
  | Failure m -> D.make ~component:"snitchc" m
  | exn -> D.make ~component:"snitchc" (Printexc.to_string exn)

let () =
  Printexc.record_backtrace true;
  match Cmd.eval ~catch:false main with
  | code -> exit code
  | exception exn ->
    let bt = Printexc.get_backtrace () in
    let d = diag_of_exn exn in
    prerr_string (Mlc_diag.Diag.to_string d);
    prerr_newline ();
    (match Mlc_diag.Crash_bundle.last_bundle () with
    | Some path -> Printf.eprintf "crash bundle: %s\n" path
    | None -> (
      let d = { d with Mlc_diag.Diag.backtrace = Some bt } in
      match Mlc_diag.Crash_bundle.write d with
      | Some path -> Printf.eprintf "crash bundle: %s\n" path
      | None -> ()));
    exit 1
