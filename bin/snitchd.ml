(* snitchd: the long-running compile service over the micro-kernel
   compiler — a Unix-domain-socket daemon sharding compile/run/check
   requests across the domain pool and serving artifacts from the
   two-tier content-addressed cache.

     snitchd --socket snitchd.sock -j 4 --cache-dir .mlc-cache
     snitchd ... --faults crash@3,slow@5:0.5,trunc@7   (chaos harness)

   SIGTERM/SIGINT drain admitted work, answer it, then exit; kill -9
   recovery is the client's retry loop plus the disk cache tier. *)

open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string "snitchd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains executing requests (0 = one per core).")

let cache_dir_arg =
  Arg.(
    value
    & opt string ".mlc-cache"
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk tier of the compile-artifact cache; artifacts survive \
           daemon restarts. Empty string disables the disk tier.")

let crash_dir_arg =
  Arg.(
    value
    & opt string ".mlc-crash"
    & info [ "crash-dir" ] ~docv:"DIR"
        ~doc:"Directory crash bundles are written to.")

let queue_max_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-max" ] ~docv:"N"
        ~doc:
          "Admitted-but-unfinished request cap; beyond it requests are \
           rejected with a retry-after hint.")

let shed_at_arg =
  Arg.(
    value & opt int 48
    & info [ "shed-at" ] ~docv:"N"
        ~doc:
          "Queue depth at which new work is shed to the baseline \
           configuration (the bottom of the fallback lattice) instead of \
           the requested flow.")

let deadline_arg =
  Arg.(
    value & opt int 60_000
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-request deadline; requests past it are cancelled at \
           the next compile/sim checkpoint.")

let fuel_arg =
  Arg.(
    value
    & opt int 200_000_000
    & info [ "fuel" ] ~docv:"INSNS"
        ~doc:
          "Dynamic-instruction cap per simulation (a runaway kernel traps \
           with out-of-fuel instead of wedging a worker).")

let faults_arg =
  Arg.(
    value & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection for the chaos harness: \
           comma-separated site@ordinal[:param] with sites crash (worker \
           exception), slow (sleep param seconds), trunc (truncated \
           response frame). Example: crash@3,slow@5:0.5,trunc@7.")

let bundle_cap_arg =
  Arg.(
    value & opt int 64
    & info [ "bundle-cap-mb" ] ~docv:"MB"
        ~doc:
          "Cap the crash-bundle directory to this many megabytes (oldest \
           evicted first); 0 = unbounded.")

let bundle_age_arg =
  Arg.(
    value & opt float 0.
    & info [ "bundle-age-s" ] ~docv:"S"
        ~doc:"Evict crash bundles older than this many seconds; 0 = never.")

let stale_tmp_arg =
  Arg.(
    value & opt float 600.
    & info [ "stale-tmp-age-s" ] ~docv:"S"
        ~doc:
          "Age beyond which orphaned cache temp files are reclaimed when \
           the disk tier is attached.")

let serve socket jobs cache_dir crash_dir queue_max shed_at deadline_ms fuel
    faults bundle_cap_mb bundle_age_s stale_tmp_age =
  let jobs = if jobs <= 0 then Mlc_parallel.Pool.default_jobs () else jobs in
  Mlc_diag.Crash_bundle.set_dir crash_dir;
  Mlc_diag.Crash_bundle.set_eviction
    ?max_bytes:
      (if bundle_cap_mb > 0 then Some (bundle_cap_mb * 1024 * 1024) else None)
    ?max_age_s:(if bundle_age_s > 0. then Some bundle_age_s else None)
    ();
  Mlc_parallel.Cache.set_stale_tmp_age_s stale_tmp_age;
  if cache_dir <> "" then Mlc_parallel.Cache.set_disk_dir (Some cache_dir);
  if faults <> "" then Mlc_serve.Fault.arm faults;
  let config =
    {
      Mlc_serve.Server.socket_path = socket;
      jobs;
      queue_max;
      shed_at = min shed_at queue_max;
      default_deadline_ms = deadline_ms;
      sim_fuel = fuel;
      idem_cap = 4096;
    }
  in
  let server = Mlc_serve.Server.create ~config () in
  let stop _ = Mlc_serve.Server.stop server in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Printf.printf "snitchd: listening on %s (jobs=%d, cache=%s%s)\n%!" socket
    jobs
    (if cache_dir = "" then "memory-only" else cache_dir)
    (if faults = "" then "" else ", faults=" ^ faults);
  let served = Mlc_serve.Server.serve server in
  Printf.printf "snitchd: served %d requests, bye\n%!" served

let main =
  Cmd.v
    (Cmd.info "snitchd" ~version:"1.0.0"
       ~doc:
         "Long-running compile service for Snitch micro-kernels: accepts \
          length-framed JSON compile/run/check requests over a Unix socket, \
          shards them across a domain pool, and serves artifacts from the \
          content-addressed compile cache.")
    Term.(
      const serve $ socket_arg $ jobs_arg $ cache_dir_arg $ crash_dir_arg
      $ queue_max_arg $ shed_at_arg $ deadline_arg $ fuel_arg $ faults_arg
      $ bundle_cap_arg $ bundle_age_arg $ stale_tmp_arg)

let () = exit (Cmd.eval main)
