(* Greedy case minimisation: repeatedly try simpler variants of a
   failing case (smaller dims, fewer operands, smaller body, identity
   maps) and keep the first variant that still fails, until no candidate
   does. The oracle re-runs on every candidate, so the shrunk case fails
   for the same observable reason class (any oracle failure), and the
   final repro is as small as the failure allows. *)

open Fuzz_case

let set_nth l i v = List.mapi (fun j x -> if j = i then v else x) l

(* Proper subexpressions, used as replacement candidates. *)
let rec subexprs = function
  | X _ | K _ | A -> []
  | Add (a, b) | Mul (a, b) | Max (a, b) -> [ a; b ] @ subexprs a @ subexprs b
  | Fma (a, b, c) ->
    [ a; b; c ] @ subexprs a @ subexprs b @ subexprs c

(* Body candidates, simplest first. Reduction roots keep their
   acc-rooted shape; the inner expression shrinks. *)
let body_candidates c =
  match c.body with
  | Add (A, e) when c.n_red > 0 ->
    List.map (fun e' -> Add (A, e')) (subexprs e @ [ X 0 ])
  | Max (A, e) when c.n_red > 0 ->
    List.map (fun e' -> Max (A, e')) (subexprs e @ [ X 0 ])
  | Fma (a, b, A) when c.n_red > 0 ->
    Add (A, X 0)
    :: List.concat_map
         (fun a' -> List.map (fun b' -> Fma (a', b', A)) (subexprs b @ [ b; X 0 ]))
         (subexprs a @ [ a; X 0 ])
  | e -> subexprs e @ [ X 0 ]

(* Remap X indices after dropping input [i]; None if the body still
   references it. *)
let rec drop_x i = function
  | X j when j = i -> None
  | X j when j > i -> Some (X (j - 1))
  | (X _ | K _ | A) as e -> Some e
  | Add (a, b) -> Option.bind (drop_x i a) (fun a' -> Option.map (fun b' -> Add (a', b')) (drop_x i b))
  | Mul (a, b) -> Option.bind (drop_x i a) (fun a' -> Option.map (fun b' -> Mul (a', b')) (drop_x i b))
  | Max (a, b) -> Option.bind (drop_x i a) (fun a' -> Option.map (fun b' -> Max (a', b')) (drop_x i b))
  | Fma (a, b, c) ->
    Option.bind (drop_x i a) (fun a' ->
        Option.bind (drop_x i b) (fun b' ->
            Option.map (fun c' -> Fma (a', b', c')) (drop_x i c)))

let candidates c =
  let dims =
    List.concat
      (List.mapi
         (fun i b ->
           List.filter_map
             (fun v -> if v < b then Some { c with bounds = set_nth c.bounds i v } else None)
             [ 1; b / 2; b - 1 ])
         c.bounds)
  in
  let drop_inputs =
    List.concat
      (List.mapi
         (fun i _ ->
           if i = 0 then [] (* input 0 anchors the iteration space *)
           else
             match drop_x i c.body with
             | Some body' ->
               [ { c with
                   inputs = List.filteri (fun j _ -> j <> i) c.inputs;
                   body = body';
                 } ]
             | None -> [])
         c.inputs)
  in
  let bodies = List.map (fun b -> { c with body = b }) (body_candidates c) in
  let maps =
    List.mapi
      (fun i o ->
        match o with
        | Perm p when p <> List.sort compare p ->
          [ { c with inputs = set_nth c.inputs i (Perm (List.sort compare p)) } ]
        | Proj ds when ds <> List.sort compare ds ->
          [ { c with inputs = set_nth c.inputs i (Proj (List.sort compare ds)) } ]
        | _ -> [])
      c.inputs
    |> List.concat
  in
  let drop_reduction =
    if c.n_red > 0 then
      match c.body with
      | Add (A, e) | Max (A, e) -> [ { c with n_red = 0; body = e } ]
      | Fma (a, b, A) -> [ { c with n_red = 0; body = Mul (a, b) } ]
      | _ -> []
    else []
  in
  List.filter
    (fun c' -> Result.is_ok (validate c'))
    (dims @ drop_inputs @ drop_reduction @ bodies @ maps)

(* [minimize ~fails case] greedily minimises a failing case. [fails]
   must be true for [case]; the result still satisfies it. Bounded so a
   flaky predicate cannot loop forever. *)
let minimize ~fails case =
  let budget = ref 200 in
  let rec go c =
    if !budget <= 0 then c
    else
      match
        List.find_opt
          (fun c' ->
            decr budget;
            !budget >= 0 && fails c')
          (candidates c)
      with
      | Some c' -> go c'
      | None -> c
  in
  go case
