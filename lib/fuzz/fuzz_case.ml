(* A fuzz case: a compact, serialisable description of a random
   linalg-level kernel — iteration space, operand indexing maps and a
   body over the add/mul/max/fma grammar. A case is deterministic data:
   the same case string always rebuilds the same module and the same
   input buffers, so any oracle failure is replayable from its one-line
   encoding (`snitchc fuzz --replay '<case>'`).

   Grammar restrictions that keep the differential oracle bit-exact:
   - fused multiply-adds are explicit [Fma] nodes and a [Mul] never
     appears directly under an [Add], so the pipeline's fma contraction
     pass is a no-op on generated bodies and the interpreter (which
     evaluates fmaf with one rounding) agrees with the machine;
   - constants come from a small pool of exactly-f32-representable
     values, so f32 kernels see the same scalar on both sides;
   - reduction bodies are rooted at the accumulator (acc+e, max(acc,e)
     or fma(a,b,acc)), matching the fill/generic idiom of the Table 1
     kernels, and the per-element reduction order is lexicographic in
     the iteration space on both the interpreter and every pipeline
     config. *)

open Mlc_ir
open Mlc_kernels

type elem = F32 | F64

(* Body expression. [X i] is the i-th buffer operand's element, [K c] a
   scalar constant (materialised as a loop-invariant operand with an
   empty indexing map, the relu idiom), [A] the reduction accumulator. *)
type expr =
  | X of int
  | K of float
  | A
  | Add of expr * expr
  | Mul of expr * expr
  | Max of expr * expr
  | Fma of expr * expr * expr

(* An input operand's indexing map, over bare iteration dims only:
   [Perm] is a full (possibly transposed) identity over all dims, [Proj]
   a projection onto a dim subset (a broadcast operand). *)
type operand = Perm of int list | Proj of int list

type t = {
  elem : elem;
  bounds : int list; (* iteration-space sizes, parallel dims first *)
  n_red : int; (* trailing reduction dims (0 or 1) *)
  inputs : operand list; (* input 0 must be a full Perm *)
  body : expr;
}

let rank c = List.length c.bounds
let n_par c = rank c - c.n_red

(* --- validation --- *)

let rec no_acc = function
  | X _ | K _ -> true
  | A -> false
  | Add (a, b) | Mul (a, b) | Max (a, b) -> no_acc a && no_acc b
  | Fma (a, b, c) -> no_acc a && no_acc b && no_acc c

(* No Mul directly under an Add: keeps Fma_fusion a no-op (fused
   multiply-adds must be explicit Fma nodes). *)
let rec no_mul_under_add = function
  | X _ | K _ | A -> true
  | Add (a, b) ->
    (match (a, b) with Mul _, _ | _, Mul _ -> false | _ -> true)
    && no_mul_under_add a && no_mul_under_add b
  | Mul (a, b) | Max (a, b) -> no_mul_under_add a && no_mul_under_add b
  | Fma (a, b, c) ->
    no_mul_under_add a && no_mul_under_add b && no_mul_under_add c

let rec max_x = function
  | X i -> i
  | K _ | A -> -1
  | Add (a, b) | Mul (a, b) | Max (a, b) -> max (max_x a) (max_x b)
  | Fma (a, b, c) -> max (max_x a) (max (max_x b) (max_x c))

let f32_exact v = Int32.float_of_bits (Int32.bits_of_float v) = v

let rec consts_exact = function
  | X _ | A -> true
  | K c -> f32_exact c
  | Add (a, b) | Mul (a, b) | Max (a, b) -> consts_exact a && consts_exact b
  | Fma (a, b, c) -> consts_exact a && consts_exact b && consts_exact c

let is_full_perm ~rank p =
  List.length p = rank && List.sort compare p = List.init rank Fun.id

let validate c =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rk = rank c in
  if rk < 1 || rk > 4 then err "rank %d out of range" rk
  else if List.exists (fun b -> b < 1 || b > 32) c.bounds then
    err "bounds out of range"
  else if c.n_red < 0 || c.n_red > 1 || c.n_red >= rk then
    err "n_red %d invalid for rank %d" c.n_red rk
  else if c.inputs = [] then err "no inputs"
  else if
    (match List.hd c.inputs with Perm p -> not (is_full_perm ~rank:rk p) | Proj _ -> true)
  then err "input 0 must be a full permutation"
  else if
    List.exists
      (function
        | Perm p -> not (is_full_perm ~rank:rk p)
        | Proj ds ->
          ds = []
          || List.exists (fun d -> d < 0 || d >= rk) ds
          || List.length (List.sort_uniq compare ds) <> List.length ds)
      c.inputs
  then err "malformed operand map"
  else if List.length c.inputs > 3 then err "too many inputs"
  else if max_x c.body >= List.length c.inputs then err "body references missing input"
  else if not (no_mul_under_add c.body) then err "mul directly under add"
  else if c.elem = F32 && not (consts_exact c.body) then
    err "f32 case with non-f32-exact constant"
  else if
    c.n_red = 0 && not (no_acc c.body)
  then err "element-wise body uses the accumulator"
  else if
    c.n_red > 0
    &&
    match c.body with
    | Add (A, e) | Max (A, e) -> not (no_acc e)
    | Fma (a, b, A) -> not (no_acc a && no_acc b)
    | _ -> true
  then err "reduction body must be acc+e, max(acc,e) or fma(a,b,acc)"
  else Ok ()

(* --- codec: one-line case <-> string --- *)

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* Hex float literals round-trip exactly and contain no separators. *)
let float_str v = Printf.sprintf "%h" v

let rec expr_str = function
  | X i -> Printf.sprintf "x%d" i
  | K c -> "k" ^ float_str c
  | A -> "A"
  | Add (a, b) -> Printf.sprintf "+(%s,%s)" (expr_str a) (expr_str b)
  | Mul (a, b) -> Printf.sprintf "*(%s,%s)" (expr_str a) (expr_str b)
  | Max (a, b) -> Printf.sprintf "M(%s,%s)" (expr_str a) (expr_str b)
  | Fma (a, b, c) ->
    Printf.sprintf "F(%s,%s,%s)" (expr_str a) (expr_str b) (expr_str c)

let operand_str = function
  | Perm p -> "p" ^ String.concat "" (List.map string_of_int p)
  | Proj ds -> "j" ^ String.concat "" (List.map string_of_int ds)

let to_string c =
  Printf.sprintf "%s|%s|r%d|%s|%s"
    (match c.elem with F32 -> "f32" | F64 -> "f64")
    (String.concat "x" (List.map string_of_int c.bounds))
    c.n_red
    (String.concat ";" (List.map operand_str c.inputs))
    (expr_str c.body)

(* Recursive-descent expression parser over the flat string. *)
let parse_expr s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect ch =
    if peek () = Some ch then incr pos else perr "expected %c at %d in %S" ch !pos s
  in
  let scan_until_sep () =
    let start = !pos in
    while !pos < n && s.[!pos] <> ',' && s.[!pos] <> ')' do incr pos done;
    String.sub s start (!pos - start)
  in
  let rec expr () =
    match peek () with
    | Some 'x' ->
      incr pos;
      let t = scan_until_sep () in
      (match int_of_string_opt t with
      | Some i when i >= 0 -> X i
      | _ -> perr "bad input index %S" t)
    | Some 'k' ->
      incr pos;
      let t = scan_until_sep () in
      (match float_of_string_opt t with
      | Some v -> K v
      | None -> perr "bad constant %S" t)
    | Some 'A' -> incr pos; A
    | Some ('+' | '*' | 'M' | 'F') ->
      let op = s.[!pos] in
      incr pos;
      expect '(';
      let a = expr () in
      expect ',';
      let b = expr () in
      (match op with
      | '+' -> expect ')'; Add (a, b)
      | '*' -> expect ')'; Mul (a, b)
      | 'M' -> expect ')'; Max (a, b)
      | _ ->
        expect ',';
        let c = expr () in
        expect ')';
        Fma (a, b, c))
    | _ -> perr "unexpected end of expression in %S" s
  in
  let e = expr () in
  if !pos <> n then perr "trailing garbage at %d in %S" !pos s;
  e

let parse_digits kind s =
  if String.length s = 0 then perr "empty %s operand" kind;
  List.init (String.length s) (fun i ->
      match s.[i] with
      | '0' .. '9' -> Char.code s.[i] - Char.code '0'
      | c -> perr "bad dim digit %c in %s operand" c kind)

let parse_operand s =
  if String.length s < 2 then perr "malformed operand %S" s
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'p' -> Perm (parse_digits "perm" rest)
    | 'j' -> Proj (parse_digits "proj" rest)
    | c -> perr "unknown operand kind %c" c

let of_string str =
  match String.split_on_char '|' (String.trim str) with
  | [ elem_s; bounds_s; red_s; operands_s; body_s ] ->
    let elem =
      match elem_s with
      | "f32" -> F32
      | "f64" -> F64
      | _ -> perr "bad element type %S" elem_s
    in
    let bounds =
      List.map
        (fun t ->
          match int_of_string_opt t with
          | Some b -> b
          | None -> perr "bad bound %S" t)
        (String.split_on_char 'x' bounds_s)
    in
    let n_red =
      if String.length red_s >= 2 && red_s.[0] = 'r' then
        match int_of_string_opt (String.sub red_s 1 (String.length red_s - 1)) with
        | Some r -> r
        | None -> perr "bad reduction count %S" red_s
      else perr "bad reduction field %S" red_s
    in
    let inputs = List.map parse_operand (String.split_on_char ';' operands_s) in
    let c = { elem; bounds; n_red; inputs; body = parse_expr body_s } in
    (match validate c with
    | Ok () -> c
    | Error m -> perr "invalid case %S: %s" str m)
  | _ -> perr "expected elem|bounds|rN|operands|body, got %S" str

(* --- lowering a case to a runnable kernel spec --- *)

let ty_of = function F32 -> Ty.F32 | F64 -> Ty.F64

(* Distinct K constants in first-appearance order; they become trailing
   loop-invariant operands with empty indexing maps. *)
let body_consts body =
  let acc = ref [] in
  let rec go = function
    | X _ | A -> ()
    | K c -> if not (List.mem c !acc) then acc := c :: !acc
    | Add (a, b) | Mul (a, b) | Max (a, b) -> go a; go b
    | Fma (a, b, c) -> go a; go b; go c
  in
  go body;
  List.rev !acc

let rec op_count = function
  | X _ | K _ | A -> 0
  | Add (a, b) | Mul (a, b) | Max (a, b) -> 1 + op_count a + op_count b
  | Fma (a, b, c) -> 2 + op_count a + op_count b + op_count c

let operand_shape c = function
  | Perm dims | Proj dims -> List.map (fun d -> List.nth c.bounds d) dims

let operand_map ~rank = function
  | Perm dims | Proj dims ->
    Affine.make ~num_dims:rank ~num_syms:0 (List.map Affine.dim dims)

(* Initial accumulator value for a reduction body (the linalg.fill). *)
let fill_value c =
  match c.body with Max (A, _) -> Float.neg_infinity | _ -> 0.0

let to_spec c : Builders.spec =
  (match validate c with
  | Ok () -> ()
  | Error m -> invalid_arg ("Fuzz_case.to_spec: " ^ m));
  let rk = rank c in
  let np = n_par c in
  let elem = ty_of c.elem in
  let out_shape = List.filteri (fun i _ -> i < np) c.bounds in
  let args =
    List.map (fun o -> Builders.Buf_in (operand_shape c o)) c.inputs
    @ [ Builders.Buf_out out_shape ]
  in
  let consts = body_consts c.body in
  let iterators =
    List.init rk (fun i -> if i < np then Attr.Parallel else Attr.Reduction)
  in
  let maps =
    List.map (operand_map ~rank:rk) c.inputs
    @ List.map (fun _ -> Affine.empty rk) consts
    @ [ Affine.make ~num_dims:rk ~num_syms:0 (List.init np Affine.dim) ]
  in
  let total_iters = List.fold_left ( * ) 1 c.bounds in
  let flops = max 1 (op_count c.body * total_iters) in
  let n_bufs = List.length c.inputs in
  let build () =
    Builders.module_with_fn ~name:"fuzz" ~args ~elem (fun bb values ->
        let bufs = List.filteri (fun i _ -> i < n_bufs) values in
        let out = List.nth values n_bufs in
        let const_vals =
          List.map (fun v -> Mlc_dialects.Arith.const_float bb ~ty:elem v) consts
        in
        if c.n_red > 0 then begin
          let init =
            Mlc_dialects.Arith.const_float bb ~ty:elem (fill_value c)
          in
          Mlc_dialects.Linalg.fill bb init out
        end;
        ignore
          (Mlc_dialects.Linalg.generic bb ~ins:(bufs @ const_vals) ~outs:[ out ]
             ~maps ~iterators (fun bb in_args out_args ->
               let const_arg v =
                 let rec idx i = function
                   | [] -> invalid_arg "fuzz const lookup"
                   | x :: _ when x = v -> i
                   | _ :: tl -> idx (i + 1) tl
                 in
                 List.nth in_args (n_bufs + idx 0 consts)
               in
               let acc = match out_args with a :: _ -> a | [] -> assert false in
               let rec emit = function
                 | X i -> List.nth in_args i
                 | K v -> const_arg v
                 | A -> acc
                 | Add (a, b) -> Mlc_dialects.Arith.addf bb (emit a) (emit b)
                 | Mul (a, b) -> Mlc_dialects.Arith.mulf bb (emit a) (emit b)
                 | Max (a, b) -> Mlc_dialects.Arith.maxf bb (emit a) (emit b)
                 | Fma (a, b, acc') ->
                   Mlc_dialects.Arith.fmaf bb (emit a) (emit b) (emit acc')
               in
               [ emit c.body ])))
  in
  {
    Builders.kernel_name = "fuzz";
    fn_name = "fuzz";
    elem;
    args;
    flops;
    min_cycles = flops;
    build;
  }

(* Deterministic input seed for a case: replaying the same case string
   always regenerates the same buffers. *)
let input_seed c = Hashtbl.hash (to_string c) land 0xFFFFFF
