(* Seeded random case generation. All randomness flows through an
   explicit [Random.State.t], so a (seed, index) pair fully determines a
   case; shapes are drawn from a pool biased toward the sizes that
   historically break loop transforms (1, primes, non-multiples of the
   unroll factors 4 and 8). *)

open Fuzz_case

(* Shape pool: degenerate (1), primes (2,3,5,7,13), powers of two at the
   unroll factors (4, 8, 16) and near-misses (6, 9, 12). *)
let dim_pool = [| 1; 1; 2; 3; 4; 5; 5; 6; 7; 7; 8; 9; 12; 13; 13; 16 |]

(* Constants exactly representable in f32, so f32 kernels agree between
   the interpreter and the machine bit-for-bit. *)
let const_pool = [| 0.0; 1.0; -1.0; 0.5; 2.0; 3.25; -0.75 |]

let pick st arr = arr.(Random.State.int st (Array.length arr))

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* Random body expression; [n_ins] buffer operands are addressable. When
   [allow_mul] is false the root cannot be a Mul (the no-Mul-under-Add
   rule); fused multiply-adds must come from explicit Fma nodes. *)
let rec gen_expr st ~n_ins ~allow_mul ~depth =
  let leaf () =
    if Random.State.int st 4 = 0 then K (pick st const_pool)
    else X (Random.State.int st n_ins)
  in
  if depth = 0 then leaf ()
  else
    match Random.State.int st (if allow_mul then 6 else 5) with
    | 0 -> leaf ()
    | 1 ->
      Add
        ( gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1),
          gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1) )
    | 2 ->
      Max
        ( gen_expr st ~n_ins ~allow_mul:true ~depth:(depth - 1),
          gen_expr st ~n_ins ~allow_mul:true ~depth:(depth - 1) )
    | 3 | 4 ->
      Fma
        ( gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1),
          gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1),
          gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1) )
    | _ ->
      Mul
        ( gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1),
          gen_expr st ~n_ins ~allow_mul:false ~depth:(depth - 1) )

(* Ensure at least one buffer read so the kernel is data-dependent. *)
let rec references_input = function
  | X _ -> true
  | K _ | A -> false
  | Add (a, b) | Mul (a, b) | Max (a, b) ->
    references_input a || references_input b
  | Fma (a, b, c) ->
    references_input a || references_input b || references_input c

let gen_body st ~n_ins ~reduction =
  let rec inner () =
    let e = gen_expr st ~n_ins ~allow_mul:(not reduction) ~depth:(1 + Random.State.int st 2) in
    if references_input e then e else inner ()
  in
  if not reduction then inner ()
  else
    match Random.State.int st 3 with
    | 0 -> Add (A, inner ())
    | 1 -> Max (A, inner ())
    | _ -> Fma (inner (), inner (), A)

let gen_operand st ~rank ~full =
  if full || Random.State.int st 2 = 0 then
    Perm (shuffle st (List.init rank Fun.id))
  else begin
    (* Broadcast: keep a strict non-empty subset of dims, in a random
       (possibly transposed) order. *)
    let dims = shuffle st (List.init rank Fun.id) in
    let keep = 1 + Random.State.int st (max 1 (rank - 1)) in
    Proj (List.filteri (fun i _ -> i < keep) dims)
  end

(* Total TCDM footprint of the operand buffers for a candidate case. *)
let footprint c =
  let esz = match c.elem with F32 -> 4 | F64 -> 8 in
  let shape_bytes shape = esz * List.fold_left ( * ) 1 shape in
  List.fold_left
    (fun acc o -> acc + shape_bytes (operand_shape c o))
    (shape_bytes (List.filteri (fun i _ -> i < n_par c) c.bounds))
    c.inputs

let gen st =
  let rec attempt () =
    let elem = if Random.State.bool st then F64 else F32 in
    (* Shape archetypes: element-wise rank 1/2, single-reduction rank
       2 (row reduce) and rank 3 (matmul-like). *)
    let rank, n_red =
      match Random.State.int st 10 with
      | 0 -> (1, 0)
      | 1 | 2 | 3 -> (2, 0)
      | 4 | 5 | 6 -> (2, 1)
      | _ -> (3, 1)
    in
    let bounds = List.init rank (fun _ -> pick st dim_pool) in
    let n_ins = 1 + Random.State.int st 2 in
    let inputs =
      List.init n_ins (fun i -> gen_operand st ~rank ~full:(i = 0))
    in
    let body = gen_body st ~n_ins ~reduction:(n_red > 0) in
    let c = { elem; bounds; n_red; inputs; body } in
    match validate c with
    | Ok () when footprint c <= 64 * 1024 -> c
    | _ -> attempt ()
  in
  attempt ()
