(* The `snitchc check` driver: compile kernel × pipeline-config combos
   through the content-addressed artifact cache and run the machine-code
   sanitizer over the emitted instruction stream. Lives in the fuzz
   library because the config matrix is the oracle's; the binary and the
   determinism tests both drive it, with or without a domain pool.

   Hits and misses lint the same program — the one re-parsed from the
   (cached or just-emitted) assembly text — so cold and warm runs print
   identical findings. Only lint-error-free results are stored, keeping
   the cache-wide invariant that lets Runner hits skip linting. *)

open Mlc_kernels

type combo = {
  kernel : string;
  config : string;
  flags : Mlc_transforms.Pipeline.flags;
  backend : Mlc_transforms.Backend.t;
}

let combos () =
  List.concat_map
    (fun kernel ->
      List.map
        (fun (config, flags, backend) -> { kernel; config; flags; backend })
        Fuzz_oracle.configs)
    Registry.short_names

let label c = Printf.sprintf "%s/%s" c.kernel c.config

(* Lint findings for one combo. *)
let check_combo ~n ~m ~k (c : combo) =
  match Registry.by_short_name c.kernel with
  | None -> invalid_arg ("check: unknown kernel " ^ c.kernel)
  | Some entry ->
    let spec = entry.Registry.instantiate ~n ~m ~k () in
    let m_ = spec.Builders.build () in
    let ir_text = Mlc_ir.Printer.to_string m_ in
    let result, miss_key =
      match
        Mlc.Compile_cache.lookup ~target:c.backend.Mlc_transforms.Backend.name
          ~flags:c.flags ~ir_text ()
      with
      | `Hit (_, r) -> (r, None)
      | `Miss key ->
        ( Mlc_transforms.Pipeline.compile ~flags:c.flags
            ~passes:(Mlc_transforms.Backend.passes_for c.backend c.flags)
            m_,
          Some key )
    in
    let program =
      Mlc_sim.Program.of_asm
        (Mlc_sim.Asm_parse.parse result.Mlc_transforms.Pipeline.asm)
    in
    let findings =
      Mlc_analysis.Lint.check_program program
      |> List.filter (fun (d : Mlc_diag.Diag.t) ->
             match d.Mlc_diag.Diag.pass with
             | Some cls ->
               List.mem cls c.backend.Mlc_transforms.Backend.lint_classes
             | None -> true)
    in
    (match miss_key with
    | Some key when Mlc_analysis.Lint.errors findings = [] ->
      Mlc.Compile_cache.store ~key result
    | _ -> ());
    findings

(* Per-pass IR verification for one combo (the `check --ir` mode): the
   kernel is re-compiled with a *collecting* Mlc_verify checkpoint —
   bounds/race findings are gathered at the input and after every pass
   instead of aborting the pipeline, so one sweep reports everything.
   Findings are deduplicated across checkpoints (an un-lowered access
   pattern recurs at every level until a pass rewrites it) and stamped
   with the checkpoint that first surfaced them. Structural failures
   (the per-pass verifier) surface as Pass_failed and are reported as
   one finding. The combo always recompiles — the artifact cache keeps
   no per-checkpoint information. *)
let check_ir_combo ~n ~m ~k (c : combo) =
  match Registry.by_short_name c.kernel with
  | None -> invalid_arg ("check: unknown kernel " ^ c.kernel)
  | Some entry ->
    let spec = entry.Registry.instantiate ~n ~m ~k () in
    let m_ = spec.Builders.build () in
    let findings = ref [] and seen = Hashtbl.create 8 in
    let record ~at ds =
      List.iter
        (fun d ->
          let key = Mlc_diag.Diag.summary d in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            findings :=
              Mlc_diag.Diag.add_note d ("first at checkpoint: " ^ at)
              :: !findings
          end)
        ds
    in
    record ~at:"input" (Mlc_verify.Verify.check_module m_);
    (match
       Mlc_ir.Pass.run ~verify_each:true
         ~checkpoint:(fun ~pass_name mod_ ->
           record ~at:pass_name (Mlc_verify.Verify.analysis_findings mod_))
         m_
         (Mlc_transforms.Backend.passes_for c.backend c.flags)
     with
    | () -> ()
    | exception Mlc_ir.Pass.Pass_failed d -> record ~at:"pipeline" [ d ]
    | exception Mlc_diag.Diag.Diagnostic d -> record ~at:"pipeline" [ d ]);
    List.rev !findings

(* --- cluster lowering configs ---

   For every registry kernel and core count, drive the full parallel
   lowering (scf.forall tiling, slice folding, per-core DMA wrapper)
   and surface what the path itself enforces: the composed per-core
   programs must pass the sanitizer (dma-discipline included — Runner
   lints them before simulating) and the cluster outputs must match the
   reference interpreter. Window kernels are not row-partitionable by
   contract; their rejection is the expected clean outcome. *)

let cluster_cores = [ 2; 8 ]

let cluster_combos () =
  List.concat_map
    (fun kernel -> List.map (fun cores -> (kernel, cores)) cluster_cores)
    Registry.short_names

let cluster_label (kernel, cores) = Printf.sprintf "%s/cluster-%d" kernel cores

let check_cluster_combo ~n ~m ~k (kernel, cores) =
  match Registry.by_short_name kernel with
  | None -> invalid_arg ("check: unknown kernel " ^ kernel)
  | Some entry ->
    let spec = entry.Registry.instantiate ~n ~m ~k () in
    let diag message =
      [
        Mlc_diag.Diag.make ~component:"check" ~pass:"cluster"
          ~op:(cluster_label (kernel, cores))
          message;
      ]
    in
    (match Mlc.Runner.run_cluster ~cores spec with
    | r ->
      if r.Mlc.Runner.c_max_abs_err > 1e-6 then
        diag
          (Printf.sprintf "cluster outputs diverge from the reference \
                           interpreter (max |error| %g)"
             r.Mlc.Runner.c_max_abs_err)
      else []
    | exception Mlc_transforms.Parallel_tile.Not_partitionable _ ->
      [] (* window kernels: rejection is the contract *)
    | exception Mlc_diag.Diag.Diagnostic d -> [ d ])

type summary = {
  lines : string list; (* "kernel/config: finding" report lines, ordered *)
  checked : int;
  errors : int;
}

let summarize results =
  {
    lines =
      List.concat_map
        (fun (lbl, findings) ->
          List.map
            (fun d -> Printf.sprintf "%s: %s" lbl (Mlc_diag.Diag.summary d))
            findings)
        results;
    checked = List.length results;
    errors =
      List.fold_left
        (fun acc (_, findings) ->
          acc + List.length (Mlc_analysis.Lint.errors findings))
        0 results;
  }

(* Every registry kernel under every oracle config, then under the
   cluster lowering at every core count. Combos are independent, so
   they fan out over the pool; findings come back in combo order
   regardless of [jobs]. [ir] switches from the machine-code sanitizer
   to the per-pass IR verifier sweep (cluster combos don't apply: their
   race discipline is checked inside Runner.run_cluster itself). *)
let run_all ?jobs ?(n = 16) ?(m = 16) ?(k = 16) ?(ir = false) () =
  if ir then
    summarize
      (Mlc_parallel.Pool.map_list ?jobs
         (fun c -> (label c, check_ir_combo ~n ~m ~k c))
         (combos ()))
  else
    let single =
      List.map (fun c -> `Single c) (combos ())
    and cluster =
      List.map (fun c -> `Cluster c) (cluster_combos ())
    in
    summarize
      (Mlc_parallel.Pool.map_list ?jobs
         (function
           | `Single c -> (label c, check_combo ~n ~m ~k c)
           | `Cluster c -> (cluster_label c, check_cluster_combo ~n ~m ~k c))
         (single @ cluster))

(* One kernel under one named flow (the `check -k` path). *)
let run_one ?(backend = Mlc_transforms.Backend.snitch) ~kernel ~flow ~flags
    ?(n = 16) ?(m = 16) ?(k = 16) ?(ir = false) () =
  let c = { kernel; config = flow; flags; backend } in
  let check = if ir then check_ir_combo else check_combo in
  summarize [ (label c, check ~n ~m ~k c) ]
