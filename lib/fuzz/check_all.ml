(* The `snitchc check` driver: compile kernel × pipeline-config combos
   through the content-addressed artifact cache and run the machine-code
   sanitizer over the emitted instruction stream. Lives in the fuzz
   library because the config matrix is the oracle's; the binary and the
   determinism tests both drive it, with or without a domain pool.

   Hits and misses lint the same program — the one re-parsed from the
   (cached or just-emitted) assembly text — so cold and warm runs print
   identical findings. Only lint-error-free results are stored, keeping
   the cache-wide invariant that lets Runner hits skip linting. *)

open Mlc_kernels

type combo = {
  kernel : string;
  config : string;
  flags : Mlc_transforms.Pipeline.flags;
}

let combos () =
  List.concat_map
    (fun kernel ->
      List.map
        (fun (config, flags) -> { kernel; config; flags })
        Fuzz_oracle.configs)
    Registry.short_names

let label c = Printf.sprintf "%s/%s" c.kernel c.config

(* Lint findings for one combo. *)
let check_combo ~n ~m ~k (c : combo) =
  match Registry.by_short_name c.kernel with
  | None -> invalid_arg ("check: unknown kernel " ^ c.kernel)
  | Some entry ->
    let spec = entry.Registry.instantiate ~n ~m ~k () in
    let m_ = spec.Builders.build () in
    let ir_text = Mlc_ir.Printer.to_string m_ in
    let result, miss_key =
      match Mlc.Compile_cache.lookup ~flags:c.flags ~ir_text with
      | `Hit (_, r) -> (r, None)
      | `Miss key ->
        (Mlc_transforms.Pipeline.compile ~flags:c.flags m_, Some key)
    in
    let program =
      Mlc_sim.Program.of_asm
        (Mlc_sim.Asm_parse.parse result.Mlc_transforms.Pipeline.asm)
    in
    let findings = Mlc_analysis.Lint.check_program program in
    (match miss_key with
    | Some key when Mlc_analysis.Lint.errors findings = [] ->
      Mlc.Compile_cache.store ~key result
    | _ -> ());
    findings

type summary = {
  lines : string list; (* "kernel/config: finding" report lines, ordered *)
  checked : int;
  errors : int;
}

let summarize results =
  {
    lines =
      List.concat_map
        (fun (lbl, findings) ->
          List.map
            (fun d -> Printf.sprintf "%s: %s" lbl (Mlc_diag.Diag.summary d))
            findings)
        results;
    checked = List.length results;
    errors =
      List.fold_left
        (fun acc (_, findings) ->
          acc + List.length (Mlc_analysis.Lint.errors findings))
        0 results;
  }

(* Every registry kernel under every oracle config. Combos are
   independent, so they fan out over the pool; findings come back in
   combo order regardless of [jobs]. *)
let run_all ?jobs ?(n = 16) ?(m = 16) ?(k = 16) () =
  summarize
    (Mlc_parallel.Pool.map_list ?jobs
       (fun c -> (label c, check_combo ~n ~m ~k c))
       (combos ()))

(* One kernel under one named flow (the `check -k` path). *)
let run_one ~kernel ~flow ~flags ?(n = 16) ?(m = 16) ?(k = 16) () =
  let c = { kernel; config = flow; flags } in
  summarize [ (label c, check_combo ~n ~m ~k c) ]
