(* The differential oracle: one case is compiled under every pipeline
   config (ours, the Table 3 ablation stages, the clang/mlir baseline
   flavours) and executed on the simulator through both program paths
   (direct Insn_emit and text print->parse) and both engines; every
   output must match the reference interpreter bit-for-bit. Along the
   way each pipeline checkpoint is held to the printer->parser
   round-trip fixpoint and every allocated function to the independent
   live-range checker — so a failure pinpoints the first level of the
   stack that diverged, not just "wrong answer at the end". *)

open Mlc_ir
open Mlc_riscv

type failure = {
  config : string; (* pipeline config that diverged *)
  stage : string; (* oracle stage, e.g. "sim:direct" or "roundtrip:cse" *)
  detail : string;
}

let fail config stage fmt =
  Printf.ksprintf (fun detail -> Some { config; stage; detail }) fmt

(* Printexc renders structured payloads as "_"; render diagnostics
   through their own summary so the report names the real error. *)
let exn_str = function
  | Pass.Pass_failed d | Mlc_diag.Diag.Diagnostic d -> Mlc_diag.Diag.summary d
  | exn -> Printexc.to_string exn

(* The full config matrix: (name, flags, backend) triples. Ablation
   stages are prefixed to keep names unique (the first stage aliases
   [baseline], the last [ours]). The rvv configs compile the same cases
   through the RISC-V Vector backend — the vectorized programs must
   agree with the interpreter bit-for-bit too (tail lanes, accumulator
   carries, reversed .vf forms and all). *)
let configs :
    (string * Mlc_transforms.Pipeline.flags * Mlc_transforms.Backend.t) list =
  let snitch = Mlc_transforms.Backend.snitch in
  [
    ("ours", Mlc_transforms.Pipeline.ours, snitch);
    ("baseline", Mlc_transforms.Pipeline.baseline, snitch);
    ("clang", Mlc_transforms.Pipeline.clang, snitch);
    ("mlir", Mlc_transforms.Pipeline.mlir, snitch);
  ]
  @ List.map
      (fun (n, f) -> ("ablation:" ^ n, f, snitch))
      Mlc_transforms.Pipeline.ablation_stages
  @ [
      ("rvv", Mlc_transforms.Pipeline.ours, Mlc_transforms.Backend.rvv);
      ( "rvv-baseline",
        Mlc_transforms.Pipeline.baseline,
        Mlc_transforms.Backend.rvv );
    ]

(* Bit-level output comparison: catches sign-of-zero and NaN-payload
   drift that a tolerance check would wave through. *)
let first_bit_mismatch ~got ~want =
  let rec go bi = function
    | [], [] -> None
    | g :: gs, w :: ws ->
      if Array.length g <> Array.length w then
        Some (bi, -1, Printf.sprintf "output %d: length %d vs %d" bi
                (Array.length g) (Array.length w))
      else begin
        let hit = ref None in
        (try
           Array.iteri
             (fun i x ->
               if Int64.bits_of_float x <> Int64.bits_of_float w.(i) then begin
                 hit :=
                   Some
                     ( bi, i,
                       Printf.sprintf "output %d[%d]: got %h, want %h" bi i x
                         w.(i) );
                 raise Exit
               end)
             g
         with Exit -> ());
        match !hit with Some m -> Some m | None -> go (bi + 1) (gs, ws)
      end
    | _ -> Some (bi, -1, "output count mismatch")
  in
  go 0 (got, want)

let outputs_check config stage ~got ~want =
  match first_bit_mismatch ~got ~want with
  | None -> None
  | Some (_, _, detail) -> fail config stage "%s" detail

(* Printer->parser fixpoint: the printed IR, re-parsed and re-printed,
   must reproduce itself exactly. Consecutive identical checkpoints are
   deduplicated (no-op passes are common). *)
let roundtrip_checkpoints config (entries : Pass.trace_entry list) =
  let rec go prev = function
    | [] -> None
    | (e : Pass.trace_entry) :: rest ->
      if Some e.ir_after = prev then go prev rest
      else begin
        match
          try Ok (Printer.to_string (Parser.parse_string e.ir_after))
          with exn -> Error (exn_str exn)
        with
        | Error m ->
          fail config ("roundtrip:" ^ e.pass_name) "re-parse failed: %s" m
        | Ok reprinted when not (String.equal reprinted e.ir_after) ->
          fail config ("roundtrip:" ^ e.pass_name)
            "printer->parser->printer is not a fixpoint"
        | Ok _ -> go (Some e.ir_after) rest
      end
  in
  go None entries

(* Compile under one config with all mid-pipeline oracles armed — the
   printer->parser fixpoint, the structural verifier, and the Mlc_verify
   bounds/race checkpoint after every pass. Returns the assembly text
   and the in-place lowered module. *)
let compile_checked ?bundle_ctx
    ?(backend = Mlc_transforms.Backend.snitch) config flags (m : Ir.op) =
  let entries =
    Pass.run_pipeline ~verify_each:true ~trace:true ?bundle_ctx
      ~checkpoint:Mlc_verify.Verify.checkpoint m
      (Mlc_transforms.Backend.passes_for backend flags)
  in
  match roundtrip_checkpoints config entries with
  | Some f -> Error f
  | None -> (
    let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
    List.iter (fun fn -> ignore (Mlc_regalloc.Remat.allocate_with_remat fn)) fns;
    Verifier.verify m;
    match
      List.find_map
        (fun fn ->
          match Mlc_regalloc.Check.check_result fn with
          | Ok () -> None
          | Error msg -> fail config "regalloc-check" "%s: %s" (Rv_func.name fn) msg)
        fns
    with
    | Some f -> Error f
    | None -> Ok (Asm_emit.emit_module m))

let simulate config stage ~engine ~elem ~fn_name ~args ~data ~expected program =
  match
    Mlc.Runner.simulate_program ~engine ~elem ~fn_name ~args ~data program
  with
  | _, outputs, _ -> outputs_check config stage ~got:outputs ~want:expected
  | exception exn ->
    fail config stage "simulation raised %s" (exn_str exn)

(* Check one case under one config; [spec], [data] and [expected] are
   shared across configs. *)
let check_config ~spec ~data ~expected ~replay (config, flags, backend) =
  let module B = Mlc_kernels.Builders in
  let bundle_ctx =
    {
      Mlc_diag.Crash_bundle.flags =
        Some
          (Printf.sprintf "%s (%s)" config
             (Mlc_transforms.Pipeline.describe_flags flags));
      replay = Some replay;
    }
  in
  match
    let m = spec.B.build () in
    compile_checked ~bundle_ctx ~backend config flags m
    |> Result.map (fun asm -> (m, asm))
  with
  | exception exn ->
    fail config "compile" "raised %s" (exn_str exn)
  | Error f -> Some f
  | Ok (m, asm) -> (
    let direct = Insn_emit.emit_module m in
    match
      try Ok (Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm))
      with exn -> Error (exn_str exn)
    with
    | Error msg -> fail config "asm-parse" "%s" msg
    | Ok via_text ->
      if not (Mlc_sim.Program.equal direct via_text) then
        fail config "program-equal"
          "direct and print->parse programs differ"
      else begin
        (* Lint checkpoint: compiler output must be lint-clean. Together
           with the simulation stages below this is a differential test
           of the linter itself: a Stream_fault/Illegal trap on a
           lint-clean program (or a trap-class lint error on a program
           that runs) is a linter bug. *)
        match
          Mlc_analysis.Lint.check_program direct
          |> List.filter (fun (d : Mlc_diag.Diag.t) ->
                 match d.Mlc_diag.Diag.pass with
                 | Some c ->
                   List.mem c backend.Mlc_transforms.Backend.lint_classes
                 | None -> true)
          |> Mlc_analysis.Lint.errors
        with
        | d :: _ -> fail config "lint" "%s" (Mlc_diag.Diag.summary d)
        | [] ->
        let sim stage engine program =
          simulate config stage ~engine ~elem:spec.B.elem
            ~fn_name:spec.B.fn_name ~args:spec.B.args ~data ~expected program
        in
        match sim "sim:direct" Mlc.Runner.Fast direct with
        | Some f -> Some f
        | None -> (
          match sim "sim:via-text" Mlc.Runner.Fast via_text with
          | Some f -> Some f
          | None -> sim "sim:reference" Mlc.Runner.Reference direct)
      end)

(* Full oracle for one case: first failure across the config matrix, or
   None when every config, path and engine agrees with the interpreter
   bit-for-bit. *)
let check (case : Fuzz_case.t) : failure option =
  match Fuzz_case.validate case with
  | Error m -> fail "-" "invalid-case" "%s" m
  | Ok () -> (
    let spec = Fuzz_case.to_spec case in
    let module B = Mlc_kernels.Builders in
    let replay =
      Printf.sprintf "snitchc fuzz --replay '%s'" (Fuzz_case.to_string case)
    in
    let data =
      Mlc.Runner.gen_inputs ~seed:(Fuzz_case.input_seed case) ~elem:spec.B.elem
        spec.B.args
    in
    match
      try Ok (Mlc.Runner.interp_expected spec data)
      with exn -> Error (exn_str exn)
    with
    | Error msg -> fail "-" "interp" "reference interpreter raised %s" msg
    | Ok expected ->
      List.find_map (check_config ~spec ~data ~expected ~replay) configs)
