(* Driver for the differential fuzzer: generate [count] cases from a
   seed, run each through the full oracle matrix, shrink any failure and
   report it with a one-line replay command. *)

type failure_report = {
  index : int; (* case index within the run *)
  case : Fuzz_case.t; (* as generated *)
  shrunk : Fuzz_case.t; (* greedily minimised, still failing *)
  failure : Fuzz_oracle.failure; (* oracle verdict for [shrunk] *)
}

type report = {
  seed : int;
  cases : int;
  configs : int;
  failures : failure_report list;
}

let repro_line case =
  Printf.sprintf "snitchc fuzz --replay '%s'" (Fuzz_case.to_string case)

let pp_failure ppf (fr : failure_report) =
  Format.fprintf ppf
    "@[<v>MISMATCH (case %d) config=%s stage=%s@,  %s@,  case:   %s@,  shrunk: %s@,  repro:  %s"
    fr.index fr.failure.Fuzz_oracle.config fr.failure.Fuzz_oracle.stage
    fr.failure.Fuzz_oracle.detail
    (Fuzz_case.to_string fr.case)
    (Fuzz_case.to_string fr.shrunk)
    (repro_line fr.shrunk);
  (match Mlc_diag.Crash_bundle.last_bundle () with
  | Some p -> Format.fprintf ppf "@,  bundle: %s" p
  | None -> ());
  Format.fprintf ppf "@]"

let fails c = Option.is_some (Fuzz_oracle.check c)

(* Check one already-built case (the --replay path). *)
let check_one ?(index = 0) case =
  match Fuzz_oracle.check case with
  | None -> None
  | Some failure ->
    let shrunk = Fuzz_shrink.minimize ~fails case in
    let failure =
      match Fuzz_oracle.check shrunk with
      | Some f -> f
      | None -> failure (* shrinker raced a flaky predicate; keep original *)
    in
    Some { index; case; shrunk; failure }

(* Run the fuzzer. [log] receives progress lines; failures stop the run
   after [max_failures] (shrinking is expensive, and one minimal repro
   per root cause is what the burn-down needs). *)
let run ?(log = fun _ -> ()) ?(max_failures = 3) ~seed ~count () =
  let failures = ref [] in
  (try
     for i = 0 to count - 1 do
       let st = Random.State.make [| seed; i; 0xF022 |] in
       let case = Fuzz_gen.gen st in
       if i > 0 && i mod 25 = 0 then
         log (Printf.sprintf "fuzz: %d/%d cases, %d mismatches" i count
                (List.length !failures));
       match check_one ~index:i case with
       | None -> ()
       | Some fr ->
         log (Format.asprintf "%a" pp_failure fr);
         failures := fr :: !failures;
         if List.length !failures >= max_failures then raise Exit
     done
   with Exit -> ());
  {
    seed;
    cases = count;
    configs = List.length Fuzz_oracle.configs;
    failures = List.rev !failures;
  }
