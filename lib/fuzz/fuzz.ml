(* Driver for the differential fuzzer: generate [count] cases from a
   seed, run each through the full oracle matrix, shrink any failure and
   report it with a one-line replay command.

   With [jobs > 1] the cases are checked on a domain pool in chunks,
   with results committed (logged, counted, early-stopped) strictly in
   case-index order — the transcript is byte-identical to a sequential
   run; at most one chunk of extra cases is checked past the stop point
   and discarded. *)

type failure_report = {
  index : int; (* case index within the run *)
  case : Fuzz_case.t; (* as generated *)
  shrunk : Fuzz_case.t; (* greedily minimised, still failing *)
  failure : Fuzz_oracle.failure; (* oracle verdict for [shrunk] *)
  bundle : string option;
      (* last crash bundle of the domain that checked the case, captured
         there — the process-global "last bundle" would be whichever
         worker wrote most recently *)
}

type report = {
  seed : int;
  cases : int;
  configs : int;
  failures : failure_report list;
}

let repro_line case =
  Printf.sprintf "snitchc fuzz --replay '%s'" (Fuzz_case.to_string case)

let pp_failure ppf (fr : failure_report) =
  Format.fprintf ppf
    "@[<v>MISMATCH (case %d) config=%s stage=%s@,  %s@,  case:   %s@,  shrunk: %s@,  repro:  %s"
    fr.index fr.failure.Fuzz_oracle.config fr.failure.Fuzz_oracle.stage
    fr.failure.Fuzz_oracle.detail
    (Fuzz_case.to_string fr.case)
    (Fuzz_case.to_string fr.shrunk)
    (repro_line fr.shrunk);
  (match fr.bundle with
  | Some p -> Format.fprintf ppf "@,  bundle: %s" p
  | None -> ());
  Format.fprintf ppf "@]"

let fails c = Option.is_some (Fuzz_oracle.check c)

(* Check one already-built case (the --replay path). Shrinking re-checks
   many candidates and the final verdict re-checks the winning one, so
   oracle verdicts are memoised by the case codec: every distinct
   candidate compiles its config matrix exactly once. *)
let check_one ?(index = 0) case =
  match Fuzz_oracle.check case with
  | None -> None
  | Some failure ->
    let memo : (string, Fuzz_oracle.failure option) Hashtbl.t =
      Hashtbl.create 64
    in
    let check c =
      let k = Fuzz_case.to_string c in
      match Hashtbl.find_opt memo k with
      | Some r -> r
      | None ->
        let r = Fuzz_oracle.check c in
        Hashtbl.add memo k r;
        r
    in
    let shrunk =
      Fuzz_shrink.minimize ~fails:(fun c -> Option.is_some (check c)) case
    in
    let failure =
      match check shrunk with
      | Some f -> f
      | None -> failure (* shrinker raced a flaky predicate; keep original *)
    in
    Some
      {
        index;
        case;
        shrunk;
        failure;
        bundle = Mlc_diag.Crash_bundle.last_bundle ();
      }

(* Run the fuzzer. [log] receives progress lines; failures stop the run
   after [max_failures] (shrinking is expensive, and one minimal repro
   per root cause is what the burn-down needs). *)
let run ?(log = fun _ -> ()) ?(max_failures = 3) ?(jobs = 1) ~seed ~count () =
  let gen_case i = Fuzz_gen.gen (Random.State.make [| seed; i; 0xF022 |]) in
  let failures = ref [] in
  (* In-order commit of case [i]'s result: the progress line precedes it
     (counting mismatches among cases 0..i-1), exactly as the sequential
     loop logs. *)
  let commit i result =
    if i > 0 && i mod 25 = 0 then
      log (Printf.sprintf "fuzz: %d/%d cases, %d mismatches" i count
             (List.length !failures));
    match result with
    | None -> ()
    | Some fr ->
      log (Format.asprintf "%a" pp_failure fr);
      failures := fr :: !failures;
      if List.length !failures >= max_failures then raise Exit
  in
  (try
     if jobs <= 1 then
       for i = 0 to count - 1 do
         commit i (check_one ~index:i (gen_case i))
       done
     else
       Mlc_parallel.Pool.with_pool ~jobs (fun pool ->
           let chunk = max 1 (jobs * 4) in
           let i = ref 0 in
           while !i < count do
             let hi = min count (!i + chunk) in
             let idxs = List.init (hi - !i) (fun d -> !i + d) in
             let results =
               Mlc_parallel.Pool.map pool
                 (fun idx -> check_one ~index:idx (gen_case idx))
                 idxs
             in
             List.iter2 commit idxs results;
             i := hi
           done)
   with Exit -> ());
  {
    seed;
    cases = count;
    configs = List.length Fuzz_oracle.configs;
    failures = List.rev !failures;
  }
