(** Typed simulator traps. Any runtime fault the simulator detects —
    runaway execution, an out-of-bounds or misaligned TCDM access, a
    misuse of an SSR stream, an illegal instruction shape — surfaces as
    a {!Trap} exception carrying the faulting pc, the disassembled
    instruction at that pc and a machine-state + performance-counter
    dump taken at the fault point. Both execution engines raise
    identical records for the same fault (see DESIGN.md, "Diagnostics,
    traps, and degradation").

    Faults raised while the FREP sequencer is replaying a body are
    attributed to the pc of the [frep.o] instruction itself: the replay
    happens without the integer core, so the frep is the last
    instruction the core issued. *)

type kind =
  | Out_of_fuel  (** the fuel bound hit zero: runaway execution *)
  | Access_fault of { addr : int; width : int }
      (** TCDM access outside the valid window (or arena exhaustion,
          with [addr = -1]) *)
  | Stream_fault of { reason : string }
      (** SSR misuse: unconfigured/exhausted/wrong-direction access *)
  | Illegal of { reason : string }
      (** ill-formed execution: bad scfgwi, non-FPU op under FREP,
          pc out of program bounds, … *)

type t = {
  kind : kind;
  pc : int;  (** pc of the faulting instruction (see FREP note above) *)
  insn : string;  (** disassembled instruction at [pc] *)
  state : string;  (** machine-state + perf dump at the fault point *)
  core : int;
      (** cluster core that faulted; 0 on single-core machines, whose
          rendering is unchanged *)
}

exception Trap of t

(** One-line rendering: "trap at pc N (<insn>): <kind>". *)
val summary : t -> string

(** [summary] of the kind alone, e.g. "out of fuel" or
    "access fault at 0x10020000 (8 bytes)". *)
val describe_kind : kind -> string

(** Multi-line rendering including the state dump. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
