(* The tightly-coupled data memory (TCDM): 128 KiB of software-managed L1,
   the only memory the evaluated kernels touch (paper §2.4, §4.1). *)

(* [banks] holds per-view access counters for the 32 TCDM banks
   (64-bit interleaved). They never affect functional behaviour or
   single-core timing: the cluster engine reads them after each lockstep
   epoch to charge deterministic inter-core bank-contention stalls, then
   resets them. Each core's [view] shares [bytes] but owns its own
   counters, so per-core access profiles stay separable. *)
type t = { base : int; bytes : Bytes.t; banks : int array }

exception Access_fault of { addr : int; width : int; msg : string }

let () =
  Printexc.register_printer (function
    | Access_fault { msg; _ } -> Some (Printf.sprintf "Mem.Access_fault(%s)" msg)
    | _ -> None)

let tcdm_base = 0x10000000
let tcdm_size = 128 * 1024

(* Fresh and reset TCDM contents are poisoned, not zeroed: a kernel that
   forgets a store (e.g. a broken write-only output) must read back
   deterministic garbage rather than a previous run's — or the harness's
   conveniently zeroed — correct answer. 0xAA-filled doubles decode to a
   large negative value, so any leak is loud in a differential check. *)
let poison_byte = '\xAA'

let num_banks = 32

let create () =
  {
    base = tcdm_base;
    bytes = Bytes.make tcdm_size poison_byte;
    banks = Array.make num_banks 0;
  }

(* A second core's window onto the same TCDM contents: shared bytes,
   private bank counters. *)
let view t = { t with banks = Array.make num_banks 0 }

let[@inline] tick t addr =
  let b = (addr - t.base) lsr 3 land (num_banks - 1) in
  t.banks.(b) <- t.banks.(b) + 1

let bank_accesses t = Array.copy t.banks
let reset_banks t = Array.fill t.banks 0 num_banks 0

let check t addr width =
  let off = addr - t.base in
  if off < 0 || off + width > Bytes.length t.bytes then
    raise
      (Access_fault
         {
           addr;
           width;
           msg =
             Printf.sprintf "address 0x%x (+%d bytes) outside TCDM [0x%x, 0x%x)"
               addr width t.base
               (t.base + Bytes.length t.bytes);
         });
  (* Natural alignment: the TCDM banks serve power-of-two widths only at
     multiples of the access width. *)
  if off land (width - 1) <> 0 then
    raise
      (Access_fault
         {
           addr;
           width;
           msg = Printf.sprintf "misaligned %d-byte access at 0x%x" width addr;
         });
  off

let load64 t addr =
  let off = check t addr 8 in
  tick t addr;
  Bytes.get_int64_le t.bytes off

let store64 t addr v =
  let off = check t addr 8 in
  tick t addr;
  Bytes.set_int64_le t.bytes off v

let load32 t addr =
  let off = check t addr 4 in
  tick t addr;
  Bytes.get_int32_le t.bytes off

let store32 t addr v =
  let off = check t addr 4 in
  tick t addr;
  Bytes.set_int32_le t.bytes off v

let load_f64 t addr = Int64.float_of_bits (load64 t addr)
let store_f64 t addr v = store64 t addr (Int64.bits_of_float v)
let load_f32 t addr = Int32.float_of_bits (load32 t addr)
let store_f32 t addr v = store32 t addr (Int32.bits_of_float v)

(* A bump allocator over the TCDM for test/bench harnesses. Alignment is
   fixed at 8 bytes to keep 64-bit stream accesses natural. *)
type arena = { mem : t; mutable next : int }

let arena mem = { mem; next = mem.base }

let alloc arena n_bytes =
  let aligned = (arena.next + 7) / 8 * 8 in
  if aligned + n_bytes > arena.mem.base + tcdm_size then
    raise (Access_fault { addr = -1; width = 0; msg = "TCDM arena exhausted" });
  arena.next <- aligned + n_bytes;
  aligned

let reset arena =
  arena.next <- arena.mem.base;
  Bytes.fill arena.mem.bytes 0 (Bytes.length arena.mem.bytes) poison_byte
