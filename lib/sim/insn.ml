(* Decoded instruction set of the simulated Snitch core: RV64 IM + FD +
   the Snitch extensions (FREP, SSR config, packed SIMD). The DESIGN.md
   substitution note explains why the integer core is modelled as 64-bit
   (the original Snitch is RV32; pointer width does not affect any
   reported metric). *)

type alu = Add | Sub | Mul | Div | And | Or | Xor | Slt | Sll | Sra

type fop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmax
  | Fmin

type prec = D | S

type vfop = Vfadd | Vfsub | Vfmul | Vfmax | Vfmin

type cond = Beq | Bne | Blt | Bge

type t =
  | Li of int * int64 (* rd, imm *)
  | Mv of int * int
  | Alu of alu * int * int * int (* rd, rs1, rs2 *)
  | Alui of alu * int * int * int64 (* rd, rs1, imm *)
  | Load of int * int * int * int (* width, rd, offset, base *)
  | Store of int * int * int * int (* width, rs, offset, base *)
  | Fload of int * int * int * int (* width, fd, offset, base *)
  | Fstore of int * int * int * int (* width, fs, offset, base *)
  | Fop of fop * prec * int * int * int (* fd, fs1, fs2 *)
  | Fmadd of prec * int * int * int * int (* fd, fs1, fs2, fs3 *)
  | Fmv of int * int (* fd, fs *)
  | Fcvt_from_int of prec * int * int (* fd, rs *)
  | Fmv_from_bits of prec * int * int (* fd, rs *)
  | Vf of vfop * int * int * int (* fd, fs1, fs2 *)
  | Vfmac of int * int * int (* fd(acc), fs1, fs2 *)
  | Vfsum of int * int (* fd(acc), fs *)
  | Vfcpka of int * int * int (* fd, fs_lo, fs_hi *)
  | Scfgwi of int * int (* rs1, imm = slot*8+dm *)
  | Csrsi of int * int (* csr, imm *)
  | Csrci of int * int
  | Frep_o of int * int (* rpt reg, n body instructions *)
  | Branch of cond * int * int * int (* rs1, rs2, target pc *)
  | J of int (* target pc *)
  | Ret
  | Nop
  (* Cluster extensions: the hardware barrier and the cluster DMA
     front-end (dmsrc/dmdst/dmstr/dmrep set up a 2D transfer, dmcpy
     launches it, dmwait joins it). All are Ctl_barrier-class for the
     block partitioner: they never appear inside fused blocks. *)
  (* RVV extension (the rvv backend): vl/vtype state, unit-stride
     vector memory, single-width FP arithmetic. Arithmetic element
     width comes from the machine's vtype state (set by vsetvli), as in
     the real ISA; loads/stores carry it in the mnemonic. All are
     stepped per-instruction (Ctl_barrier for the block partitioner);
     their cost model lives in the machine's vector execution path. *)
  | Vsetvli of int * int (* rs (AVL), sew bits; rd is always zero *)
  | Vle of int * int * int (* vd, base, element size in bytes *)
  | Vse of int * int * int (* vs, base, element size in bytes *)
  | Vfmv_vf of int * int (* vd, fs: broadcast scalar *)
  | Vmv_vv of int * int (* vd, vs *)
  | Vfvv of fop * int * int * int (* vd, vs1, vs2: vd = vs1 op vs2 *)
  | Vfvf of fop * bool * int * int * int
      (* vd, vs2, fs; the bool marks the reversed (vfrsub/vfrdiv)
         forms: vd = fs op vs2 instead of vs2 op fs *)
  | Vfmacc_vf of int * int * int (* vd, fs, vs2: vd += fs * vs2 *)
  | Vfmacc_vv of int * int * int (* vd, vs1, vs2: vd += vs1 * vs2 *)
  | Barrier
  | Dm_src of int (* rs: source base address *)
  | Dm_dst of int (* rs: destination base address *)
  | Dm_str of int * int (* rs_src_stride, rs_dst_stride (bytes) *)
  | Dm_rep of int (* rs: row count of the 2D transfer *)
  | Dm_cpy of int (* rs: bytes per row; launches the transfer *)
  | Dm_wait

(* Does this instruction execute in the FPU data path (and therefore count
   toward FPU occupancy and may appear in an FREP body)? *)
let is_fpu = function
  | Fop _ | Fmadd _ | Fmv _ | Fcvt_from_int _ | Fmv_from_bits _ | Vf _
  | Vfmac _ | Vfsum _ | Vfcpka _ -> true
  | Fload _ | Fstore _ -> false
  | _ -> false

(* FLOPs contributed by one dynamic execution (paper §4.1: fmadd counts
   2; packed-SIMD f32 ops count per lane). *)
let flops = function
  | Fop ((Fadd | Fsub | Fmul | Fdiv | Fmax | Fmin), _, _, _, _) -> 1
  | Fmadd _ -> 2
  | Vf _ -> 2
  | Vfmac _ -> 4
  | Vfsum _ -> 2
  | _ -> 0

(* Registers read / written, for the timing scoreboard. Returns
   (int_sources, fp_sources, int_dest, fp_dest). *)
let deps = function
  | Li (rd, _) -> ([], [], Some rd, None)
  | Mv (rd, rs) -> ([ rs ], [], Some rd, None)
  | Alu (_, rd, rs1, rs2) -> ([ rs1; rs2 ], [], Some rd, None)
  | Alui (_, rd, rs1, _) -> ([ rs1 ], [], Some rd, None)
  | Load (_, rd, _, base) -> ([ base ], [], Some rd, None)
  | Store (_, rs, _, base) -> ([ rs; base ], [], None, None)
  | Fload (_, fd, _, base) -> ([ base ], [], None, Some fd)
  | Fstore (_, fs, _, base) -> ([ base ], [ fs ], None, None)
  | Fop (_, _, fd, fs1, fs2) -> ([], [ fs1; fs2 ], None, Some fd)
  | Fmadd (_, fd, fs1, fs2, fs3) -> ([], [ fs1; fs2; fs3 ], None, Some fd)
  | Fmv (fd, fs) -> ([], [ fs ], None, Some fd)
  | Fcvt_from_int (_, fd, rs) -> ([ rs ], [], None, Some fd)
  | Fmv_from_bits (_, fd, rs) -> ([ rs ], [], None, Some fd)
  | Vf (_, fd, fs1, fs2) -> ([], [ fs1; fs2 ], None, Some fd)
  | Vfmac (fd, fs1, fs2) -> ([], [ fd; fs1; fs2 ], None, Some fd)
  | Vfsum (fd, fs) -> ([], [ fd; fs ], None, Some fd)
  | Vfcpka (fd, lo, hi) -> ([], [ lo; hi ], None, Some fd)
  | Scfgwi (rs1, _) -> ([ rs1 ], [], None, None)
  | Csrsi _ | Csrci _ -> ([], [], None, None)
  | Frep_o (rs, _) -> ([ rs ], [], None, None)
  | Branch (_, rs1, rs2, _) -> ([ rs1; rs2 ], [], None, None)
  | J _ | Ret | Nop -> ([], [], None, None)
  | Vsetvli (rs, _) -> ([ rs ], [], None, None)
  | Vle (_, base, _) | Vse (_, base, _) -> ([ base ], [], None, None)
  | Vfmv_vf (_, fs) | Vfvf (_, _, _, _, fs) | Vfmacc_vf (_, fs, _) ->
    ([], [ fs ], None, None)
  | Vmv_vv _ | Vfvv _ | Vfmacc_vv _ -> ([], [], None, None)
  | Dm_src rs | Dm_dst rs | Dm_rep rs | Dm_cpy rs -> ([ rs ], [], None, None)
  | Dm_str (rs1, rs2) -> ([ rs1; rs2 ], [], None, None)
  | Barrier | Dm_wait -> ([], [], None, None)
