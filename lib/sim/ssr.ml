(* Stream semantic register (SSR) address generators (paper §2.4).

   Each data mover supports a 4-dimensional affine access pattern with
   per-dimension upper bounds and byte strides, plus an innermost repeat
   count that serves repeated accesses to the same location without
   touching the memory interconnect (the paper's stride-0 optimisation,
   §3.2 d). The data path is 64-bit; the element size served per access
   defaults to 8 bytes but scalar-f32 streams declare 4-byte elements
   via the width config slot (assembler contract in DESIGN.md) so a
   stream push cannot clobber the element after the one addressed. *)

exception Stream_fault of string

type t = {
  mutable bounds : int array; (* active dims, innermost first *)
  mutable strides : int array; (* byte strides, innermost first *)
  mutable repeat : int; (* extra times each element is served *)
  mutable ptr : int; (* base byte address *)
  mutable idx : int array; (* odometer, innermost first *)
  mutable cur : int; (* ptr + sum idx.(d) * strides.(d), kept incrementally *)
  mutable rep_left : int;
  mutable active : bool;
  mutable finished : bool; (* pattern exhausted; further access faults *)
  mutable is_write : bool;
  mutable width : int; (* element size in bytes: 4 or 8 *)
  mutable served : int; (* elements served so far *)
}

let create () =
  {
    bounds = [||];
    strides = [||];
    repeat = 0;
    ptr = 0;
    idx = [||];
    cur = 0;
    rep_left = 0;
    active = false;
    finished = false;
    is_write = false;
    width = 8;
    served = 0;
  }

(* Raw config slots as written by scfgwi before the pointer write arms the
   stream. *)
type config = {
  mutable c_bounds : int array;
  mutable c_strides : int array;
  mutable c_repeat : int;
  mutable c_width : int;
}

let fresh_config () =
  { c_bounds = Array.make 4 0; c_strides = Array.make 4 0; c_repeat = 0; c_width = 8 }

(* Arm the stream with [dims] active dimensions starting at [ptr]. Bound
   slots hold the iteration count minus one, as in the Snitch ISA. *)
let arm t config ~dims ~ptr ~is_write =
  if dims < 1 || dims > 4 then
    raise (Stream_fault (Printf.sprintf "SSR supports 1-4 dims, got %d" dims));
  t.bounds <- Array.init dims (fun i -> config.c_bounds.(i) + 1);
  t.strides <- Array.init dims (fun i -> config.c_strides.(i));
  t.repeat <- config.c_repeat;
  t.ptr <- ptr;
  t.idx <- Array.make dims 0;
  t.cur <- ptr;
  t.rep_left <- config.c_repeat;
  t.active <- true;
  t.finished <- false;
  t.is_write <- is_write;
  t.width <- config.c_width;
  t.served <- 0

let total_elements t =
  Array.fold_left ( * ) 1 t.bounds * (t.repeat + 1)

let current_address t = t.cur

(* Advance the odometer after one element has been served (accounting for
   the repeat count on reads). The cached address moves with the odometer
   so serving an element costs O(1) in the common no-carry case. *)
let rec bump t d =
  if d >= Array.length t.idx then t.finished <- true
  else begin
    let i = t.idx.(d) + 1 in
    if i >= t.bounds.(d) then begin
      t.idx.(d) <- 0;
      t.cur <- t.cur - ((i - 1) * t.strides.(d));
      bump t (d + 1)
    end
    else begin
      t.idx.(d) <- i;
      t.cur <- t.cur + t.strides.(d)
    end
  end

let advance t =
  if t.rep_left > 0 && not t.is_write then t.rep_left <- t.rep_left - 1
  else begin
    t.rep_left <- t.repeat;
    bump t 0
  end

let next_read_address t =
  if not t.active then
    raise (Stream_fault "read from an unconfigured stream");
  if t.finished then
    raise (Stream_fault "read past the end of the configured stream pattern");
  if t.is_write then raise (Stream_fault "reading from a write stream");
  let a = current_address t in
  t.served <- t.served + 1;
  advance t;
  a

let next_write_address t =
  if not t.active then
    raise (Stream_fault "write to an unconfigured stream");
  if t.finished then
    raise (Stream_fault "write past the end of the configured stream pattern");
  if not t.is_write then raise (Stream_fault "writing to a read stream");
  let a = current_address t in
  t.served <- t.served + 1;
  advance t;
  a
