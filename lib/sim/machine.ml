(* The Snitch core simulator: functional execution plus a cycle-level
   timing model of the documented micro-architecture (paper §2.4, §4.1,
   and the timing contract in DESIGN.md):

   - in-order single-issue integer core (1 instruction/cycle, integer
     loads have a 2-cycle use latency, taken branches cost 2 cycles);
   - a decoupled FPU consuming a FIFO of FP instructions: one starts per
     cycle, results are ready 3 cycles later (3-stage pipeline), so RAW
     dependences stall the FPU — the stalls unroll-and-jam eliminates;
   - FREP: the sequencer replays the buffered FP instructions without the
     integer core, making the core pseudo-dual-issue;
   - SSRs: reads/writes of ft0-ft2 while streaming move elements directly
     between the FPU and the TCDM, with operands always ready.

   FPU utilisation is the ratio of cycles with an FP instruction in the
   EX stage over total execution latency, as in the paper.

   Two execution engines implement this model over pre-decoded
   {!Program.t} values:

   - [run]: the fast path. Scoreboard lookups come from the program's
     flat per-pc metadata arrays (no [Insn.deps] calls, no allocation per
     retired instruction), FREP bodies are validated once per pc, and
     stall-free SSR-streamed FREP bodies take a steady-state timing fast
     path that replaces per-slot scoreboard updates with a closed form.

   - [run_reference]: the original per-instruction loop, kept as the
     timing oracle. Golden tests assert both engines produce bit-identical
     performance counters on every kernel in the registry; the benchmark
     driver uses it to measure the fast path's host-side speedup.

   The timing model itself is identical between the two — the fast path
   is an implementation change, not a model change. *)

exception Exec_error of string

(* Internal: the fuel bound hit zero. Converted to [Trap.Out_of_fuel] at
   the engine boundary; distinct from [Exec_error] so fuel exhaustion
   and illegal execution produce different trap kinds. *)
exception Fuel_exhausted

let err fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

type perf = {
  mutable cycles : int;
  mutable fpu_busy : int; (* dynamic FP-datapath instructions (1 EX cycle each) *)
  mutable flops : int;
  mutable loads : int; (* explicit loads (int + fp) *)
  mutable stores : int;
  mutable freps : int; (* dynamic frep.o issues *)
  mutable retired : int;
  mutable stream_reads : int;
  mutable stream_writes : int;
}

let fresh_perf () =
  {
    cycles = 0;
    fpu_busy = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    freps = 0;
    retired = 0;
    stream_reads = 0;
    stream_writes = 0;
  }

let fpu_latency = 3 (* paper §3.4: three pipeline stages for all FP ops *)
let int_load_latency = 2
let fp_load_latency = 2
let taken_branch_cost = 2

(* The sequencer/FPU instruction FIFO: the integer core stalls when this
   many FP instructions are outstanding (decoupling is deep but not
   unbounded). *)
let fpu_fifo_depth = 16

(* RVV vector unit (the rvv backend): VLEN in bits, the memory port
   width (bytes per cycle of a unit-stride access) and the arithmetic
   datapath width (bits of elements processed per cycle). *)
let vlen_bits = 256
let vmem_bytes_per_cycle = 8
let valu_bits_per_cycle = 128

type t = {
  mem : Mem.t;
  iregs : int64 array;
  fregs : int64 array;
  ssrs : Ssr.t array;
  ssr_cfg : Ssr.config array;
  mutable ssr_enabled : bool;
  (* cluster identity: which core of an [num_cores]-core cluster this
     machine simulates. Single-core machines are core 0 of 1. *)
  core_id : int;
  num_cores : int;
  (* [barrier_hit] is set when a [barrier] executes on a multi-core
     machine: the engines stop with the pc past the barrier and the
     cluster scheduler resumes the core there after synchronising.
     Single-core machines treat [barrier] as a 1-cycle nop. *)
  mutable barrier_hit : bool;
  (* per-core DMA engine front-end registers and completion time *)
  mutable dma_src : int;
  mutable dma_dst : int;
  mutable dma_sstr : int;
  mutable dma_dstr : int;
  mutable dma_reps : int;
  mutable dma_done : int; (* cycle the outstanding transfer completes *)
  mutable dma_bytes : int; (* total bytes moved (cluster reporting) *)
  mutable dma_txns : int; (* dmcpy launches *)
  (* RVV state (the rvv backend): vector register file as one flat byte
     buffer (32 registers x VLEN/8 bytes), the active vector length in
     elements, and the vtype element width in bits *)
  vregs : Bytes.t;
  mutable vl : int;
  mutable vsew : int;
  (* timing state *)
  mutable core_time : int;
  mutable fpu_free_at : int;
  int_ready : int array;
  fp_ready : int array;
  mutable fpu_last_done : int;
  perf : perf;
  mutable fuel : int;
  (* optional instruction trace: a bounded ring of (issue cycle, source
     line) keeping the most recent [trace_cap] entries *)
  trace_enabled : bool;
  trace_cap : int;
  trace_cycles : int array;
  trace_srcs : string array;
  mutable trace_len : int; (* total entries ever pushed *)
  (* fast-engine cache of compiled FREP bodies: per body pc, the SSR
     stream mask the body was specialised for, one fused
     functional+timing closure per slot, and (lazily) one
     functional-only closure per slot for the steady-state replay
     (see [compile_slot]) *)
  mutable frep_compiled : frep_body option array;
  mutable frep_compiled_for : Program.t option;
  (* per-pc FREP decode facts for the program in [frep_compiled_for];
     per machine because programs are shared across concurrent runs *)
  mutable frep_info : Program.frep_info option array;
  (* block-engine state (Block_exec): per block-start pc, the closure
     compiled for [frep_compiled_for] under the recorded stream mask;
     [blk_pc] is the pc of the instruction currently executing inside a
     fused block, maintained by faultable closures so a trap can be
     attributed to the exact instruction *)
  mutable blk_compiled : blk_closure option array;
  mutable blk_pc : int;
}

and frep_body = {
  b_mask : int;
  b_fused : (unit -> unit) array;
  mutable b_fn : (unit -> unit) array option;
}

and blk_closure = {
  bc_streaming : bool; (* the [ssr_enabled] mask compiled against *)
  bc_exec : unit -> int;
      (* executes the whole block; returns the next pc, or [lnot retpc]
         when the block ended in [ret] at [retpc] *)
}

let default_trace_cap = 65536

(* Per-core stack carve-out at the top of the TCDM: core c's sp starts
   [c * stack_bytes] below the top, so cluster cores never collide. *)
let stack_bytes = 1024

let create ?(fuel = 200_000_000) ?(trace = false) ?(trace_cap = default_trace_cap)
    ?mem ?(core_id = 0) ?(num_cores = 1) () =
  if core_id < 0 || core_id >= num_cores then
    invalid_arg "Machine.create: core_id out of range";
  let iregs = Array.make 32 0L in
  (* ABI stack pointer: top of the TCDM, growing down; cluster cores get
     disjoint carve-outs. *)
  iregs.(2) <- Int64.of_int (Mem.tcdm_base + Mem.tcdm_size - (core_id * stack_bytes));
  if trace_cap <= 0 then invalid_arg "Machine.create: trace_cap must be positive";
  {
    mem = (match mem with Some m -> m | None -> Mem.create ());
    iregs;
    fregs = Array.make 32 0L;
    ssrs = Array.init 3 (fun _ -> Ssr.create ());
    ssr_cfg = Array.init 3 (fun _ -> Ssr.fresh_config ());
    ssr_enabled = false;
    core_id;
    num_cores;
    barrier_hit = false;
    dma_src = 0;
    dma_dst = 0;
    dma_sstr = 0;
    dma_dstr = 0;
    dma_reps = 0;
    dma_done = 0;
    dma_bytes = 0;
    dma_txns = 0;
    vregs = Bytes.make (32 * (vlen_bits / 8)) '\000';
    vl = 0;
    vsew = 64;
    core_time = 0;
    fpu_free_at = 0;
    int_ready = Array.make 32 0;
    fp_ready = Array.make 32 0;
    fpu_last_done = 0;
    perf = fresh_perf ();
    fuel;
    trace_enabled = trace;
    trace_cap;
    trace_cycles = (if trace then Array.make trace_cap 0 else [||]);
    trace_srcs = (if trace then Array.make trace_cap "" else [||]);
    trace_len = 0;
    frep_compiled = [||];
    frep_compiled_for = None;
    frep_info = [||];
    blk_compiled = [||];
    blk_pc = 0;
  }

(* (Re)size the per-program decode/compile caches when this machine
   first sees [p] (or switches programs). Shared by both the
   per-instruction fast path and the block engine. *)
let prepare t (p : Program.t) =
  match t.frep_compiled_for with
  | Some q when q == p -> ()
  | _ ->
    let n = Array.length p.Program.insns in
    t.frep_compiled <- Array.make n None;
    t.frep_info <- Array.make n None;
    t.blk_compiled <- Array.make n None;
    t.frep_compiled_for <- Some p

let set_ireg t i v = if i <> 0 then t.iregs.(i) <- v
let get_ireg t i = if i = 0 then 0L else t.iregs.(i)
let set_freg t i v = t.fregs.(i) <- v
let get_freg_raw t i = t.fregs.(i)

let trace_push t cycle src =
  let i = t.trace_len mod t.trace_cap in
  t.trace_cycles.(i) <- cycle;
  t.trace_srcs.(i) <- src;
  t.trace_len <- t.trace_len + 1

(* --- SSR interaction --- *)

(* Streams serve elements of the configured width: 8 bytes by default,
   4 bytes for scalar-f32 streams (zero-extended on reads, low lane on
   writes). A 4-byte write must not touch the element after the one
   addressed — interleaved write patterns revisit neighbouring
   addresses out of order, so a 64-bit store would clobber data that
   has already been produced. *)
let streaming_read t dm =
  let s = t.ssrs.(dm) in
  let addr = Ssr.next_read_address s in
  t.perf.stream_reads <- t.perf.stream_reads + 1;
  if s.Ssr.width = 8 then Mem.load64 t.mem addr
  else Int64.logand (Int64.of_int32 (Mem.load32 t.mem addr)) 0xFFFFFFFFL

let streaming_write t dm v =
  let s = t.ssrs.(dm) in
  let addr = Ssr.next_write_address s in
  t.perf.stream_writes <- t.perf.stream_writes + 1;
  if s.Ssr.width = 8 then Mem.store64 t.mem addr v
  else Mem.store32 t.mem addr (Int64.to_int32 v)

(* ft0-ft2 map to the SSR data movers whenever streaming is enabled;
   accessing an unconfigured one faults (via the canonical
   [Ssr.Stream_fault]) instead of silently touching the architectural
   register. *)
let is_stream_reg t i = t.ssr_enabled && i < 3

(* Fetch an FP source operand: pops a stream element if the register is a
   streaming data register. *)
let fetch_f t i = if is_stream_reg t i then streaming_read t i else t.fregs.(i)

(* Commit an FP result: pushes to the stream if targeting a streaming
   data register. *)
let commit_f t i v =
  if is_stream_reg t i then streaming_write t i v else t.fregs.(i) <- v

(* --- scalar helpers --- *)

let f64_of bits = Int64.float_of_bits bits
let bits_of_f64 f = Int64.bits_of_float f

let lo32 bits = Int32.float_of_bits (Int64.to_int32 bits)
let hi32 bits = Int32.float_of_bits (Int64.to_int32 (Int64.shift_right_logical bits 32))

let pack32 lo hi =
  let l = Int64.of_int32 (Int32.bits_of_float lo) in
  let h = Int64.of_int32 (Int32.bits_of_float hi) in
  Int64.logor
    (Int64.logand l 0xFFFFFFFFL)
    (Int64.shift_left (Int64.logand h 0xFFFFFFFFL) 32)

let with_lo32 bits lo =
  Int64.logor
    (Int64.logand bits 0xFFFFFFFF00000000L)
    (Int64.logand (Int64.of_int32 (Int32.bits_of_float lo)) 0xFFFFFFFFL)

let apply_fop (op : Insn.fop) a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmax -> Float.max a b
  | Fmin -> Float.min a b

let f32_round f = Int32.float_of_bits (Int32.bits_of_float f)

let apply_alu (op : Insn.alu) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if b = 0L then -1L else Int64.div a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Sra -> Int64.shift_right a (Int64.to_int b land 63)

(* --- timing helpers (reference engine; the fast engine reads the
   pre-decoded program arrays instead) --- *)

let ready_ints t srcs = List.fold_left (fun m r -> max m t.int_ready.(r)) 0 srcs

let ready_fps t srcs =
  List.fold_left
    (fun m r -> if is_stream_reg t r then m else max m t.fp_ready.(r))
    0 srcs

(* Execute the FPU part of one dynamic FP-path instruction that becomes
   available to the FPU at [avail]. Updates the FPU timeline and perf. *)
let fpu_execute_timing t insn ~avail =
  let _, fp_srcs, _, fp_dst = Insn.deps insn in
  let start = max (max t.fpu_free_at (ready_fps t fp_srcs)) avail in
  t.fpu_free_at <- start + 1;
  let latency =
    match insn with
    | Insn.Fload _ -> fp_load_latency
    | Insn.Fstore _ -> 1
    | _ -> fpu_latency
  in
  (match fp_dst with
  | Some d when not (is_stream_reg t d) -> t.fp_ready.(d) <- start + latency
  | _ -> ());
  if Insn.is_fpu insn then begin
    t.perf.fpu_busy <- t.perf.fpu_busy + 1;
    t.perf.flops <- t.perf.flops + Insn.flops insn
  end;
  t.fpu_last_done <- max t.fpu_last_done (start + latency)

(* Functional execution of one FP-path instruction (arithmetic, FP
   loads/stores); integer instructions are handled inline in the engines. *)
let fpu_execute_functional t insn =
  match insn with
  | Insn.Fload (width, fd, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    t.perf.loads <- t.perf.loads + 1;
    let v =
      if width = 8 then Mem.load64 t.mem addr
      else Int64.logand (Int64.of_int32 (Mem.load32 t.mem addr)) 0xFFFFFFFFL
    in
    commit_f t fd v
  | Insn.Fstore (width, fs, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    t.perf.stores <- t.perf.stores + 1;
    let v = fetch_f t fs in
    if width = 8 then Mem.store64 t.mem addr v
    else Mem.store32 t.mem addr (Int64.to_int32 v)
  | Insn.Fop (op, prec, fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let v =
      match prec with
      | D -> bits_of_f64 (apply_fop op (f64_of a) (f64_of b))
      | S -> with_lo32 a (f32_round (apply_fop op (lo32 a) (lo32 b)))
    in
    commit_f t fd v
  | Insn.Fmadd (prec, fd, fs1, fs2, fs3) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 and c = fetch_f t fs3 in
    let v =
      match prec with
      | D -> bits_of_f64 (Float.fma (f64_of a) (f64_of b) (f64_of c))
      | S -> with_lo32 a (f32_round (Float.fma (lo32 a) (lo32 b) (lo32 c)))
    in
    commit_f t fd v
  | Insn.Fmv (fd, fs) -> commit_f t fd (fetch_f t fs)
  | Insn.Fcvt_from_int (prec, fd, rs) ->
    let x = Int64.to_float (get_ireg t rs) in
    let v =
      match prec with
      | D -> bits_of_f64 x
      | S -> pack32 (f32_round x) (f32_round x)
    in
    commit_f t fd v
  | Insn.Fmv_from_bits (prec, fd, rs) ->
    let bits = get_ireg t rs in
    let v =
      match prec with
      | D -> bits
      | S ->
        (* fmv.w.x carries a 32-bit payload; following the packed-SIMD
           convention used by fcvt.s.w and the f32 scalar-argument ABI,
           the payload is replicated into both lanes. *)
        let lo = Int64.logand bits 0xFFFFFFFFL in
        Int64.logor lo (Int64.shift_left lo 32)
    in
    commit_f t fd v
  | Insn.Vf (op, fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let fop : Insn.fop =
      match op with
      | Vfadd -> Fadd
      | Vfsub -> Fsub
      | Vfmul -> Fmul
      | Vfmax -> Fmax
      | Vfmin -> Fmin
    in
    let lo = f32_round (apply_fop fop (lo32 a) (lo32 b)) in
    let hi = f32_round (apply_fop fop (hi32 a) (hi32 b)) in
    commit_f t fd (pack32 lo hi)
  | Insn.Vfmac (fd, fs1, fs2) ->
    (* Two-address: the accumulator register is both read and written; a
       streaming accumulator would be ill-formed, so read the register
       file directly. *)
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let acc = t.fregs.(fd) in
    let lo = f32_round (Float.fma (lo32 a) (lo32 b) (lo32 acc)) in
    let hi = f32_round (Float.fma (hi32 a) (hi32 b) (hi32 acc)) in
    commit_f t fd (pack32 lo hi)
  | Insn.Vfsum (fd, fs) ->
    let s = fetch_f t fs in
    let acc = t.fregs.(fd) in
    let lo = f32_round (f32_round (lo32 acc +. lo32 s) +. hi32 s) in
    commit_f t fd (pack32 lo (hi32 acc))
  | Insn.Vfcpka (fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    commit_f t fd (pack32 (lo32 a) (lo32 b))
  | _ -> err "instruction is not FP-path executable"

(* --- SSR configuration (assembler contract in DESIGN.md) --- *)

let do_scfgwi t value imm =
  if t.ssr_enabled then err "scfgwi while streaming is enabled";
  let slot = imm / 8 and dm = imm mod 8 in
  if dm < 0 || dm > 2 then err "scfgwi: bad data mover %d" dm;
  let cfg = t.ssr_cfg.(dm) in
  let v = Int64.to_int value in
  match slot with
  | 1 -> cfg.Ssr.c_repeat <- v
  | 2 | 3 | 4 | 5 -> cfg.Ssr.c_bounds.(slot - 2) <- v
  | 6 | 7 | 8 | 9 -> cfg.Ssr.c_strides.(slot - 6) <- v
  | 10 ->
    if v <> 4 && v <> 8 then err "scfgwi: element width must be 4 or 8, got %d" v;
    cfg.Ssr.c_width <- v
  | s when s >= 24 && s < 28 ->
    Ssr.arm t.ssrs.(dm) cfg ~dims:(s - 24 + 1) ~ptr:v ~is_write:false
  | s when s >= 28 && s < 32 ->
    Ssr.arm t.ssrs.(dm) cfg ~dims:(s - 28 + 1) ~ptr:v ~is_write:true
  | s -> err "scfgwi: bad slot %d" s

(* --- RVV vector unit (shared by both engines) ---

   Functional semantics and cost model for the vector instructions. The
   vector unit blocks the core for the whole operation (no overlap with
   scalar issue), so both engines call this one helper with the same
   integer-source [issue] time and stay cycle-identical by construction.

   Per-lane arithmetic composes exactly as the scalar FPU path does
   (f64 via [apply_fop]/[Float.fma] on the raw lane bits, f32 through
   [f32_round]), so vectorized kernels stay bit-identical to their
   scalar lowering and to the interpreter. Tail lanes (>= vl) are
   unchanged (tail-agnostic in the undisturbed sense, identically in
   both engines). *)

let vreg_bytes = vlen_bits / 8

let vget64 t r i = Bytes.get_int64_le t.vregs ((r * vreg_bytes) + (i * 8))
let vset64 t r i v = Bytes.set_int64_le t.vregs ((r * vreg_bytes) + (i * 8)) v
let vgetf32 t r i =
  Int32.float_of_bits (Bytes.get_int32_le t.vregs ((r * vreg_bytes) + (i * 4)))
let vsetf32 t r i f =
  Bytes.set_int32_le t.vregs ((r * vreg_bytes) + (i * 4)) (Int32.bits_of_float f)

(* Cycles a vector arithmetic/move op occupies the datapath. *)
let varith_cost t =
  max 1 (((t.vl * t.vsew) + valu_bits_per_cycle - 1) / valu_bits_per_cycle)

let exec_vector t insn ~issue =
  match insn with
  | Insn.Vsetvli (rs, sew) ->
    let avl = Int64.to_int (get_ireg t rs) in
    t.vl <- max 0 (min avl (vlen_bits / sew));
    t.vsew <- sew;
    t.core_time <- issue + 1
  | Insn.Vle (vd, base, esz) ->
    let addr = Int64.to_int (get_ireg t base) in
    t.perf.loads <- t.perf.loads + 1;
    (if esz = 8 then
       for i = 0 to t.vl - 1 do
         vset64 t vd i (Mem.load64 t.mem (addr + (i * 8)))
       done
     else
       for i = 0 to t.vl - 1 do
         vsetf32 t vd i
           (Int32.float_of_bits (Mem.load32 t.mem (addr + (i * 4))))
       done);
    t.core_time <-
      issue
      + max 1 (((t.vl * esz) + vmem_bytes_per_cycle - 1) / vmem_bytes_per_cycle)
  | Insn.Vse (vs, base, esz) ->
    let addr = Int64.to_int (get_ireg t base) in
    t.perf.stores <- t.perf.stores + 1;
    (if esz = 8 then
       for i = 0 to t.vl - 1 do
         Mem.store64 t.mem (addr + (i * 8)) (vget64 t vs i)
       done
     else
       for i = 0 to t.vl - 1 do
         Mem.store32 t.mem (addr + (i * 4))
           (Int32.bits_of_float (vgetf32 t vs i))
       done);
    t.core_time <-
      issue
      + max 1 (((t.vl * esz) + vmem_bytes_per_cycle - 1) / vmem_bytes_per_cycle)
  | Insn.Vfmv_vf (vd, fs) ->
    let issue = max issue t.fp_ready.(fs) in
    let bits = get_freg_raw t fs in
    (if t.vsew = 64 then
       for i = 0 to t.vl - 1 do
         vset64 t vd i bits
       done
     else
       for i = 0 to t.vl - 1 do
         vsetf32 t vd i (lo32 bits)
       done);
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.core_time <- issue + c
  | Insn.Vmv_vv (vd, vs) ->
    Bytes.blit t.vregs (vs * vreg_bytes) t.vregs (vd * vreg_bytes) vreg_bytes;
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.core_time <- issue + c
  | Insn.Vfvv (op, vd, vs1, vs2) ->
    (if t.vsew = 64 then
       for i = 0 to t.vl - 1 do
         vset64 t vd i
           (bits_of_f64
              (apply_fop op (f64_of (vget64 t vs1 i)) (f64_of (vget64 t vs2 i))))
       done
     else
       for i = 0 to t.vl - 1 do
         vsetf32 t vd i
           (f32_round (apply_fop op (vgetf32 t vs1 i) (vgetf32 t vs2 i)))
       done);
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.perf.flops <- t.perf.flops + t.vl;
    t.core_time <- issue + c
  | Insn.Vfvf (op, reversed, vd, vs2, fs) ->
    let issue = max issue t.fp_ready.(fs) in
    let bits = get_freg_raw t fs in
    (if t.vsew = 64 then begin
       let s = f64_of bits in
       for i = 0 to t.vl - 1 do
         let a = f64_of (vget64 t vs2 i) in
         let r = if reversed then apply_fop op s a else apply_fop op a s in
         vset64 t vd i (bits_of_f64 r)
       done
     end
     else begin
       let s = lo32 bits in
       for i = 0 to t.vl - 1 do
         let a = vgetf32 t vs2 i in
         let r = if reversed then apply_fop op s a else apply_fop op a s in
         vsetf32 t vd i (f32_round r)
       done
     end);
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.perf.flops <- t.perf.flops + t.vl;
    t.core_time <- issue + c
  | Insn.Vfmacc_vf (vd, fs, vs2) ->
    let issue = max issue t.fp_ready.(fs) in
    let bits = get_freg_raw t fs in
    (if t.vsew = 64 then begin
       let s = f64_of bits in
       for i = 0 to t.vl - 1 do
         vset64 t vd i
           (bits_of_f64
              (Float.fma s (f64_of (vget64 t vs2 i)) (f64_of (vget64 t vd i))))
       done
     end
     else begin
       let s = lo32 bits in
       for i = 0 to t.vl - 1 do
         vsetf32 t vd i
           (f32_round (Float.fma s (vgetf32 t vs2 i) (vgetf32 t vd i)))
       done
     end);
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.perf.flops <- t.perf.flops + (2 * t.vl);
    t.core_time <- issue + c
  | Insn.Vfmacc_vv (vd, vs1, vs2) ->
    (if t.vsew = 64 then
       for i = 0 to t.vl - 1 do
         vset64 t vd i
           (bits_of_f64
              (Float.fma
                 (f64_of (vget64 t vs1 i))
                 (f64_of (vget64 t vs2 i))
                 (f64_of (vget64 t vd i))))
       done
     else
       for i = 0 to t.vl - 1 do
         vsetf32 t vd i
           (f32_round
              (Float.fma (vgetf32 t vs1 i) (vgetf32 t vs2 i) (vgetf32 t vd i)))
       done);
    let c = varith_cost t in
    t.perf.fpu_busy <- t.perf.fpu_busy + c;
    t.perf.flops <- t.perf.flops + (2 * t.vl);
    t.core_time <- issue + c
  | _ -> err "instruction is not vector executable"

(* --- main loops --- *)

type outcome = { perf : perf; final_pc : int }

let burn_fuel t =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then raise Fuel_exhausted

let out_of_fuel () = raise Fuel_exhausted

(* --- the trap boundary (shared by both engines) ---

   A machine-state + perf dump taken at the fault point. Only functional
   and integer-core timing state goes in: both engines maintain it
   identically at instruction granularity, so the dump — like the whole
   trap record — is bit-identical across engines for the same fault. *)
let dump_state (t : t) =
  let b = Buffer.create 512 in
  t.perf.cycles <- max t.core_time t.fpu_last_done;
  Printf.bprintf b
    "perf: cycles=%d retired=%d fpu_busy=%d flops=%d loads=%d stores=%d \
     freps=%d stream_reads=%d stream_writes=%d\n"
    t.perf.cycles t.perf.retired t.perf.fpu_busy t.perf.flops t.perf.loads
    t.perf.stores t.perf.freps t.perf.stream_reads t.perf.stream_writes;
  Printf.bprintf b "fuel left: %d\n" (max t.fuel 0);
  if t.vl <> 0 then Printf.bprintf b "vl=%d sew=e%d\n" t.vl t.vsew;
  Array.iteri
    (fun i v -> if i > 0 && v <> 0L then Printf.bprintf b "x%d = 0x%Lx\n" i v)
    t.iregs;
  Array.iteri
    (fun i v -> if v <> 0L then Printf.bprintf b "f%d = 0x%Lx\n" i v)
    t.fregs;
  Array.iteri
    (fun i (s : Ssr.t) ->
      if s.Ssr.active then
        Printf.bprintf b "ssr%d: %s width=%d served=%d/%d cur=0x%x%s\n" i
          (if s.Ssr.is_write then "write" else "read")
          s.Ssr.width s.Ssr.served (Ssr.total_elements s) s.Ssr.cur
          (if s.Ssr.finished then " finished" else ""))
    t.ssrs;
  Buffer.contents b

(* Convert a fault escaping an engine's dispatch loop into a typed trap
   at [pc]. For faults raised during FREP replay [pc] is the pc of the
   frep.o itself in both engines (neither advances the pc until the
   whole replay retires) — the sequencer replays without the core, so
   the frep is the last instruction the core issued. Unknown exceptions
   pass through; every raise preserves the original backtrace. *)
let raise_as_trap t (p : Program.t) pc exn =
  let bt = Printexc.get_raw_backtrace () in
  let kind =
    match exn with
    | Fuel_exhausted -> Some Trap.Out_of_fuel
    | Mem.Access_fault { addr; width; _ } ->
      Some (Trap.Access_fault { addr; width })
    | Ssr.Stream_fault reason -> Some (Trap.Stream_fault { reason })
    | Exec_error reason -> Some (Trap.Illegal { reason })
    | _ -> None
  in
  match kind with
  | None -> Printexc.raise_with_backtrace exn bt
  | Some kind ->
    let insn =
      let src = Lazy.force p.Program.source in
      if pc >= 0 && pc < Array.length src then src.(pc) else "<no instruction>"
    in
    Printexc.raise_with_backtrace
      (Trap.Trap { Trap.kind; pc; insn; state = dump_state t; core = t.core_id })
      bt

(* --- FREP support for the fast engine --- *)

(* Validate the body of the frep.o at [pc] (FPU-only instructions) and
   compute its cached facts; called once per pc. *)
let frep_decode t (p : Program.t) pc body_len =
  for k = 1 to body_len do
    if not p.Program.is_fpu.(pc + k) then
      err "frep body contains a non-FPU instruction: %s"
        (Lazy.force p.Program.source).(pc + k)
  done;
  let srcs = Hashtbl.create 8 and dsts = Hashtbl.create 8 in
  let note tbl r = if r >= 0 then Hashtbl.replace tbl r () in
  let flops = ref 0 in
  for k = 1 to body_len do
    let bpc = pc + k in
    note srcs p.Program.fp_src1.(bpc);
    note srcs p.Program.fp_src2.(bpc);
    note srcs p.Program.fp_src3.(bpc);
    note dsts p.Program.fp_dst.(bpc);
    flops := !flops + p.Program.flops.(bpc)
  done;
  let keys tbl = Hashtbl.fold (fun r () acc -> r :: acc) tbl [] |> Array.of_list in
  let dst_regs = keys dsts in
  let info =
    {
      Program.flops_per_iter = !flops;
      src_regs = keys srcs;
      dst_regs;
      (* Only ft0-ft2 can stream, so a body writing any other register
         updates the scoreboard and cannot be stall-free. *)
      stallfree_candidate = Array.for_all (fun r -> r < 3) dst_regs;
    }
  in
  t.frep_info.(pc) <- Some info;
  info

(* The FP-source ready time of the pre-decoded instruction at [pc],
   folded into [m]; streaming registers are always ready. *)
let[@inline] fp_ready_from t (p : Program.t) pc m =
  let rd r m =
    if r >= 0 && not (is_stream_reg t r) then max m t.fp_ready.(r) else m
  in
  rd p.Program.fp_src3.(pc) (rd p.Program.fp_src2.(pc) (rd p.Program.fp_src1.(pc) m))

(* Timing of one FP-path instruction at [pc] becoming available at
   [avail] — the pre-decoded equivalent of [fpu_execute_timing]. *)
let[@inline] fpu_timing_fast t (p : Program.t) pc ~avail =
  let start = max t.fpu_free_at avail in
  let start = fp_ready_from t p pc start in
  t.fpu_free_at <- start + 1;
  let latency =
    let c = p.Program.fp_class.(pc) in
    if c = Program.class_fp_load then fp_load_latency
    else if c = Program.class_fp_store then 1
    else fpu_latency
  in
  let d = p.Program.fp_dst.(pc) in
  if d >= 0 && not (is_stream_reg t d) then t.fp_ready.(d) <- start + latency;
  if p.Program.is_fpu.(pc) then begin
    t.perf.fpu_busy <- t.perf.fpu_busy + 1;
    t.perf.flops <- t.perf.flops + p.Program.flops.(pc)
  end;
  if start + latency > t.fpu_last_done then t.fpu_last_done <- start + latency

(* --- compiled FREP bodies (fast engine) ---

   FREP replay is the simulator's hot loop: the same handful of FPU
   instructions execute hundreds of times with unchanging structure
   (stream-ness of ft0-ft2 cannot change mid-replay — only scfgwi and
   csrsi/csrci arm or enable streams, and bodies are FPU-only). The
   fast engine therefore compiles a body once per (pc, stream mask)
   into an array of fused functional+timing closures with operand
   stream-ness, flop counts and the uniform FPU latency baked in, and
   replays the closures for every iteration after the first. The first
   iteration always runs through the generic per-slot path, so faults
   (direction mismatches, non-FPU bodies) and the [avail] lower bound
   on the first slot's start time surface identically; from the second
   iteration on [fpu_free_at > avail] holds, so the closures can drop
   the [avail] term.

   The memory and stream accesses below replicate [Mem.load64],
   [Mem.store64] and [Ssr.next_read_address]/[next_write_address]
   inline (same checks, same faults — the cold paths delegate to the
   originals) so the common case compiles to straight-line code in
   this unit. *)

external bytes_get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external bytes_set64u : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap64 : int64 -> int64 = "%bswap_int64"

let[@inline] mem_get64 (m : Mem.t) addr =
  let off = addr - m.Mem.base in
  if off < 0 || off + 8 > Bytes.length m.Mem.bytes || off land 7 <> 0 then
    ignore (Mem.load64 m addr) (* raises the canonical Access_fault *);
  Mem.tick m addr;
  let v = bytes_get64u m.Mem.bytes off in
  if Sys.big_endian then swap64 v else v

let[@inline] mem_set64 (m : Mem.t) addr v =
  let off = addr - m.Mem.base in
  if off < 0 || off + 8 > Bytes.length m.Mem.bytes || off land 7 <> 0 then
    Mem.store64 m addr v (* raises the canonical Access_fault *)
  else begin
    Mem.tick m addr;
    bytes_set64u m.Mem.bytes off (if Sys.big_endian then swap64 v else v)
  end

(* 4-byte stream elements (scalar f32) are rare relative to the f64 hot
   path: delegate to the bounds-checked [Mem] accessors directly. *)
let[@inline] stream_get t (s : Ssr.t) addr =
  if s.Ssr.width = 8 then mem_get64 t.mem addr
  else Int64.logand (Int64.of_int32 (Mem.load32 t.mem addr)) 0xFFFFFFFFL

let[@inline] stream_set t (s : Ssr.t) addr v =
  if s.Ssr.width = 8 then mem_set64 t.mem addr v
  else Mem.store32 t.mem addr (Int64.to_int32 v)

(* [Ssr.advance] with its common cases unrolled in this unit: repeat
   service and the innermost no-carry bump; odometer wrap-around falls
   back to [Ssr.bump]. *)
let[@inline] ssr_advance_read (s : Ssr.t) =
  if s.Ssr.rep_left > 0 then s.Ssr.rep_left <- s.Ssr.rep_left - 1
  else begin
    s.Ssr.rep_left <- s.Ssr.repeat;
    let i = s.Ssr.idx.(0) + 1 in
    if i < s.Ssr.bounds.(0) then begin
      s.Ssr.idx.(0) <- i;
      s.Ssr.cur <- s.Ssr.cur + s.Ssr.strides.(0)
    end
    else Ssr.bump s 0
  end

let[@inline] pop_stream t i =
  let s = t.ssrs.(i) in
  if s.Ssr.finished || s.Ssr.is_write || not s.Ssr.active then
    ignore (Ssr.next_read_address s) (* raises the canonical Stream_fault *);
  let a = s.Ssr.cur in
  s.Ssr.served <- s.Ssr.served + 1;
  ssr_advance_read s;
  t.perf.stream_reads <- t.perf.stream_reads + 1;
  stream_get t s a

let[@inline] push_stream t i v =
  let s = t.ssrs.(i) in
  if s.Ssr.finished || (not s.Ssr.is_write) || not s.Ssr.active then
    ignore (Ssr.next_write_address s) (* raises the canonical Stream_fault *);
  let a = s.Ssr.cur in
  s.Ssr.served <- s.Ssr.served + 1;
  (* writes ignore the repeat count (see [Ssr.advance]) *)
  s.Ssr.rep_left <- s.Ssr.repeat;
  let i0 = s.Ssr.idx.(0) + 1 in
  (if i0 < s.Ssr.bounds.(0) then begin
     s.Ssr.idx.(0) <- i0;
     s.Ssr.cur <- s.Ssr.cur + s.Ssr.strides.(0)
   end
   else Ssr.bump s 0);
  t.perf.stream_writes <- t.perf.stream_writes + 1;
  stream_set t s a v

(* Scoreboard bookkeeping shared by the compiled slots: all FREP body
   instructions are FPU-class, so the latency is the uniform
   [fpu_latency] and busy/flops always count. [start] must already fold
   in the ready times of the non-stream sources. *)
let[@inline] compiled_timing t start ~dst ~dst_streams ~flops =
  t.fpu_free_at <- start + 1;
  if not dst_streams then t.fp_ready.(dst) <- start + fpu_latency;
  t.perf.fpu_busy <- t.perf.fpu_busy + 1;
  t.perf.flops <- t.perf.flops + flops;
  if start + fpu_latency > t.fpu_last_done then
    t.fpu_last_done <- start + fpu_latency

(* Compile the body slot at [bpc] under the current stream mask. Only
   the double-precision scalar shapes that dominate real kernels get a
   fused closure; everything else falls back to the generic
   executor+timing pair (with [avail = 0]: by the time a compiled body
   runs, [fpu_free_at] already exceeds the replay's [avail]). *)
let compile_slot t (p : Program.t) bpc =
  let insn = p.Program.insns.(bpc) in
  let flops = p.Program.flops.(bpc) in
  match insn with
  | Insn.Fmadd (Insn.D, fd, fs1, fs2, fs3) ->
    let st1 = is_stream_reg t fs1
    and st2 = is_stream_reg t fs2
    and st3 = is_stream_reg t fs3
    and std = is_stream_reg t fd in
    fun () ->
      let a = f64_of (if st1 then pop_stream t fs1 else t.fregs.(fs1))
      and b = f64_of (if st2 then pop_stream t fs2 else t.fregs.(fs2))
      and c = f64_of (if st3 then pop_stream t fs3 else t.fregs.(fs3)) in
      let v = bits_of_f64 (Float.fma a b c) in
      (if std then push_stream t fd v else t.fregs.(fd) <- v);
      let start = t.fpu_free_at in
      let start =
        if st1 then start
        else if t.fp_ready.(fs1) > start then t.fp_ready.(fs1)
        else start
      in
      let start =
        if st2 then start
        else if t.fp_ready.(fs2) > start then t.fp_ready.(fs2)
        else start
      in
      let start =
        if st3 then start
        else if t.fp_ready.(fs3) > start then t.fp_ready.(fs3)
        else start
      in
      compiled_timing t start ~dst:fd ~dst_streams:std ~flops
  | Insn.Fop (op, Insn.D, fd, fs1, fs2) ->
    let st1 = is_stream_reg t fs1
    and st2 = is_stream_reg t fs2
    and std = is_stream_reg t fd in
    fun () ->
      let a = f64_of (if st1 then pop_stream t fs1 else t.fregs.(fs1))
      and b = f64_of (if st2 then pop_stream t fs2 else t.fregs.(fs2)) in
      let v = bits_of_f64 (apply_fop op a b) in
      (if std then push_stream t fd v else t.fregs.(fd) <- v);
      let start = t.fpu_free_at in
      let start =
        if st1 then start
        else if t.fp_ready.(fs1) > start then t.fp_ready.(fs1)
        else start
      in
      let start =
        if st2 then start
        else if t.fp_ready.(fs2) > start then t.fp_ready.(fs2)
        else start
      in
      compiled_timing t start ~dst:fd ~dst_streams:std ~flops
  | Insn.Fmv (fd, fs) ->
    let st1 = is_stream_reg t fs and std = is_stream_reg t fd in
    fun () ->
      let v = if st1 then pop_stream t fs else t.fregs.(fs) in
      (if std then push_stream t fd v else t.fregs.(fd) <- v);
      let start = t.fpu_free_at in
      let start =
        if st1 then start
        else if t.fp_ready.(fs) > start then t.fp_ready.(fs)
        else start
      in
      compiled_timing t start ~dst:fd ~dst_streams:std ~flops
  | _ ->
    fun () ->
      fpu_execute_functional t insn;
      fpu_timing_fast t p bpc ~avail:0

(* Functional-only variant of [compile_slot], for replay phases whose
   timing is derived in closed form (the steady-state paths). The
   functional snippets mirror [compile_slot] exactly. *)
let compile_slot_fn t (p : Program.t) bpc =
  let insn = p.Program.insns.(bpc) in
  match insn with
  | Insn.Fmadd (Insn.D, fd, fs1, fs2, fs3) ->
    let st1 = is_stream_reg t fs1
    and st2 = is_stream_reg t fs2
    and st3 = is_stream_reg t fs3
    and std = is_stream_reg t fd in
    fun () ->
      let a = f64_of (if st1 then pop_stream t fs1 else t.fregs.(fs1))
      and b = f64_of (if st2 then pop_stream t fs2 else t.fregs.(fs2))
      and c = f64_of (if st3 then pop_stream t fs3 else t.fregs.(fs3)) in
      let v = bits_of_f64 (Float.fma a b c) in
      if std then push_stream t fd v else t.fregs.(fd) <- v
  | Insn.Fop (op, Insn.D, fd, fs1, fs2) ->
    let st1 = is_stream_reg t fs1
    and st2 = is_stream_reg t fs2
    and std = is_stream_reg t fd in
    fun () ->
      let a = f64_of (if st1 then pop_stream t fs1 else t.fregs.(fs1))
      and b = f64_of (if st2 then pop_stream t fs2 else t.fregs.(fs2)) in
      let v = bits_of_f64 (apply_fop op a b) in
      if std then push_stream t fd v else t.fregs.(fd) <- v
  | Insn.Fmv (fd, fs) ->
    let st1 = is_stream_reg t fs and std = is_stream_reg t fd in
    fun () ->
      let v = if st1 then pop_stream t fs else t.fregs.(fs) in
      if std then push_stream t fd v else t.fregs.(fd) <- v
  | _ -> fun () -> fpu_execute_functional t insn

let[@inline] stream_mask t =
  (if is_stream_reg t 0 then 1 else 0)
  lor (if is_stream_reg t 1 then 2 else 0)
  lor (if is_stream_reg t 2 then 4 else 0)

let compiled_body t (p : Program.t) pc body_len =
  let mask = stream_mask t in
  match t.frep_compiled.(pc) with
  | Some body when body.b_mask = mask -> body
  | _ ->
    let body =
      {
        b_mask = mask;
        b_fused = Array.init body_len (fun k -> compile_slot t p (pc + k + 1));
        b_fn = None;
      }
    in
    t.frep_compiled.(pc) <- Some body;
    body

let fn_body t (p : Program.t) pc body_len body =
  match body.b_fn with
  | Some a -> a
  | None ->
    let a = Array.init body_len (fun k -> compile_slot_fn t p (pc + k + 1)) in
    body.b_fn <- Some a;
    a

(* Execute the frep.o at [pc] on the fast engine. The frep.o instruction
   itself has already been issued ([avail] = core time after issue).

   Steady-state fast path: when every FP register the body touches is an
   actively-streaming SSR data register, no scoreboard state constrains
   issue — every slot starts exactly one cycle after the previous one
   (sources always ready, destinations are streams, all body instructions
   have the uniform [fpu_latency]). The whole replay's timing then has a
   closed form and only the functional work (stream pops/pushes, FP
   arithmetic) runs per iteration. Bit-identical to the per-slot
   recurrence by construction. *)
let frep_execute_fast t (p : Program.t) pc body_len ~iterations ~avail =
  let insns = p.Program.insns in
  let info =
    match t.frep_info.(pc) with
    | Some info -> info
    | None -> frep_decode t p pc body_len
  in
  let start0 = max t.fpu_free_at avail in
  let stall_free =
    info.Program.stallfree_candidate
    && Array.for_all (fun r -> is_stream_reg t r) info.Program.dst_regs
    && Array.for_all
         (fun r -> is_stream_reg t r || t.fp_ready.(r) <= start0)
         info.Program.src_regs
  in
  if stall_free && not t.trace_enabled then begin
    let total = body_len * iterations in
    if iterations > 1 then begin
      let body = compiled_body t p pc body_len in
      let fn = fn_body t p pc body_len body in
      for _iter = 1 to iterations do
        (* Fuel is checked once per body batch; same out-of-fuel outcome
           as the per-instruction check, at iteration granularity. *)
        t.fuel <- t.fuel - body_len;
        if t.fuel <= 0 then out_of_fuel ();
        for k = 0 to body_len - 1 do (Array.unsafe_get fn k) () done
      done
    end
    else
      for _iter = 1 to iterations do
        t.fuel <- t.fuel - body_len;
        if t.fuel <= 0 then out_of_fuel ();
        for k = 1 to body_len do
          fpu_execute_functional t insns.(pc + k)
        done
      done;
    t.perf.retired <- t.perf.retired + total;
    t.perf.fpu_busy <- t.perf.fpu_busy + total;
    t.perf.flops <- t.perf.flops + (info.Program.flops_per_iter * iterations);
    t.fpu_free_at <- start0 + total;
    let last = start0 + total - 1 + fpu_latency in
    if last > t.fpu_last_done then t.fpu_last_done <- last
  end
  else if (not t.trace_enabled) && iterations > 1 then begin
    (* First iteration through the generic per-slot path: body faults
       and the [avail] lower bound on the first slot surface here.
       Later iterations replay the compiled body.

       Dense-warp: an iteration whose FPU timeline advanced by exactly
       [body_len] issued every slot back-to-back (zero stalls). Two
       consecutive dense iterations pin every in-body dependency to its
       dense-relative position, so by induction all remaining
       iterations are dense too: each start time shifts by [body_len]
       per iteration, constants stay ready, and streams are always
       ready. The remaining iterations then run functional-only and
       the scoreboard is advanced in closed form — bit-identical to
       the per-slot recurrence. *)
    t.fuel <- t.fuel - body_len;
    if t.fuel <= 0 then out_of_fuel ();
    for k = 1 to body_len do
      let bpc = pc + k in
      fpu_execute_functional t insns.(bpc);
      fpu_timing_fast t p bpc ~avail
    done;
    let body = compiled_body t p pc body_len in
    let fused = body.b_fused in
    let done_ = ref 1 in
    let prev_dense = ref false and warp = ref false in
    while (not !warp) && !done_ < iterations do
      t.fuel <- t.fuel - body_len;
      if t.fuel <= 0 then out_of_fuel ();
      let free0 = t.fpu_free_at in
      for k = 0 to body_len - 1 do (Array.unsafe_get fused k) () done;
      incr done_;
      let dense = t.fpu_free_at - free0 = body_len in
      if dense && !prev_dense then warp := true else prev_dense := dense
    done;
    if !warp && !done_ < iterations then begin
      let remaining = iterations - !done_ in
      let fn = fn_body t p pc body_len body in
      for _iter = 1 to remaining do
        t.fuel <- t.fuel - body_len;
        if t.fuel <= 0 then out_of_fuel ();
        for k = 0 to body_len - 1 do (Array.unsafe_get fn k) () done
      done;
      let shift = body_len * remaining in
      t.fpu_free_at <- t.fpu_free_at + shift;
      Array.iter
        (fun r ->
          if not (is_stream_reg t r) then
            t.fp_ready.(r) <- t.fp_ready.(r) + shift)
        info.Program.dst_regs;
      let last = t.fpu_free_at - 1 + fpu_latency in
      if last > t.fpu_last_done then t.fpu_last_done <- last;
      t.perf.fpu_busy <- t.perf.fpu_busy + shift;
      t.perf.flops <-
        t.perf.flops + (info.Program.flops_per_iter * remaining)
    end;
    t.perf.retired <- t.perf.retired + (body_len * iterations)
  end
  else begin
    let src = if t.trace_enabled then Lazy.force p.Program.source else [||] in
    for _iter = 1 to iterations do
      t.fuel <- t.fuel - body_len;
      if t.fuel <= 0 then out_of_fuel ();
      for k = 1 to body_len do
        let bpc = pc + k in
        if t.trace_enabled then trace_push t t.fpu_free_at src.(bpc);
        fpu_execute_functional t insns.(bpc);
        fpu_timing_fast t p bpc ~avail
      done
    done;
    t.perf.retired <- t.perf.retired + (body_len * iterations)
  end

(* --- cluster DMA engine (one per core) --- *)

(* Fixed launch overhead of a dmcpy; after that the engine moves 8
   bytes per cycle, row by row. *)
let dma_startup_cost = 10

(* Execute the 2D transfer programmed into the DMA front-end registers
   (dmsrc/dmdst/dmstr/dmrep) with [row_bytes] bytes per row.

   Functionally the copy happens eagerly at issue: between a core's
   dmcpy and its dmwait nothing else may touch the transfer windows
   (the discipline mlc_lint enforces), so an eager copy is
   observationally identical to an asynchronous one. Only the *timing*
   is asynchronous: [dma_done] tracks when the engine would finish and
   [dmwait] joins it, exactly like [Csrci] joins the FPU. Rows may
   overlap ([Bytes.blit] is memmove-like). DMA traffic does not tick
   the TCDM bank counters: the engine arbitrates at its own wide port,
   and the cluster contention model meters core-side accesses only. *)
let dma_launch t row_bytes =
  let reps = t.dma_reps in
  if reps < 0 then err "dmcpy: negative row count %d" reps;
  if row_bytes < 0 then err "dmcpy: negative bytes-per-row %d" row_bytes;
  let bytes = t.mem.Mem.bytes and base = t.mem.Mem.base in
  let row_off what addr =
    let off = addr - base in
    if off < 0 || off + row_bytes > Bytes.length bytes then
      raise
        (Mem.Access_fault
           {
             addr;
             width = row_bytes;
             msg =
               Printf.sprintf "DMA %s row at 0x%x (%d bytes) outside TCDM" what
                 addr row_bytes;
           });
    (* The engine's port is word-granular: rows start 4-byte aligned. *)
    if off land 3 <> 0 then
      raise
        (Mem.Access_fault
           {
             addr;
             width = row_bytes;
             msg = Printf.sprintf "misaligned DMA %s row at 0x%x" what addr;
           });
    off
  in
  for i = 0 to reps - 1 do
    let soff = row_off "source" (t.dma_src + (i * t.dma_sstr)) in
    let doff = row_off "destination" (t.dma_dst + (i * t.dma_dstr)) in
    Bytes.blit bytes soff bytes doff row_bytes
  done;
  (* [core_time] is already the issue time + 1 when we get here. *)
  let start = max t.core_time t.dma_done in
  t.dma_done <- start + dma_startup_cost + (reps * ((row_bytes + 7) / 8));
  t.dma_bytes <- t.dma_bytes + (reps * row_bytes);
  t.dma_txns <- t.dma_txns + 1

(* One step of the fast engine at [pc]: burns fuel, retires the
   instruction, applies its functional and timing effects, and returns
   the next pc (or -1 after [ret], leaving the caller's pc on the ret).
   Shared between [run] and the per-instruction fallback of
   [Block_exec.run]; any fault escapes with the machine state exactly as
   the engine's trap contract requires (the caller's pc still names the
   faulting instruction). *)
let step_fast t (p : Program.t) pc =
  burn_fuel t;
  let insn = p.Program.insns.(pc) in
  t.perf.retired <- t.perf.retired + 1;
  let issue =
    let m = t.core_time in
    let s1 = p.Program.int_src1.(pc) in
    let m = if s1 >= 0 && t.int_ready.(s1) > m then t.int_ready.(s1) else m in
    let s2 = p.Program.int_src2.(pc) in
    if s2 >= 0 && t.int_ready.(s2) > m then t.int_ready.(s2) else m
  in
  if t.trace_enabled then trace_push t issue (Lazy.force p.Program.source).(pc);
  match insn with
  | Insn.Li (rd, imm) ->
    set_ireg t rd imm;
    t.core_time <- issue + 1;
    t.int_ready.(rd) <- issue + 1;
    pc + 1
  | Insn.Mv (rd, rs) ->
    set_ireg t rd (get_ireg t rs);
    t.core_time <- issue + 1;
    t.int_ready.(rd) <- issue + 1;
    pc + 1
  | Insn.Alu (op, rd, rs1, rs2) ->
    set_ireg t rd (apply_alu op (get_ireg t rs1) (get_ireg t rs2));
    t.core_time <- issue + 1;
    t.int_ready.(rd) <- issue + 1;
    pc + 1
  | Insn.Alui (op, rd, rs1, imm) ->
    set_ireg t rd (apply_alu op (get_ireg t rs1) imm);
    t.core_time <- issue + 1;
    t.int_ready.(rd) <- issue + 1;
    pc + 1
  | Insn.Load (width, rd, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    let v =
      if width = 8 then Mem.load64 t.mem addr
      else Int64.of_int32 (Mem.load32 t.mem addr)
    in
    set_ireg t rd v;
    t.perf.loads <- t.perf.loads + 1;
    t.core_time <- issue + 1;
    t.int_ready.(rd) <- issue + int_load_latency;
    pc + 1
  | Insn.Store (width, rs, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    (if width = 8 then Mem.store64 t.mem addr (get_ireg t rs)
     else Mem.store32 t.mem addr (Int64.to_int32 (get_ireg t rs)));
    t.perf.stores <- t.perf.stores + 1;
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Branch (cond, rs1, rs2, target) ->
    let a = get_ireg t rs1 and b = get_ireg t rs2 in
    let taken =
      match cond with
      | Beq -> a = b
      | Bne -> a <> b
      | Blt -> Int64.compare a b < 0
      | Bge -> Int64.compare a b >= 0
    in
    t.core_time <- issue + (if taken then taken_branch_cost else 1);
    if taken then target else pc + 1
  | Insn.J target ->
    t.core_time <- issue + taken_branch_cost;
    target
  | Insn.Ret ->
    t.core_time <- issue + 1;
    -1
  | Insn.Nop ->
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Csrsi (csr, _) ->
    if csr = 0x7c0 then t.ssr_enabled <- true;
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Csrci (csr, _) ->
    if csr = 0x7c0 then t.ssr_enabled <- false;
    (* Disabling streams synchronises with outstanding FP work. *)
    t.core_time <- max (issue + 1) t.fpu_last_done;
    pc + 1
  | Insn.Scfgwi (rs1, imm) ->
    do_scfgwi t (get_ireg t rs1) imm;
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Barrier ->
    t.core_time <- issue + 1;
    (* Single-core: a 1-cycle nop. In a cluster the engine halts with
       the pc past the barrier; [Cluster] synchronises and resumes. *)
    if t.num_cores > 1 then t.barrier_hit <- true;
    pc + 1
  | Insn.Dm_src rs ->
    t.dma_src <- Int64.to_int (get_ireg t rs);
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Dm_dst rs ->
    t.dma_dst <- Int64.to_int (get_ireg t rs);
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Dm_str (rs1, rs2) ->
    t.dma_sstr <- Int64.to_int (get_ireg t rs1);
    t.dma_dstr <- Int64.to_int (get_ireg t rs2);
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Dm_rep rs ->
    t.dma_reps <- Int64.to_int (get_ireg t rs);
    t.core_time <- issue + 1;
    pc + 1
  | Insn.Dm_cpy rs ->
    t.core_time <- issue + 1;
    dma_launch t (Int64.to_int (get_ireg t rs));
    pc + 1
  | Insn.Dm_wait ->
    (* Join the outstanding transfer, like csrci joins the FPU. *)
    t.core_time <- max (issue + 1) t.dma_done;
    pc + 1
  | Insn.Frep_o (rpt_reg, body_len) ->
    if pc + body_len >= Array.length p.Program.insns then
      err "frep body runs past end of program";
    let iterations = Int64.to_int (get_ireg t rpt_reg) + 1 in
    if iterations <= 0 then err "frep with non-positive iteration count";
    t.perf.freps <- t.perf.freps + 1;
    (* The core issues the frep plus the n buffered instructions once;
       the sequencer replays them without the core. *)
    t.core_time <- issue + 1 + body_len;
    frep_execute_fast t p pc body_len ~iterations ~avail:t.core_time;
    pc + 1 + body_len
  | Insn.Vsetvli _ | Insn.Vle _ | Insn.Vse _ | Insn.Vfmv_vf _ | Insn.Vmv_vv _
  | Insn.Vfvv _ | Insn.Vfvf _ | Insn.Vfmacc_vf _ | Insn.Vfmacc_vv _ ->
    exec_vector t insn ~issue;
    pc + 1
  | Insn.Fload _ | Insn.Fstore _ | Insn.Fop _ | Insn.Fmadd _ | Insn.Fmv _
  | Insn.Fcvt_from_int _ | Insn.Fmv_from_bits _ | Insn.Vf _ | Insn.Vfmac _
  | Insn.Vfsum _ | Insn.Vfcpka _ ->
    (* Core issues the FP instruction into the FPU FIFO (one core
       cycle); when the FIFO is full the core waits for the FPU to
       drain below the depth. *)
    let issue = max issue (t.fpu_free_at - fpu_fifo_depth) in
    t.core_time <- issue + 1;
    fpu_execute_functional t insn;
    fpu_timing_fast t p pc ~avail:(issue + 1);
    pc + 1

(* The fast engine: pre-decoded scoreboard metadata, per-pc FREP caches,
   no allocation per retired instruction. *)
let run ?resume t (p : Program.t) ~entry =
  let n = Array.length p.Program.insns in
  prepare t p;
  let pc =
    ref (match resume with Some at -> at | None -> Program.entry p entry)
  in
  let running = ref true in
  (try
     while !running do
       if !pc < 0 || !pc >= n then err "pc %d out of program bounds" !pc;
       let next = step_fast t p !pc in
       if next = -1 then running := false
       else begin
         pc := next;
         (* A cluster barrier suspends the engine; [final_pc] is the
            resume point just past the barrier. *)
         if t.barrier_hit then running := false
       end
     done
   with exn -> raise_as_trap t p !pc exn);
  t.perf.cycles <- max t.core_time t.fpu_last_done;
  { perf = t.perf; final_pc = !pc }

(* The reference engine: the original per-instruction loop using
   [Insn.deps] on every retired instruction. Kept as the timing oracle
   for the fast engine (differential tests, speedup measurement). *)
let run_reference ?resume t (p : Program.t) ~entry =
  let insns = p.Program.insns in
  let n = Array.length insns in
  let src = if t.trace_enabled then Lazy.force p.Program.source else [||] in
  let pc =
    ref (match resume with Some at -> at | None -> Program.entry p entry)
  in
  let running = ref true in
  (try
  while !running do
    if !pc < 0 || !pc >= n then err "pc %d out of program bounds" !pc;
    burn_fuel t;
    let insn = insns.(!pc) in
    t.perf.retired <- t.perf.retired + 1;
    let int_srcs, _, _, _ = Insn.deps insn in
    let issue = max t.core_time (ready_ints t int_srcs) in
    if t.trace_enabled then trace_push t issue src.(!pc);
    (match insn with
    | Insn.Li (rd, imm) ->
      set_ireg t rd imm;
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Mv (rd, rs) ->
      set_ireg t rd (get_ireg t rs);
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Alu (op, rd, rs1, rs2) ->
      set_ireg t rd (apply_alu op (get_ireg t rs1) (get_ireg t rs2));
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Alui (op, rd, rs1, imm) ->
      set_ireg t rd (apply_alu op (get_ireg t rs1) imm);
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Load (width, rd, off, base) ->
      let addr = Int64.to_int (get_ireg t base) + off in
      let v =
        if width = 8 then Mem.load64 t.mem addr
        else Int64.of_int32 (Mem.load32 t.mem addr)
      in
      set_ireg t rd v;
      t.perf.loads <- t.perf.loads + 1;
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + int_load_latency;
      incr pc
    | Insn.Store (width, rs, off, base) ->
      let addr = Int64.to_int (get_ireg t base) + off in
      (if width = 8 then Mem.store64 t.mem addr (get_ireg t rs)
       else Mem.store32 t.mem addr (Int64.to_int32 (get_ireg t rs)));
      t.perf.stores <- t.perf.stores + 1;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Branch (cond, rs1, rs2, target) ->
      let a = get_ireg t rs1 and b = get_ireg t rs2 in
      let taken =
        match cond with
        | Beq -> a = b
        | Bne -> a <> b
        | Blt -> Int64.compare a b < 0
        | Bge -> Int64.compare a b >= 0
      in
      t.core_time <- issue + (if taken then taken_branch_cost else 1);
      pc := if taken then target else !pc + 1
    | Insn.J target ->
      t.core_time <- issue + taken_branch_cost;
      pc := target
    | Insn.Ret ->
      t.core_time <- issue + 1;
      running := false
    | Insn.Nop ->
      t.core_time <- issue + 1;
      incr pc
    | Insn.Csrsi (csr, _) ->
      if csr = 0x7c0 then t.ssr_enabled <- true;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Csrci (csr, _) ->
      if csr = 0x7c0 then t.ssr_enabled <- false;
      t.core_time <- max (issue + 1) t.fpu_last_done;
      incr pc
    | Insn.Scfgwi (rs1, imm) ->
      do_scfgwi t (get_ireg t rs1) imm;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Barrier ->
      t.core_time <- issue + 1;
      if t.num_cores > 1 then t.barrier_hit <- true;
      incr pc;
      if t.barrier_hit then running := false
    | Insn.Dm_src rs ->
      t.dma_src <- Int64.to_int (get_ireg t rs);
      t.core_time <- issue + 1;
      incr pc
    | Insn.Dm_dst rs ->
      t.dma_dst <- Int64.to_int (get_ireg t rs);
      t.core_time <- issue + 1;
      incr pc
    | Insn.Dm_str (rs1, rs2) ->
      t.dma_sstr <- Int64.to_int (get_ireg t rs1);
      t.dma_dstr <- Int64.to_int (get_ireg t rs2);
      t.core_time <- issue + 1;
      incr pc
    | Insn.Dm_rep rs ->
      t.dma_reps <- Int64.to_int (get_ireg t rs);
      t.core_time <- issue + 1;
      incr pc
    | Insn.Dm_cpy rs ->
      t.core_time <- issue + 1;
      dma_launch t (Int64.to_int (get_ireg t rs));
      incr pc
    | Insn.Dm_wait ->
      t.core_time <- max (issue + 1) t.dma_done;
      incr pc
    | Insn.Frep_o (rpt_reg, body_len) ->
      if !pc + body_len >= n then err "frep body runs past end of program";
      let iterations = Int64.to_int (get_ireg t rpt_reg) + 1 in
      if iterations <= 0 then err "frep with non-positive iteration count";
      t.perf.freps <- t.perf.freps + 1;
      t.core_time <- issue + 1 + body_len;
      let avail = t.core_time in
      for _iter = 1 to iterations do
        for k = 1 to body_len do
          let body_insn = insns.(!pc + k) in
          if not (Insn.is_fpu body_insn) then
            err "frep body contains a non-FPU instruction: %s"
              (Lazy.force p.Program.source).(!pc + k);
          burn_fuel t;
          t.perf.retired <- t.perf.retired + 1;
          if t.trace_enabled then trace_push t t.fpu_free_at src.(!pc + k);
          fpu_execute_functional t body_insn;
          fpu_execute_timing t body_insn ~avail
        done
      done;
      pc := !pc + 1 + body_len
    | Insn.Vsetvli _ | Insn.Vle _ | Insn.Vse _ | Insn.Vfmv_vf _
    | Insn.Vmv_vv _ | Insn.Vfvv _ | Insn.Vfvf _ | Insn.Vfmacc_vf _
    | Insn.Vfmacc_vv _ ->
      exec_vector t insn ~issue;
      incr pc
    | Insn.Fload _ | Insn.Fstore _ | Insn.Fop _ | Insn.Fmadd _ | Insn.Fmv _
    | Insn.Fcvt_from_int _ | Insn.Fmv_from_bits _ | Insn.Vf _ | Insn.Vfmac _
    | Insn.Vfsum _ | Insn.Vfcpka _ ->
      let issue = max issue (t.fpu_free_at - fpu_fifo_depth) in
      t.core_time <- issue + 1;
      fpu_execute_functional t insn;
      fpu_execute_timing t insn ~avail:(issue + 1);
      incr pc)
  done
  with exn -> raise_as_trap t p !pc exn);
  t.perf.cycles <- max t.core_time t.fpu_last_done;
  { perf = t.perf; final_pc = !pc }

(* The collected instruction trace, oldest first: "cycle: instruction".
   Bounded: only the most recent [trace_cap] entries (default 65536) are
   retained; older entries are overwritten in ring order. *)
let trace t =
  if not t.trace_enabled then []
  else begin
    let kept = min t.trace_len t.trace_cap in
    let first = t.trace_len - kept in
    List.init kept (fun i ->
        let j = (first + i) mod t.trace_cap in
        Printf.sprintf "%8d: %s" t.trace_cycles.(j) t.trace_srcs.(j))
  end

(* FPU utilisation in percent, as defined in paper §4.1. *)
let utilization perf =
  if perf.cycles = 0 then 0.0
  else 100.0 *. float_of_int perf.fpu_busy /. float_of_int perf.cycles

(* Throughput in FLOPs/cycle. *)
let throughput perf =
  if perf.cycles = 0 then 0.0
  else float_of_int perf.flops /. float_of_int perf.cycles
