(* The Snitch core simulator: functional execution plus a cycle-level
   timing model of the documented micro-architecture (paper §2.4, §4.1,
   and the timing contract in DESIGN.md):

   - in-order single-issue integer core (1 instruction/cycle, integer
     loads have a 2-cycle use latency, taken branches cost 2 cycles);
   - a decoupled FPU consuming a FIFO of FP instructions: one starts per
     cycle, results are ready 3 cycles later (3-stage pipeline), so RAW
     dependences stall the FPU — the stalls unroll-and-jam eliminates;
   - FREP: the sequencer replays the buffered FP instructions without the
     integer core, making the core pseudo-dual-issue;
   - SSRs: reads/writes of ft0-ft2 while streaming move elements directly
     between the FPU and the TCDM, with operands always ready.

   FPU utilisation is the ratio of cycles with an FP instruction in the
   EX stage over total execution latency, as in the paper. *)

exception Exec_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Exec_error m)) fmt

type perf = {
  mutable cycles : int;
  mutable fpu_busy : int; (* dynamic FP-datapath instructions (1 EX cycle each) *)
  mutable flops : int;
  mutable loads : int; (* explicit loads (int + fp) *)
  mutable stores : int;
  mutable freps : int; (* dynamic frep.o issues *)
  mutable retired : int;
  mutable stream_reads : int;
  mutable stream_writes : int;
}

let fresh_perf () =
  {
    cycles = 0;
    fpu_busy = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    freps = 0;
    retired = 0;
    stream_reads = 0;
    stream_writes = 0;
  }

let fpu_latency = 3 (* paper §3.4: three pipeline stages for all FP ops *)
let int_load_latency = 2
let fp_load_latency = 2
let taken_branch_cost = 2

(* The sequencer/FPU instruction FIFO: the integer core stalls when this
   many FP instructions are outstanding (decoupling is deep but not
   unbounded). *)
let fpu_fifo_depth = 16

type t = {
  mem : Mem.t;
  iregs : int64 array;
  fregs : int64 array;
  ssrs : Ssr.t array;
  ssr_cfg : Ssr.config array;
  mutable ssr_enabled : bool;
  (* timing state *)
  mutable core_time : int;
  mutable fpu_free_at : int;
  int_ready : int array;
  fp_ready : int array;
  mutable fpu_last_done : int;
  perf : perf;
  mutable fuel : int;
  (* optional instruction trace: (issue cycle, source line) *)
  trace_enabled : bool;
  mutable trace_buf : (int * string) list;
}

let create ?(fuel = 200_000_000) ?(trace = false) () =
  let iregs = Array.make 32 0L in
  (* ABI stack pointer: top of the TCDM, growing down. *)
  iregs.(2) <- Int64.of_int (Mem.tcdm_base + Mem.tcdm_size);
  {
    mem = Mem.create ();
    iregs;
    fregs = Array.make 32 0L;
    ssrs = Array.init 3 (fun _ -> Ssr.create ());
    ssr_cfg = Array.init 3 (fun _ -> Ssr.fresh_config ());
    ssr_enabled = false;
    core_time = 0;
    fpu_free_at = 0;
    int_ready = Array.make 32 0;
    fp_ready = Array.make 32 0;
    fpu_last_done = 0;
    perf = fresh_perf ();
    fuel;
    trace_enabled = trace;
    trace_buf = [];
  }

let set_ireg t i v = if i <> 0 then t.iregs.(i) <- v
let get_ireg t i = if i = 0 then 0L else t.iregs.(i)
let set_freg t i v = t.fregs.(i) <- v
let get_freg_raw t i = t.fregs.(i)

(* --- SSR interaction --- *)

let streaming_read t dm =
  let addr = Ssr.next_read_address t.ssrs.(dm) in
  t.perf.stream_reads <- t.perf.stream_reads + 1;
  Mem.load64 t.mem addr

let streaming_write t dm v =
  let addr = Ssr.next_write_address t.ssrs.(dm) in
  t.perf.stream_writes <- t.perf.stream_writes + 1;
  Mem.store64 t.mem addr v

let is_stream_reg t i = t.ssr_enabled && i < 3 && t.ssrs.(i).Ssr.active

(* Fetch an FP source operand: pops a stream element if the register is a
   streaming data register. *)
let fetch_f t i = if is_stream_reg t i then streaming_read t i else t.fregs.(i)

(* Commit an FP result: pushes to the stream if targeting a streaming
   data register. *)
let commit_f t i v =
  if is_stream_reg t i then streaming_write t i v else t.fregs.(i) <- v

(* --- scalar helpers --- *)

let f64_of bits = Int64.float_of_bits bits
let bits_of_f64 f = Int64.bits_of_float f

let lo32 bits = Int32.float_of_bits (Int64.to_int32 bits)
let hi32 bits = Int32.float_of_bits (Int64.to_int32 (Int64.shift_right_logical bits 32))

let pack32 lo hi =
  let l = Int64.of_int32 (Int32.bits_of_float lo) in
  let h = Int64.of_int32 (Int32.bits_of_float hi) in
  Int64.logor
    (Int64.logand l 0xFFFFFFFFL)
    (Int64.shift_left (Int64.logand h 0xFFFFFFFFL) 32)

let with_lo32 bits lo =
  Int64.logor
    (Int64.logand bits 0xFFFFFFFF00000000L)
    (Int64.logand (Int64.of_int32 (Int32.bits_of_float lo)) 0xFFFFFFFFL)

let apply_fop (op : Insn.fop) a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmax -> Float.max a b
  | Fmin -> Float.min a b

let f32_round f = Int32.float_of_bits (Int32.bits_of_float f)

let apply_alu (op : Insn.alu) a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div -> if b = 0L then -1L else Int64.div a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Slt -> if Int64.compare a b < 0 then 1L else 0L
  | Sll -> Int64.shift_left a (Int64.to_int b land 63)
  | Sra -> Int64.shift_right a (Int64.to_int b land 63)

(* --- timing helpers --- *)

let ready_ints t srcs = List.fold_left (fun m r -> max m t.int_ready.(r)) 0 srcs

let ready_fps t srcs =
  List.fold_left
    (fun m r -> if is_stream_reg t r then m else max m t.fp_ready.(r))
    0 srcs

(* Execute the FPU part of one dynamic FP-path instruction that becomes
   available to the FPU at [avail]. Updates the FPU timeline and perf. *)
let fpu_execute_timing t insn ~avail =
  let _, fp_srcs, _, fp_dst = Insn.deps insn in
  let start = max (max t.fpu_free_at (ready_fps t fp_srcs)) avail in
  t.fpu_free_at <- start + 1;
  let latency =
    match insn with
    | Insn.Fload _ -> fp_load_latency
    | Insn.Fstore _ -> 1
    | _ -> fpu_latency
  in
  (match fp_dst with
  | Some d when not (is_stream_reg t d) -> t.fp_ready.(d) <- start + latency
  | _ -> ());
  if Insn.is_fpu insn then begin
    t.perf.fpu_busy <- t.perf.fpu_busy + 1;
    t.perf.flops <- t.perf.flops + Insn.flops insn
  end;
  t.fpu_last_done <- max t.fpu_last_done (start + latency)

(* Functional execution of one FP-path instruction (arithmetic, FP
   loads/stores); integer instructions are handled inline in [step]. *)
let fpu_execute_functional t insn =
  match insn with
  | Insn.Fload (width, fd, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    t.perf.loads <- t.perf.loads + 1;
    let v =
      if width = 8 then Mem.load64 t.mem addr
      else Int64.logand (Int64.of_int32 (Mem.load32 t.mem addr)) 0xFFFFFFFFL
    in
    commit_f t fd v
  | Insn.Fstore (width, fs, off, base) ->
    let addr = Int64.to_int (get_ireg t base) + off in
    t.perf.stores <- t.perf.stores + 1;
    let v = fetch_f t fs in
    if width = 8 then Mem.store64 t.mem addr v
    else Mem.store32 t.mem addr (Int64.to_int32 v)
  | Insn.Fop (op, prec, fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let v =
      match prec with
      | D -> bits_of_f64 (apply_fop op (f64_of a) (f64_of b))
      | S -> with_lo32 a (f32_round (apply_fop op (lo32 a) (lo32 b)))
    in
    commit_f t fd v
  | Insn.Fmadd (prec, fd, fs1, fs2, fs3) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 and c = fetch_f t fs3 in
    let v =
      match prec with
      | D -> bits_of_f64 (Float.fma (f64_of a) (f64_of b) (f64_of c))
      | S -> with_lo32 a (f32_round (Float.fma (lo32 a) (lo32 b) (lo32 c)))
    in
    commit_f t fd v
  | Insn.Fmv (fd, fs) -> commit_f t fd (fetch_f t fs)
  | Insn.Fcvt_from_int (prec, fd, rs) ->
    let x = Int64.to_float (get_ireg t rs) in
    let v =
      match prec with
      | D -> bits_of_f64 x
      | S -> pack32 (f32_round x) (f32_round x)
    in
    commit_f t fd v
  | Insn.Fmv_from_bits (prec, fd, rs) ->
    let bits = get_ireg t rs in
    let v = match prec with D -> bits | S -> bits in
    commit_f t fd v
  | Insn.Vf (op, fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let fop : Insn.fop =
      match op with
      | Vfadd -> Fadd
      | Vfsub -> Fsub
      | Vfmul -> Fmul
      | Vfmax -> Fmax
      | Vfmin -> Fmin
    in
    let lo = f32_round (apply_fop fop (lo32 a) (lo32 b)) in
    let hi = f32_round (apply_fop fop (hi32 a) (hi32 b)) in
    commit_f t fd (pack32 lo hi)
  | Insn.Vfmac (fd, fs1, fs2) ->
    (* Two-address: the accumulator register is both read and written; a
       streaming accumulator would be ill-formed, so read the register
       file directly. *)
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    let acc = t.fregs.(fd) in
    let lo = f32_round (Float.fma (lo32 a) (lo32 b) (lo32 acc)) in
    let hi = f32_round (Float.fma (hi32 a) (hi32 b) (hi32 acc)) in
    commit_f t fd (pack32 lo hi)
  | Insn.Vfsum (fd, fs) ->
    let s = fetch_f t fs in
    let acc = t.fregs.(fd) in
    let lo = f32_round (f32_round (lo32 acc +. lo32 s) +. hi32 s) in
    commit_f t fd (pack32 lo (hi32 acc))
  | Insn.Vfcpka (fd, fs1, fs2) ->
    let a = fetch_f t fs1 and b = fetch_f t fs2 in
    commit_f t fd (pack32 (lo32 a) (lo32 b))
  | other ->
    err "instruction is not FP-path executable: %s"
      (match other with _ -> "(non-FP)")

(* --- SSR configuration (assembler contract in DESIGN.md) --- *)

let do_scfgwi t value imm =
  if t.ssr_enabled then err "scfgwi while streaming is enabled";
  let slot = imm / 8 and dm = imm mod 8 in
  if dm < 0 || dm > 2 then err "scfgwi: bad data mover %d" dm;
  let cfg = t.ssr_cfg.(dm) in
  let v = Int64.to_int value in
  match slot with
  | 1 -> cfg.Ssr.c_repeat <- v
  | 2 | 3 | 4 | 5 -> cfg.Ssr.c_bounds.(slot - 2) <- v
  | 6 | 7 | 8 | 9 -> cfg.Ssr.c_strides.(slot - 6) <- v
  | s when s >= 24 && s < 28 ->
    Ssr.arm t.ssrs.(dm) cfg ~dims:(s - 24 + 1) ~ptr:v ~is_write:false
  | s when s >= 28 && s < 32 ->
    Ssr.arm t.ssrs.(dm) cfg ~dims:(s - 28 + 1) ~ptr:v ~is_write:true
  | s -> err "scfgwi: bad slot %d" s

(* --- main loop --- *)

type outcome = { perf : perf; final_pc : int }

let burn_fuel t =
  t.fuel <- t.fuel - 1;
  if t.fuel <= 0 then err "out of fuel: runaway execution (infinite loop?)"

let run t (program : Asm_parse.program) ~entry =
  let insns = program.insns in
  let n = Array.length insns in
  let pc = ref (Asm_parse.entry program entry) in
  let running = ref true in
  while !running do
    if !pc < 0 || !pc >= n then err "pc %d out of program bounds" !pc;
    burn_fuel t;
    let insn = insns.(!pc) in
    t.perf.retired <- t.perf.retired + 1;
    let int_srcs, _, _, _ = Insn.deps insn in
    let issue = max t.core_time (ready_ints t int_srcs) in
    if t.trace_enabled then
      t.trace_buf <- (issue, program.source.(!pc)) :: t.trace_buf;
    (match insn with
    | Insn.Li (rd, imm) ->
      set_ireg t rd imm;
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Mv (rd, rs) ->
      set_ireg t rd (get_ireg t rs);
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Alu (op, rd, rs1, rs2) ->
      set_ireg t rd (apply_alu op (get_ireg t rs1) (get_ireg t rs2));
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Alui (op, rd, rs1, imm) ->
      set_ireg t rd (apply_alu op (get_ireg t rs1) imm);
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + 1;
      incr pc
    | Insn.Load (width, rd, off, base) ->
      let addr = Int64.to_int (get_ireg t base) + off in
      let v =
        if width = 8 then Mem.load64 t.mem addr
        else Int64.of_int32 (Mem.load32 t.mem addr)
      in
      set_ireg t rd v;
      t.perf.loads <- t.perf.loads + 1;
      t.core_time <- issue + 1;
      t.int_ready.(rd) <- issue + int_load_latency;
      incr pc
    | Insn.Store (width, rs, off, base) ->
      let addr = Int64.to_int (get_ireg t base) + off in
      (if width = 8 then Mem.store64 t.mem addr (get_ireg t rs)
       else Mem.store32 t.mem addr (Int64.to_int32 (get_ireg t rs)));
      t.perf.stores <- t.perf.stores + 1;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Branch (cond, rs1, rs2, target) ->
      let a = get_ireg t rs1 and b = get_ireg t rs2 in
      let taken =
        match cond with
        | Beq -> a = b
        | Bne -> a <> b
        | Blt -> Int64.compare a b < 0
        | Bge -> Int64.compare a b >= 0
      in
      t.core_time <- issue + (if taken then taken_branch_cost else 1);
      pc := if taken then target else !pc + 1
    | Insn.J target ->
      t.core_time <- issue + taken_branch_cost;
      pc := target
    | Insn.Ret ->
      t.core_time <- issue + 1;
      running := false
    | Insn.Nop ->
      t.core_time <- issue + 1;
      incr pc
    | Insn.Csrsi (csr, _) ->
      if csr = 0x7c0 then t.ssr_enabled <- true;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Csrci (csr, _) ->
      if csr = 0x7c0 then t.ssr_enabled <- false;
      (* Disabling streams synchronises with outstanding FP work. *)
      t.core_time <- max (issue + 1) t.fpu_last_done;
      incr pc
    | Insn.Scfgwi (rs1, imm) ->
      do_scfgwi t (get_ireg t rs1) imm;
      t.core_time <- issue + 1;
      incr pc
    | Insn.Frep_o (rpt_reg, body_len) ->
      if !pc + body_len >= n then err "frep body runs past end of program";
      let iterations = Int64.to_int (get_ireg t rpt_reg) + 1 in
      if iterations <= 0 then err "frep with non-positive iteration count";
      t.perf.freps <- t.perf.freps + 1;
      (* The core issues the frep plus the n buffered instructions once;
         the sequencer replays them without the core. *)
      t.core_time <- issue + 1 + body_len;
      let avail = t.core_time in
      for _iter = 1 to iterations do
        for k = 1 to body_len do
          let body_insn = insns.(!pc + k) in
          if not (Insn.is_fpu body_insn) then
            err "frep body contains a non-FPU instruction: %s"
              program.source.(!pc + k);
          burn_fuel t;
          t.perf.retired <- t.perf.retired + 1;
          if t.trace_enabled then
            t.trace_buf <-
              (t.fpu_free_at, program.source.(!pc + k)) :: t.trace_buf;
          fpu_execute_functional t body_insn;
          fpu_execute_timing t body_insn ~avail
        done
      done;
      pc := !pc + 1 + body_len
    | Insn.Fload _ | Insn.Fstore _ | Insn.Fop _ | Insn.Fmadd _ | Insn.Fmv _
    | Insn.Fcvt_from_int _ | Insn.Fmv_from_bits _ | Insn.Vf _ | Insn.Vfmac _
    | Insn.Vfsum _ | Insn.Vfcpka _ ->
      (* Core issues the FP instruction into the FPU FIFO (one core
         cycle); when the FIFO is full the core waits for the FPU to
         drain below the depth. *)
      let issue = max issue (t.fpu_free_at - fpu_fifo_depth) in
      t.core_time <- issue + 1;
      fpu_execute_functional t insn;
      fpu_execute_timing t insn ~avail:(issue + 1);
      incr pc)
  done;
  t.perf.cycles <- max t.core_time t.fpu_last_done;
  { perf = t.perf; final_pc = !pc }

(* The collected instruction trace, oldest first: "cycle: instruction". *)
let trace t =
  List.rev_map (fun (c, src) -> Printf.sprintf "%8d: %s" c src) t.trace_buf

(* FPU utilisation in percent, as defined in paper §4.1. *)
let utilization perf =
  if perf.cycles = 0 then 0.0
  else 100.0 *. float_of_int perf.fpu_busy /. float_of_int perf.cycles

(* Throughput in FLOPs/cycle. *)
let throughput perf =
  if perf.cycles = 0 then 0.0
  else float_of_int perf.flops /. float_of_int perf.cycles
