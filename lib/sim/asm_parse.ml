(* The assembler: parses the textual assembly emitted by the backend into
   decoded instructions with resolved labels. It accepts exactly the
   mnemonics the backend emits plus conventional syntax (labels,
   #-comments), mirroring the external-assembler step of the paper's
   toolchain (§4.1).

   It also accepts everything {!render} below can print — including
   "@pc" absolute branch targets and the simulator-local immediate
   pseudo-forms — so parse ∘ render is total over {!Insn.t} and the
   direct and text simulation paths stay equivalence-checkable. *)

exception Asm_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Asm_error m)) fmt

let int_reg_names =
  [ ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4);
    ("t0", 5); ("t1", 6); ("t2", 7); ("s0", 8); ("s1", 9);
    ("a0", 10); ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14);
    ("a5", 15); ("a6", 16); ("a7", 17); ("s2", 18); ("s3", 19);
    ("s4", 20); ("s5", 21); ("s6", 22); ("s7", 23); ("s8", 24);
    ("s9", 25); ("s10", 26); ("s11", 27); ("t3", 28); ("t4", 29);
    ("t5", 30); ("t6", 31) ]

let float_reg_names =
  [ ("ft0", 0); ("ft1", 1); ("ft2", 2); ("ft3", 3); ("ft4", 4);
    ("ft5", 5); ("ft6", 6); ("ft7", 7); ("fs0", 8); ("fs1", 9);
    ("fa0", 10); ("fa1", 11); ("fa2", 12); ("fa3", 13); ("fa4", 14);
    ("fa5", 15); ("fa6", 16); ("fa7", 17); ("fs2", 18); ("fs3", 19);
    ("fs4", 20); ("fs5", 21); ("fs6", 22); ("fs7", 23); ("fs8", 24);
    ("fs9", 25); ("fs10", 26); ("fs11", 27); ("ft8", 28); ("ft9", 29);
    ("ft10", 30); ("ft11", 31) ]

let int_reg_table =
  let h = Hashtbl.create 64 in
  List.iter (fun (n, i) -> Hashtbl.add h n i) int_reg_names;
  h

let float_reg_table =
  let h = Hashtbl.create 64 in
  List.iter (fun (n, i) -> Hashtbl.add h n i) float_reg_names;
  h

let xreg name =
  match Hashtbl.find_opt int_reg_table name with
  | Some i -> i
  | None -> err "unknown integer register %S" name

let freg name =
  match Hashtbl.find_opt float_reg_table name with
  | Some i -> i
  | None -> err "unknown float register %S" name

(* Vector registers have no ABI names: v0..v31 literally. *)
let vreg name =
  let bad () = err "unknown vector register %S" name in
  if String.length name >= 2 && name.[0] = 'v' then
    match int_of_string_opt (String.sub name 1 (String.length name - 1)) with
    | Some i when i >= 0 && i <= 31 -> i
    | _ -> bad ()
  else bad ()

let imm64 s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> err "bad immediate %S" s

let imm s = Int64.to_int (imm64 s)

(* Split an instruction line into mnemonic and comma-separated operands;
   memory operands "off(base)" are yielded as two tokens [off; base]. *)
let tokenize line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else
    match String.index_opt line ' ' with
    | None -> Some (line, [])
    | Some i ->
      let mn = String.sub line 0 i in
      let rest = String.sub line i (String.length line - i) in
      let parts =
        String.split_on_char ',' rest
        |> List.concat_map (fun part ->
               let part = String.trim part in
               match String.index_opt part '(' with
               | Some l when String.length part > 0 && part.[String.length part - 1] = ')' ->
                 [ String.trim (String.sub part 0 l);
                   String.sub part (l + 1) (String.length part - l - 2) ]
               | _ -> [ part ])
        |> List.filter (fun s -> s <> "")
      in
      Some (mn, parts)

type program = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t; (* label -> pc *)
  source : string array; (* original line per pc, for traces *)
}

let entry program name =
  match Hashtbl.find_opt program.labels name with
  | Some pc -> pc
  | None -> err "no such label %S" name

let parse text =
  let lines = String.split_on_char '\n' text in
  (* First pass: assign pcs and record labels. *)
  let labels = Hashtbl.create 16 in
  let pending : (string * string list * string) list ref = ref [] in
  let pc = ref 0 in
  List.iter
    (fun raw ->
      match tokenize raw with
      | None -> ()
      | Some (mn, args) ->
        if String.length mn > 0 && mn.[String.length mn - 1] = ':' then begin
          let label = String.sub mn 0 (String.length mn - 1) in
          if Hashtbl.mem labels label then err "duplicate label %S" label;
          Hashtbl.replace labels label !pc
        end
        else begin
          pending := (mn, args, String.trim raw) :: !pending;
          incr pc
        end)
    lines;
  let entries = List.rev !pending in
  let target label =
    (* "@12" is a pre-resolved absolute pc, as printed by [render] for
       decoded programs that no longer carry labels. *)
    if String.length label > 1 && label.[0] = '@' then
      match int_of_string_opt (String.sub label 1 (String.length label - 1)) with
      | Some pc when pc >= 0 -> pc
      | _ -> err "bad absolute target %S" label
    else
      match Hashtbl.find_opt labels label with
      | Some pc -> pc
      | None -> err "undefined label %S" label
  in
  let decode (mn, args, raw) : Insn.t =
    let a i = List.nth args i in
    let nargs = List.length args in
    let need n = if nargs <> n then err "%s expects %d operands: %S" mn n raw in
    match mn with
    | "li" ->
      need 2;
      Li (xreg (a 0), imm64 (a 1))
    | "mv" ->
      need 2;
      Mv (xreg (a 0), xreg (a 1))
    | "add" | "sub" | "mul" | "div" | "and" | "or" | "xor" | "slt" | "sll"
    | "sra" ->
      need 3;
      let op : Insn.alu =
        match mn with
        | "add" -> Add
        | "sub" -> Sub
        | "mul" -> Mul
        | "div" -> Div
        | "and" -> And
        | "or" -> Or
        | "xor" -> Xor
        | "sll" -> Sll
        | "sra" -> Sra
        | _ -> Slt
      in
      Alu (op, xreg (a 0), xreg (a 1), xreg (a 2))
    | "addi" | "slli" | "srai" | "andi" | "ori" | "xori" | "slti" | "subi"
    | "muli" | "divi" ->
      (* addi..slti are real RV32I forms; subi/muli/divi are simulator-
         local pseudo-forms printed by [render] for Alui constructors
         that have no architectural immediate encoding. *)
      need 3;
      let op : Insn.alu =
        match mn with
        | "addi" -> Add
        | "slli" -> Sll
        | "srai" -> Sra
        | "andi" -> And
        | "ori" -> Or
        | "xori" -> Xor
        | "slti" -> Slt
        | "subi" -> Sub
        | "muli" -> Mul
        | _ -> Div
      in
      Alui (op, xreg (a 0), xreg (a 1), imm64 (a 2))
    | "lw" | "ld" ->
      need 3;
      Load ((if mn = "lw" then 4 else 8), xreg (a 0), imm (a 1), xreg (a 2))
    | "sw" | "sd" ->
      need 3;
      Store ((if mn = "sw" then 4 else 8), xreg (a 0), imm (a 1), xreg (a 2))
    | "flw" | "fld" ->
      need 3;
      Fload ((if mn = "flw" then 4 else 8), freg (a 0), imm (a 1), xreg (a 2))
    | "fsw" | "fsd" ->
      need 3;
      Fstore ((if mn = "fsw" then 4 else 8), freg (a 0), imm (a 1), xreg (a 2))
    | "fadd.d" | "fsub.d" | "fmul.d" | "fdiv.d" | "fmax.d" | "fmin.d"
    | "fadd.s" | "fsub.s" | "fmul.s" | "fdiv.s" | "fmax.s" | "fmin.s" ->
      need 3;
      let prec : Insn.prec = if String.length mn = 6 && mn.[5] = 'd' then D else S in
      let op : Insn.fop =
        match String.sub mn 0 4 with
        | "fadd" -> Fadd
        | "fsub" -> Fsub
        | "fmul" -> Fmul
        | "fdiv" -> Fdiv
        | "fmax" -> Fmax
        | _ -> Fmin
      in
      Fop (op, prec, freg (a 0), freg (a 1), freg (a 2))
    | "fmadd.d" | "fmadd.s" ->
      need 4;
      Fmadd
        ( (if mn = "fmadd.d" then D else S),
          freg (a 0), freg (a 1), freg (a 2), freg (a 3) )
    | "fmv.d" | "fmv.s" ->
      need 2;
      Fmv (freg (a 0), freg (a 1))
    | "fcvt.d.w" | "fcvt.s.w" ->
      need 2;
      Fcvt_from_int ((if mn = "fcvt.d.w" then D else S), freg (a 0), xreg (a 1))
    | "fmv.d.x" | "fmv.w.x" ->
      need 2;
      Fmv_from_bits ((if mn = "fmv.d.x" then D else S), freg (a 0), xreg (a 1))
    | "vfadd.s" | "vfsub.s" | "vfmul.s" | "vfmax.s" | "vfmin.s" ->
      need 3;
      let op : Insn.vfop =
        match mn with
        | "vfadd.s" -> Vfadd
        | "vfsub.s" -> Vfsub
        | "vfmul.s" -> Vfmul
        | "vfmax.s" -> Vfmax
        | _ -> Vfmin
      in
      Vf (op, freg (a 0), freg (a 1), freg (a 2))
    | "vfmac.s" ->
      need 3;
      Vfmac (freg (a 0), freg (a 1), freg (a 2))
    | "vfsum.s" ->
      need 2;
      Vfsum (freg (a 0), freg (a 1))
    | "vfcpka.s.s" ->
      need 3;
      Vfcpka (freg (a 0), freg (a 1), freg (a 2))
    | "scfgwi" ->
      need 2;
      Scfgwi (xreg (a 0), imm (a 1))
    | "csrsi" ->
      need 2;
      Csrsi (imm (a 0), imm (a 1))
    | "csrci" ->
      need 2;
      Csrci (imm (a 0), imm (a 1))
    | "frep.o" ->
      need 4;
      Frep_o (xreg (a 0), imm (a 1))
    | "j" ->
      need 1;
      J (target (a 0))
    | "beq" | "bne" | "blt" | "bge" ->
      need 3;
      let c : Insn.cond =
        match mn with "beq" -> Beq | "bne" -> Bne | "blt" -> Blt | _ -> Bge
      in
      Branch (c, xreg (a 0), xreg (a 1), target (a 2))
    | "ret" ->
      need 0;
      Ret
    | "nop" ->
      need 0;
      Nop
    | "barrier" ->
      need 0;
      Barrier
    | "dmsrc" ->
      need 1;
      Dm_src (xreg (a 0))
    | "dmdst" ->
      need 1;
      Dm_dst (xreg (a 0))
    | "dmstr" ->
      need 2;
      Dm_str (xreg (a 0), xreg (a 1))
    | "dmrep" ->
      need 1;
      Dm_rep (xreg (a 0))
    | "dmcpy" ->
      need 1;
      Dm_cpy (xreg (a 0))
    | "dmwait" ->
      need 0;
      Dm_wait
    | "vsetvli" ->
      (* vsetvli zero, rs, e<sew>, m1, ta, ma — the only vtype the
         backend emits (rd is architecturally free but always zero
         here: the strip-mined loop advances by VLMAX, not vl). *)
      need 6;
      if a 0 <> "zero" then err "vsetvli rd must be zero: %S" raw;
      let sew =
        match a 2 with
        | "e64" -> 64
        | "e32" -> 32
        | s -> err "unsupported element width %S in %S" s raw
      in
      if a 3 <> "m1" || a 4 <> "ta" || a 5 <> "ma" then
        err "unsupported vtype in %S" raw;
      Vsetvli (xreg (a 1), sew)
    | "vle64.v" | "vle32.v" ->
      need 2;
      Vle (vreg (a 0), xreg (a 1), if mn = "vle64.v" then 8 else 4)
    | "vse64.v" | "vse32.v" ->
      need 2;
      Vse (vreg (a 0), xreg (a 1), if mn = "vse64.v" then 8 else 4)
    | "vfmv.v.f" ->
      need 2;
      Vfmv_vf (vreg (a 0), freg (a 1))
    | "vmv.v.v" ->
      need 2;
      Vmv_vv (vreg (a 0), vreg (a 1))
    | "vfadd.vv" | "vfsub.vv" | "vfmul.vv" | "vfdiv.vv" | "vfmax.vv"
    | "vfmin.vv" ->
      need 3;
      let op : Insn.fop =
        match mn with
        | "vfadd.vv" -> Fadd
        | "vfsub.vv" -> Fsub
        | "vfmul.vv" -> Fmul
        | "vfdiv.vv" -> Fdiv
        | "vfmax.vv" -> Fmax
        | _ -> Fmin
      in
      Vfvv (op, vreg (a 0), vreg (a 1), vreg (a 2))
    | "vfadd.vf" | "vfsub.vf" | "vfmul.vf" | "vfdiv.vf" | "vfmax.vf"
    | "vfmin.vf" | "vfrsub.vf" | "vfrdiv.vf" ->
      need 3;
      let op, reversed =
        match mn with
        | "vfadd.vf" -> (Insn.Fadd, false)
        | "vfsub.vf" -> (Insn.Fsub, false)
        | "vfmul.vf" -> (Insn.Fmul, false)
        | "vfdiv.vf" -> (Insn.Fdiv, false)
        | "vfmax.vf" -> (Insn.Fmax, false)
        | "vfmin.vf" -> (Insn.Fmin, false)
        | "vfrsub.vf" -> (Insn.Fsub, true)
        | _ -> (Insn.Fdiv, true)
      in
      Vfvf (op, reversed, vreg (a 0), vreg (a 1), freg (a 2))
    | "vfmacc.vf" ->
      need 3;
      Vfmacc_vf (vreg (a 0), freg (a 1), vreg (a 2))
    | "vfmacc.vv" ->
      need 3;
      Vfmacc_vv (vreg (a 0), vreg (a 1), vreg (a 2))
    | other -> err "unknown mnemonic %S in %S" other raw
  in
  {
    insns = Array.of_list (List.map decode entries);
    labels;
    source = Array.of_list (List.map (fun (_, _, raw) -> raw) entries);
  }

(* --- rendering decoded instructions back to text --- *)

let ireg_name = Array.make 32 ""
let freg_name = Array.make 32 ""

let () =
  List.iter (fun (n, i) -> ireg_name.(i) <- n) int_reg_names;
  List.iter (fun (n, i) -> freg_name.(i) <- n) float_reg_names

let x i = ireg_name.(i)
let f i = freg_name.(i)

let alu_mnemonic : Insn.alu -> string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Slt -> "slt"
  | Sll -> "sll"
  | Sra -> "sra"

let alui_mnemonic : Insn.alu -> string = function
  | Add -> "addi"
  | Sll -> "slli"
  | Sra -> "srai"
  | And -> "andi"
  | op -> alu_mnemonic op ^ "i"

let prec_suffix : Insn.prec -> string = function D -> "d" | S -> "s"

let fop_mnemonic (op : Insn.fop) (p : Insn.prec) =
  let base =
    match op with
    | Fadd -> "fadd"
    | Fsub -> "fsub"
    | Fmul -> "fmul"
    | Fdiv -> "fdiv"
    | Fmax -> "fmax"
    | Fmin -> "fmin"
  in
  base ^ "." ^ prec_suffix p

let rvv_fop (op : Insn.fop) ~reversed =
  match (op, reversed) with
  | Insn.Fadd, _ -> "vfadd"
  | Fsub, false -> "vfsub"
  | Fsub, true -> "vfrsub"
  | Fmul, _ -> "vfmul"
  | Fdiv, false -> "vfdiv"
  | Fdiv, true -> "vfrdiv"
  | Fmax, _ -> "vfmax"
  | Fmin, _ -> "vfmin"

let vfop_mnemonic : Insn.vfop -> string = function
  | Vfadd -> "vfadd.s"
  | Vfsub -> "vfsub.s"
  | Vfmul -> "vfmul.s"
  | Vfmax -> "vfmax.s"
  | Vfmin -> "vfmin.s"

(* One decoded instruction as assembly text. Branch targets are printed as
   resolved pcs ("@12") since the decoded form no longer carries labels;
   [parse] reads that form back, so render/parse round-trips. Used for
   traces of directly-emitted programs (Insn_emit), where no original
   source line exists. *)
let render (insn : Insn.t) =
  let p = Printf.sprintf in
  match insn with
  | Li (rd, imm) -> p "li %s, %Ld" (x rd) imm
  | Mv (rd, rs) -> p "mv %s, %s" (x rd) (x rs)
  | Alu (op, rd, rs1, rs2) -> p "%s %s, %s, %s" (alu_mnemonic op) (x rd) (x rs1) (x rs2)
  | Alui (op, rd, rs1, imm) -> p "%s %s, %s, %Ld" (alui_mnemonic op) (x rd) (x rs1) imm
  | Load (w, rd, off, base) -> p "%s %s, %d(%s)" (if w = 4 then "lw" else "ld") (x rd) off (x base)
  | Store (w, rs, off, base) -> p "%s %s, %d(%s)" (if w = 4 then "sw" else "sd") (x rs) off (x base)
  | Fload (w, fd, off, base) -> p "%s %s, %d(%s)" (if w = 4 then "flw" else "fld") (f fd) off (x base)
  | Fstore (w, fs, off, base) -> p "%s %s, %d(%s)" (if w = 4 then "fsw" else "fsd") (f fs) off (x base)
  | Fop (op, prec, fd, fs1, fs2) -> p "%s %s, %s, %s" (fop_mnemonic op prec) (f fd) (f fs1) (f fs2)
  | Fmadd (prec, fd, fs1, fs2, fs3) ->
    p "fmadd.%s %s, %s, %s, %s" (prec_suffix prec) (f fd) (f fs1) (f fs2) (f fs3)
  | Fmv (fd, fs) -> p "fmv.d %s, %s" (f fd) (f fs)
  | Fcvt_from_int (prec, fd, rs) -> p "fcvt.%s.w %s, %s" (prec_suffix prec) (f fd) (x rs)
  | Fmv_from_bits (D, fd, rs) -> p "fmv.d.x %s, %s" (f fd) (x rs)
  | Fmv_from_bits (S, fd, rs) -> p "fmv.w.x %s, %s" (f fd) (x rs)
  | Vf (op, fd, fs1, fs2) -> p "%s %s, %s, %s" (vfop_mnemonic op) (f fd) (f fs1) (f fs2)
  | Vfmac (fd, fs1, fs2) -> p "vfmac.s %s, %s, %s" (f fd) (f fs1) (f fs2)
  | Vfsum (fd, fs) -> p "vfsum.s %s, %s" (f fd) (f fs)
  | Vfcpka (fd, lo, hi) -> p "vfcpka.s.s %s, %s, %s" (f fd) (f lo) (f hi)
  | Scfgwi (rs1, imm) -> p "scfgwi %s, %d" (x rs1) imm
  | Csrsi (csr, imm) -> p "csrsi 0x%x, %d" csr imm
  | Csrci (csr, imm) -> p "csrci 0x%x, %d" csr imm
  | Frep_o (rpt, n) -> p "frep.o %s, %d, 0, 0" (x rpt) n
  | Branch (Beq, rs1, rs2, t) -> p "beq %s, %s, @%d" (x rs1) (x rs2) t
  | Branch (Bne, rs1, rs2, t) -> p "bne %s, %s, @%d" (x rs1) (x rs2) t
  | Branch (Blt, rs1, rs2, t) -> p "blt %s, %s, @%d" (x rs1) (x rs2) t
  | Branch (Bge, rs1, rs2, t) -> p "bge %s, %s, @%d" (x rs1) (x rs2) t
  | J t -> p "j @%d" t
  | Ret -> "ret"
  | Nop -> "nop"
  | Vsetvli (rs, sew) -> p "vsetvli zero, %s, e%d, m1, ta, ma" (x rs) sew
  | Vle (vd, base, esz) -> p "vle%d.v v%d, (%s)" (esz * 8) vd (x base)
  | Vse (vs, base, esz) -> p "vse%d.v v%d, (%s)" (esz * 8) vs (x base)
  | Vfmv_vf (vd, fs) -> p "vfmv.v.f v%d, %s" vd (f fs)
  | Vmv_vv (vd, vs) -> p "vmv.v.v v%d, v%d" vd vs
  | Vfvv (op, vd, vs1, vs2) ->
    p "%s.vv v%d, v%d, v%d" (rvv_fop op ~reversed:false) vd vs1 vs2
  | Vfvf (op, reversed, vd, vs2, fs) ->
    p "%s.vf v%d, v%d, %s" (rvv_fop op ~reversed) vd vs2 (f fs)
  | Vfmacc_vf (vd, fs, vs2) -> p "vfmacc.vf v%d, %s, v%d" vd (f fs) vs2
  | Vfmacc_vv (vd, vs1, vs2) -> p "vfmacc.vv v%d, v%d, v%d" vd vs1 vs2
  | Barrier -> "barrier"
  | Dm_src rs -> p "dmsrc %s" (x rs)
  | Dm_dst rs -> p "dmdst %s" (x rs)
  | Dm_str (rs1, rs2) -> p "dmstr %s, %s" (x rs1) (x rs2)
  | Dm_rep rs -> p "dmrep %s" (x rs)
  | Dm_cpy rs -> p "dmcpy %s" (x rs)
  | Dm_wait -> "dmwait"
