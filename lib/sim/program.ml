(* Pre-decoded programs: the load-time representation consumed by the
   simulator's fast execution engine (DESIGN.md, "Simulator performance &
   timing contract").

   The per-pc scoreboard metadata that [Machine.run] needs on every
   retired instruction — integer/FP source registers, FP destination,
   FPU-datapath membership, FLOP count, FP latency class — is extracted
   once here into flat unboxed arrays, so the inner simulation loop never
   calls [Insn.deps] (which allocates lists and tuples per call).

   Source text is lazy: the assembler provides the original lines, the
   direct emission path ([Insn_emit]) synthesises them only when a trace
   or an error message actually needs them. *)

(* Latency class of the FP data path an instruction occupies. *)
let class_int = 0
let class_fp_load = 1
let class_fp_store = 2
let class_fpu = 3

(* Per-pc facts about an FREP body, computed by the machine on the first
   dynamic encounter of the frep.o at that pc (after validating that the
   body is FPU-only). Cached in {!Machine.t}, not here: a program is an
   immutable artifact that may be shared by concurrently running
   machines, so decode caches must live with the machine doing the
   decoding.
   - [flops_per_iter]: total FLOPs of one body replay;
   - [src_regs] / [dst_regs]: the distinct FP source / destination
     registers the body touches;
   - [stallfree_candidate]: every destination lies in ft0-ft2, so the
     body can qualify for the steady-state timing fast path: when all
     destinations are actively streaming (no scoreboard writes) and every
     non-streaming source is ready by the replay's first issue slot
     (checked at runtime), each slot starts exactly one cycle after the
     previous one and the whole replay's timing has a closed form. *)
type frep_info = {
  flops_per_iter : int;
  src_regs : int array;
  dst_regs : int array;
  stallfree_candidate : bool;
}

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  source : string array Lazy.t; (* per-pc text, for traces and errors *)
  (* flat per-pc scoreboard metadata; -1 encodes "none" *)
  int_src1 : int array;
  int_src2 : int array;
  fp_src1 : int array;
  fp_src2 : int array;
  fp_src3 : int array;
  fp_dst : int array;
  is_fpu : bool array;
  flops : int array;
  fp_class : int array; (* class_int | class_fp_load | class_fp_store | class_fpu *)
}

let pad2 = function
  | [] -> (-1, -1)
  | [ a ] -> (a, -1)
  | [ a; b ] -> (a, b)
  | _ -> invalid_arg "Program: more than two integer sources"

let pad3 = function
  | [] -> (-1, -1, -1)
  | [ a ] -> (a, -1, -1)
  | [ a; b ] -> (a, b, -1)
  | [ a; b; c ] -> (a, b, c)
  | _ -> invalid_arg "Program: more than three FP sources"

let classify (insn : Insn.t) =
  match insn with
  | Insn.Fload _ -> class_fp_load
  | Insn.Fstore _ -> class_fp_store
  | i when Insn.is_fpu i -> class_fpu
  | _ -> class_int

let make ?source ~insns ~labels () =
  let n = Array.length insns in
  let int_src1 = Array.make n (-1)
  and int_src2 = Array.make n (-1)
  and fp_src1 = Array.make n (-1)
  and fp_src2 = Array.make n (-1)
  and fp_src3 = Array.make n (-1)
  and fp_dst = Array.make n (-1)
  and is_fpu = Array.make n false
  and flops = Array.make n 0
  and fp_class = Array.make n class_int in
  for pc = 0 to n - 1 do
    let insn = insns.(pc) in
    let ints, fps, _, fdst = Insn.deps insn in
    let i1, i2 = pad2 ints in
    let f1, f2, f3 = pad3 fps in
    int_src1.(pc) <- i1;
    int_src2.(pc) <- i2;
    fp_src1.(pc) <- f1;
    fp_src2.(pc) <- f2;
    fp_src3.(pc) <- f3;
    fp_dst.(pc) <- (match fdst with Some d -> d | None -> -1);
    is_fpu.(pc) <- Insn.is_fpu insn;
    flops.(pc) <- Insn.flops insn;
    fp_class.(pc) <- classify insn
  done;
  let source =
    match source with
    | Some s -> s
    | None -> lazy (Array.map Asm_parse.render insns)
  in
  {
    insns;
    labels;
    source;
    int_src1;
    int_src2;
    fp_src1;
    fp_src2;
    fp_src3;
    fp_dst;
    is_fpu;
    flops;
    fp_class;
  }

let of_asm (p : Asm_parse.program) =
  make
    ~source:(Lazy.from_val p.Asm_parse.source)
    ~insns:p.Asm_parse.insns ~labels:p.Asm_parse.labels ()

let entry t name =
  match Hashtbl.find_opt t.labels name with
  | Some pc -> pc
  | None ->
    raise (Asm_parse.Asm_error (Printf.sprintf "no such label %S" name))

(* Equality of the parts that determine execution: instruction arrays and
   label tables. Source text and decode caches are presentation only. *)
let equal a b =
  let table h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare in
  a.insns = b.insns && table a.labels = table b.labels
