(* Pre-decoded programs: the load-time representation consumed by the
   simulator's fast execution engine (DESIGN.md, "Simulator performance &
   timing contract").

   The per-pc scoreboard metadata that [Machine.run] needs on every
   retired instruction — integer/FP source registers, FP destination,
   FPU-datapath membership, FLOP count, FP latency class — is extracted
   once here into flat unboxed arrays, so the inner simulation loop never
   calls [Insn.deps] (which allocates lists and tuples per call).

   Source text is lazy: the assembler provides the original lines, the
   direct emission path ([Insn_emit]) synthesises them only when a trace
   or an error message actually needs them. *)

(* Latency class of the FP data path an instruction occupies. *)
let class_int = 0
let class_fp_load = 1
let class_fp_store = 2
let class_fpu = 3

(* Per-pc facts about an FREP body, computed by the machine on the first
   dynamic encounter of the frep.o at that pc (after validating that the
   body is FPU-only). Cached in {!Machine.t}, not here: a program is an
   immutable artifact that may be shared by concurrently running
   machines, so decode caches must live with the machine doing the
   decoding.
   - [flops_per_iter]: total FLOPs of one body replay;
   - [src_regs] / [dst_regs]: the distinct FP source / destination
     registers the body touches;
   - [stallfree_candidate]: every destination lies in ft0-ft2, so the
     body can qualify for the steady-state timing fast path: when all
     destinations are actively streaming (no scoreboard writes) and every
     non-streaming source is ready by the replay's first issue slot
     (checked at runtime), each slot starts exactly one cycle after the
     previous one and the whole replay's timing has a closed form. *)
type frep_info = {
  flops_per_iter : int;
  src_regs : int array;
  dst_regs : int array;
  stallfree_candidate : bool;
}

(* Control-flow classification shared by the simulator's block
   partitioner (below) and the machine-code CFG in [Mlc_analysis.Cfg]:
   one place decides what ends a straight-line region.
   [Ctl_barrier] marks execution-mode changes (SSR configuration and
   csr stream enable/disable) that are not control flow for CFG
   purposes but must end a fused block: stream-ness of ft0-ft2 is baked
   into compiled block closures at the current mask. *)
type control =
  | Ctl_fall
  | Ctl_branch of int (* conditional; fall-through or target *)
  | Ctl_jump of int
  | Ctl_ret
  | Ctl_frep of int (* frep.o header; body length *)
  | Ctl_barrier (* scfgwi / csrsi / csrci *)

let control_of (insn : Insn.t) =
  match insn with
  | Insn.Branch (_, _, _, target) -> Ctl_branch target
  | Insn.J target -> Ctl_jump target
  | Insn.Ret -> Ctl_ret
  | Insn.Frep_o (_, body_len) -> Ctl_frep body_len
  | Insn.Scfgwi _ | Insn.Csrsi _ | Insn.Csrci _ -> Ctl_barrier
  | Insn.Barrier | Insn.Dm_src _ | Insn.Dm_dst _ | Insn.Dm_str _
  | Insn.Dm_rep _ | Insn.Dm_cpy _ | Insn.Dm_wait ->
    (* Cluster synchronisation and DMA programming: stepped individually
       (the barrier suspends the core; dmcpy/dmwait touch cross-core
       timing state), so they end fused blocks like the SSR barriers. *)
    Ctl_barrier
  | Insn.Vsetvli _ | Insn.Vle _ | Insn.Vse _ | Insn.Vfmv_vf _
  | Insn.Vmv_vv _ | Insn.Vfvv _ | Insn.Vfvf _ | Insn.Vfmacc_vf _
  | Insn.Vfmacc_vv _ ->
    (* RVV: vector ops read the machine's vl/vtype state and the vector
       register file, neither of which the fused-block compiler models,
       so they are stepped individually like the SSR barriers. *)
    Ctl_barrier
  | _ -> Ctl_fall

(* A fused basic block: a maximal straight-line run of instructions
   that contains no label, no branch target, no FREP header or body
   slot and no mode barrier, except that a branch/jump/ret may be its
   last instruction. The block engine executes it as one compiled
   closure and commits the counters the per-instruction engine would
   have accumulated ([b_flops], [b_fpu], [b_loads], [b_stores], plus
   [b_len] each of fuel and retired) in one batched update at entry.

   The [b_adj_*] arrays carry the exact counter prefix the
   per-instruction engine would have accumulated when the instruction
   at offset [k] faults, replicating its increment order: flops and
   fpu_busy land after a successful execution (the faulting
   instruction contributes none), an integer load/store counts only
   after the access succeeds, while an FP load/store counts *before*
   its access (the faulting instruction contributes one). On a fault
   the engine rolls the batched commit back to [b_adj_*.(k)], making
   the trap's perf dump bit-identical to the per-instruction engine's.
   Stream reads/writes are not batched at all — they tick inside
   [pop_stream]/[push_stream] mid-instruction, exactly as before. *)
type block = {
  b_first : int;
  b_len : int;
  b_flops : int;
  b_fpu : int;
  b_loads : int;
  b_stores : int;
  b_adj_flops : int array;
  b_adj_fpu : int array;
  b_adj_loads : int array;
  b_adj_stores : int array;
}

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  source : string array Lazy.t; (* per-pc text, for traces and errors *)
  (* flat per-pc scoreboard metadata; -1 encodes "none" *)
  int_src1 : int array;
  int_src2 : int array;
  fp_src1 : int array;
  fp_src2 : int array;
  fp_src3 : int array;
  fp_dst : int array;
  is_fpu : bool array;
  flops : int array;
  fp_class : int array; (* class_int | class_fp_load | class_fp_store | class_fpu *)
  blocks : block option array;
      (* [Some b] exactly at the first pc of each fused block; pcs the
         block engine must step per-instruction (FREP headers and body
         slots, mode barriers, single-instruction blocks) are [None].
         Computed eagerly: programs are shared across concurrently
         running machines, so load-time work must finish before any
         domain sees the value. *)
}

let pad2 = function
  | [] -> (-1, -1)
  | [ a ] -> (a, -1)
  | [ a; b ] -> (a, b)
  | _ -> invalid_arg "Program: more than two integer sources"

let pad3 = function
  | [] -> (-1, -1, -1)
  | [ a ] -> (a, -1, -1)
  | [ a; b ] -> (a, b, -1)
  | [ a; b; c ] -> (a, b, c)
  | _ -> invalid_arg "Program: more than three FP sources"

let classify (insn : Insn.t) =
  match insn with
  | Insn.Fload _ -> class_fp_load
  | Insn.Fstore _ -> class_fp_store
  | i when Insn.is_fpu i -> class_fpu
  | _ -> class_int

(* Partition the instruction stream into fused basic blocks.

   Leaders: pc 0, every label, every branch/jump target, every pc after
   a branch/jump/ret/barrier, and the pc after an FREP body. FREP
   headers, their body slots and mode barriers are excluded from fusion
   entirely (marked per-instruction): the header keeps its PR1 fused
   replay, a body slot reached by a stray branch must execute exactly
   like the per-instruction engine, and barriers invalidate the stream
   mask the closures were compiled for. Blocks of fewer than two
   instructions gain nothing from fusion and stay per-instruction. *)
let partition insns labels is_fpu flops =
  let n = Array.length insns in
  let blocks = Array.make n None in
  if n > 0 then begin
    let leader = Array.make n false in
    let stepped = Array.make n false in
    leader.(0) <- true;
    Hashtbl.iter (fun _ pc -> if pc >= 0 && pc < n then leader.(pc) <- true) labels;
    let note pc = if pc >= 0 && pc < n then leader.(pc) <- true in
    for pc = 0 to n - 1 do
      match control_of insns.(pc) with
      | Ctl_fall -> ()
      | Ctl_branch target ->
        note target;
        note (pc + 1)
      | Ctl_jump target ->
        note target;
        note (pc + 1)
      | Ctl_ret -> note (pc + 1)
      | Ctl_barrier ->
        stepped.(pc) <- true;
        note pc;
        note (pc + 1)
      | Ctl_frep body_len ->
        stepped.(pc) <- true;
        note pc;
        for k = pc + 1 to min (pc + body_len) (n - 1) do
          stepped.(k) <- true;
          note k
        done;
        note (pc + body_len + 1)
    done;
    let is_load pc =
      match insns.(pc) with Insn.Load _ | Insn.Fload _ -> true | _ -> false
    in
    let is_store pc =
      match insns.(pc) with Insn.Store _ | Insn.Fstore _ -> true | _ -> false
    in
    (* The faulting instruction's own contribution, per the increment
       order documented on [block]. *)
    let fault_load pc = match insns.(pc) with Insn.Fload _ -> 1 | _ -> 0 in
    let fault_store pc = match insns.(pc) with Insn.Fstore _ -> 1 | _ -> 0 in
    let pc = ref 0 in
    while !pc < n do
      if stepped.(!pc) then incr pc
      else begin
        (* Extend from this leader: stop after a terminator, or before
           the next leader/stepped pc. *)
        let last = ref !pc in
        let stop = ref false in
        while not !stop do
          (match control_of insns.(!last) with
          | Ctl_branch _ | Ctl_jump _ | Ctl_ret -> stop := true
          | _ ->
            if
              !last + 1 >= n
              || leader.(!last + 1)
              || stepped.(!last + 1)
            then stop := true
            else incr last)
        done;
        let len = !last - !pc + 1 in
        if len >= 2 then begin
          let first = !pc in
          let adj_flops = Array.make len 0
          and adj_fpu = Array.make len 0
          and adj_loads = Array.make len 0
          and adj_stores = Array.make len 0 in
          let tf = ref 0 and tb = ref 0 and tl = ref 0 and ts = ref 0 in
          for k = 0 to len - 1 do
            let ipc = first + k in
            adj_flops.(k) <- !tf;
            adj_fpu.(k) <- !tb;
            adj_loads.(k) <- !tl + fault_load ipc;
            adj_stores.(k) <- !ts + fault_store ipc;
            tf := !tf + flops.(ipc);
            if is_fpu.(ipc) then incr tb;
            if is_load ipc then incr tl;
            if is_store ipc then incr ts
          done;
          blocks.(first) <-
            Some
              {
                b_first = first;
                b_len = len;
                b_flops = !tf;
                b_fpu = !tb;
                b_loads = !tl;
                b_stores = !ts;
                b_adj_flops = adj_flops;
                b_adj_fpu = adj_fpu;
                b_adj_loads = adj_loads;
                b_adj_stores = adj_stores;
              }
        end;
        pc := !last + 1
      end
    done
  end;
  blocks

let make ?source ~insns ~labels () =
  let n = Array.length insns in
  let int_src1 = Array.make n (-1)
  and int_src2 = Array.make n (-1)
  and fp_src1 = Array.make n (-1)
  and fp_src2 = Array.make n (-1)
  and fp_src3 = Array.make n (-1)
  and fp_dst = Array.make n (-1)
  and is_fpu = Array.make n false
  and flops = Array.make n 0
  and fp_class = Array.make n class_int in
  for pc = 0 to n - 1 do
    let insn = insns.(pc) in
    let ints, fps, _, fdst = Insn.deps insn in
    let i1, i2 = pad2 ints in
    let f1, f2, f3 = pad3 fps in
    int_src1.(pc) <- i1;
    int_src2.(pc) <- i2;
    fp_src1.(pc) <- f1;
    fp_src2.(pc) <- f2;
    fp_src3.(pc) <- f3;
    fp_dst.(pc) <- (match fdst with Some d -> d | None -> -1);
    is_fpu.(pc) <- Insn.is_fpu insn;
    flops.(pc) <- Insn.flops insn;
    fp_class.(pc) <- classify insn
  done;
  let source =
    match source with
    | Some s -> s
    | None -> lazy (Array.map Asm_parse.render insns)
  in
  {
    insns;
    labels;
    source;
    int_src1;
    int_src2;
    fp_src1;
    fp_src2;
    fp_src3;
    fp_dst;
    is_fpu;
    flops;
    fp_class;
    blocks = partition insns labels is_fpu flops;
  }

let of_asm (p : Asm_parse.program) =
  make
    ~source:(Lazy.from_val p.Asm_parse.source)
    ~insns:p.Asm_parse.insns ~labels:p.Asm_parse.labels ()

let entry t name =
  match Hashtbl.find_opt t.labels name with
  | Some pc -> pc
  | None ->
    raise (Asm_parse.Asm_error (Printf.sprintf "no such label %S" name))

(* Equality of the parts that determine execution: instruction arrays and
   label tables. Source text and decode caches are presentation only. *)
let equal a b =
  let table h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare in
  a.insns = b.insns && table a.labels = table b.labels
