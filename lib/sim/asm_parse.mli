(** The assembler: parses the textual assembly the backend emits into
    decoded instructions with resolved labels, mirroring the external
    assembler step of the paper's toolchain (§4.1). *)

exception Asm_error of string

(** ABI register name -> hardware index; raise {!Asm_error} on unknown
    names. *)
val xreg : string -> int

val freg : string -> int

type program = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  source : string array; (* original line per pc, for traces *)
}

(** The pc of a label; raises {!Asm_error} when absent. *)
val entry : program -> string -> int

val parse : string -> program

(** One decoded instruction rendered back to assembly text. Branch targets
    print as resolved pcs ("@12"): the decoded form carries no labels.
    Used to synthesise trace text for directly-emitted programs. *)
val render : Insn.t -> string
