(** Multi-core Snitch cluster simulation: N single-core {!Machine.t}
    values sharing one TCDM byte image (each through its own
    {!Mem.view}), stepped in lockstep barrier-delimited epochs with
    per-bank contention accounting and hardware-barrier rendezvous.
    See DESIGN.md, "Cluster simulation", for the epoch model, the
    conflict charge and the determinism contract.

    Host-side parallelism reuses the PR5 domain pool with its ordered
    commit: results — cycle counts, per-core counters, trap records —
    are byte-identical for any [-j], including [-j 1]. *)

(** Cycles from the last arrival at a barrier to its release. *)
val barrier_latency : int

(** How to step one core for one epoch: run from [entry] (or [resume])
    until a barrier suspension or ret. *)
type engine =
  resume:int option -> Machine.t -> Program.t -> entry:string -> Machine.outcome

val fast : engine
(** {!Block_exec.run}: the block-fused engine (default). *)

val per_insn : engine
(** {!Machine.run}: the per-instruction fast engine. *)

val reference : engine
(** {!Machine.run_reference}: the timing oracle. *)

type result = {
  makespan : int;  (** slowest core's drain point, conflicts included *)
  epochs : int;  (** barrier-delimited lockstep rounds executed *)
  conflicts : int array;  (** per-core bank-conflict cycles charged *)
}

(** [run ?pool ?engine cores] steps the cluster to completion.
    [cores.(i)] is core i's machine (created with [~mem:(Mem.view tcdm)
    ~core_id:i ~num_cores:n]), its program and its entry label.
    Per-core performance counters and DMA statistics are left in the
    machines. Raises [Invalid_argument] if the machines disagree with
    the cluster geometry or do not share one TCDM image; re-raises the
    lowest-numbered trapping core's {!Trap.Trap} if any core faults. *)
val run :
  ?pool:Mlc_parallel.Pool.t ->
  ?engine:engine ->
  (Machine.t * Program.t * string) array ->
  result
