(* Multi-core Snitch cluster simulation (DESIGN.md, "Cluster
   simulation"): N single-core machines sharing one TCDM byte image
   (each through its own [Mem.view], so bank counters stay per-core),
   stepped in lockstep *epochs*. An epoch runs every unfinished core
   with the chosen engine until it either suspends at a [barrier]
   ([Machine.barrier_hit]) or returns; then the scheduler

   1. charges each core the epoch's TCDM bank-conflict cycles under a
      collision-probability model: with [acc_i(b)] core i's accesses to
      bank b this epoch and [L] the epoch's busy span (the largest
      per-core cycle count any stepped core spent in it), each of core
      i's accesses to bank b is beaten with probability
      [(tot(b) - acc_i(b)) / L] — the fraction of the span the other
      cores occupy that bank — so core i loses
      [sum_b acc_i(b) * (tot(b) - acc_i(b)) / L] cycles (integer
      division, exact-overlap worst case capped by construction). The
      charge is a pure function of the per-core access multisets and
      span, so it is independent of host scheduling;

   2. synchronises every suspended core to the barrier release time
      [max_i max(core_time_i, fpu_last_done_i) + barrier_latency] —
      cores that already returned park at the barrier (they have
      arrived once and for all) and keep their own finish time;

   3. resets all bank counters and resumes suspended cores just past
      their barrier.

   Host-side parallelism reuses the PR5 domain pool: per-core stepping
   is the pure work function, all commits (barrier bookkeeping, trap
   propagation) happen in the caller's ordered commit loop, so results
   are byte-identical for any [-j]. A trap on any core aborts the run
   with the lowest-numbered trapping core's record — the same one a
   sequential core-0-first schedule would surface. *)

module Pool = Mlc_parallel.Pool

(* Cycles from the last core arriving at a barrier to the release. *)
let barrier_latency = 8

type engine =
  resume:int option -> Machine.t -> Program.t -> entry:string -> Machine.outcome

let fast ~resume m p ~entry = Block_exec.run ?resume m p ~entry
let per_insn ~resume m p ~entry = Machine.run ?resume m p ~entry
let reference ~resume m p ~entry = Machine.run_reference ?resume m p ~entry

type result = {
  makespan : int;  (** slowest core's drain point, conflicts included *)
  epochs : int;  (** barrier-delimited lockstep rounds executed *)
  conflicts : int array;  (** per-core bank-conflict cycles charged *)
}

(* Per-epoch bank-conflict charge for every core in [stepped] (indices
   into [cores]): each access collides with probability (others at the
   bank / epoch busy span [l]). Resets every core's bank counters
   afterwards. *)
let charge_conflicts (cores : (Machine.t * Program.t * string) array) stepped
    ~span conflicts =
  let l = max span 1 in
  let accs =
    List.map
      (fun i ->
        let m, _, _ = cores.(i) in
        (i, Mem.bank_accesses m.Machine.mem))
      stepped
  in
  let tot = Array.make Mem.num_banks 0 in
  List.iter
    (fun (_, acc) ->
      Array.iteri (fun b n -> tot.(b) <- tot.(b) + n) acc)
    accs;
  List.iter
    (fun (i, acc) ->
      let lost = ref 0 in
      Array.iteri
        (fun b n -> lost := !lost + (n * (tot.(b) - n) / l))
        acc;
      if !lost > 0 then begin
        conflicts.(i) <- conflicts.(i) + !lost;
        let m, _, _ = cores.(i) in
        m.Machine.core_time <- m.Machine.core_time + !lost
      end)
    accs;
  Array.iter (fun (m, _, _) -> Mem.reset_banks m.Machine.mem) cores

let run ?pool ?(engine = fast) (cores : (Machine.t * Program.t * string) array) =
  let n = Array.length cores in
  if n = 0 then invalid_arg "Cluster.run: empty cluster";
  let m0, _, _ = cores.(0) in
  Array.iteri
    (fun i (m, _, _) ->
      if m.Machine.num_cores <> n || m.Machine.core_id <> i then
        invalid_arg "Cluster.run: machines disagree with cluster geometry";
      if not (m.Machine.mem.Mem.bytes == m0.Machine.mem.Mem.bytes) then
        invalid_arg "Cluster.run: cores must share one TCDM image")
    cores;
  let resume = Array.make n None in
  let finished = Array.make n false in
  let conflicts = Array.make n 0 in
  let epochs = ref 0 in
  let all_done () = Array.for_all (fun d -> d) finished in
  while not (all_done ()) do
    incr epochs;
    let stepped = ref [] in
    for i = n - 1 downto 0 do
      if not finished.(i) then stepped := i :: !stepped
    done;
    let stepped = !stepped in
    let starts =
      List.map
        (fun i ->
          let m, _, _ = cores.(i) in
          m.Machine.core_time)
        stepped
    in
    (* Pure work function: no shared mutation outside core [i]'s own
       machine (cores write disjoint TCDM ranges between barriers — the
       discipline the lowering guarantees and mlc_lint checks). *)
    let step i =
      let m, p, entry = cores.(i) in
      match engine ~resume:resume.(i) m p ~entry with
      | outcome -> Ok outcome
      | exception Trap.Trap tr -> Error tr
    in
    let results =
      match pool with
      | Some pool when Pool.jobs pool > 1 -> Pool.map pool step stepped
      | _ -> List.map step stepped
    in
    (* Ordered commit: deterministic regardless of host parallelism. *)
    List.iter2
      (fun i r ->
        match r with
        | Error tr -> raise (Trap.Trap tr)
        | Ok (outcome : Machine.outcome) ->
          let m, _, _ = cores.(i) in
          if m.Machine.barrier_hit then begin
            m.Machine.barrier_hit <- false;
            resume.(i) <- Some outcome.Machine.final_pc
          end
          else finished.(i) <- true)
      stepped results;
    (* Busy span: the slowest stepped core's cycles inside this epoch
       (FPU drain included — its accesses spread over that tail too). *)
    let span =
      List.fold_left2
        (fun acc i start ->
          let m, _, _ = cores.(i) in
          max acc (max m.Machine.core_time m.Machine.fpu_last_done - start))
        0 stepped starts
    in
    charge_conflicts cores stepped ~span conflicts;
    (* Barrier release: every core still suspended resumes at the
       rendezvous time; returned cores park and keep their own time. *)
    if not (all_done ()) then begin
      let t = ref 0 in
      Array.iter
        (fun (m, _, _) ->
          let drain = max m.Machine.core_time m.Machine.fpu_last_done in
          if drain > !t then t := drain)
        cores;
      let release = !t + barrier_latency in
      Array.iteri
        (fun i (m, _, _) ->
          if not finished.(i) then m.Machine.core_time <- release)
        cores
    end
  done;
  (* Conflict charges land after the engines set [perf.cycles]; refresh
     the drain point on every core. *)
  let makespan = ref 0 in
  Array.iter
    (fun (m, _, _) ->
      let drain = max m.Machine.core_time m.Machine.fpu_last_done in
      m.Machine.perf.Machine.cycles <- drain;
      if drain > !makespan then makespan := drain)
    cores;
  { makespan = !makespan; epochs = !epochs; conflicts }
