(** The block-fused execution engine (DESIGN.md, "Block-fused
    execution"): executes {!Program.t} values by compiling each fused
    basic block (precomputed by [Program.partition]) into a single
    OCaml closure chain that threads machine state through locals, and
    committing the block's fuel/retired/flops/fpu_busy/loads/stores in
    one batched update per execution. Falls back to the
    per-instruction fast path ({!Machine.step_fast}) for FREP headers
    (which keep their fused replay), SSR/CSR mode barriers,
    single-instruction blocks, and blocks entered with too little fuel
    to complete; tracing runs delegate to {!Machine.run} wholesale.

    Observable behaviour is bit-identical to {!Machine.run} and
    {!Machine.run_reference}: registers, memory, performance counters,
    [final_pc], and — via rollback of the batched counter commit to
    the per-instruction prefix — the exact {!Trap.Trap} record for any
    mid-block fault, attributed to the faulting pc. *)

(** Execute from the [entry] label until [ret]; same contract as
    {!Machine.run}, including the cluster barrier suspension and
    [?resume] semantics. *)
val run : ?resume:int -> Machine.t -> Program.t -> entry:string -> Machine.outcome
