(** Stream semantic register (SSR) address generators (paper §2.4): up to
    4-dimensional affine patterns with per-dimension bounds and byte
    strides, plus an innermost repeat count serving repeated accesses
    without touching the interconnect (§3.2's stride-0 optimisation).
    The data path is 64-bit; elements default to 8 bytes, with 4-byte
    elements for scalar-f32 streams declared via the width config slot
    (assembler contract in DESIGN.md). *)

exception Stream_fault of string

type t = {
  mutable bounds : int array;
  mutable strides : int array;
  mutable repeat : int;
  mutable ptr : int;
  mutable idx : int array;
  mutable cur : int;  (** cached [ptr + sum idx.(d) * strides.(d)] *)
  mutable rep_left : int;
  mutable active : bool;
  mutable finished : bool;
  mutable is_write : bool;
  mutable width : int;  (** element size in bytes: 4 or 8 *)
  mutable served : int;
}

val create : unit -> t

(** Config slots accumulated by scfgwi writes before the pointer write
    arms the stream. Bound slots hold count-1, as in the Snitch ISA. *)
type config = {
  mutable c_bounds : int array;
  mutable c_strides : int array;
  mutable c_repeat : int;
  mutable c_width : int;
}

val fresh_config : unit -> config
val arm : t -> config -> dims:int -> ptr:int -> is_write:bool -> unit
val total_elements : t -> int

(** Address of the next element to serve; advances the generator. Raises
    {!Stream_fault} on overruns and direction mismatches. *)
val next_read_address : t -> int

val next_write_address : t -> int

(** Advance the odometer after one element has been served. Exposed for
    the simulator's compiled FREP fast path, which inlines the
    element-serving checks; normal clients use {!next_read_address} /
    {!next_write_address}. *)
val advance : t -> unit

(** Carry the odometer starting at dimension [d] (increment, wrap,
    recurse outward; marks the stream finished past the last
    dimension). [advance] is [bump t 0] after the repeat count is
    reloaded — exposed so the fast path can inline the common no-carry
    innermost step and fall back here on wrap-around. *)
val bump : t -> int -> unit
