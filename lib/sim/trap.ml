(* Typed simulator traps: the uniform fault surface of both execution
   engines. See trap.mli for the pc-attribution contract. *)

type kind =
  | Out_of_fuel
  | Access_fault of { addr : int; width : int }
  | Stream_fault of { reason : string }
  | Illegal of { reason : string }

(* [core] attributes a fault to the cluster core that raised it;
   single-core machines use core 0, whose rendering is unchanged so the
   pre-cluster golden trap records stay bit-identical. *)
type t = { kind : kind; pc : int; insn : string; state : string; core : int }

exception Trap of t

let describe_kind = function
  | Out_of_fuel -> "out of fuel: runaway execution (infinite loop?)"
  | Access_fault { addr; width } ->
    if addr < 0 then "access fault: TCDM arena exhausted"
    else if
      addr >= Mem.tcdm_base
      && addr + width <= Mem.tcdm_base + Mem.tcdm_size
    then Printf.sprintf "misaligned TCDM access at 0x%x (%d bytes)" addr width
    else
      Printf.sprintf "TCDM access fault at 0x%x (%d bytes): outside [0x%x, 0x%x)"
        addr width Mem.tcdm_base
        (Mem.tcdm_base + Mem.tcdm_size)
  | Stream_fault { reason } -> Printf.sprintf "stream fault: %s" reason
  | Illegal { reason } -> Printf.sprintf "illegal instruction: %s" reason

let summary t =
  if t.core = 0 then
    Printf.sprintf "trap at pc %d (%s): %s" t.pc t.insn (describe_kind t.kind)
  else
    Printf.sprintf "trap on core %d at pc %d (%s): %s" t.core t.pc t.insn
      (describe_kind t.kind)

let pp ppf t =
  Format.fprintf ppf "@[<v>%s@,--- machine state ---@,%s@]" (summary t)
    (String.trim t.state)

let to_string t = Format.asprintf "%a" pp t

(* Alcotest-friendly registration: render the payload instead of
   "Trap.Trap(_)". *)
let () =
  Printexc.register_printer (function
    | Trap t -> Some (summary t)
    | _ -> None)
