(** The Snitch core simulator: functional execution plus a cycle-level
    timing model of the documented micro-architecture (paper §2.4, §4.1;
    timing contract in DESIGN.md):

    - in-order single-issue integer core (1 instruction/cycle, integer
      loads with a 2-cycle use latency, taken branches cost 2);
    - a decoupled FPU consuming a FIFO of FP instructions: one starts per
      cycle, results ready 3 cycles later (3-stage pipeline), so RAW
      chains stall — the stalls unroll-and-jam eliminates;
    - FREP: the sequencer replays buffered FP instructions without the
      integer core (pseudo-dual issue);
    - SSRs: accesses to ft0–ft2 while streaming move elements directly
      between FPU and TCDM.

    Two engines implement the model over pre-decoded {!Program.t} values:
    {!run} (fast: flat metadata arrays, cached FREP decode, steady-state
    FREP replay) and {!run_reference} (the original per-instruction loop,
    kept as the timing oracle). They produce bit-identical performance
    counters; see DESIGN.md, "Simulator performance & timing contract". *)

(** Internal fault carrier for illegal execution (bad scfgwi, non-FPU op
    under FREP, pc out of bounds). Never escapes {!run}/{!run_reference}:
    the engines convert it — together with {!Mem.Access_fault},
    {!Ssr.Stream_fault} and fuel exhaustion — into a typed {!Trap.Trap}
    at the faulting pc. *)
exception Exec_error of string

(** Performance counters (paper §4.1 metrics). *)
type perf = {
  mutable cycles : int;
  mutable fpu_busy : int;
      (** dynamic FP-datapath instructions (one EX cycle each) *)
  mutable flops : int;
  mutable loads : int;  (** explicit loads (integer + FP) *)
  mutable stores : int;
  mutable freps : int;  (** dynamic frep.o issues *)
  mutable retired : int;
  mutable stream_reads : int;
  mutable stream_writes : int;
}

type t = {
  mem : Mem.t;
  iregs : int64 array;
  fregs : int64 array;
  ssrs : Ssr.t array;
  ssr_cfg : Ssr.config array;
  mutable ssr_enabled : bool;
  core_id : int;  (** which core of a [num_cores]-core cluster this is *)
  num_cores : int;
  mutable barrier_hit : bool;
      (** set when a [barrier] executes on a multi-core machine: the
          engines stop with [final_pc] just past the barrier and
          {!Cluster} resumes the core there after synchronising. Reset
          by the cluster scheduler, never by the engines. *)
  mutable dma_src : int;  (** DMA front-end: source base address *)
  mutable dma_dst : int;  (** DMA front-end: destination base address *)
  mutable dma_sstr : int;  (** DMA front-end: source row stride (bytes) *)
  mutable dma_dstr : int;  (** DMA front-end: destination row stride *)
  mutable dma_reps : int;  (** DMA front-end: row count *)
  mutable dma_done : int;  (** cycle the outstanding transfer completes *)
  mutable dma_bytes : int;  (** total bytes moved by dmcpy (reporting) *)
  mutable dma_txns : int;  (** dmcpy launches (reporting) *)
  vregs : bytes;  (** RVV register file: 32 × VLEN/8 bytes, little-endian *)
  mutable vl : int;  (** active vector length (elements), set by vsetvli *)
  mutable vsew : int;  (** selected element width in bits (32 or 64) *)
  mutable core_time : int;
  mutable fpu_free_at : int;
  int_ready : int array;
  fp_ready : int array;
  mutable fpu_last_done : int;
  perf : perf;
  mutable fuel : int;
  trace_enabled : bool;
  trace_cap : int;
  trace_cycles : int array;
  trace_srcs : string array;
  mutable trace_len : int;  (** total trace entries ever pushed *)
  mutable frep_compiled : frep_body option array;
      (** fast-engine cache of compiled FREP bodies (internal) *)
  mutable frep_compiled_for : Program.t option;
  mutable frep_info : Program.frep_info option array;
      (** per-pc FREP decode facts for [frep_compiled_for] — per machine,
          since programs are immutable and shared across concurrent runs *)
  mutable blk_compiled : blk_closure option array;
      (** block-engine cache of compiled block closures (internal) *)
  mutable blk_pc : int;
      (** pc of the instruction executing inside a fused block, for
          fault attribution (maintained by {!Block_exec}) *)
}

and frep_body = {
  b_mask : int;
  b_fused : (unit -> unit) array;
  mutable b_fn : (unit -> unit) array option;
}

and blk_closure = {
  bc_streaming : bool;  (** the [ssr_enabled] mask compiled against *)
  bc_exec : unit -> int;
      (** runs the whole block; returns the next pc, or [lnot retpc]
          when the block ended in [ret] at [retpc] *)
}

(** [create ~fuel ~trace ()] — [fuel] bounds dynamic instructions
    (catches runaway loops); [trace] records per-instruction issue
    cycles into a bounded ring of [trace_cap] entries (default 65536);
    see {!trace}.

    Cluster cores pass [~mem] (a {!Mem.view} of the shared TCDM, so
    bytes are shared but bank counters are private) plus [~core_id] and
    [~num_cores]; the stack pointer starts [core_id * 1024] below the
    TCDM top so core stacks never collide. The defaults (fresh memory,
    core 0 of 1) are the single-core machine, bit-identical to the
    pre-cluster behaviour. *)
val create :
  ?fuel:int ->
  ?trace:bool ->
  ?trace_cap:int ->
  ?mem:Mem.t ->
  ?core_id:int ->
  ?num_cores:int ->
  unit ->
  t

(** Bytes of TCDM stack reserved per cluster core, below the TCDM top. *)
val stack_bytes : int

val set_ireg : t -> int -> int64 -> unit
val get_ireg : t -> int -> int64
val set_freg : t -> int -> int64 -> unit
val get_freg_raw : t -> int -> int64

type outcome = { perf : perf; final_pc : int }

(** Execute from the [entry] label until [ret]. Functional state and
    counters live in [t]; total cycles are the drain point of both the
    integer core and the FPU. Every runtime fault — fuel exhaustion,
    out-of-bounds or misaligned TCDM access, SSR stream misuse, illegal
    execution (non-FPU op under FREP, bad scfgwi, pc out of bounds) —
    raises a typed {!Trap.Trap} carrying the faulting pc, the
    disassembled instruction and a machine-state + perf dump; both
    engines raise identical records for the same fault. This is the
    fast engine; its performance counters are bit-identical to
    {!run_reference}.

    On a multi-core machine a [barrier] suspends execution instead of
    completing it: the engine returns with [final_pc] just past the
    barrier and [barrier_hit] set. [?resume] restarts execution at that
    pc instead of the entry label (the cluster scheduler's epoch loop). *)
val run : ?resume:int -> t -> Program.t -> entry:string -> outcome

(** The original per-instruction interpretation loop, kept as the timing
    oracle: differential tests assert [run] and [run_reference] agree on
    every counter, and the benchmark driver measures the fast engine's
    host-side speedup against it. Same [?resume]/barrier contract. *)
val run_reference : ?resume:int -> t -> Program.t -> entry:string -> outcome

(** The instruction trace, oldest first, as "cycle: instruction" lines
    (empty unless created with [~trace:true]). Bounded: only the most
    recent [trace_cap] entries (default 65536) are retained — earlier
    entries of longer runs are overwritten in ring order. *)
val trace : t -> string list

(** FPU utilisation in percent (paper §4.1). *)
val utilization : perf -> float

(** FLOPs per cycle. *)
val throughput : perf -> float

(** {2 Engine internals shared with {!Block_exec}}

    The block-fused engine lives in its own module but compiles blocks
    down to the same primitive state transitions as the per-instruction
    fast path; these exports are that shared vocabulary. They are not a
    stable public API. *)

(** (Re)size the per-program decode/compile caches (FREP bodies, FREP
    facts, block closures) when [t] first sees this program or switches
    programs. Idempotent on the same physical program. *)
val prepare : t -> Program.t -> unit

(** Execute exactly one instruction of the fast engine at [pc]: burns
    fuel, retires, applies functional + timing effects. Returns the next
    pc, or [-1] after [ret] (the caller's pc stays on the ret, matching
    the engines' [final_pc]). Faults escape as raw exceptions with the
    machine state at the faulting instruction. *)
val step_fast : t -> Program.t -> int -> int

(** Convert a fault escaping an engine loop into a typed {!Trap.Trap}
    attributed to [pc]; unknown exceptions pass through unchanged. *)
val raise_as_trap : t -> Program.t -> int -> exn -> 'a

(** Functional execution of one FP-path instruction (no timing). *)
val fpu_execute_functional : t -> Insn.t -> unit

(** Pop/push one element of SSR data mover [i] (0-2), ticking the
    stream perf counters; fault on misuse via {!Ssr.Stream_fault}. *)
val pop_stream : t -> int -> int64

val push_stream : t -> int -> int64 -> unit

(** Is register [i] a streaming data register under the current mask? *)
val is_stream_reg : t -> int -> bool

val apply_alu : Insn.alu -> int64 -> int64 -> int64
val apply_fop : Insn.fop -> float -> float -> float
val f64_of : int64 -> float
val bits_of_f64 : float -> int64
val f32_round : float -> float
val with_lo32 : int64 -> float -> int64

(** Checked 64-bit TCDM accessors with the bounds/alignment fast path
    inlined; the cold path raises the canonical {!Mem.Access_fault}. *)
val mem_get64 : Mem.t -> int -> int64

val mem_set64 : Mem.t -> int -> int64 -> unit

(** Timing-model constants (DESIGN.md timing contract). *)
val fpu_latency : int

val int_load_latency : int
val fp_load_latency : int
val taken_branch_cost : int
val fpu_fifo_depth : int
