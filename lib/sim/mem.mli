(** The tightly-coupled data memory (TCDM): 128 KiB of software-managed
    L1, the only memory the evaluated kernels touch (paper §2.4, §4.1). *)

type t = { base : int; bytes : Bytes.t; banks : int array }

(** Raised on an out-of-bounds or misaligned TCDM access (and, with
    [addr = -1], on arena exhaustion). The engines convert this into a
    {!Trap.Trap} carrying the faulting pc. *)
exception Access_fault of { addr : int; width : int; msg : string }

val tcdm_base : int
val tcdm_size : int

(** The fill byte of fresh and reset TCDM contents: memory starts
    poisoned (0xAA), not zeroed, so missing stores read back loud
    deterministic garbage instead of stale or conveniently-zero data. *)
val poison_byte : char

val create : unit -> t

(** Number of 64-bit-interleaved TCDM banks modelled for contention
    accounting. *)
val num_banks : int

(** [view t] is a second core's window onto the same TCDM: shared
    contents, private per-bank access counters. *)
val view : t -> t

(** Count one access to the bank serving [addr] (timing accounting only;
    the engines call this on every data access). *)
val tick : t -> int -> unit

(** Snapshot of the per-bank access counters of this view. *)
val bank_accesses : t -> int array

(** Zero the per-bank counters (the cluster engine does this after
    charging each epoch's contention). *)
val reset_banks : t -> unit

val load64 : t -> int -> int64
val store64 : t -> int -> int64 -> unit
val load32 : t -> int -> int32
val store32 : t -> int -> int32 -> unit
val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit
val load_f32 : t -> int -> float
val store_f32 : t -> int -> float -> unit

(** A bump allocator over the TCDM for harnesses (8-byte aligned). *)
type arena

val arena : t -> arena

(** Returns the allocated base address; raises {!Access_fault} when the
    TCDM is exhausted. *)
val alloc : arena -> int -> int

(** Rewinds the allocator and re-poisons the whole TCDM, so nothing
    survives from the previous run. *)
val reset : arena -> unit
