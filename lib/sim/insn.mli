(** Decoded instruction set of the simulated Snitch core: RV64 IM + FD
    plus the Snitch extensions (FREP, SSR configuration, packed SIMD).
    DESIGN.md explains the RV64 modelling choice. *)

type alu = Add | Sub | Mul | Div | And | Or | Xor | Slt | Sll | Sra
type fop = Fadd | Fsub | Fmul | Fdiv | Fmax | Fmin
type prec = D | S
type vfop = Vfadd | Vfsub | Vfmul | Vfmax | Vfmin
type cond = Beq | Bne | Blt | Bge

type t =
  | Li of int * int64
  | Mv of int * int
  | Alu of alu * int * int * int
  | Alui of alu * int * int * int64
  | Load of int * int * int * int  (** width, rd, offset, base *)
  | Store of int * int * int * int
  | Fload of int * int * int * int
  | Fstore of int * int * int * int
  | Fop of fop * prec * int * int * int
  | Fmadd of prec * int * int * int * int
  | Fmv of int * int
  | Fcvt_from_int of prec * int * int
  | Fmv_from_bits of prec * int * int
  | Vf of vfop * int * int * int
  | Vfmac of int * int * int  (** fd (tied accumulator), fs1, fs2 *)
  | Vfsum of int * int
  | Vfcpka of int * int * int
  | Scfgwi of int * int  (** rs1, slot*8+dm *)
  | Csrsi of int * int
  | Csrci of int * int
  | Frep_o of int * int  (** repetition register, body length *)
  | Branch of cond * int * int * int
  | J of int
  | Ret
  | Nop
  | Vsetvli of int * int  (** rs (AVL), sew bits; rd is always zero *)
  | Vle of int * int * int  (** vd, base, element size in bytes *)
  | Vse of int * int * int  (** vs, base, element size in bytes *)
  | Vfmv_vf of int * int  (** vd, fs: broadcast scalar *)
  | Vmv_vv of int * int  (** vd, vs *)
  | Vfvv of fop * int * int * int  (** vd, vs1, vs2: vd = vs1 op vs2 *)
  | Vfvf of fop * bool * int * int * int
      (** vd, vs2, fs; the bool marks the reversed (vfrsub/vfrdiv)
          forms: vd = fs op vs2 *)
  | Vfmacc_vf of int * int * int  (** vd, fs, vs2: vd += fs * vs2 *)
  | Vfmacc_vv of int * int * int  (** vd, vs1, vs2: vd += vs1 * vs2 *)
  | Barrier  (** cluster hardware barrier (single-core: 1-cycle nop) *)
  | Dm_src of int  (** DMA source base address register *)
  | Dm_dst of int  (** DMA destination base address register *)
  | Dm_str of int * int  (** DMA source/destination row strides (bytes) *)
  | Dm_rep of int  (** DMA row count of the 2D transfer *)
  | Dm_cpy of int  (** bytes per row; launches the programmed transfer *)
  | Dm_wait  (** stall until the outstanding DMA transfer completes *)

(** Executes in the FPU data path (counts toward occupancy; legal under
    FREP)? *)
val is_fpu : t -> bool

(** FLOPs of one dynamic execution (fmadd 2; packed ops per lane,
    paper §4.1). *)
val flops : t -> int

(** (integer sources, FP sources, integer dest, FP dest) for the timing
    scoreboard. *)
val deps : t -> int list * int list * int option * int option
