(* The block-fused execution engine (DESIGN.md, "Block-fused
   execution"): the PR1 insight that compiling a hot region to OCaml
   closures beats re-dispatching on instruction tags every cycle,
   generalised from FREP bodies to every straight-line basic block.

   At program load time [Program.partition] splits the pre-decoded
   instruction stream into fused blocks (straight-line runs with no
   interior label, branch target, FREP slot or mode barrier). On first
   execution of a block under a given SSR stream mask, [compile_block]
   chains one specialised closure per instruction — register numbers,
   immediates, widths and stream-ness baked in — so executing the block
   is a single call that threads the machine state through locals and
   direct field updates, with no per-instruction fuel check, dispatch,
   or metadata array loads.

   Counter batching: fuel, retired, flops, fpu_busy, loads and stores
   are committed once per block execution from the partition's
   precomputed totals; the closures never touch them. Stream
   reads/writes still tick inside [Machine.pop_stream]/[push_stream] —
   they advance mid-instruction and the trap dump must see the exact
   element count. When a closure faults, [reconcile] rolls the batched
   commit back to the per-instruction engine's exact prefix (the
   [b_adj_*] arrays), so the resulting [Trap.Trap] record — pc,
   instruction, perf dump, fuel line — is bit-identical to the one
   [Machine.run] raises for the same fault.

   Fallback to [Machine.step_fast], the per-instruction fast path:
   - pcs with no fused block (FREP headers — which keep their PR1 fused
     replay — and body slots, scfgwi/csrsi/csrci barriers, blocks of
     fewer than two instructions);
   - a block entered with [fuel <= b_len]: out-of-fuel must trap at the
     exact instruction, so the tail of the run is stepped;
   - tracing runs delegate to [Machine.run] wholesale (the trace ring
     wants per-instruction issue times).

   The engines' differential test (test_block_exec) asserts
   bit-identical registers, memory, counters and trap records against
   [Machine.run] over the kernel registry and a fuzz corpus. *)

module M = Machine

(* Generic FP timing for one fused-block instruction — [fpu_timing_fast]
   minus the fpu_busy/flops updates (those are batched). *)
let[@inline] fpu_timing_nocount (t : M.t) (p : Program.t) pc ~avail =
  let start = max t.M.fpu_free_at avail in
  let rd r m =
    if r >= 0 && not (M.is_stream_reg t r) then max m t.M.fp_ready.(r) else m
  in
  let start =
    rd p.Program.fp_src3.(pc)
      (rd p.Program.fp_src2.(pc) (rd p.Program.fp_src1.(pc) start))
  in
  t.M.fpu_free_at <- start + 1;
  let latency =
    let c = p.Program.fp_class.(pc) in
    if c = Program.class_fp_load then M.fp_load_latency
    else if c = Program.class_fp_store then 1
    else M.fpu_latency
  in
  let d = p.Program.fp_dst.(pc) in
  if d >= 0 && not (M.is_stream_reg t d) then t.M.fp_ready.(d) <- start + latency;
  if start + latency > t.M.fpu_last_done then t.M.fpu_last_done <- start + latency

(* Compile the fused block [b] for machine [t] under the current stream
   mask. The closure chain executes every instruction in order and
   returns the successor pc ([lnot retpc] for a terminating ret). Each
   instruction's state transitions replicate [Machine.step_fast]'s arm
   for that instruction exactly, minus the batched counters; faultable
   instructions record their pc in [t.blk_pc] first so [reconcile] and
   the trap know the exact fault point. *)
let compile_block (t : M.t) (p : Program.t) (b : Program.block) : unit -> int =
  let first = b.Program.b_first and len = b.Program.b_len in
  let insns = p.Program.insns in
  let iregs = t.M.iregs
  and fregs = t.M.fregs
  and int_ready = t.M.int_ready
  and fp_ready = t.M.fp_ready in
  let streaming = t.M.ssr_enabled in
  let stream r = streaming && r < 3 in
  let[@inline] rd_i r = if r = 0 then 0L else iregs.(r) in
  let[@inline] wr_i r v = if r <> 0 then iregs.(r) <- v in
  let rec mk k : unit -> int =
    let pc = first + k in
    let next : unit -> int =
      if k + 1 < len then mk (k + 1) else fun () -> pc + 1
    in
    let insn = insns.(pc) in
    match insn with
    | Insn.Li (rd, imm) ->
      fun () ->
        let issue = t.M.core_time in
        wr_i rd imm;
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Mv (rd, rs) ->
      fun () ->
        let m = t.M.core_time in
        let issue = if int_ready.(rs) > m then int_ready.(rs) else m in
        wr_i rd (rd_i rs);
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Alu (Insn.Add, rd, rs1, rs2) ->
      fun () ->
        let m = t.M.core_time in
        let m = if int_ready.(rs1) > m then int_ready.(rs1) else m in
        let issue = if int_ready.(rs2) > m then int_ready.(rs2) else m in
        wr_i rd (Int64.add (rd_i rs1) (rd_i rs2));
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Alu (op, rd, rs1, rs2) ->
      fun () ->
        let m = t.M.core_time in
        let m = if int_ready.(rs1) > m then int_ready.(rs1) else m in
        let issue = if int_ready.(rs2) > m then int_ready.(rs2) else m in
        wr_i rd (M.apply_alu op (rd_i rs1) (rd_i rs2));
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Alui (Insn.Add, rd, rs1, imm) ->
      fun () ->
        let m = t.M.core_time in
        let issue = if int_ready.(rs1) > m then int_ready.(rs1) else m in
        wr_i rd (Int64.add (rd_i rs1) imm);
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Alui (op, rd, rs1, imm) ->
      fun () ->
        let m = t.M.core_time in
        let issue = if int_ready.(rs1) > m then int_ready.(rs1) else m in
        wr_i rd (M.apply_alu op (rd_i rs1) imm);
        t.M.core_time <- issue + 1;
        int_ready.(rd) <- issue + 1;
        next ()
    | Insn.Load (width, rd, off, base) ->
      if width = 8 then
        fun () ->
          t.M.blk_pc <- pc;
          let m = t.M.core_time in
          let issue = if int_ready.(base) > m then int_ready.(base) else m in
          let addr = Int64.to_int (rd_i base) + off in
          let v = M.mem_get64 t.M.mem addr in
          wr_i rd v;
          t.M.core_time <- issue + 1;
          int_ready.(rd) <- issue + M.int_load_latency;
          next ()
      else
        fun () ->
          t.M.blk_pc <- pc;
          let m = t.M.core_time in
          let issue = if int_ready.(base) > m then int_ready.(base) else m in
          let addr = Int64.to_int (rd_i base) + off in
          let v = Int64.of_int32 (Mem.load32 t.M.mem addr) in
          wr_i rd v;
          t.M.core_time <- issue + 1;
          int_ready.(rd) <- issue + M.int_load_latency;
          next ()
    | Insn.Store (width, rs, off, base) ->
      if width = 8 then
        fun () ->
          t.M.blk_pc <- pc;
          let m = t.M.core_time in
          let m = if int_ready.(rs) > m then int_ready.(rs) else m in
          let issue = if int_ready.(base) > m then int_ready.(base) else m in
          let addr = Int64.to_int (rd_i base) + off in
          M.mem_set64 t.M.mem addr (rd_i rs);
          t.M.core_time <- issue + 1;
          next ()
      else
        fun () ->
          t.M.blk_pc <- pc;
          let m = t.M.core_time in
          let m = if int_ready.(rs) > m then int_ready.(rs) else m in
          let issue = if int_ready.(base) > m then int_ready.(base) else m in
          let addr = Int64.to_int (rd_i base) + off in
          Mem.store32 t.M.mem addr (Int64.to_int32 (rd_i rs));
          t.M.core_time <- issue + 1;
          next ()
    | Insn.Branch (cond, rs1, rs2, target) ->
      (* Terminator: [partition] guarantees it is the block's last
         instruction, so [next] is never taken from here. *)
      fun () ->
        let m = t.M.core_time in
        let m = if int_ready.(rs1) > m then int_ready.(rs1) else m in
        let issue = if int_ready.(rs2) > m then int_ready.(rs2) else m in
        let a = rd_i rs1 and b = rd_i rs2 in
        let taken =
          match cond with
          | Insn.Beq -> a = b
          | Insn.Bne -> a <> b
          | Insn.Blt -> Int64.compare a b < 0
          | Insn.Bge -> Int64.compare a b >= 0
        in
        if taken then begin
          t.M.core_time <- issue + M.taken_branch_cost;
          target
        end
        else begin
          t.M.core_time <- issue + 1;
          pc + 1
        end
    | Insn.J target ->
      fun () ->
        t.M.core_time <- t.M.core_time + M.taken_branch_cost;
        target
    | Insn.Ret ->
      fun () ->
        t.M.core_time <- t.M.core_time + 1;
        lnot pc
    | Insn.Nop ->
      fun () ->
        t.M.core_time <- t.M.core_time + 1;
        next ()
    | Insn.Fmadd (Insn.D, fd, fs1, fs2, fs3) ->
      let st1 = stream fs1
      and st2 = stream fs2
      and st3 = stream fs3
      and std = stream fd in
      let faultable = st1 || st2 || st3 || std in
      fun () ->
        if faultable then t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        let a = M.f64_of (if st1 then M.pop_stream t fs1 else fregs.(fs1))
        and b = M.f64_of (if st2 then M.pop_stream t fs2 else fregs.(fs2))
        and c = M.f64_of (if st3 then M.pop_stream t fs3 else fregs.(fs3)) in
        let v = M.bits_of_f64 (Float.fma a b c) in
        (if std then M.push_stream t fd v else fregs.(fd) <- v);
        let avail = issue + 1 in
        let start =
          let f = t.M.fpu_free_at in
          if f > avail then f else avail
        in
        let start =
          if st1 then start
          else if fp_ready.(fs1) > start then fp_ready.(fs1)
          else start
        in
        let start =
          if st2 then start
          else if fp_ready.(fs2) > start then fp_ready.(fs2)
          else start
        in
        let start =
          if st3 then start
          else if fp_ready.(fs3) > start then fp_ready.(fs3)
          else start
        in
        t.M.fpu_free_at <- start + 1;
        if not std then fp_ready.(fd) <- start + M.fpu_latency;
        if start + M.fpu_latency > t.M.fpu_last_done then
          t.M.fpu_last_done <- start + M.fpu_latency;
        next ()
    | Insn.Fop (op, Insn.D, fd, fs1, fs2) ->
      let st1 = stream fs1 and st2 = stream fs2 and std = stream fd in
      let faultable = st1 || st2 || std in
      fun () ->
        if faultable then t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        let a = M.f64_of (if st1 then M.pop_stream t fs1 else fregs.(fs1))
        and b = M.f64_of (if st2 then M.pop_stream t fs2 else fregs.(fs2)) in
        let v = M.bits_of_f64 (M.apply_fop op a b) in
        (if std then M.push_stream t fd v else fregs.(fd) <- v);
        let avail = issue + 1 in
        let start =
          let f = t.M.fpu_free_at in
          if f > avail then f else avail
        in
        let start =
          if st1 then start
          else if fp_ready.(fs1) > start then fp_ready.(fs1)
          else start
        in
        let start =
          if st2 then start
          else if fp_ready.(fs2) > start then fp_ready.(fs2)
          else start
        in
        t.M.fpu_free_at <- start + 1;
        if not std then fp_ready.(fd) <- start + M.fpu_latency;
        if start + M.fpu_latency > t.M.fpu_last_done then
          t.M.fpu_last_done <- start + M.fpu_latency;
        next ()
    | Insn.Fmv (fd, fs) ->
      let st1 = stream fs and std = stream fd in
      let faultable = st1 || std in
      fun () ->
        if faultable then t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        let v = if st1 then M.pop_stream t fs else fregs.(fs) in
        (if std then M.push_stream t fd v else fregs.(fd) <- v);
        let avail = issue + 1 in
        let start =
          let f = t.M.fpu_free_at in
          if f > avail then f else avail
        in
        let start =
          if st1 then start
          else if fp_ready.(fs) > start then fp_ready.(fs)
          else start
        in
        t.M.fpu_free_at <- start + 1;
        if not std then fp_ready.(fd) <- start + M.fpu_latency;
        if start + M.fpu_latency > t.M.fpu_last_done then
          t.M.fpu_last_done <- start + M.fpu_latency;
        next ()
    | Insn.Fload (width, fd, off, base) ->
      let std = stream fd in
      fun () ->
        t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let m = if int_ready.(base) > m then int_ready.(base) else m in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        let addr = Int64.to_int (rd_i base) + off in
        let v =
          if width = 8 then M.mem_get64 t.M.mem addr
          else Int64.logand (Int64.of_int32 (Mem.load32 t.M.mem addr)) 0xFFFFFFFFL
        in
        (if std then M.push_stream t fd v else fregs.(fd) <- v);
        let avail = issue + 1 in
        let start =
          let f = t.M.fpu_free_at in
          if f > avail then f else avail
        in
        t.M.fpu_free_at <- start + 1;
        if not std then fp_ready.(fd) <- start + M.fp_load_latency;
        if start + M.fp_load_latency > t.M.fpu_last_done then
          t.M.fpu_last_done <- start + M.fp_load_latency;
        next ()
    | Insn.Fstore (width, fs, off, base) ->
      let sts = stream fs in
      fun () ->
        t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let m = if int_ready.(base) > m then int_ready.(base) else m in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        let addr = Int64.to_int (rd_i base) + off in
        let v = if sts then M.pop_stream t fs else fregs.(fs) in
        (if width = 8 then M.mem_set64 t.M.mem addr v
         else Mem.store32 t.M.mem addr (Int64.to_int32 v));
        let avail = issue + 1 in
        let start =
          let f = t.M.fpu_free_at in
          if f > avail then f else avail
        in
        let start =
          if sts then start
          else if fp_ready.(fs) > start then fp_ready.(fs)
          else start
        in
        t.M.fpu_free_at <- start + 1;
        if start + 1 > t.M.fpu_last_done then t.M.fpu_last_done <- start + 1;
        next ()
    | Insn.Fop (_, Insn.S, _, _, _)
    | Insn.Fmadd (Insn.S, _, _, _, _)
    | Insn.Fcvt_from_int _ | Insn.Fmv_from_bits _ | Insn.Vf _ | Insn.Vfmac _
    | Insn.Vfsum _ | Insn.Vfcpka _ ->
      (* Rare shapes: generic functional executor + no-count timing.
         Their functional paths never touch loads/stores, so the
         batched counters stay exact; stream pops/pushes inside
         [fpu_execute_functional] still tick incrementally. *)
      let s1 = p.Program.int_src1.(pc) in
      fun () ->
        t.M.blk_pc <- pc;
        let m = t.M.core_time in
        let m = if s1 >= 0 && int_ready.(s1) > m then int_ready.(s1) else m in
        let f = t.M.fpu_free_at - M.fpu_fifo_depth in
        let issue = if f > m then f else m in
        t.M.core_time <- issue + 1;
        M.fpu_execute_functional t insn;
        fpu_timing_nocount t p pc ~avail:(issue + 1);
        next ()
    | Insn.Scfgwi _ | Insn.Csrsi _ | Insn.Csrci _ | Insn.Frep_o _
    | Insn.Barrier | Insn.Dm_src _ | Insn.Dm_dst _ | Insn.Dm_str _
    | Insn.Dm_rep _ | Insn.Dm_cpy _ | Insn.Dm_wait
    | Insn.Vsetvli _ | Insn.Vle _ | Insn.Vse _ | Insn.Vfmv_vf _
    | Insn.Vmv_vv _ | Insn.Vfvv _ | Insn.Vfvf _ | Insn.Vfmacc_vf _
    | Insn.Vfmacc_vv _ ->
      (* [partition] never fuses these (all Ctl_barrier-class). *)
      assert false
  in
  mk 0

(* Batched counter commit for one execution of [b]; the matching
   rollback is [reconcile]. Fuel is pre-checked by the caller
   ([fuel > b_len]), so the subtraction cannot exhaust it. *)
let[@inline] commit (t : M.t) (b : Program.block) =
  t.M.fuel <- t.M.fuel - b.Program.b_len;
  let perf = t.M.perf in
  perf.M.retired <- perf.M.retired + b.Program.b_len;
  perf.M.flops <- perf.M.flops + b.Program.b_flops;
  perf.M.fpu_busy <- perf.M.fpu_busy + b.Program.b_fpu;
  perf.M.loads <- perf.M.loads + b.Program.b_loads;
  perf.M.stores <- perf.M.stores + b.Program.b_stores

(* Roll the batched commit back to the exact per-instruction prefix for
   a fault at [t.blk_pc]: the per-instruction engine would have burned
   fuel and retired through the faulting instruction inclusive, and
   accumulated the [b_adj_*] counts (see [Program.block]). *)
let reconcile (t : M.t) (b : Program.block) =
  let k = t.M.blk_pc - b.Program.b_first in
  let k = if k < 0 then 0 else if k >= b.Program.b_len then b.Program.b_len - 1 else k in
  let undone = b.Program.b_len - (k + 1) in
  t.M.fuel <- t.M.fuel + undone;
  let perf = t.M.perf in
  perf.M.retired <- perf.M.retired - undone;
  perf.M.flops <- perf.M.flops - (b.Program.b_flops - b.Program.b_adj_flops.(k));
  perf.M.fpu_busy <- perf.M.fpu_busy - (b.Program.b_fpu - b.Program.b_adj_fpu.(k));
  perf.M.loads <- perf.M.loads - (b.Program.b_loads - b.Program.b_adj_loads.(k));
  perf.M.stores <- perf.M.stores - (b.Program.b_stores - b.Program.b_adj_stores.(k))

let run ?resume (t : M.t) (p : Program.t) ~entry =
  if t.M.trace_enabled then M.run ?resume t p ~entry
  else begin
    M.prepare t p;
    let n = Array.length p.Program.insns in
    let blocks = p.Program.blocks in
    let blk_compiled = t.M.blk_compiled in
    let pc =
      ref (match resume with Some at -> at | None -> Program.entry p entry)
    in
    let running = ref true in
    (try
       while !running do
         let pc0 = !pc in
         if pc0 < 0 || pc0 >= n then
           raise (M.Exec_error (Printf.sprintf "pc %d out of program bounds" pc0));
         match blocks.(pc0) with
         | Some b when t.M.fuel > b.Program.b_len ->
           let exec =
             match blk_compiled.(pc0) with
             | Some c when c.M.bc_streaming = t.M.ssr_enabled -> c.M.bc_exec
             | _ ->
               let exec = compile_block t p b in
               blk_compiled.(pc0) <-
                 Some { M.bc_streaming = t.M.ssr_enabled; bc_exec = exec };
               exec
           in
           t.M.blk_pc <- pc0;
           commit t b;
           let next =
             try exec ()
             with exn ->
               reconcile t b;
               pc := t.M.blk_pc;
               raise exn
           in
           if next >= 0 then pc := next
           else begin
             (* The block ended in ret at [lnot next]: halt with the pc
                on the ret, matching the per-instruction engines. *)
             pc := lnot next;
             running := false
           end
         | _ ->
           (* Per-instruction fallback: no fused block here, or too
              little fuel to guarantee the block completes (out-of-fuel
              must trap at the exact instruction). *)
           let next = M.step_fast t p pc0 in
           if next = -1 then running := false
           else begin
             pc := next;
             (* Cluster barrier: suspend with the pc on the resume
                point, same as [Machine.run]. *)
             if t.M.barrier_hit then running := false
           end
       done
     with exn -> M.raise_as_trap t p !pc exn);
    t.M.perf.M.cycles <- max t.M.core_time t.M.fpu_last_done;
    { M.perf = t.M.perf; final_pc = !pc }
  end
