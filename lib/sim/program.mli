(** Pre-decoded programs: the load-time representation consumed by the
    simulator's fast execution engine. All per-pc scoreboard metadata
    (source/destination registers, FPU-datapath membership, FLOPs,
    latency class) is extracted into flat arrays once at load time so
    the [Machine.run] inner loop never calls [Insn.deps] or allocates.
    See DESIGN.md, "Simulator performance & timing contract". *)

(** Latency classes stored in [fp_class]. *)
val class_int : int

val class_fp_load : int
val class_fp_store : int
val class_fpu : int

(** Per-pc FREP body facts, computed (and cached in {!Machine.t} — a
    program is immutable and may be shared across concurrently running
    machines) at the first dynamic encounter, after validating the body
    is FPU-only. *)
type frep_info = {
  flops_per_iter : int;  (** total FLOPs of one body replay *)
  src_regs : int array;  (** distinct FP source registers of the body *)
  dst_regs : int array;  (** distinct FP destination registers *)
  stallfree_candidate : bool;
      (** every destination is in ft0–ft2, so the body qualifies for the
          steady-state timing fast path while all destinations stream and
          every non-streaming source is ready by the first issue slot *)
}

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  source : string array Lazy.t;  (** per-pc text, for traces and errors *)
  int_src1 : int array;  (** -1 encodes "none" in all register arrays *)
  int_src2 : int array;
  fp_src1 : int array;
  fp_src2 : int array;
  fp_src3 : int array;
  fp_dst : int array;
  is_fpu : bool array;
  flops : int array;
  fp_class : int array;
}

(** Pre-decode an instruction array. [source] defaults to lazily rendering
    each instruction with {!Asm_parse.render}. *)
val make :
  ?source:string array Lazy.t ->
  insns:Insn.t array ->
  labels:(string, int) Hashtbl.t ->
  unit ->
  t

(** Pre-decode an assembled program, keeping its original source lines. *)
val of_asm : Asm_parse.program -> t

(** The pc of a label; raises {!Asm_parse.Asm_error} when absent. *)
val entry : t -> string -> int

(** Equality of the execution-determining parts (instructions + labels);
    source text and decode caches are ignored. Used by the direct-emission
    vs print→parse equivalence tests. *)
val equal : t -> t -> bool
