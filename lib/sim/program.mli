(** Pre-decoded programs: the load-time representation consumed by the
    simulator's fast execution engine. All per-pc scoreboard metadata
    (source/destination registers, FPU-datapath membership, FLOPs,
    latency class) is extracted into flat arrays once at load time so
    the [Machine.run] inner loop never calls [Insn.deps] or allocates.
    See DESIGN.md, "Simulator performance & timing contract". *)

(** Latency classes stored in [fp_class]. *)
val class_int : int

val class_fp_load : int
val class_fp_store : int
val class_fpu : int

(** Per-pc FREP body facts, computed (and cached in {!Machine.t} — a
    program is immutable and may be shared across concurrently running
    machines) at the first dynamic encounter, after validating the body
    is FPU-only. *)
type frep_info = {
  flops_per_iter : int;  (** total FLOPs of one body replay *)
  src_regs : int array;  (** distinct FP source registers of the body *)
  dst_regs : int array;  (** distinct FP destination registers *)
  stallfree_candidate : bool;
      (** every destination is in ft0–ft2, so the body qualifies for the
          steady-state timing fast path while all destinations stream and
          every non-streaming source is ready by the first issue slot *)
}

(** Control-flow classification of one instruction, shared by the block
    partitioner below and the machine-code CFG in [Mlc_analysis.Cfg] so
    both agree on what ends a straight-line region. [Ctl_barrier] marks
    execution-mode changes (scfgwi, csrsi/csrci): not control flow for
    the CFG, but a fused-block boundary — compiled closures bake in the
    SSR stream mask. *)
type control =
  | Ctl_fall
  | Ctl_branch of int  (** conditional; carries the target pc *)
  | Ctl_jump of int
  | Ctl_ret
  | Ctl_frep of int  (** frep.o header; carries the body length *)
  | Ctl_barrier  (** scfgwi / csrsi / csrci *)

val control_of : Insn.t -> control

(** A fused basic block (see DESIGN.md, "Block-fused execution"): a
    maximal straight-line instruction run with no interior label,
    branch target, FREP slot or mode barrier. [b_flops]/[b_fpu]/
    [b_loads]/[b_stores] are the counter totals one full execution
    adds; the [b_adj_*] arrays give, per offset [k], the exact counts
    the per-instruction engine would have accumulated when the
    instruction at [k] faults (its fault-time rollback targets). *)
type block = {
  b_first : int;
  b_len : int;
  b_flops : int;
  b_fpu : int;
  b_loads : int;
  b_stores : int;
  b_adj_flops : int array;
  b_adj_fpu : int array;
  b_adj_loads : int array;
  b_adj_stores : int array;
}

type t = {
  insns : Insn.t array;
  labels : (string, int) Hashtbl.t;
  source : string array Lazy.t;  (** per-pc text, for traces and errors *)
  int_src1 : int array;  (** -1 encodes "none" in all register arrays *)
  int_src2 : int array;
  fp_src1 : int array;
  fp_src2 : int array;
  fp_src3 : int array;
  fp_dst : int array;
  is_fpu : bool array;
  flops : int array;
  fp_class : int array;
  blocks : block option array;
      (** [Some b] exactly at each fused block's first pc; computed
          eagerly at load time (programs are shared across domains) *)
}

(** Pre-decode an instruction array. [source] defaults to lazily rendering
    each instruction with {!Asm_parse.render}. *)
val make :
  ?source:string array Lazy.t ->
  insns:Insn.t array ->
  labels:(string, int) Hashtbl.t ->
  unit ->
  t

(** Pre-decode an assembled program, keeping its original source lines. *)
val of_asm : Asm_parse.program -> t

(** The pc of a label; raises {!Asm_parse.Asm_error} when absent. *)
val entry : t -> string -> int

(** Equality of the execution-determining parts (instructions + labels);
    source text and decode caches are ignored. Used by the direct-emission
    vs print→parse equivalence tests. *)
val equal : t -> t -> bool
