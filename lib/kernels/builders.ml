(* The DNN micro-kernels of the evaluation (paper Table 1), expressed at
   the linalg level exactly as a DSL frontend would produce them:
   reduction kernels are a linalg.fill (output initialisation) followed
   by a linalg.generic (the computation), as noted in §4.1. *)

open Mlc_ir
open Mlc_dialects

(* How the run harness supplies each function argument. *)
type arg_spec =
  | Buf_in of int list (* randomly initialised input buffer *)
  | Buf_out of int list (* zero-initialised output buffer *)
  | Scalar_float of float (* scalar float argument *)

type spec = {
  kernel_name : string; (* "matmul" *)
  fn_name : string; (* symbol of the generated function *)
  elem : Ty.t;
  args : arg_spec list;
  flops : int; (* total floating-point operations *)
  min_cycles : int; (* FLOPs-derived lower bound on cycles (§4.1) *)
  build : unit -> Ir.op; (* fresh linalg-level module *)
}

let memref_arg shape elem = Ty.memref shape elem

(* Build a module with a single function. [f] receives a builder in the
   entry block and the argument values. *)
let module_with_fn ~name ~args ~elem f =
  let m = Builtin.create_module () in
  let b = Builder.at_end (Builtin.module_body m) in
  let arg_tys =
    List.map
      (function
        | Buf_in shape | Buf_out shape -> memref_arg shape elem
        | Scalar_float _ -> elem)
      args
  in
  let _fn, entry = Func.func b ~name ~args:arg_tys ~results:[] in
  let bb = Builder.at_end entry in
  f bb (Ir.Block.args entry);
  Func.return_ bb [];
  m

(* --- element-wise kernels --- *)

(* Fill: out[i,j] = v. Memory-bound, linear access (Table 1). *)
let fill ?(elem = Ty.F64) ~n ~m () =
  let args = [ Scalar_float 3.25; Buf_out [ n; m ] ] in
  {
    kernel_name = "fill";
    fn_name = "fill";
    elem;
    args;
    flops = n * m;
    min_cycles = n * m;
    build =
      (fun () ->
        module_with_fn ~name:"fill" ~args ~elem (fun bb values ->
            match values with
            | [ v; out ] -> Linalg.fill bb v out
            | _ -> assert false));
  }

(* Sum: z = x + y element-wise. *)
let sum ?(elem = Ty.F64) ~n ~m () =
  let args = [ Buf_in [ n; m ]; Buf_in [ n; m ]; Buf_out [ n; m ] ] in
  {
    kernel_name = "sum";
    fn_name = "sum";
    elem;
    args;
    flops = n * m;
    min_cycles = n * m;
    build =
      (fun () ->
        module_with_fn ~name:"sum" ~args ~elem (fun bb values ->
            match values with
            | [ x; y; z ] ->
              let id = Affine.identity 2 in
              ignore
                (Linalg.generic bb ~ins:[ x; y ] ~outs:[ z ]
                   ~maps:[ id; id; id ]
                   ~iterators:[ Attr.Parallel; Attr.Parallel ]
                   (fun bb in_args _ ->
                     match in_args with
                     | [ a; b ] -> [ Arith.addf bb a b ]
                     | _ -> assert false))
            | _ -> assert false));
  }

(* ReLU: y = max(x, 0). The zero is a scalar input of the generic so the
   lowering keeps it loop-invariant. *)
let relu ?(elem = Ty.F64) ~n ~m () =
  let args = [ Buf_in [ n; m ]; Buf_out [ n; m ] ] in
  {
    kernel_name = "relu";
    fn_name = "relu";
    elem;
    args;
    flops = n * m;
    min_cycles = n * m;
    build =
      (fun () ->
        module_with_fn ~name:"relu" ~args ~elem (fun bb values ->
            match values with
            | [ x; y ] ->
              let zero = Arith.const_float bb ~ty:elem 0.0 in
              let id = Affine.identity 2 in
              ignore
                (Linalg.generic bb ~ins:[ x; zero ] ~outs:[ y ]
                   ~maps:[ id; Affine.empty 2; id ]
                   ~iterators:[ Attr.Parallel; Attr.Parallel ]
                   (fun bb in_args _ ->
                     match in_args with
                     | [ a; z ] -> [ Arith.maxf bb a z ]
                     | _ -> assert false))
            | _ -> assert false));
  }

(* 3x3 window kernels over an (n+2)x(m+2) input producing n x m output
   (stride 1, valid padding): dims (rows, cols, window row, window col),
   maps in -> (d0+d2, d1+d3), out -> (d0, d1). *)
let window_maps () =
  let open Affine in
  let in_map =
    make ~num_dims:4 ~num_syms:0 [ add (dim 0) (dim 2); add (dim 1) (dim 3) ]
  in
  let out_map = make ~num_dims:4 ~num_syms:0 [ dim 0; dim 1 ] in
  (in_map, out_map)

let pool_kernel ~variant ?(elem = Ty.F64) ~n ~m () =
  let kernel_name, init, combine, kflops =
    match variant with
    | `Max ->
      ( "max_pool",
        Float.neg_infinity,
        (fun bb acc x -> Arith.maxf bb acc x),
        9 * n * m )
    | `Sum -> ("sum_pool", 0.0, (fun bb acc x -> Arith.addf bb acc x), 9 * n * m)
  in
  (* The 3x3 window operand is shape-only (its values are never read), a
     standard linalg idiom for pooling: it defines the bounds of the two
     reduction dimensions. *)
  let args = [ Buf_in [ n + 2; m + 2 ]; Buf_in [ 3; 3 ]; Buf_out [ n; m ] ] in
  {
    kernel_name;
    fn_name = kernel_name;
    elem;
    args;
    flops = kflops;
    min_cycles = kflops;
    build =
      (fun () ->
        module_with_fn ~name:kernel_name ~args ~elem (fun bb values ->
            match values with
            | [ x; w; y ] ->
              let c = Arith.const_float bb ~ty:elem init in
              Linalg.fill bb c y;
              let in_map, out_map = window_maps () in
              let w_map =
                Affine.make ~num_dims:4 ~num_syms:0 [ Affine.dim 2; Affine.dim 3 ]
              in
              ignore
                (Linalg.generic bb ~ins:[ x; w ] ~outs:[ y ]
                   ~maps:[ in_map; w_map; out_map ]
                   ~iterators:
                     [ Attr.Parallel; Attr.Parallel; Attr.Reduction; Attr.Reduction ]
                   (fun bb in_args out_args ->
                     match (in_args, out_args) with
                     | [ a; _w ], [ acc ] -> [ combine bb acc a ]
                     | _ -> assert false))
            | _ -> assert false));
  }

let max_pool = pool_kernel ~variant:`Max
let sum_pool = pool_kernel ~variant:`Sum

(* Conv 3x3: out[i,j] = sum_{r,c} in[i+r, j+c] * w[r,c]. *)
let conv3x3 ?(elem = Ty.F64) ~n ~m () =
  let args = [ Buf_in [ n + 2; m + 2 ]; Buf_in [ 3; 3 ]; Buf_out [ n; m ] ] in
  {
    kernel_name = "conv3x3";
    fn_name = "conv3x3";
    elem;
    args;
    flops = 18 * n * m;
    min_cycles = 9 * n * m (* fmadd: 2 FLOPs/cycle *);
    build =
      (fun () ->
        module_with_fn ~name:"conv3x3" ~args ~elem (fun bb values ->
            match values with
            | [ x; w; y ] ->
              let zero = Arith.const_float bb ~ty:elem 0.0 in
              Linalg.fill bb zero y;
              let in_map, out_map = window_maps () in
              let w_map =
                Affine.make ~num_dims:4 ~num_syms:0 [ Affine.dim 2; Affine.dim 3 ]
              in
              ignore
                (Linalg.generic bb ~ins:[ x; w ] ~outs:[ y ]
                   ~maps:[ in_map; w_map; out_map ]
                   ~iterators:
                     [ Attr.Parallel; Attr.Parallel; Attr.Reduction; Attr.Reduction ]
                   (fun bb in_args out_args ->
                     match (in_args, out_args) with
                     | [ a; wv ], [ acc ] ->
                       [ Arith.addf bb acc (Arith.mulf bb a wv) ]
                     | _ -> assert false))
            | _ -> assert false));
  }

(* MatMul: C[n x m] = A[n x k] * B[k x m], with the zeroing fill. *)
let matmul ?(elem = Ty.F64) ~n ~m ~k () =
  let args = [ Buf_in [ n; k ]; Buf_in [ k; m ]; Buf_out [ n; m ] ] in
  {
    kernel_name = "matmul";
    fn_name = "matmul";
    elem;
    args;
    flops = 2 * n * m * k;
    min_cycles = n * m * k;
    build =
      (fun () ->
        module_with_fn ~name:"matmul" ~args ~elem (fun bb values ->
            match values with
            | [ a; b_mat; c ] ->
              let zero = Arith.const_float bb ~ty:elem 0.0 in
              Linalg.fill bb zero c;
              let open Affine in
              let a_map = make ~num_dims:3 ~num_syms:0 [ dim 0; dim 2 ] in
              let b_map = make ~num_dims:3 ~num_syms:0 [ dim 2; dim 1 ] in
              let c_map = make ~num_dims:3 ~num_syms:0 [ dim 0; dim 1 ] in
              ignore
                (Linalg.generic bb ~ins:[ a; b_mat ] ~outs:[ c ]
                   ~maps:[ a_map; b_map; c_map ]
                   ~iterators:[ Attr.Parallel; Attr.Parallel; Attr.Reduction ]
                   (fun bb in_args out_args ->
                     match (in_args, out_args) with
                     | [ av; bv ], [ acc ] ->
                       [ Arith.addf bb acc (Arith.mulf bb av bv) ]
                     | _ -> assert false))
            | _ -> assert false));
  }

(* MatMulT: C[n x m] = A[n x k] * B[m x k]^T (both operands row-major,
   reduction along contiguous rows). *)
let matmul_t ?(elem = Ty.F64) ~n ~m ~k () =
  let args = [ Buf_in [ n; k ]; Buf_in [ m; k ]; Buf_out [ n; m ] ] in
  {
    kernel_name = "matmul_t";
    fn_name = "matmul_t";
    elem;
    args;
    flops = 2 * n * m * k;
    min_cycles = n * m * k;
    build =
      (fun () ->
        module_with_fn ~name:"matmul_t" ~args ~elem (fun bb values ->
            match values with
            | [ a; b_mat; c ] ->
              let zero = Arith.const_float bb ~ty:elem 0.0 in
              Linalg.fill bb zero c;
              let open Affine in
              let a_map = make ~num_dims:3 ~num_syms:0 [ dim 0; dim 2 ] in
              let b_map = make ~num_dims:3 ~num_syms:0 [ dim 1; dim 2 ] in
              let c_map = make ~num_dims:3 ~num_syms:0 [ dim 0; dim 1 ] in
              ignore
                (Linalg.generic bb ~ins:[ a; b_mat ] ~outs:[ c ]
                   ~maps:[ a_map; b_map; c_map ]
                   ~iterators:[ Attr.Parallel; Attr.Parallel; Attr.Reduction ]
                   (fun bb in_args out_args ->
                     match (in_args, out_args) with
                     | [ av; bv ], [ acc ] ->
                       [ Arith.addf bb acc (Arith.mulf bb av bv) ]
                     | _ -> assert false))
            | _ -> assert false));
  }
