(* Handwritten micro-kernels in the assembly-level dialects (paper §4.2,
   Figure 9): partially register-allocated IR (the ABI argument registers
   are fixed, everything else is left to the allocator), written directly
   against snitch_stream / rv_snitch / rv. These exercise RQ1 (dialect
   expressiveness) and, at 32 bits, the packed-SIMD instructions.

   Each spec carries an OCaml reference implementation that mirrors the
   kernel's exact FP evaluation order (lane-split accumulation for the
   SIMD kernels), so outputs compare exactly. *)

open Mlc_ir
open Mlc_riscv

type spec = {
  name : string;
  fn_name : string;
  elem : Ty.t;
  args : Builders.arg_spec list;
  flops : int;
  min_cycles : int;
  (* peak FLOPs/cycle for this kernel's instruction mix *)
  peak_throughput : float;
  build : unit -> Ir.op;
  (* reference: input arrays (in arg order) -> output arrays (in arg
     order), mutated in place *)
  reference : float array list -> unit;
}

let r32 v = Int32.float_of_bits (Int32.bits_of_float v)

let module_with_rv_fn ~name ~n_ptr_args f =
  let m = Mlc_dialects.Builtin.create_module () in
  let b = Builder.at_end (Mlc_dialects.Builtin.module_body m) in
  let _fn, entry =
    Rv_func.func b ~name ~args:(List.init n_ptr_args (fun _ -> Reg.Int_kind))
  in
  let bb = Builder.at_end entry in
  f bb (Ir.Block.args entry);
  Rv_func.return_ bb [];
  m

(* Contiguous packed stream over [pairs] 64-bit elements. *)
let flat_pattern pairs = { Attr.ub = [ pairs ]; strides = [ 8 ] }

(* --- Sum (f32, packed): z = x + y --- *)

let sum32 ~n ~m () =
  let total = n * m in
  assert (total mod 2 = 0);
  let pairs = total / 2 in
  {
    name = "sum";
    fn_name = "sum32_ll";
    elem = Ty.F32;
    args =
      [ Builders.Buf_in [ n; m ]; Builders.Buf_in [ n; m ]; Builders.Buf_out [ n; m ] ];
    flops = total;
    min_cycles = pairs;
    peak_throughput = 2.0;
    build =
      (fun () ->
        module_with_rv_fn ~name:"sum32_ll" ~n_ptr_args:3 (fun bb args ->
            match args with
            | [ x; y; z ] ->
              ignore
                (Snitch_stream.streaming_region bb
                   ~patterns:[ flat_pattern pairs; flat_pattern pairs; flat_pattern pairs ]
                   ~ins:[ x; y ] ~outs:[ z ]
                   (fun bb streams ->
                     match streams with
                     | [ s0; s1; s2 ] ->
                       let rpt = Rv.li bb (pairs - 1) in
                       ignore
                         (Rv_snitch.frep_outer bb ~rpt (fun fb _ ->
                              let a = Rv_snitch.read fb s0 in
                              let b = Rv_snitch.read fb s1 in
                              let s =
                                Rv_snitch.vf_binary fb Rv_snitch.vfadd_s_op a b
                              in
                              Rv_snitch.write fb s s2;
                              []))
                     | _ -> assert false))
            | _ -> assert false));
    reference =
      (fun bufs ->
        match bufs with
        | [ x; y; z ] ->
          Array.iteri (fun i xi -> z.(i) <- r32 (xi +. y.(i))) x
        | _ -> assert false);
  }

(* --- ReLU (f32, packed): y = max(x, 0) --- *)

let relu32 ~n ~m () =
  let total = n * m in
  assert (total mod 2 = 0);
  let pairs = total / 2 in
  {
    name = "relu";
    fn_name = "relu32_ll";
    elem = Ty.F32;
    args = [ Builders.Buf_in [ n; m ]; Builders.Buf_out [ n; m ] ];
    flops = total;
    min_cycles = pairs;
    peak_throughput = 2.0;
    build =
      (fun () ->
        module_with_rv_fn ~name:"relu32_ll" ~n_ptr_args:2 (fun bb args ->
            match args with
            | [ x; y ] ->
              let zero = Rv.fcvt_d_w bb (Rv.get_register bb "zero") in
              ignore
                (Snitch_stream.streaming_region bb
                   ~patterns:[ flat_pattern pairs; flat_pattern pairs ]
                   ~ins:[ x ] ~outs:[ y ]
                   (fun bb streams ->
                     match streams with
                     | [ s0; s1 ] ->
                       let rpt = Rv.li bb (pairs - 1) in
                       ignore
                         (Rv_snitch.frep_outer bb ~rpt (fun fb _ ->
                              let a = Rv_snitch.read fb s0 in
                              let v =
                                Rv_snitch.vf_binary fb Rv_snitch.vfmax_s_op a zero
                              in
                              Rv_snitch.write fb v s1;
                              []))
                     | _ -> assert false))
            | _ -> assert false));
    reference =
      (fun bufs ->
        match bufs with
        | [ x; y ] -> Array.iteri (fun i xi -> y.(i) <- Float.max xi 0.0) x
        | _ -> assert false);
  }

(* --- MatMulT (f32, packed SIMD): C[n x m] = A[n x k] * B[m x k]^T ---

   Processes four output columns at a time (unroll 4, paper §4.3): per
   k-pair, the A element pair is served four times via the SSR repeat
   optimisation while four different B rows stream in; four packed
   accumulators collect even/odd lane partial sums; after the hardware
   loop, vfsum reduces the lanes and vfcpka packs result pairs for the
   output stream. *)

let matmul_t32 ~n ~m ~k () =
  assert (m mod 4 = 0 && k mod 2 = 0);
  let pairs = k / 2 in
  {
    name = "matmul_t";
    fn_name = "matmul_t32_ll";
    elem = Ty.F32;
    args =
      [ Builders.Buf_in [ n; k ]; Builders.Buf_in [ m; k ]; Builders.Buf_out [ n; m ] ];
    flops = 2 * n * m * k;
    min_cycles = n * m * k / 4 (* vfmac: 4 FLOPs/cycle *);
    peak_throughput = 4.0;
    build =
      (fun () ->
        module_with_rv_fn ~name:"matmul_t32_ll" ~n_ptr_args:3 (fun bb args ->
            match args with
            | [ a_ptr; b_ptr; c_ptr ] ->
              let a_pattern =
                (* A[i] pair p, repeated for the 4 interleaved columns *)
                { Attr.ub = [ n; m / 4; pairs; 4 ]; strides = [ 4 * k; 0; 8; 0 ] }
              in
              let b_pattern =
                (* B[j4*4+c] pair p: column c innermost *)
                {
                  Attr.ub = [ n; m / 4; pairs; 4 ];
                  strides = [ 0; 4 * (4 * k); 8; 4 * k ];
                }
              in
              let c_pattern =
                (* two packed pairs per (i, j4) *)
                { Attr.ub = [ n; m / 4; 2 ]; strides = [ 4 * m; 16; 8 ] }
              in
              let zero = Rv.fcvt_d_w bb (Rv.get_register bb "zero") in
              let zero_i = Rv.li bb 0 in
              let n_reg = Rv.li bb n in
              let m4_reg = Rv.li bb (m / 4) in
              ignore
                (Snitch_stream.streaming_region bb
                   ~patterns:[ a_pattern; b_pattern; c_pattern ]
                   ~ins:[ a_ptr; b_ptr ] ~outs:[ c_ptr ]
                   (fun bb streams ->
                     match streams with
                     | [ s0; s1; s2 ] ->
                       ignore
                         (Rv_scf.for_ bb ~lb:zero_i ~ub:n_reg
                            (fun bb _i _ ->
                              ignore
                                (Rv_scf.for_ bb ~lb:zero_i ~ub:m4_reg
                                   (fun bb _j4 _ ->
                                     let accs0 =
                                       List.init 4 (fun _ -> Rv.fmv_d bb zero)
                                     in
                                     let rpt = Rv.li bb (pairs - 1) in
                                     let frep =
                                       Rv_snitch.frep_outer bb ~rpt
                                         ~iter_args:accs0 (fun fb accs ->
                                           List.map
                                             (fun acc ->
                                               let a = Rv_snitch.read fb s0 in
                                               let b = Rv_snitch.read fb s1 in
                                               Rv_snitch.vfmac_s fb a b acc)
                                             accs)
                                     in
                                     let res =
                                       List.map
                                         (fun acc ->
                                           Rv_snitch.vfsum_s bb acc (Rv.fmv_d bb zero))
                                         (Ir.Op.results frep)
                                     in
                                     (match res with
                                     | [ r0; r1; r2; r3 ] ->
                                       let p01 = Rv_snitch.vfcpka_s_s bb r0 r1 in
                                       Rv_snitch.write bb p01 s2;
                                       let p23 = Rv_snitch.vfcpka_s_s bb r2 r3 in
                                       Rv_snitch.write bb p23 s2
                                     | _ -> assert false);
                                     []));
                              []))
                     | _ -> assert false))
            | _ -> assert false));
    reference =
      (fun bufs ->
        match bufs with
        | [ a; b; c ] ->
          for i = 0 to n - 1 do
            for j = 0 to m - 1 do
              (* Mirror the lane-split accumulation exactly. *)
              let lo = ref 0.0 and hi = ref 0.0 in
              for p = 0 to pairs - 1 do
                lo := r32 (Float.fma a.((i * k) + (2 * p)) b.((j * k) + (2 * p)) !lo);
                hi :=
                  r32 (Float.fma a.((i * k) + (2 * p) + 1) b.((j * k) + (2 * p) + 1) !hi)
              done;
              c.((i * m) + j) <- r32 (r32 (0.0 +. !lo) +. !hi)
            done
          done
        | _ -> assert false);
  }
