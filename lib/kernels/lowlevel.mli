(** Handwritten micro-kernels in the assembly-level dialects (paper §4.2,
    Figure 9): partially register-allocated IR written directly against
    snitch_stream / rv_snitch / rv, exercising RQ1 (dialect
    expressiveness) and the packed-SIMD instructions at 32 bits. Each
    spec carries a reference implementation mirroring the kernel's exact
    FP evaluation order, so outputs compare bit-for-bit. *)

open Mlc_ir

type spec = {
  name : string;
  fn_name : string;
  elem : Ty.t;
  args : Builders.arg_spec list;
  flops : int;
  min_cycles : int;
  peak_throughput : float;  (** FLOPs/cycle peak for this instruction mix *)
  build : unit -> Ir.op;
  reference : float array list -> unit;
      (** input arrays (arg order) -> outputs mutated in place *)
}

(** z = x + y, packed f32 pairs through three SSRs and one FREP. *)
val sum32 : n:int -> m:int -> unit -> spec

(** y = max(x, 0), packed f32. *)
val relu32 : n:int -> m:int -> unit -> spec

(** C[n x m] = A[n x k] * B[m x k]^T with vfmac/vfsum/vfcpka, four output
    columns at a time, A served through the SSR repeat optimisation
    (paper §4.3's register-pressure case study). Requires [m] divisible
    by 4 and [k] even. *)
val matmul_t32 : n:int -> m:int -> k:int -> unit -> spec
