(* The kernel registry: Table 1 of the paper — each evaluated micro-kernel
   with its computational/memory-access characteristics, input-shape
   template and FLOP count formula, plus constructors for the harnesses. *)

type entry = {
  name : string;
  characteristics : string list; (* Table 1, "Characteristics" column *)
  input_shapes : string; (* Table 1, "Input Shapes" column *)
  flops_formula : string; (* Table 1, "FLOPs" column *)
  (* Instantiate at a given shape. [k] is ignored by non-matmul kernels. *)
  instantiate : ?elem:Mlc_ir.Ty.t -> n:int -> m:int -> k:int -> unit -> Builders.spec;
}

let table1 : entry list =
  [
    {
      name = "Sum";
      characteristics = [ "element-wise"; "linear access"; "memory-bound"; "parallel" ];
      input_shapes = "NM, NM";
      flops_formula = "NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.sum ?elem ~n ~m ());
    };
    {
      name = "Fill";
      characteristics = [ "element-wise"; "linear access"; "memory-bound"; "parallel" ];
      input_shapes = "NM";
      flops_formula = "NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.fill ?elem ~n ~m ());
    };
    {
      name = "ReLU";
      characteristics = [ "element-wise"; "non-linear access"; "parallel" ];
      input_shapes = "NM";
      flops_formula = "NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.relu ?elem ~n ~m ());
    };
    {
      name = "Conv 3x3";
      characteristics = [ "non-affine access"; "fixed-size reduction" ];
      input_shapes = "(N+2)(M+2)";
      flops_formula = "18NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.conv3x3 ?elem ~n ~m ());
    };
    {
      name = "Max Pool 3x3";
      characteristics = [ "sparse access"; "fixed-size reduction" ];
      input_shapes = "(N+2)(M+2)";
      flops_formula = "9NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.max_pool ?elem ~n ~m ());
    };
    {
      name = "Sum Pool 3x3";
      characteristics = [ "sparse access"; "fixed-size reduction" ];
      input_shapes = "(N+2)(M+2)";
      flops_formula = "9NM";
      instantiate = (fun ?elem ~n ~m ~k:_ () -> Builders.sum_pool ?elem ~n ~m ());
    };
    {
      name = "MatMul";
      characteristics = [ "nested loops"; "reduction" ];
      input_shapes = "NK, KM";
      flops_formula = "2NMK";
      instantiate = (fun ?elem ~n ~m ~k () -> Builders.matmul ?elem ~n ~m ~k ());
    };
    {
      name = "MatMulT";
      characteristics = [ "nested loops"; "reduction" ];
      input_shapes = "NK, MK";
      flops_formula = "2NMK";
      instantiate = (fun ?elem ~n ~m ~k () -> Builders.matmul_t ?elem ~n ~m ~k ());
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    table1

(* Kernels by the short constructor names used on the command line. *)
let by_short_name = function
  | "sum" -> find "Sum"
  | "fill" -> find "Fill"
  | "relu" -> find "ReLU"
  | "conv3x3" | "conv" -> find "Conv 3x3"
  | "max_pool" | "maxpool" -> find "Max Pool 3x3"
  | "sum_pool" | "sumpool" -> find "Sum Pool 3x3"
  | "matmul" -> find "MatMul"
  | "matmul_t" | "matmult" -> find "MatMulT"
  | _ -> None

let short_names =
  [ "fill"; "sum"; "relu"; "max_pool"; "sum_pool"; "conv3x3"; "matmul"; "matmul_t" ]
