(** The DNN micro-kernels of the evaluation (paper Table 1), expressed at
    the linalg level exactly as a DSL frontend would produce them:
    reduction kernels are a linalg.fill (output initialisation) followed
    by a linalg.generic (the computation), as noted in §4.1. *)

open Mlc_ir

(** How the run harness supplies each function argument. *)
type arg_spec =
  | Buf_in of int list  (** randomly initialised input buffer *)
  | Buf_out of int list  (** zero-initialised output buffer *)
  | Scalar_float of float  (** scalar float argument (value given) *)

(** A runnable kernel description: metadata for the harnesses plus a
    builder producing a fresh linalg-level module. *)
type spec = {
  kernel_name : string;
  fn_name : string;
  elem : Ty.t;
  args : arg_spec list;
  flops : int;  (** total floating-point operations at this shape *)
  min_cycles : int;  (** FLOPs-derived cycle lower bound (§4.1) *)
  build : unit -> Ir.op;
}

(** Build a module with a single function; [f] receives a builder in the
    entry block and the argument values. Exposed so examples can define
    new kernels against the same harness. *)
val module_with_fn :
  name:string ->
  args:arg_spec list ->
  elem:Ty.t ->
  (Builder.t -> Ir.value list -> unit) ->
  Ir.op

val fill : ?elem:Ty.t -> n:int -> m:int -> unit -> spec
val sum : ?elem:Ty.t -> n:int -> m:int -> unit -> spec
val relu : ?elem:Ty.t -> n:int -> m:int -> unit -> spec

(** 3x3 pooling over an (n+2)x(m+2) input producing n x m output; the
    window operand is shape-only (standard linalg idiom). *)
val max_pool : ?elem:Ty.t -> n:int -> m:int -> unit -> spec

val sum_pool : ?elem:Ty.t -> n:int -> m:int -> unit -> spec
val conv3x3 : ?elem:Ty.t -> n:int -> m:int -> unit -> spec

(** C[n x m] = A[n x k] * B[k x m]. *)
val matmul : ?elem:Ty.t -> n:int -> m:int -> k:int -> unit -> spec

(** C[n x m] = A[n x k] * B[m x k]^T (contiguous reduction rows). *)
val matmul_t : ?elem:Ty.t -> n:int -> m:int -> k:int -> unit -> spec
