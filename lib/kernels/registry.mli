(** The kernel registry — paper Table 1: each evaluated micro-kernel with
    its characteristics, shape template and FLOP formula, plus
    constructors for the harnesses. *)

type entry = {
  name : string;
  characteristics : string list;
  input_shapes : string;
  flops_formula : string;
  instantiate :
    ?elem:Mlc_ir.Ty.t -> n:int -> m:int -> k:int -> unit -> Builders.spec;
}

val table1 : entry list
val find : string -> entry option

(** Lookup by the short names used on the command line. *)
val by_short_name : string -> entry option

val short_names : string list
