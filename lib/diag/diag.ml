(* Structured diagnostics: the compiler's replacement for bare
   [failwith]/string exceptions. A diagnostic carries severity, the
   subsystem that produced it, pass and op provenance (filled in as the
   error travels up the stack), a source location for textual inputs,
   free-form notes, and — when the pass manager attaches them — a
   printed IR snapshot from just before the failing pass and the
   original backtrace. Mirrors MLIR's location-carrying, recoverable
   diagnostics (Lattner et al.). *)

type severity = Error | Warning | Note

type loc = { line : int; col : int }

type t = {
  severity : severity;
  component : string; (* subsystem: "pass", "affine", "attr", "parser", ... *)
  message : string;
  pass : string option; (* provenance: the pass that was running *)
  op : string option; (* provenance: the op that produced the error *)
  loc : loc option; (* line:column for textual inputs *)
  notes : string list;
  ir_before : string option; (* IR printed before the failing pass *)
  backtrace : string option; (* original raise site, when recorded *)
}

exception Diagnostic of t

let make ?pass ?op ?loc ?(notes = []) ?ir_before ?backtrace
    ?(severity = Error) ~component message =
  { severity; component; message; pass; op; loc; notes; ir_before; backtrace }

let error ?op ?loc ~component fmt =
  Printf.ksprintf
    (fun message -> raise (Diagnostic (make ?op ?loc ~component message)))
    fmt

let add_note d note = { d with notes = d.notes @ [ note ] }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

(* One-line summary: "error[pass=x, op=y, 3:14] affine: message". *)
let summary d =
  let prov =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "pass=%s") d.pass;
        Option.map (Printf.sprintf "op=%s") d.op;
        Option.map (fun l -> Printf.sprintf "%d:%d" l.line l.col) d.loc;
      ]
  in
  let prov = if prov = [] then "" else "[" ^ String.concat ", " prov ^ "]" in
  Printf.sprintf "%s%s %s: %s" (severity_to_string d.severity) prov d.component
    d.message

(* Human-readable multi-line rendering (the snitchc CLI format). The IR
   snapshot and backtrace are deliberately omitted here — they go into
   the crash bundle, not the terminal. *)
let pp ppf d =
  Format.fprintf ppf "@[<v>%s" (summary d);
  List.iter (fun n -> Format.fprintf ppf "@,  note: %s" n) d.notes;
  Format.fprintf ppf "@]"

let to_string d = Format.asprintf "%a" pp d

(* Run [f], attaching op provenance to any diagnostic escaping it that
   does not yet carry one; the original backtrace is preserved. *)
let with_op op f =
  try f ()
  with Diagnostic d when d.op = None ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace (Diagnostic { d with op = Some op }) bt

(* Best-effort conversion of an arbitrary exception. Layers that know
   richer exception types (Pass_failed, Out_of_registers, traps) convert
   those themselves before falling back to this. *)
let of_exn ?backtrace exn =
  match exn with
  | Diagnostic d -> (
    match (d.backtrace, backtrace) with
    | None, Some _ -> { d with backtrace }
    | _ -> d)
  | Failure msg -> make ?backtrace ~component:"internal" msg
  | Invalid_argument msg -> make ?backtrace ~component:"internal" msg
  | exn -> make ?backtrace ~component:"exception" (Printexc.to_string exn)
