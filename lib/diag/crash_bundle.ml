(* Crash bundles: on a compile or verify failure, a self-contained
   markdown report is written to <dir>/<hash>.md holding the structured
   diagnostic, the IR at the failing checkpoint, the pipeline flags, a
   replay command, and the original backtrace — MLIR's "pass failure
   reproducer" idea adapted to this backend. Writing is best-effort:
   bundle IO must never turn a diagnosed failure into a new crash. *)

(* Context the failure site knows but the pass manager does not. *)
type ctx = { flags : string option; replay : string option }

let no_ctx = { flags = None; replay = None }

let enabled = Atomic.make true
let dir = Atomic.make ".mlc-crash"

(* The most recently written bundle is tracked per domain: a failure
   diagnosed on one worker domain must report its own bundle, not
   whichever bundle another domain happened to write last. *)
let last_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_enabled b = Atomic.set enabled b
let set_dir d = Atomic.set dir d
let last_bundle () = !(Domain.DLS.get last_key)

(* --- eviction ---

   Bundles are content-hashed and de-duplicated, but a daemon under a
   fuzz-scale failure flood still accumulates distinct bundles without
   bound; cap the directory by total size and age (mirroring the
   cache's stale-tmp sweep) so crash reporting can never fill the
   disk. Disabled by default outside serving: the caps are opt-in. *)
let size_cap_a = Atomic.make max_int
let age_cap_a = Atomic.make infinity
let evict_count = Atomic.make 0
let writes_since_sweep = Atomic.make 0

let set_eviction ?(max_bytes = max_int) ?(max_age_s = infinity) () =
  Atomic.set size_cap_a max_bytes;
  Atomic.set age_cap_a max_age_s

let evicted () = Atomic.get evict_count

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* One pass over <dir>/*.md: drop bundles older than the age cap, then
   drop oldest-first until the directory fits the size cap. Best-effort
   throughout — eviction IO must never turn a crash report into a
   crash. *)
let sweep () =
  let d = Atomic.get dir in
  match Sys.readdir d with
  | exception Sys_error _ -> ()
  | entries ->
    let now = Unix.gettimeofday () in
    let age_cap = Atomic.get age_cap_a and size_cap = Atomic.get size_cap_a in
    let live = ref [] in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".md" then
          let path = Filename.concat d f in
          match Unix.stat path with
          | exception Unix.Unix_error _ -> ()
          | st ->
            if now -. st.Unix.st_mtime > age_cap then begin
              remove_quiet path;
              Atomic.incr evict_count
            end
            else live := (st.Unix.st_mtime, st.Unix.st_size, path) :: !live)
      entries;
    let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 !live in
    if total > size_cap then begin
      let oldest_first =
        List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) !live
      in
      ignore
        (List.fold_left
           (fun remaining (_, sz, path) ->
             if remaining > size_cap then begin
               remove_quiet path;
               Atomic.incr evict_count;
               remaining - sz
             end
             else remaining)
           total oldest_first)
    end

let render ?(ctx = no_ctx) (d : Diag.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# mlc crash bundle\n\n";
  add "- severity: %s\n" (Diag.severity_to_string d.Diag.severity);
  add "- component: %s\n" d.Diag.component;
  (match d.Diag.pass with Some p -> add "- pass: %s\n" p | None -> ());
  (match d.Diag.op with Some o -> add "- op: %s\n" o | None -> ());
  (match d.Diag.loc with
  | Some l -> add "- location: line %d, column %d\n" l.Diag.line l.Diag.col
  | None -> ());
  add "\n## Diagnostic\n\n%s\n" (Diag.to_string d);
  (match ctx.flags with
  | Some f -> add "\n## Pipeline flags\n\n%s\n" f
  | None -> ());
  (match ctx.replay with
  | Some r -> add "\n## Replay\n\n```\n%s\n```\n" r
  | None -> ());
  (match d.Diag.ir_before with
  | Some ir -> add "\n## IR at the failing checkpoint\n\n```mlir\n%s\n```\n" ir
  | None -> ());
  (match d.Diag.backtrace with
  | Some bt when String.trim bt <> "" -> add "\n## Backtrace\n\n```\n%s\n```\n" bt
  | _ -> ());
  Buffer.contents buf

(* Write a bundle for [d]; returns the path, or None when disabled or on
   any IO failure. The file name is a content hash, so identical crashes
   de-duplicate: an existing file already holds these exact bytes and is
   left alone. New bundles are written to a temp file and atomically
   renamed into place, so concurrent writers (or a reader racing a
   writer) can never observe a partial bundle. *)
let write ?ctx (d : Diag.t) =
  if not (Atomic.get enabled) then None
  else
    try
      let content = render ?ctx d in
      let hash = String.sub (Digest.to_hex (Digest.string content)) 0 12 in
      let dir = Atomic.get dir in
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let path = Filename.concat dir (hash ^ ".md") in
      if not (Sys.file_exists path) then begin
        let tmp = Filename.temp_file ~temp_dir:dir ("." ^ hash) ".tmp" in
        try
          let oc = open_out tmp in
          output_string oc content;
          close_out oc;
          Sys.rename tmp path
        with exn ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise exn
      end;
      Domain.DLS.get last_key := Some path;
      (* Amortise the readdir: sweep every 8th write — a failure flood
         writes bundles far faster than the caps shrink, and the sweep
         itself walks the whole directory. *)
      if Atomic.fetch_and_add writes_since_sweep 1 mod 8 = 0 then sweep ();
      Some path
    with _ -> None
