(* Crash bundles: on a compile or verify failure, a self-contained
   markdown report is written to <dir>/<hash>.md holding the structured
   diagnostic, the IR at the failing checkpoint, the pipeline flags, a
   replay command, and the original backtrace — MLIR's "pass failure
   reproducer" idea adapted to this backend. Writing is best-effort:
   bundle IO must never turn a diagnosed failure into a new crash. *)

(* Context the failure site knows but the pass manager does not. *)
type ctx = { flags : string option; replay : string option }

let no_ctx = { flags = None; replay = None }

let enabled = Atomic.make true
let dir = Atomic.make ".mlc-crash"

(* The most recently written bundle is tracked per domain: a failure
   diagnosed on one worker domain must report its own bundle, not
   whichever bundle another domain happened to write last. *)
let last_key : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_enabled b = Atomic.set enabled b
let set_dir d = Atomic.set dir d
let last_bundle () = !(Domain.DLS.get last_key)

let render ?(ctx = no_ctx) (d : Diag.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# mlc crash bundle\n\n";
  add "- severity: %s\n" (Diag.severity_to_string d.Diag.severity);
  add "- component: %s\n" d.Diag.component;
  (match d.Diag.pass with Some p -> add "- pass: %s\n" p | None -> ());
  (match d.Diag.op with Some o -> add "- op: %s\n" o | None -> ());
  (match d.Diag.loc with
  | Some l -> add "- location: line %d, column %d\n" l.Diag.line l.Diag.col
  | None -> ());
  add "\n## Diagnostic\n\n%s\n" (Diag.to_string d);
  (match ctx.flags with
  | Some f -> add "\n## Pipeline flags\n\n%s\n" f
  | None -> ());
  (match ctx.replay with
  | Some r -> add "\n## Replay\n\n```\n%s\n```\n" r
  | None -> ());
  (match d.Diag.ir_before with
  | Some ir -> add "\n## IR at the failing checkpoint\n\n```mlir\n%s\n```\n" ir
  | None -> ());
  (match d.Diag.backtrace with
  | Some bt when String.trim bt <> "" -> add "\n## Backtrace\n\n```\n%s\n```\n" bt
  | _ -> ());
  Buffer.contents buf

(* Write a bundle for [d]; returns the path, or None when disabled or on
   any IO failure. The file name is a content hash, so identical crashes
   de-duplicate: an existing file already holds these exact bytes and is
   left alone. New bundles are written to a temp file and atomically
   renamed into place, so concurrent writers (or a reader racing a
   writer) can never observe a partial bundle. *)
let write ?ctx (d : Diag.t) =
  if not (Atomic.get enabled) then None
  else
    try
      let content = render ?ctx d in
      let hash = String.sub (Digest.to_hex (Digest.string content)) 0 12 in
      let dir = Atomic.get dir in
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      let path = Filename.concat dir (hash ^ ".md") in
      if not (Sys.file_exists path) then begin
        let tmp = Filename.temp_file ~temp_dir:dir ("." ^ hash) ".tmp" in
        try
          let oc = open_out tmp in
          output_string oc content;
          close_out oc;
          Sys.rename tmp path
        with exn ->
          (try Sys.remove tmp with Sys_error _ -> ());
          raise exn
      end;
      Domain.DLS.get last_key := Some path;
      Some path
    with _ -> None
