(** Structured diagnostics: severity, subsystem, pass/op provenance,
    source location, notes, and (attached by the pass manager) an
    IR-before snapshot and the original backtrace. The compiler-wide
    replacement for bare [failwith] aborts — recoverable by design, as
    in MLIR's diagnostic infrastructure. *)

type severity = Error | Warning | Note

type loc = { line : int; col : int }

type t = {
  severity : severity;
  component : string;  (** subsystem: "pass", "affine", "attr", "parser" … *)
  message : string;
  pass : string option;  (** provenance: the pass that was running *)
  op : string option;  (** provenance: the op that produced the error *)
  loc : loc option;  (** line:column for textual inputs *)
  notes : string list;
  ir_before : string option;  (** IR printed before the failing pass *)
  backtrace : string option;  (** original raise site, when recorded *)
}

(** The structured raise path; caught by the pass manager, the runner's
    fallback lattice, and the CLI's top-level renderer. *)
exception Diagnostic of t

val make :
  ?pass:string ->
  ?op:string ->
  ?loc:loc ->
  ?notes:string list ->
  ?ir_before:string ->
  ?backtrace:string ->
  ?severity:severity ->
  component:string ->
  string ->
  t

(** [error ~component fmt …] raises {!Diagnostic} with an [Error]
    severity. *)
val error :
  ?op:string ->
  ?loc:loc ->
  component:string ->
  ('a, unit, string, 'b) format4 ->
  'a

val add_note : t -> string -> t
val severity_to_string : severity -> string

(** One-line summary: ["error[pass=x, op=y] affine: message"]. *)
val summary : t -> string

(** Multi-line human-readable rendering (message + notes; the IR
    snapshot and backtrace are bundle-only). *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Run the thunk, attaching op provenance to any escaping {!Diagnostic}
    that does not yet carry one (backtrace preserved). *)
val with_op : string -> (unit -> 'a) -> 'a

(** Best-effort conversion of an arbitrary exception into a diagnostic;
    {!Diagnostic} payloads pass through unchanged. *)
val of_exn : ?backtrace:string -> exn -> t
