(** Crash bundles: self-contained markdown failure reports
    ([<dir>/<hash>.md]) holding the structured diagnostic, the IR at the
    failing checkpoint, the pipeline flags, a replay command and the
    original backtrace. Writing is best-effort and never raises. *)

(** Context the failure site knows but the pass manager does not:
    a rendering of the pipeline flags and a shell replay command. *)
type ctx = { flags : string option; replay : string option }

val no_ctx : ctx

(** Globally enable/disable bundle writing (default: enabled). *)
val set_enabled : bool -> unit

(** Set the bundle directory (default [".mlc-crash"], created lazily). *)
val set_dir : string -> unit

(** Cap the bundle directory: [max_bytes] bounds the total size of
    [*.md] bundles (oldest evicted first), [max_age_s] drops bundles
    older than that many seconds. Both default to unbounded — serving
    daemons opt in so a fuzz-scale failure flood cannot fill the disk.
    Enforced by {!sweep}, which {!write} runs every few bundles. *)
val set_eviction : ?max_bytes:int -> ?max_age_s:float -> unit -> unit

(** Run one eviction pass over the bundle directory now (best-effort,
    never raises). *)
val sweep : unit -> unit

(** Bundles deleted by eviction sweeps since process start. *)
val evicted : unit -> int

(** Path of the most recently written bundle on the {e calling domain},
    if any — tracked per domain so parallel workers report their own
    bundles. *)
val last_bundle : unit -> string option

(** The bundle markdown, without writing it. *)
val render : ?ctx:ctx -> Diag.t -> string

(** Write a bundle; returns its path, or [None] when disabled or on any
    IO error (bundle IO must never turn a failure into a crash). The
    file name is a content hash: an existing bundle is de-duplicated
    rather than rewritten, and new bundles land via temp file + atomic
    rename so concurrent writers never expose a partial file. *)
val write : ?ctx:ctx -> Diag.t -> string option
