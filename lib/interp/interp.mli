(** A reference interpreter for the high-level dialects (func, scf,
    arith, memref, linalg, memref_stream): the executable semantics the
    compiled kernels are differentially tested against (the paper
    validates against precomputed outputs the same way, §A.2).

    Buffers hold f64 values regardless of element type; stores to f32
    buffers round through single precision. *)

open Mlc_ir

exception Interp_error of string

type buffer = {
  shape : int list;
  strides : int list; (* row-major, in elements *)
  data : float array;
  elem : Ty.t;
}

val buffer_create : int list -> Ty.t -> buffer
val buffer_get : buffer -> int list -> float

(** Bounds-checked; rounds through the element precision. *)
val buffer_set : buffer -> int list -> float -> unit

type stream =
  | Readable of { mutable queue : float list }
  | Writable of { buf : buffer; order : int array; mutable pos : int }

(** Runtime values. *)
type rtval = F of float | I of int | Buf of buffer | Stream of stream

(** Run function [fname] of module [m] with the given arguments; buffers
    are mutated in place. Raises {!Interp_error} on semantic faults
    (out-of-bounds access, stream overrun, unbound values). *)
val run_func : Ir.op -> string -> rtval list -> unit
