(* A reference interpreter for the high-level dialects (func, scf, arith,
   memref, linalg, memref_stream). It defines the executable semantics
   that the compiled kernels are differentially tested against: for every
   kernel, pipeline configuration and input, the simulator output of the
   compiled code must equal the interpreter output (the paper validates
   against precomputed outputs the same way, §A.2).

   Buffers hold f64 values regardless of element type; stores to f32
   buffers round through single precision so packed-SIMD kernels compare
   exactly. *)

open Mlc_ir
open Mlc_dialects

exception Interp_error of string

let err fmt = Format.kasprintf (fun m -> raise (Interp_error m)) fmt

type buffer = {
  shape : int list;
  strides : int list; (* row-major, in elements *)
  data : float array;
  elem : Ty.t;
}

let buffer_create shape elem =
  {
    shape;
    strides = Ty.row_major_strides shape;
    data = Array.make (max 1 (Ty.num_elements shape)) 0.0;
    elem;
  }

let round_to_elem elem v =
  match elem with
  | Ty.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
  | _ -> v

let buffer_flat_index buf indices =
  if List.length indices <> List.length buf.shape then
    err "buffer access with %d indices, rank is %d" (List.length indices)
      (List.length buf.shape);
  List.iter2
    (fun i d -> if i < 0 || i >= d then err "index %d out of bound %d" i d)
    indices buf.shape;
  List.fold_left2 (fun acc i s -> acc + (i * s)) 0 indices buf.strides

let buffer_get buf indices = buf.data.(buffer_flat_index buf indices)

let buffer_set buf indices v =
  buf.data.(buffer_flat_index buf indices) <- round_to_elem buf.elem v

type stream =
  | Readable of { mutable queue : float list }
  | Writable of { buf : buffer; order : int array; mutable pos : int }
      (* order: flat element index per write, fixed by the stride pattern *)

type rtval = F of float | I of int | Buf of buffer | Stream of stream

let as_f = function F f -> f | _ -> err "expected a float value"
let as_i = function I i -> i | _ -> err "expected an integer value"
let as_buf = function Buf b -> b | _ -> err "expected a memref value"
let as_stream = function Stream s -> s | _ -> err "expected a stream value"

type env = (int, rtval) Hashtbl.t

let lookup env v =
  match Hashtbl.find_opt env (Ir.Value.id v) with
  | Some r -> r
  | None -> err "use of unbound value %%%d" (Ir.Value.id v)

let bind env v r = Hashtbl.replace env (Ir.Value.id v) r

(* Iterate [f] over the lexicographic product of [bounds]. *)
let iter_space bounds f =
  let n = List.length bounds in
  let bounds = Array.of_list bounds in
  let idx = Array.make n 0 in
  let rec go d = if d = n then f (Array.copy idx)
    else
      for i = 0 to bounds.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if n = 0 then f [||] else go 0

(* Enumerate the element access order induced by an index pattern over a
   buffer: the iteration space of [ip_ub] traversed lexicographically,
   mapped through [ip_map]. *)
let pattern_order (p : Attr.index_pattern) (buf : buffer) =
  let acc = ref [] in
  iter_space p.ip_ub (fun idx ->
      let coords = Affine.eval p.ip_map ~dims:idx () in
      acc := buffer_flat_index buf coords :: !acc);
  Array.of_list (List.rev !acc)

let value_of_float ty f = F (round_to_elem ty f)

(* --- arithmetic --- *)

let eval_arith env op =
  let name = Ir.Op.name op in
  let x i = lookup env (Ir.Op.operand op i) in
  let res = Ir.Op.result op 0 in
  let rty = Ir.Value.ty res in
  let fbin f = bind env res (value_of_float rty (f (as_f (x 0)) (as_f (x 1)))) in
  let ibin f = bind env res (I (f (as_i (x 0)) (as_i (x 1)))) in
  match name with
  | "arith.constant" -> (
    match Ir.Op.attr_exn op "value" with
    | Attr.Float f -> bind env res (value_of_float rty f)
    | Attr.Int i -> bind env res (I i)
    | a -> err "bad constant %s" (Attr.to_string a))
  | "arith.addf" -> fbin ( +. )
  | "arith.subf" -> fbin ( -. )
  | "arith.mulf" -> fbin ( *. )
  | "arith.divf" -> fbin ( /. )
  | "arith.maximumf" -> fbin Float.max
  | "arith.minimumf" -> fbin Float.min
  | "arith.fmaf" ->
    bind env res
      (value_of_float rty (Float.fma (as_f (x 0)) (as_f (x 1)) (as_f (x 2))))
  | "arith.addi" -> ibin ( + )
  | "arith.subi" -> ibin ( - )
  | "arith.muli" -> ibin ( * )
  | other -> err "unhandled arith op %s" other

(* --- structured ops --- *)

let rec exec_op env op =
  let name = Ir.Op.name op in
  match name with
  | _ when String.length name > 6 && String.sub name 0 6 = "arith." ->
    eval_arith env op
  | "memref.load" ->
    let buf = as_buf (lookup env (Ir.Op.operand op 0)) in
    let indices =
      List.map (fun v -> as_i (lookup env v))
        (List.tl (Ir.Op.operands op))
    in
    bind env (Ir.Op.result op 0) (F (buffer_get buf indices))
  | "memref.store" ->
    let v = as_f (lookup env (Ir.Op.operand op 0)) in
    let buf = as_buf (lookup env (Ir.Op.operand op 1)) in
    let indices =
      List.map (fun v -> as_i (lookup env v))
        (List.filteri (fun i _ -> i >= 2) (Ir.Op.operands op))
    in
    buffer_set buf indices v
  | "memref.alloc" ->
    let ty = Ir.Value.ty (Ir.Op.result op 0) in
    bind env (Ir.Op.result op 0)
      (Buf (buffer_create (Ty.memref_shape ty) (Ty.memref_elem ty)))
  | "scf.for" -> exec_scf_for env op
  | "linalg.fill" ->
    let v = as_f (lookup env (Ir.Op.operand op 0)) in
    let buf = as_buf (lookup env (Ir.Op.operand op 1)) in
    Array.fill buf.data 0 (Array.length buf.data) (round_to_elem buf.elem v)
  | "linalg.generic" -> exec_linalg_generic env op
  | "memref_stream.generic" -> exec_stream_generic env op
  | "memref_stream.streaming_region" -> exec_streaming_region env op
  | "memref_stream.read" ->
    let s = as_stream (lookup env (Ir.Op.operand op 0)) in
    (match s with
    | Readable r -> (
      match r.queue with
      | [] -> err "read past end of stream"
      | v :: rest ->
        r.queue <- rest;
        bind env (Ir.Op.result op 0) (F v))
    | Writable _ -> err "reading from a writable stream")
  | "memref_stream.write" ->
    let v = as_f (lookup env (Ir.Op.operand op 0)) in
    let s = as_stream (lookup env (Ir.Op.operand op 1)) in
    (match s with
    | Writable w ->
      if w.pos >= Array.length w.order then err "write past end of stream";
      w.buf.data.(w.order.(w.pos)) <- round_to_elem w.buf.elem v;
      w.pos <- w.pos + 1
    | Readable _ -> err "writing to a readable stream")
  | "func.return" | "scf.yield" | "linalg.yield" | "memref_stream.yield" ->
    () (* handled by enclosing op *)
  | other -> err "unhandled op %s" other

and exec_block_ops env block =
  Ir.Block.iter_ops block (fun op -> exec_op env op)

and exec_scf_for env op =
  let lb = as_i (lookup env (Scf.lb op)) in
  let ub = as_i (lookup env (Scf.ub op)) in
  let step = as_i (lookup env (Scf.step op)) in
  if step <= 0 then err "scf.for with non-positive step";
  let body = Scf.body op in
  let iters = ref (List.map (lookup env) (Scf.iter_operands op)) in
  let i = ref lb in
  while !i < ub do
    bind env (Scf.induction_var op) (I !i);
    List.iter2 (fun arg v -> bind env arg v) (Scf.iter_args op) !iters;
    exec_block_ops env body;
    let yield = Scf.yield_of op in
    iters := List.map (lookup env) (Ir.Op.operands yield);
    i := !i + step
  done;
  List.iteri (fun k res -> bind env res (List.nth !iters k)) (Ir.Op.results op)

and exec_linalg_generic env op =
  let maps = Linalg.indexing_maps op in
  let bounds = Linalg.infer_bounds op in
  let n_in = Linalg.num_ins op in
  let operands = Ir.Op.operands op in
  let body = Linalg.body op in
  let yield =
    match Ir.Block.terminator body with
    | Some t -> t
    | None -> err "linalg.generic without terminator"
  in
  iter_space bounds (fun idx ->
      (* Bind body args: element for memrefs, the value itself for
         scalars. *)
      List.iteri
        (fun k v ->
          let arg = Ir.Block.arg body k in
          match lookup env v with
          | Buf buf ->
            let coords = Affine.eval (List.nth maps k) ~dims:idx () in
            bind env arg (F (buffer_get buf coords))
          | other -> bind env arg other)
        operands;
      exec_block_ops env body;
      (* Write back yields to outputs. *)
      List.iteri
        (fun k y ->
          let out = List.nth operands (n_in + k) in
          let buf = as_buf (lookup env out) in
          let coords = Affine.eval (List.nth maps (n_in + k)) ~dims:idx () in
          buffer_set buf coords (as_f (lookup env y)))
        (Ir.Op.operands yield))

and exec_stream_generic env op =
  let maps = Memref_stream.indexing_maps op in
  let bounds = Memref_stream.bounds op in
  let iterators = Memref_stream.iterator_types op in
  let n_in = Memref_stream.num_ins op in
  let n_out = Memref_stream.num_outs op in
  let u = Memref_stream.unroll_factor op in
  let inits = Memref_stream.inits op in
  let interleaved = u > 1 in
  let body = Memref_stream.body op in
  let yield =
    match Ir.Block.terminator body with
    | Some t -> t
    | None -> err "memref_stream.generic without terminator"
  in
  let operands = Ir.Op.operands op in
  (* Iterate the space of all non-interleaved dimensions; the interleaved
     trailing dimension is materialised as the u body-argument copies. *)
  let outer_bounds =
    if interleaved then
      List.filteri (fun i _ -> i < List.length bounds - 1) bounds
    else bounds
  in
  let reduction_dims =
    List.filteri (fun i _ -> List.nth iterators i = Attr.Reduction)
      (List.mapi (fun i _ -> i) iterators)
  in
  iter_space outer_bounds (fun outer_idx ->
      let full_idx j =
        if interleaved then Array.append outer_idx [| j |] else outer_idx
      in
      let at_reduction_start =
        List.for_all (fun d -> outer_idx.(d) = 0) reduction_dims
      in
      (* Bind input copies: args are grouped all-ins-per-copy first. *)
      for j = 0 to u - 1 do
        List.iteri
          (fun k v ->
            let arg = Ir.Block.arg body ((j * n_in) + k) in
            match lookup env v with
            | Buf buf ->
              let coords = Affine.eval (List.nth maps k) ~dims:(full_idx j) () in
              bind env arg (F (buffer_get buf coords))
            | Stream (Readable r) -> (
              match r.queue with
              | [] -> err "stream exhausted inside generic"
              | v :: rest ->
                r.queue <- rest;
                bind env arg (F v))
            | other -> bind env arg other)
          (List.filteri (fun i _ -> i < n_in) operands)
      done;
      (* Bind output accumulator copies. *)
      for j = 0 to u - 1 do
        List.iteri
          (fun k v ->
            let arg = Ir.Block.arg body ((u * n_in) + (j * n_out) + k) in
            let init_value =
              if at_reduction_start && List.length inits > k then
                Some (as_f (lookup env (List.nth inits k)))
              else None
            in
            match (lookup env v, init_value) with
            | _, Some f -> bind env arg (F f)
            | Buf buf, None ->
              let coords =
                Affine.eval (List.nth maps (n_in + k)) ~dims:(full_idx j) ()
              in
              bind env arg (F (buffer_get buf coords))
            | other, None -> bind env arg other)
          (Memref_stream.outs op)
      done;
      exec_block_ops env body;
      (* Write back yields: u values per output, copy-major. *)
      List.iteri
        (fun pos y ->
          let j = pos / n_out and k = pos mod n_out in
          let out = List.nth operands (n_in + k) in
          (match lookup env out with
          | Buf buf ->
            let coords =
              Affine.eval (List.nth maps (n_in + k)) ~dims:(full_idx j) ()
            in
            buffer_set buf coords (as_f (lookup env y))
          | Stream (Writable w) ->
            if w.pos >= Array.length w.order then err "write past end of stream";
            w.buf.data.(w.order.(w.pos)) <-
              round_to_elem w.buf.elem (as_f (lookup env y));
            w.pos <- w.pos + 1
          | _ -> err "output must be a memref or writable stream"))
        (Ir.Op.operands yield))

and exec_streaming_region env op =
  let patterns = Memref_stream.patterns op in
  let n_in = Memref_stream.num_ins op in
  let body = Memref_stream.body op in
  let offsets =
    match Memref_stream.offset_operands op with
    | [] -> List.map (fun _ -> 0) (Memref_stream.streamed_operands op)
    | offs -> List.map (fun v -> as_i (lookup env v)) offs
  in
  List.iteri
    (fun k v ->
      let buf = as_buf (lookup env v) in
      let pattern = List.nth patterns k in
      let base = List.nth offsets k in
      let order = Array.map (fun i -> i + base) (pattern_order pattern buf) in
      Array.iter
        (fun i ->
          if i < 0 || i >= Array.length buf.data then
            err "stream pattern escapes its buffer (flat index %d)" i)
        order;
      let arg = Ir.Block.arg body k in
      if k < n_in then
        bind env arg
          (Stream
             (Readable
                { queue = Array.to_list (Array.map (fun i -> buf.data.(i)) order) }))
      else bind env arg (Stream (Writable { buf; order; pos = 0 })))
    (Memref_stream.streamed_operands op);
  exec_block_ops env body

(* Run function [fname] of module [m] with the given arguments. Buffers
   are mutated in place. *)
let run_func m fname (args : rtval list) =
  match Func.lookup m fname with
  | None -> err "no function named %s" fname
  | Some fn ->
    let body = Func.body fn in
    if List.length args <> Ir.Block.num_args body then
      err "%s expects %d arguments, got %d" fname (Ir.Block.num_args body)
        (List.length args);
    let env : env = Hashtbl.create 64 in
    List.iteri (fun i v -> bind env (Ir.Block.arg body i) v) args;
    exec_block_ops env body
