(** Printing of the IR in MLIR's generic operation syntax:

    {v
    %0, %1 = "dialect.op"(%2)[^bb1]({ ... region ... }){k = attr}
             : (operand-tys) -> (result-tys)
    v}

    The generic form is lossless: {!Parser.parse_string} accepts exactly
    this syntax, and the property tests round-trip random programs
    through print → parse → print. *)

val pp : Format.formatter -> Ir.op -> unit

(** The op (and everything nested) as generic-syntax text. *)
val to_string : Ir.op -> string

(** Just the op head (name + attributes), for error messages/traces. *)
val op_head : Ir.op -> string
