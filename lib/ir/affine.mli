(** Affine expressions and affine maps, modelled after MLIR's
    [affine_map]. Used throughout the backend for [linalg] indexing maps
    and for deriving Snitch SSR stride patterns (paper §3.2, §3.4). *)

(** An affine expression over dimensions [d0, d1, ...] and symbols
    [s0, s1, ...]. Construct via the smart constructors below, which
    simplify constants and reject semi-affine (non-constant multiplier)
    forms. *)
type expr = private
  | Dim of int
  | Sym of int
  | Const of int
  | Add of expr * expr
  | Mul of expr * expr
  | Floordiv of expr * expr
  | Ceildiv of expr * expr
  | Mod of expr * expr

(** An affine map [(d0, ..., dn)[s0, ..., sm] -> (e0, ..., ek)]. *)
type map = private { num_dims : int; num_syms : int; exprs : expr list }

(** Raised when an operation would produce a non-affine expression, e.g.
    multiplying two non-constant expressions. *)
exception Not_affine of string

val dim : int -> expr
val sym : int -> expr
val const : int -> expr

val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val neg : expr -> expr

(** [mul a b] requires at least one side to be constant. *)
val mul : expr -> expr -> expr

(** Euclidean-style division/modulo with floor semantics, as in MLIR.
    The right-hand side must be a constant. *)
val floordiv : expr -> expr -> expr

val ceildiv : expr -> expr -> expr
val modulo : expr -> expr -> expr

val is_const : expr -> bool
val expr_equal : expr -> expr -> bool
val eval_expr : dims:int array -> syms:int array -> expr -> int

(** [subst_expr ~dims ~syms e] substitutes each dimension/symbol with the
    given expression, re-simplifying through the smart constructors. *)
val subst_expr : dims:expr array -> syms:expr array -> expr -> expr

(** [linear_form ~num_dims ~num_syms e] decomposes a linear expression into
    per-dimension coefficients, per-symbol coefficients and a constant.
    Raises {!Not_affine} if [e] contains division or modulo. *)
val linear_form : num_dims:int -> num_syms:int -> expr -> int array * int array * int

(** [make ~num_dims ~num_syms exprs] builds a map, checking that every
    dimension and symbol index referenced is in range. *)
val make : num_dims:int -> num_syms:int -> expr list -> map

(** [identity n] is [(d0, ..., dn-1) -> (d0, ..., dn-1)]. *)
val identity : int -> map

(** A map with no dimensions producing the given constants. *)
val constant_map : int list -> map

(** [empty n] is the map [(d0, ..., dn-1) -> ()]. *)
val empty : int -> map

val num_results : map -> int
val eval : map -> dims:int array -> ?syms:int array -> unit -> int list

(** [compose f g] is the map [x -> f (g x)]. The number of results of [g]
    must equal the number of dimensions of [f]. *)
val compose : map -> map -> map

val equal : map -> map -> bool

(** [drop_dims m dims] removes the given dimensions from the domain,
    renumbering the remaining ones. The dropped dimensions must not appear
    in any result expression. *)
val drop_dims : map -> int list -> map

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> map -> unit
val to_string : map -> string
val expr_to_string : expr -> string
