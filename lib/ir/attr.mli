(** Attributes: compile-time constant data attached to operations as a
    key-value map (paper §2.1). A handful of domain-specific attributes
    (iterator kinds, stream stride patterns) are first-class constructors
    rather than generic encodings, keeping the passes that consume them
    simple and typed. *)

(** Iterator kinds of a [linalg]/[memref_stream] generic.
    [Interleaved] marks the trailing dimension materialised by
    unroll-and-jam (paper §3.4, Figure 7). *)
type iterator = Parallel | Reduction | Interleaved

(** A resolved SSR stream pattern: per-dimension upper bounds (outermost
    first) and byte strides, as programmed into a Snitch data mover
    (paper §3.2). *)
type stride_pattern = { ub : int list; strides : int list }

(** A memref_stream-level pattern: iteration bounds plus the affine map
    from iteration space to operand element coordinates (Figure 7's
    [#memref_stream.stride_pattern]). *)
type index_pattern = { ip_ub : int list; ip_map : Affine.map }

type t =
  | Unit_attr
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ty of Ty.t
  | Arr of t list
  | Dict of (string * t) list
  | Affine_map of Affine.map
  | Iterators of iterator list
  | Stride_pattern of stride_pattern
  | Index_pattern of index_pattern

val iterator_to_string : iterator -> string

(** Raises [Invalid_argument] on unknown names. *)
val iterator_of_string : string -> iterator

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Typed accessors; each raises [Invalid_argument] on a shape mismatch
    (which indicates a compiler bug, not user error). *)

val get_int : t -> int
val get_float : t -> float
val get_str : t -> string
val get_bool : t -> bool
val get_ty : t -> Ty.t
val get_arr : t -> t list
val get_affine_map : t -> Affine.map
val get_iterators : t -> iterator list
val get_stride_pattern : t -> stride_pattern
val get_index_pattern : t -> index_pattern

(** [int_arr [1;2]] is [Arr [Int 1; Int 2]]. *)
val int_arr : int list -> t

val get_int_arr : t -> int list
