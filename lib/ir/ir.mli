(** The core SSA-with-regions IR (paper §2.1).

    The representation mirrors MLIR/xDSL: operations hold operands,
    results, attributes and regions; regions hold blocks; blocks hold a
    doubly-linked list of operations plus block arguments. Values know
    their definition and maintain an explicit use list, enabling O(1)
    replace-all-uses and in-place rewriting during progressive lowering.

    The types are exposed concretely — passes are allowed to restructure
    the IR directly (e.g. detach a region to re-attach it to a
    replacement op) — but everyday construction and traversal should go
    through the {!Op}/{!Block}/{!Region} functions and {!Builder}, which
    maintain the use-list and parent-link invariants that {!Verifier}
    checks. Identity is by the process-unique [*id] fields; equality of
    any structure is physical. *)

type value = {
  vid : int;
  mutable vty : Ty.t;
  vdef : vdef;
  mutable uses : use list;
}

and vdef = Op_result of op * int | Block_arg of block * int

and use = { user : op; index : int }

and op = {
  oid : int;
  mutable op_name : string;
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  mutable prev : op option;
  mutable next : op option;
}

and block = {
  bid : int;
  mutable args : value array;
  mutable first : op option;
  mutable last : op option;
  mutable blk_parent : region option;
}

and region = {
  rid : int;
  mutable blocks : block list;
  mutable rgn_parent : op option;
}

(** A fresh process-unique id (used internally; exposed for tools that
    need to mint identities consistent with the IR's). *)
val next_id : unit -> int

(** SSA values. *)
module Value : sig
  type t = value

  val equal : t -> t -> bool
  val id : t -> int
  val ty : t -> Ty.t

  (** Mutate the value's type in place — how the register allocator
      records assignments (an unallocated [!rv.reg] becomes
      [!rv.reg<t0>]). *)
  val set_ty : t -> Ty.t -> unit

  val def : t -> vdef

  (** The op producing this value, or [None] for block arguments. *)
  val defining_op : t -> op option

  (** The block containing the definition (the defining op's block, or
      the block whose argument this is). *)
  val owner_block : t -> block option

  val uses : t -> use list
  val has_uses : t -> bool
  val num_uses : t -> int

  (** Low-level use-list maintenance; {!Op.set_operand} and friends call
      these — passes normally never should. *)
  val add_use : t -> use -> unit

  val remove_use : t -> user:op -> index:int -> unit
  val pp : Format.formatter -> t -> unit
end

(** Operations. *)
module Op : sig
  type t = op

  val equal : t -> t -> bool
  val id : t -> int
  val name : t -> string
  val operands : t -> value list
  val operand : t -> int -> value
  val num_operands : t -> int
  val results : t -> value list
  val result : t -> int -> value
  val num_results : t -> int
  val regions : t -> region list
  val region : t -> int -> region
  val successors : t -> block list
  val parent : t -> block option
  val attrs : t -> (string * Attr.t) list
  val attr : t -> string -> Attr.t option

  (** Like {!attr} but raises [Invalid_argument] when absent. *)
  val attr_exn : t -> string -> Attr.t

  val set_attr : t -> string -> Attr.t -> unit
  val remove_attr : t -> string -> unit
  val has_attr : t -> string -> bool

  (** Create a detached op. Result values are created from the [results]
      type list; operand use-lists and region parent links are wired up.
      Insert with {!insert_before}/{!insert_after}/{!Block.append}. *)
  val create :
    ?attrs:(string * Attr.t) list ->
    ?regions:region list ->
    ?successors:block list ->
    results:Ty.t list ->
    string ->
    value list ->
    t

  (** Replace one operand, maintaining use lists. *)
  val set_operand : t -> int -> value -> unit

  (** Replace all operands, maintaining use lists. *)
  val set_operands : t -> value list -> unit

  (** Append a fresh result value of the given type (used by transforms
      that extend loop-carried state, e.g. induction-variable strength
      reduction). *)
  val add_result : t -> Ty.t -> value

  (** Apply [f] to every op nested under this one (not the op itself),
      pre-order; [f] may erase the op it receives. *)
  val iter_nested_ops : t -> (t -> unit) -> unit

  (** Remove from the containing block without touching uses. *)
  val unlink : t -> unit

  val insert_before : anchor:t -> t -> unit
  val insert_after : anchor:t -> t -> unit

  (** Erase the op and its nested ops. Raises [Invalid_argument] if any
      result still has uses. *)
  val erase : t -> unit

  (** [is_before ~anchor op] — is [op] strictly before [anchor] in their
      (shared) block? Raises if they are in different blocks. *)
  val is_before : anchor:t -> t -> bool

  val pp_name : Format.formatter -> t -> unit
end

(** Basic blocks: straight-line op sequences with arguments. *)
module Block : sig
  type t = block

  val equal : t -> t -> bool
  val id : t -> int

  (** A detached block with arguments of the given types. *)
  val create : ?args:Ty.t list -> unit -> t

  val args : t -> value list
  val arg : t -> int -> value
  val num_args : t -> int
  val parent : t -> region option

  (** The op owning the region this block belongs to. *)
  val parent_op : t -> op option

  val add_arg : t -> Ty.t -> value
  val first_op : t -> op option
  val last_op : t -> op option
  val append : t -> op -> unit
  val prepend : t -> op -> unit

  (** Iterate ops in order; the callback may erase the current op. *)
  val iter_ops : t -> (op -> unit) -> unit

  (** Iterate ops in reverse order (the register allocator's walk). *)
  val rev_iter_ops : t -> (op -> unit) -> unit

  val fold_ops : t -> init:'a -> f:('a -> op -> 'a) -> 'a
  val ops : t -> op list
  val num_ops : t -> int

  (** The last op of the block ([None] when empty). *)
  val terminator : t -> op option
end

(** Regions: block lists owned by an operation. *)
module Region : sig
  type t = region

  val create : ?blocks:block list -> unit -> t
  val blocks : t -> block list
  val parent_op : t -> op option
  val add_block : t -> block -> unit
  val first_block : t -> block option

  (** Raises [Invalid_argument] unless the region has exactly one block. *)
  val only_block : t -> block

  (** A fresh region holding one block with the given argument types. *)
  val single_block : ?args:Ty.t list -> unit -> t
end

(** Redirect every use of a value to another (O(uses)). *)
val replace_all_uses : value -> with_:value -> unit

(** Pre-order walk over all ops strictly nested under [op]. *)
val walk : op -> (op -> unit) -> unit

(** Like {!walk} but visiting [op] itself first. *)
val walk_incl : op -> (op -> unit) -> unit

(** Nested ops satisfying the predicate, in walk order. *)
val collect : op -> (op -> bool) -> op list

(** First nested op satisfying the predicate, if any. *)
val find_first : op -> (op -> bool) -> op option

(** The top-level [builtin.module] op. *)
module Module_ : sig
  val create : unit -> op

  (** The single block of the module's region. *)
  val body : op -> block
end

(** Closest enclosing ancestor op of [op] satisfying [pred]. *)
val ancestor_op : op -> (op -> bool) -> op option
