(** Insertion-point-based IR construction, mirroring MLIR's OpBuilder.
    Dialect smart constructors take a builder, append their op at the
    current insertion point and return result values. *)

type point = At_end of Ir.block | Before of Ir.op | After of Ir.op

type t = { mutable point : point }

val at_end : Ir.block -> t
val before : Ir.op -> t
val after : Ir.op -> t
val set_insertion_point_to_end : t -> Ir.block -> unit
val set_insertion_point_before : t -> Ir.op -> unit
val set_insertion_point_after : t -> Ir.op -> unit

(** The block the next insertion lands in. *)
val insertion_block : t -> Ir.block

(** Insert an already-created (detached) op at the insertion point. With
    an [After] anchor the point advances past the inserted op, so
    consecutive insertions stay in program order. Returns the op. *)
val insert : t -> Ir.op -> Ir.op

(** Create and insert; returns the op. *)
val create :
  t ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  ?successors:Ir.block list ->
  results:Ty.t list ->
  string ->
  Ir.value list ->
  Ir.op

(** Create and insert an op with exactly one result; returns the value. *)
val create1 :
  t ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  ?successors:Ir.block list ->
  result:Ty.t ->
  string ->
  Ir.value list ->
  Ir.value

(** Create and insert a zero-result op. *)
val create0 :
  t ->
  ?attrs:(string * Attr.t) list ->
  ?regions:Ir.region list ->
  ?successors:Ir.block list ->
  string ->
  Ir.value list ->
  unit

(** Run [f] with the insertion point at the end of [block], restoring the
    previous point afterwards. *)
val within : t -> Ir.block -> (unit -> 'a) -> 'a
