(** The type system shared by every abstraction level of the backend:
    builtin scalar types, memrefs, streams ([memref_stream] level) and
    RISC-V register types ([rv]/[rv_snitch] level).

    Register types carry an optional concrete register name: [None]
    denotes a yet-unallocated register; the register allocator replaces
    it in place with e.g. [Some "t0"] (paper §3.1, Figure 6). *)

type t =
  | F16
  | F32
  | F64
  | I of int  (** [iN] integers *)
  | Index
  | Unit_ty
  | Memref of { shape : int list; elem : t }
      (** Statically-shaped, row-major memref. *)
  | Stream_readable of t  (** [!stream.readable<elem>] *)
  | Stream_writable of t  (** [!stream.writable<elem>] *)
  | Int_reg of string option  (** [!rv.reg] or [!rv.reg<name>] *)
  | Float_reg of string option  (** [!rv.freg] or [!rv.freg<name>] *)
  | Func_ty of t list * t list

val i1 : t
val i32 : t
val i64 : t
val memref : int list -> t -> t
val equal : t -> t -> bool
val is_float : t -> bool
val is_int : t -> bool
val is_register : t -> bool
val is_allocated_register : t -> bool

(** Width in bytes of a scalar type as stored in memory. Raises
    [Invalid_argument] on non-scalar types. *)
val byte_width : t -> int

val memref_elem : t -> t
val memref_shape : t -> int list
val num_elements : int list -> int

(** Row-major strides, in elements, for a static shape, e.g.
    [row_major_strides [2; 3; 4] = [12; 4; 1]]. *)
val row_major_strides : int list -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
