(* The core SSA-with-regions IR (paper §2.1).

   The representation mirrors MLIR/xDSL: operations hold operands,
   results, attributes and regions; regions hold blocks; blocks hold a
   doubly-linked list of operations plus block arguments. Values know
   their definition and maintain an explicit use list, enabling O(1)
   replace-all-uses and in-place rewriting during progressive lowering.

   All structures are identified by a process-unique integer id; equality
   is physical. *)

type value = {
  vid : int;
  mutable vty : Ty.t;
  vdef : vdef;
  mutable uses : use list;
}

and vdef = Op_result of op * int | Block_arg of block * int

and use = { user : op; index : int }

and op = {
  oid : int;
  mutable op_name : string;
  mutable operands : value array;
  mutable results : value array;
  mutable attrs : (string * Attr.t) list;
  mutable regions : region list;
  mutable successors : block list;
  mutable op_parent : block option;
  mutable prev : op option;
  mutable next : op option;
}

and block = {
  bid : int;
  mutable args : value array;
  mutable first : op option;
  mutable last : op option;
  mutable blk_parent : region option;
}

and region = { rid : int; mutable blocks : block list; mutable rgn_parent : op option }

(* One process-global atomic id well: IR may be built on several domains
   concurrently (the parallel drivers), and a plain shared [ref] would
   mint colliding ids, silently corrupting anything keyed by them. *)
let id_counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add id_counter 1 + 1

module Value = struct
  type t = value

  let equal a b = a == b
  let id v = v.vid
  let ty v = v.vty
  let set_ty v ty = v.vty <- ty
  let def v = v.vdef
  let uses v = v.uses

  let defining_op v =
    match v.vdef with Op_result (op, _) -> Some op | Block_arg _ -> None

  let owner_block v =
    match v.vdef with
    | Op_result (op, _) -> op.op_parent
    | Block_arg (b, _) -> Some b

  let has_uses v = v.uses <> []
  let num_uses v = List.length v.uses

  let add_use v use = v.uses <- use :: v.uses

  let remove_use v ~user ~index =
    v.uses <-
      List.filter (fun u -> not (u.user == user && u.index = index)) v.uses

  let pp fmt v = Fmt.pf fmt "%%%d : %a" v.vid Ty.pp v.vty
end

module Op = struct
  type t = op

  let equal a b = a == b
  let id op = op.oid
  let name op = op.op_name
  let operands op = Array.to_list op.operands
  let operand op i = op.operands.(i)
  let num_operands op = Array.length op.operands
  let results op = Array.to_list op.results
  let result op i = op.results.(i)
  let num_results op = Array.length op.results
  let regions op = op.regions
  let region op i = List.nth op.regions i
  let successors op = op.successors
  let parent op = op.op_parent
  let attrs op = op.attrs

  let attr op key = List.assoc_opt key op.attrs

  let attr_exn op key =
    match attr op key with
    | Some a -> a
    | None ->
      invalid_arg (Printf.sprintf "Op.attr_exn: %s has no attr %s" op.op_name key)

  let set_attr op key v =
    op.attrs <- (key, v) :: List.remove_assoc key op.attrs

  let remove_attr op key = op.attrs <- List.remove_assoc key op.attrs

  let has_attr op key = List.mem_assoc key op.attrs

  let create ?(attrs = []) ?(regions = []) ?(successors = []) ~results name
      operands =
    let operands = Array.of_list operands in
    let op =
      {
        oid = next_id ();
        op_name = name;
        operands;
        results = [||];
        attrs;
        regions;
        successors;
        op_parent = None;
        prev = None;
        next = None;
      }
    in
    op.results <-
      Array.of_list
        (List.mapi
           (fun i ty ->
             { vid = next_id (); vty = ty; vdef = Op_result (op, i); uses = [] })
           results);
    Array.iteri (fun i v -> Value.add_use v { user = op; index = i }) operands;
    List.iter (fun r -> r.rgn_parent <- Some op) regions;
    op

  (* Append a fresh result value of the given type (used by transforms
     that extend loop-carried state, e.g. induction-variable strength
     reduction). *)
  let add_result op ty =
    let i = Array.length op.results in
    let v = { vid = next_id (); vty = ty; vdef = Op_result (op, i); uses = [] } in
    op.results <- Array.append op.results [| v |];
    v

  let set_operand op i v =
    Value.remove_use op.operands.(i) ~user:op ~index:i;
    op.operands.(i) <- v;
    Value.add_use v { user = op; index = i }

  let set_operands op vs =
    Array.iteri (fun i v -> Value.remove_use v ~user:op ~index:i) op.operands;
    op.operands <- Array.of_list vs;
    Array.iteri (fun i v -> Value.add_use v { user = op; index = i }) op.operands

  (* Structural iteration over the op's regions' blocks' ops. *)
  let iter_nested_ops op f =
    let rec go op =
      List.iter
        (fun r ->
          List.iter
            (fun b ->
              let cur = ref b.first in
              while !cur <> None do
                let o = Option.get !cur in
                (* Capture [next] before [f] in case [f] erases [o]. *)
                let nxt = o.next in
                f o;
                go o;
                cur := nxt
              done)
            r.blocks)
        op.regions
    in
    go op

  (* Unlink from the containing block without touching uses. *)
  let unlink op =
    (match op.op_parent with
    | None -> ()
    | Some b ->
      (match op.prev with
      | Some p -> p.next <- op.next
      | None -> b.first <- op.next);
      (match op.next with
      | Some n -> n.prev <- op.prev
      | None -> b.last <- op.prev));
    op.op_parent <- None;
    op.prev <- None;
    op.next <- None

  let insert_before ~anchor op =
    assert (op.op_parent = None);
    let b =
      match anchor.op_parent with
      | Some b -> b
      | None -> invalid_arg "Op.insert_before: anchor is detached"
    in
    op.op_parent <- Some b;
    op.prev <- anchor.prev;
    op.next <- Some anchor;
    (match anchor.prev with
    | Some p -> p.next <- Some op
    | None -> b.first <- Some op);
    anchor.prev <- Some op

  let insert_after ~anchor op =
    assert (op.op_parent = None);
    let b =
      match anchor.op_parent with
      | Some b -> b
      | None -> invalid_arg "Op.insert_after: anchor is detached"
    in
    op.op_parent <- Some b;
    op.next <- anchor.next;
    op.prev <- Some anchor;
    (match anchor.next with
    | Some n -> n.prev <- Some op
    | None -> b.last <- Some op);
    anchor.next <- Some op

  (* Erase the op: it must have no remaining uses of its results. Drops
     operand uses and recursively erases nested ops. *)
  let rec erase op =
    Array.iter
      (fun r ->
        if Value.has_uses r then
          invalid_arg
            (Printf.sprintf "Op.erase: %s result %%%d still has uses" op.op_name
               r.vid))
      op.results;
    List.iter
      (fun rg ->
        List.iter
          (fun b ->
            let cur = ref b.last in
            while !cur <> None do
              let o = Option.get !cur in
              let prv = o.prev in
              erase o;
              cur := prv
            done)
          rg.blocks)
      op.regions;
    Array.iteri (fun i v -> Value.remove_use v ~user:op ~index:i) op.operands;
    op.operands <- [||];
    unlink op

  let is_before ~anchor op =
    (* Both in the same block: is [op] strictly before [anchor]? *)
    let rec go cur =
      match cur with
      | None -> false
      | Some o -> if o == anchor then false else if o == op then true else go o.next
    in
    match (op.op_parent, anchor.op_parent) with
    | Some b1, Some b2 when b1 == b2 -> go b1.first
    | _ -> invalid_arg "Op.is_before: ops not in the same block"

  let pp_name fmt op = Fmt.pf fmt "%s" op.op_name
end

module Block = struct
  type t = block

  let equal a b = a == b
  let id b = b.bid

  let create ?(args = []) () =
    let b = { bid = next_id (); args = [||]; first = None; last = None; blk_parent = None } in
    b.args <-
      Array.of_list
        (List.mapi
           (fun i ty ->
             { vid = next_id (); vty = ty; vdef = Block_arg (b, i); uses = [] })
           args);
    b

  let args b = Array.to_list b.args
  let arg b i = b.args.(i)
  let num_args b = Array.length b.args
  let parent b = b.blk_parent

  let parent_op b =
    match b.blk_parent with None -> None | Some r -> r.rgn_parent

  let add_arg b ty =
    let i = Array.length b.args in
    let v = { vid = next_id (); vty = ty; vdef = Block_arg (b, i); uses = [] } in
    b.args <- Array.append b.args [| v |];
    v

  let first_op b = b.first
  let last_op b = b.last

  let append b op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    op.prev <- b.last;
    op.next <- None;
    (match b.last with Some l -> l.next <- Some op | None -> b.first <- Some op);
    b.last <- Some op

  let prepend b op =
    assert (op.op_parent = None);
    op.op_parent <- Some b;
    op.next <- b.first;
    op.prev <- None;
    (match b.first with Some f -> f.prev <- Some op | None -> b.last <- Some op);
    b.first <- Some op

  let iter_ops b f =
    let cur = ref b.first in
    while !cur <> None do
      let o = Option.get !cur in
      let nxt = o.next in
      f o;
      cur := nxt
    done

  let rev_iter_ops b f =
    let cur = ref b.last in
    while !cur <> None do
      let o = Option.get !cur in
      let prv = o.prev in
      f o;
      cur := prv
    done

  let fold_ops b ~init ~f =
    let acc = ref init in
    iter_ops b (fun o -> acc := f !acc o);
    !acc

  let ops b = List.rev (fold_ops b ~init:[] ~f:(fun acc o -> o :: acc))
  let num_ops b = fold_ops b ~init:0 ~f:(fun n _ -> n + 1)

  let terminator b = b.last
end

module Region = struct
  type t = region

  let create ?(blocks = []) () =
    let r = { rid = next_id (); blocks; rgn_parent = None } in
    List.iter (fun b -> b.blk_parent <- Some r) blocks;
    r

  let blocks r = r.blocks
  let parent_op r = r.rgn_parent

  let add_block r b =
    b.blk_parent <- Some r;
    r.blocks <- r.blocks @ [ b ]

  let first_block r =
    match r.blocks with [] -> None | b :: _ -> Some b

  let only_block r =
    match r.blocks with
    | [ b ] -> b
    | _ -> invalid_arg "Region.only_block: region does not have exactly one block"

  (* A single-block region wrapping the given args. *)
  let single_block ?(args = []) () =
    let b = Block.create ~args () in
    create ~blocks:[ b ] ()
end

(* Replace every use of [v] with [with_]. *)
let replace_all_uses v ~with_ =
  if not (Value.equal v with_) then begin
    let uses = v.uses in
    v.uses <- [];
    List.iter
      (fun { user; index } ->
        user.operands.(index) <- with_;
        Value.add_use with_ { user; index })
      uses
  end

(* Walk all ops nested under [op] (excluding [op] itself), pre-order. *)
let walk op f = Op.iter_nested_ops op f

(* Walk including the op itself. *)
let walk_incl op f =
  f op;
  walk op f

(* Collect nested ops matching a predicate. *)
let collect op pred =
  let acc = ref [] in
  walk op (fun o -> if pred o then acc := o :: !acc);
  List.rev !acc

let find_first op pred =
  let exception Found of op in
  try
    walk op (fun o -> if pred o then raise (Found o));
    None
  with Found o -> Some o

(* The top-level module op. *)
module Module_ = struct
  let create () = Op.create ~regions:[ Region.single_block () ] ~results:[] "builtin.module" []

  let body m =
    match m.regions with
    | [ r ] -> Region.only_block r
    | _ -> invalid_arg "Module_.body: malformed module"
end

(* Enclosing ancestor op of [op] satisfying [pred], if any. *)
let rec ancestor_op op pred =
  match op.op_parent with
  | None -> None
  | Some b -> (
    match Block.parent_op b with
    | None -> None
    | Some p -> if pred p then Some p else ancestor_op p pred)
