(* IR verification: structural integrity (parent/use-def links), SSA
   dominance (including across nested regions), terminator discipline,
   and per-op invariants from the registry.

   Dominance within multi-block regions uses the classical iterative
   dominator-set algorithm; with the micro-kernel-sized CFGs produced by
   this backend the quadratic behaviour is irrelevant. *)

exception Verification_error of string

let err fmt = Format.kasprintf (fun m -> raise (Verification_error m)) fmt

(* Map from block id to its position within its region and the CFG's
   dominator sets. *)
type region_cfg = {
  order : Ir.block array;
  index : (int, int) Hashtbl.t; (* block id -> order position *)
  doms : (int, unit) Hashtbl.t array; (* position -> set of dominator positions *)
}

let build_cfg (region : Ir.region) : region_cfg =
  let blocks = Array.of_list (Ir.Region.blocks region) in
  let n = Array.length blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i b -> Hashtbl.add index b.Ir.bid i) blocks;
  let succs i =
    match Ir.Block.terminator blocks.(i) with
    | None -> []
    | Some t ->
      List.filter_map
        (fun (s : Ir.block) -> Hashtbl.find_opt index s.Ir.bid)
        (Ir.Op.successors t)
  in
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun s -> preds.(s) <- i :: preds.(s)) (succs i)
  done;
  (* Iterative dominator sets: dom(entry) = {entry};
     dom(b) = {b} ∪ ⋂ dom(preds). *)
  let full () =
    let h = Hashtbl.create n in
    for i = 0 to n - 1 do
      Hashtbl.replace h i ()
    done;
    h
  in
  let doms = Array.init n (fun i -> if i = 0 then Hashtbl.create 1 else full ()) in
  if n > 0 then Hashtbl.replace doms.(0) 0 ();
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let inter =
        match preds.(i) with
        | [] -> Hashtbl.create 1 (* unreachable: dominated by nothing but itself *)
        | p :: rest ->
          let acc = Hashtbl.copy doms.(p) in
          List.iter
            (fun q ->
              Hashtbl.iter
                (fun k () -> if not (Hashtbl.mem doms.(q) k) then Hashtbl.remove acc k)
                (Hashtbl.copy acc))
            rest;
          acc
      in
      Hashtbl.replace inter i ();
      if Hashtbl.length inter <> Hashtbl.length doms.(i) then begin
        doms.(i) <- inter;
        changed := true
      end
    done
  done;
  { order = blocks; index; doms }

(* Does the definition site [def] dominate the use in op [user]?
   [def_block] is the block holding the definition (or whose argument it
   is); visibility also extends into nested regions (an SSA value is
   visible in regions nested under ops that follow it). *)
let value_visible_at ~(v : Ir.value) ~(user : Ir.op) : bool =
  (* Walk up from [user] through enclosing blocks. At each level, check
     whether [v] is defined in that block (as an arg, or by an op strictly
     before the enclosing op at this level) or in a dominating block of
     the same region. *)
  let def_block = Ir.Value.owner_block v in
  match def_block with
  | None -> false
  | Some def_block ->
    let rec up (at_op : Ir.op) =
      match Ir.Op.parent at_op with
      | None -> false
      | Some blk ->
        if Ir.Block.equal blk def_block then
          (* Same block: block args always visible; op results must come
             strictly before [at_op]. *)
          (match Ir.Value.def v with
          | Ir.Block_arg _ -> true
          | Ir.Op_result (def_op, _) ->
            if Ir.Op.equal def_op at_op then false
            else Ir.Op.is_before ~anchor:at_op def_op)
        else begin
          (* Different block: if both blocks are in the same region, check
             dominance; otherwise walk up to the op owning this block's
             region. *)
          match (Ir.Block.parent blk, Ir.Block.parent def_block) with
          | Some r1, Some r2 when r1 == r2 ->
            let cfg = build_cfg r1 in
            let bi = Hashtbl.find_opt cfg.index blk.Ir.bid in
            let di = Hashtbl.find_opt cfg.index def_block.Ir.bid in
            (match (bi, di) with
            | Some bi, Some di -> Hashtbl.mem cfg.doms.(bi) di
            | _ -> false)
          | _ -> (
            match Ir.Block.parent_op blk with
            | None -> false
            | Some parent -> up parent)
        end
    in
    up user

let check_structure (root : Ir.op) =
  Ir.walk_incl root (fun op ->
      (* results point back at op *)
      List.iteri
        (fun i r ->
          match Ir.Value.def r with
          | Ir.Op_result (o, j) when Ir.Op.equal o op && i = j -> ()
          | _ -> err "%s: result %d has a corrupt def link" (Ir.Op.name op) i)
        (Ir.Op.results op);
      (* operand use lists contain this op *)
      List.iteri
        (fun i v ->
          let found =
            List.exists
              (fun (u : Ir.use) -> Ir.Op.equal u.user op && u.index = i)
              (Ir.Value.uses v)
          in
          if not found then
            err "%s: operand %d (%a) missing from use list" (Ir.Op.name op) i
              Ir.Value.pp
              v)
        (Ir.Op.operands op);
      (* nested regions/blocks have correct parents *)
      List.iter
        (fun (r : Ir.region) ->
          (match Ir.Region.parent_op r with
          | Some o when Ir.Op.equal o op -> ()
          | _ -> err "%s: region with corrupt parent" (Ir.Op.name op));
          List.iter
            (fun (b : Ir.block) ->
              match Ir.Block.parent b with
              | Some r' when r' == r -> ()
              | _ -> err "%s: block with corrupt parent" (Ir.Op.name op))
            (Ir.Region.blocks r))
        (Ir.Op.regions op))

let check_dominance (root : Ir.op) =
  Ir.walk_incl root (fun op ->
      List.iteri
        (fun i v ->
          if not (value_visible_at ~v ~user:op) then
            err "%s: operand %d (%a) does not dominate its use" (Ir.Op.name op)
              i
              Ir.Value.pp
              v)
        (Ir.Op.operands op))

let check_terminators (root : Ir.op) =
  Ir.walk_incl root (fun op ->
      List.iter
        (fun (r : Ir.region) ->
          let blocks = Ir.Region.blocks r in
          let multi = List.length blocks > 1 in
          List.iter
            (fun (b : Ir.block) ->
              match Ir.Block.terminator b with
              | Some t ->
                (* No terminator op may appear in the middle of a block. *)
                Ir.Block.iter_ops b (fun o ->
                    if
                      (not (Ir.Op.equal o t))
                      && Op_registry.is_terminator (Ir.Op.name o)
                    then
                      err "%s: terminator %s in the middle of a block"
                        (Ir.Op.name op) (Ir.Op.name o));
                if multi && not (Op_registry.is_terminator (Ir.Op.name t)) then
                  err
                    "%s: block in multi-block region does not end with a \
                     terminator (ends with %s)"
                    (Ir.Op.name op) (Ir.Op.name t)
              | None ->
                if multi then
                  err "%s: empty block in multi-block region" (Ir.Op.name op))
            blocks)
        (Ir.Op.regions op))

let check_registered_invariants (root : Ir.op) =
  Ir.walk_incl root (fun op ->
      (* [Diag.with_op] stamps op provenance onto structured errors
         coming out of attribute/affine accessors, so a malformed
         attribute reports which op carried it. *)
      try Mlc_diag.Diag.with_op (Ir.Op.name op) (fun () -> Op_registry.verify_op op)
      with
      | Failure msg -> err "%s" msg
      | Mlc_diag.Diag.Diagnostic d -> err "%s" (Mlc_diag.Diag.summary d))

(* Verify the whole IR rooted at [root]; raises {!Verification_error}. *)
let verify (root : Ir.op) =
  check_structure root;
  check_dominance root;
  check_terminators root;
  check_registered_invariants root

let verify_result root =
  match verify root with
  | () -> Ok ()
  | exception Verification_error msg -> Error msg
