(** Compilation passes and the pass manager. A pass transforms a module
    op in place; pipelines are plain lists, and the IR is verified after
    every pass by default — the "small, self-contained passes" structure
    of the paper's lowering (§3.4). Failures are structured: see
    {!Pass_failed}. *)

type t = { name : string; run : Ir.op -> unit }

val make : string -> (Ir.op -> unit) -> t

(** Raised when a pass (or its post-verification) fails. The diagnostic
    carries the pass name, the IR printed just before the failing pass,
    and the original backtrace; a crash bundle has been written by the
    time this propagates (see {!Mlc_diag.Crash_bundle}). The original
    raise site is preserved with [Printexc.raise_with_backtrace]. *)
exception Pass_failed of Mlc_diag.Diag.t

type trace_entry = { pass_name : string; ir_after : string }

(** Run [passes] over module [m]. [verify_each] (default true) runs the
    verifier after every pass; [trace] captures the printed IR after each
    pass (the CLI's --print-ir). [bundle_ctx] supplies the pipeline-flag
    rendering and replay command recorded in crash bundles.

    [checkpoint] is an additional per-pass analysis hook (the IR-level
    static analyses of [Mlc_verify]): it runs right after post-pass
    verification, and any exception it raises is attributed to the pass
    just run — same diagnostic provenance, same crash bundle. A
    checkpoint that pre-attaches [ir_before] to its diagnostic (the IR
    at the checkpoint, i.e. after the offending pass) keeps that
    snapshot in the bundle. *)
val run_pipeline :
  ?verify_each:bool ->
  ?trace:bool ->
  ?bundle_ctx:Mlc_diag.Crash_bundle.ctx ->
  ?checkpoint:(pass_name:string -> Ir.op -> unit) ->
  Ir.op ->
  t list ->
  trace_entry list

(** {!run_pipeline} without tracing. *)
val run :
  ?verify_each:bool ->
  ?bundle_ctx:Mlc_diag.Crash_bundle.ctx ->
  ?checkpoint:(pass_name:string -> Ir.op -> unit) ->
  Ir.op ->
  t list ->
  unit
