(** Compilation passes and the pass manager. A pass transforms a module
    op in place; pipelines are plain lists, and the IR is verified after
    every pass by default — the "small, self-contained passes" structure
    of the paper's lowering (§3.4). *)

type t = { name : string; run : Ir.op -> unit }

val make : string -> (Ir.op -> unit) -> t

(** Raised when a pass (or its post-verification) fails; carries the pass
    name and the original exception. *)
exception Pass_failed of string * exn

type trace_entry = { pass_name : string; ir_after : string }

(** Run [passes] over module [m]. [verify_each] (default true) runs the
    verifier after every pass; [trace] captures the printed IR after each
    pass (the CLI's --print-ir). *)
val run_pipeline :
  ?verify_each:bool -> ?trace:bool -> Ir.op -> t list -> trace_entry list

(** {!run_pipeline} without tracing. *)
val run : ?verify_each:bool -> Ir.op -> t list -> unit
