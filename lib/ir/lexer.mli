(** Hand-written lexer for the generic IR syntax of {!Printer}/{!Parser}. *)

type token =
  | Ident of string
  | Bang_ident of string  (** !rv.reg, !stream.readable *)
  | Hash_ident of string  (** #iterators, #stride_pattern *)
  | Value_id of string  (** %0 *)
  | Block_id of string  (** ^bb0 *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Less
  | Greater
  | Comma
  | Colon
  | Equal
  | Arrow
  | Plus
  | Minus
  | Star
  | Eof

exception Lex_error of string * int  (** message, byte offset *)

type t = { src : string; mutable pos : int; mutable tok : token }

val create : string -> t
val peek : t -> token
val next : t -> unit
val token_to_string : token -> string

(** 1-based (line, column) of a byte offset in a source string. *)
val line_col_of_offset : string -> int -> int * int

(** 1-based (line, column) of a byte offset in this lexer's source. *)
val line_col : t -> int -> int * int
