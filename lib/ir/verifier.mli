(** IR verification: structural integrity (parent and use-def links), SSA
    dominance including across nested regions and multi-block CFGs,
    terminator discipline, and the per-op invariants registered in
    {!Op_registry}.

    The pass manager runs this after every pass (unless disabled), so a
    lowering bug surfaces at the pass that introduced it. *)

exception Verification_error of string

(** Is [v] visible (defined-before-use under SSA-with-regions rules) at
    op [user]? Exposed for transforms that need dominance queries. *)
val value_visible_at : v:Ir.value -> user:Ir.op -> bool

(** Verify the IR rooted at [root]; raises {!Verification_error}. *)
val verify : Ir.op -> unit

val verify_result : Ir.op -> (unit, string) result
