(** Recursive-descent parser for the generic IR syntax emitted by
    {!Printer}. Together they give a lossless textual round-trip — the
    interchange mechanism the paper relies on between xDSL and MLIR
    (§4.1, "interoperability ... via the common text IR format"). *)

exception Parse_error of string

(** Parse one top-level operation (typically a [builtin.module]).
    Raises {!Parse_error} (or {!Lexer.Lex_error}) on malformed input,
    including uses of undefined values and operand/type arity
    mismatches. *)
val parse_string : string -> Ir.op
