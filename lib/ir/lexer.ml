(* A small hand-written lexer for the generic IR syntax produced by
   {!Printer}. Kept deliberately simple: the token set covers exactly
   what the printer emits. *)

type token =
  | Ident of string (* foo, f64, parallel, affine_map, unit *)
  | Bang_ident of string (* !rv.reg, !stream.readable *)
  | Hash_ident of string (* #iterators, #stride_pattern *)
  | Value_id of string (* %0, %arg3 *)
  | Block_id of string (* ^bb0 *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Less
  | Greater
  | Comma
  | Colon
  | Equal
  | Arrow (* -> *)
  | Plus
  | Minus
  | Star
  | Eof

exception Lex_error of string * int (* message, offset *)

type t = { src : string; mutable pos : int; mutable tok : token }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '$'

let is_digit c = c >= '0' && c <= '9'

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t = t.pos <- t.pos + 1

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance t;
    skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
    while peek_char t <> None && peek_char t <> Some '\n' do
      advance t
    done;
    skip_ws t
  | _ -> ()

let read_while t pred =
  let start = t.pos in
  while match peek_char t with Some c -> pred c | None -> false do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let read_number t =
  let start = t.pos in
  if peek_char t = Some '-' then advance t;
  if peek_char t = Some '0' && t.pos + 1 < String.length t.src
     && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  then begin
    (* Hex literal: either an integer or a %h float like 0x1.8p+1. *)
    advance t;
    advance t;
    let _ =
      read_while t (fun c ->
          is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
    in
    let is_float = ref false in
    if peek_char t = Some '.' then begin
      is_float := true;
      advance t;
      ignore
        (read_while t (fun c ->
             is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
    end;
    (match peek_char t with
    | Some ('p' | 'P') ->
      is_float := true;
      advance t;
      (match peek_char t with Some ('+' | '-') -> advance t | _ -> ());
      ignore (read_while t is_digit)
    | _ -> ());
    let s = String.sub t.src start (t.pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float_lit f
      | None -> raise (Lex_error (Printf.sprintf "malformed float %S" s, start))
    else
      match int_of_string_opt s with
      | Some i -> Int_lit i
      | None -> raise (Lex_error (Printf.sprintf "malformed integer %S" s, start))
  end
  else begin
    ignore (read_while t is_digit);
    let is_float = ref false in
    if peek_char t = Some '.'
       && t.pos + 1 < String.length t.src
       && is_digit t.src.[t.pos + 1]
    then begin
      is_float := true;
      advance t;
      ignore (read_while t is_digit)
    end;
    (match peek_char t with
    | Some ('e' | 'E') ->
      is_float := true;
      advance t;
      (match peek_char t with Some ('+' | '-') -> advance t | _ -> ());
      ignore (read_while t is_digit)
    | _ -> ());
    let s = String.sub t.src start (t.pos - start) in
    if !is_float then
      match float_of_string_opt s with
      | Some f -> Float_lit f
      | None -> raise (Lex_error (Printf.sprintf "malformed float %S" s, start))
    else
      match int_of_string_opt s with
      | Some i -> Int_lit i
      | None -> raise (Lex_error (Printf.sprintf "malformed integer %S" s, start))
  end

let read_string t =
  (* Opening quote already consumed. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> raise (Lex_error ("unterminated string literal", t.pos))
    | Some '"' -> advance t
    | Some '\\' ->
      advance t;
      (match peek_char t with
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '"' -> Buffer.add_char buf '"'
      | Some c -> Buffer.add_char buf c
      | None -> raise (Lex_error ("unterminated escape", t.pos)));
      advance t;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance t;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token t =
  skip_ws t;
  match peek_char t with
  | None -> Eof
  | Some c -> (
    match c with
    | '(' -> advance t; Lparen
    | ')' -> advance t; Rparen
    | '{' -> advance t; Lbrace
    | '}' -> advance t; Rbrace
    | '[' -> advance t; Lbracket
    | ']' -> advance t; Rbracket
    | '<' -> advance t; Less
    | '>' -> advance t; Greater
    | ',' -> advance t; Comma
    | ':' -> advance t; Colon
    | '=' -> advance t; Equal
    | '+' -> advance t; Plus
    | '*' -> advance t; Star
    | '"' ->
      advance t;
      Str_lit (read_string t)
    | '%' ->
      advance t;
      Value_id ("%" ^ read_while t is_ident_char)
    | '^' ->
      advance t;
      Block_id ("^" ^ read_while t is_ident_char)
    | '!' ->
      advance t;
      Bang_ident ("!" ^ read_while t is_ident_char)
    | '#' ->
      advance t;
      Hash_ident ("#" ^ read_while t is_ident_char)
    | '-' ->
      if t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '>' then begin
        advance t;
        advance t;
        Arrow
      end
      else if t.pos + 1 < String.length t.src && is_digit t.src.[t.pos + 1] then
        read_number t
      else begin
        advance t;
        Minus
      end
    | c when is_digit c -> read_number t
    | c when is_ident_start c -> Ident (read_while t is_ident_char)
    | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, t.pos)))

let create src =
  let t = { src; pos = 0; tok = Eof } in
  t.tok <- next_token t;
  t

(* 1-based line and column of byte offset [off] in [src]. *)
let line_col_of_offset src off =
  let line = ref 1 and col = ref 1 in
  let n = min off (String.length src) in
  for i = 0 to n - 1 do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let line_col t off = line_col_of_offset t.src off

let peek t = t.tok
let next t = t.tok <- next_token t

let token_to_string = function
  | Ident s | Bang_ident s | Hash_ident s | Value_id s | Block_id s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | Str_lit s -> Printf.sprintf "%S" s
  | Lparen -> "(" | Rparen -> ")" | Lbrace -> "{" | Rbrace -> "}"
  | Lbracket -> "[" | Rbracket -> "]" | Less -> "<" | Greater -> ">"
  | Comma -> "," | Colon -> ":" | Equal -> "=" | Arrow -> "->"
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Eof -> "<eof>"
