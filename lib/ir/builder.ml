(* Insertion-point-based IR construction, mirroring MLIR's OpBuilder.
   Dialect smart constructors take a builder and append their op at the
   current insertion point, returning result values. *)

type point = At_end of Ir.block | Before of Ir.op | After of Ir.op

type t = { mutable point : point }

let at_end block = { point = At_end block }
let before op = { point = Before op }
let after op = { point = After op }

let set_insertion_point_to_end t block = t.point <- At_end block
let set_insertion_point_before t op = t.point <- Before op
let set_insertion_point_after t op = t.point <- After op

let insertion_block t =
  match t.point with
  | At_end b -> b
  | Before op | After op -> (
    match Ir.Op.parent op with
    | Some b -> b
    | None -> invalid_arg "Builder.insertion_block: anchor op is detached")

(* Insert an already-created op at the insertion point. For [After]
   anchors the point advances past the inserted op, so a sequence of
   insertions stays in program order. *)
let insert t op =
  (match t.point with
  | At_end b -> Ir.Block.append b op
  | Before anchor -> Ir.Op.insert_before ~anchor op
  | After anchor ->
    Ir.Op.insert_after ~anchor op;
    t.point <- After op);
  op

(* Create and insert; returns the op. *)
let create t ?attrs ?regions ?successors ~results name operands =
  insert t (Ir.Op.create ?attrs ?regions ?successors ~results name operands)

(* Create and insert an op with exactly one result; returns the value. *)
let create1 t ?attrs ?regions ?successors ~result name operands =
  let op = create t ?attrs ?regions ?successors ~results:[ result ] name operands in
  Ir.Op.result op 0

(* Create and insert a zero-result op. *)
let create0 t ?attrs ?regions ?successors name operands =
  ignore (create t ?attrs ?regions ?successors ~results:[] name operands)

(* Run [f] with the insertion point moved to the end of [block], restoring
   the previous point afterwards. *)
let within t block f =
  let saved = t.point in
  t.point <- At_end block;
  Fun.protect ~finally:(fun () -> t.point <- saved) f
