(* Affine expressions and maps, modelled after MLIR's affine_map.

   An affine expression is built from loop dimensions [d0, d1, ...],
   symbols [s0, s1, ...] and integer constants, combined with +, *,
   floordiv, ceildiv and mod. Multiplication is only permitted when one
   side is a constant (semi-affine forms are rejected at smart-constructor
   level), which keeps evaluation and linear-coefficient extraction
   total. *)

type expr =
  | Dim of int
  | Sym of int
  | Const of int
  | Add of expr * expr
  | Mul of expr * expr
  | Floordiv of expr * expr
  | Ceildiv of expr * expr
  | Mod of expr * expr

type map = { num_dims : int; num_syms : int; exprs : expr list }

exception Not_affine of string

let err fmt = Mlc_diag.Diag.error ~component:"affine" fmt

let dim i =
  if i < 0 then err "Affine.dim: negative index %d" i;
  Dim i

let sym i =
  if i < 0 then err "Affine.sym: negative index %d" i;
  Sym i

let const c = Const c

let rec is_const = function
  | Const _ -> true
  | Dim _ | Sym _ -> false
  | Add (a, b) | Mul (a, b) | Floordiv (a, b) | Ceildiv (a, b) | Mod (a, b) ->
    is_const a && is_const b

(* Smart constructors with light algebraic simplification so that derived
   maps (e.g. after composition) stay readable and strides extract
   cleanly. *)

let rec add a b =
  match (a, b) with
  | Const 0, e | e, Const 0 -> e
  | Const x, Const y -> Const (x + y)
  | Add (x, Const c1), Const c2 -> add x (Const (c1 + c2))
  | Const _, e -> Add (e, a)
  | _ -> Add (a, b)

let rec mul a b =
  match (a, b) with
  | Const 0, _ | _, Const 0 -> Const 0
  | Const 1, e | e, Const 1 -> e
  | Const x, Const y -> Const (x * y)
  | Const _, e -> mul e a
  | Add (x, y), (Const _ as c) -> add (mul x c) (mul y c)
  | e, Const c -> Mul (e, Const c)
  | _ -> raise (Not_affine "multiplication of two non-constant expressions")

let floordiv a b =
  match (a, b) with
  | _, Const 0 -> err "Affine.floordiv: division by zero"
  | e, Const 1 -> e
  | Const x, Const y ->
    (* OCaml's / truncates towards zero; emulate floor semantics. *)
    let q = x / y and r = x mod y in
    Const (if r <> 0 && r * y < 0 then q - 1 else q)
  | _, Const _ -> Floordiv (a, b)
  | _ -> raise (Not_affine "floordiv by a non-constant expression")

let ceildiv a b =
  match (a, b) with
  | _, Const 0 -> err "Affine.ceildiv: division by zero"
  | e, Const 1 -> e
  | Const x, Const y ->
    let q = x / y and r = x mod y in
    Const (if r <> 0 && r * y > 0 then q + 1 else q)
  | _, Const _ -> Ceildiv (a, b)
  | _ -> raise (Not_affine "ceildiv by a non-constant expression")

let modulo a b =
  match (a, b) with
  | _, Const 0 -> err "Affine.modulo: modulo by zero"
  | _, Const 1 -> Const 0
  | Const x, Const y ->
    let r = x mod y in
    Const (if r <> 0 && r * y < 0 then r + y else r)
  | _, Const _ -> Mod (a, b)
  | _ -> raise (Not_affine "modulo by a non-constant expression")

let neg e = mul e (Const (-1))
let sub a b = add a (neg b)

let rec eval_expr ~dims ~syms e =
  let ev e = eval_expr ~dims ~syms e in
  match e with
  | Dim i ->
    if i >= Array.length dims then
      err "Affine.eval: dim d%d out of range (%d dims)" i (Array.length dims);
    dims.(i)
  | Sym i ->
    if i >= Array.length syms then
      err "Affine.eval: sym s%d out of range (%d syms)" i (Array.length syms);
    syms.(i)
  | Const c -> c
  | Add (a, b) -> ev a + ev b
  | Mul (a, b) -> ev a * ev b
  | Floordiv (a, b) -> (
    match floordiv (Const (ev a)) (Const (ev b)) with
    | Const c -> c
    | _ -> assert false)
  | Ceildiv (a, b) -> (
    match ceildiv (Const (ev a)) (Const (ev b)) with
    | Const c -> c
    | _ -> assert false)
  | Mod (a, b) -> (
    match modulo (Const (ev a)) (Const (ev b)) with
    | Const c -> c
    | _ -> assert false)

(* Linear-form extraction: expression as (dim coefficients, sym
   coefficients, constant). Raises [Not_affine] on floordiv/mod, which are
   not linear. Used to derive SSR strides from indexing maps. *)
let linear_form ~num_dims ~num_syms e =
  let dcoef = Array.make num_dims 0 in
  let scoef = Array.make num_syms 0 in
  let cst = ref 0 in
  let rec go scale = function
    | Const c -> cst := !cst + (scale * c)
    | Dim i -> dcoef.(i) <- dcoef.(i) + scale
    | Sym i -> scoef.(i) <- scoef.(i) + scale
    | Add (a, b) ->
      go scale a;
      go scale b
    | Mul (a, Const c) -> go (scale * c) a
    | Mul (Const c, a) -> go (scale * c) a
    | Mul _ -> raise (Not_affine "non-linear multiplication")
    | Floordiv _ | Ceildiv _ | Mod _ ->
      raise (Not_affine "floordiv/ceildiv/mod are not linear")
  in
  go 1 e;
  (dcoef, scoef, !cst)

let rec subst_expr ~dims ~syms e =
  let s e = subst_expr ~dims ~syms e in
  match e with
  | Dim i -> dims.(i)
  | Sym i -> syms.(i)
  | Const c -> Const c
  | Add (a, b) -> add (s a) (s b)
  | Mul (a, b) -> mul (s a) (s b)
  | Floordiv (a, b) -> floordiv (s a) (s b)
  | Ceildiv (a, b) -> ceildiv (s a) (s b)
  | Mod (a, b) -> modulo (s a) (s b)

let rec expr_equal a b =
  match (a, b) with
  | Dim i, Dim j | Sym i, Sym j -> i = j
  | Const x, Const y -> x = y
  | Add (a1, b1), Add (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Floordiv (a1, b1), Floordiv (a2, b2)
  | Ceildiv (a1, b1), Ceildiv (a2, b2)
  | Mod (a1, b1), Mod (a2, b2) -> expr_equal a1 a2 && expr_equal b1 b2
  | _ -> false

(* Maps *)

let rec max_indices e =
  match e with
  | Dim i -> (i + 1, 0)
  | Sym i -> (0, i + 1)
  | Const _ -> (0, 0)
  | Add (a, b) | Mul (a, b) | Floordiv (a, b) | Ceildiv (a, b) | Mod (a, b) ->
    let da, sa = max_indices a and db, sb = max_indices b in
    (max da db, max sa sb)

let make ~num_dims ~num_syms exprs =
  List.iter
    (fun e ->
      let d, s = max_indices e in
      if d > num_dims then
        err "Affine.make: dim index d%d out of range (%d dims)" (d - 1) num_dims;
      if s > num_syms then
        err "Affine.make: sym index s%d out of range (%d syms)" (s - 1) num_syms)
    exprs;
  { num_dims; num_syms; exprs }

let identity n = make ~num_dims:n ~num_syms:0 (List.init n dim)

let constant_map cs =
  make ~num_dims:0 ~num_syms:0 (List.map const cs)

let empty n = make ~num_dims:n ~num_syms:0 []

let num_results m = List.length m.exprs

let eval m ~dims ?(syms = [||]) () =
  if Array.length dims <> m.num_dims then
    err "Affine.eval: got %d dims, map has %d" (Array.length dims) m.num_dims;
  if Array.length syms <> m.num_syms then
    err "Affine.eval: got %d syms, map has %d" (Array.length syms) m.num_syms;
  List.map (eval_expr ~dims ~syms) m.exprs

(* [compose f g] is the map x -> f (g x): g's results feed f's dims. *)
let compose f g =
  if num_results g <> f.num_dims then
    err "Affine.compose: %d results feed %d dims" (num_results g) f.num_dims;
  let dims = Array.of_list g.exprs in
  let syms = Array.init f.num_syms sym in
  make ~num_dims:g.num_dims ~num_syms:(max f.num_syms g.num_syms)
    (List.map (subst_expr ~dims ~syms) f.exprs)

let equal m1 m2 =
  m1.num_dims = m2.num_dims && m1.num_syms = m2.num_syms
  && List.length m1.exprs = List.length m2.exprs
  && List.for_all2 expr_equal m1.exprs m2.exprs

(* Drop the given dimensions from the map's domain, renumbering the rest.
   All dropped dims must be unused by the results. *)
let drop_dims m drop =
  let keep = List.filter (fun i -> not (List.mem i drop)) (List.init m.num_dims Fun.id) in
  let renumber = Hashtbl.create 8 in
  List.iteri (fun new_i old_i -> Hashtbl.add renumber old_i new_i) keep;
  let dims =
    Array.init m.num_dims (fun i ->
        match Hashtbl.find_opt renumber i with
        | Some j -> Dim j
        | None -> Const 0)
  in
  let rec uses_dropped = function
    | Dim i -> List.mem i drop
    | Sym _ | Const _ -> false
    | Add (a, b) | Mul (a, b) | Floordiv (a, b) | Ceildiv (a, b) | Mod (a, b)
      -> uses_dropped a || uses_dropped b
  in
  List.iter
    (fun e ->
      if uses_dropped e then
        err "Affine.drop_dims: dropped dimension is used by a result")
    m.exprs;
  make ~num_dims:(List.length keep) ~num_syms:m.num_syms
    (List.map (subst_expr ~dims ~syms:(Array.init m.num_syms sym)) m.exprs)

(* Printing, in MLIR's syntax: (d0, d1)[s0] -> (d0 * 4 + d1) *)

let rec pp_expr fmt = function
  | Dim i -> Fmt.pf fmt "d%d" i
  | Sym i -> Fmt.pf fmt "s%d" i
  | Const c -> Fmt.int fmt c
  | Add (a, Mul (b, Const -1)) -> Fmt.pf fmt "%a - %a" pp_expr a pp_paren b
  | Add (a, Const c) when c < 0 -> Fmt.pf fmt "%a - %d" pp_expr a (-c)
  | Add (a, b) -> Fmt.pf fmt "%a + %a" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf fmt "%a * %a" pp_paren a pp_paren b
  | Floordiv (a, b) -> Fmt.pf fmt "%a floordiv %a" pp_paren a pp_paren b
  | Ceildiv (a, b) -> Fmt.pf fmt "%a ceildiv %a" pp_paren a pp_paren b
  | Mod (a, b) -> Fmt.pf fmt "%a mod %a" pp_paren a pp_paren b

and pp_paren fmt e =
  match e with
  | Dim _ | Sym _ | Const _ -> pp_expr fmt e
  | _ -> Fmt.pf fmt "(%a)" pp_expr e

let pp fmt m =
  let pp_dims fmt n = Fmt.pf fmt "%a" Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") string)
      (List.init n (Printf.sprintf "d%d")) in
  Fmt.pf fmt "(%a)" pp_dims m.num_dims;
  if m.num_syms > 0 then
    Fmt.pf fmt "[%a]" Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") string)
      (List.init m.num_syms (Printf.sprintf "s%d"));
  Fmt.pf fmt " -> (%a)" Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") pp_expr) m.exprs

let to_string m = Fmt.str "%a" pp m
let expr_to_string e = Fmt.str "%a" pp_expr e
