(* Compilation passes and the pass manager. A pass transforms a module op
   in place. The pass manager runs a pipeline, optionally verifying the IR
   after every pass (the default in tests), mirroring the "small,
   self-contained passes" structure of the paper's lowering (§3.4).

   Failures are structured: any exception escaping a pass (or its
   post-verification) is converted into a {!Mlc_diag.Diag.t} carrying the
   pass name, the IR printed just before the failing pass, and the
   original backtrace, then re-raised as {!Pass_failed} with
   [Printexc.raise_with_backtrace] so the raise site survives. A crash
   bundle is written on the way out (see {!Mlc_diag.Crash_bundle}). *)

module Diag = Mlc_diag.Diag
module Crash_bundle = Mlc_diag.Crash_bundle

type t = { name : string; run : Ir.op -> unit }

let make name run = { name; run }

exception Pass_failed of Diag.t

type trace_entry = { pass_name : string; ir_after : string }

(* Build the diagnostic for an exception escaping [pass_name], attaching
   provenance and the pre-pass IR snapshot. *)
let diag_of_failure ~pass_name ~ir_before ~bt exn =
  let backtrace =
    let s = Printexc.raw_backtrace_to_string bt in
    if String.trim s = "" then None else Some s
  in
  let base =
    match exn with
    | Diag.Diagnostic d -> d
    | Verifier.Verification_error msg ->
      Diag.make ~component:"verifier"
        (Printf.sprintf "post-pass verification: %s" msg)
    | Affine.Not_affine msg -> Diag.make ~component:"affine" msg
    | Failure msg -> Diag.make ~component:"pass" msg
    | Invalid_argument msg -> Diag.make ~component:"pass" msg
    | exn -> Diag.make ~component:"pass" (Printexc.to_string exn)
  in
  {
    base with
    Diag.pass = Some pass_name;
    ir_before = (if base.Diag.ir_before = None then Some ir_before
                 else base.Diag.ir_before);
    backtrace = (if base.Diag.backtrace = None then backtrace
                 else base.Diag.backtrace);
  }

(* Run [passes] over module [m]. When [verify_each] is set, the verifier
   runs after every pass and failures are attributed to the offending
   pass. When [trace] is set, the IR after each pass is captured (used by
   the CLI's --print-ir-after-all). [bundle_ctx] supplies the pipeline
   flags and replay command recorded in the crash bundle on failure. *)
(* [checkpoint] is an additional per-pass analysis hook (the IR-level
   static analyses of [Mlc_verify], injected here to keep the dependency
   arrow pointing outward): it runs right after post-pass verification
   and any exception it raises is attributed to the pass just run, with
   the same crash-bundle treatment. *)
let run_pipeline ?(verify_each = true) ?(trace = false) ?bundle_ctx
    ?(checkpoint : (pass_name:string -> Ir.op -> unit) option)
    (m : Ir.op) (passes : t list) : trace_entry list =
  let entries = ref [] in
  let fail ~pass_name ~ir_before exn bt =
    let diag = diag_of_failure ~pass_name ~ir_before ~bt exn in
    let diag =
      match Crash_bundle.write ?ctx:bundle_ctx diag with
      | Some path -> Diag.add_note diag ("crash bundle: " ^ path)
      | None -> diag
    in
    Printexc.raise_with_backtrace (Pass_failed diag) bt
  in
  List.iter
    (fun pass ->
      let ir_before = Printer.to_string m in
      (try pass.run m
       with e when not (e = Stdlib.Exit) ->
         fail ~pass_name:pass.name ~ir_before e (Printexc.get_raw_backtrace ()));
      (if verify_each then
         try Verifier.verify m
         with e ->
           fail ~pass_name:pass.name ~ir_before e (Printexc.get_raw_backtrace ()));
      (match checkpoint with
      | Some cp -> (
        try cp ~pass_name:pass.name m
        with e when not (e = Stdlib.Exit) ->
          fail ~pass_name:pass.name ~ir_before e (Printexc.get_raw_backtrace ()))
      | None -> ());
      if trace then
        entries :=
          { pass_name = pass.name; ir_after = Printer.to_string m } :: !entries)
    passes;
  List.rev !entries

let run ?(verify_each = true) ?bundle_ctx ?checkpoint m passes =
  ignore (run_pipeline ~verify_each ~trace:false ?bundle_ctx ?checkpoint m passes)
