(* Compilation passes and the pass manager. A pass transforms a module op
   in place. The pass manager runs a pipeline, optionally verifying the IR
   after every pass (the default in tests), mirroring the "small,
   self-contained passes" structure of the paper's lowering (§3.4). *)

type t = { name : string; run : Ir.op -> unit }

let make name run = { name; run }

exception Pass_failed of string * exn

type trace_entry = { pass_name : string; ir_after : string }

(* Run [passes] over module [m]. When [verify_each] is set, the verifier
   runs after every pass and failures are attributed to the offending
   pass. When [trace] is set, the IR after each pass is captured (used by
   the CLI's --print-ir-after-all). *)
let run_pipeline ?(verify_each = true) ?(trace = false) (m : Ir.op)
    (passes : t list) : trace_entry list =
  let entries = ref [] in
  List.iter
    (fun pass ->
      (try pass.run m
       with e when not (e = Stdlib.Exit) -> raise (Pass_failed (pass.name, e)));
      if verify_each then begin
        try Verifier.verify m
        with Verifier.Verification_error msg ->
          raise
            (Pass_failed
               (pass.name, Failure (Printf.sprintf "post-pass verification: %s" msg)))
      end;
      if trace then
        entries :=
          { pass_name = pass.name; ir_after = Printer.to_string m } :: !entries)
    passes;
  List.rev !entries

let run ?(verify_each = true) m passes =
  ignore (run_pipeline ~verify_each ~trace:false m passes)
