(** The operation registry — the OCaml counterpart of MLIR's dialect
    registration. Dialect modules register their ops (with structural
    verifiers and trait flags) at module-initialisation time; the
    verifier and generic transforms consult the registry.

    Unregistered op names are permitted and verified structurally only,
    keeping ad-hoc test ops cheap. *)

type info = {
  dialect : string;
  op : string;
  terminator : bool;
  pure : bool;
  verify : Ir.op -> unit;
}

(** Register an op name ("dialect.op"); returns the name so dialects can
    write [let addf_op = Op_registry.register "arith.addf" ...]. Raises
    [Invalid_argument] on duplicates or names without a dialect prefix.
    [verify] should raise [Failure] with a message on violation. *)
val register :
  ?terminator:bool ->
  ?pure:bool ->
  ?verify:(Ir.op -> unit) ->
  string ->
  string

val find : string -> info option
val is_terminator : string -> bool
val is_pure : string -> bool
val is_registered : string -> bool

(** Run the registered verifier of [op], if any. *)
val verify_op : Ir.op -> unit

val registered_names : unit -> string list

(** {2 Verification helpers for dialect definitions} *)

(** Raise [Failure] with the op name prefixed. *)
val fail_op : Ir.op -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val expect_num_operands : Ir.op -> int -> unit
val expect_num_results : Ir.op -> int -> unit
val expect_num_regions : Ir.op -> int -> unit
val expect_attr : Ir.op -> string -> unit
val expect_operand_ty : Ir.op -> int -> Ty.t -> unit
val expect_result_ty : Ir.op -> int -> Ty.t -> unit
