(* Attributes: compile-time constant data attached to operations as a
   key-value map (paper §2.1). A handful of domain-specific attributes
   (iterator types, stride patterns) are first-class constructors rather
   than encodings, which keeps the passes that consume them simple. *)

type iterator = Parallel | Reduction | Interleaved

(* A resolved stream stride pattern: upper bounds (outermost first) and
   byte strides, as programmed into a Snitch SSR (paper §3.2 d). *)
type stride_pattern = { ub : int list; strides : int list }

(* A memref_stream-level stride pattern: upper bounds plus an affine
   index map from iteration space to operand element space (Figure 7). *)
type index_pattern = { ip_ub : int list; ip_map : Affine.map }

type t =
  | Unit_attr
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ty of Ty.t
  | Arr of t list
  | Dict of (string * t) list
  | Affine_map of Affine.map
  | Iterators of iterator list
  | Stride_pattern of stride_pattern
  | Index_pattern of index_pattern

let iterator_to_string = function
  | Parallel -> "parallel"
  | Reduction -> "reduction"
  | Interleaved -> "interleaved"

let err fmt = Mlc_diag.Diag.error ~component:"attr" fmt

let iterator_of_string = function
  | "parallel" -> Parallel
  | "reduction" -> Reduction
  | "interleaved" -> Interleaved
  | s -> err "Attr.iterator_of_string: unknown iterator %S" s

let rec equal a b =
  match (a, b) with
  | Unit_attr, Unit_attr -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Ty x, Ty y -> Ty.equal x y
  | Arr x, Arr y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Dict x, Dict y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
  | Affine_map x, Affine_map y -> Affine.equal x y
  | Iterators x, Iterators y -> x = y
  | Stride_pattern x, Stride_pattern y -> x = y
  | Index_pattern x, Index_pattern y ->
    x.ip_ub = y.ip_ub && Affine.equal x.ip_map y.ip_map
  | _ -> false

let rec pp fmt = function
  | Unit_attr -> Fmt.string fmt "unit"
  | Bool b -> Fmt.bool fmt b
  | Int i -> Fmt.int fmt i
  | Float f -> Fmt.pf fmt "%h" f
  | Str s -> Fmt.pf fmt "%S" s
  | Ty t -> Ty.pp fmt t
  | Arr l -> Fmt.pf fmt "[%a]" Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") pp) l
  | Dict l ->
    Fmt.pf fmt "{%a}"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") (fun fmt (k, v) -> Fmt.pf fmt "%s = %a" k pp v))
      l
  | Affine_map m -> Fmt.pf fmt "affine_map<%a>" Affine.pp m
  | Iterators l ->
    Fmt.pf fmt "#iterators<%a>"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") (fun fmt i -> Fmt.string fmt (iterator_to_string i)))
      l
  | Stride_pattern { ub; strides } ->
    Fmt.pf fmt "#stride_pattern<ub = [%a], strides = [%a]>"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") int)
      ub
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") int)
      strides
  | Index_pattern { ip_ub; ip_map } ->
    Fmt.pf fmt "#stride_pattern<ub = [%a], index_map = %a>"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") int)
      ip_ub Affine.pp ip_map

let to_string a = Fmt.str "%a" pp a

(* Typed accessors; raise a structured {!Mlc_diag.Diag.Diagnostic} on
   shape mismatch. Op provenance is attached by the caller's nearest
   [Diag.with_op] scope (the verifier wraps per-op invariant checks), so
   a malformed attribute reports which op produced it. *)

let shape_err what a = err "Attr.%s: got %s" what (to_string a)

let get_int = function Int i -> i | a -> shape_err "get_int" a
let get_float = function Float f -> f | a -> shape_err "get_float" a
let get_str = function Str s -> s | a -> shape_err "get_str" a
let get_bool = function Bool b -> b | a -> shape_err "get_bool" a
let get_ty = function Ty t -> t | a -> shape_err "get_ty" a
let get_arr = function Arr l -> l | a -> shape_err "get_arr" a

let get_affine_map = function
  | Affine_map m -> m
  | a -> shape_err "get_affine_map" a

let get_iterators = function
  | Iterators l -> l
  | a -> shape_err "get_iterators" a

let get_stride_pattern = function
  | Stride_pattern p -> p
  | a -> shape_err "get_stride_pattern" a

let get_index_pattern = function
  | Index_pattern p -> p
  | a -> shape_err "get_index_pattern" a

let int_arr l = Arr (List.map (fun i -> Int i) l)

let get_int_arr a = List.map get_int (get_arr a)
