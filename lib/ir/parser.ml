(* Recursive-descent parser for the generic IR syntax emitted by
   {!Printer}. The printer/parser pair is lossless, which the test suite
   checks by round-tripping randomly generated programs. *)

exception Parse_error of string

type t = {
  lx : Lexer.t;
  values : (string, Ir.value) Hashtbl.t;
  mutable block_scopes : (string, Ir.block) Hashtbl.t list;
}

let fail t msg =
  let line, col = Lexer.line_col t.lx t.lx.Lexer.pos in
  raise
    (Parse_error
       (Printf.sprintf "%d:%d: %s (at token %s)" line col msg
          (Lexer.token_to_string (Lexer.peek t.lx))))

let peek t = Lexer.peek t.lx
let advance t = Lexer.next t.lx

let expect t tok what =
  if peek t = tok then advance t else fail t ("expected " ^ what)

let accept t tok =
  if peek t = tok then begin
    advance t;
    true
  end
  else false

let ident t =
  match peek t with
  | Lexer.Ident s ->
    advance t;
    s
  | _ -> fail t "expected identifier"

(* --- types --- *)

let scalar_ty_of_string s =
  match s with
  | "f16" -> Some Ty.F16
  | "f32" -> Some Ty.F32
  | "f64" -> Some Ty.F64
  | "index" -> Some Ty.Index
  | "none" -> Some Ty.Unit_ty
  | _ ->
    if String.length s > 1 && s.[0] = 'i' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n -> Some (Ty.I n)
      | None -> None
    else None

(* Parse the inside of memref<...>: "200xf64", "4x5xf64" or just "f64".
   The lexer tokenizes "4x5xf64" as [Int 4; Ident "x5xf64"], so we split
   the composite identifier on 'x'. *)
let parse_memref_contents t =
  let dims = ref [] in
  let elem = ref None in
  let consume_composite s =
    (* s like "x5xf64" or "xf64": leading 'x'-separated segments. *)
    let parts = String.split_on_char 'x' s in
    List.iter
      (fun part ->
        if part = "" then ()
        else
          match int_of_string_opt part with
          | Some d -> dims := d :: !dims
          | None -> (
            match scalar_ty_of_string part with
            | Some ty -> elem := Some ty
            | None -> fail t ("bad memref element: " ^ part)))
      parts
  in
  let rec go () =
    match peek t with
    | Lexer.Int_lit d ->
      advance t;
      dims := d :: !dims;
      go ()
    | Lexer.Ident s ->
      advance t;
      (match scalar_ty_of_string s with
      | Some ty when !elem = None && not (String.contains s 'x') ->
        elem := Some ty
      | _ -> consume_composite s);
      go ()
    | Lexer.Greater -> ()
    | _ -> fail t "expected memref shape"
  in
  go ();
  match !elem with
  | Some e -> Ty.Memref { shape = List.rev !dims; elem = e }
  | None -> fail t "memref without element type"

let rec parse_ty t =
  match peek t with
  | Lexer.Ident "memref" ->
    advance t;
    expect t Lexer.Less "'<'";
    let ty = parse_memref_contents t in
    expect t Lexer.Greater "'>'";
    ty
  | Lexer.Ident s -> (
    match scalar_ty_of_string s with
    | Some ty ->
      advance t;
      ty
    | None -> fail t ("unknown type " ^ s))
  | Lexer.Bang_ident "!stream.readable" ->
    advance t;
    expect t Lexer.Less "'<'";
    let e = parse_ty t in
    expect t Lexer.Greater "'>'";
    Ty.Stream_readable e
  | Lexer.Bang_ident "!stream.writable" ->
    advance t;
    expect t Lexer.Less "'<'";
    let e = parse_ty t in
    expect t Lexer.Greater "'>'";
    Ty.Stream_writable e
  | Lexer.Bang_ident "!rv.reg" ->
    advance t;
    if accept t Lexer.Less then begin
      let r = ident t in
      expect t Lexer.Greater "'>'";
      Ty.Int_reg (Some r)
    end
    else Ty.Int_reg None
  | Lexer.Bang_ident "!rv.freg" ->
    advance t;
    if accept t Lexer.Less then begin
      let r = ident t in
      expect t Lexer.Greater "'>'";
      Ty.Float_reg (Some r)
    end
    else Ty.Float_reg None
  | Lexer.Lparen ->
    (* function type: (tys) -> (tys) *)
    advance t;
    let args = parse_ty_list t in
    expect t Lexer.Rparen "')'";
    expect t Lexer.Arrow "'->'";
    expect t Lexer.Lparen "'('";
    let results = parse_ty_list t in
    expect t Lexer.Rparen "')'";
    Ty.Func_ty (args, results)
  | _ -> fail t "expected type"

and parse_ty_list t =
  if peek t = Lexer.Rparen then []
  else
    let rec go acc =
      let ty = parse_ty t in
      if accept t Lexer.Comma then go (ty :: acc) else List.rev (ty :: acc)
    in
    go []

(* --- affine maps --- *)

let parse_affine_map t =
  (* (d0, d1)[s0] -> (exprs) *)
  let dims = Hashtbl.create 4 and syms = Hashtbl.create 4 in
  expect t Lexer.Lparen "'('";
  let ndims = ref 0 in
  while peek t <> Lexer.Rparen do
    let d = ident t in
    Hashtbl.add dims d !ndims;
    incr ndims;
    ignore (accept t Lexer.Comma)
  done;
  advance t;
  let nsyms = ref 0 in
  if accept t Lexer.Lbracket then begin
    while peek t <> Lexer.Rbracket do
      let s = ident t in
      Hashtbl.add syms s !nsyms;
      incr nsyms;
      ignore (accept t Lexer.Comma)
    done;
    advance t
  end;
  expect t Lexer.Arrow "'->'";
  expect t Lexer.Lparen "'('";
  let rec parse_expr () =
    let lhs = parse_term () in
    parse_expr_rest lhs
  and parse_expr_rest lhs =
    match peek t with
    | Lexer.Plus ->
      advance t;
      parse_expr_rest (Affine.add lhs (parse_term ()))
    | Lexer.Minus ->
      advance t;
      parse_expr_rest (Affine.sub lhs (parse_term ()))
    | _ -> lhs
  and parse_term () =
    let lhs = parse_atom () in
    parse_term_rest lhs
  and parse_term_rest lhs =
    match peek t with
    | Lexer.Star ->
      advance t;
      parse_term_rest (Affine.mul lhs (parse_atom ()))
    | Lexer.Ident "floordiv" ->
      advance t;
      parse_term_rest (Affine.floordiv lhs (parse_atom ()))
    | Lexer.Ident "ceildiv" ->
      advance t;
      parse_term_rest (Affine.ceildiv lhs (parse_atom ()))
    | Lexer.Ident "mod" ->
      advance t;
      parse_term_rest (Affine.modulo lhs (parse_atom ()))
    | _ -> lhs
  and parse_atom () =
    match peek t with
    | Lexer.Int_lit i ->
      advance t;
      Affine.const i
    | Lexer.Minus ->
      advance t;
      Affine.neg (parse_atom ())
    | Lexer.Lparen ->
      advance t;
      let e = parse_expr () in
      expect t Lexer.Rparen "')'";
      e
    | Lexer.Ident s -> (
      advance t;
      match Hashtbl.find_opt dims s with
      | Some i -> Affine.dim i
      | None -> (
        match Hashtbl.find_opt syms s with
        | Some i -> Affine.sym i
        | None -> fail t ("unknown affine identifier " ^ s)))
    | _ -> fail t "expected affine expression"
  in
  let exprs = ref [] in
  while peek t <> Lexer.Rparen do
    exprs := parse_expr () :: !exprs;
    ignore (accept t Lexer.Comma)
  done;
  advance t;
  Affine.make ~num_dims:!ndims ~num_syms:!nsyms (List.rev !exprs)

(* --- attributes --- *)

let parse_int_list t =
  expect t Lexer.Lbracket "'['";
  let acc = ref [] in
  while peek t <> Lexer.Rbracket do
    (match peek t with
    | Lexer.Int_lit i ->
      advance t;
      acc := i :: !acc
    | _ -> fail t "expected integer");
    ignore (accept t Lexer.Comma)
  done;
  advance t;
  List.rev !acc

let rec parse_attr t =
  match peek t with
  | Lexer.Ident "unit" ->
    advance t;
    Attr.Unit_attr
  | Lexer.Ident "true" ->
    advance t;
    Attr.Bool true
  | Lexer.Ident "false" ->
    advance t;
    Attr.Bool false
  | Lexer.Ident "nan" ->
    advance t;
    Attr.Float Float.nan
  | Lexer.Ident "infinity" ->
    advance t;
    Attr.Float Float.infinity
  | Lexer.Minus ->
    advance t;
    (match parse_attr t with
    | Attr.Int i -> Attr.Int (-i)
    | Attr.Float f -> Attr.Float (-.f)
    | _ -> fail t "expected number after '-'")
  | Lexer.Ident "affine_map" ->
    advance t;
    expect t Lexer.Less "'<'";
    let m = parse_affine_map t in
    expect t Lexer.Greater "'>'";
    Attr.Affine_map m
  | Lexer.Hash_ident "#iterators" ->
    advance t;
    expect t Lexer.Less "'<'";
    let acc = ref [] in
    while peek t <> Lexer.Greater do
      acc := Attr.iterator_of_string (ident t) :: !acc;
      ignore (accept t Lexer.Comma)
    done;
    advance t;
    Attr.Iterators (List.rev !acc)
  | Lexer.Hash_ident "#stride_pattern" ->
    advance t;
    expect t Lexer.Less "'<'";
    expect t (Lexer.Ident "ub") "'ub'";
    expect t Lexer.Equal "'='";
    let ub = parse_int_list t in
    expect t Lexer.Comma "','";
    let result =
      match peek t with
      | Lexer.Ident "strides" ->
        advance t;
        expect t Lexer.Equal "'='";
        let strides = parse_int_list t in
        Attr.Stride_pattern { ub; strides }
      | Lexer.Ident "index_map" ->
        advance t;
        expect t Lexer.Equal "'='";
        let m = parse_affine_map t in
        Attr.Index_pattern { ip_ub = ub; ip_map = m }
      | _ -> fail t "expected 'strides' or 'index_map'"
    in
    expect t Lexer.Greater "'>'";
    result
  | Lexer.Int_lit i ->
    advance t;
    Attr.Int i
  | Lexer.Float_lit f ->
    advance t;
    Attr.Float f
  | Lexer.Str_lit s ->
    advance t;
    Attr.Str s
  | Lexer.Lbracket ->
    advance t;
    let acc = ref [] in
    while peek t <> Lexer.Rbracket do
      acc := parse_attr t :: !acc;
      ignore (accept t Lexer.Comma)
    done;
    advance t;
    Attr.Arr (List.rev !acc)
  | Lexer.Lbrace ->
    advance t;
    let acc = ref [] in
    while peek t <> Lexer.Rbrace do
      let k = ident t in
      expect t Lexer.Equal "'='";
      let v = parse_attr t in
      acc := (k, v) :: !acc;
      ignore (accept t Lexer.Comma)
    done;
    advance t;
    Attr.Dict (List.rev !acc)
  | Lexer.Ident _ | Lexer.Bang_ident _ | Lexer.Lparen -> Attr.Ty (parse_ty t)
  | _ -> fail t "expected attribute"

(* --- values, blocks, ops --- *)

let lookup_value t name =
  match Hashtbl.find_opt t.values name with
  | Some v -> v
  | None -> fail t ("use of undefined value " ^ name)

let current_block_scope t =
  match t.block_scopes with
  | scope :: _ -> scope
  | [] -> fail t "internal error: no block scope"

let lookup_block t name =
  let scope = current_block_scope t in
  match Hashtbl.find_opt scope name with
  | Some b -> b
  | None ->
    (* Forward reference: create an empty placeholder to be populated when
       the block header is parsed. *)
    let b = Ir.Block.create () in
    Hashtbl.add scope name b;
    b

let value_id t =
  match peek t with
  | Lexer.Value_id s ->
    advance t;
    s
  | _ -> fail t "expected value id"

let rec parse_op t =
  (* results *)
  let result_names =
    match peek t with
    | Lexer.Value_id _ ->
      let rec go acc =
        let v = value_id t in
        if accept t Lexer.Comma then go (v :: acc) else List.rev (v :: acc)
      in
      let names = go [] in
      expect t Lexer.Equal "'='";
      names
    | _ -> []
  in
  let name =
    match peek t with
    | Lexer.Str_lit s ->
      advance t;
      s
    | _ -> fail t "expected op name string"
  in
  expect t Lexer.Lparen "'('";
  let operand_names =
    if peek t = Lexer.Rparen then []
    else
      let rec go acc =
        let v = value_id t in
        if accept t Lexer.Comma then go (v :: acc) else List.rev (v :: acc)
      in
      go []
  in
  expect t Lexer.Rparen "')'";
  let successors =
    if accept t Lexer.Lbracket then begin
      let acc = ref [] in
      while peek t <> Lexer.Rbracket do
        (match peek t with
        | Lexer.Block_id b ->
          advance t;
          acc := lookup_block t b :: !acc
        | _ -> fail t "expected block id");
        ignore (accept t Lexer.Comma)
      done;
      advance t;
      List.rev !acc
    end
    else []
  in
  let regions =
    if peek t = Lexer.Lparen then begin
      advance t;
      let acc = ref [] in
      let rec go () =
        acc := parse_region t :: !acc;
        if accept t Lexer.Comma then go ()
      in
      go ();
      expect t Lexer.Rparen "')'";
      List.rev !acc
    end
    else []
  in
  let attrs =
    if accept t Lexer.Lbrace then begin
      let acc = ref [] in
      while peek t <> Lexer.Rbrace do
        let k = ident t in
        expect t Lexer.Equal "'='";
        let v = parse_attr t in
        acc := (k, v) :: !acc;
        ignore (accept t Lexer.Comma)
      done;
      advance t;
      List.rev !acc
    end
    else []
  in
  expect t Lexer.Colon "':'";
  expect t Lexer.Lparen "'('";
  let operand_tys = parse_ty_list t in
  expect t Lexer.Rparen "')'";
  expect t Lexer.Arrow "'->'";
  expect t Lexer.Lparen "'('";
  let result_tys = parse_ty_list t in
  expect t Lexer.Rparen "')'";
  if List.length operand_tys <> List.length operand_names then
    fail t "operand/type arity mismatch";
  if List.length result_tys <> List.length result_names then
    fail t "result/type arity mismatch";
  let operands = List.map (lookup_value t) operand_names in
  List.iter2
    (fun v ty ->
      if not (Ty.equal (Ir.Value.ty v) ty) then
        fail t
          (Printf.sprintf "operand type mismatch: %s has %s, signature says %s"
             (Fmt.str "%a" Ir.Value.pp v)
             (Ty.to_string (Ir.Value.ty v))
             (Ty.to_string ty)))
    operands operand_tys;
  let op = Ir.Op.create ~attrs ~regions ~successors ~results:result_tys name operands in
  List.iteri
    (fun i n -> Hashtbl.replace t.values n (Ir.Op.result op i))
    result_names;
  op

and parse_region t =
  expect t Lexer.Lbrace "'{'";
  t.block_scopes <- Hashtbl.create 8 :: t.block_scopes;
  let region = Ir.Region.create () in
  while peek t <> Lexer.Rbrace do
    let b = parse_block t in
    Ir.Region.add_block region b
  done;
  advance t;
  t.block_scopes <- List.tl t.block_scopes;
  region

and parse_block t =
  let name =
    match peek t with
    | Lexer.Block_id b ->
      advance t;
      b
    | _ -> fail t "expected block header"
  in
  let scope = current_block_scope t in
  let block =
    match Hashtbl.find_opt scope name with
    | Some b -> b
    | None ->
      let b = Ir.Block.create () in
      Hashtbl.add scope name b;
      b
  in
  expect t Lexer.Lparen "'('";
  while peek t <> Lexer.Rparen do
    let vname = value_id t in
    expect t Lexer.Colon "':'";
    let ty = parse_ty t in
    let arg = Ir.Block.add_arg block ty in
    Hashtbl.replace t.values vname arg;
    ignore (accept t Lexer.Comma)
  done;
  advance t;
  expect t Lexer.Colon "':'";
  (* ops until the next block header or the region's closing brace *)
  let rec go () =
    match peek t with
    | Lexer.Rbrace | Lexer.Block_id _ -> ()
    | _ ->
      Ir.Block.append block (parse_op t);
      go ()
  in
  go ();
  block

let parse_string src =
  match
    let t =
      { lx = Lexer.create src; values = Hashtbl.create 64; block_scopes = [] }
    in
    let op = parse_op t in
    if peek t <> Lexer.Eof then fail t "trailing input after top-level op";
    op
  with
  | op -> op
  | exception Lexer.Lex_error (msg, off) ->
    (* Surface lexical errors with the same line:column convention. *)
    let line, col = Lexer.line_col_of_offset src off in
    raise (Parse_error (Printf.sprintf "%d:%d: %s" line col msg))
  | exception Mlc_diag.Diag.Diagnostic d ->
    (* Structured errors from attribute/affine construction on malformed
       input are parse errors, not compiler bugs. *)
    raise (Parse_error (Mlc_diag.Diag.summary d))
