(* The type system of the multi-level backend. A single concrete variant
   covers all abstraction levels used by the paper: builtin scalar types,
   memrefs, streams (memref_stream level) and RISC-V register types
   (rv/rv_snitch level). Register types carry an optional concrete
   register name: [None] denotes a yet-unallocated register, which the
   allocator replaces in place. *)

type t =
  | F16
  | F32
  | F64
  | I of int (* iN *)
  | Index
  | Unit_ty
  | Memref of { shape : int list; elem : t }
  | Stream_readable of t
  | Stream_writable of t
  | Int_reg of string option (* !rv.reg / !rv.reg<t0> *)
  | Float_reg of string option (* !rv.freg / !rv.freg<ft3> *)
  | Func_ty of t list * t list

let i1 = I 1
let i32 = I 32
let i64 = I 64

let memref shape elem = Memref { shape; elem }

let rec equal a b =
  match (a, b) with
  | F16, F16 | F32, F32 | F64, F64 | Index, Index | Unit_ty, Unit_ty -> true
  | I n, I m -> n = m
  | Memref m1, Memref m2 -> m1.shape = m2.shape && equal m1.elem m2.elem
  | Stream_readable a, Stream_readable b | Stream_writable a, Stream_writable b
    -> equal a b
  | Int_reg r1, Int_reg r2 | Float_reg r1, Float_reg r2 -> r1 = r2
  | Func_ty (a1, r1), Func_ty (a2, r2) ->
    List.length a1 = List.length a2
    && List.length r1 = List.length r2
    && List.for_all2 equal a1 a2 && List.for_all2 equal r1 r2
  | _ -> false

let is_float = function F16 | F32 | F64 -> true | _ -> false
let is_int = function I _ -> true | _ -> false
let is_register = function Int_reg _ | Float_reg _ -> true | _ -> false

let is_allocated_register = function
  | Int_reg (Some _) | Float_reg (Some _) -> true
  | _ -> false

(* Width in bytes of a scalar element as stored in memory. *)
let byte_width = function
  | F16 -> 2
  | F32 -> 4
  | F64 -> 8
  | I n -> max 1 ((n + 7) / 8)
  | Index -> 8
  | _ -> invalid_arg "Ty.byte_width: not a scalar type"

let memref_elem = function
  | Memref { elem; _ } -> elem
  | _ -> invalid_arg "Ty.memref_elem: not a memref"

let memref_shape = function
  | Memref { shape; _ } -> shape
  | _ -> invalid_arg "Ty.memref_shape: not a memref"

let num_elements shape = List.fold_left ( * ) 1 shape

(* Row-major strides, in elements, for a static shape. *)
let row_major_strides shape =
  let rec go = function
    | [] -> []
    | [ _ ] -> [ 1 ]
    | _ :: rest ->
      let strides = go rest in
      (List.hd rest * List.hd strides) :: strides
  in
  go shape

let rec pp fmt = function
  | F16 -> Fmt.string fmt "f16"
  | F32 -> Fmt.string fmt "f32"
  | F64 -> Fmt.string fmt "f64"
  | I n -> Fmt.pf fmt "i%d" n
  | Index -> Fmt.string fmt "index"
  | Unit_ty -> Fmt.string fmt "none"
  | Memref { shape; elem } ->
    Fmt.pf fmt "memref<%a%a>"
      Fmt.(list ~sep:nop (fun fmt d -> Fmt.pf fmt "%dx" d))
      shape pp elem
  | Stream_readable t -> Fmt.pf fmt "!stream.readable<%a>" pp t
  | Stream_writable t -> Fmt.pf fmt "!stream.writable<%a>" pp t
  | Int_reg None -> Fmt.string fmt "!rv.reg"
  | Int_reg (Some r) -> Fmt.pf fmt "!rv.reg<%s>" r
  | Float_reg None -> Fmt.string fmt "!rv.freg"
  | Float_reg (Some r) -> Fmt.pf fmt "!rv.freg<%s>" r
  | Func_ty (args, results) ->
    Fmt.pf fmt "(%a) -> (%a)"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") pp)
      args
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") pp)
      results

let to_string t = Fmt.str "%a" pp t
