(* Greedy pattern-rewrite driver. A pattern inspects an operation and
   either rewrites the IR in place (returning [Applied]) or declines.
   The driver repeatedly sweeps all nested operations until a fixpoint,
   which is how the backend's peephole optimisations (paper §3.2) run.

   Patterns receive a {!Builder.t} positioned immediately before the
   matched op, so newly created ops land in the right place. *)

type outcome = Applied | Declined

type pattern = {
  pat_name : string;
  (* [match_and_rewrite builder op]: rewrite in place or decline. The
     pattern may erase [op]; the driver captures iteration state before
     invoking it. *)
  match_and_rewrite : Builder.t -> Ir.op -> outcome;
}

let pattern name f = { pat_name = name; match_and_rewrite = f }

exception Max_iterations_exceeded of string

(* Apply patterns greedily to all ops nested under [root] until no
   pattern applies. Returns the number of rewrites performed. *)
let rewrite_greedy ?(max_iterations = 1000) (root : Ir.op) (patterns : pattern list) =
  let total = ref 0 in
  let changed = ref true in
  let iters = ref 0 in
  while !changed do
    incr iters;
    if !iters > max_iterations then
      raise
        (Max_iterations_exceeded
           (Printf.sprintf
              "rewrite_greedy: no fixpoint after %d sweeps (patterns: %s)"
              max_iterations
              (String.concat ", " (List.map (fun p -> p.pat_name) patterns))));
    changed := false;
    (* Collect first: patterns may restructure the op list under us. *)
    let ops = Ir.collect root (fun _ -> true) in
    List.iter
      (fun op ->
        (* The op may have been erased by a previous rewrite this sweep. *)
        if Ir.Op.parent op <> None then
          List.iter
            (fun p ->
              if Ir.Op.parent op <> None then
                let b = Builder.before op in
                match p.match_and_rewrite b op with
                | Applied ->
                  incr total;
                  changed := true
                | Declined -> ())
            patterns)
      ops
  done;
  !total

(* Replace [op] with [values] (which must match its result arity) and
   erase it. *)
let replace_op (op : Ir.op) (values : Ir.value list) =
  if List.length values <> Ir.Op.num_results op then
    invalid_arg "Rewriter.replace_op: arity mismatch";
  List.iteri
    (fun i v -> Ir.replace_all_uses (Ir.Op.result op i) ~with_:v)
    values;
  Ir.Op.erase op

(* Erase an op that has no used results. *)
let erase_op (op : Ir.op) = Ir.Op.erase op

(* Move all ops of [src] block to the end of [dst], remapping [src]'s
   block arguments to [values]. Used when inlining single-block regions
   (e.g. lowering scf.for bodies). *)
let inline_block_at_end (src : Ir.block) (dst : Ir.block) (values : Ir.value list) =
  if List.length values <> Ir.Block.num_args src then
    invalid_arg "Rewriter.inline_block_at_end: block-arg arity mismatch";
  List.iteri
    (fun i v -> Ir.replace_all_uses (Ir.Block.arg src i) ~with_:v)
    values;
  Ir.Block.iter_ops src (fun op ->
      Ir.Op.unlink op;
      Ir.Block.append dst op)

(* Move all ops of [src] before [anchor], remapping [src]'s block args. *)
let inline_block_before (src : Ir.block) ~(anchor : Ir.op) (values : Ir.value list) =
  if List.length values <> Ir.Block.num_args src then
    invalid_arg "Rewriter.inline_block_before: block-arg arity mismatch";
  List.iteri
    (fun i v -> Ir.replace_all_uses (Ir.Block.arg src i) ~with_:v)
    values;
  Ir.Block.iter_ops src (fun op ->
      Ir.Op.unlink op;
      Ir.Op.insert_before ~anchor op)
