(* Printing of the IR in MLIR's *generic* operation syntax:

     %0, %1 = "dialect.op"(%2)[^bb1]({ ... region ... }){k = attr}
              : (operand-tys) -> (result-tys)

   We only implement the generic form (plus light indentation); the
   parser in {!Parser} accepts exactly this syntax, giving a lossless
   round-trip used by the property tests. Assembly-level pretty output
   lives in the [riscv] library instead. *)

type env = {
  value_names : (int, string) Hashtbl.t;
  block_names : (int, string) Hashtbl.t;
  mutable next_value : int;
  mutable next_block : int;
}

let make_env () =
  {
    value_names = Hashtbl.create 64;
    block_names = Hashtbl.create 16;
    next_value = 0;
    next_block = 0;
  }

let value_name env (v : Ir.value) =
  match Hashtbl.find_opt env.value_names v.vid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "%%%d" env.next_value in
    env.next_value <- env.next_value + 1;
    Hashtbl.add env.value_names v.vid n;
    n

let block_name env (b : Ir.block) =
  match Hashtbl.find_opt env.block_names b.bid with
  | Some n -> n
  | None ->
    let n = Printf.sprintf "^bb%d" env.next_block in
    env.next_block <- env.next_block + 1;
    Hashtbl.add env.block_names b.bid n;
    n

let rec pp_op env indent fmt (op : Ir.op) =
  let pad = String.make indent ' ' in
  Fmt.pf fmt "%s" pad;
  (match Ir.Op.results op with
  | [] -> ()
  | results ->
    Fmt.pf fmt "%a = "
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") string)
      (List.map (value_name env) results));
  Fmt.pf fmt "%S(%a)" (Ir.Op.name op)
    Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") string)
    (List.map (value_name env) (Ir.Op.operands op));
  (match Ir.Op.successors op with
  | [] -> ()
  | succs ->
    Fmt.pf fmt "[%a]"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") string)
      (List.map (block_name env) succs));
  (match Ir.Op.regions op with
  | [] -> ()
  | regions ->
    Fmt.pf fmt "(%a)"
      Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") (pp_region env indent))
      regions);
  (match Ir.Op.attrs op with
  | [] -> ()
  | attrs ->
    let attrs = List.sort (fun (a, _) (b, _) -> compare a b) attrs in
    Fmt.pf fmt "{%a}"
      Fmt.(
        list ~sep:(fun fmt () -> Fmt.string fmt ", ") (fun fmt (k, v) -> Fmt.pf fmt "%s = %a" k Attr.pp v))
      attrs);
  Fmt.pf fmt " : (%a) -> (%a)"
    Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") Ty.pp)
    (List.map Ir.Value.ty (Ir.Op.operands op))
    Fmt.(list ~sep:(fun fmt () -> Fmt.string fmt ", ") Ty.pp)
    (List.map Ir.Value.ty (Ir.Op.results op))

and pp_region env indent fmt (r : Ir.region) =
  let pad = String.make indent ' ' in
  Fmt.pf fmt "{@\n";
  List.iter (fun b -> pp_block env (indent + 2) fmt b) (Ir.Region.blocks r);
  Fmt.pf fmt "%s}" pad

and pp_block env indent fmt (b : Ir.block) =
  let pad = String.make (indent - 2) ' ' in
  Fmt.pf fmt "%s%s(%a):@\n" pad (block_name env b)
    Fmt.(
      list ~sep:(fun fmt () -> Fmt.string fmt ", ") (fun fmt v ->
          Fmt.pf fmt "%s : %a" (value_name env v) Ty.pp (Ir.Value.ty v)))
    (Ir.Block.args b);
  Ir.Block.iter_ops b (fun op -> Fmt.pf fmt "%a@\n" (pp_op env indent) op)

let pp fmt op = pp_op (make_env ()) 0 fmt op

let to_string op = Fmt.str "%a" pp op

(* Convenience: print just the op head (name + attrs), used in error
   messages and traces. *)
let op_head op =
  Fmt.str "%S%s" (Ir.Op.name op)
    (match Ir.Op.attrs op with
    | [] -> ""
    | attrs ->
      Fmt.str "{%a}"
        Fmt.(
          list ~sep:(fun fmt () -> Fmt.string fmt ", ") (fun fmt (k, v) -> Fmt.pf fmt "%s = %a" k Attr.pp v))
        attrs)
