(** Greedy pattern-rewrite driver: patterns inspect an op and rewrite the
    IR in place or decline; the driver sweeps all nested ops to a
    fixpoint. This is how the backend's peephole optimisations run
    (paper §3.2: "simple peephole rewrites for custom optimizations"). *)

type outcome = Applied | Declined

type pattern = {
  pat_name : string;
  match_and_rewrite : Builder.t -> Ir.op -> outcome;
}

(** [pattern name f] — [f] receives a builder positioned immediately
    before the matched op. *)
val pattern : string -> (Builder.t -> Ir.op -> outcome) -> pattern

exception Max_iterations_exceeded of string

(** Apply the patterns to every op nested under [root] until none
    applies; returns the number of rewrites. Raises
    {!Max_iterations_exceeded} if no fixpoint is reached (a pattern that
    re-fires on its own output). *)
val rewrite_greedy : ?max_iterations:int -> Ir.op -> pattern list -> int

(** Replace [op]'s results with [values] and erase it. *)
val replace_op : Ir.op -> Ir.value list -> unit

(** Erase an op whose results are unused. *)
val erase_op : Ir.op -> unit

(** Move all ops of [src] to the end of [dst], substituting [src]'s block
    arguments with [values]. *)
val inline_block_at_end : Ir.block -> Ir.block -> Ir.value list -> unit

(** Move all ops of [src] before [anchor], substituting block args. *)
val inline_block_before : Ir.block -> anchor:Ir.op -> Ir.value list -> unit
