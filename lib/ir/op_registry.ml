(* A registry of operation metadata, the OCaml counterpart of MLIR's
   dialect registration. Dialect modules register their ops at module
   initialisation time; the verifier and generic transforms consult the
   registry for structural facts (terminator-ness, purity) and per-op
   invariants.

   Unregistered op names are allowed (verified structurally only), which
   keeps tests and experiments with ad-hoc ops cheap. *)

type info = {
  dialect : string;
  op : string; (* short name, e.g. "addf" *)
  terminator : bool;
  pure : bool;
  (* Per-op structural verification; raises [Failure] with a message on
     violation. *)
  verify : Ir.op -> unit;
}

let registry : (string, info) Hashtbl.t = Hashtbl.create 256

let no_verify (_ : Ir.op) = ()

let register ?(terminator = false) ?(pure = false) ?(verify = no_verify) name =
  (match String.index_opt name '.' with
  | None -> invalid_arg ("Op_registry.register: missing dialect prefix: " ^ name)
  | Some i ->
    let dialect = String.sub name 0 i in
    let op = String.sub name (i + 1) (String.length name - i - 1) in
    if Hashtbl.mem registry name then
      invalid_arg ("Op_registry.register: duplicate registration: " ^ name);
    Hashtbl.add registry name { dialect; op; terminator; pure; verify });
  name

let find name = Hashtbl.find_opt registry name

let is_terminator op_name =
  match find op_name with Some i -> i.terminator | None -> false

let is_pure op_name = match find op_name with Some i -> i.pure | None -> false

let is_registered name = Hashtbl.mem registry name

let verify_op (op : Ir.op) =
  match find (Ir.Op.name op) with
  | Some info -> info.verify op
  | None -> ()

let registered_names () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

(* Common verification helpers used by dialect definitions. *)

let fail_op op fmt =
  Format.kasprintf
    (fun msg -> failwith (Printf.sprintf "%s: %s" (Ir.Op.name op) msg))
    fmt

let expect_num_operands op n =
  if Ir.Op.num_operands op <> n then
    fail_op op "expected %d operands, got %d" n (Ir.Op.num_operands op)

let expect_num_results op n =
  if Ir.Op.num_results op <> n then
    fail_op op "expected %d results, got %d" n (Ir.Op.num_results op)

let expect_num_regions op n =
  if List.length (Ir.Op.regions op) <> n then
    fail_op op "expected %d regions, got %d" n (List.length (Ir.Op.regions op))

let expect_attr op key =
  if not (Ir.Op.has_attr op key) then fail_op op "missing attribute %s" key

let expect_operand_ty op i ty =
  let actual = Ir.Value.ty (Ir.Op.operand op i) in
  if not (Ty.equal actual ty) then
    fail_op op "operand %d: expected %s, got %s" i (Ty.to_string ty)
      (Ty.to_string actual)

let expect_result_ty op i ty =
  let actual = Ir.Value.ty (Ir.Op.result op i) in
  if not (Ty.equal actual ty) then
    fail_op op "result %d: expected %s, got %s" i (Ty.to_string ty)
      (Ty.to_string actual)
