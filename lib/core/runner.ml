(* The end-to-end harness: compile a kernel, execute it on the Snitch
   simulator against deterministic random inputs, validate the outputs
   against the reference interpreter (high-level kernels) or a native
   reference (handwritten kernels), and report the paper's metrics
   (cycles, FPU utilisation, FLOPs/cycle — §4.1). *)

open Mlc_ir
open Mlc_kernels
open Mlc_riscv

exception Run_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Run_error m)) fmt

type metrics = {
  cycles : int;
  fpu_util : float; (* percent *)
  flops_per_cycle : float;
  loads : int;
  stores : int;
  freps : int;
  flop_count : int; (* FLOPs the simulator observed *)
  retired : int; (* dynamic instructions retired *)
}

(* How the compiled module reaches the simulator: [Direct] lowers
   allocated IR straight to a pre-decoded program (Insn_emit, the
   production path); [Via_text] prints assembly and re-parses it (the
   legacy round-trip, kept as the cross-check and debug format). The two
   produce equal programs — enforced by the registry-wide equivalence
   test. *)
type sim_path = Direct | Via_text

(* Which simulation engine executes the program: the fast pre-decoded
   engine or the reference per-instruction loop (the timing oracle). Both
   produce bit-identical performance counters. *)
type engine = Fast | Reference

(* Graceful degradation: when a rung of the fallback lattice fails with
   a diagnosed error, the next rung is tried on a freshly built module;
   [rung] is the config that finally succeeded and [attempts] the
   (rung, error summary) trail of the failed ones. *)
type degradation = { rung : string; attempts : (string * string) list }

type run_result = {
  asm : string;
  metrics : metrics;
  outputs : float array list; (* simulator outputs, arg order *)
  expected : float array list; (* reference outputs, arg order *)
  max_abs_err : float;
  report : Mlc_regalloc.Allocator.report option;
  stats : Asm_emit.stats option;
  trace : string list; (* per-instruction issue trace when requested *)
  degradation : degradation option; (* None: succeeded at the requested rung *)
}

(* Deterministic input generation (the paper uses random input sets with
   precomputed outputs, §A.2). *)
let gen_inputs ~seed ~elem (args : Builders.arg_spec list) =
  let st = Random.State.make [| seed; 0x5eed |] in
  let round v =
    match elem with
    | Ty.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
    | _ -> v
  in
  List.map
    (fun spec ->
      match spec with
      | Builders.Buf_in shape ->
        Array.init (Ty.num_elements shape) (fun _ ->
            round (Random.State.float st 2.0 -. 1.0))
      | Builders.Buf_out shape -> Array.make (Ty.num_elements shape) 0.0
      | Builders.Scalar_float _ -> [||])
    args

let max_abs_err a b =
  List.fold_left2
    (fun acc xs ys ->
      if Array.length xs <> Array.length ys then err "output size mismatch";
      Array.fold_left max acc
        (Array.mapi (fun i x -> Float.abs (x -. ys.(i))) xs))
    0.0 a b

(* --- simulator-side setup --- *)

(* Load buffers into the TCDM and set up the ABI argument registers
   (pointers in a0.., scalars in fa0.., matching Rv_func.func). *)
let setup_machine ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (data : float array list) =
  let arena = Mlc_sim.Mem.arena machine.Mlc_sim.Machine.mem in
  let esz = Ty.byte_width elem in
  let next_int = ref 0 and next_float = ref 0 in
  let addrs =
    List.map2
      (fun spec buf ->
        match spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let total = Ty.num_elements shape in
          let addr = Mlc_sim.Mem.alloc arena (total * esz) in
          (* Only inputs are materialised; output buffers keep the
             arena's poison fill, so an element the kernel fails to
             store reads back loud garbage instead of the zeros the
             reference interpreter starts from. *)
          (match spec with
          | Builders.Buf_out _ -> ()
          | _ ->
            Array.iteri
              (fun i v ->
                if esz = 4 then
                  Mlc_sim.Mem.store_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4)) v
                else
                  Mlc_sim.Mem.store_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)) v)
              buf);
          let reg = 10 + !next_int (* a0 = x10 *) in
          incr next_int;
          Mlc_sim.Machine.set_ireg machine reg (Int64.of_int addr);
          Some addr
        | Builders.Scalar_float v ->
          let reg = 10 + !next_float (* fa0 = f10 *) in
          incr next_float;
          let bits =
            match elem with
            | Ty.F32 ->
              (* packed: both lanes carry the scalar *)
              let b = Int64.of_int32 (Int32.bits_of_float v) in
              Int64.logor (Int64.logand b 0xFFFFFFFFL) (Int64.shift_left b 32)
            | _ -> Int64.bits_of_float v
          in
          Mlc_sim.Machine.set_freg machine reg bits;
          None)
      args data
  in
  addrs

let read_back ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (addrs : int option list) =
  let esz = Ty.byte_width elem in
  List.concat
    (List.map2
       (fun spec addr ->
         match (spec, addr) with
         | Builders.Buf_out shape, Some addr ->
           [
             Array.init (Ty.num_elements shape) (fun i ->
                 if esz = 4 then
                   Mlc_sim.Mem.load_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4))
                 else
                   Mlc_sim.Mem.load_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)));
           ]
         | _ -> [])
       args addrs)

let metrics_of (perf : Mlc_sim.Machine.perf) =
  {
    cycles = perf.Mlc_sim.Machine.cycles;
    fpu_util = Mlc_sim.Machine.utilization perf;
    flops_per_cycle = Mlc_sim.Machine.throughput perf;
    loads = perf.Mlc_sim.Machine.loads;
    stores = perf.Mlc_sim.Machine.stores;
    freps = perf.Mlc_sim.Machine.freps;
    flop_count = perf.Mlc_sim.Machine.flops;
    retired = perf.Mlc_sim.Machine.retired;
  }

let simulate_program ?(trace = false) ?(engine = Fast) ~elem ~fn_name ~args
    ~data program =
  let machine = Mlc_sim.Machine.create ~trace () in
  let addrs = setup_machine ~elem machine args data in
  let run =
    match engine with
    | Fast -> Mlc_sim.Machine.run
    | Reference -> Mlc_sim.Machine.run_reference
  in
  let outcome = run machine program ~entry:fn_name in
  let outputs = read_back ~elem machine args addrs in
  (metrics_of outcome.Mlc_sim.Machine.perf, outputs, Mlc_sim.Machine.trace machine)

let simulate ?(trace = false) ?(engine = Fast) ~elem ~fn_name ~args ~data asm =
  let program = Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm) in
  simulate_program ~trace ~engine ~elem ~fn_name ~args ~data program

(* --- expected outputs through the interpreter --- *)

let interp_expected (spec : Builders.spec) (data : float array list) =
  let m = spec.Builders.build () in
  Verifier.verify m;
  let rt_args =
    List.map2
      (fun arg_spec buf ->
        match arg_spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let b = Mlc_interp.Interp.buffer_create shape spec.Builders.elem in
          Array.blit buf 0 b.Mlc_interp.Interp.data 0 (Array.length buf);
          Mlc_interp.Interp.Buf b
        | Builders.Scalar_float v -> Mlc_interp.Interp.F v)
      spec.Builders.args data
  in
  Mlc_interp.Interp.run_func m spec.Builders.fn_name rt_args;
  List.concat
    (List.map2
       (fun arg_spec rt ->
         match (arg_spec, rt) with
         | Builders.Buf_out _, Mlc_interp.Interp.Buf b ->
           [ Array.copy b.Mlc_interp.Interp.data ]
         | _ -> [])
       spec.Builders.args rt_args)

(* --- entry points --- *)

let reg_kind_name = function
  | Reg.Int_kind -> "integer"
  | Reg.Float_kind -> "float"

(* One-line rendering of a diagnosed compile/run failure, for the
   degradation trail and the --json report. *)
let failure_summary = function
  | Mlc_ir.Pass.Pass_failed d | Mlc_diag.Diag.Diagnostic d ->
    Mlc_diag.Diag.summary d
  | Verifier.Verification_error m -> "verifier: " ^ m
  | Mlc_regalloc.Allocator.Out_of_registers k ->
    Printf.sprintf "regalloc: out of %s registers" (reg_kind_name k)
  | Mlc_regalloc.Remat.Still_out_of_registers k ->
    Printf.sprintf "regalloc: out of %s registers after rematerialisation"
      (reg_kind_name k)
  | Mlc_regalloc.Allocator.Allocation_conflict m -> "regalloc: " ^ m
  | Mlc_sim.Trap.Trap tr -> "simulator " ^ Mlc_sim.Trap.summary tr
  | exn -> Printexc.to_string exn

(* A failure is retryable at a lower rung when it is a *diagnosed*
   compiler or simulator fault — pass failure, verification failure,
   register-pool exhaustion, runtime trap. Anything else (harness bugs,
   Stdlib exceptions from user callbacks) propagates unchanged. *)
let retryable = function
  | Mlc_ir.Pass.Pass_failed _ | Mlc_diag.Diag.Diagnostic _
  | Verifier.Verification_error _
  | Mlc_regalloc.Allocator.Out_of_registers _
  | Mlc_regalloc.Allocator.Allocation_conflict _
  | Mlc_regalloc.Remat.Still_out_of_registers _
  | Mlc_sim.Trap.Trap _ ->
    true
  | _ -> false

(* Compile one freshly built module under one rung's flags: pass
   pipeline, register allocation, verification, emission. The single
   compile path for both the default and custom-allocator cases. *)
let compile_rung ~verify_each ~pipeline_of ~allocator ~bundle_ctx flags m :
    Mlc_transforms.Pipeline.result =
  Mlc_ir.Pass.run ~verify_each ~bundle_ctx m (pipeline_of flags);
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  let allocate =
    match allocator with
    | Some a -> a
    | None -> fun fn -> Mlc_regalloc.Remat.allocate_with_remat fn
  in
  let reports = List.map (fun fn -> (Rv_func.name fn, allocate fn)) fns in
  if verify_each then Verifier.verify m;
  let stats = List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns in
  { Mlc_transforms.Pipeline.asm = Asm_emit.emit_module m; reports; stats }

(* Compile and run a linalg-level kernel with the given pipeline flags,
   validating against the interpreter.

   On a diagnosed failure the runner degrades along
   {!Mlc_transforms.Pipeline.fallback_lattice} (disable with
   [~fallback:false]), rebuilding the module from the spec at each rung
   so a successful rung's result is bit-identical to compiling that
   configuration directly; the trail is reported in [degradation].
   [pipeline_of] substitutes the pass list a flag set induces (fault
   injection in tests); [crash_ctx] threads the replay command recorded
   in crash bundles. *)
let run ?(flags = Mlc_transforms.Pipeline.ours) ?(seed = 42)
    ?(verify_each = true) ?(trace = false) ?(sim_path = Direct)
    ?(engine = Fast) ?allocator ?(fallback = true)
    ?(pipeline_of = Mlc_transforms.Pipeline.passes) ?crash_ctx
    ?(cache = true) (spec : Builders.spec) : run_result =
  let data = gen_inputs ~seed ~elem:spec.Builders.elem spec.Builders.args in
  let expected = interp_expected spec data in
  (* Artifact-cache gate: only the default compile qualifies — a custom
     allocator or substituted pass list changes the artifact without
     changing the key, and tracing needs the program's own source lines,
     which differ between the Direct and Via_text constructions. *)
  let use_cache =
    cache && allocator = None
    && pipeline_of == Mlc_transforms.Pipeline.passes
    && not trace
  in
  let rungs =
    let l = Mlc_transforms.Pipeline.fallback_lattice flags in
    if fallback then l else [ List.hd l ]
  in
  let describe rung rflags =
    Printf.sprintf "%s (%s)" rung
      (Mlc_transforms.Pipeline.describe_flags rflags)
  in
  let attempt rung rflags =
    let m = spec.Builders.build () in
    let bundle_ctx =
      match crash_ctx with
      | Some c ->
        { c with Mlc_diag.Crash_bundle.flags = Some (describe rung rflags) }
      | None ->
        {
          Mlc_diag.Crash_bundle.flags = Some (describe rung rflags);
          replay = None;
        }
    in
    let compiled, program =
      match
        if use_cache then Compile_cache.lookup ~flags:rflags m else `Miss ""
      with
      | `Hit compiled ->
        (* Cached artifacts are lint-clean by construction (see the
           store below), and the direct and print→parse programs are
           equal (registry-wide equivalence test), so reconstructing
           from the cached assembly is bit-identical to recompiling. *)
        ( compiled,
          Mlc_sim.Program.of_asm
            (Mlc_sim.Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm) )
      | `Miss key ->
        let compiled =
          compile_rung ~verify_each ~pipeline_of ~allocator ~bundle_ctx rflags m
        in
        let program =
          match sim_path with
          | Direct -> Insn_emit.emit_module m
          | Via_text ->
            Mlc_sim.Program.of_asm
              (Mlc_sim.Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm)
        in
        (* Mandatory post-emission lint: an error-severity finding is a
           diagnosed compile failure and engages the fallback lattice. *)
        (match
           Mlc_analysis.Lint.error_of (Mlc_analysis.Lint.check_program program)
         with
        | Some d ->
          let d =
            match Mlc_diag.Crash_bundle.write ~ctx:bundle_ctx d with
            | Some path -> Mlc_diag.Diag.add_note d ("crash bundle: " ^ path)
            | None -> d
          in
          raise (Mlc_diag.Diag.Diagnostic d)
        | None -> ());
        if use_cache then Compile_cache.store ~key compiled;
        (compiled, program)
    in
    let metrics, outputs, trace_lines =
      simulate_program ~trace ~engine ~elem:spec.Builders.elem
        ~fn_name:spec.Builders.fn_name ~args:spec.Builders.args ~data program
    in
    (compiled, metrics, outputs, trace_lines)
  in
  let rec try_rungs attempts = function
    | [] ->
      (* Every rung failed with a diagnosed error: raise one structured
         diagnostic carrying the whole trail. *)
      let d =
        Mlc_diag.Diag.make ~component:"runner"
          ~notes:
            (List.rev_map
               (fun (r, e) -> Printf.sprintf "rung %s failed: %s" r e)
               attempts)
          (Printf.sprintf "kernel %s failed at every fallback rung"
             spec.Builders.fn_name)
      in
      (match Mlc_diag.Crash_bundle.write ?ctx:crash_ctx d with
      | Some path ->
        raise
          (Mlc_diag.Diag.Diagnostic
             (Mlc_diag.Diag.add_note d ("crash bundle: " ^ path)))
      | None -> raise (Mlc_diag.Diag.Diagnostic d))
    | (rung, rflags) :: rest -> (
      match attempt rung rflags with
      | compiled, metrics, outputs, trace_lines ->
        let degradation =
          match attempts with
          | [] -> None
          | _ -> Some { rung; attempts = List.rev attempts }
        in
        {
          asm = compiled.Mlc_transforms.Pipeline.asm;
          metrics;
          outputs;
          expected;
          max_abs_err = max_abs_err outputs expected;
          report =
            List.assoc_opt spec.Builders.fn_name
              compiled.Mlc_transforms.Pipeline.reports;
          stats =
            List.assoc_opt spec.Builders.fn_name
              compiled.Mlc_transforms.Pipeline.stats;
          trace = trace_lines;
          degradation;
        }
      | exception exn when retryable exn ->
        let bt = Printexc.get_raw_backtrace () in
        if rest = [] && attempts = [] then
          (* Single-rung runs (fallback disabled, or already at the
             bottom) propagate the original failure unchanged. *)
          Printexc.raise_with_backtrace exn bt
        else try_rungs ((rung, failure_summary exn) :: attempts) rest)
  in
  try_rungs [] rungs

(* Compile (allocate + emit) a handwritten assembly-level kernel and run
   it, validating against its native reference. *)
let run_lowlevel ?(seed = 42) ?(verify_each = true) ?(sim_path = Direct)
    ?(engine = Fast) (spec : Lowlevel.spec) : run_result =
  let data = gen_inputs ~seed ~elem:spec.Lowlevel.elem spec.Lowlevel.args in
  (* Reference mutates output arrays in place over a private copy. *)
  let ref_data = List.map Array.copy data in
  spec.Lowlevel.reference ref_data;
  let expected =
    List.concat
      (List.map2
         (fun arg_spec buf ->
           match arg_spec with Builders.Buf_out _ -> [ buf ] | _ -> [])
         spec.Lowlevel.args ref_data)
  in
  let m = spec.Lowlevel.build () in
  if verify_each then Verifier.verify m;
  Mlc_ir.Pass.run ~verify_each m
    [
      Mlc_transforms.Lower_snitch_stream.pass;
      Mlc_transforms.Rv_canonicalize.pass;
      Mlc_transforms.Legalize_stream_writes.pass;
    ];
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  let reports =
    List.map
      (fun fn -> (Rv_func.name fn, Mlc_regalloc.Remat.allocate_with_remat fn))
      fns
  in
  if verify_each then Verifier.verify m;
  let asm = Asm_emit.emit_module m in
  let stats = List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns in
  let program =
    match sim_path with
    | Direct -> Insn_emit.emit_module m
    | Via_text -> Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm)
  in
  (match Mlc_analysis.Lint.error_of (Mlc_analysis.Lint.check_program program)
   with
  | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
  | None -> ());
  let metrics, outputs, trace_lines =
    simulate_program ~engine ~elem:spec.Lowlevel.elem
      ~fn_name:spec.Lowlevel.fn_name ~args:spec.Lowlevel.args ~data program
  in
  {
    asm;
    metrics;
    outputs;
    expected;
    max_abs_err = max_abs_err outputs expected;
    report = List.assoc_opt spec.Lowlevel.fn_name reports;
    stats = List.assoc_opt spec.Lowlevel.fn_name stats;
    trace = trace_lines;
    degradation = None;
  }
