(* The end-to-end harness: compile a kernel, execute it on the Snitch
   simulator against deterministic random inputs, validate the outputs
   against the reference interpreter (high-level kernels) or a native
   reference (handwritten kernels), and report the paper's metrics
   (cycles, FPU utilisation, FLOPs/cycle — §4.1). *)

open Mlc_ir
open Mlc_kernels
open Mlc_riscv

exception Run_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Run_error m)) fmt

type metrics = {
  cycles : int;
  fpu_util : float; (* percent *)
  flops_per_cycle : float;
  loads : int;
  stores : int;
  freps : int;
  flop_count : int; (* FLOPs the simulator observed *)
  retired : int; (* dynamic instructions retired *)
}

(* How the compiled module reaches the simulator: [Direct] lowers
   allocated IR straight to a pre-decoded program (Insn_emit, the
   production path); [Via_text] prints assembly and re-parses it (the
   legacy round-trip, kept as the cross-check and debug format). The two
   produce equal programs — enforced by the registry-wide equivalence
   test. *)
type sim_path = Direct | Via_text

(* Which simulation engine executes the program: the fast pre-decoded
   engine or the reference per-instruction loop (the timing oracle). Both
   produce bit-identical performance counters. *)
type engine = Fast | Reference

type run_result = {
  asm : string;
  metrics : metrics;
  outputs : float array list; (* simulator outputs, arg order *)
  expected : float array list; (* reference outputs, arg order *)
  max_abs_err : float;
  report : Mlc_regalloc.Allocator.report option;
  stats : Asm_emit.stats option;
  trace : string list; (* per-instruction issue trace when requested *)
}

(* Deterministic input generation (the paper uses random input sets with
   precomputed outputs, §A.2). *)
let gen_inputs ~seed ~elem (args : Builders.arg_spec list) =
  let st = Random.State.make [| seed; 0x5eed |] in
  let round v =
    match elem with
    | Ty.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
    | _ -> v
  in
  List.map
    (fun spec ->
      match spec with
      | Builders.Buf_in shape ->
        Array.init (Ty.num_elements shape) (fun _ ->
            round (Random.State.float st 2.0 -. 1.0))
      | Builders.Buf_out shape -> Array.make (Ty.num_elements shape) 0.0
      | Builders.Scalar_float _ -> [||])
    args

let max_abs_err a b =
  List.fold_left2
    (fun acc xs ys ->
      if Array.length xs <> Array.length ys then err "output size mismatch";
      Array.fold_left max acc
        (Array.mapi (fun i x -> Float.abs (x -. ys.(i))) xs))
    0.0 a b

(* --- simulator-side setup --- *)

(* Load buffers into the TCDM and set up the ABI argument registers
   (pointers in a0.., scalars in fa0.., matching Rv_func.func). *)
let setup_machine ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (data : float array list) =
  let arena = Mlc_sim.Mem.arena machine.Mlc_sim.Machine.mem in
  let esz = Ty.byte_width elem in
  let next_int = ref 0 and next_float = ref 0 in
  let addrs =
    List.map2
      (fun spec buf ->
        match spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let total = Ty.num_elements shape in
          let addr = Mlc_sim.Mem.alloc arena (total * esz) in
          (* Only inputs are materialised; output buffers keep the
             arena's poison fill, so an element the kernel fails to
             store reads back loud garbage instead of the zeros the
             reference interpreter starts from. *)
          (match spec with
          | Builders.Buf_out _ -> ()
          | _ ->
            Array.iteri
              (fun i v ->
                if esz = 4 then
                  Mlc_sim.Mem.store_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4)) v
                else
                  Mlc_sim.Mem.store_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)) v)
              buf);
          let reg = 10 + !next_int (* a0 = x10 *) in
          incr next_int;
          Mlc_sim.Machine.set_ireg machine reg (Int64.of_int addr);
          Some addr
        | Builders.Scalar_float v ->
          let reg = 10 + !next_float (* fa0 = f10 *) in
          incr next_float;
          let bits =
            match elem with
            | Ty.F32 ->
              (* packed: both lanes carry the scalar *)
              let b = Int64.of_int32 (Int32.bits_of_float v) in
              Int64.logor (Int64.logand b 0xFFFFFFFFL) (Int64.shift_left b 32)
            | _ -> Int64.bits_of_float v
          in
          Mlc_sim.Machine.set_freg machine reg bits;
          None)
      args data
  in
  addrs

let read_back ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (addrs : int option list) =
  let esz = Ty.byte_width elem in
  List.concat
    (List.map2
       (fun spec addr ->
         match (spec, addr) with
         | Builders.Buf_out shape, Some addr ->
           [
             Array.init (Ty.num_elements shape) (fun i ->
                 if esz = 4 then
                   Mlc_sim.Mem.load_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4))
                 else
                   Mlc_sim.Mem.load_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)));
           ]
         | _ -> [])
       args addrs)

let metrics_of (perf : Mlc_sim.Machine.perf) =
  {
    cycles = perf.Mlc_sim.Machine.cycles;
    fpu_util = Mlc_sim.Machine.utilization perf;
    flops_per_cycle = Mlc_sim.Machine.throughput perf;
    loads = perf.Mlc_sim.Machine.loads;
    stores = perf.Mlc_sim.Machine.stores;
    freps = perf.Mlc_sim.Machine.freps;
    flop_count = perf.Mlc_sim.Machine.flops;
    retired = perf.Mlc_sim.Machine.retired;
  }

let simulate_program ?(trace = false) ?(engine = Fast) ~elem ~fn_name ~args
    ~data program =
  let machine = Mlc_sim.Machine.create ~trace () in
  let addrs = setup_machine ~elem machine args data in
  let run =
    match engine with
    | Fast -> Mlc_sim.Machine.run
    | Reference -> Mlc_sim.Machine.run_reference
  in
  let outcome = run machine program ~entry:fn_name in
  let outputs = read_back ~elem machine args addrs in
  (metrics_of outcome.Mlc_sim.Machine.perf, outputs, Mlc_sim.Machine.trace machine)

let simulate ?(trace = false) ?(engine = Fast) ~elem ~fn_name ~args ~data asm =
  let program = Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm) in
  simulate_program ~trace ~engine ~elem ~fn_name ~args ~data program

(* --- expected outputs through the interpreter --- *)

let interp_expected (spec : Builders.spec) (data : float array list) =
  let m = spec.Builders.build () in
  Verifier.verify m;
  let rt_args =
    List.map2
      (fun arg_spec buf ->
        match arg_spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let b = Mlc_interp.Interp.buffer_create shape spec.Builders.elem in
          Array.blit buf 0 b.Mlc_interp.Interp.data 0 (Array.length buf);
          Mlc_interp.Interp.Buf b
        | Builders.Scalar_float v -> Mlc_interp.Interp.F v)
      spec.Builders.args data
  in
  Mlc_interp.Interp.run_func m spec.Builders.fn_name rt_args;
  List.concat
    (List.map2
       (fun arg_spec rt ->
         match (arg_spec, rt) with
         | Builders.Buf_out _, Mlc_interp.Interp.Buf b ->
           [ Array.copy b.Mlc_interp.Interp.data ]
         | _ -> [])
       spec.Builders.args rt_args)

(* --- entry points --- *)

(* Compile and run a linalg-level kernel with the given pipeline flags,
   validating against the interpreter. *)
let run ?(flags = Mlc_transforms.Pipeline.ours) ?(seed = 42)
    ?(verify_each = true) ?(trace = false) ?(sim_path = Direct)
    ?(engine = Fast) ?allocator (spec : Builders.spec) : run_result =
  let data = gen_inputs ~seed ~elem:spec.Builders.elem spec.Builders.args in
  let expected = interp_expected spec data in
  let m = spec.Builders.build () in
  let compiled =
    match allocator with
    | None -> Mlc_transforms.Pipeline.compile ~flags ~verify_each m
    | Some allocate ->
      (* Same pass pipeline, custom register allocation (e.g. the
         classical linear-scan comparator). *)
      Mlc_ir.Pass.run ~verify_each m (Mlc_transforms.Pipeline.passes flags);
      let fns =
        Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op)
      in
      let reports =
        List.map (fun fn -> (Rv_func.name fn, allocate fn)) fns
      in
      let stats =
        List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns
      in
      {
        Mlc_transforms.Pipeline.asm = Asm_emit.emit_module m;
        reports;
        stats;
      }
  in
  let program =
    match sim_path with
    | Direct -> Insn_emit.emit_module m
    | Via_text ->
      Mlc_sim.Program.of_asm
        (Mlc_sim.Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm)
  in
  let metrics, outputs, trace_lines =
    simulate_program ~trace ~engine ~elem:spec.Builders.elem
      ~fn_name:spec.Builders.fn_name ~args:spec.Builders.args ~data program
  in
  {
    asm = compiled.Mlc_transforms.Pipeline.asm;
    metrics;
    outputs;
    expected;
    max_abs_err = max_abs_err outputs expected;
    report = List.assoc_opt spec.Builders.fn_name compiled.Mlc_transforms.Pipeline.reports;
    stats = List.assoc_opt spec.Builders.fn_name compiled.Mlc_transforms.Pipeline.stats;
    trace = trace_lines;
  }

(* Compile (allocate + emit) a handwritten assembly-level kernel and run
   it, validating against its native reference. *)
let run_lowlevel ?(seed = 42) ?(verify_each = true) ?(sim_path = Direct)
    ?(engine = Fast) (spec : Lowlevel.spec) : run_result =
  let data = gen_inputs ~seed ~elem:spec.Lowlevel.elem spec.Lowlevel.args in
  (* Reference mutates output arrays in place over a private copy. *)
  let ref_data = List.map Array.copy data in
  spec.Lowlevel.reference ref_data;
  let expected =
    List.concat
      (List.map2
         (fun arg_spec buf ->
           match arg_spec with Builders.Buf_out _ -> [ buf ] | _ -> [])
         spec.Lowlevel.args ref_data)
  in
  let m = spec.Lowlevel.build () in
  if verify_each then Verifier.verify m;
  Mlc_ir.Pass.run ~verify_each m
    [
      Mlc_transforms.Lower_snitch_stream.pass;
      Mlc_transforms.Rv_canonicalize.pass;
      Mlc_transforms.Legalize_stream_writes.pass;
    ];
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  let reports =
    List.map
      (fun fn -> (Rv_func.name fn, Mlc_regalloc.Remat.allocate_with_remat fn))
      fns
  in
  if verify_each then Verifier.verify m;
  let asm = Asm_emit.emit_module m in
  let stats = List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns in
  let program =
    match sim_path with
    | Direct -> Insn_emit.emit_module m
    | Via_text -> Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm)
  in
  let metrics, outputs, trace_lines =
    simulate_program ~engine ~elem:spec.Lowlevel.elem
      ~fn_name:spec.Lowlevel.fn_name ~args:spec.Lowlevel.args ~data program
  in
  {
    asm;
    metrics;
    outputs;
    expected;
    max_abs_err = max_abs_err outputs expected;
    report = List.assoc_opt spec.Lowlevel.fn_name reports;
    stats = List.assoc_opt spec.Lowlevel.fn_name stats;
    trace = trace_lines;
  }
