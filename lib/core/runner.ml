(* The end-to-end harness: compile a kernel, execute it on the Snitch
   simulator against deterministic random inputs, validate the outputs
   against the reference interpreter (high-level kernels) or a native
   reference (handwritten kernels), and report the paper's metrics
   (cycles, FPU utilisation, FLOPs/cycle — §4.1). *)

open Mlc_ir
open Mlc_kernels
open Mlc_riscv

exception Run_error of string

let err fmt = Printf.ksprintf (fun m -> raise (Run_error m)) fmt

type metrics = {
  cycles : int;
  fpu_util : float; (* percent *)
  flops_per_cycle : float;
  loads : int;
  stores : int;
  freps : int;
  flop_count : int; (* FLOPs the simulator observed *)
  retired : int; (* dynamic instructions retired *)
}

(* How the compiled module reaches the simulator: [Direct] lowers
   allocated IR straight to a pre-decoded program (Insn_emit, the
   production path); [Via_text] prints assembly and re-parses it (the
   legacy round-trip, kept as the cross-check and debug format). The two
   produce equal programs — enforced by the registry-wide equivalence
   test. *)
type sim_path = Direct | Via_text

(* Which simulation engine executes the program: the block-fused engine
   (default), the per-instruction fast path, or the reference
   per-instruction loop (the timing oracle). All three produce
   bit-identical performance counters. *)
type engine = Fast | Per_insn | Reference

(* --- host-side phase attribution ---

   Wall-clock totals for the three phases a benchmark rep spends its
   time in: [compile] (pass pipeline + register allocation + emission +
   lint), [load] (program construction: direct emission, assembly
   parse, or the cached-program lookup), [sim] (machine setup,
   simulation, output readback).

   Attribution is *per domain*: [timed_phase] adds to a domain-local
   accumulator (no locking on the hot path, nothing dropped when pool
   workers race), each worker {!drain_phases}s its accumulator when its
   work item completes, and the caller {!commit_phases}s the drained
   deltas in its ordered commit loop — so totals (and the entry counts,
   which are wall-clock-free and therefore testably deterministic) are
   identical for any [-j], including [-j 1]. *)
type phase_totals = {
  load_s : float;
  compile_s : float;
  sim_s : float;
  load_n : int;  (** entries timed into [load_s] *)
  compile_n : int;  (** entries timed into [compile_s] *)
  sim_n : int;  (** entries timed into [sim_s] *)
}

let zero_phases =
  { load_s = 0.; compile_s = 0.; sim_s = 0.; load_n = 0; compile_n = 0; sim_n = 0 }

let add_phases a b =
  {
    load_s = a.load_s +. b.load_s;
    compile_s = a.compile_s +. b.compile_s;
    sim_s = a.sim_s +. b.sim_s;
    load_n = a.load_n + b.load_n;
    compile_n = a.compile_n + b.compile_n;
    sim_n = a.sim_n + b.sim_n;
  }

let sub_phases a b =
  {
    load_s = a.load_s -. b.load_s;
    compile_s = a.compile_s -. b.compile_s;
    sim_s = a.sim_s -. b.sim_s;
    load_n = a.load_n - b.load_n;
    compile_n = a.compile_n - b.compile_n;
    sim_n = a.sim_n - b.sim_n;
  }

type phase = Ph_load | Ph_compile | Ph_sim

(* The current domain's uncommitted accumulator. *)
let phase_key = Domain.DLS.new_key (fun () -> ref zero_phases)

(* Committed totals, across all domains that drained so far. *)
let phase_mu = Mutex.create ()
let phase_committed = ref zero_phases

let drain_phases () =
  let a = Domain.DLS.get phase_key in
  let d = !a in
  a := zero_phases;
  d

let commit_phases d =
  Mutex.lock phase_mu;
  phase_committed := add_phases !phase_committed d;
  Mutex.unlock phase_mu

let reset_phases () =
  ignore (drain_phases ());
  Mutex.lock phase_mu;
  phase_committed := zero_phases;
  Mutex.unlock phase_mu

(* Commits the calling domain's own residue first, so single-domain
   flows never need to drain explicitly. Pool workers' uncommitted
   residue is invisible here — drivers drain in the worker and commit
   in their ordered tally loop. *)
let phases () =
  commit_phases (drain_phases ());
  Mutex.lock phase_mu;
  let r = !phase_committed in
  Mutex.unlock phase_mu;
  r

(* Run [f], adding its wall time to the current domain's [cell]
   accumulator even when it raises (a failed compile is still compile
   time). *)
let timed_phase cell f =
  let t0 = Unix.gettimeofday () in
  let add () =
    let dt = Unix.gettimeofday () -. t0 in
    let a = Domain.DLS.get phase_key in
    a :=
      (match cell with
      | Ph_load ->
        { !a with load_s = !a.load_s +. dt; load_n = !a.load_n + 1 }
      | Ph_compile ->
        { !a with compile_s = !a.compile_s +. dt; compile_n = !a.compile_n + 1 }
      | Ph_sim -> { !a with sim_s = !a.sim_s +. dt; sim_n = !a.sim_n + 1 })
  in
  match f () with
  | v ->
    add ();
    v
  | exception exn ->
    let bt = Printexc.get_raw_backtrace () in
    add ();
    Printexc.raise_with_backtrace exn bt

(* Graceful degradation: when a rung of the fallback lattice fails with
   a diagnosed error, the next rung is tried on a freshly built module;
   [rung] is the config that finally succeeded and [attempts] the
   (rung, error summary) trail of the failed ones. *)
type degradation = { rung : string; attempts : (string * string) list }

type run_result = {
  asm : string;
  metrics : metrics;
  outputs : float array list; (* simulator outputs, arg order *)
  expected : float array list; (* reference outputs, arg order *)
  max_abs_err : float;
  report : Mlc_regalloc.Allocator.report option;
  stats : Asm_emit.stats option;
  trace : string list; (* per-instruction issue trace when requested *)
  degradation : degradation option; (* None: succeeded at the requested rung *)
}

(* Deterministic input generation (the paper uses random input sets with
   precomputed outputs, §A.2). *)
let gen_inputs ~seed ~elem (args : Builders.arg_spec list) =
  let st = Random.State.make [| seed; 0x5eed |] in
  let round v =
    match elem with
    | Ty.F32 -> Int32.float_of_bits (Int32.bits_of_float v)
    | _ -> v
  in
  List.map
    (fun spec ->
      match spec with
      | Builders.Buf_in shape ->
        Array.init (Ty.num_elements shape) (fun _ ->
            round (Random.State.float st 2.0 -. 1.0))
      | Builders.Buf_out shape -> Array.make (Ty.num_elements shape) 0.0
      | Builders.Scalar_float _ -> [||])
    args

let max_abs_err a b =
  List.fold_left2
    (fun acc xs ys ->
      if Array.length xs <> Array.length ys then err "output size mismatch";
      Array.fold_left max acc
        (Array.mapi (fun i x -> Float.abs (x -. ys.(i))) xs))
    0.0 a b

(* --- simulator-side setup --- *)

(* Load buffers into the TCDM and set up the ABI argument registers
   (pointers in a0.., scalars in fa0.., matching Rv_func.func). *)
let setup_machine ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (data : float array list) =
  let arena = Mlc_sim.Mem.arena machine.Mlc_sim.Machine.mem in
  let esz = Ty.byte_width elem in
  let next_int = ref 0 and next_float = ref 0 in
  let addrs =
    List.map2
      (fun spec buf ->
        match spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let total = Ty.num_elements shape in
          let addr = Mlc_sim.Mem.alloc arena (total * esz) in
          (* Only inputs are materialised; output buffers keep the
             arena's poison fill, so an element the kernel fails to
             store reads back loud garbage instead of the zeros the
             reference interpreter starts from. *)
          (match spec with
          | Builders.Buf_out _ -> ()
          | _ ->
            Array.iteri
              (fun i v ->
                if esz = 4 then
                  Mlc_sim.Mem.store_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4)) v
                else
                  Mlc_sim.Mem.store_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)) v)
              buf);
          let reg = 10 + !next_int (* a0 = x10 *) in
          incr next_int;
          Mlc_sim.Machine.set_ireg machine reg (Int64.of_int addr);
          Some addr
        | Builders.Scalar_float v ->
          let reg = 10 + !next_float (* fa0 = f10 *) in
          incr next_float;
          let bits =
            match elem with
            | Ty.F32 ->
              (* packed: both lanes carry the scalar *)
              let b = Int64.of_int32 (Int32.bits_of_float v) in
              Int64.logor (Int64.logand b 0xFFFFFFFFL) (Int64.shift_left b 32)
            | _ -> Int64.bits_of_float v
          in
          Mlc_sim.Machine.set_freg machine reg bits;
          None)
      args data
  in
  addrs

let read_back ~elem (machine : Mlc_sim.Machine.t) (args : Builders.arg_spec list)
    (addrs : int option list) =
  let esz = Ty.byte_width elem in
  List.concat
    (List.map2
       (fun spec addr ->
         match (spec, addr) with
         | Builders.Buf_out shape, Some addr ->
           [
             Array.init (Ty.num_elements shape) (fun i ->
                 if esz = 4 then
                   Mlc_sim.Mem.load_f32 machine.Mlc_sim.Machine.mem (addr + (i * 4))
                 else
                   Mlc_sim.Mem.load_f64 machine.Mlc_sim.Machine.mem (addr + (i * 8)));
           ]
         | _ -> [])
       args addrs)

let metrics_of (perf : Mlc_sim.Machine.perf) =
  {
    cycles = perf.Mlc_sim.Machine.cycles;
    fpu_util = Mlc_sim.Machine.utilization perf;
    flops_per_cycle = Mlc_sim.Machine.throughput perf;
    loads = perf.Mlc_sim.Machine.loads;
    stores = perf.Mlc_sim.Machine.stores;
    freps = perf.Mlc_sim.Machine.freps;
    flop_count = perf.Mlc_sim.Machine.flops;
    retired = perf.Mlc_sim.Machine.retired;
  }

let simulate_program ?(trace = false) ?(engine = Fast) ?fuel ~elem ~fn_name
    ~args ~data program =
  timed_phase Ph_sim (fun () ->
      let machine = Mlc_sim.Machine.create ?fuel ~trace () in
      let addrs = setup_machine ~elem machine args data in
      let run =
        match engine with
        | Fast -> Mlc_sim.Block_exec.run
        | Per_insn -> Mlc_sim.Machine.run
        | Reference -> Mlc_sim.Machine.run_reference
      in
      let outcome = run machine program ~entry:fn_name in
      let outputs = read_back ~elem machine args addrs in
      ( metrics_of outcome.Mlc_sim.Machine.perf,
        outputs,
        Mlc_sim.Machine.trace machine ))

let simulate ?(trace = false) ?(engine = Fast) ?fuel ~elem ~fn_name ~args ~data
    asm =
  let program =
    timed_phase Ph_load (fun () ->
        Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm))
  in
  simulate_program ~trace ~engine ?fuel ~elem ~fn_name ~args ~data program

(* --- expected outputs through the interpreter --- *)

let interp_expected (spec : Builders.spec) (data : float array list) =
  let m = spec.Builders.build () in
  Verifier.verify m;
  let rt_args =
    List.map2
      (fun arg_spec buf ->
        match arg_spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let b = Mlc_interp.Interp.buffer_create shape spec.Builders.elem in
          Array.blit buf 0 b.Mlc_interp.Interp.data 0 (Array.length buf);
          Mlc_interp.Interp.Buf b
        | Builders.Scalar_float v -> Mlc_interp.Interp.F v)
      spec.Builders.args data
  in
  Mlc_interp.Interp.run_func m spec.Builders.fn_name rt_args;
  List.concat
    (List.map2
       (fun arg_spec rt ->
         match (arg_spec, rt) with
         | Builders.Buf_out _, Mlc_interp.Interp.Buf b ->
           [ Array.copy b.Mlc_interp.Interp.data ]
         | _ -> [])
       spec.Builders.args rt_args)

(* Expected-output memo: repeated runs of the same kernel at the same
   seed (benchmark reps, warm CI runs) re-derive identical reference
   outputs through the interpreter — by far the most expensive part of
   a warm, compile-cached rep. Keyed by the digest of the generic IR
   text (which fixes the kernel's semantics and argument signature)
   plus the input seed; only cache-eligible runs consult it, so the key
   is always available. Stored values are private copies; hits return
   fresh copies so callers may mutate their [expected] freely. *)
(* Printing the generic module is pure cache-key computation on a warm
   run (the module itself is untouched on a hit); memoize the text by
   the spec's physical identity — the bench and property harnesses
   reuse one spec value across reps. Specs are immutable and [build] is
   deterministic, so identity implies identical text. Bounded LRU-ish
   list, compared with [==]. *)
let ir_memo_mu = Mutex.create ()
let ir_memo : (Obj.t * string) list ref = ref []
let ir_memo_cap = 64

let ir_text_for (spec : Builders.spec) render =
  let key = Obj.repr spec in
  let found =
    Mutex.lock ir_memo_mu;
    let r = List.find_opt (fun (k, _) -> k == key) !ir_memo in
    Mutex.unlock ir_memo_mu;
    r
  in
  match found with
  | Some (_, txt) -> txt
  | None ->
    let txt = render () in
    Mutex.lock ir_memo_mu;
    (let keep =
       if List.length !ir_memo >= ir_memo_cap then
         List.filteri (fun i _ -> i < ir_memo_cap - 1) !ir_memo
       else !ir_memo
     in
     ir_memo := (key, txt) :: keep);
    Mutex.unlock ir_memo_mu;
    txt

let expected_mu = Mutex.create ()
let expected_memo : (string, float array list) Hashtbl.t = Hashtbl.create 64

let interp_expected_memo ~memo_key spec data =
  let found =
    Mutex.lock expected_mu;
    let r = Hashtbl.find_opt expected_memo memo_key in
    Mutex.unlock expected_mu;
    r
  in
  match found with
  | Some e -> List.map Array.copy e
  | None ->
    let e = interp_expected spec data in
    Mutex.lock expected_mu;
    Hashtbl.replace expected_memo memo_key (List.map Array.copy e);
    Mutex.unlock expected_mu;
    e

(* --- entry points --- *)

let reg_kind_name = function
  | Reg.Int_kind -> "integer"
  | Reg.Float_kind -> "float"

(* One-line rendering of a diagnosed compile/run failure, for the
   degradation trail and the --json report. *)
let failure_summary = function
  | Mlc_ir.Pass.Pass_failed d | Mlc_diag.Diag.Diagnostic d ->
    Mlc_diag.Diag.summary d
  | Verifier.Verification_error m -> "verifier: " ^ m
  | Mlc_regalloc.Allocator.Out_of_registers k ->
    Printf.sprintf "regalloc: out of %s registers" (reg_kind_name k)
  | Mlc_regalloc.Remat.Still_out_of_registers k ->
    Printf.sprintf "regalloc: out of %s registers after rematerialisation"
      (reg_kind_name k)
  | Mlc_regalloc.Allocator.Allocation_conflict m -> "regalloc: " ^ m
  | Mlc_sim.Trap.Trap tr -> "simulator " ^ Mlc_sim.Trap.summary tr
  | exn -> Printexc.to_string exn

(* A failure is retryable at a lower rung when it is a *diagnosed*
   compiler or simulator fault — pass failure, verification failure,
   register-pool exhaustion, runtime trap. Anything else (harness bugs,
   Stdlib exceptions from user callbacks) propagates unchanged. *)
let retryable = function
  | Mlc_ir.Pass.Pass_failed _ | Mlc_diag.Diag.Diagnostic _
  | Verifier.Verification_error _
  | Mlc_regalloc.Allocator.Out_of_registers _
  | Mlc_regalloc.Allocator.Allocation_conflict _
  | Mlc_regalloc.Remat.Still_out_of_registers _
  | Mlc_sim.Trap.Trap _ ->
    true
  | _ -> false

(* Compile one freshly built module under one rung's flags: pass
   pipeline (with the Mlc_verify bounds/race checkpoint armed after
   every pass), register allocation, verification, emission. The single
   compile path for both the default and custom-allocator cases. *)
let compile_rung ~verify_each ~pipeline_of ~allocator ~bundle_ctx flags m :
    Mlc_transforms.Pipeline.result =
  let checkpoint =
    if verify_each then Some Mlc_verify.Verify.checkpoint else None
  in
  Mlc_ir.Pass.run ~verify_each ~bundle_ctx ?checkpoint m (pipeline_of flags);
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  let allocate =
    match allocator with
    | Some a -> a
    | None -> fun fn -> Mlc_regalloc.Remat.allocate_with_remat fn
  in
  let reports = List.map (fun fn -> (Rv_func.name fn, allocate fn)) fns in
  if verify_each then Verifier.verify m;
  let stats = List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns in
  { Mlc_transforms.Pipeline.asm = Asm_emit.emit_module m; reports; stats }

(* Compile and run a linalg-level kernel with the given pipeline flags,
   validating against the interpreter.

   On a diagnosed failure the runner degrades along
   {!Mlc_transforms.Pipeline.fallback_lattice} (disable with
   [~fallback:false]), rebuilding the module from the spec at each rung
   so a successful rung's result is bit-identical to compiling that
   configuration directly; the trail is reported in [degradation].
   [pipeline_of] substitutes the pass list a flag set induces (fault
   injection in tests); [crash_ctx] threads the replay command recorded
   in crash bundles. *)
let run ?(flags = Mlc_transforms.Pipeline.ours) ?(seed = 42)
    ?(verify_each = true) ?(trace = false) ?(sim_path = Direct)
    ?(engine = Fast) ?allocator ?(fallback = true)
    ?(pipeline_of = Mlc_transforms.Pipeline.passes) ?crash_ctx
    ?(cache = true) ?(on_phase = fun (_ : string) -> ()) ?fuel
    ?(backend = Mlc_transforms.Backend.snitch) (spec : Builders.spec) :
    run_result =
  on_phase "expected";
  (* The backend's flag adjustment applies before everything else —
     including the fallback lattice, so degradation rungs are computed
     over configurations the target can actually compile. *)
  let flags = backend.Mlc_transforms.Backend.adjust_flags flags in
  let data = gen_inputs ~seed ~elem:spec.Builders.elem spec.Builders.args in
  (* Artifact-cache gate: only the default compile qualifies — a custom
     allocator or substituted pass list changes the artifact without
     changing the key, and tracing needs the program's own source lines,
     which differ between the Direct and Via_text constructions. (A
     non-Snitch backend still qualifies: its name is part of the cache
     key.) *)
  let use_cache =
    cache && allocator = None
    && pipeline_of == Mlc_transforms.Pipeline.passes
    && not trace
  in
  let pipeline_of =
    if backend.Mlc_transforms.Backend.name = Mlc_transforms.Backend.snitch.name
    then pipeline_of
    else fun f -> Mlc_transforms.Backend.passes_for backend f
  in
  (* Post-emission lint, restricted to the check classes meaningful for
     this backend's code (e.g. SSR/FREP discipline never fires on rvv
     programs). *)
  let lint_error program =
    Mlc_analysis.Lint.check_program program
    |> List.filter (fun (d : Mlc_diag.Diag.t) ->
           match d.Mlc_diag.Diag.pass with
           | Some c -> List.mem c backend.Mlc_transforms.Backend.lint_classes
           | None -> true)
    |> Mlc_analysis.Lint.error_of
  in
  (* Built at most once per run: the module serves the cache key
     (printed generic IR — memoized per spec, so a warm rep skips the
     build and the print entirely) and, on a miss, the first rung's
     compile — the pass pipeline mutates it, so later rungs rebuild
     from the spec. *)
  let m0 = lazy (spec.Builders.build ()) in
  let ir_text =
    if use_cache then
      Some
        (ir_text_for spec (fun () -> Mlc_ir.Printer.to_string (Lazy.force m0)))
    else None
  in
  let expected =
    match ir_text with
    | Some txt ->
      let memo_key =
        Digest.to_hex (Digest.string txt) ^ "/" ^ string_of_int seed
      in
      interp_expected_memo ~memo_key spec data
    | None -> interp_expected spec data
  in
  let rungs =
    let l = Mlc_transforms.Pipeline.fallback_lattice flags in
    if fallback then l else [ List.hd l ]
  in
  let describe rung rflags =
    Printf.sprintf "%s (%s)" rung
      (Mlc_transforms.Pipeline.describe_flags rflags)
  in
  let attempt ~first rung rflags =
    (* Cooperative-cancellation checkpoint: a serving layer's [on_phase]
       may raise here (deadline exceeded) — the exception is not
       [retryable], so it aborts the whole run rather than walking the
       lattice. Nothing partial is left behind: the compile cache only
       stores complete lint-clean artifacts, atomically. *)
    on_phase ("compile:" ^ rung);
    let bundle_ctx =
      match crash_ctx with
      | Some c ->
        { c with Mlc_diag.Crash_bundle.flags = Some (describe rung rflags) }
      | None ->
        {
          Mlc_diag.Crash_bundle.flags = Some (describe rung rflags);
          replay = None;
        }
    in
    let compiled, program =
      match
        match ir_text with
        | Some txt ->
          Compile_cache.lookup ~target:backend.Mlc_transforms.Backend.name
            ~flags:rflags ~ir_text:txt ()
        | None -> `Miss ""
      with
      | `Hit (key, compiled) ->
        (* Cached artifacts are lint-clean by construction (see the
           store below), and the direct and print→parse programs are
           equal (registry-wide equivalence test), so reconstructing
           from the cached assembly is bit-identical to recompiling —
           and the pre-decoded program itself is memoized per key, so a
           warm hit costs two table lookups, not a parse. *)
        ( compiled,
          timed_phase Ph_load (fun () -> Compile_cache.program_for ~key compiled)
        )
      | `Miss key ->
        (* The first attempt consumes the module already built for the
           cache key (still pristine: it was only printed); fallback
           rungs rebuild from the spec. *)
        let m = if first then Lazy.force m0 else spec.Builders.build () in
        let compiled =
          timed_phase Ph_compile (fun () ->
              compile_rung ~verify_each ~pipeline_of ~allocator ~bundle_ctx
                rflags m)
        in
        let program =
          timed_phase Ph_load (fun () ->
              match sim_path with
              | Direct -> Insn_emit.emit_module m
              | Via_text ->
                Mlc_sim.Program.of_asm
                  (Mlc_sim.Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm))
        in
        (* Mandatory post-emission lint: an error-severity finding is a
           diagnosed compile failure and engages the fallback lattice. *)
        (match lint_error program with
        | Some d ->
          let d =
            match Mlc_diag.Crash_bundle.write ~ctx:bundle_ctx d with
            | Some path -> Mlc_diag.Diag.add_note d ("crash bundle: " ^ path)
            | None -> d
          in
          raise (Mlc_diag.Diag.Diagnostic d)
        | None -> ());
        if use_cache then Compile_cache.store ~key compiled;
        (compiled, program)
    in
    on_phase ("sim:" ^ rung);
    let metrics, outputs, trace_lines =
      simulate_program ~trace ~engine ?fuel ~elem:spec.Builders.elem
        ~fn_name:spec.Builders.fn_name ~args:spec.Builders.args ~data program
    in
    (compiled, metrics, outputs, trace_lines)
  in
  let rec try_rungs attempts = function
    | [] ->
      (* Every rung failed with a diagnosed error: raise one structured
         diagnostic carrying the whole trail. *)
      let d =
        Mlc_diag.Diag.make ~component:"runner"
          ~notes:
            (List.rev_map
               (fun (r, e) -> Printf.sprintf "rung %s failed: %s" r e)
               attempts)
          (Printf.sprintf "kernel %s failed at every fallback rung"
             spec.Builders.fn_name)
      in
      (match Mlc_diag.Crash_bundle.write ?ctx:crash_ctx d with
      | Some path ->
        raise
          (Mlc_diag.Diag.Diagnostic
             (Mlc_diag.Diag.add_note d ("crash bundle: " ^ path)))
      | None -> raise (Mlc_diag.Diag.Diagnostic d))
    | (rung, rflags) :: rest -> (
      match attempt ~first:(attempts = []) rung rflags with
      | compiled, metrics, outputs, trace_lines ->
        let degradation =
          match attempts with
          | [] -> None
          | _ -> Some { rung; attempts = List.rev attempts }
        in
        {
          asm = compiled.Mlc_transforms.Pipeline.asm;
          metrics;
          outputs;
          expected;
          max_abs_err = max_abs_err outputs expected;
          report =
            List.assoc_opt spec.Builders.fn_name
              compiled.Mlc_transforms.Pipeline.reports;
          stats =
            List.assoc_opt spec.Builders.fn_name
              compiled.Mlc_transforms.Pipeline.stats;
          trace = trace_lines;
          degradation;
        }
      | exception exn when retryable exn ->
        let bt = Printexc.get_raw_backtrace () in
        if rest = [] && attempts = [] then
          (* Single-rung runs (fallback disabled, or already at the
             bottom) propagate the original failure unchanged. *)
          Printexc.raise_with_backtrace exn bt
        else try_rungs ((rung, failure_summary exn) :: attempts) rest)
  in
  try_rungs [] rungs

(* Compile (allocate + emit) a handwritten assembly-level kernel and run
   it, validating against its native reference. *)
let run_lowlevel ?(seed = 42) ?(verify_each = true) ?(sim_path = Direct)
    ?(engine = Fast) (spec : Lowlevel.spec) : run_result =
  let data = gen_inputs ~seed ~elem:spec.Lowlevel.elem spec.Lowlevel.args in
  (* Reference mutates output arrays in place over a private copy. *)
  let ref_data = List.map Array.copy data in
  spec.Lowlevel.reference ref_data;
  let expected =
    List.concat
      (List.map2
         (fun arg_spec buf ->
           match arg_spec with Builders.Buf_out _ -> [ buf ] | _ -> [])
         spec.Lowlevel.args ref_data)
  in
  let m = spec.Lowlevel.build () in
  let asm, reports, stats =
    timed_phase Ph_compile (fun () ->
        if verify_each then Verifier.verify m;
        Mlc_ir.Pass.run ~verify_each m
          [
            Mlc_transforms.Lower_snitch_stream.pass;
            Mlc_transforms.Rv_canonicalize.pass;
            Mlc_transforms.Legalize_stream_writes.pass;
          ];
        let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
        let reports =
          List.map
            (fun fn ->
              (Rv_func.name fn, Mlc_regalloc.Remat.allocate_with_remat fn))
            fns
        in
        if verify_each then Verifier.verify m;
        let asm = Asm_emit.emit_module m in
        let stats =
          List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns
        in
        (asm, reports, stats))
  in
  let program =
    timed_phase Ph_load (fun () ->
        match sim_path with
        | Direct -> Insn_emit.emit_module m
        | Via_text -> Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse asm))
  in
  (match Mlc_analysis.Lint.error_of (Mlc_analysis.Lint.check_program program)
   with
  | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
  | None -> ());
  let metrics, outputs, trace_lines =
    simulate_program ~engine ~elem:spec.Lowlevel.elem
      ~fn_name:spec.Lowlevel.fn_name ~args:spec.Lowlevel.args ~data program
  in
  {
    asm;
    metrics;
    outputs;
    expected;
    max_abs_err = max_abs_err outputs expected;
    report = List.assoc_opt spec.Lowlevel.fn_name reports;
    stats = List.assoc_opt spec.Lowlevel.fn_name stats;
    trace = trace_lines;
    degradation = None;
  }

(* --- multi-core cluster execution --- *)

(* Everything the cluster run reports beyond the single-core metrics:
   cluster geometry, the chosen staging mode, the lockstep schedule's
   outcome and per-core counters. *)
type cluster_result = {
  c_cores : int;  (* cluster size N (--cores) *)
  c_active : int;  (* cores that ran the kernel (T <= N) *)
  c_halves : int;  (* chunks per active core (2 = double-buffered) *)
  c_staged : bool;  (* DMA staging vs in-place pointers *)
  c_makespan : int;  (* slowest core's drain point, conflicts included *)
  c_epochs : int;  (* barrier-delimited lockstep rounds *)
  c_per_core : metrics array;  (* per-core performance counters *)
  c_conflicts : int array;  (* per-core bank-conflict cycles charged *)
  c_util : float array;  (* per-core FPU utilisation over the run, % *)
  c_dma_bytes : int array;  (* per-core bytes moved by the DMA engine *)
  c_outputs : float array list;
  c_expected : float array list;
  c_max_abs_err : float;
  c_asm : string;  (* the (single) compiled tile kernel *)
}

(* Mirror of [setup_machine]'s arena walk, without a machine: the
   address each buffer argument will get, and the first free byte after
   them, where the per-core scratch region starts. *)
let plan_addresses ~elem (args : Builders.arg_spec list) =
  let esz = Ty.byte_width elem in
  let next = ref Mlc_sim.Mem.tcdm_base in
  let addrs =
    List.map
      (fun spec ->
        match spec with
        | Builders.Buf_in shape | Builders.Buf_out shape ->
          let aligned = (!next + 7) / 8 * 8 in
          next := aligned + (Ty.num_elements shape * esz);
          Some aligned
        | Builders.Scalar_float _ -> None)
      args
  in
  (addrs, (!next + 7) / 8 * 8)

(* Compile and run a linalg-level kernel on an N-core cluster.

   The kernel is parallel-tiled ({!Mlc_transforms.Parallel_tile}: the
   output's leading parallel dimension is carved into contiguous row
   chunks), lowered to one per-chunk *tile function*
   ({!Mlc_transforms.Lower_forall}) that the standard pipeline — and
   compile cache — compiles exactly once, and spliced into per-core
   programs ({!Mlc_riscv.Cluster_wrap}) that DMA each core's chunks
   through private scratch (double-buffered when the chunk count
   allows), synchronising on the cluster barrier. {!Mlc_sim.Cluster}
   steps the cores in lockstep epochs over one shared TCDM image with
   per-bank contention accounting; [pool] parallelises the per-epoch
   stepping on the host with bit-identical results for any [-j].

   Raises {!Mlc_transforms.Parallel_tile.Not_partitionable} when the
   kernel cannot be row-partitioned (conv/pool window maps). *)
let run_cluster ?(flags = Mlc_transforms.Pipeline.ours) ?(seed = 42)
    ?(verify_each = true) ?(engine = Fast) ?(cache = true) ?pool ~cores
    (spec : Builders.spec) : cluster_result =
  if cores < 1 then err "cluster needs at least one core";
  if cores > 32 then err "cluster larger than 32 cores";
  let elem = spec.Builders.elem in
  let esz = Ty.byte_width elem in
  let data = gen_inputs ~seed ~elem spec.Builders.args in
  let expected = interp_expected spec data in
  (* Partition geometry from a throwaway build of the generic module. *)
  let plan0 =
    Mlc_transforms.Parallel_tile.plan_of ~cores
      (spec.Builders.build ())
      ~fn_name:spec.Builders.fn_name
  in
  let active = plan0.Mlc_transforms.Parallel_tile.threads in
  let rows = plan0.Mlc_transforms.Parallel_tile.rows in
  let partitioned = plan0.Mlc_transforms.Parallel_tile.partitioned in
  let rows_per_core = rows / active in
  (* Wrapper argument table: registers mirror [setup_machine]'s ABI
     walk (pointers a0.., scalars fa0..). *)
  let mk_args ~halves =
    let next_x = ref 10 and next_f = ref 10 in
    Array.of_list
      (List.mapi
         (fun i aspec ->
           match aspec with
           | Builders.Buf_in shape | Builders.Buf_out shape ->
             let reg = !next_x in
             incr next_x;
             let part = partitioned.(i) in
             let row_bytes = Ty.num_elements shape / List.hd shape * esz in
             {
               Mlc_riscv.Cluster_wrap.ap_reg = reg;
               ap_scalar = false;
               ap_partitioned = part;
               ap_input =
                 (part && match aspec with Builders.Buf_in _ -> true | _ -> false);
               ap_output =
                 (part && match aspec with Builders.Buf_out _ -> true | _ -> false);
               ap_rows_chunk = (if part then rows_per_core / halves else 0);
               ap_row_bytes = (if part then row_bytes else 0);
             }
           | Builders.Scalar_float _ ->
             let reg = !next_f in
             incr next_f;
             {
               Mlc_riscv.Cluster_wrap.ap_reg = reg;
               ap_scalar = true;
               ap_partitioned = false;
               ap_input = false;
               ap_output = false;
               ap_rows_chunk = 0;
               ap_row_bytes = 0;
             })
         spec.Builders.args)
  in
  (* Staging-mode choice: double-buffer when each core's rows split in
     two and the scratch fits; single-buffer staging next; in-place
     pointers (no scratch at all) as the always-fits floor. *)
  let planned_addrs, scratch_base = plan_addresses ~elem spec.Builders.args in
  let scratch_limit =
    Mlc_sim.Mem.tcdm_base + Mlc_sim.Mem.tcdm_size
    - (cores * Mlc_sim.Machine.stack_bytes)
  in
  let fits halves =
    let need = Mlc_riscv.Cluster_wrap.scratch_needed ~halves (mk_args ~halves) in
    scratch_base + (cores * need) <= scratch_limit
  in
  let halves, mode =
    if rows_per_core mod 2 = 0 && rows_per_core >= 2 && fits 2 then
      (2, Mlc_riscv.Cluster_wrap.Staged)
    else if fits 1 then (1, Mlc_riscv.Cluster_wrap.Staged)
    else (1, Mlc_riscv.Cluster_wrap.In_place)
  in
  let wargs = mk_args ~halves in
  (* Build and lower the tile module at chunk granularity. *)
  let chunks = active * halves in
  let m = spec.Builders.build () in
  let tplan =
    Mlc_transforms.Parallel_tile.tile ~cores:chunks m
      ~fn_name:spec.Builders.fn_name
  in
  if tplan.Mlc_transforms.Parallel_tile.threads <> chunks then
    err "parallel tiling split %d chunks, planned %d"
      tplan.Mlc_transforms.Parallel_tile.threads chunks;
  (* Static race check on the tiled module while the scf.forall is still
     present: per-chunk cluster.slices must be pairwise disjoint and
     every write inside the forall slice-derived or thread-private. *)
  (if verify_each then
     match Mlc_verify.Verify.error_of (Mlc_verify.Verify.race_findings m) with
     | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
     | None -> ());
  Mlc_transforms.Lower_forall.lower m;
  if verify_each then Verifier.verify m;
  (* Compile the tile function through the standard cached path: the
     printed tile IR (shrunk shapes and all) is its own cache key. *)
  let ir_text = Mlc_ir.Printer.to_string m in
  let bundle_ctx =
    {
      Mlc_diag.Crash_bundle.flags =
        Some
          (Printf.sprintf "cluster --cores %d (%s)" cores
             (Mlc_transforms.Pipeline.describe_flags flags));
      replay = None;
    }
  in
  let compiled =
    match
      if cache then Compile_cache.lookup ~flags ~ir_text () else `Miss ""
    with
    | `Hit (_, compiled) -> compiled
    | `Miss key ->
      let compiled =
        timed_phase Ph_compile (fun () ->
            compile_rung ~verify_each ~pipeline_of:Mlc_transforms.Pipeline.passes
              ~allocator:None ~bundle_ctx flags m)
      in
      (match
         Mlc_analysis.Lint.error_of
           (Mlc_analysis.Lint.check_program (Insn_emit.emit_module m))
       with
      | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
      | None -> ());
      if cache then Compile_cache.store ~key compiled;
      compiled
  in
  let tile =
    timed_phase Ph_load (fun () ->
        Mlc_sim.Asm_parse.parse compiled.Mlc_transforms.Pipeline.asm)
  in
  let wplan =
    {
      Mlc_riscv.Cluster_wrap.cores;
      active;
      halves;
      mode;
      args = wargs;
      scratch_base;
      scratch_stride = Mlc_riscv.Cluster_wrap.scratch_needed ~halves wargs;
    }
  in
  (* Prove the cluster's TCDM layout race-free before composing: the
     shared buffers, each core's private scratch (save area + staged
     chunks, Staged mode only) and each core's stack must be pairwise
     disjoint — a DMA-staged chunk landing in live TCDM would corrupt a
     neighbour silently. *)
  (if verify_each then
     let buffers =
       List.concat
         (List.map2
            (fun aspec addr ->
              match (aspec, addr) with
              | (Builders.Buf_in shape | Builders.Buf_out shape), Some a ->
                [
                  ( Printf.sprintf "buffer@0x%x" a,
                    a,
                    Ty.num_elements shape * esz );
                ]
              | _ -> [])
            spec.Builders.args planned_addrs)
     in
     let scratch =
       if mode = Mlc_riscv.Cluster_wrap.Staged then
         List.init cores (fun c ->
             ( Printf.sprintf "core %d scratch" c,
               scratch_base + (c * wplan.Mlc_riscv.Cluster_wrap.scratch_stride),
               wplan.Mlc_riscv.Cluster_wrap.scratch_stride ))
       else []
     in
     let stacks =
       List.init cores (fun c ->
           ( Printf.sprintf "core %d stack" c,
             scratch_limit + (c * Mlc_sim.Machine.stack_bytes),
             Mlc_sim.Machine.stack_bytes ))
     in
     match
       Mlc_verify.Verify.error_of
         (Mlc_verify.Verify.check_staging (buffers @ scratch @ stacks))
     with
     | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
     | None -> ());
  let programs =
    timed_phase Ph_load (fun () ->
        Mlc_riscv.Cluster_wrap.compose wplan ~tile ~entry:spec.Builders.fn_name)
  in
  (* Sanitize every composed per-core program before running it: the
     wrapper must satisfy the DMA/barrier discipline the cluster's
     shared-memory model assumes (dma-discipline class), on top of the
     single-core contracts already checked on the tile compile above. *)
  Array.iter
    (fun p ->
      match Mlc_analysis.Lint.error_of (Mlc_analysis.Lint.check_program p) with
      | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
      | None -> ())
    programs;
  timed_phase Ph_sim (fun () ->
      let shared = Mlc_sim.Mem.create () in
      let machines =
        Array.init cores (fun c ->
            Mlc_sim.Machine.create
              ~mem:(if c = 0 then shared else Mlc_sim.Mem.view shared)
              ~core_id:c ~num_cores:cores ())
      in
      let addrs = setup_machine ~elem machines.(0) spec.Builders.args data in
      if addrs <> planned_addrs then
        err "cluster scratch plan disagrees with the machine arena";
      (* Every core sees the same ABI argument registers. *)
      for c = 1 to cores - 1 do
        for r = 10 to 17 do
          Mlc_sim.Machine.set_ireg machines.(c) r
            (Mlc_sim.Machine.get_ireg machines.(0) r);
          Mlc_sim.Machine.set_freg machines.(c) r
            (Mlc_sim.Machine.get_freg_raw machines.(0) r)
        done
      done;
      let cluster_engine =
        match engine with
        | Fast -> Mlc_sim.Cluster.fast
        | Per_insn -> Mlc_sim.Cluster.per_insn
        | Reference -> Mlc_sim.Cluster.reference
      in
      let triples =
        Array.init cores (fun c ->
            (machines.(c), programs.(c), Mlc_riscv.Cluster_wrap.entry_label))
      in
      let res = Mlc_sim.Cluster.run ?pool ~engine:cluster_engine triples in
      let outputs = read_back ~elem machines.(0) spec.Builders.args addrs in
      {
        c_cores = cores;
        c_active = active;
        c_halves = halves;
        c_staged = (mode = Mlc_riscv.Cluster_wrap.Staged);
        c_makespan = res.Mlc_sim.Cluster.makespan;
        c_epochs = res.Mlc_sim.Cluster.epochs;
        c_per_core =
          Array.map
            (fun (mc : Mlc_sim.Machine.t) -> metrics_of mc.Mlc_sim.Machine.perf)
            machines;
        c_conflicts = res.Mlc_sim.Cluster.conflicts;
        c_util =
          Array.map
            (fun (mc : Mlc_sim.Machine.t) ->
              Mlc_sim.Machine.utilization mc.Mlc_sim.Machine.perf)
            machines;
        c_dma_bytes =
          Array.map
            (fun (mc : Mlc_sim.Machine.t) -> mc.Mlc_sim.Machine.dma_bytes)
            machines;
        c_outputs = outputs;
        c_expected = expected;
        c_max_abs_err = max_abs_err outputs expected;
        c_asm = compiled.Mlc_transforms.Pipeline.asm;
      })

(* Graceful multi-core entry point (the [--cores N] front door): kernels
   whose maps do not row-partition (conv/pool windows) used to fail the
   whole run with [Not_partitionable]; they now degrade to the standard
   single-core pipeline, with the substitution recorded as a degradation
   trail entry so [run --json] and [bench] surface it. *)
let run_parallel ?flags ?seed ?verify_each ?engine ?cache ?pool ~cores
    (spec : Builders.spec) :
    [ `Cluster of cluster_result | `Degraded of run_result ] =
  match run_cluster ?flags ?seed ?verify_each ?engine ?cache ?pool ~cores spec with
  | r -> `Cluster r
  | exception Mlc_transforms.Parallel_tile.Not_partitionable reason ->
    let r = run ?flags ?seed ?verify_each ?engine ?cache spec in
    let attempt =
      ( Printf.sprintf "cores=%d" cores,
        Printf.sprintf "not partitionable: %s" reason )
    in
    let degradation =
      match r.degradation with
      | None -> { rung = "single-core"; attempts = [ attempt ] }
      | Some d -> { d with attempts = attempt :: d.attempts }
    in
    `Degraded { r with degradation = Some degradation }
