(* Compile-artifact caching. The key is content-addressed over the
   generic IR *text* (the printer renumbers values per printing
   environment, so the text is stable across runs even though value ids
   are process-global), the rendered pipeline flags, and the compiler
   version below — bump it whenever pass semantics, emission, or the
   marshaled shape of [Pipeline.result] change, which retires every
   stale entry of a persistent disk tier at once.

   Callers print the module themselves ([~ir_text]) so a driver probing
   several flag sets — or pairing the lookup with other per-module work,
   like the runner's expected-output memo — prints once, not once per
   lookup. *)

(* cache-2: entries are additionally IR-verifier-clean — the per-pass
   Mlc_verify checkpoint was armed on the compile that produced them, so
   pre-checkpoint artifacts must be retired.
   cache-3: the key gains the backend name (the same IR text and flags
   compile to different artifacts per target). *)
let compiler_version = "snitchc-1.0.0/cache-3"

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b

let lookup ?(target = "snitch") ~flags ~ir_text () =
  if not (Atomic.get enabled) then `Miss ""
  else begin
    let key =
      Mlc_parallel.Cache.key ~namespace:"compile" ~version:compiler_version
        [ ir_text; Mlc_transforms.Pipeline.describe_flags flags; target ]
    in
    match Mlc_parallel.Cache.find ~key with
    | Some (r : Mlc_transforms.Pipeline.result) -> `Hit (key, r)
    | None -> `Miss key
  end

let store ~key (r : Mlc_transforms.Pipeline.result) =
  if key <> "" then Mlc_parallel.Cache.add ~key r

(* Pre-decoded programs for cached artifacts, memoized per key: a warm
   hit re-parsing its assembly text on every run would dominate the
   warm path (parse + pre-decode + block partition per hit). Programs
   are immutable and shared across concurrently running machines, so
   one live value per key is safe. The table is keyed by artifact key —
   entries are only as numerous as distinct compiles, and die with the
   process. *)
let prog_mu = Mutex.create ()
let programs : (string, Mlc_sim.Program.t) Hashtbl.t = Hashtbl.create 64

let program_for ~key (r : Mlc_transforms.Pipeline.result) =
  let parse () =
    Mlc_sim.Program.of_asm (Mlc_sim.Asm_parse.parse r.Mlc_transforms.Pipeline.asm)
  in
  if key = "" then parse ()
  else begin
    Mutex.lock prog_mu;
    let cached = Hashtbl.find_opt programs key in
    Mutex.unlock prog_mu;
    match cached with
    | Some p -> p
    | None ->
      let p = parse () in
      Mutex.lock prog_mu;
      (* A concurrent parser may have won the race; keep the first entry
         so every machine keeps hitting one shared program (and its
         per-machine compile caches stay valid). *)
      let p =
        match Hashtbl.find_opt programs key with
        | Some q -> q
        | None ->
          Hashtbl.replace programs key p;
          p
      in
      Mutex.unlock prog_mu;
      p
  end

let clear_programs () =
  Mutex.lock prog_mu;
  Hashtbl.reset programs;
  Mutex.unlock prog_mu
