(* Compile-artifact caching. The key is content-addressed over the
   generic IR *text* (the printer renumbers values per printing
   environment, so the text is stable across runs even though value ids
   are process-global), the rendered pipeline flags, and the compiler
   version below — bump it whenever pass semantics, emission, or the
   marshaled shape of [Pipeline.result] change, which retires every
   stale entry of a persistent disk tier at once. *)

let compiler_version = "snitchc-1.0.0/cache-1"

let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b

let lookup ~flags m =
  if not (Atomic.get enabled) then `Miss ""
  else begin
    let key =
      Mlc_parallel.Cache.key ~namespace:"compile" ~version:compiler_version
        [
          Mlc_ir.Printer.to_string m;
          Mlc_transforms.Pipeline.describe_flags flags;
        ]
    in
    match Mlc_parallel.Cache.find ~key with
    | Some (r : Mlc_transforms.Pipeline.result) -> `Hit r
    | None -> `Miss key
  end

let store ~key (r : Mlc_transforms.Pipeline.result) =
  if key <> "" then Mlc_parallel.Cache.add ~key r
