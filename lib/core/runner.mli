(** The end-to-end harness: compile a kernel, execute it on the Snitch
    simulator against deterministic random inputs, validate the outputs
    against the reference interpreter (high-level kernels) or the native
    lane-exact reference (handwritten kernels), and report the paper's
    metrics (§4.1). *)

exception Run_error of string

type metrics = {
  cycles : int;
  fpu_util : float;  (** percent *)
  flops_per_cycle : float;
  loads : int;
  stores : int;
  freps : int;
  flop_count : int;
}

type run_result = {
  asm : string;
  metrics : metrics;
  outputs : float array list;  (** simulator outputs, argument order *)
  expected : float array list;  (** reference outputs, argument order *)
  max_abs_err : float;
  report : Mlc_regalloc.Allocator.report option;
  stats : Mlc_riscv.Asm_emit.stats option;
  trace : string list;
      (** per-instruction issue trace when requested via [~trace:true] *)
}

(** Largest absolute element difference between two output sets. *)
val max_abs_err : float array list -> float array list -> float

(** Compile and run a linalg-level kernel under the given pipeline flags
    (default: the full multi-level pipeline), validating against the
    interpreter. [seed] fixes the random inputs. *)
val run :
  ?flags:Mlc_transforms.Pipeline.flags ->
  ?seed:int ->
  ?verify_each:bool ->
  ?trace:bool ->
  ?allocator:(Mlc_ir.Ir.op -> Mlc_regalloc.Allocator.report) ->
  Mlc_kernels.Builders.spec ->
  run_result

(** Allocate, emit and run a handwritten assembly-level kernel,
    validating against its native reference. *)
val run_lowlevel :
  ?seed:int -> ?verify_each:bool -> Mlc_kernels.Lowlevel.spec -> run_result
