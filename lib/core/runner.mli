(** The end-to-end harness: compile a kernel, execute it on the Snitch
    simulator against deterministic random inputs, validate the outputs
    against the reference interpreter (high-level kernels) or the native
    lane-exact reference (handwritten kernels), and report the paper's
    metrics (§4.1). *)

exception Run_error of string

type metrics = {
  cycles : int;
  fpu_util : float;  (** percent *)
  flops_per_cycle : float;
  loads : int;
  stores : int;
  freps : int;
  flop_count : int;
  retired : int;  (** dynamic instructions retired *)
}

(** How the compiled module reaches the simulator: [Direct] lowers
    allocated IR straight to a pre-decoded program ({!Mlc_riscv.Insn_emit},
    the default production path); [Via_text] prints assembly and
    re-parses it (the legacy round-trip, kept as cross-check and debug
    format). The two produce equal programs — enforced by the
    registry-wide equivalence test. *)
type sim_path = Direct | Via_text

(** Which engine executes the program: the block-fused engine
    ({!Mlc_sim.Block_exec}, the default), the per-instruction fast path
    ({!Mlc_sim.Machine.run}), or the reference per-instruction loop (the
    timing oracle). Performance counters — and trap records — are
    bit-identical across all three. *)
type engine = Fast | Per_insn | Reference

(** Wall-clock totals of the harness phases: [compile_s] (pass
    pipeline, register allocation, emission, lint), [load_s] (program
    construction: direct emission, assembly parse, or cached lookup),
    [sim_s] (machine setup, simulation, output readback), plus the
    number of entries timed into each — counts carry no wall-clock, so
    they are bit-identical for any [-j] (the determinism contract's
    testable face).

    Attribution is per domain: the timed sections accumulate into a
    domain-local cell, pool workers {!drain_phases} at the end of each
    work item and the driver {!commit_phases} the drained deltas in its
    ordered commit loop. Single-domain flows need neither: {!phases}
    commits the calling domain's own residue before reading. *)
type phase_totals = {
  load_s : float;
  compile_s : float;
  sim_s : float;
  load_n : int;
  compile_n : int;
  sim_n : int;
}

val zero_phases : phase_totals
val add_phases : phase_totals -> phase_totals -> phase_totals
val sub_phases : phase_totals -> phase_totals -> phase_totals

(** Committed totals plus the calling domain's drained residue. *)
val phases : unit -> phase_totals

val reset_phases : unit -> unit

(** Take (and zero) the calling domain's uncommitted accumulator. Pool
    workers call this when their work item completes and return the
    delta with their result. *)
val drain_phases : unit -> phase_totals

(** Fold a drained delta into the committed totals. Drivers call this
    in their ordered commit loop, making totals independent of worker
    scheduling. *)
val commit_phases : phase_totals -> unit

(** The graceful-degradation record of a run that fell back: [rung] is
    the {!Mlc_transforms.Pipeline.fallback_lattice} configuration that
    finally succeeded, [attempts] the (rung, error summary) trail of
    the rungs that failed before it. *)
type degradation = { rung : string; attempts : (string * string) list }

type run_result = {
  asm : string;
  metrics : metrics;
  outputs : float array list;  (** simulator outputs, argument order *)
  expected : float array list;  (** reference outputs, argument order *)
  max_abs_err : float;
  report : Mlc_regalloc.Allocator.report option;
  stats : Mlc_riscv.Asm_emit.stats option;
  trace : string list;
      (** per-instruction issue trace when requested via [~trace:true] *)
  degradation : degradation option;
      (** [None] when the requested configuration succeeded directly *)
}

(** Largest absolute element difference between two output sets. *)
val max_abs_err : float array list -> float array list -> float

(** Deterministic random input buffers for an argument list (the paper
    uses random input sets with precomputed outputs, §A.2). *)
val gen_inputs :
  seed:int ->
  elem:Mlc_ir.Ty.t ->
  Mlc_kernels.Builders.arg_spec list ->
  float array list

(** Reference outputs for a kernel spec on the given input buffers,
    through the {!Mlc_interp} interpreter (output-argument order).
    Exposed for the differential fuzzing oracle. *)
val interp_expected :
  Mlc_kernels.Builders.spec -> float array list -> float array list

(** Load input buffers into a machine's TCDM and set up the ABI argument
    registers (pointers in a0.., scalars in fa0..). Returns the buffer
    base addresses (None for scalars). Exposed for the benchmark
    driver. *)
val setup_machine :
  elem:Mlc_ir.Ty.t ->
  Mlc_sim.Machine.t ->
  Mlc_kernels.Builders.arg_spec list ->
  float array list ->
  int option list

(** Execute a pre-decoded program on a fresh machine: loads the buffers
    into the TCDM, sets up ABI argument registers, runs from [fn_name]
    and reads outputs back. Exposed for the benchmark driver. *)
val simulate_program :
  ?trace:bool ->
  ?engine:engine ->
  ?fuel:int ->
  elem:Mlc_ir.Ty.t ->
  fn_name:string ->
  args:Mlc_kernels.Builders.arg_spec list ->
  data:float array list ->
  Mlc_sim.Program.t ->
  metrics * float array list * string list

(** As {!simulate_program}, from assembly text (parse + pre-decode). *)
val simulate :
  ?trace:bool ->
  ?engine:engine ->
  ?fuel:int ->
  elem:Mlc_ir.Ty.t ->
  fn_name:string ->
  args:Mlc_kernels.Builders.arg_spec list ->
  data:float array list ->
  string ->
  metrics * float array list * string list

(** Compile and run a linalg-level kernel under the given pipeline flags
    (default: the full multi-level pipeline), validating against the
    interpreter. [seed] fixes the random inputs.

    On a diagnosed compile or simulation failure (pass failure,
    verification error, register-pool exhaustion, simulator trap) the
    runner degrades along {!Mlc_transforms.Pipeline.fallback_lattice},
    rebuilding the module from the spec at each rung — so a rung's
    result is bit-identical to compiling that configuration directly —
    and reports the trail in [degradation]. [~fallback:false] restricts
    the run to the requested configuration, propagating its failure
    unchanged. When every rung fails, one {!Mlc_diag.Diag.Diagnostic}
    carrying the whole trail is raised (and a crash bundle written).

    [pipeline_of] substitutes the pass list a flag set induces (fault
    injection in tests); [crash_ctx] supplies the replay command
    recorded in crash bundles.

    [cache] (default true) consults the content-addressed artifact
    cache ({!Compile_cache}): a hit skips the pass pipeline, register
    allocation and lint, reconstructing the program from the cached
    assembly with bit-identical results. Runs with a custom [allocator]
    or [pipeline_of], or with [trace], bypass the cache automatically.

    [backend] (default {!Mlc_transforms.Backend.snitch}) selects the
    target: its flag adjustment is applied before everything else
    (including the fallback lattice), its lowering replaces the Snitch
    tail after {!Mlc_transforms.Pipeline.front_passes}, and post-
    emission lint is restricted to its check classes. Cached artifacts
    are keyed per backend name.

    [on_phase] is the cooperative-cancellation hook for serving layers:
    it is called at every checkpoint ("expected", then per attempted
    rung "compile:<rung>" and "sim:<rung>") and may raise to abort the
    run — such an exception is never caught by the fallback lattice,
    and aborting at any checkpoint leaves the compile cache and domain
    pool in a state where an identical retry is bit-identical to a
    never-cancelled run (artifacts are stored atomically and only when
    complete). [fuel] bounds simulated dynamic instructions
    ({!Mlc_sim.Machine.create}); exhaustion is a typed
    [Trap.Out_of_fuel]. *)
val run :
  ?flags:Mlc_transforms.Pipeline.flags ->
  ?seed:int ->
  ?verify_each:bool ->
  ?trace:bool ->
  ?sim_path:sim_path ->
  ?engine:engine ->
  ?allocator:(Mlc_ir.Ir.op -> Mlc_regalloc.Allocator.report) ->
  ?fallback:bool ->
  ?pipeline_of:(Mlc_transforms.Pipeline.flags -> Mlc_ir.Pass.t list) ->
  ?crash_ctx:Mlc_diag.Crash_bundle.ctx ->
  ?cache:bool ->
  ?on_phase:(string -> unit) ->
  ?fuel:int ->
  ?backend:Mlc_transforms.Backend.t ->
  Mlc_kernels.Builders.spec ->
  run_result

(** Allocate, emit and run a handwritten assembly-level kernel,
    validating against its native reference. *)
val run_lowlevel :
  ?seed:int ->
  ?verify_each:bool ->
  ?sim_path:sim_path ->
  ?engine:engine ->
  Mlc_kernels.Lowlevel.spec ->
  run_result

(** Result of a multi-core cluster run: cluster geometry, the staging
    mode the wrapper chose, the lockstep schedule's outcome, and
    per-core counters, alongside the usual outputs-vs-reference
    validation. *)
type cluster_result = {
  c_cores : int;  (** cluster size N ([--cores]) *)
  c_active : int;  (** cores that ran the kernel (T <= N) *)
  c_halves : int;  (** chunks per active core (2 = double-buffered) *)
  c_staged : bool;  (** DMA staging vs in-place pointers *)
  c_makespan : int;  (** slowest core's drain point, conflicts included *)
  c_epochs : int;  (** barrier-delimited lockstep rounds *)
  c_per_core : metrics array;  (** per-core performance counters *)
  c_conflicts : int array;  (** per-core bank-conflict cycles charged *)
  c_util : float array;  (** per-core FPU utilisation over the run, % *)
  c_dma_bytes : int array;  (** per-core bytes moved by the DMA engine *)
  c_outputs : float array list;
  c_expected : float array list;
  c_max_abs_err : float;
  c_asm : string;  (** the (single) compiled tile kernel *)
}

(** Compile and run a linalg-level kernel on an N-core Snitch cluster:
    parallel-tile ({!Mlc_transforms.Parallel_tile}), lower to the
    per-chunk tile function ({!Mlc_transforms.Lower_forall}), compile
    it once through the standard cached pipeline, splice per-core
    programs with DMA staging ({!Mlc_riscv.Cluster_wrap}) and step them
    in lockstep epochs over one shared TCDM ({!Mlc_sim.Cluster}).
    Outputs are bit-identical across core counts, engines and host
    [-j]; [pool] parallelises the per-epoch stepping on the host.
    Raises {!Mlc_transforms.Parallel_tile.Not_partitionable} for
    kernels whose maps do not row-partition (conv/pool windows). *)
val run_cluster :
  ?flags:Mlc_transforms.Pipeline.flags ->
  ?seed:int ->
  ?verify_each:bool ->
  ?engine:engine ->
  ?cache:bool ->
  ?pool:Mlc_parallel.Pool.t ->
  cores:int ->
  Mlc_kernels.Builders.spec ->
  cluster_result

(** Graceful multi-core front door: {!run_cluster}, except that a kernel
    whose maps do not row-partition (conv/pool windows) degrades to the
    standard single-core {!run} instead of raising [Not_partitionable].
    The substitution is recorded in the returned result's [degradation]
    trail (rung ["single-core"], one attempt entry naming the requested
    core count). *)
val run_parallel :
  ?flags:Mlc_transforms.Pipeline.flags ->
  ?seed:int ->
  ?verify_each:bool ->
  ?engine:engine ->
  ?cache:bool ->
  ?pool:Mlc_parallel.Pool.t ->
  cores:int ->
  Mlc_kernels.Builders.spec ->
  [ `Cluster of cluster_result | `Degraded of run_result ]
