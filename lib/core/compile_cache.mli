(** The compiler-side view of the content-addressed artifact cache
    ({!Mlc_parallel.Cache}): compilation results keyed by the generic IR
    text of the module about to be compiled, the pipeline flags, and the
    compiler version.

    Invariant: only artifacts whose emitted instruction stream passed
    the machine-code sanitizer with no error finding are ever stored, so
    a hit may skip linting. Only default compiles qualify — drivers with
    a custom allocator or a substituted pass pipeline must bypass the
    cache entirely. *)

(** Globally enable/disable the cache (default: enabled). When disabled,
    {!lookup} always misses with an empty key and {!store} is a no-op. *)
val set_enabled : bool -> unit

(** [lookup ~flags m] — [m] must be a freshly built generic (pre-pass)
    module; it is printed to compute the key. [`Miss key] hands back the
    key to pass to {!store} once [m] has been compiled and linted. *)
val lookup :
  flags:Mlc_transforms.Pipeline.flags ->
  Mlc_ir.Ir.op ->
  [ `Hit of Mlc_transforms.Pipeline.result | `Miss of string ]

(** Store a lint-clean compilation result under a key from {!lookup}.
    No-op on the empty key. *)
val store : key:string -> Mlc_transforms.Pipeline.result -> unit
