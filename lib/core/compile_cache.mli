(** The compiler-side view of the content-addressed artifact cache
    ({!Mlc_parallel.Cache}): compilation results keyed by the generic IR
    text of the module about to be compiled, the pipeline flags, and the
    compiler version.

    Invariant: only artifacts whose emitted instruction stream passed
    the machine-code sanitizer with no error finding are ever stored, so
    a hit may skip linting. Only default compiles qualify — drivers with
    a custom allocator or a substituted pass pipeline must bypass the
    cache entirely. *)

(** Globally enable/disable the cache (default: enabled). When disabled,
    {!lookup} always misses with an empty key and {!store} is a no-op. *)
val set_enabled : bool -> unit

(** [lookup ?target ~flags ~ir_text ()] — [ir_text] must be the printed
    generic (pre-pass) module about to be compiled; the caller prints it
    so one rendering can serve several lookups. [target] is the backend
    name (default ["snitch"]) and is part of the key. [`Hit (key, r)]
    carries the key for {!program_for}; [`Miss key] hands back the key
    to pass to {!store} once the module has been compiled and linted. *)
val lookup :
  ?target:string ->
  flags:Mlc_transforms.Pipeline.flags ->
  ir_text:string ->
  unit ->
  [ `Hit of string * Mlc_transforms.Pipeline.result
  | `Miss of string ]

(** Store a lint-clean compilation result under a key from {!lookup}.
    No-op on the empty key. *)
val store : key:string -> Mlc_transforms.Pipeline.result -> unit

(** The pre-decoded program of a cached artifact, memoized per key so
    warm hits skip the assembly re-parse. Programs are immutable and
    safe to share across machines and domains. On the empty key the
    assembly is parsed without memoization. *)
val program_for : key:string -> Mlc_transforms.Pipeline.result -> Mlc_sim.Program.t

(** Drop the per-key program memo (test isolation). *)
val clear_programs : unit -> unit
