(* CFG construction for the machine-code linter (flat, per emitted
   function) plus the structured pre-order linearisation shared with the
   register-allocation checker. See cfg.mli for the model. *)

open Mlc_sim

type func = { fname : string; entry : int; last : int }

type block = {
  id : int;
  first : int;
  last : int;
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  program : Program.t;
  func : func;
  blocks : block array;
  freps : (int * int) list;
  escapes : (int * int) list;
}

let functions (p : Program.t) : func list =
  let n = Array.length p.Program.insns in
  let entries =
    Hashtbl.fold
      (fun name pc acc ->
        if String.length name > 0 && name.[0] <> '.' then (name, pc) :: acc
        else acc)
      p.Program.labels []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  match entries with
  | [] -> if n = 0 then [] else [ { fname = "<program>"; entry = 0; last = n - 1 } ]
  | _ ->
    let rec go = function
      | (name, pc) :: ((_, next) :: _ as rest) ->
        { fname = name; entry = pc; last = next - 1 } :: go rest
      | [ (name, pc) ] -> [ { fname = name; entry = pc; last = n - 1 } ]
      | [] -> []
    in
    (* Two labels on the same pc produce an empty alias function; drop it. *)
    List.filter (fun f -> f.entry <= f.last) (go entries)

let build (p : Program.t) (func : func) : t =
  let insns = p.Program.insns in
  let in_range pc = pc >= func.entry && pc <= func.last in
  (* Leaders: the entry, every branch/jump target, every pc after a
     control-flow instruction. *)
  let leaders = Hashtbl.create 32 in
  Hashtbl.replace leaders func.entry ();
  let freps = ref [] and escapes = ref [] in
  let note_target pc t =
    if in_range t then Hashtbl.replace leaders t ()
    else escapes := (pc, t) :: !escapes
  in
  let note_next pc = if pc + 1 <= func.last then Hashtbl.replace leaders (pc + 1) () in
  (* Control classification is shared with the simulator's block
     partitioner ([Program.control_of]) so both agree on what ends a
     straight-line region; mode barriers are not control flow here. *)
  for pc = func.entry to func.last do
    match Program.control_of insns.(pc) with
    | Program.Ctl_branch t ->
      note_target pc t;
      note_next pc
    | Program.Ctl_jump t ->
      note_target pc t;
      note_next pc
    | Program.Ctl_ret -> note_next pc
    | Program.Ctl_frep len -> freps := (pc, len) :: !freps
    | Program.Ctl_fall | Program.Ctl_barrier -> ()
  done;
  let leader_pcs =
    Hashtbl.fold (fun pc () acc -> pc :: acc) leaders [] |> List.sort compare
  in
  let firsts = Array.of_list leader_pcs in
  let nb = Array.length firsts in
  let blocks =
    Array.init nb (fun i ->
        {
          id = i;
          first = firsts.(i);
          last = (if i + 1 < nb then firsts.(i + 1) - 1 else func.last);
          succs = [];
          preds = [];
        })
  in
  let id_of_first = Hashtbl.create nb in
  Array.iter (fun b -> Hashtbl.replace id_of_first b.first b.id) blocks;
  Array.iter
    (fun b ->
      let succ_pcs =
        match Program.control_of insns.(b.last) with
        | Program.Ctl_branch t ->
          (if in_range t then [ t ] else [])
          @ (if b.last + 1 <= func.last then [ b.last + 1 ] else [])
        | Program.Ctl_jump t -> if in_range t then [ t ] else []
        | Program.Ctl_ret -> []
        | Program.Ctl_fall | Program.Ctl_frep _ | Program.Ctl_barrier ->
          if b.last + 1 <= func.last then [ b.last + 1 ] else []
      in
      b.succs <-
        List.sort_uniq compare
          (List.map (fun pc -> Hashtbl.find id_of_first pc) succ_pcs))
    blocks;
  Array.iter
    (fun b -> List.iter (fun s -> blocks.(s).preds <- b.id :: blocks.(s).preds) b.succs)
    blocks;
  Array.iter (fun b -> b.preds <- List.sort_uniq compare b.preds) blocks;
  {
    program = p;
    func;
    blocks;
    freps = List.rev !freps;
    escapes = List.rev !escapes;
  }

let block_at t pc =
  if pc < t.func.entry || pc > t.func.last then
    invalid_arg "Cfg.block_at: pc outside function";
  (* Binary search over block start pcs. *)
  let lo = ref 0 and hi = ref (Array.length t.blocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.blocks.(mid).first <= pc then lo := mid else hi := mid - 1
  done;
  t.blocks.(!lo)

let is_branch_target t pc =
  let b = block_at t pc in
  b.first = pc
  && List.exists
       (fun p ->
         let pb = t.blocks.(p) in
         match t.program.Program.insns.(pb.last) with
         | Insn.Branch (_, _, _, tgt) | Insn.J tgt -> tgt = pc
         | _ -> false)
       b.preds

(* --- structured linearisation (shared with Mlc_regalloc.Check) --- *)

open Mlc_ir

type linear = {
  op_pos : (int, int) Hashtbl.t;
  loop_extent : (int, int * int) Hashtbl.t;
}

let linearize (region : Ir.region) : linear =
  let op_pos = Hashtbl.create 128 in
  let loop_extent = Hashtbl.create 16 in
  let next = ref 1 in
  let rec walk_block (b : Ir.block) =
    Ir.Block.iter_ops b (fun op ->
        let start = !next in
        incr next;
        Hashtbl.replace op_pos (Ir.Op.id op) start;
        List.iter
          (fun (r : Ir.region) -> List.iter walk_block (Ir.Region.blocks r))
          (Ir.Op.regions op);
        if Ir.Op.regions op <> [] then begin
          Hashtbl.replace loop_extent (Ir.Op.id op) (start, !next);
          incr next
        end)
  in
  List.iter walk_block (Ir.Region.blocks region);
  { op_pos; loop_extent }

let is_structured_loop op =
  let open Mlc_riscv in
  Ir.Op.name op = Rv_scf.for_op || Ir.Op.name op = Rv_snitch.frep_outer_op
