(* The machine-code sanitizer. See lint.mli for the contract of each
   check class and DESIGN.md ("Static analysis") for the framework.

   All analyses run per emitted function on the flat CFG. Severities
   follow the trap model: a finding is an Error only when it is a
   genuine contract violation (and, for the classes in [trap_classes],
   predicts a runtime trap on some path); conditions the hardware
   tolerates silently (returning with streaming enabled, underrunning a
   stream pattern, a width write that cannot take effect) are
   warnings. *)

open Mlc_sim
module D = Mlc_diag.Diag
module R = Dataflow.Regset

let cls_cfg = "cfg"
let cls_rbw = "read-before-write"
let cls_ssr = "ssr-discipline"
let cls_frep = "frep-legality"
let cls_abi = "abi-preservation"
let cls_balance = "stream-balance"
let cls_dma = "dma-discipline"
let trap_classes = [ cls_ssr; cls_frep; cls_balance ]

(* FP source operands served by the SSR streams: every [fetch_f] the
   machine performs, with multiplicity. The packed accumulator of
   vfmac.s/vfsum.s is read from the register file directly (a streaming
   accumulator would be ill-formed), so it is excluded here even though
   it is an architectural source in [Insn.deps]. *)
let fp_stream_srcs = function
  | Insn.Vfmac (_, fs1, fs2) -> [ fs1; fs2 ]
  | Insn.Vfsum (_, fs) -> [ fs ]
  | i ->
    let _, fps, _, _ = Insn.deps i in
    fps

let ssr_csr = 0x7c0

(* --- SSR discipline dataflow ---

   Forward analysis; the facts are small bitsets so joins are [lor]:
   [en]: 1 = may be disabled, 2 = may be enabled;
   [dm*]: 1 = may be unarmed, 2 = may be armed to read, 4 = to write.
   [None] marks not-yet-reached program points. Arming state is reset
   at ssr_disable: a stale stream object does survive a disable in
   hardware, but the backend always re-arms every stream a region uses,
   and resetting keeps re-configuration of a second region (width after
   a previous region's arm) from being misread as out of order. *)

type ssr_facts = { en : int; dm0 : int; dm1 : int; dm2 : int }

let get_dm s = function 0 -> s.dm0 | 1 -> s.dm1 | _ -> s.dm2

let set_dm s dm v =
  match dm with
  | 0 -> { s with dm0 = v }
  | 1 -> { s with dm1 = v }
  | _ -> { s with dm2 = v }

module Ssr_dom = struct
  type t = ssr_facts option

  let equal = ( = )

  let join a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b ->
      Some
        {
          en = a.en lor b.en;
          dm0 = a.dm0 lor b.dm0;
          dm1 = a.dm1 lor b.dm1;
          dm2 = a.dm2 lor b.dm2;
        }
end

module Ssr_solver = Dataflow.Solver (Ssr_dom)
module Reg_solver = Dataflow.Solver (Dataflow.Regset)

(* --- DMA discipline facts ---

   Forward may-analysis, one small bitset: bits 0-3 say the source /
   destination / stride / repeat DMA registers may still be unprogrammed
   (they latch: a write clears the bit on every path through it), bit 4
   says a launched transfer may still be in flight (set by dmcpy — the
   engine queues, so back-to-back launches are fine — cleared by
   dmwait). [None] marks unreached program points. *)

let dma_src_unset = 1
let dma_dst_unset = 2
let dma_str_unset = 4
let dma_rep_unset = 8
let dma_pending = 16
let dma_boundary = dma_src_unset lor dma_dst_unset lor dma_str_unset lor dma_rep_unset

module Dma_dom = struct
  type t = int option

  let equal = ( = )

  let join a b =
    match (a, b) with None, x | x, None -> x | Some a, Some b -> Some (a lor b)
end

module Dma_solver = Dataflow.Solver (Dma_dom)

let dma_transfer insns pc = function
  | None -> None
  | Some s ->
    Some
      (match insns.(pc) with
      | Insn.Dm_src _ -> s land lnot dma_src_unset
      | Insn.Dm_dst _ -> s land lnot dma_dst_unset
      | Insn.Dm_str _ -> s land lnot dma_str_unset
      | Insn.Dm_rep _ -> s land lnot dma_rep_unset
      | Insn.Dm_cpy _ -> s lor dma_pending
      | Insn.Dm_wait -> s land lnot dma_pending
      | _ -> s)

let ssr_transfer insns pc = function
  | None -> None
  | Some s ->
    Some
      (match insns.(pc) with
      | Insn.Csrsi (csr, _) when csr = ssr_csr -> { s with en = 2 }
      | Insn.Csrci (csr, _) when csr = ssr_csr ->
        { en = 1; dm0 = 1; dm1 = 1; dm2 = 1 }
      | Insn.Scfgwi (_, imm) ->
        let slot = imm / 8 and dm = imm mod 8 in
        if dm < 0 || dm > 2 then s
        else if slot >= 24 && slot < 28 then set_dm s dm 2
        else if slot >= 28 && slot < 32 then set_dm s dm 4
        else s
      | _ -> s)

(* --- stream balance ---

   A single linear scan per function with a local constant model over
   the integer registers (reset at every branch target, since values
   merging there may differ). The scan mirrors the machine's SSR
   configuration model: slot writes update per-mover config, a pointer
   write arms the mover with a snapshot of that config, and the armed
   capacity is prod(bounds+1) x (repeat+1) for reads (writes ignore the
   repeat: the odometer bumps on every push). A region whose control
   flow or trip counts the scan cannot resolve statically is abandoned
   without findings. *)

let eval_alu (op : Insn.alu) a b =
  match op with
  | Insn.Add -> Some (Int64.add a b)
  | Insn.Sub -> Some (Int64.sub a b)
  | Insn.Mul -> Some (Int64.mul a b)
  | Insn.Div -> if b = 0L then None else Some (Int64.div a b)
  | Insn.And -> Some (Int64.logand a b)
  | Insn.Or -> Some (Int64.logor a b)
  | Insn.Xor -> Some (Int64.logxor a b)
  | Insn.Slt -> Some (if Int64.compare a b < 0 then 1L else 0L)
  | Insn.Sll -> Some (Int64.shift_left a (Int64.to_int b land 63))
  | Insn.Sra -> Some (Int64.shift_right a (Int64.to_int b land 63))

type dm_model = {
  bounds : int64 option array; (* 4 slots, value as written (count - 1) *)
  mutable repeat : int64 option;
  mutable armed : (bool * int64 option) option; (* is_write, capacity *)
}

let balance_scan ~report (cfg : Cfg.t) =
  let func = cfg.Cfg.func in
  let insns = cfg.Cfg.program.Program.insns in
  let consts = Array.make 32 None in
  let reset_consts () =
    Array.fill consts 0 32 None;
    consts.(0) <- Some 0L
  in
  reset_consts ();
  let set_const rd v = if rd <> 0 then consts.(rd) <- v in
  (* Fresh config matches the machine's reset state. *)
  let model =
    Array.init 3 (fun _ ->
        { bounds = Array.make 4 (Some 0L); repeat = Some 0L; armed = None })
  in
  let in_region = ref false and abandoned = ref false in
  let snapshot = Array.make 3 None in
  let reads = Array.make 3 0 and writes = Array.make 3 0 in
  let count_insn mult i =
    List.iter
      (fun r -> if r < 3 then reads.(r) <- reads.(r) + mult)
      (fp_stream_srcs i);
    match Insn.deps i with
    | _, _, _, Some r when r < 3 -> writes.(r) <- writes.(r) + mult
    | _ -> ()
  in
  let close_region pc =
    if !in_region && not !abandoned then
      for dm = 0 to 2 do
        match snapshot.(dm) with
        | Some (is_write, Some capacity) ->
          let used = if is_write then writes.(dm) else reads.(dm) in
          let word = if is_write then "writes" else "reads" in
          let used64 = Int64.of_int used in
          if Int64.compare used64 capacity > 0 then
            report ?severity:None ~cls:cls_balance pc
              (Printf.sprintf
                 "stream ft%d overruns its configured pattern: %d %s of %Ld \
                  elements"
                 dm used word capacity)
          else if Int64.compare used64 capacity < 0 then
            report ?severity:(Some D.Warning) ~cls:cls_balance pc
              (Printf.sprintf
                 "stream ft%d underruns its configured pattern: %d %s of %Ld \
                  elements"
                 dm used word capacity)
        | _ -> ()
      done;
    in_region := false
  in
  let pc = ref func.Cfg.entry in
  while !pc <= func.Cfg.last do
    if Cfg.is_branch_target cfg !pc then begin
      reset_consts ();
      if !in_region then abandoned := true
    end;
    (match insns.(!pc) with
    | Insn.Li (rd, v) -> set_const rd (Some v)
    | Insn.Mv (rd, rs) -> set_const rd consts.(rs)
    | Insn.Alui (op, rd, rs, imm) ->
      set_const rd (Option.bind consts.(rs) (fun a -> eval_alu op a imm))
    | Insn.Alu (op, rd, rs1, rs2) ->
      set_const rd
        (match (consts.(rs1), consts.(rs2)) with
        | Some a, Some b -> eval_alu op a b
        | _ -> None)
    | Insn.Scfgwi (rs, imm) ->
      let slot = imm / 8 and dm = imm mod 8 in
      if dm >= 0 && dm <= 2 then begin
        let m = model.(dm) in
        if slot >= 2 && slot <= 5 then m.bounds.(slot - 2) <- consts.(rs)
        else if slot = 1 then m.repeat <- consts.(rs)
        else if slot = 10 then begin
          match consts.(rs) with
          | Some v when v <> 4L && v <> 8L ->
            report ?severity:None ~cls:cls_ssr !pc
              (Printf.sprintf "scfgwi: element width must be 4 or 8, got %Ld" v)
          | _ -> ()
        end
        else if slot >= 24 && slot < 32 then begin
          let is_write = slot >= 28 in
          let dims = (if is_write then slot - 28 else slot - 24) + 1 in
          let capacity =
            let rec prod d acc =
              if d >= dims then acc
              else
                match (acc, m.bounds.(d)) with
                | Some acc, Some b -> prod (d + 1) (Some (Int64.mul acc (Int64.add b 1L)))
                | _ -> None
            in
            match (prod 0 (Some 1L), m.repeat) with
            | Some p, Some rep when not is_write ->
              (* Reads serve each element repeat+1 times. *)
              Some (Int64.mul p (Int64.add rep 1L))
            | Some p, _ when is_write -> Some p
            | _ -> None
          in
          m.armed <- Some (is_write, capacity)
        end
      end
    | Insn.Csrsi (csr, _) when csr = ssr_csr ->
      in_region := true;
      abandoned := false;
      for dm = 0 to 2 do
        snapshot.(dm) <- model.(dm).armed;
        reads.(dm) <- 0;
        writes.(dm) <- 0
      done
    | Insn.Csrci (csr, _) when csr = ssr_csr -> close_region !pc
    | Insn.Branch _ | Insn.J _ ->
      if !in_region then abandoned := true;
      (match insns.(!pc) with Insn.J _ -> reset_consts () | _ -> ())
    | Insn.Ret ->
      if !in_region then abandoned := true;
      in_region := false;
      reset_consts ()
    | Insn.Frep_o (rs, len) ->
      (let iters = Option.map (fun v -> Int64.to_int v + 1) consts.(rs) in
       (match iters with
       | Some k when k <= 0 ->
         report ?severity:None ~cls:cls_frep !pc
           (Printf.sprintf "frep with non-positive iteration count (%d)" k)
       | _ -> ());
       if !in_region then begin
         match iters with
         | Some k when k > 0 && !pc + len <= func.Cfg.last ->
           for b = !pc + 1 to !pc + len do
             if Insn.is_fpu insns.(b) then count_insn k insns.(b)
             else abandoned := true (* flagged by frep-legality *)
           done
         | _ -> abandoned := true
       end);
      (* Skip the body: its accesses are accounted above. *)
      pc := !pc + len
    | i ->
      (match Insn.deps i with
      | _, _, Some rd, _ -> set_const rd None
      | _ -> ());
      if !in_region then count_insn 1 i);
    incr pc
  done;
  (* A region left open at the function end was abandoned (warned as
     returns-while-streaming / fallthrough by the other checks). *)
  ()

(* --- per-function checking --- *)

let check_function (p : Program.t) (func : Cfg.func) : (int * D.t) list =
  let insns = p.Program.insns in
  let cfg = Cfg.build p func in
  let out = ref [] in
  let report ?(severity = D.Error) ~cls pc fmt =
    Printf.ksprintf
      (fun message ->
        out :=
          ( pc,
            D.make ~severity ~component:"lint" ~pass:cls
              ~op:(Printf.sprintf "pc %d: %s" pc (Asm_parse.render insns.(pc)))
              message )
          :: !out)
      fmt
  in
  let n_pcs = func.Cfg.last - func.Cfg.entry + 1 in
  let rel pc = pc - func.Cfg.entry in

  (* cfg: control transfers leaving the function; falling off its end. *)
  List.iter
    (fun (pc, t) ->
      report ~cls:cls_cfg pc
        "control transfer to pc %d, outside function %s [%d, %d]" t
        func.Cfg.fname func.Cfg.entry func.Cfg.last)
    cfg.Cfg.escapes;
  Array.iter
    (fun (b : Cfg.block) ->
      if b.Cfg.last = func.Cfg.last then
        match insns.(b.Cfg.last) with
        | Insn.Ret | Insn.J _ -> ()
        | Insn.Branch _ | _ ->
          report ~severity:D.Warning ~cls:cls_cfg b.Cfg.last
            "control flow can fall through the end of function %s"
            func.Cfg.fname)
    cfg.Cfg.blocks;

  (* Solve SSR discipline facts and cache the per-pc in-state. *)
  let ssr_tf = ssr_transfer insns in
  let ssr_res =
    Ssr_solver.solve ~dir:Dataflow.Forward ~init:None
      ~boundary:(Some { en = 1; dm0 = 1; dm1 = 1; dm2 = 1 })
      ~join:Ssr_dom.join ~transfer:ssr_tf cfg
  in
  let ssr_in = Array.make n_pcs None in
  Ssr_solver.iter ssr_res ~transfer:ssr_tf cfg (fun pc v -> ssr_in.(rel pc) <- v);
  let may_enabled pc =
    match ssr_in.(rel pc) with Some s -> s.en land 2 <> 0 | None -> false
  in

  (* DMA discipline facts (cheap: a 5-bit forward may-analysis). *)
  let dma_tf = dma_transfer insns in
  let dma_res =
    Dma_solver.solve ~dir:Dataflow.Forward ~init:None
      ~boundary:(Some dma_boundary) ~join:Dma_dom.join ~transfer:dma_tf cfg
  in
  let dma_in = Array.make n_pcs None in
  Dma_solver.iter dma_res ~transfer:dma_tf cfg (fun pc v ->
      dma_in.(rel pc) <- v);

  (* Definite assignment (must-defined, forward; init = full so
     unreachable code stays silent). *)
  let defined_tf pc v =
    let _, _, idst, fdst = Insn.deps insns.(pc) in
    let v = match idst with Some r -> R.add_int r v | None -> v in
    match fdst with
    | Some r when r < 3 && may_enabled pc -> v (* stream push, no reg def *)
    | Some r -> R.add_fp r v
    | None -> v
  in
  let defined_res =
    Reg_solver.solve ~dir:Dataflow.Forward ~init:R.full
      ~boundary:
        (R.of_lists
           ~ints:Mlc_riscv.Reg.entry_defined_int_indices
           ~fps:Mlc_riscv.Reg.entry_defined_float_indices)
      ~join:R.inter ~transfer:defined_tf cfg
  in
  let defined_in = Array.make n_pcs R.full in
  Reg_solver.iter defined_res ~transfer:defined_tf cfg (fun pc v ->
      defined_in.(rel pc) <- v);

  (* ABI preservation (may-dirtied callee-saved registers, forward). *)
  let preserved =
    R.of_lists ~ints:Mlc_riscv.Reg.preserved_int_indices
      ~fps:Mlc_riscv.Reg.preserved_float_indices
  in
  let dirty_tf pc v =
    let _, _, idst, fdst = Insn.deps insns.(pc) in
    let v =
      match idst with
      | Some r when R.mem_int r preserved -> R.add_int r v
      | _ -> v
    in
    match fdst with
    | Some r when R.mem_fp r preserved -> R.add_fp r v
    | _ -> v
  in
  let dirty_res =
    Reg_solver.solve ~dir:Dataflow.Forward ~init:R.empty ~boundary:R.empty
      ~join:R.union ~transfer:dirty_tf cfg
  in

  (* The per-pc check walk: SSR discipline + read-before-write + ABI. *)
  for pc = func.Cfg.entry to func.Cfg.last do
    match ssr_in.(rel pc) with
    | None -> () (* unreachable *)
    | Some s -> (
      let insn = insns.(pc) in
      let enabled = s.en land 2 <> 0 in
      (match insn with
      | Insn.Scfgwi (_, imm) ->
        let slot = imm / 8 and dm = imm mod 8 in
        if enabled then
          report ~cls:cls_ssr pc "scfgwi while streaming is enabled"
        else if dm < 0 || dm > 2 then
          report ~cls:cls_ssr pc "scfgwi: bad data mover %d" dm
        else if not ((slot >= 1 && slot <= 10) || (slot >= 24 && slot < 32))
        then report ~cls:cls_ssr pc "scfgwi: bad slot %d" slot
        else if slot = 10 && get_dm s dm land 6 <> 0 then
          report ~severity:D.Warning ~cls:cls_ssr pc
            "scfgwi: element width for data mover %d written after the \
             stream was armed (takes effect only at the next arm)"
            dm
      | Insn.Ret ->
        if enabled then
          report ~severity:D.Warning ~cls:cls_ssr pc
            "function returns with streaming still enabled"
      | _ -> ());
      (* DMA / barrier discipline: every launch fully programmed, no
         rendezvous or return with a transfer that may still be in
         flight (the barrier does not drain the DMA engine). *)
      (match (insn, dma_in.(rel pc)) with
      | Insn.Dm_cpy _, Some d ->
        let missing =
          List.filter_map
            (fun (bit, name) -> if d land bit <> 0 then Some name else None)
            [
              (dma_src_unset, "source (dmsrc)");
              (dma_dst_unset, "destination (dmdst)");
              (dma_str_unset, "stride (dmstr)");
              (dma_rep_unset, "repetition (dmrep)");
            ]
        in
        if missing <> [] then
          report ~cls:cls_dma pc
            "dmcpy launches with the %s register%s unprogrammed on some path"
            (String.concat ", " missing)
            (if List.length missing > 1 then "s" else "")
      | Insn.Barrier, Some d ->
        if enabled then
          report ~cls:cls_dma pc "barrier inside an SSR streaming region";
        if d land dma_pending <> 0 then
          report ~cls:cls_dma pc
            "barrier with a DMA transfer still in flight: the barrier does \
             not drain the DMA engine, issue dmwait first"
      | Insn.Ret, Some d ->
        if d land dma_pending <> 0 then
          report ~severity:D.Warning ~cls:cls_dma pc
            "function returns with a DMA transfer possibly in flight"
      | _ -> ());
      (* Stream accesses of ft0-ft2 while streaming may be enabled. *)
      if enabled then begin
        List.iter
          (fun r ->
            if r < 3 then begin
              let a = get_dm s r in
              if a land 1 <> 0 then
                report ~cls:cls_ssr pc "ft%d: read from an unconfigured stream" r
              else if a land 4 <> 0 then
                report ~cls:cls_ssr pc "ft%d: reading from a write stream" r
            end)
          (List.sort_uniq compare (fp_stream_srcs insn));
        match Insn.deps insn with
        | _, _, _, Some r when r < 3 ->
          let a = get_dm s r in
          if a land 1 <> 0 then
            report ~cls:cls_ssr pc "ft%d: write to an unconfigured stream" r
          else if a land 2 <> 0 then
            report ~cls:cls_ssr pc "ft%d: writing to a read stream" r
        | _ -> ()
      end;
      (* Read-before-write (the frep.o repetition register is checked by
         the frep-legality class instead). *)
      (match insn with
      | Insn.Frep_o _ -> ()
      | _ ->
        let int_srcs, fp_srcs, _, _ = Insn.deps insn in
        let defined = defined_in.(rel pc) in
        List.iter
          (fun r ->
            if not (R.mem_int r defined) then
              report ~cls:cls_rbw pc
                "register %s may be read before it is written"
                (Mlc_riscv.Reg.int_name_of_index r))
          (List.sort_uniq compare int_srcs);
        List.iter
          (fun r ->
            if not (r < 3 && enabled) && not (R.mem_fp r defined) then
              report ~cls:cls_rbw pc
                "register %s may be read before it is written"
                (Mlc_riscv.Reg.float_name_of_index r))
          (List.sort_uniq compare fp_srcs));
      (* ABI preservation at returns. *)
      match insn with
      | Insn.Ret ->
        let dirty =
          R.inter (Reg_solver.at dirty_res ~transfer:dirty_tf cfg pc) preserved
        in
        let name_bits mask name_of =
          List.filter_map
            (fun i -> if mask land (1 lsl i) <> 0 then Some (name_of i) else None)
            (List.init 32 Fun.id)
        in
        let clobbered =
          name_bits dirty.R.ints Mlc_riscv.Reg.int_name_of_index
          @ name_bits dirty.R.fps Mlc_riscv.Reg.float_name_of_index
        in
        if clobbered <> [] then
          report ~cls:cls_abi pc
            "callee-saved register%s %s clobbered on a path to this return \
             (the backend never saves/restores)"
            (if List.length clobbered > 1 then "s" else "")
            (String.concat ", " clobbered)
      | _ -> ())
  done;

  (* FREP legality. *)
  List.iter
    (fun (pc, len) ->
      if pc + len > func.Cfg.last then
        report ~cls:cls_frep pc "frep body runs past the end of the function"
      else begin
        if len = 0 then
          report ~severity:D.Warning ~cls:cls_frep pc "frep with an empty body";
        for b = pc + 1 to pc + len do
          if not (Insn.is_fpu insns.(b)) then
            report ~cls:cls_frep pc
              "frep body contains a non-FPU instruction: %s"
              (Asm_parse.render insns.(b))
        done
      end;
      match (insns.(pc), ssr_in.(rel pc)) with
      | Insn.Frep_o (rs, _), Some _ ->
        if not (R.mem_int rs defined_in.(rel pc)) then
          report ~cls:cls_frep pc
            "frep repetition register %s may be read before it is written"
            (Mlc_riscv.Reg.int_name_of_index rs)
      | _ -> ())
    cfg.Cfg.freps;
  for pc = func.Cfg.entry to func.Cfg.last do
    match insns.(pc) with
    | Insn.Branch (_, _, _, t) | Insn.J t ->
      List.iter
        (fun (fpc, len) ->
          if t > fpc && t <= fpc + len && not (pc > fpc && pc <= fpc + len) then
            report ~cls:cls_frep pc "branch into an FREP body (target pc %d)" t)
        cfg.Cfg.freps
    | _ -> ()
  done;

  (* Stream balance: a linear scan with a local constant model, checking
     statically countable regions. *)
  balance_scan
    ~report:(fun ?severity ~cls pc msg ->
      match severity with
      | Some sev -> report ~severity:sev ~cls pc "%s" msg
      | None -> report ~cls pc "%s" msg)
    cfg;

  List.rev !out

let check_program (p : Program.t) : D.t list =
  Cfg.functions p
  |> List.concat_map (fun f -> check_function p f)
  |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

let check_module m = check_program (Mlc_riscv.Insn_emit.emit_module m)
let errors ds = List.filter (fun d -> d.D.severity = D.Error) ds

let error_of ds =
  match errors ds with
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun d e -> D.add_note d (D.summary e)) first rest)
