(* The generic worklist dataflow solver the linter's analyses run on.
   Blocks are processed in layout order (reverse layout for backward
   problems) until no block's input changes; FREP bodies need no special
   handling (see cfg.mli). *)

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
end

module Solver (D : DOMAIN) = struct
  type result = { dir : direction; block_in : D.t array }

  (* Push a value across a whole block in execution order. *)
  let through_block ~dir ~transfer (b : Cfg.block) v =
    let acc = ref v in
    (match dir with
    | Forward -> for pc = b.first to b.last do acc := transfer pc !acc done
    | Backward -> for pc = b.last downto b.first do acc := transfer pc !acc done);
    !acc

  let solve ~dir ~init ~boundary ~join ~transfer (cfg : Cfg.t) =
    let blocks = cfg.Cfg.blocks in
    let n = Array.length blocks in
    let block_in = Array.make n init in
    let block_out = Array.make n init in
    let is_boundary (b : Cfg.block) =
      match dir with
      | Forward -> b.Cfg.first = cfg.Cfg.func.Cfg.entry
      | Backward -> b.Cfg.succs = []
    in
    let order =
      Array.init n (fun i -> match dir with Forward -> i | Backward -> n - 1 - i)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun i ->
          let b = blocks.(i) in
          let preds =
            match dir with Forward -> b.Cfg.preds | Backward -> b.Cfg.succs
          in
          let inv =
            List.fold_left
              (fun acc p -> join acc block_out.(p))
              (if is_boundary b then boundary else init)
              preds
          in
          if not (D.equal inv block_in.(i)) then begin
            block_in.(i) <- inv;
            changed := true
          end;
          let outv = through_block ~dir ~transfer b block_in.(i) in
          if not (D.equal outv block_out.(i)) then begin
            block_out.(i) <- outv;
            changed := true
          end)
        order
    done;
    { dir; block_in }

  let iter r ~transfer (cfg : Cfg.t) f =
    Array.iteri
      (fun i (b : Cfg.block) ->
        match r.dir with
        | Forward ->
          let acc = ref r.block_in.(i) in
          for pc = b.Cfg.first to b.Cfg.last do
            f pc !acc;
            acc := transfer pc !acc
          done
        | Backward ->
          let acc = ref r.block_in.(i) in
          for pc = b.Cfg.last downto b.Cfg.first do
            f pc !acc;
            acc := transfer pc !acc
          done)
      cfg.Cfg.blocks

  let at r ~transfer (cfg : Cfg.t) pc =
    let b = Cfg.block_at cfg pc in
    let acc = ref r.block_in.(b.Cfg.id) in
    (match r.dir with
    | Forward ->
      for q = b.Cfg.first to pc - 1 do
        acc := transfer q !acc
      done
    | Backward ->
      for q = b.Cfg.last downto pc + 1 do
        acc := transfer q !acc
      done);
    !acc
end

module Regset = struct
  type t = { ints : int; fps : int }

  let empty = { ints = 0; fps = 0 }
  let full = { ints = -1; fps = -1 }
  let equal a b = a.ints = b.ints && a.fps = b.fps
  let union a b = { ints = a.ints lor b.ints; fps = a.fps lor b.fps }
  let inter a b = { ints = a.ints land b.ints; fps = a.fps land b.fps }
  let add_int r s = { s with ints = s.ints lor (1 lsl r) }
  let add_fp r s = { s with fps = s.fps lor (1 lsl r) }
  let mem_int r s = s.ints land (1 lsl r) <> 0
  let mem_fp r s = s.fps land (1 lsl r) <> 0

  let of_lists ~ints ~fps =
    List.fold_left (fun s r -> add_fp r s) (List.fold_left (fun s r -> add_int r s) empty ints) fps
end

module Live = Solver (Regset)

let liveness (cfg : Cfg.t) =
  let insns = cfg.Cfg.program.Mlc_sim.Program.insns in
  let transfer pc (v : Regset.t) =
    (* Backward: live-before = (live-after \ defs) ∪ uses. *)
    let int_srcs, fp_srcs, int_dst, fp_dst = Mlc_sim.Insn.deps insns.(pc) in
    let v =
      match int_dst with
      | Some r -> { v with Regset.ints = v.Regset.ints land lnot (1 lsl r) }
      | None -> v
    in
    let v =
      match fp_dst with
      | Some r -> { v with Regset.fps = v.Regset.fps land lnot (1 lsl r) }
      | None -> v
    in
    let v = List.fold_left (fun s r -> Regset.add_int r s) v int_srcs in
    List.fold_left (fun s r -> Regset.add_fp r s) v fp_srcs
  in
  let r =
    Live.solve ~dir:Backward ~init:Regset.empty ~boundary:Regset.empty
      ~join:Regset.union ~transfer cfg
  in
  (* [iter]/[at] on a backward result deliver the value *after* the pc;
     liveness conventionally reports live-in, so push one more step. *)
  fun pc -> transfer pc (Live.at r ~transfer cfg pc)
