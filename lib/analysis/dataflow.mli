(** A generic iterative forward/backward dataflow solver over {!Cfg.t},
    plus the register-set lattice and a liveness instance. The linter's
    checks (definite assignment, SSR discipline, ABI preservation) are
    instantiations in {!Lint}. *)

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val equal : t -> t -> bool
end

module Solver (D : DOMAIN) : sig
  type result

  (** Solve to a fixpoint. [init] is the optimistic starting value for
      every block boundary (bottom of the join lattice: the empty set
      for may-analyses, the full set for must-analyses); [boundary] is
      the value holding at the function entry (Forward) or at every
      exit block (Backward); [transfer pc v] pushes the value across
      one instruction. *)
  val solve :
    dir:direction ->
    init:D.t ->
    boundary:D.t ->
    join:(D.t -> D.t -> D.t) ->
    transfer:(int -> D.t -> D.t) ->
    Cfg.t ->
    result

  (** Visit every pc of the function with the solved per-pc value: the
      value holding {e before} the instruction executes (Forward) or
      the value holding {e after} it (Backward, i.e. its live-out-style
      fact). Blocks are visited in layout order. *)
  val iter :
    result -> transfer:(int -> D.t -> D.t) -> Cfg.t -> (int -> D.t -> unit) -> unit

  (** The per-pc value (as delivered by {!iter}) at one pc. *)
  val at : result -> transfer:(int -> D.t -> D.t) -> Cfg.t -> int -> D.t
end

(** Sets of hardware registers (int + FP), as a pair of 32-bit masks. *)
module Regset : sig
  type t = { ints : int; fps : int }

  val empty : t
  val full : t
  val equal : t -> t -> bool
  val union : t -> t -> t
  val inter : t -> t -> t
  val add_int : int -> t -> t
  val add_fp : int -> t -> t
  val mem_int : int -> t -> bool
  val mem_fp : int -> t -> bool
  val of_lists : ints:int list -> fps:int list -> t
end

(** Backward may-liveness over {!Insn.deps}: [liveness cfg pc] is the
    set of registers live {e into} pc (read at or after pc on some path
    before being overwritten). *)
val liveness : Cfg.t -> int -> Regset.t
