(** Control-flow structure for the machine-code linter, at two levels:

    - a flat CFG over a pre-decoded {!Mlc_sim.Program.t} (basic blocks
      with successor/predecessor edges, one per emitted function), the
      representation every dataflow analysis in {!Dataflow} runs on;
    - the pre-order linearisation of a *structured* [rv_func.func] body
      (positions and loop extents), shared with the register-allocation
      checker so both verifiers agree on what "program point" means.

    FREP bodies are straight-line by construction (a branch inside one
    is flagged by the linter) and are kept inside their enclosing block;
    the hardware loop they form is exposed through {!t.freps}. The
    repetition does not need a CFG back edge: a body is FPU-only, so
    replaying it cannot change any dataflow fact a second time that it
    did not already establish on the first replay. *)

(** One emitted function: the half-open label scan of the program — a
    non-local label (no leading ['.']) starts a function that extends to
    the instruction before the next one (or the program end). A program
    without any such label is treated as a single anonymous function. *)
type func = { fname : string; entry : int; last : int }

type block = {
  id : int;
  first : int;  (** first pc of the block *)
  last : int;  (** last pc of the block (inclusive) *)
  mutable succs : int list;  (** successor block ids *)
  mutable preds : int list;  (** predecessor block ids *)
}

type t = {
  program : Mlc_sim.Program.t;
  func : func;
  blocks : block array;  (** in ascending pc order; [blocks.(0)] is entry *)
  freps : (int * int) list;  (** (frep.o pc, body length), ascending pc *)
  escapes : (int * int) list;
      (** (branch pc, target pc) of control transfers leaving the
          function's pc range — always a linter finding *)
}

val functions : Mlc_sim.Program.t -> func list
val build : Mlc_sim.Program.t -> func -> t

(** The block containing [pc]; raises [Invalid_argument] outside the
    function's range. *)
val block_at : t -> int -> block

(** Is [pc] the target of some branch or jump of this function? *)
val is_branch_target : t -> int -> bool

(** {1 Structured linearisation}

    The pre-order walk shared by the allocator's independent live-range
    checker: every op gets a position; an op with regions additionally
    owns the extent [(start, end_)] spanning its nested ops plus one
    trailing back-edge position. *)

type linear = {
  op_pos : (int, int) Hashtbl.t;  (** op id -> pre-order position *)
  loop_extent : (int, int * int) Hashtbl.t;
      (** region-holding op id -> (start, end) *)
}

val linearize : Mlc_ir.Ir.region -> linear

(** Is this op one of the backend's structured loops
    ([rv_scf.for] / [rv_snitch.frep_outer])? *)
val is_structured_loop : Mlc_ir.Ir.op -> bool
