(** The machine-code sanitizer: Snitch-contract checks over an emitted
    program, run after every compile. Each check is an instantiation of
    the {!Dataflow} framework over the {!Cfg} of each emitted function;
    findings are structured diagnostics with [component = "lint"], the
    check class in [pass] and pc/instruction provenance in [op].

    Check classes and their contracts (DESIGN.md, "Static analysis"):
    - ["cfg"]: control transfers must stay inside the function and every
      path must end in [ret];
    - ["read-before-write"]: no register is read on some path before a
      definition reaches it (must-defined forward analysis; FP reads of
      ft0–ft2 while streaming may be enabled are stream pops, not
      register reads, and stream pushes do not define the register);
    - ["ssr-discipline"]: ft0–ft2 touched only between ssr_enable and
      ssr_disable with the corresponding data mover armed in the right
      direction; no [scfgwi] while enabled; config writes use valid
      slots/movers; the element width is written before the arm;
    - ["frep-legality"]: an FREP body lies inside the function, is
      FPU-only, no branch enters it, and the repetition register is
      defined at the [frep.o];
    - ["abi-preservation"]: no path to a [ret] clobbers a callee-saved
      register (the backend never saves/restores, so writing one is
      always a bug);
    - ["stream-balance"]: where the stream pattern and trip counts are
      compile-time constants, the ft0–ft2 pops/pushes of a streaming
      region match the armed capacity (overrun = error: it traps;
      underrun = warning: elements are silently left unserved);
    - ["dma-discipline"]: every [dmcpy] has all four transfer registers
      (dmsrc/dmdst/dmstr/dmrep) programmed on every path since function
      entry; no [barrier] inside an SSR streaming region or with a DMA
      transfer still in flight (the barrier does not drain the engine —
      data handed to another core could race the transfer); returning
      with a transfer in flight is a warning. These fire on the
      cluster wrapper programs (see {!Mlc_riscv.Cluster_wrap}) —
      single-core kernels contain none of the checked instructions.

    Differential invariant against the simulator's trap model: an error
    of a class in {!trap_classes} predicts a [Stream_fault]/[Illegal]
    trap on some path; a program whose run does not trap must lint clean
    of those classes. The fuzz oracle cross-checks this on every case. *)

(** Classes whose errors correspond to runtime
    [Trap.Stream_fault]/[Trap.Illegal] faults:
    ["ssr-discipline"], ["frep-legality"], ["stream-balance"]. *)
val trap_classes : string list

(** All findings for a pre-decoded program, in pc order. *)
val check_program : Mlc_sim.Program.t -> Mlc_diag.Diag.t list

(** Emit an allocated module through {!Mlc_riscv.Insn_emit} and check
    the resulting program. *)
val check_module : Mlc_ir.Ir.op -> Mlc_diag.Diag.t list

(** Error-severity findings only. *)
val errors : Mlc_diag.Diag.t list -> Mlc_diag.Diag.t list

(** Aggregate the errors of a finding list into a single diagnostic
    (first error, remaining ones as notes), or [None] when clean. *)
val error_of : Mlc_diag.Diag.t list -> Mlc_diag.Diag.t option
