(* The rv_cf dialect: unstructured control flow between basic blocks via
   RISC-V jump and branch instructions (paper §3.1). Used only after
   register allocation, when structured loops are flattened; blocks carry
   no arguments because data flows through physical registers. *)

open Mlc_ir

let j_op =
  Op_registry.register "rv_cf.j" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      if List.length (Ir.Op.successors op) <> 1 then
        Op_registry.fail_op op "j requires exactly one successor")

let branch_verify op =
  Op_registry.expect_num_operands op 2;
  Op_registry.expect_num_results op 0;
  if List.length (Ir.Op.successors op) <> 2 then
    Op_registry.fail_op op "conditional branch requires taken and fallthrough successors"

(* Conditional branches: successors are [taken; fallthrough]. *)
let beq_op = Op_registry.register "rv_cf.beq" ~terminator:true ~verify:branch_verify
let bne_op = Op_registry.register "rv_cf.bne" ~terminator:true ~verify:branch_verify
let blt_op = Op_registry.register "rv_cf.blt" ~terminator:true ~verify:branch_verify
let bge_op = Op_registry.register "rv_cf.bge" ~terminator:true ~verify:branch_verify

let j b target = Builder.create0 b ~successors:[ target ] j_op []

let branch b name lhs rhs ~taken ~fallthrough =
  Builder.create0 b ~successors:[ taken; fallthrough ] name [ lhs; rhs ]
