(** The snitch_stream dialect: the register-level counterpart of
    memref_stream.streaming_region (paper §3.2, Figure 6 c). Holds
    fully-resolved stream configurations (upper bounds and byte strides,
    outermost first; a trailing zero-stride dimension encodes the
    hardware repeat) as compile-time constants, plus one pointer operand
    per stream. The region's block arguments are the SSR data registers
    (ft0, ft1, ft2 in operand order). *)

open Mlc_ir

val streaming_region_op : string
val num_ins : Ir.op -> int
val patterns : Ir.op -> Attr.stride_pattern list

(** Element size in bytes served per stream access: 8 (f64 and
    packed-SIMD f32) or 4 (scalar f32). Defaults to 8 per stream when
    the region carries no widths attribute. *)
val widths : Ir.op -> int list

(** [streaming_region b ~patterns ?widths ~ins ~outs f]: [ins]/[outs]
    are pointer registers; [f] receives the body builder and the SSR
    register values (readable streams first). [widths] defaults to 8
    bytes for every stream; scalar-f32 streams must pass 4. *)
val streaming_region :
  Builder.t ->
  patterns:Attr.stride_pattern list ->
  ?widths:int list ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  (Builder.t -> Ir.value list -> unit) ->
  Ir.op

val body : Ir.op -> Ir.block
