(** Per-core program composition for the cluster lowering: splice one
    compiled tile kernel (see {!Mlc_transforms.Lower_forall}) into
    [cores] per-core programs with DMA staging of each core's row
    chunks, optional double-buffering, and the end-of-kernel barrier.
    See the implementation header for the full wrapper layout. *)

open Mlc_sim

exception Wrap_error of string

(** Entry label of every composed per-core program. *)
val entry_label : string

(** One tile-function argument, as the wrapper stages it. *)
type arg_plan = {
  ap_reg : int;  (** x-register (buffers) or f-register (scalars) *)
  ap_scalar : bool;  (** FP scalar argument (lives in an f-register) *)
  ap_partitioned : bool;
  ap_input : bool;  (** partitioned input: DMA-in per chunk *)
  ap_output : bool;  (** partitioned output: DMA-out per chunk *)
  ap_rows_chunk : int;  (** rows per chunk (partitioned only) *)
  ap_row_bytes : int;  (** bytes per row (partitioned only) *)
}

type mode =
  | Staged  (** DMA row chunks through per-core scratch *)
  | In_place  (** offset pointers, run against shared TCDM directly *)

type plan = {
  cores : int;  (** cluster size N *)
  active : int;  (** cores that run the kernel (T) *)
  halves : int;  (** chunks per active core (1, or 2 = double-buffered) *)
  mode : mode;
  args : arg_plan array;
  scratch_base : int;  (** first byte of core 0's scratch carve-out *)
  scratch_stride : int;  (** bytes of scratch per core *)
}

(** Bytes of scratch (save area + chunk buffers) one active core needs
    for these arguments at the given buffering depth. *)
val scratch_needed : halves:int -> arg_plan array -> int

(** Scratch address of argument [arg]'s chunk buffer [half] on core
    [core]. Exposed for tests. *)
val scratch_addr : plan -> core:int -> arg:int -> half:int -> int

(** Compose the per-core programs. [tile] is the assembled tile
    kernel, [entry] its function label. Element [c] of the result is
    core [c]'s program, entered at {!entry_label}; cores beyond
    [active] get [barrier; ret]. Raises {!Wrap_error} on a malformed
    plan. *)
val compose : plan -> tile:Asm_parse.program -> entry:string -> Program.t array
