(** The rv_snitch dialect: Snitch ISA extensions (paper §2.4, §3.2).

    - [frep_outer]: the FREP hardware loop. The body may contain only
      FPU-data-path operations and stream reads/writes; loop-carried
      accumulators are iteration arguments whose registers the allocator
      unifies.
    - [read]/[write]: explicit interaction with stream semantic
      registers. A [read] yields a fresh SSA value for one popped
      element and is pinned to the SSR data register by the allocator;
      a [write]'s value must be produced directly into the register (see
      the legalize-stream-writes pass). Both emit no assembly.
    - packed SIMD ([vfadd.s] ...): 64-bit FP registers as 2 x f32 lanes;
      [vfmac.s]/[vfsum.s] are two-address (result tied to the
      accumulator operand). *)

open Mlc_ir

val read_op : string
val write_op : string
val frep_yield_op : string
val frep_outer_op : string
val scfgwi_op : string
val ssr_enable_op : string
val ssr_disable_op : string
val vfadd_s_op : string
val vfsub_s_op : string
val vfmul_s_op : string
val vfmax_s_op : string
val vfmin_s_op : string
val vfmac_s_op : string
val vfsum_s_op : string
val vfcpka_s_s_op : string

(** Is this value typed as an SSR data register (ft0-ft2)? *)
val is_stream_reg : Ir.value -> bool

(** May this op execute under the FPU sequencer (inside FREP)? *)
val is_frep_safe : string -> bool

(** Pop one element from a stream register value. *)
val read : Builder.t -> Ir.value -> Ir.value

(** Push [value] to a stream register. *)
val write : Builder.t -> Ir.value -> Ir.value -> unit

(** [frep_outer b ~rpt ~iter_args f]: executes the body [rpt]+1 times.
    [f] receives the body builder and the iteration arguments and
    returns the yielded values. *)
val frep_outer :
  Builder.t ->
  rpt:Ir.value ->
  ?iter_args:Ir.value list ->
  (Builder.t -> Ir.value list -> Ir.value list) ->
  Ir.op

val rpt : Ir.op -> Ir.value
val iter_operands : Ir.op -> Ir.value list
val body : Ir.op -> Ir.block
val yield_of : Ir.op -> Ir.op

(** Stream-configuration write: [scfgwi rs1, slot*8+dm] (assembler
    contract in DESIGN.md). *)
val scfgwi : Builder.t -> Ir.value -> slot:int -> dm:int -> unit

val ssr_enable : Builder.t -> unit
val ssr_disable : Builder.t -> unit
val vf_binary : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value

(** [vfmac_s b x y acc] — lanewise acc += x*y (two-address). *)
val vfmac_s : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value

(** [vfsum_s b s acc] — acc.lo += s.lo + s.hi (two-address). *)
val vfsum_s : Builder.t -> Ir.value -> Ir.value -> Ir.value

(** [vfcpka_s_s b lo hi] — pack two scalars into lanes. *)
val vfcpka_s_s : Builder.t -> Ir.value -> Ir.value -> Ir.value
