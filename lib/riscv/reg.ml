(* The RISC-V register model used by the backend and the register
   allocator (paper §3.3).

   The allocator draws from the caller-saved pools of the standard ABI:
   15 integer registers (a0–a7, t0–t6) and 20 floating-point registers
   (fa0–fa7, ft0–ft11). Snitch reserves ft0–ft2 as stream data registers
   while streaming is enabled. *)

type kind = Int_kind | Float_kind

(* Integer caller-saved pool, in allocation preference order. t registers
   first so that a-registers stay free for arguments/calls. *)
let int_pool =
  [ "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6";
    "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7" ]

(* FP caller-saved pool. ft0-ft2 come last: they double as SSR data
   registers and are excluded entirely inside streaming regions. *)
let float_pool =
  [ "ft3"; "ft4"; "ft5"; "ft6"; "ft7"; "ft8"; "ft9"; "ft10"; "ft11";
    "fa0"; "fa1"; "fa2"; "fa3"; "fa4"; "fa5"; "fa6"; "fa7";
    "ft0"; "ft1"; "ft2" ]

let num_int_allocatable = List.length int_pool (* 15 *)
let num_float_allocatable = List.length float_pool (* 20 *)

(* SSR data registers: reading/writing these while streaming is enabled
   pops/pushes stream elements (paper §2.4). *)
let ssr_data_registers = [ "ft0"; "ft1"; "ft2" ]
let num_ssrs = List.length ssr_data_registers

(* Special registers that are never allocated. *)
let zero = "zero"
let ra = "ra"
let sp = "sp"

(* Argument registers in ABI order. *)
let int_arg_regs = [ "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "a6"; "a7" ]
let float_arg_regs = [ "fa0"; "fa1"; "fa2"; "fa3"; "fa4"; "fa5"; "fa6"; "fa7" ]

let all_int_regs =
  zero :: ra :: sp :: "gp" :: "tp"
  :: (int_pool @ [ "s0"; "s1"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10"; "s11" ])

let all_float_regs =
  float_pool
  @ [ "fs0"; "fs1"; "fs2"; "fs3"; "fs4"; "fs5"; "fs6"; "fs7"; "fs8"; "fs9"; "fs10"; "fs11" ]

let is_int_reg r = List.mem r all_int_regs
let is_float_reg r = List.mem r all_float_regs

let kind_of r =
  if is_int_reg r then Int_kind
  else if is_float_reg r then Float_kind
  else invalid_arg ("Reg.kind_of: unknown register " ^ r)

(* Registers a function must preserve (the standard ABI's callee-saved
   set plus ra/sp/gp/tp), as hardware indices. The backend never saves
   or restores, so it must simply never write these — the machine-code
   linter enforces exactly that. *)
let preserved_int_indices =
  [ 1; 2; 3; 4 (* ra sp gp tp *); 8; 9 (* s0 s1 *) ]
  @ [ 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 (* s2-s11 *) ]

let preserved_float_indices =
  [ 8; 9 (* fs0 fs1 *) ] @ [ 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 (* fs2-fs11 *) ]

(* Registers carrying a defined value on function entry under the run
   harness's calling convention: zero/ra/sp/gp/tp and the argument
   registers a0-a7 / fa0-fa7. *)
let entry_defined_int_indices = [ 0; 1; 2; 3; 4 ] @ [ 10; 11; 12; 13; 14; 15; 16; 17 ]
let entry_defined_float_indices = [ 10; 11; 12; 13; 14; 15; 16; 17 ]

(* Hardware encoding index (x0-x31 / f0-f31), needed by the simulator. *)
let index_of r =
  let abi_int =
    [ ("zero", 0); ("ra", 1); ("sp", 2); ("gp", 3); ("tp", 4);
      ("t0", 5); ("t1", 6); ("t2", 7); ("s0", 8); ("s1", 9);
      ("a0", 10); ("a1", 11); ("a2", 12); ("a3", 13); ("a4", 14);
      ("a5", 15); ("a6", 16); ("a7", 17); ("s2", 18); ("s3", 19);
      ("s4", 20); ("s5", 21); ("s6", 22); ("s7", 23); ("s8", 24);
      ("s9", 25); ("s10", 26); ("s11", 27); ("t3", 28); ("t4", 29);
      ("t5", 30); ("t6", 31) ]
  in
  let abi_float =
    [ ("ft0", 0); ("ft1", 1); ("ft2", 2); ("ft3", 3); ("ft4", 4);
      ("ft5", 5); ("ft6", 6); ("ft7", 7); ("fs0", 8); ("fs1", 9);
      ("fa0", 10); ("fa1", 11); ("fa2", 12); ("fa3", 13); ("fa4", 14);
      ("fa5", 15); ("fa6", 16); ("fa7", 17); ("fs2", 18); ("fs3", 19);
      ("fs4", 20); ("fs5", 21); ("fs6", 22); ("fs7", 23); ("fs8", 24);
      ("fs9", 25); ("fs10", 26); ("fs11", 27); ("ft8", 28); ("ft9", 29);
      ("ft10", 30); ("ft11", 31) ]
  in
  match List.assoc_opt r abi_int with
  | Some i -> i
  | None -> (
    match List.assoc_opt r abi_float with
    | Some i -> i
    | None -> invalid_arg ("Reg.index_of: unknown register " ^ r))

(* Inverse of [index_of], for rendering hardware indices in diagnostics. *)
let int_name_of_index i =
  match List.find_opt (fun r -> index_of r = i) all_int_regs with
  | Some r -> r
  | None -> Printf.sprintf "x%d" i

let float_name_of_index i =
  match List.find_opt (fun r -> index_of r = i) all_float_regs with
  | Some r -> r
  | None -> Printf.sprintf "f%d" i
