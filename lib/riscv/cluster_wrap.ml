(* Per-core program composition for the cluster lowering: wrap one
   compiled *tile kernel* (see [Lower_forall]) into [cores] per-core
   machine-code programs with DMA staging and the end-of-kernel
   barrier.

   The wrapper works at the decoded-instruction level: the tile
   kernel's instructions are spliced verbatim with branch targets
   shifted to the splice base and each [ret] turned into a jump to the
   continuation — the per-core program is one straight program with a
   single entry label and a single final [barrier; ret].

   Per active core [c], in [`Staged] mode:

   - the original argument registers (and FP scalar arguments) are
     saved to a per-core save area at the base of the core's scratch
     carve-out: the spliced kernel clobbers argument registers, and the
     DMA-out of later chunks still needs the original pointers;
   - each of the core's [halves] row chunks of every partitioned input
     is DMA-copied from the shared buffer into per-core scratch; the
     first chunk is joined with [dmwait] before the first kernel run,
     the second streams in while the first computes (double-buffering);
   - the kernel runs once per chunk with argument registers pointed at
     the chunk's scratch buffers (partitioned) or reloaded from the
     save area (shared buffers, FP scalars);
   - after each run the chunk of every partitioned output is DMA-copied
     back to its place in the shared buffer, asynchronously;
   - a final [dmwait; barrier; ret] joins the DMA engine and the
     cluster.

   [`In_place] mode (scratch does not fit) skips all staging: the
   partitioned argument registers are offset to the core's row block
   and the kernel runs directly against the shared TCDM — correct, but
   exposed to bank contention on every access.

   Cores [c >= active] run [barrier; ret]: every core arrives at the
   one cluster barrier exactly once.

   Correctness relies on two properties the caller guarantees: row
   chunks of distinct cores never overlap (the [cluster.slice]
   contract), and outputs are fully written by the kernel (the fill +
   generic structure of every registry kernel), so copying whole chunks
   back cannot lose data. *)

open Mlc_sim

exception Wrap_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Wrap_error s)) fmt
let entry_label = "cluster_main"

(* One function argument of the tile kernel, as the wrapper sees it. *)
type arg_plan = {
  ap_reg : int;  (** x-register (buffers) or f-register (scalars) *)
  ap_scalar : bool;  (** FP scalar argument (lives in an f-register) *)
  ap_partitioned : bool;
  ap_input : bool;  (** partitioned input: DMA-in per chunk *)
  ap_output : bool;  (** partitioned output: DMA-out per chunk *)
  ap_rows_chunk : int;  (** rows per chunk (partitioned only) *)
  ap_row_bytes : int;  (** bytes per row (partitioned only) *)
}

type mode = Staged | In_place

type plan = {
  cores : int;  (** cluster size N *)
  active : int;  (** cores that run the kernel (T) *)
  halves : int;  (** chunks per active core (1, or 2 = double-buffered) *)
  mode : mode;
  args : arg_plan array;
  scratch_base : int;  (** first byte of core 0's scratch carve-out *)
  scratch_stride : int;  (** bytes of scratch per core *)
}

let chunk_bytes a = a.ap_rows_chunk * a.ap_row_bytes

(* Save-area slot of argument [i]: 8 bytes each, pointers and scalars
   alike. *)
let save_off i = 8 * i

let save_bytes (p : plan) = ((8 * Array.length p.args) + 7) / 8 * 8

(* Scratch address of argument [i]'s buffer for chunk-half [h] on core
   [c]. Buffers are packed after the save area, all [halves] chunks of
   each partitioned argument in turn; every size is 8-aligned by
   construction of the plan. *)
let scratch_addr (p : plan) ~core ~arg ~half =
  let base = ref (p.scratch_base + (core * p.scratch_stride) + save_bytes p) in
  let addr = ref (-1) in
  Array.iteri
    (fun i a ->
      if a.ap_partitioned then begin
        if i = arg then addr := !base + (half * ((chunk_bytes a + 7) / 8 * 8));
        base := !base + (p.halves * ((chunk_bytes a + 7) / 8 * 8))
      end)
    p.args;
  if !addr < 0 then err "argument %d is not partitioned" arg;
  !addr

(* Bytes of scratch one active core needs under this plan. *)
let scratch_needed ~halves args =
  let save = ((8 * Array.length args) + 7) / 8 * 8 in
  Array.fold_left
    (fun acc a ->
      if a.ap_partitioned then acc + (halves * ((chunk_bytes a + 7) / 8 * 8))
      else acc)
    save args

(* Scratch registers the wrapper burns between kernel runs; all
   caller-saved, all reloaded before they matter. *)
let t2 = Asm_parse.xreg "t2"
let t3 = Asm_parse.xreg "t3"
let t4 = Asm_parse.xreg "t4"
let t5 = Asm_parse.xreg "t5"
let t6 = Asm_parse.xreg "t6"

(* Program one 2D contiguous-chunk transfer and launch it. [src]/[dst]
   emit the address into the given register. *)
let emit_dma q ~src ~dst a =
  src t5;
  dst t4;
  let add i = Queue.add i q in
  add (Insn.Dm_src t5);
  add (Insn.Dm_dst t4);
  add (Insn.Li (t3, Int64.of_int a.ap_row_bytes));
  add (Insn.Dm_str (t3, t3));
  add (Insn.Li (t2, Int64.of_int a.ap_rows_chunk));
  add (Insn.Dm_rep t2);
  add (Insn.Dm_cpy t3)

(* Compose the per-core programs. [tile] is the assembled tile kernel,
   [entry] the tile function's label. Returns one pre-decoded program
   per core, each entered at {!entry_label}. *)
let compose (p : plan) ~(tile : Asm_parse.program) ~entry : Program.t array =
  if p.active < 1 || p.active > p.cores then err "invalid active core count";
  if p.halves <> 1 && p.halves <> 2 then err "halves must be 1 or 2";
  if p.mode = In_place && p.halves <> 1 then
    err "in-place mode cannot double-buffer";
  let tile_entry = Asm_parse.entry tile entry in
  let tile_len = Array.length tile.Asm_parse.insns in
  let idle_program () =
    let insns = [| Insn.Barrier; Insn.Ret |] in
    let labels = Hashtbl.create 1 in
    Hashtbl.replace labels entry_label 0;
    Program.make ~insns ~labels ()
  in
  let core_program c =
    if c >= p.active then idle_program ()
    else begin
      let q : Insn.t Queue.t = Queue.create () in
      let add i = Queue.add i q in
      let li r v = add (Insn.Li (r, Int64.of_int v)) in
      let save_base = p.scratch_base + (c * p.scratch_stride) in
      let chunk_id h = (c * p.halves) + h in
      (match p.mode with
      | In_place ->
        (* Offset partitioned pointers to this core's row block. *)
        Array.iter
          (fun a ->
            if a.ap_partitioned then
              add
                (Insn.Alui
                   ( Insn.Add,
                     a.ap_reg,
                     a.ap_reg,
                     Int64.of_int (chunk_id 0 * chunk_bytes a) )))
          p.args
      | Staged ->
        (* Save original pointers and FP scalars. *)
        li t6 save_base;
        Array.iteri
          (fun i a ->
            if a.ap_scalar then add (Insn.Fstore (8, a.ap_reg, save_off i, t6))
            else add (Insn.Store (8, a.ap_reg, save_off i, t6)))
          p.args;
        (* DMA-in every chunk of every partitioned input; join the
           first before computing, let the rest stream. *)
        for h = 0 to p.halves - 1 do
          Array.iteri
            (fun i a ->
              if a.ap_input then
                emit_dma q a
                  ~src:(fun r ->
                    add
                      (Insn.Alui
                         ( Insn.Add,
                           r,
                           a.ap_reg,
                           Int64.of_int (chunk_id h * chunk_bytes a) )))
                  ~dst:(fun r -> li r (scratch_addr p ~core:c ~arg:i ~half:h)))
            p.args;
          if h = 0 then add Insn.Dm_wait
        done);
      (* One kernel run per chunk. *)
      for h = 0 to (match p.mode with In_place -> 0 | Staged -> p.halves - 1) do
        (match p.mode with
        | In_place -> ()
        | Staged ->
          (* Chunk h's DMA-in must have landed (h = 0 was joined above;
             the single-queue engine orders everything before it). *)
          if h > 0 then add Insn.Dm_wait;
          li t6 save_base;
          Array.iteri
            (fun i a ->
              if a.ap_scalar then add (Insn.Fload (8, a.ap_reg, save_off i, t6))
              else if a.ap_partitioned then
                li a.ap_reg (scratch_addr p ~core:c ~arg:i ~half:h)
              else add (Insn.Load (8, a.ap_reg, save_off i, t6)))
            p.args);
        (* Splice the tile kernel: jump to its entry, shift its branch
           targets, and turn each ret into a jump past the splice. *)
        let base = Queue.length q in
        let cont = base + 1 + tile_len in
        add (Insn.J (base + 1 + tile_entry));
        Array.iter
          (fun insn ->
            add
              (match insn with
              | Insn.Branch (cond, rs1, rs2, target) ->
                Insn.Branch (cond, rs1, rs2, base + 1 + target)
              | Insn.J target -> Insn.J (base + 1 + target)
              | Insn.Ret -> Insn.J cont
              | i -> i))
          tile.Asm_parse.insns;
        (* DMA the chunk of every partitioned output back, async. *)
        match p.mode with
        | In_place -> ()
        | Staged ->
          li t6 save_base;
          Array.iteri
            (fun i a ->
              if a.ap_output then
                emit_dma q a
                  ~src:(fun r -> li r (scratch_addr p ~core:c ~arg:i ~half:h))
                  ~dst:(fun r ->
                    add (Insn.Load (8, r, save_off i, t6));
                    add
                      (Insn.Alui
                         ( Insn.Add,
                           r,
                           r,
                           Int64.of_int (chunk_id h * chunk_bytes a) ))))
            p.args
      done;
      (match p.mode with Staged -> add Insn.Dm_wait | In_place -> ());
      add Insn.Barrier;
      add Insn.Ret;
      let insns = Array.of_seq (Queue.to_seq q) in
      let labels = Hashtbl.create 1 in
      Hashtbl.replace labels entry_label 0;
      Program.make ~insns ~labels ()
    end
  in
  Array.init p.cores core_program
