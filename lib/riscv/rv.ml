(* The rv dialect: RISC-V assembly instructions as SSA operations
   (paper §3.1, Figure 6). Source registers are operands, destination
   registers are results; the physical register lives in the value's
   type, so unallocated code and allocated code share one representation.

   The dialect is register-typed only: lowering from arith/scf converts
   builtin-typed values into register-typed ones. *)

open Mlc_ir

let reg_of v =
  match Ir.Value.ty v with
  | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) -> r
  | _ ->
    invalid_arg
      (Fmt.str "Rv.reg_of: value %a has no allocated register" Ir.Value.pp v)

let int_reg = Ty.Int_reg None
let float_reg = Ty.Float_reg None

let is_int_reg_ty v =
  match Ir.Value.ty v with Ty.Int_reg _ -> true | _ -> false

let is_float_reg_ty v =
  match Ir.Value.ty v with Ty.Float_reg _ -> true | _ -> false

let expect_int_reg op i =
  if not (is_int_reg_ty (Ir.Op.operand op i)) then
    Op_registry.fail_op op "operand %d must be an integer register" i

let expect_float_reg op i =
  if not (is_float_reg_ty (Ir.Op.operand op i)) then
    Op_registry.fail_op op "operand %d must be a float register" i

(* --- op registration helpers --- *)

let reg_rr name =
  (* (rs1, rs2) -> rd, all integer registers *)
  Op_registry.register name ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0;
      expect_int_reg op 1)

let reg_ri name =
  (* (rs1) {imm} -> rd *)
  Op_registry.register name ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0;
      Op_registry.expect_attr op "imm")

let reg_fff name =
  (* (fs1, fs2) -> fd *)
  Op_registry.register name ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 1;
      expect_float_reg op 0;
      expect_float_reg op 1)

let reg_ffff name =
  (* (fs1, fs2, fs3) -> fd *)
  Op_registry.register name ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 3;
      Op_registry.expect_num_results op 1;
      expect_float_reg op 0;
      expect_float_reg op 1;
      expect_float_reg op 2)

(* --- integer ops --- *)

let get_register_op =
  Op_registry.register "rv.get_register" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 1;
      match Ir.Value.ty (Ir.Op.result op 0) with
      | Ty.Int_reg (Some _) | Ty.Float_reg (Some _) -> ()
      | _ -> Op_registry.fail_op op "result must name a concrete register")

let li_op =
  Op_registry.register "rv.li" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 1;
      Op_registry.expect_attr op "imm")

let mv_op =
  Op_registry.register "rv.mv" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0)

let add_op = reg_rr "rv.add"
let sub_op = reg_rr "rv.sub"
let mul_op = reg_rr "rv.mul"
let div_op = reg_rr "rv.div"
let and_op = reg_rr "rv.and"
let or_op = reg_rr "rv.or"
let xor_op = reg_rr "rv.xor"
let slt_op = reg_rr "rv.slt"
let addi_op = reg_ri "rv.addi"
let slli_op = reg_ri "rv.slli"
let srai_op = reg_ri "rv.srai"
let andi_op = reg_ri "rv.andi"

let load_verify op =
  Op_registry.expect_num_operands op 1;
  Op_registry.expect_num_results op 1;
  expect_int_reg op 0;
  Op_registry.expect_attr op "offset"

let store_verify op =
  Op_registry.expect_num_operands op 2;
  Op_registry.expect_num_results op 0;
  expect_int_reg op 1;
  Op_registry.expect_attr op "offset"

let lw_op = Op_registry.register "rv.lw" ~verify:load_verify
let ld_op = Op_registry.register "rv.ld" ~verify:load_verify
let sw_op = Op_registry.register "rv.sw" ~verify:store_verify
let sd_op = Op_registry.register "rv.sd" ~verify:store_verify

(* --- floating-point ops --- *)

let fload_verify op =
  Op_registry.expect_num_operands op 1;
  Op_registry.expect_num_results op 1;
  expect_int_reg op 0;
  Op_registry.expect_attr op "offset"

let fstore_verify op =
  Op_registry.expect_num_operands op 2;
  Op_registry.expect_num_results op 0;
  expect_float_reg op 0;
  expect_int_reg op 1;
  Op_registry.expect_attr op "offset"

let flw_op = Op_registry.register "rv.flw" ~verify:fload_verify
let fld_op = Op_registry.register "rv.fld" ~verify:fload_verify
let fsw_op = Op_registry.register "rv.fsw" ~verify:fstore_verify
let fsd_op = Op_registry.register "rv.fsd" ~verify:fstore_verify

let fadd_d_op = reg_fff "rv.fadd.d"
let fsub_d_op = reg_fff "rv.fsub.d"
let fmul_d_op = reg_fff "rv.fmul.d"
let fdiv_d_op = reg_fff "rv.fdiv.d"
let fmax_d_op = reg_fff "rv.fmax.d"
let fmin_d_op = reg_fff "rv.fmin.d"
let fadd_s_op = reg_fff "rv.fadd.s"
let fsub_s_op = reg_fff "rv.fsub.s"
let fmul_s_op = reg_fff "rv.fmul.s"
let fdiv_s_op = reg_fff "rv.fdiv.s"
let fmax_s_op = reg_fff "rv.fmax.s"
let fmin_s_op = reg_fff "rv.fmin.s"
let fmadd_d_op = reg_ffff "rv.fmadd.d"
let fmadd_s_op = reg_ffff "rv.fmadd.s"

(* Register-to-register FP move (fsgnj in hardware). *)
let fmv_d_op =
  Op_registry.register "rv.fmv.d" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_float_reg op 0)

(* Integer-to-float conversions; [fcvt_d_w zero] is the idiomatic way to
   materialise +0.0. *)
let fcvt_d_w_op =
  Op_registry.register "rv.fcvt.d.w" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0)

let fcvt_s_w_op =
  Op_registry.register "rv.fcvt.s.w" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0)

(* Bit-pattern move from the integer register file; used to materialise
   arbitrary FP constants from an [li]. *)
let fmv_d_x_op =
  Op_registry.register "rv.fmv.d.x" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0)

let fmv_w_x_op =
  Op_registry.register "rv.fmv.w.x" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      expect_int_reg op 0)

(* Materialise the 64-bit pattern of an FP constant in an integer
   register (printed as a hex li; a real toolchain would expand it or use
   a constant pool). Combined with fmv.d.x to form FP constants. *)
let li_bits_op =
  Op_registry.register "rv.li_bits" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 1;
      Op_registry.expect_attr op "value")

(* A free-form comment in the emitted assembly. *)
let comment_op =
  Op_registry.register "rv.comment" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_attr op "text")

(* --- smart constructors --- *)

let get_register b r = Builder.create1 b ~result:(Ty.Int_reg (Some r)) get_register_op []
let get_float_register b r =
  Builder.create1 b ~result:(Ty.Float_reg (Some r)) get_register_op []

let li b imm = Builder.create1 b ~attrs:[ ("imm", Attr.Int imm) ] ~result:int_reg li_op []

let li_bits b f =
  Builder.create1 b ~attrs:[ ("value", Attr.Float f) ] ~result:int_reg li_bits_op []
let mv b v = Builder.create1 b ~result:int_reg mv_op [ v ]
let binary b name lhs rhs = Builder.create1 b ~result:int_reg name [ lhs; rhs ]
let add b x y = binary b add_op x y
let sub b x y = binary b sub_op x y
let mul b x y = binary b mul_op x y
let addi b x imm =
  Builder.create1 b ~attrs:[ ("imm", Attr.Int imm) ] ~result:int_reg addi_op [ x ]
let slli b x imm =
  Builder.create1 b ~attrs:[ ("imm", Attr.Int imm) ] ~result:int_reg slli_op [ x ]

let load b name ?(offset = 0) addr =
  Builder.create1 b ~attrs:[ ("offset", Attr.Int offset) ] ~result:int_reg name [ addr ]

let store b name ?(offset = 0) value addr =
  Builder.create0 b ~attrs:[ ("offset", Attr.Int offset) ] name [ value; addr ]

let fload b name ?(offset = 0) addr =
  Builder.create1 b ~attrs:[ ("offset", Attr.Int offset) ] ~result:float_reg name [ addr ]

let fstore b name ?(offset = 0) value addr =
  Builder.create0 b ~attrs:[ ("offset", Attr.Int offset) ] name [ value; addr ]

let fbinary b name lhs rhs = Builder.create1 b ~result:float_reg name [ lhs; rhs ]
let fternary b name a x y = Builder.create1 b ~result:float_reg name [ a; x; y ]
let fmv_d b v = Builder.create1 b ~result:float_reg fmv_d_op [ v ]
let fcvt_d_w b v = Builder.create1 b ~result:float_reg fcvt_d_w_op [ v ]
let fmv_d_x b v = Builder.create1 b ~result:float_reg fmv_d_x_op [ v ]
let comment b text = Builder.create0 b ~attrs:[ ("text", Attr.Str text) ] comment_op []

(* Mnemonic (without the "rv." prefix) of an op name. *)
let mnemonic name =
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* Instructions whose execution happens in the FPU data path: these may
   appear inside FREP bodies and count toward FPU occupancy. *)
let is_fpu_op name =
  List.mem name
    [
      fadd_d_op; fsub_d_op; fmul_d_op; fdiv_d_op; fmax_d_op; fmin_d_op;
      fadd_s_op; fsub_s_op; fmul_s_op; fdiv_s_op; fmax_s_op; fmin_s_op;
      fmadd_d_op; fmadd_s_op; fmv_d_op; fcvt_d_w_op; fcvt_s_w_op;
      fmv_d_x_op; fmv_w_x_op;
    ]
