(* The machine-level rvv dialect: RISC-V Vector instructions as emitted
   into rv_func bodies by [Convert_to_rv]'s RVV lowering. Vector
   registers are named by integer attributes (the scalar allocator never
   sees them); scalar operands (the AVL, addresses, broadcast sources)
   are ordinary register-typed SSA values.

   The vsetvli form is always [vsetvli zero, rs, e<sew>, m1, ta, ma]:
   the lowering never needs the granted vl in a scalar register — strip
   mining advances the loop index by the compile-time VLMAX and the
   hardware clamps the tail. *)

open Mlc_ir

let expect_vreg op key =
  Op_registry.expect_attr op key;
  let v = Attr.get_int (Ir.Op.attr_exn op key) in
  if v < 0 || v > 31 then
    Op_registry.fail_op op "%s: vector register v%d out of range" key v

let expect_int_reg op i =
  match Ir.Value.ty (Ir.Op.operand op i) with
  | Ty.Int_reg _ -> ()
  | _ -> Op_registry.fail_op op "operand %d must be an integer register" i

let expect_float_reg op i =
  match Ir.Value.ty (Ir.Op.operand op i) with
  | Ty.Float_reg _ -> ()
  | _ -> Op_registry.fail_op op "operand %d must be a float register" i

let expect_sew op =
  Op_registry.expect_attr op "sew";
  match Attr.get_int (Ir.Op.attr_exn op "sew") with
  | 32 | 64 -> ()
  | s -> Op_registry.fail_op op "unsupported element width e%d" s

let vsetvli_op =
  Op_registry.register "rvv.vsetvli" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_int_reg op 0;
      expect_sew op)

let vle_op =
  Op_registry.register "rvv.vle" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_int_reg op 0;
      expect_vreg op "vd";
      expect_sew op)

let vse_op =
  Op_registry.register "rvv.vse" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_int_reg op 0;
      expect_vreg op "vs";
      expect_sew op)

let vfmv_vf_op =
  Op_registry.register "rvv.vfmv.v.f" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_float_reg op 0;
      expect_vreg op "vd")

let vmv_vv_op =
  Op_registry.register "rvv.vmv.v.v" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_vreg op "vd";
      expect_vreg op "vs")

let vv_mnemonics = [ "vfadd"; "vfsub"; "vfmul"; "vfdiv"; "vfmax"; "vfmin" ]
let vf_mnemonics = vv_mnemonics @ [ "vfrsub"; "vfrdiv" ]

let expect_op_attr op allowed =
  Op_registry.expect_attr op "op";
  let s = Attr.get_str (Ir.Op.attr_exn op "op") in
  if not (List.mem s allowed) then
    Op_registry.fail_op op "unknown vector mnemonic %S" s

let vfvv_op =
  Op_registry.register "rvv.vfvv" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_op_attr op vv_mnemonics;
      expect_vreg op "vd";
      expect_vreg op "vs1";
      expect_vreg op "vs2")

let vfvf_op =
  Op_registry.register "rvv.vfvf" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_float_reg op 0;
      expect_op_attr op vf_mnemonics;
      expect_vreg op "vd";
      expect_vreg op "vs2")

let vfmacc_vf_op =
  Op_registry.register "rvv.vfmacc.vf" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_float_reg op 0;
      expect_vreg op "vd";
      expect_vreg op "vs2")

let vfmacc_vv_op =
  Op_registry.register "rvv.vfmacc.vv" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_vreg op "vd";
      expect_vreg op "vs1";
      expect_vreg op "vs2")

(* --- smart constructors --- *)

let vreg key v = (key, Attr.Int v)

let vsetvli b ~sew rs =
  Builder.create0 b ~attrs:[ ("sew", Attr.Int sew) ] vsetvli_op [ rs ]

let vle b ~vd ~sew addr =
  Builder.create0 b ~attrs:[ vreg "vd" vd; ("sew", Attr.Int sew) ] vle_op [ addr ]

let vse b ~vs ~sew addr =
  Builder.create0 b ~attrs:[ vreg "vs" vs; ("sew", Attr.Int sew) ] vse_op [ addr ]

let vfmv_vf b ~vd fs =
  Builder.create0 b ~attrs:[ vreg "vd" vd ] vfmv_vf_op [ fs ]

let vmv_vv b ~vd ~vs =
  Builder.create0 b ~attrs:[ vreg "vd" vd; vreg "vs" vs ] vmv_vv_op []

let vfvv b ~op ~vd ~vs1 ~vs2 =
  Builder.create0 b
    ~attrs:[ ("op", Attr.Str op); vreg "vd" vd; vreg "vs1" vs1; vreg "vs2" vs2 ]
    vfvv_op []

let vfvf b ~op ~vd ~vs2 fs =
  Builder.create0 b
    ~attrs:[ ("op", Attr.Str op); vreg "vd" vd; vreg "vs2" vs2 ]
    vfvf_op [ fs ]

let vfmacc_vf b ~vd ~vs2 fs =
  Builder.create0 b ~attrs:[ vreg "vd" vd; vreg "vs2" vs2 ] vfmacc_vf_op [ fs ]

let vfmacc_vv b ~vd ~vs1 ~vs2 =
  Builder.create0 b
    ~attrs:[ vreg "vd" vd; vreg "vs1" vs1; vreg "vs2" vs2 ]
    vfmacc_vv_op []

let vd_of op = Attr.get_int (Ir.Op.attr_exn op "vd")
let vs_of op = Attr.get_int (Ir.Op.attr_exn op "vs")
let vs1_of op = Attr.get_int (Ir.Op.attr_exn op "vs1")
let vs2_of op = Attr.get_int (Ir.Op.attr_exn op "vs2")
let sew_of op = Attr.get_int (Ir.Op.attr_exn op "sew")
let op_of op = Attr.get_str (Ir.Op.attr_exn op "op")
