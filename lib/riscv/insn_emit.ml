(* Direct emission: lowers register-allocated IR straight to decoded
   {!Mlc_sim.Insn.t} programs, skipping the print → parse round-trip of
   the textual path (Asm_emit + Asm_parse). This is the production
   simulation path; the textual path stays the presentation/debug format.

   The walk mirrors [Asm_emit.op_lines] exactly — same op coverage, same
   allocation sanity checks, same fresh-label naming and ordering — so
   that for every function the pre-decoded program equals
   [Program.of_asm (Asm_parse.parse (Asm_emit.emit_module m))] up to
   source text. The equivalence test in test_perf_model.ml enforces this
   for every kernel in the registry. *)

open Mlc_ir
module Insn = Mlc_sim.Insn
module Asm_parse = Mlc_sim.Asm_parse
module Program = Mlc_sim.Program

let err fmt = Format.kasprintf (fun m -> raise (Asm_emit.Emit_error m)) fmt

(* Operand/result accessors, as hardware register indices. *)
let xr op i = Asm_parse.xreg (Rv.reg_of (Ir.Op.operand op i))
let fr op i = Asm_parse.freg (Rv.reg_of (Ir.Op.operand op i))
let xd op = Asm_parse.xreg (Rv.reg_of (Ir.Op.result op 0))
let fd op = Asm_parse.freg (Rv.reg_of (Ir.Op.result op 0))
let imm op key = Attr.get_int (Ir.Op.attr_exn op key)

(* Emission items: decoded instructions, plus label definitions and
   label-addressed control flow resolved in a final fixup pass (labels
   may be defined after their uses, e.g. loop exits). *)
type item =
  | Ins of Insn.t
  | Jmp of string
  | Br of Insn.cond * int * int * string
  | Lbl of string

type ctx = {
  fname : string;
  mutable fresh_label : int;
  label_table : (int, string) Hashtbl.t; (* block id -> label *)
}

let fresh_label ctx hint =
  let l = Printf.sprintf ".%s_%s%d" ctx.fname hint ctx.fresh_label in
  ctx.fresh_label <- ctx.fresh_label + 1;
  l

let label_of ctx (b : Ir.block) =
  match Hashtbl.find_opt ctx.label_table b.Ir.bid with
  | Some l -> l
  | None -> err "branch to unlabelled block"

let rec op_items ctx ~next_block op =
  let name = Ir.Op.name op in
  match name with
  | "rv.get_register" | "rv_snitch.read" | "rv_snitch.frep_yield"
  | "rv_scf.yield" | "rv.comment" -> []
  | "rv_snitch.write" ->
    let v = Ir.Op.operand op 0 and s = Ir.Op.operand op 1 in
    if Rv.reg_of v <> Rv.reg_of s then
      err "stream write value allocated to %s, expected %s" (Rv.reg_of v)
        (Rv.reg_of s);
    []
  | "rv.li" -> [ Ins (Insn.Li (xd op, Int64.of_int (imm op "imm"))) ]
  | "rv.li_bits" ->
    let f = Attr.get_float (Ir.Op.attr_exn op "value") in
    [ Ins (Insn.Li (xd op, Int64.bits_of_float f)) ]
  | "rv.mv" -> [ Ins (Insn.Mv (xd op, xr op 0)) ]
  | "rv.add" | "rv.sub" | "rv.mul" | "rv.div" | "rv.and" | "rv.or" | "rv.xor"
  | "rv.slt" ->
    let alu : Insn.alu =
      match name with
      | "rv.add" -> Add
      | "rv.sub" -> Sub
      | "rv.mul" -> Mul
      | "rv.div" -> Div
      | "rv.and" -> And
      | "rv.or" -> Or
      | "rv.xor" -> Xor
      | _ -> Slt
    in
    [ Ins (Insn.Alu (alu, xd op, xr op 0, xr op 1)) ]
  | "rv.addi" | "rv.slli" | "rv.srai" | "rv.andi" ->
    let alu : Insn.alu =
      match name with
      | "rv.addi" -> Add
      | "rv.slli" -> Sll
      | "rv.srai" -> Sra
      | _ -> And
    in
    [ Ins (Insn.Alui (alu, xd op, xr op 0, Int64.of_int (imm op "imm"))) ]
  | "rv.lw" -> [ Ins (Insn.Load (4, xd op, imm op "offset", xr op 0)) ]
  | "rv.ld" -> [ Ins (Insn.Load (8, xd op, imm op "offset", xr op 0)) ]
  | "rv.flw" -> [ Ins (Insn.Fload (4, fd op, imm op "offset", xr op 0)) ]
  | "rv.fld" -> [ Ins (Insn.Fload (8, fd op, imm op "offset", xr op 0)) ]
  | "rv.sw" -> [ Ins (Insn.Store (4, xr op 0, imm op "offset", xr op 1)) ]
  | "rv.sd" -> [ Ins (Insn.Store (8, xr op 0, imm op "offset", xr op 1)) ]
  | "rv.fsw" -> [ Ins (Insn.Fstore (4, fr op 0, imm op "offset", xr op 1)) ]
  | "rv.fsd" -> [ Ins (Insn.Fstore (8, fr op 0, imm op "offset", xr op 1)) ]
  | "rv.fadd.d" | "rv.fsub.d" | "rv.fmul.d" | "rv.fdiv.d" | "rv.fmax.d"
  | "rv.fmin.d" | "rv.fadd.s" | "rv.fsub.s" | "rv.fmul.s" | "rv.fdiv.s"
  | "rv.fmax.s" | "rv.fmin.s" ->
    let prec : Insn.prec =
      if name.[String.length name - 1] = 'd' then D else S
    in
    let fop : Insn.fop =
      match String.sub name 3 4 with
      | "fadd" -> Fadd
      | "fsub" -> Fsub
      | "fmul" -> Fmul
      | "fdiv" -> Fdiv
      | "fmax" -> Fmax
      | _ -> Fmin
    in
    [ Ins (Insn.Fop (fop, prec, fd op, fr op 0, fr op 1)) ]
  | "rv_snitch.vfadd.s" | "rv_snitch.vfsub.s" | "rv_snitch.vfmul.s"
  | "rv_snitch.vfmax.s" | "rv_snitch.vfmin.s" ->
    let vf : Insn.vfop =
      match name with
      | "rv_snitch.vfadd.s" -> Vfadd
      | "rv_snitch.vfsub.s" -> Vfsub
      | "rv_snitch.vfmul.s" -> Vfmul
      | "rv_snitch.vfmax.s" -> Vfmax
      | _ -> Vfmin
    in
    [ Ins (Insn.Vf (vf, fd op, fr op 0, fr op 1)) ]
  | "rv_snitch.vfcpka.s.s" -> [ Ins (Insn.Vfcpka (fd op, fr op 0, fr op 1)) ]
  | "rv.fmadd.d" | "rv.fmadd.s" ->
    let prec : Insn.prec = if name = "rv.fmadd.d" then D else S in
    [ Ins (Insn.Fmadd (prec, fd op, fr op 0, fr op 1, fr op 2)) ]
  | "rv_snitch.vfmac.s" ->
    if fd op <> fr op 2 then
      err "vfmac.s destination %s must match accumulator %s"
        (Rv.reg_of (Ir.Op.result op 0))
        (Rv.reg_of (Ir.Op.operand op 2));
    [ Ins (Insn.Vfmac (fd op, fr op 0, fr op 1)) ]
  | "rv_snitch.vfsum.s" ->
    if fd op <> fr op 1 then
      err "vfsum.s destination %s must match accumulator %s"
        (Rv.reg_of (Ir.Op.result op 0))
        (Rv.reg_of (Ir.Op.operand op 1));
    [ Ins (Insn.Vfsum (fd op, fr op 0)) ]
  | "rv.fmv.d" -> [ Ins (Insn.Fmv (fd op, fr op 0)) ]
  | "rv.fcvt.d.w" -> [ Ins (Insn.Fcvt_from_int (D, fd op, xr op 0)) ]
  | "rv.fcvt.s.w" -> [ Ins (Insn.Fcvt_from_int (S, fd op, xr op 0)) ]
  | "rv.fmv.d.x" -> [ Ins (Insn.Fmv_from_bits (D, fd op, xr op 0)) ]
  | "rv.fmv.w.x" -> [ Ins (Insn.Fmv_from_bits (S, fd op, xr op 0)) ]
  | "rvv.vsetvli" -> [ Ins (Insn.Vsetvli (xr op 0, Rvv.sew_of op)) ]
  | "rvv.vle" -> [ Ins (Insn.Vle (Rvv.vd_of op, xr op 0, Rvv.sew_of op / 8)) ]
  | "rvv.vse" -> [ Ins (Insn.Vse (Rvv.vs_of op, xr op 0, Rvv.sew_of op / 8)) ]
  | "rvv.vfmv.v.f" -> [ Ins (Insn.Vfmv_vf (Rvv.vd_of op, fr op 0)) ]
  | "rvv.vmv.v.v" -> [ Ins (Insn.Vmv_vv (Rvv.vd_of op, Rvv.vs_of op)) ]
  | "rvv.vfvv" | "rvv.vfvf" ->
    let fop, reversed =
      match Rvv.op_of op with
      | "vfadd" -> (Insn.Fadd, false)
      | "vfsub" -> (Insn.Fsub, false)
      | "vfmul" -> (Insn.Fmul, false)
      | "vfdiv" -> (Insn.Fdiv, false)
      | "vfmax" -> (Insn.Fmax, false)
      | "vfmin" -> (Insn.Fmin, false)
      | "vfrsub" -> (Insn.Fsub, true)
      | _ -> (Insn.Fdiv, true)
    in
    if name = "rvv.vfvv" then
      [ Ins (Insn.Vfvv (fop, Rvv.vd_of op, Rvv.vs1_of op, Rvv.vs2_of op)) ]
    else
      [ Ins (Insn.Vfvf (fop, reversed, Rvv.vd_of op, Rvv.vs2_of op, fr op 0)) ]
  | "rvv.vfmacc.vf" ->
    [ Ins (Insn.Vfmacc_vf (Rvv.vd_of op, fr op 0, Rvv.vs2_of op)) ]
  | "rvv.vfmacc.vv" ->
    [ Ins (Insn.Vfmacc_vv (Rvv.vd_of op, Rvv.vs1_of op, Rvv.vs2_of op)) ]
  | "rv_snitch.scfgwi" -> [ Ins (Insn.Scfgwi (xr op 0, imm op "imm")) ]
  | "rv_snitch.ssr_enable" -> [ Ins (Insn.Csrsi (0x7c0, 1)) ]
  | "rv_snitch.ssr_disable" -> [ Ins (Insn.Csrci (0x7c0, 1)) ]
  | "rv_snitch.frep_outer" ->
    let body = Rv_snitch.body op in
    let n =
      Ir.Block.fold_ops body ~init:0 ~f:(fun n o -> n + Asm_emit.instr_count o)
    in
    if n = 0 then err "frep with empty body";
    Ins (Insn.Frep_o (xr op 0, n))
    :: List.concat_map (op_items ctx ~next_block) (Ir.Block.ops body)
  | "rv_scf.for" ->
    (* Same guard / body / increment / back-branch skeleton (and the same
       fresh-label ordering) as the textual emitter. *)
    let iv = Rv.reg_of (Rv_scf.induction_var op) in
    let lb = Ir.Op.operand op 0 and ub = Ir.Op.operand op 1 in
    let lb_name = Rv.reg_of lb and ub_name = Rv.reg_of ub in
    let ivx = Asm_parse.xreg iv
    and lbx = Asm_parse.xreg lb_name
    and ubx = Asm_parse.xreg ub_name in
    let step = Rv_scf.step op in
    let head = fresh_label ctx "loop" and exit_l = fresh_label ctx "endloop" in
    let body = Rv_scf.body op in
    let prologue =
      (if iv = lb_name then [] else [ Ins (Insn.Mv (ivx, lbx)) ])
      @ [ Br (Insn.Bge, ivx, ubx, exit_l); Lbl head ]
    in
    let body_items =
      List.concat_map (op_items ctx ~next_block) (Ir.Block.ops body)
    in
    prologue @ body_items
    @ [
        Ins (Insn.Alui (Insn.Add, ivx, ivx, Int64.of_int step));
        Br (Insn.Blt, ivx, ubx, head);
        Lbl exit_l;
      ]
  | "rv_cf.j" ->
    let target = List.nth (Ir.Op.successors op) 0 in
    [ Jmp (label_of ctx target) ]
  | "rv_cf.beq" | "rv_cf.bne" | "rv_cf.blt" | "rv_cf.bge" ->
    let taken = List.nth (Ir.Op.successors op) 0 in
    let fall = List.nth (Ir.Op.successors op) 1 in
    (match next_block with
    | Some nb when Ir.Block.equal nb fall -> ()
    | _ -> err "%s: fallthrough successor is not the next block" name);
    let cond : Insn.cond =
      match name with
      | "rv_cf.beq" -> Beq
      | "rv_cf.bne" -> Bne
      | "rv_cf.blt" -> Blt
      | _ -> Bge
    in
    [ Br (cond, xr op 0, xr op 1, label_of ctx taken) ]
  | "rv_func.return" -> [ Ins Insn.Ret ]
  | other -> err "cannot emit %s: not a machine-level op" other

let func_items fn =
  if Ir.Op.name fn <> Rv_func.func_op then
    invalid_arg "Insn_emit.func_items: expected rv_func.func";
  let fname = Rv_func.name fn in
  let ctx = { fname; fresh_label = 0; label_table = Hashtbl.create 8 } in
  let blocks = Ir.Region.blocks (Rv_func.body_region fn) in
  List.iteri
    (fun i (b : Ir.block) ->
      if i > 0 then
        Hashtbl.replace ctx.label_table b.Ir.bid
          (Printf.sprintf ".%s_bb%d" fname i))
    blocks;
  let buf = ref [ Lbl fname ] in
  let rec emit_blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
      (match Hashtbl.find_opt ctx.label_table b.Ir.bid with
      | Some l -> buf := Lbl l :: !buf
      | None -> ());
      let next_block = match rest with nb :: _ -> Some nb | [] -> None in
      Ir.Block.iter_ops b (fun op ->
          List.iter (fun it -> buf := it :: !buf) (op_items ctx ~next_block op));
      emit_blocks rest
  in
  emit_blocks blocks;
  List.rev !buf

(* Resolve label definitions/uses over the whole module and pre-decode. *)
let link items =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun it ->
      match it with
      | Lbl l ->
        if Hashtbl.mem labels l then err "duplicate label %S" l;
        Hashtbl.replace labels l !pc
      | Ins _ | Jmp _ | Br _ -> incr pc)
    items;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some pc -> pc
    | None -> err "undefined label %S" l
  in
  let insns =
    List.filter_map
      (fun it ->
        match it with
        | Lbl _ -> None
        | Ins i -> Some i
        | Jmp l -> Some (Insn.J (target l))
        | Br (c, r1, r2, l) -> Some (Insn.Branch (c, r1, r2, target l)))
      items
    |> Array.of_list
  in
  Program.make ~insns ~labels ()

let emit_module m =
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  link (List.concat_map func_items fns)
