(* The rv_func dialect: functions at the RISC-V level. The ABI constraint
   that arguments arrive in a-registers (fa-registers for FP) is encoded
   directly in the entry block argument types (paper §3.1, Figure 6). *)

open Mlc_ir

let func_op =
  Op_registry.register "rv_func.func" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "sym_name";
      match Ir.Region.blocks (Ir.Op.region op 0) with
      | [] -> Op_registry.fail_op op "function body must not be empty"
      | entry :: _ ->
        List.iter
          (fun v ->
            match Ir.Value.ty v with
            | Ty.Int_reg (Some r) when List.mem r Reg.int_arg_regs -> ()
            | Ty.Float_reg (Some r) when List.mem r Reg.float_arg_regs -> ()
            | t ->
              Op_registry.fail_op op
                "entry argument of type %s violates the A-register ABI"
                (Ty.to_string t))
          (Ir.Block.args entry))

let return_op =
  Op_registry.register "rv_func.return" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_results op 0)

(* Create a RISC-V function. [args] gives the kind of each parameter;
   argument registers are assigned in ABI order. Returns (op, entry). *)
let func b ~name ~args =
  let next_int = ref 0 and next_float = ref 0 in
  let arg_tys =
    List.map
      (fun kind ->
        match kind with
        | Reg.Int_kind ->
          let r = List.nth Reg.int_arg_regs !next_int in
          incr next_int;
          Ty.Int_reg (Some r)
        | Reg.Float_kind ->
          let r = List.nth Reg.float_arg_regs !next_float in
          incr next_float;
          Ty.Float_reg (Some r))
      args
  in
  let region = Ir.Region.single_block ~args:arg_tys () in
  let op =
    Builder.create b
      ~attrs:[ ("sym_name", Attr.Str name) ]
      ~regions:[ region ] ~results:[] func_op []
  in
  (op, Ir.Region.only_block region)

let return_ b values = Builder.create0 b return_op values

let name op = Attr.get_str (Ir.Op.attr_exn op "sym_name")
let body_region op = Ir.Op.region op 0
let entry op =
  match Ir.Region.blocks (body_region op) with
  | b :: _ -> b
  | [] -> invalid_arg "Rv_func.entry: empty function"

let lookup m fname =
  Ir.find_first m (fun op ->
      Ir.Op.name op = func_op
      && (match Ir.Op.attr op "sym_name" with
         | Some (Attr.Str s) -> s = fname
         | _ -> false))
