(** The RISC-V register model used by the backend and the register
    allocator (paper §3.3): the caller-saved pools of the standard ABI —
    15 integer registers ([a0–a7], [t0–t6]) and 20 floating-point
    registers ([fa0–fa7], [ft0–ft11]) — plus the Snitch convention that
    [ft0–ft2] double as SSR data registers while streaming. *)

type kind = Int_kind | Float_kind

(** Integer caller-saved pool, in allocation preference order
    (t-registers first, keeping a-registers free for arguments). *)
val int_pool : string list

(** FP caller-saved pool; [ft0–ft2] come last because they are excluded
    entirely inside streaming regions. *)
val float_pool : string list

val num_int_allocatable : int (* 15 *)
val num_float_allocatable : int (* 20 *)

(** SSR data registers: accessing these while streaming moves stream
    elements (paper §2.4). *)
val ssr_data_registers : string list

val num_ssrs : int
val zero : string
val ra : string
val sp : string

(** Argument registers in ABI order. *)
val int_arg_regs : string list

val float_arg_regs : string list
val all_int_regs : string list
val all_float_regs : string list
val is_int_reg : string -> bool
val is_float_reg : string -> bool

(** Raises [Invalid_argument] on unknown names. *)
val kind_of : string -> kind

(** Registers a function must preserve (callee-saved set plus
    ra/sp/gp/tp), as hardware indices; the backend never saves or
    restores, so the machine-code linter requires it never writes
    these. *)
val preserved_int_indices : int list

val preserved_float_indices : int list

(** Registers carrying a defined value on function entry under the run
    harness's calling convention (zero/ra/sp/gp/tp, a0–a7 / fa0–fa7),
    as hardware indices. *)
val entry_defined_int_indices : int list

val entry_defined_float_indices : int list

(** Hardware encoding index (x0–x31 / f0–f31). *)
val index_of : string -> int

(** Inverse of {!index_of} (ABI name of a hardware index), for
    diagnostics; unknown indices render as ["x%d"]/["f%d"]. *)
val int_name_of_index : int -> string

val float_name_of_index : int -> string
