(* The rv_scf dialect: structured control flow over register-typed values
   (paper §3.1). Mirrors scf.for so that lowering from scf is direct, and
   preserves the loop structure that the register allocator exploits
   (paper §3.3, Figure 6 D).

   The step is a compile-time constant attribute: the loop increment is
   an addi, so no register is burnt on the step (the micro-kernel
   lowering only ever produces constant steps). *)

open Mlc_ir

let for_op =
  Op_registry.register "rv_scf.for" ~verify:(fun op ->
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "step";
      if Attr.get_int (Ir.Op.attr_exn op "step") <= 0 then
        Op_registry.fail_op op "step must be a positive constant";
      if Ir.Op.num_operands op < 2 then
        Op_registry.fail_op op "expected at least lb and ub operands";
      let n_iter = Ir.Op.num_operands op - 2 in
      Op_registry.expect_num_results op n_iter;
      for i = 0 to 1 do
        match Ir.Value.ty (Ir.Op.operand op i) with
        | Ty.Int_reg _ -> ()
        | _ -> Op_registry.fail_op op "loop bounds must be integer registers"
      done;
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n_iter + 1 then
        Op_registry.fail_op op "body must carry induction variable and iter args";
      (match Ir.Value.ty (Ir.Block.arg body 0) with
      | Ty.Int_reg _ -> ()
      | _ -> Op_registry.fail_op op "induction variable must be an integer register");
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = "rv_scf.yield" ->
        if Ir.Op.num_operands t <> n_iter then
          Op_registry.fail_op op "yield arity does not match iter args"
      | _ -> Op_registry.fail_op op "body must terminate with rv_scf.yield")

let yield_op =
  Op_registry.register "rv_scf.yield" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_results op 0)

let for_ b ~lb ~ub ?(step = 1) ?(iter_args = []) f =
  let region =
    Ir.Region.single_block
      ~args:(Ty.Int_reg None :: List.map Ir.Value.ty iter_args)
      ()
  in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b ~regions:[ region ]
      ~attrs:[ ("step", Attr.Int step) ]
      ~results:(List.map Ir.Value.ty iter_args)
      for_op
      ([ lb; ub ] @ iter_args)
  in
  let bb = Builder.at_end body in
  let iv = Ir.Block.arg body 0 in
  let iters = List.tl (Ir.Block.args body) in
  let yielded = f bb iv iters in
  Builder.create0 bb yield_op yielded;
  op

let lb op = Ir.Op.operand op 0
let ub op = Ir.Op.operand op 1
let step op = Attr.get_int (Ir.Op.attr_exn op "step")
let iter_operands op = List.filteri (fun i _ -> i >= 2) (Ir.Op.operands op)
let body op = Ir.Region.only_block (Ir.Op.region op 0)
let induction_var op = Ir.Block.arg (body op) 0
let iter_args op = List.tl (Ir.Block.args (body op))

let yield_of op =
  match Ir.Block.terminator (body op) with
  | Some t when Ir.Op.name t = yield_op -> t
  | _ -> invalid_arg "Rv_scf.yield_of: malformed rv_scf.for"
