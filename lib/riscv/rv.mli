(** The rv dialect: RISC-V assembly instructions as SSA operations (paper
    §3.1, Figure 6). Source registers are operands, destination registers
    are results; the physical register lives in the value's {e type}
    ([!rv.reg] unallocated, [!rv.reg<t0>] allocated), so unallocated and
    allocated code share one representation and the register allocator
    works by mutating types in place. *)

open Mlc_ir

(** The concrete register of an allocated value; raises
    [Invalid_argument] if unallocated. *)
val reg_of : Ir.value -> string

(** Unallocated register types, for smart constructors. *)
val int_reg : Ty.t

val float_reg : Ty.t

val is_int_reg_ty : Ir.value -> bool
val is_float_reg_ty : Ir.value -> bool

(** {2 Registration helpers, exposed so extension dialects (e.g.
    rv_snitch's packed SIMD) can reuse the standard shapes.} *)

val reg_rr : string -> string (* (rs1, rs2) -> rd *)
val reg_ri : string -> string (* (rs1){imm} -> rd *)
val reg_fff : string -> string (* (fs1, fs2) -> fd *)
val reg_ffff : string -> string (* (fs1, fs2, fs3) -> fd *)

(** {2 Registered op names} *)

val get_register_op : string
val li_op : string
val li_bits_op : string
val mv_op : string
val add_op : string
val sub_op : string
val mul_op : string
val div_op : string
val and_op : string
val or_op : string
val xor_op : string
val slt_op : string
val addi_op : string
val slli_op : string
val srai_op : string
val andi_op : string
val lw_op : string
val ld_op : string
val sw_op : string
val sd_op : string
val flw_op : string
val fld_op : string
val fsw_op : string
val fsd_op : string
val fadd_d_op : string
val fsub_d_op : string
val fmul_d_op : string
val fdiv_d_op : string
val fmax_d_op : string
val fmin_d_op : string
val fadd_s_op : string
val fsub_s_op : string
val fmul_s_op : string
val fdiv_s_op : string
val fmax_s_op : string
val fmin_s_op : string
val fmadd_d_op : string
val fmadd_s_op : string
val fmv_d_op : string
val fcvt_d_w_op : string
val fcvt_s_w_op : string
val fmv_d_x_op : string
val fmv_w_x_op : string
val comment_op : string

(** {2 Smart constructors} *)

(** A value pinned to a named register (bridges SSA and pre-allocated
    registers; prints nothing — Figure 6 point 2). *)
val get_register : Builder.t -> string -> Ir.value

val get_float_register : Builder.t -> string -> Ir.value
val li : Builder.t -> int -> Ir.value

(** Materialise an FP constant's 64-bit pattern in an integer register
    (combine with {!fmv_d_x}). *)
val li_bits : Builder.t -> float -> Ir.value

val mv : Builder.t -> Ir.value -> Ir.value
val binary : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value
val add : Builder.t -> Ir.value -> Ir.value -> Ir.value
val sub : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mul : Builder.t -> Ir.value -> Ir.value -> Ir.value
val addi : Builder.t -> Ir.value -> int -> Ir.value
val slli : Builder.t -> Ir.value -> int -> Ir.value
val load : Builder.t -> string -> ?offset:int -> Ir.value -> Ir.value
val store : Builder.t -> string -> ?offset:int -> Ir.value -> Ir.value -> unit
val fload : Builder.t -> string -> ?offset:int -> Ir.value -> Ir.value
val fstore : Builder.t -> string -> ?offset:int -> Ir.value -> Ir.value -> unit
val fbinary : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value

(** [fternary b op x y acc] — fmadd-shaped: x*y + acc. *)
val fternary : Builder.t -> string -> Ir.value -> Ir.value -> Ir.value -> Ir.value

val fmv_d : Builder.t -> Ir.value -> Ir.value
val fcvt_d_w : Builder.t -> Ir.value -> Ir.value
val fmv_d_x : Builder.t -> Ir.value -> Ir.value
val comment : Builder.t -> string -> unit

(** Assembly mnemonic of an op name (drops the dialect prefix). *)
val mnemonic : string -> string

(** Instructions executed in the FPU data path: these may appear inside
    FREP bodies and count toward FPU occupancy. *)
val is_fpu_op : string -> bool
