(* Assembly emission: walks register-allocated IR in-order and prints
   RISC-V assembly with Snitch extensions, per-op (paper §3.1: "Assembly
   is printed using an interface-based design, where the IR is walked
   in-order, and printed according to implementation of each operation").

   Structured operations emit their own control flow:
   - rv_scf.for prints the classic guard / body / increment / back-branch
     skeleton over its (already unified) registers;
   - rv_snitch.frep_outer prints a frep.o covering its body in-line.

   Ops that exist purely to bridge SSA and registers (get_register,
   stream read/write, yields) emit nothing. *)

exception Emit_error of string

let err fmt = Format.kasprintf (fun m -> raise (Emit_error m)) fmt

open Mlc_ir

let r op i = Rv.reg_of (Ir.Op.operand op i)
let d op = Rv.reg_of (Ir.Op.result op 0)
let imm op key = Attr.get_int (Ir.Op.attr_exn op key)

(* Number of machine instructions an op expands to. Loops are forbidden
   where this is used (FREP instruction counting). *)
let rec instr_count op =
  match Ir.Op.name op with
  | "rv.get_register" | "rv_snitch.read" | "rv_snitch.write"
  | "rv_snitch.frep_yield" | "rv_scf.yield" | "rv.comment" -> 0
  | "rv_snitch.frep_outer" ->
    let body = Rv_snitch.body op in
    1 + Ir.Block.fold_ops body ~init:0 ~f:(fun n o -> n + instr_count o)
  | "rv_scf.for" -> err "rv_scf.for inside an frep-counted region"
  | _ -> 1

let branch_mnemonic = function
  | "rv_cf.beq" -> "beq"
  | "rv_cf.bne" -> "bne"
  | "rv_cf.blt" -> "blt"
  | "rv_cf.bge" -> "bge"
  | name -> err "unknown branch op %s" name

type ctx = {
  fname : string;
  mutable fresh_label : int;
  label_table : (int, string) Hashtbl.t; (* block id -> label *)
}

let fresh_label ctx hint =
  let l = Printf.sprintf ".%s_%s%d" ctx.fname hint ctx.fresh_label in
  ctx.fresh_label <- ctx.fresh_label + 1;
  l

let label_of ctx (b : Ir.block) =
  match Hashtbl.find_opt ctx.label_table b.Ir.bid with
  | Some l -> l
  | None -> err "branch to unlabelled block"

let rec op_lines ctx ~next_block op =
  let name = Ir.Op.name op in
  match name with
  | "rv.get_register" | "rv_snitch.read" | "rv_snitch.frep_yield"
  | "rv_scf.yield" -> []
  | "rv_snitch.write" ->
    (* The producing instruction's destination is the stream register;
       nothing to emit, but sanity-check the allocation. *)
    let v = Ir.Op.operand op 0 and s = Ir.Op.operand op 1 in
    if Rv.reg_of v <> Rv.reg_of s then
      err "stream write value allocated to %s, expected %s" (Rv.reg_of v)
        (Rv.reg_of s);
    []
  | "rv.comment" ->
    [ Printf.sprintf "    # %s" (Attr.get_str (Ir.Op.attr_exn op "text")) ]
  | "rv.li" -> [ Printf.sprintf "    li %s, %d" (d op) (imm op "imm") ]
  | "rv.li_bits" ->
    let f = Attr.get_float (Ir.Op.attr_exn op "value") in
    [ Printf.sprintf "    li %s, 0x%Lx" (d op) (Int64.bits_of_float f) ]
  | "rv.mv" -> [ Printf.sprintf "    mv %s, %s" (d op) (r op 0) ]
  | "rv.add" | "rv.sub" | "rv.mul" | "rv.div" | "rv.and" | "rv.or" | "rv.xor"
  | "rv.slt" ->
    [ Printf.sprintf "    %s %s, %s, %s" (Rv.mnemonic name) (d op) (r op 0) (r op 1) ]
  | "rv.addi" | "rv.slli" | "rv.srai" | "rv.andi" ->
    [ Printf.sprintf "    %s %s, %s, %d" (Rv.mnemonic name) (d op) (r op 0) (imm op "imm") ]
  | "rv.lw" | "rv.ld" | "rv.flw" | "rv.fld" ->
    [ Printf.sprintf "    %s %s, %d(%s)" (Rv.mnemonic name) (d op) (imm op "offset") (r op 0) ]
  | "rv.sw" | "rv.sd" | "rv.fsw" | "rv.fsd" ->
    [ Printf.sprintf "    %s %s, %d(%s)" (Rv.mnemonic name) (r op 0) (imm op "offset") (r op 1) ]
  | "rv.fadd.d" | "rv.fsub.d" | "rv.fmul.d" | "rv.fdiv.d" | "rv.fmax.d"
  | "rv.fmin.d" | "rv.fadd.s" | "rv.fsub.s" | "rv.fmul.s" | "rv.fdiv.s"
  | "rv.fmax.s" | "rv.fmin.s" | "rv_snitch.vfadd.s" | "rv_snitch.vfsub.s"
  | "rv_snitch.vfmul.s" | "rv_snitch.vfmax.s" | "rv_snitch.vfmin.s"
  | "rv_snitch.vfcpka.s.s" ->
    [ Printf.sprintf "    %s %s, %s, %s" (Rv.mnemonic name) (d op) (r op 0) (r op 1) ]
  | "rv.fmadd.d" | "rv.fmadd.s" ->
    [ Printf.sprintf "    %s %s, %s, %s, %s" (Rv.mnemonic name) (d op) (r op 0)
        (r op 1) (r op 2) ]
  | "rv_snitch.vfmac.s" ->
    (* Two-address accumulator: rd must equal the acc operand. *)
    if d op <> r op 2 then
      err "vfmac.s destination %s must match accumulator %s" (d op) (r op 2);
    [ Printf.sprintf "    vfmac.s %s, %s, %s" (d op) (r op 0) (r op 1) ]
  | "rv_snitch.vfsum.s" ->
    if d op <> r op 1 then
      err "vfsum.s destination %s must match accumulator %s" (d op) (r op 1);
    [ Printf.sprintf "    vfsum.s %s, %s" (d op) (r op 0) ]
  | "rv.fmv.d" -> [ Printf.sprintf "    fmv.d %s, %s" (d op) (r op 0) ]
  | "rv.fcvt.d.w" | "rv.fcvt.s.w" | "rv.fmv.d.x" | "rv.fmv.w.x" ->
    [ Printf.sprintf "    %s %s, %s" (Rv.mnemonic name) (d op) (r op 0) ]
  | "rvv.vsetvli" ->
    [ Printf.sprintf "    vsetvli zero, %s, e%d, m1, ta, ma" (r op 0)
        (Rvv.sew_of op) ]
  | "rvv.vle" ->
    [ Printf.sprintf "    vle%d.v v%d, (%s)" (Rvv.sew_of op) (Rvv.vd_of op)
        (r op 0) ]
  | "rvv.vse" ->
    [ Printf.sprintf "    vse%d.v v%d, (%s)" (Rvv.sew_of op) (Rvv.vs_of op)
        (r op 0) ]
  | "rvv.vfmv.v.f" ->
    [ Printf.sprintf "    vfmv.v.f v%d, %s" (Rvv.vd_of op) (r op 0) ]
  | "rvv.vmv.v.v" ->
    [ Printf.sprintf "    vmv.v.v v%d, v%d" (Rvv.vd_of op) (Rvv.vs_of op) ]
  | "rvv.vfvv" ->
    [ Printf.sprintf "    %s.vv v%d, v%d, v%d" (Rvv.op_of op) (Rvv.vd_of op)
        (Rvv.vs1_of op) (Rvv.vs2_of op) ]
  | "rvv.vfvf" ->
    [ Printf.sprintf "    %s.vf v%d, v%d, %s" (Rvv.op_of op) (Rvv.vd_of op)
        (Rvv.vs2_of op) (r op 0) ]
  | "rvv.vfmacc.vf" ->
    [ Printf.sprintf "    vfmacc.vf v%d, %s, v%d" (Rvv.vd_of op) (r op 0)
        (Rvv.vs2_of op) ]
  | "rvv.vfmacc.vv" ->
    [ Printf.sprintf "    vfmacc.vv v%d, v%d, v%d" (Rvv.vd_of op)
        (Rvv.vs1_of op) (Rvv.vs2_of op) ]
  | "rv_snitch.scfgwi" ->
    [ Printf.sprintf "    scfgwi %s, %d" (r op 0) (imm op "imm") ]
  | "rv_snitch.ssr_enable" -> [ "    csrsi 0x7c0, 1" ]
  | "rv_snitch.ssr_disable" -> [ "    csrci 0x7c0, 1" ]
  | "rv_snitch.frep_outer" ->
    let body = Rv_snitch.body op in
    let n = Ir.Block.fold_ops body ~init:0 ~f:(fun n o -> n + instr_count o) in
    if n = 0 then err "frep with empty body";
    let header = Printf.sprintf "    frep.o %s, %d, 0, 0" (r op 0) n in
    header :: List.concat_map (op_lines ctx ~next_block) (Ir.Block.ops body)
  | "rv_scf.for" ->
    (* Guarded loop over unified registers:
         mv   iv, lb          (unless same register)
         bge  iv, ub, .exit
       .head:
         <body>
         addi iv, iv, <step>
         blt  iv, ub, .head
       .exit:                                                       *)
    let iv = Rv.reg_of (Rv_scf.induction_var op) in
    let lb = r op 0 and ub = r op 1 in
    let step = Rv_scf.step op in
    let head = fresh_label ctx "loop" and exit_l = fresh_label ctx "endloop" in
    let body = Rv_scf.body op in
    let prologue =
      (if iv = lb then [] else [ Printf.sprintf "    mv %s, %s" iv lb ])
      @ [ Printf.sprintf "    bge %s, %s, %s" iv ub exit_l; head ^ ":" ]
    in
    let body_lines = List.concat_map (op_lines ctx ~next_block) (Ir.Block.ops body) in
    prologue @ body_lines
    @ [
        Printf.sprintf "    addi %s, %s, %d" iv iv step;
        Printf.sprintf "    blt %s, %s, %s" iv ub head;
        exit_l ^ ":";
      ]
  | "rv_cf.j" ->
    let target = List.nth (Ir.Op.successors op) 0 in
    [ Printf.sprintf "    j %s" (label_of ctx target) ]
  | "rv_cf.beq" | "rv_cf.bne" | "rv_cf.blt" | "rv_cf.bge" ->
    let taken = List.nth (Ir.Op.successors op) 0 in
    let fall = List.nth (Ir.Op.successors op) 1 in
    (match next_block with
    | Some nb when Ir.Block.equal nb fall -> ()
    | _ -> err "%s: fallthrough successor is not the next block" name);
    [ Printf.sprintf "    %s %s, %s, %s" (branch_mnemonic name) (r op 0)
        (r op 1) (label_of ctx taken) ]
  | "rv_func.return" -> [ "    ret" ]
  | other -> err "cannot emit %s: not a machine-level op" other

let emit_func fn =
  if Ir.Op.name fn <> Rv_func.func_op then
    invalid_arg "Asm_emit.emit_func: expected rv_func.func";
  let fname = Rv_func.name fn in
  let ctx = { fname; fresh_label = 0; label_table = Hashtbl.create 8 } in
  let blocks = Ir.Region.blocks (Rv_func.body_region fn) in
  List.iteri
    (fun i (b : Ir.block) ->
      if i > 0 then
        Hashtbl.replace ctx.label_table b.Ir.bid (Printf.sprintf ".%s_bb%d" fname i))
    blocks;
  let buf = ref [ Printf.sprintf "%s:" fname ] in
  let rec emit_blocks = function
    | [] -> ()
    | (b : Ir.block) :: rest ->
      (match Hashtbl.find_opt ctx.label_table b.Ir.bid with
      | Some l -> buf := (l ^ ":") :: !buf
      | None -> ());
      let next_block = match rest with nb :: _ -> Some nb | [] -> None in
      Ir.Block.iter_ops b (fun op ->
          List.iter (fun line -> buf := line :: !buf) (op_lines ctx ~next_block op));
      emit_blocks rest
  in
  emit_blocks blocks;
  List.rev !buf

(* Emit every function in the module, in order. *)
let emit_module m =
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  String.concat "\n" (List.concat_map (fun fn -> emit_func fn @ [ "" ]) fns)

(* Static instruction statistics of a function, used for the Table 3
   ablation columns. Loop bodies are counted once (static counts). *)
type stats = {
  loads : int;
  stores : int;
  fmadd : int;
  frep : int;
  total_ops : int;
}

let func_stats fn =
  let loads = ref 0 and stores = ref 0 and fmadd = ref 0 and frep = ref 0 in
  let total = ref 0 in
  Ir.walk fn (fun op ->
      (match Ir.Op.name op with
      | "rv.get_register" | "rv_snitch.read" | "rv_snitch.write"
      | "rv_snitch.frep_yield" | "rv_scf.yield" | "rv.comment"
      | "rv_func.return" -> ()
      | _ -> incr total);
      match Ir.Op.name op with
      | "rv.lw" | "rv.ld" | "rv.flw" | "rv.fld" -> incr loads
      | "rv.sw" | "rv.sd" | "rv.fsw" | "rv.fsd" -> incr stores
      | "rv.fmadd.d" | "rv.fmadd.s" | "rv_snitch.vfmac.s" -> incr fmadd
      | "rv_snitch.frep_outer" -> incr frep
      | _ -> ());
  {
    loads = !loads;
    stores = !stores;
    fmadd = !fmadd;
    frep = !frep;
    total_ops = !total;
  }

(* Distinct registers referenced in a function, for the Table 2 / Table 3
   register-pressure columns. Returns (fp, int) register name lists. *)
let used_registers fn =
  let ints = Hashtbl.create 16 and floats = Hashtbl.create 16 in
  let note v =
    match Ir.Value.ty v with
    | Ty.Int_reg (Some r) -> if r <> "zero" then Hashtbl.replace ints r ()
    | Ty.Float_reg (Some r) -> Hashtbl.replace floats r ()
    | _ -> ()
  in
  Ir.walk fn (fun op ->
      List.iter note (Ir.Op.operands op);
      List.iter note (Ir.Op.results op);
      List.iter
        (fun (rg : Ir.region) ->
          List.iter
            (fun (b : Ir.block) -> List.iter note (Ir.Block.args b))
            (Ir.Region.blocks rg))
        (Ir.Op.regions op));
  List.iter note (Ir.Block.args (Rv_func.entry fn));
  let keys h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare in
  (keys floats, keys ints)
