(** Direct emission: lowers register-allocated IR straight to a
    pre-decoded {!Mlc_sim.Program.t}, skipping the print → parse text
    round-trip. Mirrors {!Asm_emit} op-for-op (same coverage, same
    allocation sanity checks, same label naming), so the result equals
    [Program.of_asm (Asm_parse.parse (Asm_emit.emit_module m))] up to
    source text — an invariant enforced by the registry-wide equivalence
    test. Raises {!Asm_emit.Emit_error} on the same conditions as the
    textual emitter. *)

open Mlc_ir

(** Every [rv_func.func] in the module, in order, linked into one
    pre-decoded program (labels resolved module-wide). *)
val emit_module : Ir.op -> Mlc_sim.Program.t
