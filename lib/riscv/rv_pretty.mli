(** A readable, dialect-aware printer for the RISC-V-level structured IR
    (the paper's Figure 6 style): assembly-like operation lines with SSA
    values (annotated with their allocated registers), explicit loop
    structure and streaming regions. For humans; the lossless interchange
    format is {!Mlc_ir.Printer}'s generic syntax. *)

val to_string : Mlc_ir.Ir.op -> string
