(** The rv_scf dialect: structured control flow over register-typed
    values (paper §3.1). Mirrors scf.for so lowering is direct, and
    preserves the loop structure the register allocator exploits (paper
    §3.3, Figure 6 D).

    The step is a compile-time constant attribute: the loop increment
    becomes an [addi], so no register is spent on it. *)

open Mlc_ir

val for_op : string
val yield_op : string

(** [for_ b ~lb ~ub ?step ~iter_args f]: [lb]/[ub] are integer-register
    values, [step] a positive constant (default 1). [f] receives the
    body builder, the induction register and the iteration arguments and
    returns the yielded values. *)
val for_ :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  ?step:int ->
  ?iter_args:Ir.value list ->
  (Builder.t -> Ir.value -> Ir.value list -> Ir.value list) ->
  Ir.op

val lb : Ir.op -> Ir.value
val ub : Ir.op -> Ir.value
val step : Ir.op -> int
val iter_operands : Ir.op -> Ir.value list
val body : Ir.op -> Ir.block
val induction_var : Ir.op -> Ir.value
val iter_args : Ir.op -> Ir.value list
val yield_of : Ir.op -> Ir.op
