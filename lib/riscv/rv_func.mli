(** The rv_func dialect: functions at the RISC-V level. The ABI
    constraint that arguments arrive in a-registers (fa-registers for FP)
    is encoded directly in the entry block argument types (paper §3.1,
    Figure 6). *)

open Mlc_ir

val func_op : string
val return_op : string

(** [func b ~name ~args] assigns argument registers in ABI order from
    the given parameter kinds; returns (op, entry block). *)
val func : Builder.t -> name:string -> args:Reg.kind list -> Ir.op * Ir.block

val return_ : Builder.t -> Ir.value list -> unit
val name : Ir.op -> string
val body_region : Ir.op -> Ir.region
val entry : Ir.op -> Ir.block
val lookup : Ir.op -> string -> Ir.op option
