(** The rv_cf dialect: unstructured control flow between basic blocks via
    RISC-V jump and branch instructions (paper §3.1). Used for
    hand-written multi-block code; the main pipeline keeps loops
    structured all the way to emission. Blocks carry no arguments —
    data flows through physical registers. *)

open Mlc_ir

val j_op : string

(** Conditional branches; successors are [taken; fallthrough]. *)
val beq_op : string

val bne_op : string
val blt_op : string
val bge_op : string

val j : Builder.t -> Ir.block -> unit

val branch :
  Builder.t ->
  string ->
  Ir.value ->
  Ir.value ->
  taken:Ir.block ->
  fallthrough:Ir.block ->
  unit
