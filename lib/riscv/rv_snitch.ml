(* The rv_snitch dialect: Snitch ISA extensions (paper §2.4, §3.2).

   - [frep_outer]: the FREP hardware loop. The body region may contain
     only FPU-data-path operations and stream reads/writes; loop-carried
     accumulators are modelled as iter args whose registers the allocator
     unifies (as for rv_scf.for).
   - [read]/[write]: explicit interaction with stream semantic registers.
     A [read] yields a fresh SSA value for one popped element; the
     allocator pins it to the SSR data register so the consuming FP
     instruction references ft0-ft2 directly and the op itself emits no
     assembly. Symmetrically for [write].
   - packed SIMD ([vfadd.s] etc.): 64-bit FP registers as 2xf32 lanes. *)

open Mlc_ir

let is_stream_reg v =
  match Ir.Value.ty v with
  | Ty.Float_reg (Some r) -> List.mem r Reg.ssr_data_registers
  | _ -> false

let read_op =
  Op_registry.register "rv_snitch.read" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      if not (is_stream_reg (Ir.Op.operand op 0)) then
        Op_registry.fail_op op "operand must be an SSR data register (ft0-ft2)";
      if Ir.Value.num_uses (Ir.Op.result op 0) > 1 then
        Op_registry.fail_op op
          "each stream read pops one element and must have a single use")

let write_op =
  Op_registry.register "rv_snitch.write" ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 0;
      (match Ir.Value.ty (Ir.Op.operand op 0) with
      | Ty.Float_reg _ -> ()
      | _ -> Op_registry.fail_op op "written value must be a float register");
      if not (is_stream_reg (Ir.Op.operand op 1)) then
        Op_registry.fail_op op "target must be an SSR data register (ft0-ft2)")

let frep_yield_op =
  Op_registry.register "rv_snitch.frep_yield" ~terminator:true
    ~verify:(fun op -> Op_registry.expect_num_results op 0)

(* Ops allowed inside an FREP body: anything executed by the FPU
   sequencer. *)
let is_frep_safe name =
  Rv.is_fpu_op name
  || List.mem name
       [ "rv_snitch.read"; "rv_snitch.write"; "rv_snitch.frep_yield" ]
  || (String.length name >= 12 && String.sub name 0 12 = "rv_snitch.vf")

let frep_outer_op =
  Op_registry.register "rv_snitch.frep_outer" ~verify:(fun op ->
      Op_registry.expect_num_regions op 1;
      if Ir.Op.num_operands op < 1 then
        Op_registry.fail_op op "expected repetition-count operand";
      (match Ir.Value.ty (Ir.Op.operand op 0) with
      | Ty.Int_reg _ -> ()
      | _ -> Op_registry.fail_op op "repetition count must be an integer register");
      let n_iter = Ir.Op.num_operands op - 1 in
      Op_registry.expect_num_results op n_iter;
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n_iter then
        Op_registry.fail_op op "body must carry one arg per iter arg";
      Ir.Block.iter_ops body (fun o ->
          if not (is_frep_safe (Ir.Op.name o)) then
            Op_registry.fail_op op
              "op %s is not executable by the FPU sequencer inside frep"
              (Ir.Op.name o));
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = frep_yield_op ->
        if Ir.Op.num_operands t <> n_iter then
          Op_registry.fail_op op "frep_yield arity does not match iter args"
      | _ -> Op_registry.fail_op op "body must terminate with frep_yield")

(* Stream configuration writes (assembler contract in DESIGN.md):
   scfgwi rs1, slot*8+dm. *)
let scfgwi_op =
  Op_registry.register "rv_snitch.scfgwi" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_attr op "imm")

(* Streaming on/off: csrsi/csrci 0x7c0. *)
let ssr_enable_op =
  Op_registry.register "rv_snitch.ssr_enable" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0)

let ssr_disable_op =
  Op_registry.register "rv_snitch.ssr_disable" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0)

(* Packed SIMD on 2xf32 lanes. *)
let vfadd_s_op = Rv.reg_fff "rv_snitch.vfadd.s"
let vfsub_s_op = Rv.reg_fff "rv_snitch.vfsub.s"
let vfmul_s_op = Rv.reg_fff "rv_snitch.vfmul.s"
let vfmax_s_op = Rv.reg_fff "rv_snitch.vfmax.s"
let vfmin_s_op = Rv.reg_fff "rv_snitch.vfmin.s"

(* vfmac.s: lanewise acc += a*b; modelled as (a, b, acc) -> acc'. *)
let vfmac_s_op = Rv.reg_ffff "rv_snitch.vfmac.s"

(* vfsum.s: acc[0] += s[0] + s[1]; modelled as (s, acc) -> acc'. *)
let vfsum_s_op = Rv.reg_fff "rv_snitch.vfsum.s"

(* vfcpka.s.s: pack two scalars into lanes: (lo, hi) -> packed. *)
let vfcpka_s_s_op = Rv.reg_fff "rv_snitch.vfcpka.s.s"

let read b stream =
  Builder.create1 b ~result:Rv.float_reg read_op [ stream ]

let write b value stream = Builder.create0 b write_op [ value; stream ]

let frep_outer b ~rpt ?(iter_args = []) f =
  let region = Ir.Region.single_block ~args:(List.map Ir.Value.ty iter_args) () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b ~regions:[ region ]
      ~results:(List.map Ir.Value.ty iter_args)
      frep_outer_op (rpt :: iter_args)
  in
  let bb = Builder.at_end body in
  let yielded = f bb (Ir.Block.args body) in
  Builder.create0 bb frep_yield_op yielded;
  op

let rpt op = Ir.Op.operand op 0
let iter_operands op = List.tl (Ir.Op.operands op)
let body op = Ir.Region.only_block (Ir.Op.region op 0)

let yield_of op =
  match Ir.Block.terminator (body op) with
  | Some t when Ir.Op.name t = frep_yield_op -> t
  | _ -> invalid_arg "Rv_snitch.yield_of: malformed frep"

let scfgwi b value ~slot ~dm =
  Builder.create0 b ~attrs:[ ("imm", Attr.Int ((slot * 8) + dm)) ] scfgwi_op [ value ]

let ssr_enable b = Builder.create0 b ssr_enable_op []
let ssr_disable b = Builder.create0 b ssr_disable_op []

let vf_binary b name x y = Builder.create1 b ~result:Rv.float_reg name [ x; y ]
let vfmac_s b x y acc = Builder.create1 b ~result:Rv.float_reg vfmac_s_op [ x; y; acc ]
let vfsum_s b s acc = Builder.create1 b ~result:Rv.float_reg vfsum_s_op [ s; acc ]
let vfcpka_s_s b lo hi = Builder.create1 b ~result:Rv.float_reg vfcpka_s_s_op [ lo; hi ]
