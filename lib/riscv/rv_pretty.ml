(* A readable, dialect-aware printer for the RISC-V-level structured IR,
   in the spirit of the paper's Figure 6: assembly-like operation lines
   with SSA values, explicit loop structure and streaming regions. Meant
   for humans inspecting --print-ir output; the lossless interchange
   format remains {!Mlc_ir.Printer}'s generic syntax. *)

open Mlc_ir

type env = { names : (int, string) Hashtbl.t; mutable next : int }

let name env (v : Ir.value) =
  let base =
    match Hashtbl.find_opt env.names v.Ir.vid with
    | Some n -> n
    | None ->
      let n = Printf.sprintf "%%%d" env.next in
      env.next <- env.next + 1;
      Hashtbl.add env.names v.Ir.vid n;
      n
  in
  (* Show the allocation when present: %3:t0 *)
  match Ir.Value.ty v with
  | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) -> base ^ ":" ^ r
  | _ -> base

let operands env op =
  String.concat ", " (List.map (name env) (Ir.Op.operands op))

let rec pp_op env buf indent (op : Ir.op) =
  let pad = String.make indent ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  let results =
    match Ir.Op.results op with
    | [] -> ""
    | rs -> String.concat ", " (List.map (name env) rs) ^ " = "
  in
  match Ir.Op.name op with
  | "rv_scf.for" ->
    let iters =
      match (Rv_scf.iter_args op, Rv_scf.iter_operands op) with
      | [], [] -> ""
      | args, inits ->
        " iter("
        ^ String.concat ", "
            (List.map2
               (fun a i -> Printf.sprintf "%s = %s" (name env a) (name env i))
               args inits)
        ^ ")"
    in
    line "%srv_scf.for %s = %s to %s step %d%s {" results
      (name env (Rv_scf.induction_var op))
      (name env (Rv_scf.lb op))
      (name env (Rv_scf.ub op))
      (Rv_scf.step op) iters;
    Ir.Block.iter_ops (Rv_scf.body op) (fun o -> pp_op env buf (indent + 2) o);
    line "}"
  | "rv_snitch.frep_outer" ->
    let iters =
      match (Ir.Block.args (Rv_snitch.body op), Rv_snitch.iter_operands op) with
      | [], [] -> ""
      | args, inits ->
        " iter("
        ^ String.concat ", "
            (List.map2
               (fun a i -> Printf.sprintf "%s = %s" (name env a) (name env i))
               args inits)
        ^ ")"
    in
    line "%srv_snitch.frep %s%s {" results (name env (Rv_snitch.rpt op)) iters;
    Ir.Block.iter_ops (Rv_snitch.body op) (fun o -> pp_op env buf (indent + 2) o);
    line "}"
  | "snitch_stream.streaming_region" ->
    let pats =
      String.concat ", "
        (List.map
           (fun (p : Attr.stride_pattern) ->
             Printf.sprintf "<ub=[%s], strides=[%s]>"
               (String.concat ", " (List.map string_of_int p.Attr.ub))
               (String.concat ", " (List.map string_of_int p.Attr.strides)))
           (Snitch_stream.patterns op))
    in
    line "snitch_stream.streaming_region ptrs(%s) patterns(%s) {" (operands env op) pats;
    let body = Snitch_stream.body op in
    line "  ^(%s):" (String.concat ", " (List.map (name env) (Ir.Block.args body)));
    Ir.Block.iter_ops body (fun o -> pp_op env buf (indent + 2) o);
    line "}"
  | "rv_func.func" ->
    let entry = Rv_func.entry op in
    line "rv_func.func @%s(%s) {" (Rv_func.name op)
      (String.concat ", " (List.map (name env) (Ir.Block.args entry)));
    List.iter
      (fun (b : Ir.block) ->
        if not (Ir.Block.equal b entry) then line "^block:";
        Ir.Block.iter_ops b (fun o -> pp_op env buf (indent + 2) o))
      (Ir.Region.blocks (Rv_func.body_region op));
    line "}"
  | "builtin.module" ->
    line "builtin.module {";
    Ir.Block.iter_ops (Ir.Module_.body op) (fun o -> pp_op env buf (indent + 2) o);
    line "}"
  | "rv.li" ->
    line "%srv.li %d" results (Attr.get_int (Ir.Op.attr_exn op "imm"))
  | "rv.li_bits" ->
    line "%srv.li 0x%Lx  # bits of %g" results
      (Int64.bits_of_float (Attr.get_float (Ir.Op.attr_exn op "value")))
      (Attr.get_float (Ir.Op.attr_exn op "value"))
  | "rv.get_register" ->
    line "%srv.get_register" results
  | "rv.comment" ->
    line "# %s" (Attr.get_str (Ir.Op.attr_exn op "text"))
  | "rv.addi" | "rv.slli" | "rv.srai" | "rv.andi" ->
    line "%s%s %s, %d" results (Ir.Op.name op) (operands env op)
      (Attr.get_int (Ir.Op.attr_exn op "imm"))
  | "rv.lw" | "rv.ld" | "rv.flw" | "rv.fld" ->
    line "%s%s %d(%s)" results (Ir.Op.name op)
      (Attr.get_int (Ir.Op.attr_exn op "offset"))
      (operands env op)
  | "rv.sw" | "rv.sd" | "rv.fsw" | "rv.fsd" ->
    let v = name env (Ir.Op.operand op 0) in
    let base = name env (Ir.Op.operand op 1) in
    line "%s %s, %d(%s)" (Ir.Op.name op) v
      (Attr.get_int (Ir.Op.attr_exn op "offset"))
      base
  | "rv_snitch.scfgwi" ->
    line "rv_snitch.scfgwi %s, %d" (operands env op)
      (Attr.get_int (Ir.Op.attr_exn op "imm"))
  | "rv_scf.yield" | "rv_snitch.frep_yield" ->
    if Ir.Op.num_operands op = 0 then line "yield"
    else line "yield %s" (operands env op)
  | other ->
    if Ir.Op.num_operands op = 0 then line "%s%s" results other
    else line "%s%s %s" results other (operands env op)

(* Pretty-print any op at the RISC-V level (typically the module or one
   function). *)
let to_string op =
  let buf = Buffer.create 1024 in
  pp_op { names = Hashtbl.create 64; next = 0 } buf 0 op;
  Buffer.contents buf
