(* The snitch_stream dialect: the register-level counterpart of
   memref_stream.streaming_region (paper §3.2, Figure 6 c).

   The op holds fully-resolved stream configurations (upper bounds plus
   byte strides per dimension, innermost last) as compile-time constants,
   plus one pointer operand per stream. Its region's block arguments are
   the SSR data registers (ft0, ft1, ft2 in operand order), typed as
   concrete registers, from which rv_snitch.read/write move elements. *)

open Mlc_ir

let num_ins op = Attr.get_int (Ir.Op.attr_exn op "ins")

let patterns op =
  List.map Attr.get_stride_pattern (Attr.get_arr (Ir.Op.attr_exn op "patterns"))

(* Element size in bytes served per stream access: 8 (the default; f64
   and packed-SIMD f32) or 4 (scalar f32). Regions built before the
   width attribute existed carry none and default to 8 per stream. *)
let widths op =
  match Ir.Op.attr op "widths" with
  | Some a -> List.map Attr.get_int (Attr.get_arr a)
  | None -> List.map (fun _ -> 8) (Ir.Op.operands op)

let streaming_region_op =
  Op_registry.register "snitch_stream.streaming_region" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "patterns";
      Op_registry.expect_attr op "ins";
      let n = Ir.Op.num_operands op in
      if n > Reg.num_ssrs then
        Op_registry.fail_op op "at most %d streams are supported" Reg.num_ssrs;
      if List.length (patterns op) <> n then
        Op_registry.fail_op op "one stride pattern per stream required";
      let ws = widths op in
      if List.length ws <> n then
        Op_registry.fail_op op "one element width per stream required";
      List.iter
        (fun w ->
          if w <> 4 && w <> 8 then
            Op_registry.fail_op op "stream element width must be 4 or 8, got %d" w)
        ws;
      List.iter
        (fun (p : Attr.stride_pattern) ->
          if List.length p.ub <> List.length p.strides then
            Op_registry.fail_op op "pattern ub/stride arity mismatch";
          if List.length p.ub > 4 then
            Op_registry.fail_op op "SSR address generators support at most 4 dimensions")
        (patterns op);
      List.iteri
        (fun i v ->
          match Ir.Value.ty v with
          | Ty.Int_reg _ -> ()
          | t ->
            Op_registry.fail_op op "stream pointer %d must be an integer register, got %s"
              i (Ty.to_string t))
        (Ir.Op.operands op);
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n then
        Op_registry.fail_op op "one SSR block argument per stream required";
      List.iteri
        (fun i v ->
          let expected = Ty.Float_reg (Some (List.nth Reg.ssr_data_registers i)) in
          if not (Ty.equal (Ir.Value.ty v) expected) then
            Op_registry.fail_op op "stream block arg %d must have type %s" i
              (Ty.to_string expected))
        (Ir.Block.args body))

(* [streaming_region b ~patterns ?widths ~ins ~outs f]: [ins]/[outs]
   are pointer registers; [f] receives the body builder and the SSR
   register values (readable streams first). [widths] gives the element
   size in bytes per stream, defaulting to 8 for every stream (f64 and
   packed-SIMD f32; scalar-f32 streams must pass 4). *)
let streaming_region b ~patterns:pats ?widths:ws ~ins:in_ptrs ~outs:out_ptrs f =
  let n = List.length in_ptrs + List.length out_ptrs in
  let ws = match ws with Some ws -> ws | None -> List.init n (fun _ -> 8) in
  let arg_tys =
    List.init n (fun i -> Ty.Float_reg (Some (List.nth Reg.ssr_data_registers i)))
  in
  let region = Ir.Region.single_block ~args:arg_tys () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b
      ~attrs:
        [
          ("patterns", Attr.Arr (List.map (fun p -> Attr.Stride_pattern p) pats));
          ("ins", Attr.Int (List.length in_ptrs));
          ("widths", Attr.Arr (List.map (fun w -> Attr.Int w) ws));
        ]
      ~regions:[ region ] ~results:[] streaming_region_op
      (in_ptrs @ out_ptrs)
  in
  let bb = Builder.at_end body in
  f bb (Ir.Block.args body);
  op

let body op = Ir.Region.only_block (Ir.Op.region op 0)
