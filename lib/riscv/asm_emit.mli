(** Assembly emission: walks register-allocated IR in order and prints
    RISC-V assembly with Snitch extensions (paper §3.1: "Assembly is
    printed using an interface-based design, where the IR is walked
    in-order, and printed according to implementation of each
    operation"). Structured ops print their own control flow
    ([rv_scf.for] as guard/body/back-branch, [frep_outer] as a [frep.o]
    covering its body); SSA-bridging ops print nothing. *)

open Mlc_ir

exception Emit_error of string

(** Machine instructions an op expands to (used for FREP's instruction
    count; raises on loops, which cannot appear under FREP). *)
val instr_count : Ir.op -> int

(** The assembly lines of one function ([rv_func.func]). *)
val emit_func : Ir.op -> string list

(** Every function in the module, concatenated. *)
val emit_module : Ir.op -> string

(** Static instruction statistics (Table 3 columns). *)
type stats = {
  loads : int;
  stores : int;
  fmadd : int;
  frep : int;
  total_ops : int;
}

val func_stats : Ir.op -> stats

(** Distinct (FP, integer) registers referenced by a function —
    the Table 2 register-pressure metric. *)
val used_registers : Ir.op -> string list * string list
