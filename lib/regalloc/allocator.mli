(** The multi-level, spill-free register allocator (paper §3.3).

    Three linear passes over a function in structured machine form:
    1. {e Exclusion} — registers already named in the IR leave the
       caller-saved pools (15 integer, 20 FP), so partially-allocated
       code is handled generically (Figure 6 A).
    2. {e Escape analysis} — values used inside a loop region but defined
       outside are recorded per loop (Figure 6 B).
    3. {e Backwards in-place walk} — registers are assigned at a value's
       last use and released at its definition; loops unify the
       registers of results / iteration operands / block arguments /
       yields first (Figure 6 D), extend escaping values' ranges across
       the body, then recurse.

    There is {b no spilling}: exhausting a pool raises
    {!Out_of_registers} (see {!Remat} for the rematerialisation
    fallback and {!Linear_scan} for the classical comparator). *)

open Mlc_riscv

exception Out_of_registers of Reg.kind
exception Allocation_conflict of string

type report = {
  fp_regs : string list;
  int_regs : string list;
  fp_count : int;
  int_count : int;
}

(** Allocate every register of an [rv_func.func] in place (by mutating
    value types). Raises {!Out_of_registers} rather than spilling, and
    {!Allocation_conflict} on contradictory pinning (a lowering bug).

    [reclaim_dead_args] (default true) returns the registers of unused
    entry arguments to the pool — the sound subset of the
    argument-register reuse the paper lists as future work (§4.3). *)
val allocate_func : ?reclaim_dead_args:bool -> Mlc_ir.Ir.op -> report
