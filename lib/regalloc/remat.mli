(** Rematerialisation on register pressure: when the spill-free allocator
    runs out of registers, constants and address arithmetic with
    spread-out uses are re-created next to each use (shrinking their
    live ranges to one instruction) and allocation is retried — memory
    is never touched, preserving the paper's spill-free property.
    Candidates are chosen depth-aware: the shallowest-nested first, so
    hot inner loops keep their hoisted invariants. *)

open Mlc_riscv

exception Still_out_of_registers of Reg.kind

(** Like {!Allocator.allocate_func} with the rematerialisation retry
    loop. A failed attempt is rolled back before rewriting, so the IR is
    never left partially allocated. *)
val allocate_with_remat : ?max_rounds:int -> Mlc_ir.Ir.op -> Allocator.report
