(* The multi-level, spill-free register allocator (paper §3.3).

   Registers are allocated in three linear passes over a function in
   structured machine form (rv ops, rv_scf.for loops, rv_snitch.frep
   loops, stream read/write ops):

   1. Exclusion: every register already named in the IR is removed from
      the caller-saved pools (15 integer, 20 FP), so partially-allocated
      code is handled generically (Figure 6 A).
   2. Escape analysis: values used inside a loop region but defined
      outside are recorded per loop (Figure 6 B).
   3. A backwards, in-place walk: a register is assigned at a value's
      last use (the first seen walking backwards) and released at its
      definition. Loops are processed by first unifying the registers of
      iteration results / iteration operands / body block arguments /
      yielded values (Figure 6 D), then extending the live ranges of the
      escaping values across the loop, then recursing into the body.

   There is NO spilling: exhausting a pool raises {!Out_of_registers}.
   The evaluation (paper §4.3) shows this suffices for linear-algebra
   micro-kernels. *)

open Mlc_ir
open Mlc_riscv

exception Out_of_registers of Reg.kind
exception Allocation_conflict of string

let conflict fmt = Format.kasprintf (fun m -> raise (Allocation_conflict m)) fmt

type t = {
  mutable free_int : string list;
  mutable free_float : string list;
  (* Registers managed by this allocator (drawn from the pools); others
     (pre-allocated args, SSR data registers) are never freed into the
     free lists. *)
  managed : (string, unit) Hashtbl.t;
  in_use : (string, unit) Hashtbl.t;
  (* Registers carrying loop-unified values while their loop body is
     being processed: the live range spans the back edge, so the usual
     release-at-definition rule must not fire inside the body. The value
     counts nesting depth. *)
  pinned : (string, int) Hashtbl.t;
  (* op id of a loop -> values defined outside, used inside *)
  externals : (int, Ir.value list) Hashtbl.t;
}

let reg_of_value v =
  match Ir.Value.ty v with
  | Ty.Int_reg r | Ty.Float_reg r -> r
  | t ->
    conflict "value %a of type %s is not register-typed" Ir.Value.pp v
      (Ty.to_string t)

let kind_of_value v =
  match Ir.Value.ty v with
  | Ty.Int_reg _ -> Reg.Int_kind
  | Ty.Float_reg _ -> Reg.Float_kind
  | t -> conflict "value of type %s is not register-typed" (Ty.to_string t)

let is_allocated v = reg_of_value v <> None

let assign v reg =
  match Ir.Value.ty v with
  | Ty.Int_reg None -> Ir.Value.set_ty v (Ty.Int_reg (Some reg))
  | Ty.Float_reg None -> Ir.Value.set_ty v (Ty.Float_reg (Some reg))
  | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) ->
    if r <> reg then
      conflict "cannot re-assign register %s to a value already in %s" reg r
  | t -> conflict "cannot assign a register to type %s" (Ty.to_string t)

(* --- pass 1: exclusion --- *)

(* The paper reserves argument registers outright and lists lifting that
   restriction as future work (§4.3). We implement the sound subset:
   registers of *unused* entry arguments (e.g. the shape-only pooling
   window pointer) rejoin the pool. Reusing a live argument's register
   after its last use would require whole-function interval knowledge —
   see Linear_scan — and stays future work here too. *)
let collect_used_registers ?(reclaim_dead_args = true) fn =
  let used = Hashtbl.create 16 in
  let note v =
    match Ir.Value.ty v with
    | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) -> Hashtbl.replace used r ()
    | _ -> ()
  in
  let note_block (b : Ir.block) = List.iter note (Ir.Block.args b) in
  List.iter
    (fun v ->
      if (not reclaim_dead_args) || Ir.Value.has_uses v then note v)
    (Ir.Block.args (Rv_func.entry fn));
  Ir.walk fn (fun op ->
      List.iter note (Ir.Op.operands op);
      List.iter note (Ir.Op.results op);
      List.iter
        (fun rg -> List.iter note_block (Ir.Region.blocks rg))
        (Ir.Op.regions op));
  used

(* --- pass 2: escape analysis --- *)

(* A value escapes into loop [l] if its owner block is not nested inside
   [l] but one of its uses is. *)
let compute_externals fn externals =
  let rec block_within_op (b : Ir.block) (op : Ir.op) =
    match Ir.Block.parent_op b with
    | None -> false
    | Some p ->
      Ir.Op.equal p op
      || (match Ir.Op.parent p with
         | None -> false
         | Some pb -> block_within_op pb op)
  in
  let is_loop op =
    let n = Ir.Op.name op in
    n = Rv_scf.for_op || n = Rv_snitch.frep_outer_op
  in
  Ir.walk fn (fun loop ->
      if is_loop loop then begin
        let seen = Hashtbl.create 8 in
        let acc = ref [] in
        Ir.walk loop (fun inner ->
            List.iter
              (fun v ->
                match Ir.Value.owner_block v with
                | Some owner
                  when (not (block_within_op owner loop))
                       && not (Hashtbl.mem seen (Ir.Value.id v)) ->
                  (* Loop operands are handled by the loop-unification
                     step; only record values flowing in "sideways". *)
                  Hashtbl.replace seen (Ir.Value.id v) ();
                  acc := v :: !acc
                | _ -> ())
              (Ir.Op.operands inner));
        Hashtbl.replace externals (Ir.Op.id loop) (List.rev !acc)
      end)

(* --- pass 3: backwards walk --- *)

let alloc st kind =
  match kind with
  | Reg.Int_kind -> (
    match st.free_int with
    | [] -> raise (Out_of_registers Reg.Int_kind)
    | r :: rest ->
      st.free_int <- rest;
      Hashtbl.replace st.in_use r ();
      r)
  | Reg.Float_kind -> (
    match st.free_float with
    | [] -> raise (Out_of_registers Reg.Float_kind)
    | r :: rest ->
      st.free_float <- rest;
      Hashtbl.replace st.in_use r ();
      r)

let pin st reg =
  Hashtbl.replace st.pinned reg
    (1 + Option.value ~default:0 (Hashtbl.find_opt st.pinned reg))

let unpin st reg =
  match Hashtbl.find_opt st.pinned reg with
  | Some 1 -> Hashtbl.remove st.pinned reg
  | Some n -> Hashtbl.replace st.pinned reg (n - 1)
  | None -> ()

let is_pinned st reg = Hashtbl.mem st.pinned reg

let release st reg =
  if
    Hashtbl.mem st.managed reg
    && Hashtbl.mem st.in_use reg
    && not (is_pinned st reg)
  then begin
    Hashtbl.remove st.in_use reg;
    match Reg.kind_of reg with
    | Reg.Int_kind -> st.free_int <- reg :: st.free_int
    | Reg.Float_kind -> st.free_float <- reg :: st.free_float
  end

(* Mark a pool register as occupied (used when unifying against an
   already-placed register). *)
let occupy st reg =
  if Hashtbl.mem st.managed reg && not (Hashtbl.mem st.in_use reg) then begin
    Hashtbl.replace st.in_use reg ();
    match Reg.kind_of reg with
    | Reg.Int_kind -> st.free_int <- List.filter (( <> ) reg) st.free_int
    | Reg.Float_kind -> st.free_float <- List.filter (( <> ) reg) st.free_float
  end

let ensure_allocated st v =
  match reg_of_value v with
  | Some r -> r
  | None ->
    let r = alloc st (kind_of_value v) in
    assign v r;
    r

(* Operand index tied to the result register (two-address accumulator
   instructions). *)
let tied_operand op =
  match Ir.Op.name op with
  | "rv_snitch.vfmac.s" -> Some 2
  | "rv_snitch.vfsum.s" -> Some 1
  | _ -> None

let rec process_op st op =
  let name = Ir.Op.name op in
  if name = Rv_scf.for_op || name = Rv_snitch.frep_outer_op then
    process_loop st op
  else if List.length (Ir.Op.regions op) > 0 then
    conflict "cannot allocate registers for region op %s" name
  else begin
    (* Stream reads produce their element in the SSR data register
       itself: pin the result before general handling. *)
    if name = Rv_snitch.read_op then begin
      let src = Ir.Op.operand op 0 in
      let res = Ir.Op.result op 0 in
      match reg_of_value res with
      | None -> assign res (Option.get (reg_of_value src))
      | Some r when Some r = reg_of_value src -> ()
      | Some r ->
        conflict "stream read result pinned to %s but stream register differs" r
    end;
    (* Stream writes require the written value in the SSR data register. *)
    if name = Rv_snitch.write_op then begin
      let v = Ir.Op.operand op 0 in
      let dst = Ir.Op.operand op 1 in
      match reg_of_value v with
      | None -> assign v (Option.get (reg_of_value dst))
      | Some r when Some r = reg_of_value dst -> ()
      | Some r ->
        conflict
          "value written to stream is in %s; it must be produced directly \
           into the stream register" r
    end;
    (* Definition point: results' live ranges start here; release their
       registers (allocating first if the result is dead). Tied
       accumulators keep the register alive through the op. *)
    let tied = tied_operand op in
    List.iteri
      (fun i res ->
        let r = ensure_allocated st res in
        match tied with
        | Some acc_idx when i = 0 ->
          let acc = Ir.Op.operand op acc_idx in
          (match reg_of_value acc with
          | None -> assign acc r
          | Some r' when r' = r -> ()
          | Some r' ->
            conflict "tied accumulator in %s but result in %s" r' r)
        | _ -> release st r)
      (Ir.Op.results op);
    (* Last-use point: allocate any still-unallocated operands. *)
    List.iter
      (fun v -> ignore (ensure_allocated st v))
      (Ir.Op.operands op)
  end

and process_loop st op =
  let name = Ir.Op.name op in
  let body =
    if name = Rv_scf.for_op then Rv_scf.body op else Rv_snitch.body op
  in
  let iter_operands =
    if name = Rv_scf.for_op then Rv_scf.iter_operands op
    else Rv_snitch.iter_operands op
  in
  let iter_args =
    if name = Rv_scf.for_op then Rv_scf.iter_args op
    else Ir.Block.args body
  in
  let yield =
    if name = Rv_scf.for_op then Rv_scf.yield_of op else Rv_snitch.yield_of op
  in
  let results = Ir.Op.results op in
  (* Unify result / iter operand / block arg / yielded value (Figure 6 D).
     Loop-carried values keep one register across iterations. *)
  let unify quad =
    let existing =
      List.filter_map (fun v -> reg_of_value v) quad |> List.sort_uniq compare
    in
    let r =
      match existing with
      | [] -> alloc st (kind_of_value (List.hd quad))
      | [ r ] ->
        occupy st r;
        r
      | rs ->
        conflict "loop-carried value pinned to multiple registers: %s"
          (String.concat ", " rs)
    in
    List.iter (fun v -> assign v r) quad
  in
  let quad_regs = ref [] in
  List.iteri
    (fun i res ->
      let quad =
        [ res; List.nth iter_operands i; List.nth iter_args i;
          Ir.Op.operand yield i ]
      in
      unify quad;
      match reg_of_value res with
      | Some r -> quad_regs := r :: !quad_regs
      | None -> ())
    results;
  (* Extend live ranges of values defined outside but used inside: they
     must hold their registers across all iterations. *)
  let externals =
    match Hashtbl.find_opt st.externals (Ir.Op.id op) with
    | Some vs -> vs
    | None -> []
  in
  List.iter
    (fun v ->
      match reg_of_value v with
      | Some r -> occupy st r
      | None -> ignore (ensure_allocated st v))
    externals;
  (* Only the upper bound is read on every trip (the back-edge compare):
     it must hold its register across the body. The lower bound (and an
     FREP's repetition count) is consumed once at loop entry, so it is
     allocated after the body walk — its live range ends where the loop
     begins. *)
  (if name = Rv_scf.for_op then
     ignore (ensure_allocated st (Ir.Op.operand op 1)));
  (* The induction variable lives only inside the body. *)
  let induction =
    if name = Rv_scf.for_op then Some (Ir.Block.arg body 0) else None
  in
  Option.iter (fun iv -> ignore (ensure_allocated st iv)) induction;
  (* Recurse into the body, backwards. Loop-carried registers are pinned
     so releases at their defining ops inside the body do not free them:
     the values live across the back edge. *)
  List.iter (pin st) !quad_regs;
  process_block st body;
  List.iter (unpin st) !quad_regs;
  Option.iter (fun iv -> Option.iter (release st) (reg_of_value iv)) induction;
  (* Entry-only operands: lb (rv_scf) / repetition count (frep). *)
  List.iter (fun v -> ignore (ensure_allocated st v)) (Ir.Op.operands op);
  (* Loop results stay live until the iteration operands' definitions,
     which are processed later in the enclosing walk; nothing to release
     here. *)
  ()

and process_block st block =
  Ir.Block.rev_iter_ops block (fun op ->
      match Ir.Op.name op with
      | "rv_scf.yield" | "rv_snitch.frep_yield" | "rv_func.return" ->
        (* Terminators: operands were unified by the enclosing loop
           (yields) or are pre-allocated ABI registers (returns). Any
           still-unallocated yield operand is loop-invariant dataflow. *)
        List.iter (fun v -> ignore (ensure_allocated st v)) (Ir.Op.operands op)
      | _ -> process_op st op)

type report = {
  fp_regs : string list; (* distinct FP registers in the allocated function *)
  int_regs : string list;
  fp_count : int;
  int_count : int;
}

(* Allocate every register in [fn] (an rv_func.func in structured machine
   form) in place. Raises {!Out_of_registers} rather than spilling. *)
let allocate_func ?(reclaim_dead_args = true) fn =
  if Ir.Op.name fn <> Rv_func.func_op then
    invalid_arg "Allocator.allocate_func: expected rv_func.func";
  (* Pass 1: exclusion. *)
  let used = collect_used_registers ~reclaim_dead_args fn in
  let free_int = List.filter (fun r -> not (Hashtbl.mem used r)) Reg.int_pool in
  let free_float =
    List.filter (fun r -> not (Hashtbl.mem used r)) Reg.float_pool
  in
  (* ft0-ft2 are the SSR data movers: in a function that enables
     streaming they must never double as scratch — while streaming is
     enabled an access hits the (possibly unconfigured) stream, not the
     architectural register, which the simulator's trap model reports
     as a stream fault. *)
  let free_float =
    if Ir.collect fn (fun op -> Ir.Op.name op = Rv_snitch.ssr_enable_op) <> []
    then
      List.filter (fun r -> not (List.mem r Reg.ssr_data_registers)) free_float
    else free_float
  in
  let managed = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace managed r ()) free_int;
  List.iter (fun r -> Hashtbl.replace managed r ()) free_float;
  let st =
    {
      free_int;
      free_float;
      managed;
      in_use = Hashtbl.create 32;
      pinned = Hashtbl.create 8;
      externals = Hashtbl.create 8;
    }
  in
  (* Pass 2: escape analysis. *)
  compute_externals fn st.externals;
  (* Pin stream reads/writes to their SSR data registers before the
     backwards walk, so consumers see the hardware register rather than
     drawing from the pool (paper §3.3: streaming constraints are
     declared on the ops). *)
  Ir.walk fn (fun op ->
      if Ir.Op.name op = Rv_snitch.read_op then begin
        let src_reg = Option.get (reg_of_value (Ir.Op.operand op 0)) in
        assign (Ir.Op.result op 0) src_reg
      end
      else if Ir.Op.name op = Rv_snitch.write_op then begin
        let dst_reg = Option.get (reg_of_value (Ir.Op.operand op 1)) in
        assign (Ir.Op.operand op 0) dst_reg
      end);
  (* Pass 3: backwards in-place allocation, one block at this level. *)
  (match Ir.Region.blocks (Rv_func.body_region fn) with
  | [ body ] -> process_block st body
  | _ ->
    invalid_arg
      "Allocator.allocate_func: structured form must have a single body block");
  (* Everything register-typed must now be placed. *)
  let check v =
    if not (is_allocated v) then
      conflict "value %a left unallocated" Ir.Value.pp v
  in
  Ir.walk fn (fun op ->
      List.iter check (Ir.Op.operands op);
      List.iter check (Ir.Op.results op));
  let fp, ints = Asm_emit.used_registers fn in
  { fp_regs = fp; int_regs = ints; fp_count = List.length fp; int_count = List.length ints }
