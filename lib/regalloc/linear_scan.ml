(* A classical linear-scan register allocator WITH spilling (Poletto &
   Sarkar style), the approach the paper contrasts its structured
   spill-free allocator against (§3.3: "spilling, a feature required for
   general-purpose register allocation, has a negative performance
   impact, making it undesired for micro-kernel compilation").

   The allocator linearises the structured IR, computes live intervals
   (loop-carried quads are unified and extended across their loop; values
   used inside a loop but defined outside live to the loop's end), scans
   intervals by start point and, under pressure, spills the interval with
   the furthest end to a stack slot. Spill code uses reserved scratch
   registers: the definition stores to the slot, every use reloads.

   Restrictions (documented): loop-carried values, induction variables
   and block arguments are never spilled (raises {!Cannot_spill} if only
   those remain), and streaming kernels (pinned SSR registers) are out of
   scope — the paper's baselines, which this allocator exists to model,
   use neither. *)

open Mlc_ir
open Mlc_riscv

exception Cannot_spill of string

let fail fmt = Format.kasprintf (fun m -> raise (Cannot_spill m)) fmt

(* Reserved scratch registers (removed from the pools): the head of the
   integer list holds the frame pointer, the rest serve spill stores and
   reloads. *)
let int_scratch = [ "t4"; "t5"; "t6" ]
let float_scratch = [ "ft9"; "ft10"; "ft11" ]

(* --- union-find over value ids (loop quad unification) --- *)

type uf = (int, int) Hashtbl.t

let rec uf_find (uf : uf) x =
  match Hashtbl.find_opt uf x with
  | None -> x
  | Some p when p = x -> x
  | Some p ->
    let r = uf_find uf p in
    Hashtbl.replace uf x r;
    r

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then Hashtbl.replace uf ra rb

(* --- linearisation --- *)

type linearized = {
  op_pos : (int, int) Hashtbl.t; (* op id -> position *)
  loop_extent : (int, int * int) Hashtbl.t; (* loop op id -> (start, end) *)
  mutable max_pos : int;
}

let linearize fn =
  let lz =
    { op_pos = Hashtbl.create 64; loop_extent = Hashtbl.create 8; max_pos = 0 }
  in
  let next = ref 0 in
  let rec walk_block (b : Ir.block) =
    Ir.Block.iter_ops b (fun op ->
        let start = !next in
        incr next;
        Hashtbl.replace lz.op_pos (Ir.Op.id op) start;
        List.iter
          (fun (r : Ir.region) -> List.iter walk_block (Ir.Region.blocks r))
          (Ir.Op.regions op);
        if Ir.Op.regions op <> [] then begin
          let stop = !next in
          incr next;
          Hashtbl.replace lz.loop_extent (Ir.Op.id op) (start, stop)
        end)
  in
  (match Ir.Region.blocks (Rv_func.body_region fn) with
  | [ body ] -> walk_block body
  | _ -> fail "linear scan requires a single structured body block");
  lz.max_pos <- !next;
  lz

(* --- intervals --- *)

type interval = {
  class_id : int; (* uf representative value id *)
  kind : Reg.kind;
  mutable istart : int;
  mutable iend : int;
  members : Ir.value list;
  precolored : string option;
  spillable : bool;
  mutable assigned : string option;
  mutable spilled : bool;
}

let value_kind v =
  match Ir.Value.ty v with
  | Ty.Int_reg _ -> Reg.Int_kind
  | Ty.Float_reg _ -> Reg.Float_kind
  | t -> fail "non-register value of type %s" (Ty.to_string t)

let precolor_of v =
  match Ir.Value.ty v with
  | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) -> Some r
  | _ -> None

(* Position of a value's definition. *)
let def_pos lz fn v =
  match Ir.Value.def v with
  | Ir.Op_result (op, _) -> (
    match Hashtbl.find_opt lz.op_pos (Ir.Op.id op) with
    | Some p -> p
    | None -> fail "definition outside the function body")
  | Ir.Block_arg (b, _) -> (
    if Ir.Block.equal b (Rv_func.entry fn) then 0
    else
      match Ir.Block.parent_op b with
      | Some loop -> fst (Hashtbl.find lz.loop_extent (Ir.Op.id loop))
      | None -> fail "block argument without a parent loop")

let build_intervals fn lz =
  let uf : uf = Hashtbl.create 64 in
  (* Unify loop-carried quads; remember which classes are carried. *)
  let carried = Hashtbl.create 16 in
  let carried_members = Hashtbl.create 16 in
  Ir.walk fn (fun op ->
      if Ir.Op.name op = Rv_scf.for_op then begin
        let body = Rv_scf.body op in
        let yield = Rv_scf.yield_of op in
        List.iteri
          (fun i res ->
            let quad =
              [
                res;
                List.nth (Rv_scf.iter_operands op) i;
                Ir.Block.arg body (i + 1);
                Ir.Op.operand yield i;
              ]
            in
            List.iter
              (fun v -> uf_union uf (Ir.Value.id (List.hd quad)) (Ir.Value.id v))
              quad;
            Hashtbl.replace carried_members (Ir.Value.id res) ())
          (Ir.Op.results op);
        (* The induction variable is live across the back edge too. *)
        Hashtbl.replace carried_members
          (Ir.Value.id (Rv_scf.induction_var op))
          ()
      end);
  (* Resolve recorded members to final representatives (unions after the
     recording could have moved roots). *)
  Hashtbl.iter
    (fun vid () -> Hashtbl.replace carried (uf_find uf vid) ())
    carried_members;
  (* Collect all values. *)
  let values = Hashtbl.create 128 in
  let note v = Hashtbl.replace values (Ir.Value.id v) v in
  List.iter note (Ir.Block.args (Rv_func.entry fn));
  Ir.walk fn (fun op ->
      List.iter note (Ir.Op.results op);
      List.iter note (Ir.Op.operands op);
      List.iter
        (fun (r : Ir.region) ->
          List.iter
            (fun (b : Ir.block) -> List.iter note (Ir.Block.args b))
            (Ir.Region.blocks r))
        (Ir.Op.regions op));
  (* Build classes. *)
  let classes : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun vid v ->
      let root = uf_find uf vid in
      let is_block_arg = match Ir.Value.def v with Ir.Block_arg _ -> true | _ -> false in
      match Hashtbl.find_opt classes root with
      | Some itv ->
        let itv =
          {
            itv with
            members = v :: itv.members;
            precolored =
              (match (itv.precolored, precolor_of v) with
              | Some r, Some r' when r <> r' ->
                fail "conflicting precolors %s / %s in one class" r r'
              | Some r, _ -> Some r
              | None, p -> p);
            spillable = itv.spillable && not is_block_arg;
          }
        in
        Hashtbl.replace classes root itv
      | None ->
        Hashtbl.replace classes root
          {
            class_id = root;
            kind = value_kind v;
            istart = max_int;
            iend = 0;
            members = [ v ];
            precolored = precolor_of v;
            spillable =
              (not is_block_arg) && not (Hashtbl.mem carried root);
            assigned = None;
            spilled = false;
          })
    values;
  (* Interval endpoints. Values consumed by a loop op itself (bounds) are
     read at the back edge every iteration and must stay in a register:
     mark them unspillable. *)
  let unspillable = Hashtbl.create 8 in
  Hashtbl.iter
    (fun root itv ->
      List.iter
        (fun v ->
          itv.istart <- min itv.istart (def_pos lz fn v);
          List.iter
            (fun (u : Ir.use) ->
              if Ir.Op.name u.Ir.user = Rv_scf.for_op then begin
                Hashtbl.replace unspillable root ();
                (* Loop bounds are re-read at every back edge: the value
                   lives to the loop's end. *)
                match Hashtbl.find_opt lz.loop_extent (Ir.Op.id u.Ir.user) with
                | Some (_, lend) -> itv.iend <- max itv.iend lend
                | None -> ()
              end;
              match Hashtbl.find_opt lz.op_pos (Ir.Op.id u.Ir.user) with
              | Some p -> itv.iend <- max itv.iend p
              | None -> ())
            (Ir.Value.uses v))
        itv.members)
    classes;
  Hashtbl.iter
    (fun root () ->
      match Hashtbl.find_opt classes root with
      | Some itv -> Hashtbl.replace classes root { itv with spillable = false }
      | None -> ())
    unspillable;
  (* Extend across loops: used inside a loop but defined before it, or a
     loop-carried class, lives to the loop's end. *)
  Hashtbl.iter
    (fun loop_id (lstart, lend) ->
      ignore loop_id;
      Hashtbl.iter
        (fun _ itv ->
          if itv.istart < lstart && itv.iend > lstart && itv.iend < lend then
            itv.iend <- lend;
          if Hashtbl.mem carried itv.class_id && itv.istart >= lstart
             && itv.istart <= lend then
            itv.iend <- max itv.iend lend)
        classes)
    lz.loop_extent;
  classes

(* --- the scan --- *)

type result = {
  report : Allocator.report;
  spill_slots : int;
  spilled_classes : int;
}

let allocate_func ?(int_pool = Reg.int_pool) ?(float_pool = Reg.float_pool) fn =
  if Ir.Op.name fn <> Rv_func.func_op then
    invalid_arg "Linear_scan.allocate_func: expected rv_func.func";
  Ir.walk fn (fun op ->
      if Ir.Op.name op = Snitch_stream.streaming_region_op
         || Ir.Op.name op = Rv_snitch.read_op
      then fail "streaming kernels are out of scope for the linear-scan comparator");
  let lz = linearize fn in
  let classes = build_intervals fn lz in
  let intervals =
    Hashtbl.fold (fun _ itv acc -> itv :: acc) classes []
    |> List.sort (fun a b -> compare (a.istart, a.class_id) (b.istart, b.class_id))
  in
  (* Pools minus scratch and precolored registers. *)
  let precolored_regs =
    List.filter_map (fun itv -> itv.precolored) intervals
  in
  let avail kind =
    let pool, scratch =
      match kind with
      | Reg.Int_kind -> (int_pool, int_scratch)
      | Reg.Float_kind -> (float_pool, float_scratch)
    in
    List.filter
      (fun r -> (not (List.mem r scratch)) && not (List.mem r precolored_regs))
      pool
  in
  let free_int = ref (avail Reg.Int_kind) in
  let free_float = ref (avail Reg.Float_kind) in
  let free_of = function Reg.Int_kind -> free_int | Reg.Float_kind -> free_float in
  let active = ref [] (* sorted by iend *) in
  let expire pos =
    let expired, live = List.partition (fun itv -> itv.iend < pos) !active in
    List.iter
      (fun itv ->
        match itv.assigned with
        | Some r when itv.precolored = None ->
          let fr = free_of itv.kind in
          fr := r :: !fr
        | _ -> ())
      expired;
    active := live
  in
  let n_spilled = ref 0 in
  List.iter
    (fun itv ->
      if itv.precolored <> None then itv.assigned <- itv.precolored
      else begin
        expire itv.istart;
        let fr = free_of itv.kind in
        match !fr with
        | r :: rest ->
          fr := rest;
          itv.assigned <- Some r;
          active :=
            List.sort (fun a b -> compare a.iend b.iend) (itv :: !active)
        | [] ->
          (* Spill the same-kind interval with the furthest end. *)
          let candidates =
            List.filter (fun a -> a.kind = itv.kind && a.spillable) !active
          in
          let victim =
            List.fold_left
              (fun best a ->
                match best with
                | Some b when b.iend >= a.iend -> Some b
                | _ -> Some a)
              (if itv.spillable then Some itv else None)
              candidates
          in
          (match victim with
          | None -> fail "pressure requires spilling an unspillable value"
          | Some v when v == itv ->
            itv.spilled <- true;
            incr n_spilled
          | Some v ->
            v.spilled <- true;
            incr n_spilled;
            itv.assigned <- v.assigned;
            v.assigned <- None;
            active :=
              List.sort (fun a b -> compare a.iend b.iend)
                (itv :: List.filter (fun a -> not (a == v)) !active))
      end)
    intervals;
  (* Apply register assignments. *)
  List.iter
    (fun itv ->
      match itv.assigned with
      | Some r when not itv.spilled ->
        List.iter
          (fun v ->
            match Ir.Value.ty v with
            | Ty.Int_reg None -> Ir.Value.set_ty v (Ty.Int_reg (Some r))
            | Ty.Float_reg None -> Ir.Value.set_ty v (Ty.Float_reg (Some r))
            | _ -> ())
          itv.members
      | _ -> ())
    intervals;
  (* Insert spill code: store after def, reload before each use. Spilled
     classes are single-member plain op results by construction. *)
  let spilled = List.filter (fun itv -> itv.spilled) intervals in
  let n_slots = List.length spilled in
  if n_slots > 0 then begin
    let entry = Rv_func.entry fn in
    let first_op =
      match Ir.Block.first_op entry with
      | Some op -> op
      | None -> fail "empty function"
    in
    let bb_entry = Builder.before first_op in
    let frame = (n_slots * 8 + 15) / 16 * 16 in
    (* Leaf-function red zone: the frame pointer is sp - frame in a
       reserved scratch register; sp itself never moves (the kernels
       make no calls). *)
    let sp0 = Rv.get_register bb_entry "sp" in
    let sp = Rv.addi bb_entry sp0 (-frame) in
    Ir.Value.set_ty sp (Ty.Int_reg (Some (List.hd int_scratch)));
    List.iteri
      (fun slot itv ->
        let off = slot * 8 in
        List.iter
          (fun v ->
            let def_op =
              match Ir.Value.defining_op v with
              | Some op -> op
              | None -> fail "spilled block argument"
            in
            let scratch_pool =
              match itv.kind with
              | Reg.Int_kind -> List.tl int_scratch
              | Reg.Float_kind -> float_scratch
            in
            let store_name, load_name =
              match itv.kind with
              | Reg.Int_kind -> (Rv.sd_op, Rv.ld_op)
              | Reg.Float_kind -> (Rv.fsd_op, Rv.fld_op)
            in
            (* Definition lands in scratch and is stored to the slot. *)
            let def_scratch = List.hd scratch_pool in
            (match Ir.Value.ty v with
            | Ty.Int_reg None -> Ir.Value.set_ty v (Ty.Int_reg (Some def_scratch))
            | Ty.Float_reg None ->
              Ir.Value.set_ty v (Ty.Float_reg (Some def_scratch))
            | _ -> ());
            let bb = Builder.after def_op in
            (match itv.kind with
            | Reg.Int_kind -> Rv.store bb store_name ~offset:off v sp
            | Reg.Float_kind -> Rv.fstore bb store_name ~offset:off v sp);
            (* Each use reloads into a scratch register chosen by operand
               index, so several spilled operands of one instruction get
               distinct registers. *)
            let uses = Ir.Value.uses v in
            List.iter
              (fun (u : Ir.use) ->
                (* Skip the store we just inserted. *)
                if not (Ir.Op.name u.Ir.user = store_name
                        && Ir.Op.operand u.Ir.user 0 == v)
                then begin
                  let bb = Builder.before u.Ir.user in
                  let scratch =
                    List.nth scratch_pool (u.Ir.index mod List.length scratch_pool)
                  in
                  let reload =
                    match itv.kind with
                    | Reg.Int_kind -> Rv.load bb load_name ~offset:off sp
                    | Reg.Float_kind -> Rv.fload bb load_name ~offset:off sp
                  in
                  (match Ir.Value.ty reload with
                  | Ty.Int_reg None ->
                    Ir.Value.set_ty reload (Ty.Int_reg (Some scratch))
                  | Ty.Float_reg None ->
                    Ir.Value.set_ty reload (Ty.Float_reg (Some scratch))
                  | _ -> ());
                  Ir.Op.set_operand u.Ir.user u.Ir.index reload
                end)
              uses)
          itv.members)
      spilled
  end;
  let fp, ints = Asm_emit.used_registers fn in
  {
    report =
      {
        Allocator.fp_regs = fp;
        int_regs = ints;
        fp_count = List.length fp;
        int_count = List.length ints;
      };
    spill_slots = n_slots;
    spilled_classes = !n_spilled;
  }
