(** An independent register-allocation soundness checker: rebuilds
    conservative live ranges from scratch and verifies that no two
    distinct ranges assigned to the same register overlap. The test
    oracle for both {!Allocator} and {!Linear_scan}; the .ml header
    documents the live-range model and exemptions. *)

exception Overlap of string

(** Check an allocated [rv_func.func]; raises {!Overlap} on a violation. *)
val check_func : Mlc_ir.Ir.op -> unit

val check_result : Mlc_ir.Ir.op -> (unit, string) result
