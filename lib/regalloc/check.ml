(* An independent register-allocation soundness checker: given an
   allocated function in structured machine form, rebuild conservative
   live ranges from scratch (without consulting any allocator state) and
   verify that no two distinct live ranges assigned to the same register
   overlap. Serves as the test oracle for both the structured spill-free
   allocator and the linear scan.

   Live-range model (positions from a pre-order linearisation):
   - an op result lives from its op to its last use;
   - entry block arguments live from position 0;
   - loop-carried quads (result / iteration operand / body argument /
     yield operand) form one range extended to the loop's end;
   - induction variables live across their whole loop;
   - a value used inside a loop but defined outside lives to the loop's
     end (it is re-read every iteration);
   - a loop's upper bound (operand 1 of rv_scf.for) is re-read at every
     back edge and lives to the loop's end; the lower bound and an
     FREP's repetition count are consumed at entry only.

   Exempt from checking: SSR data registers (every stream access
   intentionally names ft0-ft2), "zero", and unallocated values. *)

open Mlc_ir
open Mlc_riscv

exception Overlap of string

let fail fmt = Format.kasprintf (fun m -> raise (Overlap m)) fmt

type range = {
  reg : string;
  mutable lo : int;
  mutable hi : int;
  repr : int; (* representative value id *)
}

let check_func fn =
  if Ir.Op.name fn <> Rv_func.func_op then
    invalid_arg "Check.check_func: expected rv_func.func";
  (* Linearise with the shared pre-order walk (Mlc_analysis.Cfg). *)
  let lin = Mlc_analysis.Cfg.linearize (Rv_func.body_region fn) in
  let op_pos = lin.Mlc_analysis.Cfg.op_pos in
  let loop_extent = lin.Mlc_analysis.Cfg.loop_extent in
  (* Union-find for quad unification. *)
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p when p = x -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  let is_loop = Mlc_analysis.Cfg.is_structured_loop in
  Ir.walk fn (fun op ->
      if is_loop op then begin
        let body = Ir.Region.only_block (Ir.Op.region op 0) in
        let iter_operands =
          if Ir.Op.name op = Rv_scf.for_op then Rv_scf.iter_operands op
          else Rv_snitch.iter_operands op
        in
        let iter_args =
          if Ir.Op.name op = Rv_scf.for_op then Rv_scf.iter_args op
          else Ir.Block.args body
        in
        let yield = Option.get (Ir.Block.terminator body) in
        List.iteri
          (fun i res ->
            union (Ir.Value.id res) (Ir.Value.id (List.nth iter_operands i));
            union (Ir.Value.id res) (Ir.Value.id (List.nth iter_args i));
            union (Ir.Value.id res) (Ir.Value.id (Ir.Op.operand yield i)))
          (Ir.Op.results op)
      end);
  (* Collect values. *)
  let values = Hashtbl.create 256 in
  let note v = Hashtbl.replace values (Ir.Value.id v) v in
  List.iter note (Ir.Block.args (Rv_func.entry fn));
  Ir.walk fn (fun op ->
      List.iter note (Ir.Op.results op);
      List.iter note (Ir.Op.operands op);
      List.iter
        (fun (r : Ir.region) ->
          List.iter
            (fun (b : Ir.block) -> List.iter note (Ir.Block.args b))
            (Ir.Region.blocks r))
        (Ir.Op.regions op));
  let reg_of v =
    match Ir.Value.ty v with
    | Ty.Int_reg (Some r) | Ty.Float_reg (Some r) -> Some r
    | _ -> None
  in
  let exempt r = r = Reg.zero || List.mem r Reg.ssr_data_registers in
  (* Build ranges per class. *)
  let ranges : (int, range) Hashtbl.t = Hashtbl.create 128 in
  let def_pos v =
    match Ir.Value.def v with
    | Ir.Op_result (op, _) ->
      Option.value ~default:0 (Hashtbl.find_opt op_pos (Ir.Op.id op))
    | Ir.Block_arg (b, _) -> (
      if Ir.Block.equal b (Rv_func.entry fn) then 0
      else
        match Ir.Block.parent_op b with
        | Some loop ->
          fst (Option.value ~default:(0, 0)
                 (Hashtbl.find_opt loop_extent (Ir.Op.id loop)))
        | None -> 0)
  in
  Hashtbl.iter
    (fun vid v ->
      match reg_of v with
      | Some r when not (exempt r) ->
        let root = find vid in
        let range =
          match Hashtbl.find_opt ranges root with
          | Some range ->
            if range.reg <> r then
              fail "loop-carried class split across %s and %s" range.reg r;
            range
          | None ->
            let range = { reg = r; lo = max_int; hi = 0; repr = root } in
            Hashtbl.replace ranges root range;
            range
        in
        range.lo <- min range.lo (def_pos v);
        List.iter
          (fun (u : Ir.use) ->
            (match Hashtbl.find_opt op_pos (Ir.Op.id u.Ir.user) with
            | Some p -> range.hi <- max range.hi p
            | None -> ());
            (* Loop upper bound: re-read at the back edge. *)
            if Ir.Op.name u.Ir.user = Rv_scf.for_op && u.Ir.index = 1 then
              match Hashtbl.find_opt loop_extent (Ir.Op.id u.Ir.user) with
              | Some (_, lend) -> range.hi <- max range.hi lend
              | None -> ())
          (Ir.Value.uses v)
      | _ -> ())
    values;
  (* Extension across loops. A loop-carried class (or induction variable)
     is live across ITS OWN loop's back edge only — it is re-initialised
     on each entry from an enclosing loop. *)
  let carried = Hashtbl.create 32 in
  Ir.walk fn (fun op ->
      if is_loop op then begin
        let _, lend =
          Option.value ~default:(0, 0) (Hashtbl.find_opt loop_extent (Ir.Op.id op))
        in
        List.iter
          (fun res -> Hashtbl.replace carried (find (Ir.Value.id res)) lend)
          (Ir.Op.results op);
        if Ir.Op.name op = Rv_scf.for_op then
          Hashtbl.replace carried
            (find (Ir.Value.id (Rv_scf.induction_var op)))
            lend
      end);
  Hashtbl.iter
    (fun root range ->
      match Hashtbl.find_opt carried root with
      | Some lend -> range.hi <- max range.hi lend
      | None -> ())
    ranges;
  (* Iterate to a fixpoint: extending into one loop may move the range
     end inside an enclosing loop processed earlier. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ (lstart, lend) ->
        Hashtbl.iter
          (fun _ range ->
            (* live-through: defined before the loop, still used inside *)
            if range.lo < lstart && range.hi > lstart && range.hi < lend then begin
              range.hi <- lend;
              changed := true
            end)
          ranges)
      loop_extent
  done;
  (* Overlap check per register. *)
  let by_reg = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ range ->
      if range.hi >= range.lo then
        Hashtbl.replace by_reg range.reg
          (range :: Option.value ~default:[] (Hashtbl.find_opt by_reg range.reg)))
    ranges;
  Hashtbl.iter
    (fun reg rs ->
      let sorted = List.sort (fun a b -> compare a.lo b.lo) rs in
      (* Sweep with the running maximum end so a long range is checked
         against every later range it spans, not just its neighbour.
         Touching at one position is legal: an instruction may read a
         register as its last use and redefine it (dest = src). *)
      let rec scan prev cur_hi = function
        | b :: rest ->
          if b.lo < cur_hi then
            fail
              "register %s assigned to overlapping live ranges [%d, %d] \
               (class %d) and [%d, %d] (class %d)"
              reg prev.lo prev.hi prev.repr b.lo b.hi b.repr;
          scan (if b.hi > cur_hi then b else prev) (max cur_hi b.hi) rest
        | [] -> ()
      in
      (match sorted with
      | first :: rest -> scan first first.hi rest
      | [] -> ()))
    by_reg

let check_result fn =
  match check_func fn with
  | () -> Ok ()
  | exception Overlap msg -> Error msg
