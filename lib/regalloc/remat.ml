(* Rematerialisation on register pressure: when the spill-free allocator
   runs out of registers, constants and register-materialisation ops that
   are live across long ranges are re-created next to each of their uses,
   shrinking their live ranges to a single instruction, and allocation is
   retried. This is the constant-rematerialisation every classical
   backend performs and keeps the *spill-free* guarantee of the paper's
   allocator intact: memory is never touched.

   Used primarily by the baseline flows, whose naive address arithmetic
   hoists many constants; the paper's own pipeline rarely triggers it. *)

open Mlc_ir
open Mlc_riscv

(* Ops cheap enough to duplicate freely. Their operands (if any) are
   reused, not cloned: they dominate the original definition and hence
   every use. *)
let remat_ops =
  [
    "rv.li"; "rv.li_bits"; "rv.get_register"; "rv.fcvt.d.w"; "rv.fcvt.s.w";
    "rv.fmv.d.x"; "rv.fmv.w.x";
    (* Address arithmetic: under pressure it is cheaper to recompute an
       address chain at each use than to keep it live (this selectively
       reverses LICM/CSE, as pressure-aware backends do). *)
    "rv.slli"; "rv.addi"; "rv.add"; "rv.sub"; "rv.mul";
  ]

let kind_of_result op =
  match Ir.Value.ty (Ir.Op.result op 0) with
  | Ty.Float_reg _ -> Some Reg.Float_kind
  | Ty.Int_reg _ -> Some Reg.Int_kind
  | _ -> None

let inside_frep (user : Ir.op) =
  Ir.ancestor_op user (fun p -> Ir.Op.name p = Rv_snitch.frep_outer_op) <> None

(* A candidate must actually shrink a live range: more than one use, or a
   single use in a different block. Uses inside FREP bodies block
   non-FPU rematerialisation (the sequencer cannot execute an li). *)
let is_candidate kind op =
  List.mem (Ir.Op.name op) remat_ops
  && Ir.Op.num_results op = 1
  && kind_of_result op = Some kind
  && (let res = Ir.Op.result op 0 in
      let uses = Ir.Value.uses res in
      let spread =
        match uses with
        | [] -> false
        | [ { Ir.user; _ } ] -> (
          match (Ir.Op.parent user, Ir.Op.parent op) with
          | Some a, Some b -> not (Ir.Block.equal a b)
          | _ -> false)
        | _ -> true
      in
      spread
      && (Rv.is_fpu_op (Ir.Op.name op)
         || List.for_all (fun (u : Ir.use) -> not (inside_frep u.user)) uses))

let rematerialize op =
  let res = Ir.Op.result op 0 in
  let uses = Ir.Value.uses res in
  List.iter
    (fun (u : Ir.use) ->
      let clone =
        Ir.Op.create
          ~attrs:(Ir.Op.attrs op)
          ~results:[ Ir.Value.ty res ]
          (Ir.Op.name op) (Ir.Op.operands op)
      in
      Ir.Op.insert_before ~anchor:u.Ir.user clone;
      Ir.Op.set_operand u.Ir.user u.Ir.index (Ir.Op.result clone 0))
    uses;
  Ir.Op.erase op

(* Snapshot / restore of register assignments so a failed attempt leaves
   no partial allocation behind. *)
let snapshot fn =
  let acc = ref [] in
  let note v = acc := (v, Ir.Value.ty v) :: !acc in
  List.iter note (Ir.Block.args (Rv_func.entry fn));
  Ir.walk fn (fun op ->
      List.iter note (Ir.Op.results op);
      List.iter
        (fun (r : Ir.region) ->
          List.iter
            (fun (b : Ir.block) -> List.iter note (Ir.Block.args b))
            (Ir.Region.blocks r))
        (Ir.Op.regions op));
  !acc

let restore snap = List.iter (fun (v, ty) -> Ir.Value.set_ty v ty) snap

exception Still_out_of_registers of Reg.kind

let allocate_with_remat ?(max_rounds = 64) fn =
  let rec attempt round =
    let snap = snapshot fn in
    match Allocator.allocate_func fn with
    | report -> report
    | exception Allocator.Out_of_registers kind ->
      restore snap;
      if round >= max_rounds then raise (Still_out_of_registers kind);
      (* Prefer rematerialising values whose uses sit in the shallowest
         loop nesting: recomputation there is cheapest, and hot inner
         loops keep their hoisted invariants. *)
      let loop_depth op =
        let rec go o acc =
          match Ir.ancestor_op o (fun p -> Ir.Op.regions p <> []) with
          | Some p -> go p (acc + 1)
          | None -> acc
        in
        go op 0
      in
      let cost op =
        List.fold_left
          (fun acc (u : Ir.use) -> max acc (loop_depth u.Ir.user))
          0
          (Ir.Value.uses (Ir.Op.result op 0))
      in
      let candidate =
        let best = ref None in
        Ir.walk fn (fun op ->
            if is_candidate kind op then
              let c = cost op in
              match !best with
              | Some (_, bc) when bc <= c -> ()
              | _ -> best := Some (op, c));
        Option.map fst !best
      in
      (match candidate with
      | Some op -> rematerialize op
      | None -> raise (Still_out_of_registers kind));
      attempt (round + 1)
  in
  attempt 0
