(** A classical linear-scan register allocator {e with spilling}
    (Poletto & Sarkar), the comparator the paper's structured spill-free
    allocator is argued against (§3.3: spilling "has a negative
    performance impact, making it undesired for micro-kernel
    compilation"). Intended for the non-streaming baseline flows and for
    the spilling-cost ablation bench; see the .ml header for the
    documented restrictions. *)


exception Cannot_spill of string

type result = {
  report : Allocator.report;
  spill_slots : int;  (** stack slots allocated *)
  spilled_classes : int;  (** live ranges sent to memory *)
}

(** Allocate in place. [int_pool]/[float_pool] override the register
    pools (shrink them to force spilling in tests and ablations);
    reserved scratch registers are excluded automatically. Raises
    {!Cannot_spill} when pressure can only be relieved by spilling a
    loop-carried value, an induction variable or a loop bound. *)
val allocate_func :
  ?int_pool:string list ->
  ?float_pool:string list ->
  Mlc_ir.Ir.op ->
  result
