(* The arith dialect: scalar arithmetic on builtin types (paper Figure 2).
   Smart constructors append at the builder's insertion point and return
   the result value. *)

open Mlc_ir

let verify_binary op =
  Op_registry.expect_num_operands op 2;
  Op_registry.expect_num_results op 1;
  let t0 = Ir.Value.ty (Ir.Op.operand op 0) in
  Op_registry.expect_operand_ty op 1 t0;
  Op_registry.expect_result_ty op 0 t0

let verify_float_binary op =
  verify_binary op;
  if not (Ty.is_float (Ir.Value.ty (Ir.Op.operand op 0))) then
    Op_registry.fail_op op "expected floating-point operands"

let verify_int_binary op =
  verify_binary op;
  let t = Ir.Value.ty (Ir.Op.operand op 0) in
  if not (Ty.is_int t || Ty.equal t Ty.Index) then
    Op_registry.fail_op op "expected integer or index operands"

let constant_op =
  Op_registry.register "arith.constant" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 1;
      Op_registry.expect_attr op "value";
      match (Ir.Op.attr_exn op "value", Ir.Value.ty (Ir.Op.result op 0)) with
      | Attr.Float _, t when Ty.is_float t -> ()
      | Attr.Int _, t when Ty.is_int t || Ty.equal t Ty.Index -> ()
      | a, t ->
        Op_registry.fail_op op "constant value %s incompatible with type %s"
          (Attr.to_string a) (Ty.to_string t))

let addf_op = Op_registry.register "arith.addf" ~pure:true ~verify:verify_float_binary
let subf_op = Op_registry.register "arith.subf" ~pure:true ~verify:verify_float_binary
let mulf_op = Op_registry.register "arith.mulf" ~pure:true ~verify:verify_float_binary
let divf_op = Op_registry.register "arith.divf" ~pure:true ~verify:verify_float_binary
let maxf_op = Op_registry.register "arith.maximumf" ~pure:true ~verify:verify_float_binary
let minf_op = Op_registry.register "arith.minimumf" ~pure:true ~verify:verify_float_binary
let addi_op = Op_registry.register "arith.addi" ~pure:true ~verify:verify_int_binary
let subi_op = Op_registry.register "arith.subi" ~pure:true ~verify:verify_int_binary
let muli_op = Op_registry.register "arith.muli" ~pure:true ~verify:verify_int_binary

(* Fused multiply-add: a*b + c, matching the FPU's fmadd (2 FLOPs). *)
let fmaf_op =
  Op_registry.register "arith.fmaf" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 3;
      Op_registry.expect_num_results op 1;
      let t0 = Ir.Value.ty (Ir.Op.operand op 0) in
      if not (Ty.is_float t0) then
        Op_registry.fail_op op "expected floating-point operands";
      Op_registry.expect_operand_ty op 1 t0;
      Op_registry.expect_operand_ty op 2 t0;
      Op_registry.expect_result_ty op 0 t0)

let constant b attr ty =
  Builder.create1 b ~attrs:[ ("value", attr) ] ~result:ty constant_op []

let const_float b ?(ty = Ty.F64) f = constant b (Attr.Float f) ty
let const_int b ?(ty = Ty.i32) i = constant b (Attr.Int i) ty
let const_index b i = constant b (Attr.Int i) Ty.Index

let binary b name lhs rhs =
  Builder.create1 b ~result:(Ir.Value.ty lhs) name [ lhs; rhs ]

let addf b lhs rhs = binary b addf_op lhs rhs
let subf b lhs rhs = binary b subf_op lhs rhs
let mulf b lhs rhs = binary b mulf_op lhs rhs
let divf b lhs rhs = binary b divf_op lhs rhs
let maxf b lhs rhs = binary b maxf_op lhs rhs
let minf b lhs rhs = binary b minf_op lhs rhs
let addi b lhs rhs = binary b addi_op lhs rhs
let subi b lhs rhs = binary b subi_op lhs rhs
let muli b lhs rhs = binary b muli_op lhs rhs

let fmaf b x y acc = Builder.create1 b ~result:(Ir.Value.ty x) fmaf_op [ x; y; acc ]

(* Constant-value view of a value, if its defining op is arith.constant. *)
let as_constant v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = constant_op -> Some (Ir.Op.attr_exn op "value")
  | _ -> None
