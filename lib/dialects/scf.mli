(** The scf dialect: structured control flow. [scf.for] carries
    loop-carried values as iteration arguments, the property the
    register allocator later exploits (paper §3.3). *)

open Mlc_ir

val for_op : string
val yield_op : string

(** [scf.forall]: N parallel instances of one body distinguished by the
    index-typed thread-id block argument; no results, no loop-carried
    values. The cluster lowering maps one instance per Snitch core. *)
val forall_op : string

(** [for_ b ~lb ~ub ~step ~iter_args f] builds a for loop; [f] receives
    the body builder, the induction variable (index-typed) and the
    iteration arguments and returns the yielded values. Bounds are
    index-typed SSA values. Returns the loop op (whose results are the
    final iteration values). *)
val for_ :
  Builder.t ->
  lb:Ir.value ->
  ub:Ir.value ->
  step:Ir.value ->
  ?iter_args:Ir.value list ->
  (Builder.t -> Ir.value -> Ir.value list -> Ir.value list) ->
  Ir.op

val lb : Ir.op -> Ir.value
val ub : Ir.op -> Ir.value
val step : Ir.op -> Ir.value
val iter_operands : Ir.op -> Ir.value list
val body : Ir.op -> Ir.block
val induction_var : Ir.op -> Ir.value
val iter_args : Ir.op -> Ir.value list

(** The body's terminating scf.yield. *)
val yield_of : Ir.op -> Ir.op

(** [forall b ~num_threads f] builds an scf.forall; [f] receives the
    body builder and the thread-id value. *)
val forall : Builder.t -> num_threads:int -> (Builder.t -> Ir.value -> unit) -> Ir.op

val forall_body : Ir.op -> Ir.block
val thread_id : Ir.op -> Ir.value
val num_threads : Ir.op -> int
