(* The memref dialect: loads and stores against statically-shaped,
   row-major buffers (paper Figure 2). *)

open Mlc_ir

let check_indices op memref_idx n_indices =
  let mty = Ir.Value.ty (Ir.Op.operand op memref_idx) in
  match mty with
  | Ty.Memref { shape; _ } ->
    if List.length shape <> n_indices then
      Op_registry.fail_op op "expected %d indices for %s, got %d"
        (List.length shape) (Ty.to_string mty) n_indices
  | _ -> Op_registry.fail_op op "expected a memref operand"

let load_op =
  Op_registry.register "memref.load" ~verify:(fun op ->
      Op_registry.expect_num_results op 1;
      if Ir.Op.num_operands op < 1 then
        Op_registry.fail_op op "expected memref operand";
      check_indices op 0 (Ir.Op.num_operands op - 1);
      let elem = Ty.memref_elem (Ir.Value.ty (Ir.Op.operand op 0)) in
      Op_registry.expect_result_ty op 0 elem)

let store_op =
  Op_registry.register "memref.store" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      if Ir.Op.num_operands op < 2 then
        Op_registry.fail_op op "expected value and memref operands";
      check_indices op 1 (Ir.Op.num_operands op - 2);
      let elem = Ty.memref_elem (Ir.Value.ty (Ir.Op.operand op 1)) in
      Op_registry.expect_operand_ty op 0 elem)

let alloc_op =
  Op_registry.register "memref.alloc" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 1;
      match Ir.Value.ty (Ir.Op.result op 0) with
      | Ty.Memref _ -> ()
      | _ -> Op_registry.fail_op op "result must be a memref")

let dim_op =
  Op_registry.register "memref.dim" ~pure:true ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 1;
      Op_registry.expect_result_ty op 0 Ty.Index)

let load b memref indices =
  let elem = Ty.memref_elem (Ir.Value.ty memref) in
  Builder.create1 b ~result:elem load_op (memref :: indices)

let store b value memref indices =
  Builder.create0 b store_op ((value :: memref :: indices))

let alloc b shape elem =
  Builder.create1 b ~result:(Ty.memref shape elem) alloc_op []

let dim b memref i =
  Builder.create1 b ~result:Ty.Index dim_op [ memref; i ]
