(** The memref dialect: loads and stores against statically-shaped,
    row-major buffers (paper Figure 2). *)

open Mlc_ir

val load_op : string
val store_op : string
val alloc_op : string
val dim_op : string

(** [load b memref indices] — one index per memref dimension. *)
val load : Builder.t -> Ir.value -> Ir.value list -> Ir.value

val store : Builder.t -> Ir.value -> Ir.value -> Ir.value list -> unit
val alloc : Builder.t -> int list -> Ty.t -> Ir.value
val dim : Builder.t -> Ir.value -> Ir.value -> Ir.value
