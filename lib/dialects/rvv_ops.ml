(* The rvv dialect: vector-length-agnostic operations produced by
   [Rvv_vectorize] and consumed by [Convert_to_rv]'s RVV lowering.

   Vector values never enter the SSA graph: each op names its vector
   registers directly through integer attributes (vd/vs1/vs2), so the
   scalar register allocator and the existing loop machinery see only
   the scalar operands (addresses, the AVL, scalar float sources).
   [rvv.setvl] strip-mines an enclosing loop: it requests AVL lanes and
   the hardware clamps to VLMAX; all later vector ops in program order
   operate on the active vl. *)

open Mlc_ir

let expect_vreg op key =
  Op_registry.expect_attr op key;
  let v = Attr.get_int (Ir.Op.attr_exn op key) in
  if v < 0 || v > 31 then
    Op_registry.fail_op op "%s: vector register v%d out of range" key v

let expect_sew op =
  Op_registry.expect_attr op "sew";
  match Attr.get_int (Ir.Op.attr_exn op "sew") with
  | 32 | 64 -> ()
  | s -> Op_registry.fail_op op "unsupported element width e%d" s

(* vl = min(avl, VLMAX) for the given element width. *)
let setvl_op =
  Op_registry.register "rvv.setvl" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      expect_sew op)

let check_mem op base_idx =
  let n = Ir.Op.num_operands op - base_idx - 1 in
  match Ir.Value.ty (Ir.Op.operand op base_idx) with
  | Ty.Memref { shape; _ } ->
    if List.length shape <> n then
      Op_registry.fail_op op "expected %d indices, got %d"
        (List.length shape) n
  | _ -> Op_registry.fail_op op "expected a memref operand"

(* Unit-stride load of the active vl lanes starting at the element the
   indices select. *)
let load_op =
  Op_registry.register "rvv.load" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      if Ir.Op.num_operands op < 1 then
        Op_registry.fail_op op "expected memref operand";
      check_mem op 0;
      expect_vreg op "vd")

let store_op =
  Op_registry.register "rvv.store" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      if Ir.Op.num_operands op < 1 then
        Op_registry.fail_op op "expected memref operand";
      check_mem op 0;
      expect_vreg op "vs")

(* Broadcast a scalar float into the active lanes of vd. *)
let splat_op =
  Op_registry.register "rvv.splat" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      if not (Ty.is_float (Ir.Value.ty (Ir.Op.operand op 0))) then
        Op_registry.fail_op op "expected a floating-point operand";
      expect_vreg op "vd")

let copy_op =
  Op_registry.register "rvv.copy" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_vreg op "vd";
      expect_vreg op "vs")

let vv_ops = [ "vfadd"; "vfsub"; "vfmul"; "vfdiv"; "vfmax"; "vfmin" ]
let vf_ops = vv_ops @ [ "vfrsub"; "vfrdiv" ]

let expect_op_attr op allowed =
  Op_registry.expect_attr op "op";
  let s = Attr.get_str (Ir.Op.attr_exn op "op") in
  if not (List.mem s allowed) then
    Op_registry.fail_op op "unknown vector op %S" s

(* vd[i] = vs1[i] <op> vs2[i] over the active lanes. *)
let binary_vv_op =
  Op_registry.register "rvv.binary_vv" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_op_attr op vv_ops;
      expect_vreg op "vd";
      expect_vreg op "vs1";
      expect_vreg op "vs2")

(* vd[i] = vs2[i] <op> scalar (vfrsub/vfrdiv reverse the operands). *)
let binary_vf_op =
  Op_registry.register "rvv.binary_vf" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      if not (Ty.is_float (Ir.Value.ty (Ir.Op.operand op 0))) then
        Op_registry.fail_op op "expected a floating-point operand";
      expect_op_attr op vf_ops;
      expect_vreg op "vd";
      expect_vreg op "vs2")

(* vd[i] += scalar * vs2[i], single rounding (vfmacc.vf). *)
let macc_vf_op =
  Op_registry.register "rvv.macc_vf" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 0;
      if not (Ty.is_float (Ir.Value.ty (Ir.Op.operand op 0))) then
        Op_registry.fail_op op "expected a floating-point operand";
      expect_vreg op "vd";
      expect_vreg op "vs2")

(* vd[i] += vs1[i] * vs2[i], single rounding (vfmacc.vv). *)
let macc_vv_op =
  Op_registry.register "rvv.macc_vv" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      expect_vreg op "vd";
      expect_vreg op "vs1";
      expect_vreg op "vs2")

(* --- smart constructors --- *)

let vreg key v = (key, Attr.Int v)

let setvl b ~sew avl =
  Builder.create0 b ~attrs:[ ("sew", Attr.Int sew) ] setvl_op [ avl ]

let load b ~vd memref indices =
  Builder.create0 b ~attrs:[ vreg "vd" vd ] load_op (memref :: indices)

let store b ~vs memref indices =
  Builder.create0 b ~attrs:[ vreg "vs" vs ] store_op (memref :: indices)

let splat b ~vd scalar =
  Builder.create0 b ~attrs:[ vreg "vd" vd ] splat_op [ scalar ]

let copy b ~vd ~vs =
  Builder.create0 b ~attrs:[ vreg "vd" vd; vreg "vs" vs ] copy_op []

let binary_vv b ~op ~vd ~vs1 ~vs2 =
  Builder.create0 b
    ~attrs:[ ("op", Attr.Str op); vreg "vd" vd; vreg "vs1" vs1; vreg "vs2" vs2 ]
    binary_vv_op []

let binary_vf b ~op ~vd ~vs2 scalar =
  Builder.create0 b
    ~attrs:[ ("op", Attr.Str op); vreg "vd" vd; vreg "vs2" vs2 ]
    binary_vf_op [ scalar ]

let macc_vf b ~vd ~vs2 scalar =
  Builder.create0 b ~attrs:[ vreg "vd" vd; vreg "vs2" vs2 ] macc_vf_op [ scalar ]

let macc_vv b ~vd ~vs1 ~vs2 =
  Builder.create0 b
    ~attrs:[ vreg "vd" vd; vreg "vs1" vs1; vreg "vs2" vs2 ]
    macc_vv_op []

let vd_of op = Attr.get_int (Ir.Op.attr_exn op "vd")
let vs_of op = Attr.get_int (Ir.Op.attr_exn op "vs")
let vs1_of op = Attr.get_int (Ir.Op.attr_exn op "vs1")
let vs2_of op = Attr.get_int (Ir.Op.attr_exn op "vs2")
let sew_of op = Attr.get_int (Ir.Op.attr_exn op "sew")
let op_of op = Attr.get_str (Ir.Op.attr_exn op "op")
