(* The builtin dialect: the top-level module operation. *)

open Mlc_ir

let module_op =
  Op_registry.register "builtin.module"
    ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1)

let create_module () = Ir.Module_.create ()
let module_body = Ir.Module_.body
