(** The linalg dialect: high-level structured linear algebra (paper
    §2.2). [linalg.generic] carries i) explicit iterator types, ii)
    affine maps from iteration space to operand elements, iii) an
    iteration space inferred from operand shapes and iv) a scalar
    computation body — the properties that are "hard, or impossible, to
    reconstruct from low-level encodings" and that the multi-level
    backend preserves all the way down. *)

open Mlc_ir

val generic_op : string
val yield_op : string
val fill_op : string

(** [generic b ~ins ~outs ~maps ~iterators f]: one indexing map per
    operand (ins then outs), one iterator kind per iteration dimension.
    [f] receives the body builder, the input element arguments and the
    output current-value arguments (used by reductions) and returns the
    yielded values. Inputs may be memrefs or scalars; outputs must be
    memrefs. *)
val generic :
  Builder.t ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  maps:Affine.map list ->
  iterators:Attr.iterator list ->
  (Builder.t -> Ir.value list -> Ir.value list -> Ir.value list) ->
  Ir.op

(** [fill b value memref] sets every element of the buffer. *)
val fill : Builder.t -> Ir.value -> Ir.value -> unit

val num_ins : Ir.op -> int
val indexing_maps : Ir.op -> Affine.map list
val iterator_types : Ir.op -> Attr.iterator list
val ins : Ir.op -> Ir.value list
val outs : Ir.op -> Ir.value list
val body : Ir.op -> Ir.block

(** The element type a body argument sees for an operand value. *)
val body_elem_ty : Ir.value -> Ty.t

(** Infer the iteration-space bounds from operand shapes: each dimension
    must appear bare in some operand's map (paper §2.2: the iteration
    space is "completely defined by input/output operands"). Raises
    [Failure] when a bound is not inferable. *)
val infer_bounds : Ir.op -> int list
