(* The cluster dialect: the ops that tie an scf.forall thread instance
   to its share of the cluster-visible operands.

   [cluster.slice] is a pure view computation: it carves the leading
   dimension of a memref into [parts] equal contiguous row blocks and
   yields thread [tid]'s block as a shrunk memref. The cluster lowering
   turns it into base-address arithmetic (plus the DMA staging that
   moves the block into per-core scratch memory); no data moves at this
   level. *)

open Mlc_ir

let slice_op =
  Op_registry.register "cluster.slice" ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 1;
      Op_registry.expect_attr op "parts";
      let parts = Attr.get_int (Ir.Op.attr_exn op "parts") in
      if parts < 1 then Op_registry.fail_op op "parts must be positive";
      if not (Ty.equal (Ir.Value.ty (Ir.Op.operand op 1)) Ty.Index) then
        Op_registry.fail_op op "thread id must have index type";
      match Ir.Value.ty (Ir.Op.operand op 0) with
      | Ty.Memref { shape = rows :: rest; elem } ->
        if rows mod parts <> 0 then
          Op_registry.fail_op op
            "leading dimension %d does not divide into %d parts" rows parts;
        Op_registry.expect_result_ty op 0 (Ty.memref ((rows / parts) :: rest) elem)
      | t ->
        Op_registry.fail_op op "operand must be a ranked memref, got %s"
          (Ty.to_string t))

(* [slice b ~parts ~tid src]: thread [tid]'s contiguous block of [src]'s
   leading dimension, split [parts] ways. *)
let slice b ~parts ~tid src =
  match Ir.Value.ty src with
  | Ty.Memref { shape = rows :: rest; elem } ->
    Builder.create1 b
      ~attrs:[ ("parts", Attr.Int parts) ]
      ~result:(Ty.memref ((rows / parts) :: rest) elem)
      slice_op [ src; tid ]
  | t -> invalid_arg ("Cluster.slice: not a ranked memref: " ^ Ty.to_string t)

let parts op = Attr.get_int (Ir.Op.attr_exn op "parts")
let src op = Ir.Op.operand op 0
