(** The builtin dialect: the top-level module operation. *)

open Mlc_ir

val module_op : string
val create_module : unit -> Ir.op
val module_body : Ir.op -> Ir.block
