(** The arith dialect: scalar arithmetic on builtin types (paper Figure
    2). Smart constructors append at the builder's insertion point and
    return the result value; [*_op] values are the registered op names. *)

open Mlc_ir

val constant_op : string
val addf_op : string
val subf_op : string
val mulf_op : string
val divf_op : string
val maxf_op : string
val minf_op : string
val addi_op : string
val subi_op : string
val muli_op : string

(** Fused multiply-add [a*b + c], matching the FPU's fmadd (2 FLOPs). *)
val fmaf_op : string

(** [constant b attr ty] materialises a compile-time constant. The
    verifier checks the attribute kind against the result type. *)
val constant : Builder.t -> Attr.t -> Ty.t -> Ir.value

val const_float : Builder.t -> ?ty:Ty.t -> float -> Ir.value
val const_int : Builder.t -> ?ty:Ty.t -> int -> Ir.value
val const_index : Builder.t -> int -> Ir.value

val addf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val mulf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val divf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val maxf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val minf : Builder.t -> Ir.value -> Ir.value -> Ir.value
val addi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val subi : Builder.t -> Ir.value -> Ir.value -> Ir.value
val muli : Builder.t -> Ir.value -> Ir.value -> Ir.value

(** [fmaf b x y acc] is [x*y + acc]. *)
val fmaf : Builder.t -> Ir.value -> Ir.value -> Ir.value -> Ir.value

(** The constant attribute if [v] is defined by arith.constant. *)
val as_constant : Ir.value -> Attr.t option
