(* The linalg dialect: high-level structured linear algebra (paper §2.2).

   [linalg.generic] carries i) explicit iterator types, ii) affine maps
   from iteration space to operand elements, iii) an iteration space
   inferred from operand shapes and iv) a scalar computation body. It is
   the entry abstraction of the micro-kernel compiler. *)

open Mlc_ir

let num_ins op = Attr.get_int (Ir.Op.attr_exn op "ins")

let indexing_maps op =
  List.map
    (function
      | Attr.Affine_map m -> m
      | a -> invalid_arg ("linalg: bad indexing map " ^ Attr.to_string a))
    (Attr.get_arr (Ir.Op.attr_exn op "indexing_maps"))

let iterator_types op = Attr.get_iterators (Ir.Op.attr_exn op "iterator_types")

let ins op =
  List.filteri (fun i _ -> i < num_ins op) (Ir.Op.operands op)

let outs op =
  List.filteri (fun i _ -> i >= num_ins op) (Ir.Op.operands op)

let generic_op =
  Op_registry.register "linalg.generic" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "indexing_maps";
      Op_registry.expect_attr op "iterator_types";
      Op_registry.expect_attr op "ins";
      let maps = indexing_maps op in
      let iters = iterator_types op in
      let n_operands = Ir.Op.num_operands op in
      if List.length maps <> n_operands then
        Op_registry.fail_op op "one indexing map required per operand";
      List.iter
        (fun (m : Affine.map) ->
          if m.Affine.num_dims <> List.length iters then
            Op_registry.fail_op op
              "indexing map arity does not match iterator count")
        maps;
      List.iter
        (fun it ->
          if it = Attr.Interleaved then
            Op_registry.fail_op op
              "interleaved iterators only exist at the memref_stream level")
        iters;
      (* outputs must be memrefs; inputs may be memrefs or scalars *)
      List.iter
        (fun v ->
          match Ir.Value.ty v with
          | Ty.Memref _ -> ()
          | t -> Op_registry.fail_op op "output must be a memref, got %s" (Ty.to_string t))
        (outs op);
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n_operands then
        Op_registry.fail_op op "body must have one argument per operand";
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = "linalg.yield" ->
        if Ir.Op.num_operands t <> List.length (outs op) then
          Op_registry.fail_op op "yield arity must match output count"
      | _ -> Op_registry.fail_op op "body must terminate with linalg.yield")

let yield_op =
  Op_registry.register "linalg.yield" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_results op 0)

let fill_op =
  Op_registry.register "linalg.fill" ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 0;
      let elem = Ty.memref_elem (Ir.Value.ty (Ir.Op.operand op 1)) in
      Op_registry.expect_operand_ty op 0 elem)

(* Element type seen by the body for an operand value. *)
let body_elem_ty v =
  match Ir.Value.ty v with Ty.Memref { elem; _ } -> elem | t -> t

(* [generic b ~ins ~outs ~maps ~iterators f]: [f] receives a builder in
   the body plus the scalar block arguments (one per in, then one per
   out, the latter holding the current output element for reductions)
   and returns the yielded values. *)
let generic b ~ins:in_vals ~outs:out_vals ~maps ~iterators f =
  let arg_tys = List.map body_elem_ty (in_vals @ out_vals) in
  let region = Ir.Region.single_block ~args:arg_tys () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b
      ~attrs:
        [
          ("indexing_maps", Attr.Arr (List.map (fun m -> Attr.Affine_map m) maps));
          ("iterator_types", Attr.Iterators iterators);
          ("ins", Attr.Int (List.length in_vals));
        ]
      ~regions:[ region ] ~results:[] generic_op (in_vals @ out_vals)
  in
  let bb = Builder.at_end body in
  let args = Ir.Block.args body in
  let n_in = List.length in_vals in
  let in_args = List.filteri (fun i _ -> i < n_in) args in
  let out_args = List.filteri (fun i _ -> i >= n_in) args in
  let yielded = f bb in_args out_args in
  Builder.create0 bb yield_op yielded;
  op

let fill b value memref = Builder.create0 b fill_op [ value; memref ]

let body op = Ir.Region.only_block (Ir.Op.region op 0)

(* Infer the iteration-space bounds from operand shapes: for each
   iteration dimension, find an operand map result that is exactly that
   dimension and read the bound off the operand's shape (paper §2.2:
   "an iteration space completely defined by input/output operands"). *)
let infer_bounds op =
  let maps = indexing_maps op in
  let operands = Ir.Op.operands op in
  let n_dims = List.length (iterator_types op) in
  let bounds = Array.make n_dims (-1) in
  List.iter2
    (fun (m : Affine.map) v ->
      match Ir.Value.ty v with
      | Ty.Memref { shape; _ } ->
        List.iteri
          (fun result_idx e ->
            match e with
            | Affine.Dim d when bounds.(d) < 0 ->
              bounds.(d) <- List.nth shape result_idx
            | _ -> ())
          m.Affine.exprs
      | _ -> ())
    maps operands;
  Array.iteri
    (fun d bnd ->
      if bnd < 0 then
        Op_registry.fail_op op "cannot infer bound for iteration dimension %d" d)
    bounds;
  Array.to_list bounds
