(** The func dialect: functions passing arguments by reference as memref
    parameters — the entry point of every micro-kernel (paper Figure 2). *)

open Mlc_ir

val func_op : string
val return_op : string
val call_op : string

(** [func b ~name ~args ~results] creates a function with an entry block
    of the given argument types; returns (op, entry block). *)
val func :
  Builder.t ->
  name:string ->
  args:Ty.t list ->
  results:Ty.t list ->
  Ir.op * Ir.block

val return_ : Builder.t -> Ir.value list -> unit
val call : Builder.t -> callee:string -> results:Ty.t list -> Ir.value list -> Ir.op

val name : Ir.op -> string

(** (argument types, result types) from the function_type attribute. *)
val func_type : Ir.op -> Ty.t list * Ty.t list

(** The single entry block. *)
val body : Ir.op -> Ir.block

(** Find a function by symbol name within a module. *)
val lookup : Ir.op -> string -> Ir.op option
