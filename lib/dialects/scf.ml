(* The scf dialect: structured control flow. Only [scf.for] (with
   loop-carried iteration arguments) and [scf.yield] are needed by the
   lowering pipeline (paper Figure 2, §3.4). *)

open Mlc_ir

let for_op =
  Op_registry.register "scf.for" ~verify:(fun op ->
      Op_registry.expect_num_regions op 1;
      if Ir.Op.num_operands op < 3 then
        Op_registry.fail_op op "expected at least lb, ub, step operands";
      let n_iter = Ir.Op.num_operands op - 3 in
      Op_registry.expect_num_results op n_iter;
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n_iter + 1 then
        Op_registry.fail_op op
          "body must have induction variable plus one arg per iter_arg";
      if not (Ty.equal (Ir.Value.ty (Ir.Block.arg body 0)) Ty.Index) then
        Op_registry.fail_op op "induction variable must have index type";
      for i = 0 to n_iter - 1 do
        let iter_ty = Ir.Value.ty (Ir.Op.operand op (3 + i)) in
        Op_registry.expect_result_ty op i iter_ty;
        if not (Ty.equal (Ir.Value.ty (Ir.Block.arg body (i + 1))) iter_ty) then
          Op_registry.fail_op op "iter_arg %d type mismatch" i
      done;
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = "scf.yield" ->
        if Ir.Op.num_operands t <> n_iter then
          Op_registry.fail_op op "yield arity does not match iter_args"
      | _ -> Op_registry.fail_op op "body must terminate with scf.yield")

let yield_op =
  Op_registry.register "scf.yield" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_results op 0)

(* [scf.forall]: N parallel thread instances of one body, distinguished
   only by the index-typed thread-id block argument. The cluster
   lowering maps one instance per Snitch core; there are no results and
   no loop-carried values — cross-instance communication happens through
   the sliced memref operands (see the cluster dialect). *)
let forall_op =
  Op_registry.register "scf.forall" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "num_threads";
      let n = Attr.get_int (Ir.Op.attr_exn op "num_threads") in
      if n < 1 then Op_registry.fail_op op "num_threads must be positive";
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if
        Ir.Block.num_args body <> 1
        || not (Ty.equal (Ir.Value.ty (Ir.Block.arg body 0)) Ty.Index)
      then
        Op_registry.fail_op op
          "body must have a single index-typed thread-id argument";
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = "scf.yield" ->
        if Ir.Op.num_operands t <> 0 then
          Op_registry.fail_op op "forall yield carries no values"
      | _ -> Op_registry.fail_op op "body must terminate with scf.yield")

(* [for_ b ~lb ~ub ~step ~iter_args f] creates an scf.for. [f] is called
   with a builder positioned in the body, the induction variable and the
   iteration arguments; it must return the yielded values. *)
let for_ b ~lb ~ub ~step ?(iter_args = []) f =
  let region =
    Ir.Region.single_block
      ~args:(Ty.Index :: List.map Ir.Value.ty iter_args)
      ()
  in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b ~regions:[ region ]
      ~results:(List.map Ir.Value.ty iter_args)
      for_op
      ([ lb; ub; step ] @ iter_args)
  in
  let bb = Builder.at_end body in
  let iv = Ir.Block.arg body 0 in
  let iters = List.tl (Ir.Block.args body) in
  let yielded = f bb iv iters in
  Builder.create0 bb yield_op yielded;
  op

let lb op = Ir.Op.operand op 0
let ub op = Ir.Op.operand op 1
let step op = Ir.Op.operand op 2
let iter_operands op = List.filteri (fun i _ -> i >= 3) (Ir.Op.operands op)
let body op = Ir.Region.only_block (Ir.Op.region op 0)
let induction_var op = Ir.Block.arg (body op) 0
let iter_args op = List.tl (Ir.Block.args (body op))

let yield_of op =
  match Ir.Block.terminator (body op) with
  | Some t when Ir.Op.name t = yield_op -> t
  | _ -> invalid_arg "Scf.yield_of: malformed scf.for"

(* [forall b ~num_threads f] creates an scf.forall; [f] is called with a
   builder positioned in the body and the thread-id value. *)
let forall b ~num_threads f =
  let region = Ir.Region.single_block ~args:[ Ty.Index ] () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b
      ~attrs:[ ("num_threads", Attr.Int num_threads) ]
      ~regions:[ region ] ~results:[] forall_op []
  in
  let bb = Builder.at_end body in
  f bb (Ir.Block.arg body 0);
  Builder.create0 bb yield_op [];
  op

let forall_body op = Ir.Region.only_block (Ir.Op.region op 0)
let thread_id op = Ir.Block.arg (forall_body op) 0
let num_threads op = Attr.get_int (Ir.Op.attr_exn op "num_threads")
