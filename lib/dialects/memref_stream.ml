(* The memref_stream dialect: the bridge between linalg abstractions and
   the Snitch streaming hardware (paper §3.4, Figure 7).

   [memref_stream.generic] mirrors [linalg.generic] but
   - carries explicit iteration [bounds] (decoupled from operand shapes,
     so it can consume shape-less stream values),
   - supports an [interleaved] iterator type: the trailing iteration
     dimension may be unrolled-and-jammed into the body, which then takes
     one argument copy per unrolled iteration,
   - supports [inits] operands: scalar initial values for outputs whose
     zero-fill has been fused into the computation.

   [memref_stream.streaming_region] encapsulates the stream configuration
   (one stride pattern per streamed operand) and a region in which the
   streams are accessed as SSA values through [read]/[write]. *)

open Mlc_ir

let num_ins op = Attr.get_int (Ir.Op.attr_exn op "ins")
let num_inits op = Attr.get_int (Ir.Op.attr_exn op "inits")
let num_outs op = Ir.Op.num_operands op - num_ins op - num_inits op

let bounds op = Attr.get_int_arr (Ir.Op.attr_exn op "bounds")

let indexing_maps op =
  List.map
    (function
      | Attr.Affine_map m -> m
      | a -> invalid_arg ("memref_stream: bad indexing map " ^ Attr.to_string a))
    (Attr.get_arr (Ir.Op.attr_exn op "indexing_maps"))

let iterator_types op = Attr.get_iterators (Ir.Op.attr_exn op "iterator_types")

let ins op = List.filteri (fun i _ -> i < num_ins op) (Ir.Op.operands op)

let outs op =
  let n_in = num_ins op and n_out = num_outs op in
  List.filteri (fun i _ -> i >= n_in && i < n_in + n_out) (Ir.Op.operands op)

let inits op =
  let k = num_ins op + num_outs op in
  List.filteri (fun i _ -> i >= k) (Ir.Op.operands op)

(* The unroll factor: the bound of the trailing interleaved dimension, or
   1 when no dimension is interleaved. *)
let unroll_factor op =
  let iters = iterator_types op in
  match List.rev iters with
  | Attr.Interleaved :: _ -> List.nth (bounds op) (List.length iters - 1)
  | _ -> 1

let elem_ty_of v =
  match Ir.Value.ty v with
  | Ty.Memref { elem; _ } -> elem
  | Ty.Stream_readable e | Ty.Stream_writable e -> e
  | t -> t

let generic_op =
  Op_registry.register "memref_stream.generic" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      List.iter (Op_registry.expect_attr op)
        [ "bounds"; "indexing_maps"; "iterator_types"; "ins"; "inits" ];
      let bnds = bounds op in
      let iters = iterator_types op in
      if List.length bnds <> List.length iters then
        Op_registry.fail_op op "bounds/iterator_types length mismatch";
      List.iteri
        (fun i it ->
          if it = Attr.Interleaved && i <> List.length iters - 1 then
            Op_registry.fail_op op
              "only the trailing dimension may be interleaved")
        iters;
      let n_in = num_ins op and n_out = num_outs op in
      if n_out < 0 then Op_registry.fail_op op "operand segment underflow";
      if num_inits op > n_out then
        Op_registry.fail_op op "more inits than outputs";
      let maps = indexing_maps op in
      if List.length maps <> n_in + n_out then
        Op_registry.fail_op op "one indexing map required per in/out operand";
      List.iter
        (fun (m : Affine.map) ->
          if m.Affine.num_dims <> List.length bnds then
            Op_registry.fail_op op "indexing map arity must match bounds")
        maps;
      let u = unroll_factor op in
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> u * (n_in + n_out) then
        Op_registry.fail_op op
          "body must have %d args (%d operands x unroll %d), has %d"
          (u * (n_in + n_out))
          (n_in + n_out) u (Ir.Block.num_args body);
      match Ir.Block.terminator body with
      | Some t when Ir.Op.name t = "memref_stream.yield" ->
        if Ir.Op.num_operands t <> u * n_out then
          Op_registry.fail_op op "yield must produce %d values" (u * n_out)
      | _ -> Op_registry.fail_op op "body must terminate with memref_stream.yield")

let yield_op =
  Op_registry.register "memref_stream.yield" ~terminator:true
    ~verify:(fun op -> Op_registry.expect_num_results op 0)

(* Number of streams of a streaming_region (its operands are the streamed
   memrefs followed by optional per-stream element offsets). *)
let num_streams op =
  let offsets =
    match Ir.Op.attr op "offsets" with Some (Attr.Int n) -> n | _ -> 0
  in
  Ir.Op.num_operands op - offsets

let num_offsets op = Ir.Op.num_operands op - num_streams op

let streamed_operands op =
  List.filteri (fun i _ -> i < num_streams op) (Ir.Op.operands op)

let offset_operands op =
  List.filteri (fun i _ -> i >= num_streams op) (Ir.Op.operands op)

let streaming_region_op =
  Op_registry.register "memref_stream.streaming_region" ~verify:(fun op ->
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "patterns";
      Op_registry.expect_attr op "ins";
      let n = num_streams op in
      let n_off = num_offsets op in
      if n_off <> 0 && n_off <> n then
        Op_registry.fail_op op "offsets must be absent or one per stream";
      let patterns = Attr.get_arr (Ir.Op.attr_exn op "patterns") in
      if List.length patterns <> n then
        Op_registry.fail_op op "one pattern required per stream";
      let body = Ir.Region.only_block (Ir.Op.region op 0) in
      if Ir.Block.num_args body <> n then
        Op_registry.fail_op op "one stream block-arg per stream";
      let n_in = num_ins op in
      List.iteri
        (fun i arg ->
          match (i < n_in, Ir.Value.ty arg) with
          | true, Ty.Stream_readable _ | false, Ty.Stream_writable _ -> ()
          | _ ->
            Op_registry.fail_op op
              "stream block-arg %d has the wrong directionality" i)
        (Ir.Block.args body))

let read_op =
  Op_registry.register "memref_stream.read" ~verify:(fun op ->
      Op_registry.expect_num_operands op 1;
      Op_registry.expect_num_results op 1;
      match Ir.Value.ty (Ir.Op.operand op 0) with
      | Ty.Stream_readable e -> Op_registry.expect_result_ty op 0 e
      | _ -> Op_registry.fail_op op "operand must be a readable stream")

let write_op =
  Op_registry.register "memref_stream.write" ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 0;
      match Ir.Value.ty (Ir.Op.operand op 1) with
      | Ty.Stream_writable e -> Op_registry.expect_operand_ty op 0 e
      | _ -> Op_registry.fail_op op "second operand must be a writable stream")

let fill_op =
  Op_registry.register "memref_stream.fill" ~verify:(fun op ->
      Op_registry.expect_num_operands op 2;
      Op_registry.expect_num_results op 0)

(* Builder for memref_stream.generic. [f] receives the body builder, the
   input argument copies and output argument copies; it returns the
   yielded values (u values per output, grouped by unroll copy:
   [out0#0, out1#0, ..., out0#1, out1#1, ...]). *)
let generic b ~bounds:bnds ~ins:in_vals ~outs:out_vals ?(inits = [])
    ~maps ~iterators f =
  let u =
    match List.rev iterators with
    | Attr.Interleaved :: _ -> List.nth bnds (List.length bnds - 1)
    | _ -> 1
  in
  let copy n tys = List.concat (List.init n (fun _ -> tys)) in
  let arg_tys =
    copy u (List.map elem_ty_of in_vals) @ copy u (List.map elem_ty_of out_vals)
  in
  let region = Ir.Region.single_block ~args:arg_tys () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b
      ~attrs:
        [
          ("bounds", Attr.int_arr bnds);
          ("indexing_maps", Attr.Arr (List.map (fun m -> Attr.Affine_map m) maps));
          ("iterator_types", Attr.Iterators iterators);
          ("ins", Attr.Int (List.length in_vals));
          ("inits", Attr.Int (List.length inits));
        ]
      ~regions:[ region ] ~results:[] generic_op
      (in_vals @ out_vals @ inits)
  in
  let bb = Builder.at_end body in
  let args = Ir.Block.args body in
  let n_in = u * List.length in_vals in
  let in_args = List.filteri (fun i _ -> i < n_in) args in
  let out_args = List.filteri (fun i _ -> i >= n_in) args in
  let yielded = f bb in_args out_args in
  Builder.create0 bb yield_op yielded;
  op

(* Builder for streaming_region. [f] receives the body builder and the
   stream block arguments. [offsets], when given, supplies one
   element-offset index value per stream (hoisted outer-loop
   contribution to the base address). *)
let streaming_region b ~patterns ~ins:in_vals ~outs:out_vals ?(offsets = []) f =
  let arg_tys =
    List.map (fun v -> Ty.Stream_readable (elem_ty_of v)) in_vals
    @ List.map (fun v -> Ty.Stream_writable (elem_ty_of v)) out_vals
  in
  let region = Ir.Region.single_block ~args:arg_tys () in
  let body = Ir.Region.only_block region in
  let op =
    Builder.create b
      ~attrs:
        [
          ( "patterns",
            Attr.Arr (List.map (fun p -> Attr.Index_pattern p) patterns) );
          ("ins", Attr.Int (List.length in_vals));
          ("offsets", Attr.Int (List.length offsets));
        ]
      ~regions:[ region ] ~results:[] streaming_region_op
      (in_vals @ out_vals @ offsets)
  in
  let bb = Builder.at_end body in
  f bb (Ir.Block.args body);
  op

let read b stream =
  match Ir.Value.ty stream with
  | Ty.Stream_readable e -> Builder.create1 b ~result:e read_op [ stream ]
  | _ -> invalid_arg "Memref_stream.read: not a readable stream"

let write b value stream = Builder.create0 b write_op [ value; stream ]

let body op = Ir.Region.only_block (Ir.Op.region op 0)

let patterns op =
  List.map Attr.get_index_pattern (Attr.get_arr (Ir.Op.attr_exn op "patterns"))
