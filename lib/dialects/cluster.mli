(** The cluster dialect: ops tying an [scf.forall] thread instance to
    its share of the cluster-visible operands.

    [cluster.slice] carves the leading dimension of a memref into
    [parts] equal contiguous row blocks and yields the thread's block
    as a shrunk memref — a pure view computation the cluster lowering
    turns into base-address arithmetic plus DMA staging. *)

open Mlc_ir

val slice_op : string

(** [slice b ~parts ~tid src] — thread [tid]'s contiguous block of
    [src]'s leading dimension, split [parts] ways. Raises
    [Invalid_argument] when [src] is not a ranked memref. *)
val slice : Builder.t -> parts:int -> tid:Ir.value -> Ir.value -> Ir.value

val parts : Ir.op -> int

(** The sliced memref operand. *)
val src : Ir.op -> Ir.value
