(* The func dialect: functions with by-reference memref arguments, the
   entry point of every micro-kernel (paper Figure 2). *)

open Mlc_ir

let func_op =
  Op_registry.register "func.func" ~verify:(fun op ->
      Op_registry.expect_num_operands op 0;
      Op_registry.expect_num_results op 0;
      Op_registry.expect_num_regions op 1;
      Op_registry.expect_attr op "sym_name";
      Op_registry.expect_attr op "function_type";
      match Ir.Op.attr_exn op "function_type" with
      | Attr.Ty (Ty.Func_ty (args, _)) ->
        let entry = Ir.Region.only_block (Ir.Op.region op 0) in
        let actual = List.map Ir.Value.ty (Ir.Block.args entry) in
        if
          List.length actual <> List.length args
          || not (List.for_all2 Ty.equal actual args)
        then Op_registry.fail_op op "entry block args do not match function_type"
      | _ -> Op_registry.fail_op op "function_type must be a function type")

let return_op =
  Op_registry.register "func.return" ~terminator:true ~verify:(fun op ->
      Op_registry.expect_num_results op 0)

let call_op =
  Op_registry.register "func.call" ~verify:(fun op ->
      Op_registry.expect_attr op "callee")

(* Create a function and return (op, entry block). The body is built by
   the caller through a builder positioned in the entry block. *)
let func b ~name ~args ~results =
  let region = Ir.Region.single_block ~args () in
  let op =
    Builder.create b
      ~attrs:
        [
          ("sym_name", Attr.Str name);
          ("function_type", Attr.Ty (Ty.Func_ty (args, results)));
        ]
      ~regions:[ region ] ~results:[] func_op []
  in
  (op, Ir.Region.only_block region)

let return_ b values = Builder.create0 b return_op values

let call b ~callee ~results args =
  Builder.create b ~attrs:[ ("callee", Attr.Str callee) ] ~results call_op args

let name op = Attr.get_str (Ir.Op.attr_exn op "sym_name")

let func_type op =
  match Ir.Op.attr_exn op "function_type" with
  | Attr.Ty (Ty.Func_ty (args, results)) -> (args, results)
  | _ -> invalid_arg "Func.func_type"

let body op = Ir.Region.only_block (Ir.Op.region op 0)

(* Find a function by name within a module. *)
let lookup m fname =
  Ir.find_first m (fun op ->
      Ir.Op.name op = func_op
      && (match Ir.Op.attr op "sym_name" with
         | Some (Attr.Str s) -> s = fname
         | _ -> false))
