(** The memref_stream dialect: the bridge between linalg abstractions and
    the Snitch streaming hardware (paper §3.4, Figure 7).

    [memref_stream.generic] mirrors [linalg.generic] but carries explicit
    iteration [bounds], supports an [interleaved] trailing iterator
    (unroll-and-jam: the body holds one copy of the computation per
    interleaved iteration) and [inits] operands (scalar initial values
    for outputs whose zero-fill was fused in).

    [memref_stream.streaming_region] fixes the access order of streamed
    operands with one index pattern per stream and exposes them to its
    region as readable/writable stream values; optional per-stream
    element offsets carry hoisted outer-loop contributions (DESIGN.md). *)

open Mlc_ir

val generic_op : string
val yield_op : string
val streaming_region_op : string
val read_op : string
val write_op : string
val fill_op : string

(** {2 generic accessors} *)

val num_ins : Ir.op -> int
val num_inits : Ir.op -> int
val num_outs : Ir.op -> int
val bounds : Ir.op -> int list
val indexing_maps : Ir.op -> Affine.map list
val iterator_types : Ir.op -> Attr.iterator list
val ins : Ir.op -> Ir.value list
val outs : Ir.op -> Ir.value list
val inits : Ir.op -> Ir.value list

(** The bound of the trailing interleaved dimension (1 when none): how
    many copies of the computation the body holds. *)
val unroll_factor : Ir.op -> int

val elem_ty_of : Ir.value -> Ty.t
val body : Ir.op -> Ir.block

(** {2 streaming_region accessors} *)

val num_streams : Ir.op -> int
val num_offsets : Ir.op -> int
val streamed_operands : Ir.op -> Ir.value list
val offset_operands : Ir.op -> Ir.value list
val patterns : Ir.op -> Attr.index_pattern list

(** {2 builders} *)

(** [generic b ~bounds ~ins ~outs ?inits ~maps ~iterators f]: [f]
    receives the body builder, the input argument copies (all copies of
    copy 0's inputs first: [in0#0, in1#0, ..., in0#1, ...]) and the
    output accumulator copies, and returns the yielded values
    (copy-major: [out0#0, out1#0, ..., out0#1, ...]). *)
val generic :
  Builder.t ->
  bounds:int list ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  ?inits:Ir.value list ->
  maps:Affine.map list ->
  iterators:Attr.iterator list ->
  (Builder.t -> Ir.value list -> Ir.value list -> Ir.value list) ->
  Ir.op

(** [streaming_region b ~patterns ~ins ~outs ?offsets f]: [f] receives
    the body builder and the stream block arguments (readable first). *)
val streaming_region :
  Builder.t ->
  patterns:Attr.index_pattern list ->
  ins:Ir.value list ->
  outs:Ir.value list ->
  ?offsets:Ir.value list ->
  (Builder.t -> Ir.value list -> unit) ->
  Ir.op

(** Pop one element from a readable stream. *)
val read : Builder.t -> Ir.value -> Ir.value

(** Push one element to a writable stream. *)
val write : Builder.t -> Ir.value -> Ir.value -> unit
