(** A content-addressed artifact cache.

    Two tiers: a process-wide in-memory table (always on, safe to use
    from any domain) and an optional on-disk tier (enable with
    {!set_disk_dir}) whose entries survive across processes. The memory
    tier holds live values — a warm in-process hit is one table lookup,
    no unmarshal — while the disk tier stores [Marshal] payloads
    (decoded once per process and promoted to memory). The key must
    uniquely determine the stored type — derive it with {!key} and bump
    the [version] component whenever the marshaled representation (or
    the semantics of the computation it caches) changes. Because hits
    share one live value, callers must treat cached values as immutable.
    Any stale, corrupt or truncated disk entry is treated as a miss and
    recomputed; the offending file is quarantined (renamed to
    [<entry>.corrupt] and counted in {!quarantined}) so a persistently
    bad entry is not re-read and re-discarded on every subsequent miss.
    Disk writes go through a temp file plus atomic rename so concurrent
    writers can never expose a partial entry. *)

(** [key ~namespace ~version parts] hashes the length-framed
    concatenation of the inputs into a hex digest usable as a file
    name. *)
val key : namespace:string -> version:string -> string list -> string

(** Enable ([Some dir], created on first write) or disable ([None], the
    default) the on-disk tier. Attaching a directory sweeps temp files
    orphaned by writers that died between create and rename — dot-prefixed
    [*.tmp] entries older than {!stale_tmp_age_s}; younger ones may
    belong to a live concurrent writer and are left alone. *)
val set_disk_dir : string option -> unit

val disk_dir : unit -> string option

(** Age (seconds since last modification) beyond which an orphaned
    temp file is reclaimed by {!set_disk_dir}. Default 600 s; long-lived
    daemons that restart workers aggressively can lower it with
    {!set_stale_tmp_age_s}. *)
val stale_tmp_age_s : unit -> float

val set_stale_tmp_age_s : float -> unit

(** [find ~key] returns the cached value, consulting memory first and
    then the disk tier (promoting disk finds to memory). Counts one hit
    or one miss. *)
val find : key:string -> 'a option

(** [add ~key v] stores [v] in both enabled tiers. Does not touch the
    counters. *)
val add : key:string -> 'a -> unit

(** [find_or_add ~key compute] returns the cached value for [key] (and
    [true]), or runs [compute], stores its result in both enabled tiers,
    and returns it (and [false]). Concurrent callers with the same key
    may both compute; both store the same content, so either write is
    valid. *)
val find_or_add : key:string -> (unit -> 'a) -> 'a * bool

(** Drop every in-memory entry (the disk tier is untouched). *)
val clear_memory : unit -> unit

(** Hit/miss counters since start or {!reset_stats} ([find_or_add]
    outcomes, across all domains). *)
val hits : unit -> int

val misses : unit -> int

(** Corrupt disk entries renamed aside ([<entry>.corrupt]) on read since
    start or {!reset_stats}. *)
val quarantined : unit -> int

val reset_stats : unit -> unit

(** Opt-in disk-tier caps (default: unbounded, the historical
    behaviour): [max_bytes] bounds the directory's total entry size,
    [max_age_s] the age of any entry. Enforced by {!sweep} — run
    automatically every 8th disk write, and immediately whenever the
    running byte estimate of the directory crosses [max_bytes] (so a
    burst of large artifacts cannot sit above the cap waiting for the
    periodic sweep) — dropping age-cap violators
    first and then the oldest-mtime entries until the size cap holds.
    Eviction is correctness-neutral: an evicted entry is a future miss
    that recomputes. *)
val set_eviction : ?max_bytes:int -> ?max_age_s:float -> unit -> unit

(** Run one eviction pass over the disk tier now. *)
val sweep : unit -> unit

(** Entries evicted since process start. *)
val evicted : unit -> int
