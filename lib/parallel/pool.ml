(* The deterministic domain pool. Determinism contract: [map] evaluates
   items in whatever order the workers pick them up, but commits results
   (and re-raises failures) in submission order, so a caller that only
   performs side effects while folding over the returned list observes
   exactly the sequential schedule. *)

let default_jobs () = Domain.recommended_domain_count ()

type t = {
  jobs : int;
  mu : Mutex.t;
  nonempty : Condition.t; (* signalled when [q] gains work or on close *)
  q : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t array;
  mutable closing : bool;
}

let jobs t = t.jobs

(* Workers loop: pop a task under the lock, run it outside the lock.
   Tasks never raise — [map] wraps the user function in a [result]. *)
let worker_loop t =
  let rec next () =
    Mutex.lock t.mu;
    let rec take () =
      if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
      else if t.closing then None
      else begin
        Condition.wait t.nonempty t.mu;
        take ()
      end
    in
    let task = take () in
    Mutex.unlock t.mu;
    match task with
    | None -> ()
    | Some run ->
      run ();
      next ()
  in
  next ()

let create ?jobs ?(dedicated = false) () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      workers = [||];
      closing = false;
    }
  in
  (* [dedicated] spawns workers even at [jobs = 1]: a server whose
     caller thread must keep accepting connections needs the work off
     its own domain, where the inline [jobs <= 1] fast path would run
     it. *)
  if jobs > 1 || dedicated then
    t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

(* Fire-and-forget submission, for callers that stream work into the
   pool (the serving daemon) rather than fanning out a closed list.
   The worker-loop invariant is that queued tasks never raise, so the
   task is wrapped here; completion/result delivery is entirely the
   caller's protocol (a callback inside [task]). With no workers the
   task runs inline on the caller. *)
let submit t task =
  let safe () = try task () with _ -> () in
  if Array.length t.workers = 0 then safe ()
  else begin
    Mutex.lock t.mu;
    Queue.push safe t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end

(* Commit in submission order: the first [Error] encountered left to
   right is the same failure a sequential run would have raised first. *)
let commit results =
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (exn, bt)) -> Printexc.raise_with_backtrace exn bt
         | None -> assert false)
       results)

(* [batch] groups consecutive items into one queued work item: for
   sub-millisecond items the per-item queue/lock/wake-up round trip
   dominates the work itself, so the bench driver hands the pool one
   chunk per kernel rather than one item per measured cell. Chunking by
   consecutive index keeps the commit order (and therefore the
   exception-priority contract) identical to [batch = 1]. When the
   whole list fits in a single chunk the queue is skipped entirely and
   the items run inline on the caller. *)
let map ?(batch = 1) t f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let batch = max 1 batch in
  let results = Array.make n None in
  let eval i =
    try Ok (f arr.(i)) with exn -> Error (exn, Printexc.get_raw_backtrace ())
  in
  if Array.length t.workers = 0 || n <= batch then
    for i = 0 to n - 1 do
      results.(i) <- Some (eval i)
    done
  else begin
    (* Per-call completion tracking: a fresh condition paired with the
       pool mutex, so concurrent [map] calls from different callers
       cannot steal each other's wake-ups. *)
    let chunks = (n + batch - 1) / batch in
    let finished = Condition.create () in
    let completed = ref 0 in
    Mutex.lock t.mu;
    for c = 0 to chunks - 1 do
      let lo = c * batch in
      let len = min batch (n - lo) in
      Queue.push
        (fun () ->
          (* Evaluate the whole chunk outside the lock, then commit it
             under one lock acquisition. *)
          let local = Array.init len (fun j -> eval (lo + j)) in
          Mutex.lock t.mu;
          for j = 0 to len - 1 do
            results.(lo + j) <- Some local.(j)
          done;
          incr completed;
          if !completed = chunks then Condition.signal finished;
          Mutex.unlock t.mu)
        t.q
    done;
    Condition.broadcast t.nonempty;
    while !completed < chunks do
      Condition.wait finished t.mu
    done;
    Mutex.unlock t.mu
  end;
  commit results

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_list ?jobs f items = with_pool ?jobs (fun t -> map t f items)
