(* Content-addressed artifact cache: Mutex-protected in-memory tier plus
   an optional on-disk tier of self-verifying files (16-byte payload
   digest header + Marshal payload, written temp-file-then-rename so a
   reader can never observe a partial entry).

   The memory tier stores the live value ([Obj.t]-erased, never
   marshaled): a warm in-process hit costs one table lookup, not a
   [Marshal.from_string] of a multi-kilobyte payload per hit — the
   dominant warm-run overhead the disk-tier format would otherwise
   impose on both tiers. The usual [Marshal] type-safety contract
   applies unchanged (the key uniquely determines the stored type), and
   callers must treat cached values as immutable: the same live value is
   returned to every hit. *)

let mu = Mutex.create ()
let mem : (string, Obj.t) Hashtbl.t = Hashtbl.create 256
let dir = Atomic.make (None : string option)
let hit_count = Atomic.make 0
let miss_count = Atomic.make 0
let quarantine_count = Atomic.make 0

(* A process dying between [Filename.temp_file] and [Sys.rename] in
   [disk_add] orphans a ".<key><nonce>.tmp" file that nothing would
   ever reclaim. Sweep such orphans when a process attaches the disk
   tier — but only ones old enough that no live writer can still own
   them (a concurrent process's in-flight temp is seconds old at
   most). *)
let stale_tmp_age = Atomic.make 600.
let stale_tmp_age_s () = Atomic.get stale_tmp_age
let set_stale_tmp_age_s v = Atomic.set stale_tmp_age (Float.max 0. v)

let is_tmp_orphan f =
  String.length f > 1 && f.[0] = '.' && Filename.check_suffix f ".tmp"

let sweep_stale_tmp d =
  match Sys.readdir d with
  | exception Sys_error _ -> ()
  | entries ->
    let now = Unix.gettimeofday () in
    Array.iter
      (fun f ->
        if is_tmp_orphan f then
          let path = Filename.concat d f in
          match Unix.stat path with
          | st when now -. st.Unix.st_mtime > Atomic.get stale_tmp_age -> (
            try Sys.remove path with Sys_error _ -> ())
          | _ -> ()
          | exception Unix.Unix_error _ -> ())
      entries

let set_disk_dir d =
  Atomic.set dir d;
  match d with Some d -> sweep_stale_tmp d | None -> ()

let disk_dir () = Atomic.get dir

let clear_memory () =
  Mutex.lock mu;
  Hashtbl.reset mem;
  Mutex.unlock mu

let hits () = Atomic.get hit_count
let misses () = Atomic.get miss_count
let quarantined () = Atomic.get quarantine_count

let reset_stats () =
  Atomic.set hit_count 0;
  Atomic.set miss_count 0;
  Atomic.set quarantine_count 0

(* Length-framed so ["ab"; "c"] and ["a"; "bc"] hash differently. *)
let key ~namespace ~version parts =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    (namespace :: version :: parts);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let mem_find k =
  Mutex.lock mu;
  let r = Hashtbl.find_opt mem k in
  Mutex.unlock mu;
  r

let mem_add k (v : Obj.t) =
  Mutex.lock mu;
  Hashtbl.replace mem k v;
  Mutex.unlock mu

(* --- disk tier --- *)

let disk_path d k = Filename.concat d (k ^ ".bin")

(* --- eviction ---

   Content-addressing de-duplicates entries, but a long-lived cache
   directory still only grows: every new kernel shape, flag set or
   compiler-version bump adds entries nothing ever deletes. Opt-in caps
   (the crash-bundle eviction shape): a total-size bound and an age
   bound, enforced oldest-mtime-first so the hottest artifacts survive.
   Eviction is correctness-neutral — an evicted entry is a future miss
   that recomputes, never a wrong answer. *)
let size_cap_a = Atomic.make max_int
let age_cap_a = Atomic.make infinity
let evict_count = Atomic.make 0
let writes_since_sweep = Atomic.make 0

(* Running estimate of the directory's byte total: the live total
   measured by the last sweep plus every byte written since. The
   periodic every-8th-write sweep alone is not enough — a burst of
   fewer than 8 large artifacts can leave the directory arbitrarily
   far above the size cap until some later write happens to sweep — so
   [disk_add] also sweeps whenever this estimate crosses the cap. The
   estimate only ever over-approximates (concurrent processes and
   evictions by other writers make the true total smaller), so a
   crossing can at worst cause one redundant readdir. *)
let est_bytes = Atomic.make 0

let set_eviction ?(max_bytes = max_int) ?(max_age_s = infinity) () =
  Atomic.set size_cap_a max_bytes;
  Atomic.set age_cap_a max_age_s

let evicted () = Atomic.get evict_count

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* One pass over <dir>/*.bin: drop entries older than the age cap, then
   drop oldest-first until the directory fits the size cap. Best-effort
   throughout — eviction IO must never fail the computation. A reader
   racing an eviction sees an ordinary miss (open fails → recompute). *)
let sweep () =
  match Atomic.get dir with
  | None -> ()
  | Some d -> (
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | entries ->
      let now = Unix.gettimeofday () in
      let age_cap = Atomic.get age_cap_a
      and size_cap = Atomic.get size_cap_a in
      let live = ref [] in
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".bin" then
            let path = Filename.concat d f in
            match Unix.stat path with
            | exception Unix.Unix_error _ -> ()
            | st ->
              if now -. st.Unix.st_mtime > age_cap then begin
                remove_quiet path;
                Atomic.incr evict_count
              end
              else live := (st.Unix.st_mtime, st.Unix.st_size, path) :: !live)
        entries;
      let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 !live in
      let remaining =
        if total > size_cap then begin
          let oldest_first =
            List.sort (fun (a, _, _) (b, _, _) -> Float.compare a b) !live
          in
          List.fold_left
            (fun remaining (_, sz, path) ->
              if remaining > size_cap then begin
                remove_quiet path;
                Atomic.incr evict_count;
                remaining - sz
              end
              else remaining)
            total oldest_first
        end
        else total
      in
      Atomic.set est_bytes remaining)

(* A corrupt entry is renamed aside rather than left in place: a
   persistently corrupt file would otherwise be re-read, re-hashed and
   re-discarded on every single miss of that key (and [disk_add] may
   never overwrite it if the computation stops being attempted). The
   [.corrupt] suffix keeps the evidence for post-mortems while making
   the key path miss instantly. Best-effort: a failed rename leaves the
   old behaviour (silent recompute). *)
let quarantine d k =
  let path = disk_path d k in
  (try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ());
  Atomic.incr quarantine_count

(* Best-effort read: any IO error, short file or digest mismatch is a
   miss — the entry is recomputed, never trusted. [`Corrupt] (the file
   exists but its self-check fails) is distinguished from [`Absent] so
   the caller can quarantine without ever touching missing entries. *)
let disk_find d k =
  match open_in_bin (disk_path d k) with
  | exception _ -> `Absent
  | ic -> (
    match
      let len = in_channel_length ic in
      if len < 16 then `Corrupt
      else begin
        let digest = really_input_string ic 16 in
        let payload = really_input_string ic (len - 16) in
        if String.equal (Digest.string payload) digest then `Ok payload
        else `Corrupt
      end
    with
    | r ->
      close_in_noerr ic;
      r
    | exception _ ->
      close_in_noerr ic;
      `Corrupt)

(* Best-effort write: cache IO must never fail the computation. *)
let disk_add d k payload =
  try
    (try if not (Sys.file_exists d) then Sys.mkdir d 0o755
     with Sys_error _ -> ());
    let tmp = Filename.temp_file ~temp_dir:d ("." ^ k) ".tmp" in
    (try
       let oc = open_out_bin tmp in
       output_string oc (Digest.string payload);
       output_string oc payload;
       close_out oc;
       Sys.rename tmp (disk_path d k);
       (* Amortise the readdir: sweep every 8th write, as the
          crash-bundle eviction does — and additionally whenever the
          running byte estimate crosses the size cap, so a burst of
          large artifacts cannot leave the directory above the cap
          until the next periodic sweep. *)
       let written = String.length payload + 16 in
       let est = Atomic.fetch_and_add est_bytes written + written in
       let periodic = Atomic.fetch_and_add writes_since_sweep 1 mod 8 = 0 in
       if periodic || est > Atomic.get size_cap_a then sweep ()
     with exn ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise exn)
  with _ -> ()

let find ~key:k =
  let decoded =
    match mem_find k with
    | Some v -> Some (Obj.obj v) (* live value: no unmarshal on warm hits *)
    | None -> (
      match Atomic.get dir with
      | None -> None
      | Some d -> (
        match disk_find d k with
        | `Ok p -> (
          (* A payload that does not unmarshal (a forged or stale-format
             disk file) is as corrupt as a failed digest — quarantined
             and recomputed; a valid one is decoded exactly once and
             promoted to the memory tier as a live value. *)
          match Marshal.from_string p 0 with
          | v ->
            mem_add k (Obj.repr v);
            Some v
          | exception _ ->
            quarantine d k;
            None)
        | `Corrupt ->
          quarantine d k;
          None
        | `Absent -> None))
  in
  (match decoded with
  | Some _ -> Atomic.incr hit_count
  | None -> Atomic.incr miss_count);
  decoded

let add ~key:k v =
  mem_add k (Obj.repr v);
  (* Marshal only when a disk tier will actually consume the bytes. *)
  match Atomic.get dir with
  | None -> ()
  | Some d -> disk_add d k (Marshal.to_string v [])

let find_or_add ~key compute =
  match find ~key with
  | Some v -> (v, true)
  | None ->
    let v = compute () in
    add ~key v;
    (v, false)
