(** A deterministic domain pool.

    Work items are pure functions evaluated on worker domains pulled from
    a shared [Mutex]/[Condition] queue; results are committed back to the
    caller in submission order, so anything the caller prints while
    folding over them is byte-identical to a sequential run. All logging
    and other side effects therefore belong in the caller's commit loop,
    never inside the work function. *)

type t

(** The default worker count: the runtime's recommended domain count
    (usually the number of cores). *)
val default_jobs : unit -> int

(** [create ~jobs ()] starts a pool of [jobs] worker domains ([jobs <= 1]
    starts none and makes {!map} run inline). Defaults to
    {!default_jobs}. [~dedicated:true] spawns workers even at
    [jobs = 1] — for callers (the serving daemon) that must keep their
    own domain free while work drains. *)
val create : ?jobs:int -> ?dedicated:bool -> unit -> t

val jobs : t -> int

(** [submit t task] enqueues a fire-and-forget task. Unlike {!map} there
    is no result channel and no ordering contract: delivery of results
    is the caller's protocol (a callback captured in [task]). Any
    exception the task raises is swallowed — wrap the body in its own
    supervisor if failures must be observed. With no workers the task
    runs inline on the calling domain. *)
val submit : t -> (unit -> unit) -> unit

(** [map ~batch t f items] evaluates [f] on every item (concurrently
    when the pool has workers) and returns the results in submission
    order. [batch] (default 1) groups that many consecutive items into
    one queued work item — use it when individual items are too cheap
    to amortise the queue round trip; when the whole list fits in one
    chunk the items run inline on the caller.

    Exceptions: every item is evaluated; if any raised, the exception of
    the lowest-index failing item is re-raised with its backtrace — the
    same one a sequential left-to-right run would surface first
    (regardless of [batch]). *)
val map : ?batch:int -> t -> ('a -> 'b) -> 'a list -> 'b list

(** Drain the queue and join the worker domains. The pool is unusable
    afterwards; idempotent. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] over a transient pool, shutting it down
    on the way out (including on exceptions). *)
val with_pool : ?jobs:int -> (t -> 'b) -> 'b

(** [map_list ~jobs f items] — {!map} over a transient pool. *)
val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
