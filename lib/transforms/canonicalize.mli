(** Canonicalisation at the arith/scf level: integer constant folding,
    index-arithmetic identities, dead pure-op elimination. *)

val pass : Mlc_ir.Pass.t
