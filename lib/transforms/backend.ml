(* The backend interface behind the retargetable pipeline: a target is
   the lowering tail it appends to [Pipeline.front_passes], the flag
   adjustments it needs (dropping schedule transforms that only make
   sense for another target's hardware), its machine parameters, and the
   lint classes that are meaningful for the code it emits.

   [passes_for] is the only composition point: the Snitch backend
   reproduces [Pipeline.passes] exactly (the identity adjustment plus
   [Pipeline.snitch_lowering]), which the seam tests pin down, so
   retargeting is provably a no-op for the existing flow. *)

type t = {
  name : string;
  (* vector register width in bits; 0 for scalar-only targets *)
  vlen_bits : int;
  (* drop flags whose transforms target another backend's hardware *)
  adjust_flags : Pipeline.flags -> Pipeline.flags;
  (* the target-specific lowering appended to [Pipeline.front_passes] *)
  lowering : Pipeline.flags -> Mlc_ir.Pass.t list;
  (* lint check classes that can fire on this target's code *)
  lint_classes : string list;
}

let snitch =
  {
    name = "snitch";
    vlen_bits = 0;
    adjust_flags = (fun f -> f);
    lowering = Pipeline.snitch_lowering;
    lint_classes =
      [
        "cfg";
        "read-before-write";
        "ssr-discipline";
        "frep-legality";
        "abi-preservation";
        "stream-balance";
        "dma-discipline";
      ];
  }

let rvv_vlen_bits = 256

(* The RVV tail mirrors the Snitch one minus the Snitch-only stages
   (stream lowering, FREP formation, stream-write legalization), with
   the strip-mining vectorizer in front of the rv conversion. *)
let rvv_lowering (flags : Pipeline.flags) =
  List.concat
    [
      [ Rvv_vectorize.pass ~vlen_bits:rvv_vlen_bits ];
      [ Convert_to_rv.pass flags.pattern_opt; Rv_canonicalize.pass ];
      (if flags.cleanups then
         [ Cse.pass; Licm.pass; Iv_strength_reduce.pass ]
       else []);
      [ Loop_unroll.pass flags.unroll_inner; Rv_canonicalize.pass ];
      (if flags.cleanups then [ Cse.pass ] else []);
    ]

let rvv =
  {
    name = "rvv";
    vlen_bits = rvv_vlen_bits;
    (* SSR streams and FREP are Snitch hardware; unroll-and-jam exists
       to hide the scalar FPU latency, and its constant-fixed trailing
       indices would defeat the unit-stride vectorizer *)
    adjust_flags =
      (fun f -> { f with streams = false; frep = false; unroll_jam = false });
    lowering = rvv_lowering;
    lint_classes = [ "cfg"; "read-before-write"; "abi-preservation" ];
  }

let all = [ snitch; rvv ]
let by_name name = List.find_opt (fun b -> b.name = name) all

(* The full pass list for a backend: the shared front half over the
   adjusted flags, then the target lowering. *)
let passes_for backend flags =
  let f = backend.adjust_flags flags in
  Pipeline.front_passes f @ backend.lowering f
