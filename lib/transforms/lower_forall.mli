(** Lower [scf.forall] + [cluster.slice] (as produced by
    {!Parallel_tile}) into the per-core *tile function*: slices fold
    into shrunk argument types, the body inlines back, and the result
    is an ordinary single-core linalg function over the tile shapes
    that the unchanged downstream pipeline compiles. One compile
    serves every active core. *)

open Mlc_ir

(** Rewrite every function in the module that contains a forall; a
    function without one is left untouched. *)
val lower : Ir.op -> unit

val pass : Pass.t
