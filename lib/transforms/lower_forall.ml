(* Lower the [scf.forall] produced by [Parallel_tile] into the *tile
   function*: the kernel one cluster core runs over its own row block.

   Because every forall instance is identical up to the thread id, and
   the thread id only feeds [cluster.slice] ops, the per-core kernel is
   the forall body with each slice folded away: the function argument
   itself takes the slice's shrunk type (the per-core wrapper passes
   core-local base addresses, so "my block of the buffer" *is* the
   argument). Concretely, for each function with a forall:

   - every [cluster.slice] is erased, its uses redirected to its source
     argument, whose type shrinks to the slice result type;
   - the remaining body ops move back into the function body and the
     forall shell is erased;
   - the function type is rewritten to the shrunk argument types.

   The result is an ordinary single-core linalg function over the tile
   shapes — the unchanged downstream pipeline (and its compile cache,
   keyed on the printed IR) handles it from here. One compile serves
   every active core; only the wrapper constants differ per core. *)

open Mlc_ir
open Mlc_dialects

let lower_fn fn =
  match Ir.find_first fn (fun op -> Ir.Op.name op = Scf.forall_op) with
  | None -> ()
  | Some forall ->
    let entry = Func.body fn in
    let body = Scf.forall_body forall in
    let tid = Scf.thread_id forall in
    Ir.Block.iter_ops body (fun op ->
        if Ir.Op.name op = Cluster.slice_op then begin
          let src = Cluster.src op in
          let sliced_ty = Ir.Value.ty (Ir.Op.result op 0) in
          Ir.replace_all_uses (Ir.Op.result op 0) ~with_:src;
          Ir.Op.erase op;
          Ir.Value.set_ty src sliced_ty
        end);
    if Ir.Value.has_uses tid then
      invalid_arg "Lower_forall: thread id escapes the cluster.slice ops";
    let yield =
      match Ir.Block.terminator body with
      | Some y -> y
      | None -> invalid_arg "Lower_forall: forall body has no terminator"
    in
    List.iter
      (fun op ->
        if not (Ir.Op.equal op yield) then begin
          Ir.Op.unlink op;
          Ir.Op.insert_before ~anchor:forall op
        end)
      (Ir.Block.ops body);
    Ir.Op.erase forall;
    let arg_tys = List.map Ir.Value.ty (Ir.Block.args entry) in
    let result_tys = snd (Func.func_type fn) in
    Ir.Op.set_attr fn "function_type" (Attr.Ty (Ty.Func_ty (arg_tys, result_tys)))

let lower m =
  List.iter lower_fn (Ir.collect m (fun op -> Ir.Op.name op = Func.func_op))

let pass = Pass.make "lower-forall" lower
