(* Induction-variable strength reduction on innermost rv_scf.for loops:
   a multiplication (or shift) of the induction variable by a constant
   becomes a loop-carried value bumped by an addi each iteration —
   turning per-iteration address multiplies into adds, as the LLVM
   backend the paper's baseline flows rely on would (§4.1, §4.4
   discussion of the Clang/MLIR flows). *)

open Mlc_ir
open Mlc_riscv

let const_li v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Rv.li_op ->
    Some (Attr.get_int (Ir.Op.attr_exn op "imm"))
  | _ -> None

let is_innermost loop =
  Ir.find_first loop (fun op -> Ir.Op.name op = Rv_scf.for_op) = None

(* The scale factor if [op] computes iv * constant. *)
let iv_scale iv op =
  match Ir.Op.name op with
  | "rv.slli" when Ir.Value.equal (Ir.Op.operand op 0) iv ->
    Some (1 lsl Attr.get_int (Ir.Op.attr_exn op "imm"))
  | "rv.mul" -> (
    let a = Ir.Op.operand op 0 and b = Ir.Op.operand op 1 in
    if Ir.Value.equal a iv then const_li b
    else if Ir.Value.equal b iv then const_li a
    else None)
  | _ -> None

let fits_imm12 c = c >= -2048 && c <= 2047

let reduce_loop (loop : Ir.op) =
  if is_innermost loop then begin
    let iv = Rv_scf.induction_var loop in
    let body = Rv_scf.body loop in
    let yield = Rv_scf.yield_of loop in
    let candidates =
      Ir.Block.fold_ops body ~init:[] ~f:(fun acc op ->
          match iv_scale iv op with Some c -> (op, c) :: acc | _ -> acc)
      |> List.rev
    in
    let step = Rv_scf.step loop in
    List.iter
      (fun (op, scale) ->
        if fits_imm12 (step * scale) then begin
          let b = Builder.before loop in
          (* init = lb * scale *)
          let init =
            match const_li (Rv_scf.lb loop) with
            | Some lb -> Rv.li b (lb * scale)
            | None ->
              let s = Rv.li b scale in
              Rv.mul b (Rv_scf.lb loop) s
          in
          (* Fresh copy so loop unification owns the register. *)
          let init = Rv.mv b init in
          Ir.Op.set_operands loop (Ir.Op.operands loop @ [ init ]);
          let arg = Ir.Block.add_arg body (Ty.Int_reg None) in
          let res = Ir.Op.add_result loop (Ty.Int_reg None) in
          ignore res;
          (* Bump at the end of the body, before the yield. *)
          let bb = Builder.before yield in
          let next = Rv.addi bb arg (step * scale) in
          Ir.Op.set_operands yield (Ir.Op.operands yield @ [ next ]);
          Ir.replace_all_uses (Ir.Op.result op 0) ~with_:arg;
          Ir.Op.erase op
        end)
      candidates
  end

let pass =
  Pass.make "iv-strength-reduce" (fun m ->
      List.iter reduce_loop (Util.ops_named m Rv_scf.for_op))
