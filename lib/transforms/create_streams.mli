(** Stream selection analysis (paper §3.4): decide which operands of a
    memref_stream.generic stream through SSRs and how many leading
    parallel dimensions must hoist above the streaming region so every
    pattern fits the 4-D hardware address generators. {!Lower_to_loops}
    consumes the annotations. *)

open Mlc_ir

val stream_operands_key : string
val hoist_key : string

(** Annotated operand indices (empty when the analysis has not run or
    nothing qualifies). *)
val annotated_stream_operands : Ir.op -> int list

val hoist_depth : Ir.op -> int

(** The index pattern operand [k] streams with at hoist depth [h]
    (outputs drop the reduction dims). Shared with the loop lowering. *)
val local_index_pattern : Ir.op -> int -> h:int -> Attr.index_pattern

val pass : Pass.t
