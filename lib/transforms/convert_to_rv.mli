(** Conversion from the high-level dialects to the RISC-V dialects
    (paper §3.1, §3.4): values become register-typed, memref accesses
    become address arithmetic plus fld/fsd, streaming regions resolve to
    snitch_stream ops with byte-stride patterns (including the §3.2
    contiguity/repeat optimisations), and loop iteration inits are
    copied so the allocator can unify loop-carried registers. *)

(** [pass pattern_opt]: [pattern_opt] enables the §3.2 stream-pattern
    optimisations (contiguity collapse, hardware repeat). *)
val pass : bool -> Mlc_ir.Pass.t
