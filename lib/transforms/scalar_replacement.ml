(* Scalar replacement (paper §3.4, Table 3): mark reduction generics so
   that the loop lowering accumulates in SSA values (ultimately
   registers) across the reduction dimensions instead of
   loading/storing the output element every iteration.

   The enabling property — output indexing maps that do not reference any
   reduction dimension — is verified here; the marker attribute is
   consumed by {!Lower_to_loops}. *)

open Mlc_ir
open Mlc_dialects

let attr_key = "scalar_replacement"

let is_marked op = Ir.Op.has_attr op attr_key

let mark (op : Ir.op) =
  let iterators = Memref_stream.iterator_types op in
  let red = Util.reduction_dims iterators in
  if red <> [] then begin
    let maps = Memref_stream.indexing_maps op in
    let n_in = Memref_stream.num_ins op in
    List.iteri
      (fun k (m : Affine.map) ->
        if k >= n_in then
          List.iter
            (fun e ->
              let dcoef, _, _ =
                Affine.linear_form ~num_dims:m.Affine.num_dims ~num_syms:0 e
              in
              List.iter
                (fun d ->
                  if dcoef.(d) <> 0 then
                    failwith
                      "scalar replacement requires outputs not indexed by \
                       reduction dimensions")
                red)
            m.Affine.exprs)
      maps;
    Ir.Op.set_attr op attr_key (Attr.Bool true)
  end

let pass =
  Pass.make "scalar-replacement" (fun m ->
      List.iter mark (Util.ops_named m Memref_stream.generic_op))
