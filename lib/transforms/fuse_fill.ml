(* Fill fusion (paper §4.4, Table 3 "+ Fuse Fill"): fold the generic that
   zero-initialises an output buffer into the consuming reduction generic
   as an [inits] operand. The consumer may then ignore the previous
   contents of the buffer, eliminating its remaining output loads and —
   because the output becomes write-only — enabling it to stream. *)

open Mlc_ir
open Mlc_dialects

(* Recognise a pure fill: an all-parallel generic with one output whose
   body just yields a value defined outside the body (typically a scalar
   input block-arg or a constant). Returns the filled value source. *)
let as_fill (op : Ir.op) : [ `In_operand of int | `Constant of Attr.t ] option =
  if Ir.Op.name op <> Memref_stream.generic_op then None
  else if List.exists (fun it -> it <> Attr.Parallel) (Memref_stream.iterator_types op)
  then None
  else if List.length (Memref_stream.outs op) <> 1 then None
  else
    let body = Memref_stream.body op in
    match Ir.Block.terminator body with
    | Some yield when Ir.Op.num_operands yield = 1 -> (
      let y = Ir.Op.operand yield 0 in
      match Ir.Value.def y with
      | Ir.Block_arg (b, i) when Ir.Block.equal b body ->
        if i < Memref_stream.num_ins op then `In_operand i |> Option.some
        else None
      | Ir.Op_result (def, 0) when Ir.Op.name def = "arith.constant" ->
        Some (`Constant (Ir.Op.attr_exn def "value"))
      | _ -> None)
    | _ -> None

(* Is [buf] referenced by any op strictly between [a] and [b] (same
   block)? *)
let buffer_touched_between buf a b =
  let touched = ref false in
  let cur = ref a.Ir.next in
  while (match !cur with Some o -> not (Ir.Op.equal o b) | None -> false) do
    let o = Option.get !cur in
    let uses_buf o =
      List.exists (Ir.Value.equal buf) (Ir.Op.operands o)
    in
    if uses_buf o then touched := true;
    Ir.walk o (fun inner -> if uses_buf inner then touched := true);
    cur := o.Ir.next
  done;
  !touched

let try_fuse (consumer : Ir.op) =
  if
    Scalar_replacement.is_marked consumer
    && Memref_stream.num_inits consumer = 0
    && Memref_stream.num_outs consumer = 1
  then begin
    let outs = Memref_stream.outs consumer in
    (* Scan backwards from the consumer for an adjacent fill of one of
       its outputs. *)
    let rec scan prev =
      match prev with
      | None -> ()
      | Some candidate -> (
        match as_fill candidate with
        | Some source
          when List.exists
                 (fun out ->
                   List.exists (Ir.Value.equal out)
                     (Memref_stream.outs candidate))
                 outs
               && not
                    (buffer_touched_between
                       (List.hd (Memref_stream.outs candidate))
                       candidate consumer) ->
          let init_value =
            match source with
            | `In_operand i -> List.nth (Memref_stream.ins candidate) i
            | `Constant attr ->
              let b = Builder.before consumer in
              let out = List.hd (Memref_stream.outs candidate) in
              Arith.constant b attr (Ty.memref_elem (Ir.Value.ty out))
          in
          Ir.Op.set_operands consumer (Ir.Op.operands consumer @ [ init_value ]);
          Ir.Op.set_attr consumer "inits"
            (Attr.Int (Memref_stream.num_inits consumer + 1));
          Ir.Op.erase candidate
        | _ -> scan (Option.get prev).Ir.prev)
    in
    scan consumer.Ir.prev
  end

let pass =
  Pass.make "fuse-fill" (fun m ->
      List.iter try_fuse (Util.ops_named m Memref_stream.generic_op))
