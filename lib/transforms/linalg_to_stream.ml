(* Lower linalg to memref_stream (paper §3.4, Figure 7): the iteration
   bounds become explicit, decoupling the computation from operand
   shapes, and the dimensions are normalised to parallel-then-reduction
   order (the order the later loop lowering expects).

   linalg.fill becomes an all-parallel memref_stream.generic, so the
   whole pipeline (streams, FREP) applies to initialisation code too. *)

open Mlc_ir
open Mlc_dialects

(* Permute dims of [m]: [perm] maps old dim index -> new dim index. *)
let permute_map_dims (m : Affine.map) perm =
  let dims = Array.init m.Affine.num_dims (fun old_i -> Affine.dim perm.(old_i)) in
  Affine.make ~num_dims:m.Affine.num_dims ~num_syms:m.Affine.num_syms
    (List.map
       (fun e -> Affine.subst_expr ~dims ~syms:[||] e)
       m.Affine.exprs)

let convert_generic (op : Ir.op) =
  let bounds = Linalg.infer_bounds op in
  let maps = Linalg.indexing_maps op in
  let iterators = Linalg.iterator_types op in
  let n = List.length iterators in
  (* Normalise: parallel dims first (stable), then reductions. *)
  let order =
    Util.dims_of_kind iterators Attr.Parallel
    @ Util.dims_of_kind iterators Attr.Reduction
  in
  let perm = Array.make n 0 in
  List.iteri (fun new_i old_i -> perm.(old_i) <- new_i) order;
  let bounds' = List.map (fun old_i -> List.nth bounds old_i) order in
  let iterators' = List.map (fun old_i -> List.nth iterators old_i) order in
  let maps' = List.map (fun m -> permute_map_dims m perm) maps in
  let region = Util.take_region op in
  Util.rename_terminator (Ir.Region.only_block region) ~to_:Memref_stream.yield_op;
  let replacement =
    Ir.Op.create
      ~attrs:
        [
          ("bounds", Attr.int_arr bounds');
          ("indexing_maps", Attr.Arr (List.map (fun m -> Attr.Affine_map m) maps'));
          ("iterator_types", Attr.Iterators iterators');
          ("ins", Attr.Int (Linalg.num_ins op));
          ("inits", Attr.Int 0);
        ]
      ~regions:[ region ] ~results:[] Memref_stream.generic_op
      (Ir.Op.operands op)
  in
  Ir.Op.insert_before ~anchor:op replacement;
  Ir.Op.erase op

(* linalg.fill becomes an all-parallel generic over the buffer's
   coordinates whose body yields the fill value. *)
let convert_fill_nd (op : Ir.op) =
  let value = Ir.Op.operand op 0 in
  let buf = Ir.Op.operand op 1 in
  let shape = Ty.memref_shape (Ir.Value.ty buf) in
  let rank = List.length shape in
  let b = Builder.before op in
  let out_map = Affine.identity rank in
  let in_map = Affine.empty rank in
  ignore
    (Memref_stream.generic b ~bounds:shape ~ins:[ value ] ~outs:[ buf ]
       ~maps:[ in_map; out_map ]
       ~iterators:(List.init rank (fun _ -> Attr.Parallel))
       (fun _bb in_args _out_args -> in_args));
  Ir.Op.erase op

let pass =
  Pass.make "linalg-to-memref-stream" (fun m ->
      List.iter convert_generic (Util.ops_named m Linalg.generic_op);
      List.iter convert_fill_nd (Util.ops_named m Linalg.fill_op))
