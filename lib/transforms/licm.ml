(* Loop-invariant code motion over structured loops (scf.for and
   rv_scf.for): pure ops whose operands are all defined outside the loop
   body move in front of the loop. Iterates to a fixpoint so chains of
   invariant ops (constant, scale, base-address add) hoist together.

   Like {!Cse}, this levels the playing field with the LLVM-based
   baseline flows of the paper (§4.1), which perform LICM as a matter of
   course. *)

open Mlc_ir

let loop_ops = [ "scf.for"; "rv_scf.for" ]

let rec defined_within (v : Ir.value) (loop : Ir.op) =
  match Ir.Value.owner_block v with
  | None -> false
  | Some b -> block_within b loop

and block_within (b : Ir.block) (loop : Ir.op) =
  match Ir.Block.parent_op b with
  | None -> false
  | Some p ->
    Ir.Op.equal p loop
    || (match Ir.Op.parent p with Some pb -> block_within pb loop | None -> false)

(* Register copies that seed loop-carried values must re-execute on every
   entry to their loop: after the allocator unifies the iteration
   registers, the previous trip's final value would otherwise leak into
   the next initialisation. *)
let never_hoist = [ "rv.mv"; "rv.fmv.d" ]

let hoistable loop op =
  Op_registry.is_pure (Ir.Op.name op)
  && (not (List.mem (Ir.Op.name op) never_hoist))
  && Ir.Op.regions op = []
  && List.for_all (fun v -> not (defined_within v loop)) (Ir.Op.operands op)

let run_on root =
  let changed = ref true in
  while !changed do
    changed := false;
    let loops = Ir.collect root (fun op -> List.mem (Ir.Op.name op) loop_ops) in
    List.iter
      (fun loop ->
        let body = Ir.Region.only_block (Ir.Op.region loop 0) in
        Ir.Block.iter_ops body (fun op ->
            if hoistable loop op then begin
              Ir.Op.unlink op;
              Ir.Op.insert_before ~anchor:loop op;
              changed := true
            end))
      loops
  done

let pass = Pass.make "licm" run_on
