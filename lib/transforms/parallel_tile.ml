(* Parallel tiling for the multi-core Snitch cluster: partition a
   linalg-level kernel's iteration space across cores by carving the
   output's leading (parallel) dimension into contiguous row blocks.

   The transform wraps the kernel body in an [scf.forall] of
   [num_threads] instances and replaces every *partitioned* function
   argument with a [cluster.slice] of itself at the thread id; operands
   whose indexing maps never touch the partition dimension stay shared.
   The rewritten function computes exactly the same values: instance t
   writes rows [t*rows/T, (t+1)*rows/T) of every partitioned output,
   and those row blocks tile the original iteration space.

   Partitionability is decided from the linalg indexing maps alone:

   - the anchor is each [linalg.generic]'s first output map, whose
     leading expression must be a plain parallel dimension [d];
   - an operand is partitioned when its map's leading expression is
     that same [d] and no other result expression mentions [d]
     (contiguous row blocks of the operand), and shared when its map
     never mentions [d];
   - any other shape (e.g. the [d0+d2] window maps of conv/pool, whose
     row blocks overlap) makes the kernel non-partitionable, as does a
     partitioned operand that is not a function argument.

   [linalg.fill] partitions its output by fiat — its iteration space is
   the output itself, so row blocks always tile it.

   The thread count is the largest divisor of the partitioned row count
   that is at most [cores]: every instance gets the same whole number
   of rows, keeping the per-core kernels identical (one compile serves
   all cores) and the schedule deterministic. *)

open Mlc_ir
open Mlc_dialects

exception Not_partitionable of string

let fail fmt = Printf.ksprintf (fun s -> raise (Not_partitionable s)) fmt

(* Does [e] mention dimension [d]? *)
let rec mentions d (e : Affine.expr) =
  match e with
  | Affine.Dim i -> i = d
  | Affine.Sym _ | Affine.Const _ -> false
  | Affine.Add (a, b)
  | Affine.Mul (a, b)
  | Affine.Floordiv (a, b)
  | Affine.Ceildiv (a, b)
  | Affine.Mod (a, b) -> mentions d a || mentions d b

type plan = {
  threads : int;  (** forall instances = active cluster cores *)
  rows : int;  (** total extent of the partitioned leading dimension *)
  partitioned : bool array;  (** per function argument: sliced or shared *)
}

(* Argument index of [v] in [entry], if it is one of its block args. *)
let arg_index entry v =
  match Ir.Value.def v with
  | Ir.Block_arg (b, i) when Ir.Block.equal b entry -> Some i
  | _ -> None

(* Classify every function argument of [fn] as partitioned or shared and
   compute the partitioned row count; raises [Not_partitionable]. *)
let analyze fn =
  let entry = Func.body fn in
  let nargs = Ir.Block.num_args entry in
  let partitioned = Array.make nargs false in
  let rows = ref (-1) in
  let note_rows v =
    match Ir.Value.ty v with
    | Ty.Memref { shape = r :: _; _ } ->
      if !rows < 0 then rows := r
      else if !rows <> r then
        fail "partitioned operands disagree on row count (%d vs %d)" !rows r
    | t -> fail "partitioned operand is not a ranked memref: %s" (Ty.to_string t)
  in
  let partition v =
    match arg_index entry v with
    | Some i ->
      note_rows v;
      partitioned.(i) <- true
    | None -> fail "partitioned operand is not a function argument"
  in
  Ir.Block.iter_ops entry (fun op ->
      match Ir.Op.name op with
      | "arith.constant" | "func.return" -> ()
      | "linalg.fill" -> partition (Ir.Op.operand op 1)
      | "linalg.generic" ->
        let maps = Linalg.indexing_maps op in
        let iters = Array.of_list (Linalg.iterator_types op) in
        let out_map = List.nth maps (Linalg.num_ins op) in
        let d =
          match out_map.Affine.exprs with
          | Affine.Dim d :: _ when iters.(d) = Attr.Parallel -> d
          | _ ->
            fail
              "output's leading index is not a plain parallel dimension"
        in
        List.iter2
          (fun (m : Affine.map) v ->
            match m.Affine.exprs with
            | Affine.Dim d' :: rest
              when d' = d && not (List.exists (mentions d) rest) ->
              partition v
            | exprs when not (List.exists (mentions d) exprs) -> ()
            | _ ->
              fail
                "operand rows overlap across the partition dimension \
                 (e.g. window maps)")
          maps (Ir.Op.operands op)
      | name -> fail "unsupported op at the linalg level: %s" name);
  if not (Array.exists (fun b -> b) partitioned) then
    fail "no partitionable output found";
  (partitioned, !rows)

(* Largest divisor of [rows] that is at most [cores]. *)
let split_factor ~cores rows =
  let t = ref 1 in
  for d = 1 to min cores rows do
    if rows mod d = 0 then t := d
  done;
  !t

(* Pure analysis: how [tile] would partition [fn_name] over [cores]
   cores. *)
let plan_of ~cores m ~fn_name =
  match Func.lookup m fn_name with
  | None -> fail "no function named %s" fn_name
  | Some fn ->
    let partitioned, rows = analyze fn in
    { threads = split_factor ~cores rows; rows; partitioned }

(* Apply the transform to [fn] in place; returns the plan. *)
let tile_fn ~cores fn =
  let partitioned, rows = analyze fn in
  let threads = split_factor ~cores rows in
  let entry = Func.body fn in
  let ret =
    match Ir.Block.terminator entry with
    | Some t when Ir.Op.name t = Func.return_op -> t
    | _ -> fail "function body must end in func.return"
  in
  let moved =
    List.filter (fun op -> not (Ir.Op.equal op ret)) (Ir.Block.ops entry)
  in
  let b = Builder.before ret in
  let forall = Scf.forall b ~num_threads:threads (fun _ _ -> ()) in
  let yield =
    match Ir.Block.terminator (Scf.forall_body forall) with
    | Some y -> y
    | None -> assert false
  in
  List.iter
    (fun op ->
      Ir.Op.unlink op;
      Ir.Op.insert_before ~anchor:yield op)
    moved;
  (* Slices go at the top of the body; redirect every other use of each
     partitioned argument to its slice. *)
  let tid = Scf.thread_id forall in
  let sb =
    match moved with
    | first :: _ -> Builder.before first
    | [] -> Builder.before yield
  in
  Array.iteri
    (fun i part ->
      if part then begin
        let arg = Ir.Block.arg entry i in
        let sliced = Cluster.slice sb ~parts:threads ~tid arg in
        let slice_def =
          match Ir.Value.defining_op sliced with
          | Some op -> op
          | None -> assert false
        in
        List.iter
          (fun (u : Ir.use) ->
            if not (Ir.Op.equal u.Ir.user slice_def) then
              Ir.Op.set_operand u.Ir.user u.Ir.index sliced)
          (Ir.Value.uses arg)
      end)
    partitioned;
  { threads; rows; partitioned }

let tile ~cores m ~fn_name =
  match Func.lookup m fn_name with
  | None -> fail "no function named %s" fn_name
  | Some fn -> tile_fn ~cores fn

(* Pipeline form: tile every function (debugging / check --all). *)
let pass ~cores =
  Pass.make "parallel-tile" (fun m ->
      List.iter
        (fun fn -> ignore (tile_fn ~cores fn))
        (Ir.collect m (fun op -> Ir.Op.name op = Func.func_op)))
