(** Target description of the Snitch core consumed by the scheduling
    passes (paper §3.4: the unroll factor derives from the pipeline
    depth). *)

val fpu_pipeline_stages : int
val num_ssrs : int
val ssr_max_dims : int
