(** Resolution of iteration-space access patterns into SSR stride
    configurations, with the paper's compile-time optimisations (§3.2):
    unit-bound dimensions are dropped, contiguous dimensions merge, and
    a trailing zero-stride dimension becomes the hardware repeat count. *)

open Mlc_ir

(** Dimensions outermost-first; strides in bytes; [offset] the constant
    byte displacement contributed by the indexing map. *)
type resolved = { ub : int list; strides : int list; offset : int }

(** Turn an indexing map over the iteration space into per-dimension
    byte strides over a buffer with the given element strides. *)
val resolve :
  bounds:int list ->
  map:Affine.map ->
  mem_strides:int list ->
  elem_size:int ->
  resolved

(** Apply the §3.2 optimisations. The generated address sequence is
    preserved exactly (property-tested). *)
val optimize : resolved -> resolved

(** Extract a trailing zero-stride dimension as (repeat count, remaining
    pattern); (0, unchanged) when absent. *)
val split_repeat : resolved -> int * resolved

(** Hardware address-generator dimensions the pattern needs (after
    optimisation; reads may use the repeat register). *)
val hw_dims : is_read:bool -> resolved -> int

val fits : is_read:bool -> resolved -> bool

(** Restrict a map to dimensions >= h: lower dims contribute zero (their
    effect is carried by a runtime pointer offset), remaining dims are
    renumbered. *)
val drop_leading_dims : Affine.map -> int -> Affine.map

(** Row-major element strides of a memref type. *)
val mem_strides_of : Ty.t -> int list
