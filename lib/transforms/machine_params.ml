(* Target description of the Snitch core consumed by the scheduling
   passes (paper §3.4: "We automatically select the optimal unroll factor
   based on the pipeline depth"). *)

(* All Snitch FPU operations traverse a 3-stage pipeline. *)
let fpu_pipeline_stages = 3

(* Number of stream semantic registers (data movers). *)
let num_ssrs = 3

(* Maximum pattern dimensionality of an SSR address generator. *)
let ssr_max_dims = 4
