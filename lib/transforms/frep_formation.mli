(** FREP formation (paper §3.2, Table 3 "+ FRep"): rv_scf loops whose
    bodies run entirely in the FPU data path (streams having removed all
    indexing) become rv_snitch.frep_outer hardware loops. *)

val pass : Mlc_ir.Pass.t
