(** Materialise snitch_stream.streaming_region into the explicit SSR
    configuration sequence (li + scfgwi per the DESIGN.md assembler
    contract), stream enable/disable CSR ops and the inlined body. Runs
    before register allocation so the SSR data registers enter the IR
    for the exclusion pass (paper §3.3) and a trailing zero-stride read
    dimension becomes the hardware repeat (§3.2). *)

val pass : Mlc_ir.Pass.t
