(* RVV strip-mining vectorizer: rewrite the innermost parallel scf.for
   of each loop nest into a vector strip loop advancing by VLMAX, with
   [rvv.setvl] clamping the tail.

   The candidate is the deepest scf.for with no iter_args, constant
   bounds and unit step. Values in its body are classified against the
   candidate induction variable:

   - [Uniform]: identical across lanes (defined outside, constants,
     integer arithmetic on uniform values, loads at uniform addresses,
     nested-reduction induction variables). Cloned as scalar code.
   - [Vindex]: the induction variable or [addi iv, uniform] — the only
     address forms accepted, and only in the trailing (unit-stride)
     index position of a load/store.
   - [Vlane r]: a per-lane float held in vector register [r]. Loads at
     a Vindex address root the lanes; float arithmetic with any Vlane
     operand stays in vector registers.

   Nested scf.for reduction loops keep their float iter_args as
   accumulator vector registers carried across iterations (the loop is
   re-emitted without iter_args; a copy/splat before the loop seeds the
   register, and a copy after the cloned yield writes it back unless the
   producing op already targeted it). fmaf with a lane accumulator maps
   onto the destructive vfmacc forms, preserving the single rounding —
   per lane the arithmetic is composed exactly as the scalar pipeline
   composes it, so results stay bit-identical to the interpreter.

   Any body op, address shape, or element type outside this fragment
   rejects the loop, leaving it to the scalar lowering. Rejection is
   decided by a pure analysis pass before any IR is touched. *)

open Mlc_ir
open Mlc_dialects

exception Reject

type vclass = Uniform | Vindex | Vlane of int

type access = { a_store : bool; a_vector : bool; a_idx : int list }

type st = {
  tbl : (int, vclass) Hashtbl.t; (* value id -> class *)
  splat : (int, int) Hashtbl.t; (* op id -> scratch vreg for a splat *)
  mem : (int, access list ref) Hashtbl.t; (* memref value id -> accesses *)
  mutable next_vreg : int;
  mutable sew : int option; (* element width, uniform over all accesses *)
  mutable n_vector_mem : int;
}

let fresh st =
  let r = st.next_vreg in
  if r > 31 then raise Reject;
  st.next_vreg <- r + 1;
  r

let class_of st v =
  match Hashtbl.find_opt st.tbl (Ir.Value.id v) with
  | Some c -> c
  | None -> Uniform

let set_class st v c = Hashtbl.replace st.tbl (Ir.Value.id v) c

let width_of_float = function
  | Ty.F64 -> 64
  | Ty.F32 -> 32
  | _ -> raise Reject (* F16 and non-floats never enter vector registers *)

let note_sew st w =
  match st.sew with
  | Some s -> if s <> w then raise Reject
  | None -> st.sew <- Some w

let note_access st memref ~store ~vector ~idx =
  let key = Ir.Value.id memref in
  let l =
    match Hashtbl.find_opt st.mem key with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace st.mem key l;
      l
  in
  l := { a_store = store; a_vector = vector; a_idx = List.map Ir.Value.id idx }
       :: !l

(* A Vlane operand's register may be reused as the destination (the
   vector ops read sources before writing) when this op is its only
   user and it is defined in the op's own block — a single use from
   inside a nested loop still needs the value on every iteration. *)
let may_reuse op v =
  Ir.Value.num_uses v = 1
  &&
  match (Ir.Value.owner_block v, Ir.Op.parent op) with
  | Some b, Some b' -> Ir.Block.equal b b'
  | _ -> false

let float_binops =
  [
    (Arith.addf_op, "vfadd");
    (Arith.subf_op, "vfsub");
    (Arith.mulf_op, "vfmul");
    (Arith.divf_op, "vfdiv");
    (Arith.maxf_op, "vfmax");
    (Arith.minf_op, "vfmin");
  ]

(* Mnemonic computing [scalar <op> lane] with the scalar operand second,
   as the .vf forms require. *)
let commuted = function
  | "vfsub" -> "vfrsub"
  | "vfdiv" -> "vfrdiv"
  | m -> m (* add/mul/max/min commute *)

let split_last l =
  match List.rev l with
  | last :: rev_init -> (List.rev rev_init, last)
  | [] -> raise Reject

(* --- analysis ------------------------------------------------------ *)

let rec analyze_op st op =
  let name = Ir.Op.name op in
  let cls i = class_of st (Ir.Op.operand op i) in
  if name = Arith.constant_op then ()
  else if name = Arith.addi_op then (
    match (cls 0, cls 1) with
    | Uniform, Uniform -> ()
    | Vindex, Uniform | Uniform, Vindex ->
      set_class st (Ir.Op.result op 0) Vindex
    | _ -> raise Reject)
  else if name = Arith.subi_op || name = Arith.muli_op then (
    match (cls 0, cls 1) with Uniform, Uniform -> () | _ -> raise Reject)
  else if name = Memref.load_op then begin
    let memref = Ir.Op.operand op 0 in
    if class_of st memref <> Uniform then raise Reject;
    let indices = List.tl (Ir.Op.operands op) in
    let init, last = split_last indices in
    if List.exists (fun v -> class_of st v <> Uniform) init then raise Reject;
    match class_of st last with
    | Uniform -> note_access st memref ~store:false ~vector:false ~idx:indices
    | Vindex ->
      note_sew st (width_of_float (Ty.memref_elem (Ir.Value.ty memref)));
      st.n_vector_mem <- st.n_vector_mem + 1;
      note_access st memref ~store:false ~vector:true ~idx:indices;
      set_class st (Ir.Op.result op 0) (Vlane (fresh st))
    | Vlane _ -> raise Reject
  end
  else if name = Memref.store_op then begin
    let value = Ir.Op.operand op 0 in
    let memref = Ir.Op.operand op 1 in
    if class_of st memref <> Uniform then raise Reject;
    let indices = List.filteri (fun i _ -> i >= 2) (Ir.Op.operands op) in
    let init, last = split_last indices in
    if List.exists (fun v -> class_of st v <> Uniform) init then raise Reject;
    match class_of st last with
    | Uniform ->
      if class_of st value <> Uniform then raise Reject;
      note_access st memref ~store:true ~vector:false ~idx:indices
    | Vindex ->
      note_sew st (width_of_float (Ty.memref_elem (Ir.Value.ty memref)));
      st.n_vector_mem <- st.n_vector_mem + 1;
      note_access st memref ~store:true ~vector:true ~idx:indices;
      (match class_of st value with
       | Vlane _ -> ()
       | Uniform -> Hashtbl.replace st.splat (Ir.Op.id op) (fresh st)
       | Vindex -> raise Reject)
    | Vlane _ -> raise Reject
  end
  else if List.mem_assoc name float_binops then (
    match (cls 0, cls 1) with
    | Uniform, Uniform -> ()
    | (Uniform | Vlane _), (Uniform | Vlane _) ->
      note_sew st (width_of_float (Ir.Value.ty (Ir.Op.result op 0)));
      let reuse i =
        match cls i with
        | Vlane r when may_reuse op (Ir.Op.operand op i) -> Some r
        | _ -> None
      in
      let vd =
        match reuse 0 with
        | Some r -> r
        | None -> (match reuse 1 with Some r -> r | None -> fresh st)
      in
      set_class st (Ir.Op.result op 0) (Vlane vd)
    | _ -> raise Reject)
  else if name = Arith.fmaf_op then (
    match (cls 0, cls 1, cls 2) with
    | Uniform, Uniform, Uniform -> ()
    | (Uniform | Vlane _), (Uniform | Vlane _), (Uniform | Vlane _) ->
      note_sew st (width_of_float (Ir.Value.ty (Ir.Op.result op 0)));
      let vd =
        match cls 2 with
        | Vlane r when may_reuse op (Ir.Op.operand op 2) -> r
        | _ -> fresh st
      in
      (* both multiplicands uniform: one is broadcast into a scratch
         register so the destructive vfmacc keeps the single rounding *)
      (match (cls 0, cls 1) with
       | Uniform, Uniform -> Hashtbl.replace st.splat (Ir.Op.id op) (fresh st)
       | _ -> ());
      set_class st (Ir.Op.result op 0) (Vlane vd)
    | _ -> raise Reject)
  else if name = Scf.for_op then analyze_nested_for st op
  else raise Reject

and analyze_nested_for st op =
  List.iter
    (fun v -> if class_of st v <> Uniform then raise Reject)
    [ Scf.lb op; Scf.ub op; Scf.step op ];
  let inits = Scf.iter_operands op in
  let args = Scf.iter_args op in
  List.iter2
    (fun init arg ->
      ignore (width_of_float (Ir.Value.ty arg));
      let acc =
        match class_of st init with
        | Vlane r when may_reuse op init -> r
        | _ -> fresh st
      in
      set_class st arg (Vlane acc))
    inits args;
  analyze_body st (Scf.body op);
  List.iter2
    (fun arg result -> set_class st result (class_of st arg))
    args (Ir.Op.results op)

and analyze_body st body =
  let term = Ir.Block.terminator body in
  Ir.Block.iter_ops body (fun op ->
      match term with
      | Some t when Ir.Op.equal t op -> ()
      | _ -> analyze_op st op)

(* Memory-dependence screen. Scalar iterations interleave loads and
   stores; lanes execute a whole strip of loads before the matching
   stores, so cross-lane dependences through memory must be ruled out:
   a memref with any vector access admits no uniform store; one with a
   vector store admits no uniform access at all; and vector loads and
   stores of the same memref must address through the same index values
   (the matmul/conv read-modify-write form), keeping every dependence
   lane-local. *)
let check_mem_deps st =
  Hashtbl.iter
    (fun _ accs ->
      let accs = !accs in
      let vec = List.filter (fun a -> a.a_vector) accs in
      if vec <> [] then begin
        if List.exists (fun a -> (not a.a_vector) && a.a_store) accs then
          raise Reject;
        if List.exists (fun a -> a.a_store) vec then begin
          if List.exists (fun a -> not a.a_vector) accs then raise Reject;
          match vec with
          | first :: rest ->
            if List.exists (fun a -> a.a_idx <> first.a_idx) rest then
              raise Reject
          | [] -> ()
        end
      end)
    st.mem

let analyze loop =
  let st =
    {
      tbl = Hashtbl.create 64;
      splat = Hashtbl.create 8;
      mem = Hashtbl.create 8;
      next_vreg = 0;
      sew = None;
      n_vector_mem = 0;
    }
  in
  set_class st (Scf.induction_var loop) Vindex;
  analyze_body st (Scf.body loop);
  check_mem_deps st;
  (* a loop with no vector memory traffic has nothing to vectorize *)
  if st.n_vector_mem = 0 then raise Reject;
  st

(* --- translation --------------------------------------------------- *)

let mapv vmap v =
  match Hashtbl.find_opt vmap (Ir.Value.id v) with Some v' -> v' | None -> v

let clone_scalar vmap bb op =
  let clone =
    Builder.create bb ~attrs:(Ir.Op.attrs op)
      ~results:(List.map Ir.Value.ty (Ir.Op.results op))
      (Ir.Op.name op)
      (List.map (mapv vmap) (Ir.Op.operands op))
  in
  List.iteri
    (fun i r -> Hashtbl.replace vmap (Ir.Value.id r) (Ir.Op.result clone i))
    (Ir.Op.results op)

let lane_of st v =
  match class_of st v with Vlane r -> r | _ -> assert false

let rec translate_op st vmap bb op =
  let name = Ir.Op.name op in
  let cls i = class_of st (Ir.Op.operand op i) in
  let m i = mapv vmap (Ir.Op.operand op i) in
  if name = Scf.for_op then translate_nested_for st vmap bb op
  else if name = Memref.load_op then (
    match Hashtbl.find_opt st.tbl (Ir.Value.id (Ir.Op.result op 0)) with
    | Some (Vlane vd) ->
      let indices = List.tl (Ir.Op.operands op) in
      Rvv_ops.load bb ~vd (m 0) (List.map (mapv vmap) indices)
    | _ -> clone_scalar vmap bb op)
  else if name = Memref.store_op then begin
    let indices = List.filteri (fun i _ -> i >= 2) (Ir.Op.operands op) in
    let _, last = split_last indices in
    match class_of st last with
    | Vindex ->
      let vs =
        match cls 0 with
        | Vlane r -> r
        | Uniform ->
          let r = Hashtbl.find st.splat (Ir.Op.id op) in
          Rvv_ops.splat bb ~vd:r (m 0);
          r
        | Vindex -> assert false
      in
      Rvv_ops.store bb ~vs (m 1) (List.map (mapv vmap) indices)
    | _ -> clone_scalar vmap bb op
  end
  else if List.mem_assoc name float_binops then (
    match Hashtbl.find_opt st.tbl (Ir.Value.id (Ir.Op.result op 0)) with
    | Some (Vlane vd) ->
      let mn = List.assoc name float_binops in
      (match (cls 0, cls 1) with
       | Vlane vs1, Vlane vs2 -> Rvv_ops.binary_vv bb ~op:mn ~vd ~vs1 ~vs2
       | Vlane vs2, Uniform -> Rvv_ops.binary_vf bb ~op:mn ~vd ~vs2 (m 1)
       | Uniform, Vlane vs2 ->
         Rvv_ops.binary_vf bb ~op:(commuted mn) ~vd ~vs2 (m 0)
       | _ -> assert false)
    | _ -> clone_scalar vmap bb op)
  else if name = Arith.fmaf_op then (
    match Hashtbl.find_opt st.tbl (Ir.Value.id (Ir.Op.result op 0)) with
    | Some (Vlane vd) ->
      (* seed the destructive accumulator *)
      (match cls 2 with
       | Vlane r when r = vd -> ()
       | Vlane r -> Rvv_ops.copy bb ~vd ~vs:r
       | Uniform -> Rvv_ops.splat bb ~vd (m 2)
       | Vindex -> assert false);
      (match (cls 0, cls 1) with
       | Vlane vs1, Vlane vs2 -> Rvv_ops.macc_vv bb ~vd ~vs1 ~vs2
       | Uniform, Vlane vs2 -> Rvv_ops.macc_vf bb ~vd ~vs2 (m 0)
       | Vlane vs2, Uniform -> Rvv_ops.macc_vf bb ~vd ~vs2 (m 1)
       | Uniform, Uniform ->
         let s = Hashtbl.find st.splat (Ir.Op.id op) in
         Rvv_ops.splat bb ~vd:s (m 0);
         Rvv_ops.macc_vf bb ~vd ~vs2:s (m 1)
       | _ -> assert false)
    | _ -> clone_scalar vmap bb op)
  else clone_scalar vmap bb op

and translate_nested_for st vmap bb op =
  (* seed each accumulator register before entering the loop *)
  List.iter2
    (fun init arg ->
      let acc = lane_of st arg in
      match class_of st init with
      | Vlane r when r = acc -> ()
      | Vlane r -> Rvv_ops.copy bb ~vd:acc ~vs:r
      | Uniform -> Rvv_ops.splat bb ~vd:acc (mapv vmap init)
      | Vindex -> assert false)
    (Scf.iter_operands op) (Scf.iter_args op);
  let new_for =
    Scf.for_ bb ~lb:(mapv vmap (Scf.lb op)) ~ub:(mapv vmap (Scf.ub op))
      ~step:(mapv vmap (Scf.step op)) (fun bb2 iv _ ->
        Hashtbl.replace vmap (Ir.Value.id (Scf.induction_var op)) iv;
        translate_body st vmap bb2 (Scf.body op);
        (* write each accumulator back unless the yielded value's
           producer already targeted the accumulator register *)
        let yield = Scf.yield_of op in
        List.iter2
          (fun yv arg ->
            let acc = lane_of st arg in
            match class_of st yv with
            | Vlane r when r = acc -> ()
            | Vlane r -> Rvv_ops.copy bb2 ~vd:acc ~vs:r
            | Uniform -> Rvv_ops.splat bb2 ~vd:acc (mapv vmap yv)
            | Vindex -> assert false)
          (Ir.Op.operands yield) (Scf.iter_args op);
        [])
  in
  ignore new_for

and translate_body st vmap bb body =
  let term = Ir.Block.terminator body in
  Ir.Block.iter_ops body (fun op ->
      match term with
      | Some t when Ir.Op.equal t op -> ()
      | _ -> translate_op st vmap bb op)

let vectorize ~vlen_bits loop =
  match analyze loop with
  | exception Reject -> ()
  | st ->
    let sew = Option.get st.sew in
    let vlmax = vlen_bits / sew in
    let b = Builder.before loop in
    let ub = Scf.ub loop in
    let step = Arith.const_index b vlmax in
    let vmap = Hashtbl.create 64 in
    let _ =
      Scf.for_ b ~lb:(Scf.lb loop) ~ub ~step (fun bb iv _ ->
          Hashtbl.replace vmap (Ir.Value.id (Scf.induction_var loop)) iv;
          let rem = Arith.subi bb ub iv in
          Rvv_ops.setvl bb ~sew rem;
          translate_body st vmap bb (Scf.body loop);
          [])
    in
    Ir.Op.erase loop

let is_candidate loop =
  Ir.Op.name loop = Scf.for_op
  && Scf.iter_args loop = []
  &&
  match
    ( Arith.as_constant (Scf.lb loop),
      Arith.as_constant (Scf.ub loop),
      Arith.as_constant (Scf.step loop) )
  with
  | Some (Attr.Int _), Some (Attr.Int _), Some (Attr.Int 1) -> true
  | _ -> false

let pass ~vlen_bits =
  Pass.make "rvv-vectorize" (fun m ->
      Util.ops_named m Scf.for_op
      |> List.filter (fun l ->
             is_candidate l
             && Ir.find_first l (fun op ->
                    Ir.Op.name op = Scf.for_op && is_candidate op)
                = None)
      |> List.iter (vectorize ~vlen_bits))
