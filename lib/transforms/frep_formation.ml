(* FREP formation (paper §3.2, Table 3 "+ FRep"): rewrite rv_scf.for
   loops whose bodies run entirely in the FPU data path into
   rv_snitch.frep_outer hardware loops, eliminating explicit loop control
   flow and decoupling the FPU from the integer core.

   Conditions: constant lower bound 0 and step 1, unused induction
   variable (streams have removed all indexing), and every body op
   executable by the FPU sequencer. *)

open Mlc_ir
open Mlc_riscv

let const_li v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Rv.li_op ->
    Some (Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "imm"))
  | _ -> None

let body_is_fpu_only body =
  let terminator = Ir.Block.terminator body in
  Ir.Block.fold_ops body ~init:true ~f:(fun acc o ->
      acc
      && (Rv_snitch.is_frep_safe (Ir.Op.name o)
         || match terminator with Some t -> Ir.Op.equal t o | None -> false))

let try_form (loop : Ir.op) =
  let body = Rv_scf.body loop in
  let iv = Rv_scf.induction_var loop in
  if
    const_li (Rv_scf.lb loop) = Some 0
    && Rv_scf.step loop = 1
    && (not (Ir.Value.has_uses iv))
    && body_is_fpu_only body
    && Ir.Block.num_ops body > 1 (* more than just the yield *)
  then begin
    let bb = Builder.before loop in
    (* frep.o executes rpt+1 times: rpt = ub - 1. *)
    let rpt = Rv.addi bb (Rv_scf.ub loop) (-1) in
    let iter_tys = List.map Ir.Value.ty (Rv_scf.iter_operands loop) in
    let region = Ir.Region.single_block ~args:iter_tys () in
    let new_body = Ir.Region.only_block region in
    let frep =
      Ir.Op.create ~regions:[ region ] ~results:iter_tys
        Rv_snitch.frep_outer_op
        (rpt :: Rv_scf.iter_operands loop)
    in
    Ir.Op.insert_before ~anchor:loop frep;
    (* Move the body across, dropping the induction variable. *)
    List.iteri
      (fun i old_arg ->
        Ir.replace_all_uses old_arg ~with_:(Ir.Block.arg new_body i))
      (Rv_scf.iter_args loop);
    Ir.Block.iter_ops body (fun o ->
        Ir.Op.unlink o;
        Ir.Block.append new_body o);
    Util.rename_terminator new_body ~to_:"rv_snitch.frep_yield";
    List.iteri
      (fun i r -> Ir.replace_all_uses r ~with_:(Ir.Op.result frep i))
      (Ir.Op.results loop);
    Ir.Op.erase loop
  end

let pass =
  Pass.make "frep-formation" (fun m ->
      List.iter try_form (Util.ops_named m Rv_scf.for_op))
