(** The backend interface behind the retargetable pipeline: a target
    bundles the lowering tail it appends to {!Pipeline.front_passes},
    the flag adjustments it needs, its machine parameters and the lint
    classes meaningful for its code. *)

type t = {
  name : string;
  vlen_bits : int;
      (** vector register width in bits; 0 for scalar-only targets *)
  adjust_flags : Pipeline.flags -> Pipeline.flags;
      (** drops flags whose transforms target another backend's
          hardware (applied before the front half too, so the shared
          passes see the adjusted schedule) *)
  lowering : Pipeline.flags -> Mlc_ir.Pass.t list;
      (** the target-specific lowering appended to the front half *)
  lint_classes : string list;
      (** lint check classes that can fire on this target's code *)
}

(** The Snitch backend: identity flag adjustment plus
    {!Pipeline.snitch_lowering} — [passes_for snitch flags] equals
    [Pipeline.passes flags] exactly. *)
val snitch : t

(** The RISC-V Vector backend: vsetvli strip-mining vectorizer plus the
    generic rv lowering, VLEN = 256. *)
val rvv : t

val all : t list
val by_name : string -> t option

(** The full pass list for a backend: [front_passes] over the adjusted
    flags, then the backend lowering. *)
val passes_for : t -> Pipeline.flags -> Mlc_ir.Pass.t list
