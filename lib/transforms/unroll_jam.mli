(** Unroll-and-jam (paper §3.4, Figure 7): interleave several iterations
    of a parallel dimension in the innermost body so the FPU sees
    independent accumulator chains instead of one RAW chain. The factor
    is derived from the FPU pipeline depth (>= stages + 1); small dims
    interleave whole, larger ones split by their best divisor, and the
    factor is capped by an FP register-pressure estimate so the
    spill-free allocator always succeeds on the interleaved body. *)

(** Minimum interleave covering the FPU pipeline. *)
val min_factor : int

val max_factor : int

(** Register-pressure cap on the interleave factor for a
    [memref_stream.generic]: the largest number of interleaved copies
    whose accumulators, temporaries and fixed overhead still fit the FP
    register file. *)
val max_interleave : Mlc_ir.Ir.op -> int

(** How one parallel dimension is interleaved: fully ([Whole]), split
    by an exact divisor ([Split]), or split by the full cap with a
    non-interleaved tail covering the remainder ([Split_epilogue
    (u, rem)]) when the size has no usable divisor. *)
type plan = Whole of int | Split of int | Split_epilogue of int * int

(** [choose_factor ~cap b] is the interleave plan for a dim of size
    [b], or [None] when it cannot be interleaved within the pressure
    cap. *)
val choose_factor : cap:int -> int -> plan option

val pass : Mlc_ir.Pass.t
