(** Unroll-and-jam (paper §3.4, Figure 7): interleave several iterations
    of a parallel dimension in the innermost body so the FPU sees
    independent accumulator chains instead of one RAW chain. The factor
    is derived from the FPU pipeline depth (>= stages + 1); small dims
    interleave whole, larger ones split by their best divisor. *)

(** Minimum interleave covering the FPU pipeline. *)
val min_factor : int

val max_factor : int

(** [choose_factor b] is [Some (u, split?)] or [None] when a dim of
    size [b] cannot be interleaved. *)
val choose_factor : int -> (int * bool) option

val pass : Mlc_ir.Pass.t
