(* Shared helpers for the lowering passes. *)

open Mlc_ir

(* Detach the single region of [op] so it can be re-attached to a
   replacement op. *)
let take_region (op : Ir.op) =
  match op.Ir.regions with
  | [ r ] ->
    op.Ir.regions <- [];
    r
  | _ -> invalid_arg "Util.take_region: op does not have exactly one region"

(* Rename the terminator of [block]. *)
let rename_terminator (block : Ir.block) ~to_ =
  match Ir.Block.terminator block with
  | Some t -> t.Ir.op_name <- to_
  | None -> invalid_arg "Util.rename_terminator: block has no terminator"

(* Clone the non-terminator ops of [src] at builder [bb], mapping operands
   through [vmap] (old value id -> new value). Results are added to
   [vmap]. Returns the mapped operands of [src]'s terminator. Ops with
   regions are not supported (bodies are straight-line arith code). *)
let clone_body_ops (src : Ir.block) (bb : Builder.t) (vmap : (int, Ir.value) Hashtbl.t) =
  let map_value v =
    match Hashtbl.find_opt vmap (Ir.Value.id v) with
    | Some v' -> v'
    | None -> v (* defined outside the cloned block: keep *)
  in
  let terminator = Ir.Block.terminator src in
  Ir.Block.iter_ops src (fun op ->
      match terminator with
      | Some t when Ir.Op.equal t op -> ()
      | _ ->
        if Ir.Op.regions op <> [] then
          invalid_arg "Util.clone_body_ops: nested regions not supported";
        let clone =
          Builder.create bb
            ~attrs:(Ir.Op.attrs op)
            ~results:(List.map Ir.Value.ty (Ir.Op.results op))
            (Ir.Op.name op)
            (List.map map_value (Ir.Op.operands op))
        in
        List.iteri
          (fun i r -> Hashtbl.replace vmap (Ir.Value.id r) (Ir.Op.result clone i))
          (Ir.Op.results op));
  match terminator with
  | Some t -> List.map map_value (Ir.Op.operands t)
  | None -> []

(* Emit arith ops computing an affine expression over index values.
   [dim_value d] supplies the SSA index value for dimension [d]. *)
let rec emit_affine bb ~dim_value (e : Affine.expr) : Ir.value =
  let open Mlc_dialects in
  match e with
  | Affine.Dim d -> dim_value d
  | Affine.Const c -> Arith.const_index bb c
  | Affine.Sym _ -> invalid_arg "Util.emit_affine: symbols not supported"
  | Affine.Add (a, b) ->
    Arith.addi bb (emit_affine bb ~dim_value a) (emit_affine bb ~dim_value b)
  | Affine.Mul (a, b) ->
    Arith.muli bb (emit_affine bb ~dim_value a) (emit_affine bb ~dim_value b)
  | Affine.Floordiv _ | Affine.Ceildiv _ | Affine.Mod _ ->
    invalid_arg "Util.emit_affine: non-linear affine expression"

(* All ops of a module with the given name, in walk order. *)
let ops_named m name = Ir.collect m (fun op -> Ir.Op.name op = name)

(* Positions (indices) of dims with the given iterator kind. *)
let dims_of_kind iterators kind =
  List.concat
    (List.mapi (fun i it -> if it = kind then [ i ] else []) iterators)

let reduction_dims iterators = dims_of_kind iterators Mlc_ir.Attr.Reduction
