(* Unroll-and-jam (paper §3.4, Figure 7): interleave several iterations
   of a parallel dimension in the innermost loop body, so the FPU
   pipeline sees independent accumulator chains instead of a single RAW
   chain. With a 3-stage FPU, stalls are minimised once at least four
   independent iterations are interleaved; the transform picks the unroll
   factor from the pipeline depth automatically.

   IR effect: the chosen parallel dimension moves to (or a split part of
   it is appended at) the end of the iteration space with iterator type
   [interleaved]; the body is replicated once per interleaved iteration
   with fresh block-argument copies. *)

open Mlc_ir
open Mlc_dialects

(* Minimum interleave to cover the FPU pipeline (3 stages => 4). *)
let min_factor = Machine_params.fpu_pipeline_stages + 1
let max_factor = 8

(* Register-pressure model for the spill-free allocator: each
   interleaved copy keeps its accumulator(s) live across the whole
   loop, on top of the per-copy temporaries (body op results, popped
   operand elements, and one extra copy for every multi-used operand —
   stream reads pop, so reuse forces an fmv) and a fixed slack for
   the reserved stream registers, fill constants and loop plumbing.
   The interleave factor is capped so the estimate fits the FP file;
   the Table 1 kernel bodies are small enough to keep the full
   factor 8. *)
let fp_regs = 20
let fp_slack = 8

let body_fp_pressure op =
  let body = Memref_stream.body op in
  let temps =
    Ir.Block.fold_ops body ~init:0 ~f:(fun n o ->
        n + List.length (Ir.Op.results o))
  in
  let n_in = Memref_stream.num_ins op in
  let multi_use =
    List.length
      (List.filter
         (fun a -> Ir.Value.num_uses a > 1)
         (List.filteri (fun i _ -> i < n_in) (Ir.Block.args body)))
  in
  temps + n_in + multi_use

let max_interleave op =
  let n_out = max 1 (Memref_stream.num_outs op) in
  min max_factor ((fp_regs - fp_slack - body_fp_pressure op) / n_out)

(* How one parallel dimension of size [b] is interleaved. *)
type plan =
  | Whole of int (* u = b: the dim moves to the end, fully interleaved *)
  | Split of int (* b mod u = 0: dim stays at b/u with a trailing dim u *)
  | Split_epilogue of int * int
      (* (u, rem): the leading b - rem iterations split as above; the
         remaining rem run in a separate non-interleaved tail op *)

(* Choose the unroll plan for a dimension of size [b] under the
   pressure cap:
   - small dims are fully interleaved;
   - larger dims are split by their largest divisor within [2, cap]
     (preferring larger);
   - dims with no usable divisor (primes, non-multiples of the factor)
     are interleaved by the full cap with an epilogue for the rest. *)
let choose_factor ~cap b =
  if b < 2 || cap < 2 then None
  else if b <= cap then Some (Whole b)
  else begin
    let rec search u =
      if u < 2 then None
      else if b mod u = 0 then Some u
      else search (u - 1)
    in
    match search cap with
    | Some u -> Some (Split u)
    | None -> Some (Split_epilogue (cap, b mod cap))
  end

let transform (op : Ir.op) =
  let iterators = Memref_stream.iterator_types op in
  let has_reduction = List.exists (( = ) Attr.Reduction) iterators in
  (* Without a reduction there is no RAW chain to break: skip. *)
  if
    has_reduction
    && Scalar_replacement.is_marked op
    && Memref_stream.unroll_factor op = 1
  then begin
    let bounds = Memref_stream.bounds op in
    let parallel = Util.dims_of_kind iterators Attr.Parallel in
    let cap = max_interleave op in
    (* Prefer the last parallel dimension (fastest-varying in the output). *)
    let candidate =
      List.fold_left
        (fun acc d ->
          match choose_factor ~cap (List.nth bounds d) with
          | Some plan -> Some (d, plan)
          | None -> acc)
        None parallel
    in
    match candidate with
    | None -> ()
    | Some (p, plan) ->
      let n = List.length bounds in
      let maps = Memref_stream.indexing_maps op in
      let n_in = Memref_stream.num_ins op in
      let n_out = Memref_stream.num_outs op in
      let old_body = Memref_stream.body op in
      let operands = Ir.Op.operands op in
      let ins = List.filteri (fun i _ -> i < n_in) operands in
      let outs = List.filteri (fun i _ -> i >= n_in && i < n_in + n_out) operands in
      let inits = List.filteri (fun i _ -> i >= n_in + n_out) operands in
      let b = Builder.before op in
      (* Emit one replacement generic with the body replicated u times
         (in_args = [copy0 ins..., copy1 ins...]; out_args likewise). *)
      let emit ~bounds:new_bounds ~iterators:new_iterators ~dim_subst ~u =
        let new_num_dims = List.length new_bounds in
        let new_maps =
          List.map
            (fun (m : Affine.map) ->
              Affine.make ~num_dims:new_num_dims ~num_syms:0
                (List.map
                   (Affine.subst_expr ~dims:dim_subst ~syms:[||])
                   m.Affine.exprs))
            maps
        in
        let g =
          Memref_stream.generic b ~bounds:new_bounds ~ins ~outs ~inits
            ~maps:new_maps ~iterators:new_iterators
            (fun bb in_args out_args ->
              let yields = ref [] in
              for j = 0 to u - 1 do
                let vmap = Hashtbl.create 16 in
                for k = 0 to n_in - 1 do
                  Hashtbl.replace vmap
                    (Ir.Value.id (Ir.Block.arg old_body k))
                    (List.nth in_args ((j * n_in) + k))
                done;
                for k = 0 to n_out - 1 do
                  Hashtbl.replace vmap
                    (Ir.Value.id (Ir.Block.arg old_body (n_in + k)))
                    (List.nth out_args ((j * n_out) + k))
                done;
                let copy_yields = Util.clone_body_ops old_body bb vmap in
                yields := !yields @ copy_yields
              done;
              !yields)
        in
        Ir.Op.set_attr g Scalar_replacement.attr_key (Attr.Bool true)
      in
      (* dim p: count -> count/u (in place), new trailing interleaved
         dim u; d_p := d_p * u + d_n + base. *)
      let emit_split ~count ~base ~u =
        let nb =
          List.mapi (fun i bd -> if i = p then count / u else bd) bounds @ [ u ]
        in
        let ni = iterators @ [ Attr.Interleaved ] in
        let subst =
          Array.init n (fun i ->
              if i = p then
                Affine.(add (add (mul (dim p) (const u)) (dim n)) (const base))
              else Affine.dim i)
        in
        emit ~bounds:nb ~iterators:ni ~dim_subst:subst ~u
      in
      (match plan with
      | Whole u ->
        (* Move dim p to the end as the interleaved dim. *)
        let others = List.filter (fun i -> i <> p) (List.init n Fun.id) in
        let order = others @ [ p ] in
        let pos = Array.make n 0 in
        List.iteri (fun new_i old_i -> pos.(old_i) <- new_i) order;
        let nb = List.map (fun old_i -> List.nth bounds old_i) order in
        let ni =
          List.map
            (fun old_i ->
              if old_i = p then Attr.Interleaved else List.nth iterators old_i)
            order
        in
        let subst = Array.init n (fun i -> Affine.dim pos.(i)) in
        emit ~bounds:nb ~iterators:ni ~dim_subst:subst ~u
      | Split u -> emit_split ~count:(List.nth bounds p) ~base:0 ~u
      | Split_epilogue (u, rem) ->
        (* Interleaved main part over the leading b - rem iterations,
           then a non-interleaved tail over the remaining rem. The dim
           being parallel, the two parts touch disjoint output slices. *)
        let b_p = List.nth bounds p in
        emit_split ~count:(b_p - rem) ~base:0 ~u;
        let tail_b = List.mapi (fun i bd -> if i = p then rem else bd) bounds in
        let tail_subst =
          Array.init n (fun i ->
              if i = p then Affine.(add (dim p) (const (b_p - rem)))
              else Affine.dim i)
        in
        emit ~bounds:tail_b ~iterators ~dim_subst:tail_subst ~u:1);
      Ir.Op.erase op
  end

let pass =
  Pass.make "unroll-and-jam" (fun m ->
      List.iter transform (Util.ops_named m Memref_stream.generic_op))
