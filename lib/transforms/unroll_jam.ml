(* Unroll-and-jam (paper §3.4, Figure 7): interleave several iterations
   of a parallel dimension in the innermost loop body, so the FPU
   pipeline sees independent accumulator chains instead of a single RAW
   chain. With a 3-stage FPU, stalls are minimised once at least four
   independent iterations are interleaved; the transform picks the unroll
   factor from the pipeline depth automatically.

   IR effect: the chosen parallel dimension moves to (or a split part of
   it is appended at) the end of the iteration space with iterator type
   [interleaved]; the body is replicated once per interleaved iteration
   with fresh block-argument copies. *)

open Mlc_ir
open Mlc_dialects

(* Minimum interleave to cover the FPU pipeline (3 stages => 4). *)
let min_factor = Machine_params.fpu_pipeline_stages + 1
let max_factor = 8

(* Choose the unroll factor for a dimension of size [b]:
   - small dims are fully interleaved;
   - larger dims are split by their largest divisor within
     [min_factor, max_factor] (preferring larger);
   - dims with no usable divisor are left alone. *)
let choose_factor b =
  if b < 2 then None
  else if b <= max_factor then Some (b, false)
  else begin
    let rec search u =
      if u < 2 then None
      else if b mod u = 0 then Some (u, true)
      else search (u - 1)
    in
    search max_factor
  end

let transform (op : Ir.op) =
  let iterators = Memref_stream.iterator_types op in
  let has_reduction = List.exists (( = ) Attr.Reduction) iterators in
  (* Without a reduction there is no RAW chain to break: skip. *)
  if
    has_reduction
    && Scalar_replacement.is_marked op
    && Memref_stream.unroll_factor op = 1
  then begin
    let bounds = Memref_stream.bounds op in
    let parallel = Util.dims_of_kind iterators Attr.Parallel in
    (* Prefer the last parallel dimension (fastest-varying in the output). *)
    let candidate =
      List.fold_left
        (fun acc d ->
          match choose_factor (List.nth bounds d) with
          | Some (u, split) -> Some (d, u, split)
          | None -> acc)
        None parallel
    in
    match candidate with
    | None -> ()
    | Some (p, u, split) ->
      let n = List.length bounds in
      let maps = Memref_stream.indexing_maps op in
      let n_in = Memref_stream.num_ins op in
      let n_out = Memref_stream.num_outs op in
      (* New dimension layout. *)
      let new_bounds, new_iterators, dim_subst =
        if split then begin
          (* dim p: b -> b/u (in place), new trailing interleaved dim u.
             d_p := d_p * u + d_n *)
          let nb =
            List.mapi (fun i b -> if i = p then b / u else b) bounds @ [ u ]
          in
          let ni = iterators @ [ Attr.Interleaved ] in
          let subst =
            Array.init n (fun i ->
                if i = p then
                  Affine.(add (mul (dim p) (const u)) (dim n))
                else Affine.dim i)
          in
          (nb, ni, subst)
        end
        else begin
          (* Move dim p to the end as the interleaved dim. *)
          let others = List.filter (fun i -> i <> p) (List.init n Fun.id) in
          let order = others @ [ p ] in
          let pos = Array.make n 0 in
          List.iteri (fun new_i old_i -> pos.(old_i) <- new_i) order;
          let nb = List.map (fun old_i -> List.nth bounds old_i) order in
          let ni =
            List.map
              (fun old_i ->
                if old_i = p then Attr.Interleaved
                else List.nth iterators old_i)
              order
          in
          let subst = Array.init n (fun i -> Affine.dim pos.(i)) in
          (nb, ni, subst)
        end
      in
      let new_num_dims = List.length new_bounds in
      let new_maps =
        List.map
          (fun (m : Affine.map) ->
            Affine.make ~num_dims:new_num_dims ~num_syms:0
              (List.map (Affine.subst_expr ~dims:dim_subst ~syms:[||]) m.Affine.exprs))
          maps
      in
      (* Replicate the body u times. *)
      let old_body = Memref_stream.body op in
      let operands = Ir.Op.operands op in
      let ins = List.filteri (fun i _ -> i < n_in) operands in
      let outs = List.filteri (fun i _ -> i >= n_in && i < n_in + n_out) operands in
      let inits = List.filteri (fun i _ -> i >= n_in + n_out) operands in
      let b = Builder.before op in
      ignore
        (Memref_stream.generic b ~bounds:new_bounds ~ins ~outs ~inits
           ~maps:new_maps ~iterators:new_iterators
           (fun bb in_args out_args ->
             (* in_args = [copy0 ins..., copy1 ins...]; out_args
                likewise. Clone the old single-copy body u times. *)
             let yields = ref [] in
             for j = 0 to u - 1 do
               let vmap = Hashtbl.create 16 in
               for k = 0 to n_in - 1 do
                 Hashtbl.replace vmap
                   (Ir.Value.id (Ir.Block.arg old_body k))
                   (List.nth in_args ((j * n_in) + k))
               done;
               for k = 0 to n_out - 1 do
                 Hashtbl.replace vmap
                   (Ir.Value.id (Ir.Block.arg old_body (n_in + k)))
                   (List.nth out_args ((j * n_out) + k))
               done;
               let copy_yields = Util.clone_body_ops old_body bb vmap in
               yields := !yields @ copy_yields
             done;
             !yields));
      let replacement =
        match op.Ir.prev with
        | Some r -> r
        | None -> invalid_arg "unroll_jam: replacement not inserted"
      in
      Ir.Op.set_attr replacement Scalar_replacement.attr_key (Attr.Bool true);
      Ir.Op.erase op
  end

let pass =
  Pass.make "unroll-and-jam" (fun m ->
      List.iter transform (Util.ops_named m Memref_stream.generic_op))
