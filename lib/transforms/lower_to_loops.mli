(** Lower memref_stream.generic to scf.for loop nests (paper §3.4):
    explicit loops over the iteration space; streamed operands become
    stream read/write ops inside a streaming region opened at the
    annotated hoist depth; the scalar-replacement marker selects
    register accumulation vs read-modify-write; interleaved trailing
    dimensions are already unrolled in the body. *)

val pass : Mlc_ir.Pass.t
