(** Lower linalg to memref_stream (paper §3.4, Figure 7): iteration
    bounds become explicit (decoupling computation from operand shapes)
    and dimensions are normalised to parallel-then-reduction order;
    [linalg.fill] becomes an all-parallel generic so the whole pipeline
    applies to initialisation code too. *)

val pass : Mlc_ir.Pass.t
