(** Loop-invariant code motion over structured loops (scf / rv_scf),
    iterated to a fixpoint. Iteration-seeding register copies are never
    hoisted: they must re-execute on every loop entry once the allocator
    unifies iteration registers. *)

val pass : Mlc_ir.Pass.t
