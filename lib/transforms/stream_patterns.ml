(* Resolution of iteration-space access patterns into SSR stride
   configurations, including the paper's compile-time optimisations
   (§3.2 d):

   - unit-bound dimensions are dropped;
   - an outer dimension whose stride equals the inner dimension's full
     extent is merged with it (contiguous access detection);
   - a trailing zero-stride dimension becomes the hardware repeat count,
     relieving the memory interconnect of redundant reads.

   A resolved pattern lists dimensions outermost-first; byte strides. *)

open Mlc_ir

type resolved = { ub : int list; strides : int list; offset : int }

(* [resolve ~bounds ~map ~mem_strides ~elem_size] turns an indexing map
   over the iteration space into per-dimension byte strides over the
   buffer with the given element strides. *)
let resolve ~bounds ~(map : Affine.map) ~mem_strides ~elem_size =
  let n = List.length bounds in
  let per_dim = Array.make n 0 in
  let offset = ref 0 in
  List.iteri
    (fun r e ->
      let dcoef, _, c = Affine.linear_form ~num_dims:n ~num_syms:0 e in
      let ms = List.nth mem_strides r in
      offset := !offset + (c * ms * elem_size);
      Array.iteri
        (fun d coef -> per_dim.(d) <- per_dim.(d) + (coef * ms * elem_size))
        dcoef)
    map.Affine.exprs;
  { ub = bounds; strides = Array.to_list per_dim; offset = !offset }

(* Drop unit dims, merge contiguous dims, then keep at most one trailing
   zero-stride dim (repeat marker). *)
let optimize (p : resolved) =
  let dims = List.combine p.ub p.strides in
  let dims = List.filter (fun (ub, _) -> ub <> 1) dims in
  (* Merge from innermost: fold right, collapsing (outer, inner) when
     stride_outer = ub_inner * stride_inner. *)
  let dims =
    List.fold_right
      (fun (ub, stride) acc ->
        match acc with
        | (ub_in, s_in) :: rest when stride = ub_in * s_in && s_in <> 0 ->
          (ub * ub_in, s_in) :: rest
        | _ -> (ub, stride) :: acc)
      dims []
  in
  (* Merge consecutive zero-stride dims. *)
  let dims =
    List.fold_right
      (fun (ub, stride) acc ->
        match acc with
        | (ub_in, 0) :: rest when stride = 0 -> (ub * ub_in, 0) :: rest
        | _ -> (ub, stride) :: acc)
      dims []
  in
  { p with ub = List.map fst dims; strides = List.map snd dims }

(* The repeat count encoded by a trailing zero-stride dimension, plus the
   pattern with that dimension removed (read streams only). *)
let split_repeat (p : resolved) =
  match List.rev (List.combine p.ub p.strides) with
  | (ub, 0) :: rest when ub > 1 ->
    let dims = List.rev rest in
    ( ub - 1,
      { p with ub = List.map fst dims; strides = List.map snd dims } )
  | _ -> (0, p)

(* Number of hardware address-generator dimensions the pattern needs. *)
let hw_dims ~is_read (p : resolved) =
  let rep, body = if is_read then split_repeat (optimize p) else (0, optimize p) in
  ignore rep;
  max 1 (List.length body.ub)

let fits ~is_read p = hw_dims ~is_read p <= Machine_params.ssr_max_dims

(* Restrict [map] to dimensions >= h: dims below h contribute 0 (their
   effect is carried by a runtime pointer offset); remaining dims are
   renumbered. *)
let drop_leading_dims (map : Affine.map) h =
  let dims =
    Array.init map.Affine.num_dims (fun d ->
        if d < h then Affine.const 0 else Affine.dim (d - h))
  in
  Affine.make ~num_dims:(map.Affine.num_dims - h) ~num_syms:0
    (List.map (Affine.subst_expr ~dims ~syms:[||]) map.Affine.exprs)

(* Element strides (row-major) of a memref type. *)
let mem_strides_of ty = Ty.row_major_strides (Ty.memref_shape ty)
