(* Stream selection analysis (paper §3.4): decide which operands of a
   memref_stream.generic will be accessed through SSRs, and how many
   leading parallel dimensions must be hoisted above the streaming
   region so that every chosen pattern fits the 4-dimensional hardware
   address generators. The loop lowering consumes the annotations and
   materialises the streaming region at the chosen depth, with runtime
   pointer offsets carrying the hoisted dimensions' contribution.

   Streamability:
   - memref inputs with linear indexing maps always qualify;
   - memref outputs qualify only when write-only: either covered by
     [inits] (fused fill) or, for reduction-free generics, when the body
     ignores the current output value;
   - at most [Machine_params.num_ssrs] operands stream; inputs take
     precedence in operand order. *)

open Mlc_ir
open Mlc_dialects

let stream_operands_key = "stream_operands"
let hoist_key = "stream_hoist"

let annotated_stream_operands op =
  match Ir.Op.attr op stream_operands_key with
  | Some a -> Attr.get_int_arr a
  | None -> []

let hoist_depth op =
  match Ir.Op.attr op hoist_key with Some (Attr.Int h) -> h | _ -> 0

let map_is_linear (m : Affine.map) =
  List.for_all
    (fun e ->
      match Affine.linear_form ~num_dims:m.Affine.num_dims ~num_syms:0 e with
      | _ -> true
      | exception Affine.Not_affine _ -> false)
    m.Affine.exprs

(* Is the k-th input's value used by some body copy? Shape-only operands
   (e.g. pooling windows) must not waste a data mover. *)
let in_arg_used op k =
  let n_in = Memref_stream.num_ins op in
  let u = Memref_stream.unroll_factor op in
  let body = Memref_stream.body op in
  let rec any j =
    j < u
    && (Ir.Value.has_uses (Ir.Block.arg body ((j * n_in) + k)) || any (j + 1))
  in
  any 0

(* Is the k-th output's current value unused by every body copy? *)
let out_arg_unused op k =
  let n_in = Memref_stream.num_ins op in
  let n_out = Memref_stream.num_outs op in
  let u = Memref_stream.unroll_factor op in
  let body = Memref_stream.body op in
  let rec all j =
    j >= u
    || (not (Ir.Value.has_uses (Ir.Block.arg body ((u * n_in) + (j * n_out) + k))))
       && all (j + 1)
  in
  all 0

let out_is_write_only op k =
  Memref_stream.num_inits op > k
  ||
  let iterators = Memref_stream.iterator_types op in
  (not (List.exists (( = ) Attr.Reduction) iterators)) && out_arg_unused op k

(* The index pattern (iteration bounds + restricted map) an operand
   streams with at hoist depth [h]: dims below h are hoisted to a runtime
   offset; outputs additionally drop the reduction dims (they are written
   once per non-reduction point). *)
let local_index_pattern op k ~h : Attr.index_pattern =
  let bounds = Memref_stream.bounds op in
  let iterators = Memref_stream.iterator_types op in
  let maps = Memref_stream.indexing_maps op in
  let n_in = Memref_stream.num_ins op in
  let red = Util.reduction_dims iterators in
  let m = Stream_patterns.drop_leading_dims (List.nth maps k) h in
  let local_bounds = List.filteri (fun d _ -> d >= h) bounds in
  let local_red = List.filter_map (fun d -> if d >= h then Some (d - h) else None) red in
  if k < n_in then { Attr.ip_ub = local_bounds; ip_map = m }
  else
    {
      Attr.ip_ub =
        List.concat
          (List.mapi
             (fun d b -> if List.mem d local_red then [] else [ b ])
             local_bounds);
      ip_map = Affine.drop_dims m local_red;
    }

let resolved_pattern op k ~h =
  let p = local_index_pattern op k ~h in
  let mty = Ir.Value.ty (List.nth (Ir.Op.operands op) k) in
  Stream_patterns.resolve ~bounds:p.Attr.ip_ub ~map:p.Attr.ip_map
    ~mem_strides:(Stream_patterns.mem_strides_of mty)
    ~elem_size:(Ty.byte_width (Ty.memref_elem mty))

let analyze (op : Ir.op) =
  let bounds = Memref_stream.bounds op in
  let iterators = Memref_stream.iterator_types op in
  let maps = Memref_stream.indexing_maps op in
  let n_in = Memref_stream.num_ins op in
  let n_out = Memref_stream.num_outs op in
  let u = Memref_stream.unroll_factor op in
  (* Leading parallel dimensions eligible for hoisting: a prefix of the
     dim list that is parallel (normalised order guarantees parallel
     dims come first; the interleaved dim is never leading). *)
  let n_loop_dims = List.length bounds - if u > 1 then 1 else 0 in
  let max_hoist =
    let rec count d =
      if d < n_loop_dims && List.nth iterators d = Attr.Parallel then
        count (d + 1)
      else d
    in
    count 0
  in
  let candidate k v =
    match Ir.Value.ty v with
    | Ty.Memref _ ->
      map_is_linear (List.nth maps k)
      && (if k < n_in then in_arg_used op k else out_is_write_only op (k - n_in))
    | _ -> false
  in
  let candidates =
    List.concat
      (List.mapi
         (fun k v -> if k < n_in + n_out && candidate k v then [ k ] else [])
         (Ir.Op.operands op))
  in
  (* Find the smallest hoist depth at which a maximal set of candidates
     fits the hardware; candidates that never fit are dropped. *)
  let fits_at h k =
    Stream_patterns.fits ~is_read:(k < n_in) (resolved_pattern op k ~h)
  in
  let rec pick h =
    if h > max_hoist then None
    else if List.for_all (fits_at h) candidates then Some (h, candidates)
    else pick (h + 1)
  in
  let chosen =
    match pick 0 with
    | Some r -> Some r
    | None ->
      (* Drop candidates that do not fit even at max hoist. *)
      let surviving = List.filter (fits_at max_hoist) candidates in
      let rec pick2 h =
        if h > max_hoist then None
        else if surviving <> [] && List.for_all (fits_at h) surviving then
          Some (h, surviving)
        else pick2 (h + 1)
      in
      pick2 0
  in
  match chosen with
  | None -> ()
  | Some (h, ks) ->
    let ks =
      (* Hardware cap: inputs take precedence (operand order). *)
      List.filteri (fun i _ -> i < Machine_params.num_ssrs) ks
    in
    Ir.Op.set_attr op stream_operands_key (Attr.int_arr ks);
    Ir.Op.set_attr op hoist_key (Attr.Int h)

let pass =
  Pass.make "stream-analysis" (fun m ->
      List.iter analyze (Util.ops_named m Memref_stream.generic_op))
