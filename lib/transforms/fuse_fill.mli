(** Fill fusion (paper §4.4, Table 3 "+ Fuse Fill"): fold the generic
    that zero-initialises an output buffer into the consuming reduction
    generic as an [inits] operand, eliminating the output's remaining
    loads and making it write-only (hence streamable). *)

val pass : Mlc_ir.Pass.t
