(** Shared helpers for the lowering passes. *)

open Mlc_ir

(** Detach the single region of an op for re-attachment to a replacement. *)
val take_region : Ir.op -> Ir.region

(** Rename a block's terminator op in place. *)
val rename_terminator : Ir.block -> to_:string -> unit

(** Clone the non-terminator ops of [src] at the builder, mapping
    operands through [vmap] (old value id -> new value; unmapped values
    pass through). Returns the mapped operands of [src]'s terminator.
    Bodies must be straight-line (no nested regions). *)
val clone_body_ops :
  Ir.block -> Builder.t -> (int, Ir.value) Hashtbl.t -> Ir.value list

(** Emit arith ops computing an affine expression over index values. *)
val emit_affine :
  Builder.t -> dim_value:(int -> Ir.value) -> Affine.expr -> Ir.value

(** All ops of [root] with the given name, in walk order. *)
val ops_named : Ir.op -> string -> Ir.op list

(** Positions of dims with the given iterator kind. *)
val dims_of_kind : Attr.iterator list -> Attr.iterator -> int list

val reduction_dims : Attr.iterator list -> int list
