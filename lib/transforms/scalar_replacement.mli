(** Scalar replacement (paper §3.4, Table 3): mark reduction generics so
    the loop lowering accumulates in SSA values (registers) across the
    reduction dimensions instead of loading/storing the output element
    every iteration. Verifies the enabling property — output maps that
    ignore the reduction dimensions. *)

val attr_key : string

(** Has the generic been marked? Consumed by {!Lower_to_loops}. *)
val is_marked : Mlc_ir.Ir.op -> bool

val pass : Mlc_ir.Pass.t
