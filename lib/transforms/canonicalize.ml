(* Canonicalisation at the arith/scf level: integer constant folding,
   algebraic identities on index arithmetic, and dead pure-op
   elimination. Keeps the address computations produced by
   {!Lower_to_loops} small before RISC-V conversion. *)

open Mlc_ir
open Mlc_dialects

let const_int_of v =
  match Arith.as_constant v with Some (Attr.Int i) -> Some i | _ -> None

let fold_int_binops =
  Rewriter.pattern "fold-int-binop" (fun b op ->
      let fold f =
        match
          (const_int_of (Ir.Op.operand op 0), const_int_of (Ir.Op.operand op 1))
        with
        | Some x, Some y ->
          let c =
            Arith.constant b (Attr.Int (f x y)) (Ir.Value.ty (Ir.Op.result op 0))
          in
          Rewriter.replace_op op [ c ];
          Rewriter.Applied
        | _ -> Rewriter.Declined
      in
      match Ir.Op.name op with
      | "arith.addi" -> fold ( + )
      | "arith.subi" -> fold ( - )
      | "arith.muli" -> fold ( * )
      | _ -> Rewriter.Declined)

let identities =
  Rewriter.pattern "int-identities" (fun _b op ->
      let replace_with v =
        Rewriter.replace_op op [ v ];
        Rewriter.Applied
      in
      match Ir.Op.name op with
      | "arith.addi" -> (
        match (const_int_of (Ir.Op.operand op 0), const_int_of (Ir.Op.operand op 1)) with
        | Some 0, _ -> replace_with (Ir.Op.operand op 1)
        | _, Some 0 -> replace_with (Ir.Op.operand op 0)
        | _ -> Rewriter.Declined)
      | "arith.muli" -> (
        match (const_int_of (Ir.Op.operand op 0), const_int_of (Ir.Op.operand op 1)) with
        | Some 1, _ -> replace_with (Ir.Op.operand op 1)
        | _, Some 1 -> replace_with (Ir.Op.operand op 0)
        | _ -> Rewriter.Declined)
      | _ -> Rewriter.Declined)

(* Erase registered-pure ops whose results are all unused. Constants,
   index arithmetic and dead loads of the lowering all wash out here. *)
let dce =
  Rewriter.pattern "dce" (fun _b op ->
      if
        Op_registry.is_pure (Ir.Op.name op)
        && List.for_all (fun r -> not (Ir.Value.has_uses r)) (Ir.Op.results op)
      then begin
        Rewriter.erase_op op;
        Rewriter.Applied
      end
      else Rewriter.Declined)

let pass =
  Pass.make "canonicalize" (fun m ->
      ignore (Rewriter.rewrite_greedy m [ fold_int_binops; identities; dce ]))
