(* Legalise stream writes before register allocation: the value written
   to an SSR data register must be produced *directly into* that register
   by exactly one FPU instruction in the same block (each write of the
   register pushes one stream element, paper §2.4). When the written
   value is anything else — a function argument, a loop result, a
   multiply-used value, the result of a two-address accumulator op — an
   fmv.d (fsgnj) copy is inserted so the copy becomes the producing
   instruction. *)

open Mlc_ir
open Mlc_riscv

(* Ops whose destination register can be retargeted to the stream
   register without changing other semantics. Two-address ops (vfmac,
   vfsum) are excluded: their destination is tied to the accumulator. *)
let retargetable name =
  Rv.is_fpu_op name
  || List.mem name
       [
         "rv_snitch.vfadd.s"; "rv_snitch.vfsub.s"; "rv_snitch.vfmul.s";
         "rv_snitch.vfmax.s"; "rv_snitch.vfmin.s"; "rv_snitch.vfcpka.s.s";
       ]

let same_block a b =
  match (Ir.Op.parent a, Ir.Op.parent b) with
  | Some x, Some y -> Ir.Block.equal x y
  | _ -> false

let needs_copy (write : Ir.op) =
  let v = Ir.Op.operand write 0 in
  match Ir.Value.def v with
  | Ir.Block_arg _ -> true
  | Ir.Op_result (def, _) ->
    (not (retargetable (Ir.Op.name def)))
    || Ir.Value.num_uses v > 1
    || not (same_block def write)

let legalize (write : Ir.op) =
  if needs_copy write then begin
    let b = Builder.before write in
    let copy = Rv.fmv_d b (Ir.Op.operand write 0) in
    Ir.Op.set_operand write 0 copy
  end

let pass =
  Pass.make "legalize-stream-writes" (fun m ->
      List.iter legalize (Util.ops_named m Rv_snitch.write_op))
