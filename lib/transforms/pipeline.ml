(* Pipeline configurations: the paper's full micro-kernel compiler, the
   baseline flows it is compared against (§4.1, Figure 8), and the
   cumulative ablation stages of Table 3.

   Flag semantics:
   - [streams]: access qualifying operands through SSRs (§3.2);
   - [scalar_replacement]: accumulate reductions in registers (§3.4);
   - [frep]: turn FP-only loops into FREP hardware loops (§3.2);
   - [fuse_fill]: fold output zero-initialisation into the consumer,
     making outputs write-only (§4.4);
   - [unroll_jam]: interleave independent iterations to hide the FPU
     pipeline latency (§3.4);
   - [fma]: contract mul+add chains into fmadd.

   The "clang" and "mlir" flows are documented substitutions for the
   paper's LLVM-based baselines (see DESIGN.md): both lower the same
   linalg input to plain RISC-V loops with explicit memory traffic and no
   Snitch extensions; the "mlir" flavour additionally performs scalar
   replacement, mirroring the affine-scalrep pass of the upstream MLIR
   pipeline. Both reach the paper's reported ~25-42% FPU utilisation
   ceiling on the in-order core. *)

open Mlc_ir
open Mlc_riscv

type flags = {
  streams : bool;
  scalar_replacement : bool;
  frep : bool;
  fuse_fill : bool;
  unroll_jam : bool;
  fma : bool;
  (* plain inner-loop unroll factor; models the LLVM backend's unrolling
     in the baseline flows (1 = off) *)
  unroll_inner : int;
  (* the §3.2 compile-time stream-pattern optimisations (contiguity
     collapse, hardware repeat); off only for the ablation study *)
  pattern_opt : bool;
  (* generic cleanups every real backend performs (CSE, LICM, IV strength
     reduction); off reproduces the paper's truly naive "direct lowering"
     Table 3 baseline *)
  cleanups : bool;
}

let ours =
  {
    streams = true;
    scalar_replacement = true;
    frep = true;
    fuse_fill = true;
    unroll_jam = true;
    fma = true;
    unroll_inner = 1;
    pattern_opt = true;
    cleanups = true;
  }

(* The paper's own direct lowering (the Table 3 "Baseline" row): no
   schedule optimisations, no backend cleanups — addresses recomputed
   from scratch every iteration, exactly what "direct lowering" emits. *)
let baseline =
  {
    streams = false;
    scalar_replacement = false;
    frep = false;
    fuse_fill = false;
    unroll_jam = false;
    fma = true;
    unroll_inner = 1;
    pattern_opt = true;
    cleanups = false;
  }

(* LLVM-backed flows: naive C via Clang (unrolling, fma contraction,
   classical cleanups) and the upstream MLIR pipeline (additionally
   affine scalar replacement). *)
let clang = { baseline with unroll_inner = 8; cleanups = true }
let mlir =
  { baseline with scalar_replacement = true; unroll_inner = 8; cleanups = true }

(* Cumulative ablation stages of Table 3, in paper order. *)
let ablation_stages : (string * flags) list =
  [
    ("Baseline", baseline);
    ("+ Streams", { baseline with streams = true });
    ( "+ Scalar Replacement",
      { baseline with streams = true; scalar_replacement = true } );
    ( "+ FRep",
      { baseline with streams = true; scalar_replacement = true; frep = true } );
    ( "+ Fuse Fill",
      {
        baseline with
        streams = true;
        scalar_replacement = true;
        frep = true;
        fuse_fill = true;
      } );
    ("+ Unroll-and-Jam", ours);
  ]

(* One-line rendering of a flag set, for crash bundles and --json. *)
let describe_flags f =
  let b name v = Printf.sprintf "%s=%b" name v in
  String.concat " "
    [
      b "streams" f.streams;
      b "scalar_replacement" f.scalar_replacement;
      b "frep" f.frep;
      b "fuse_fill" f.fuse_fill;
      b "unroll_jam" f.unroll_jam;
      b "fma" f.fma;
      Printf.sprintf "unroll_inner=%d" f.unroll_inner;
      b "pattern_opt" f.pattern_opt;
      b "cleanups" f.cleanups;
    ]

(* An unrecognised custom flag set degrades straight to [baseline]; that
   substitution used to be silent, hiding e.g. a mistyped ablation flag
   behind baseline numbers. Warn once per distinct flag set (the runner
   consults the lattice eagerly on every run, so an unmemoised warning
   would repeat for every kernel of a bench sweep). Tests redirect the
   hook to capture the diagnostic. *)
let on_custom_fallback : (Mlc_diag.Diag.t -> unit) ref =
  ref (fun d -> prerr_endline (Mlc_diag.Diag.summary d))

let warned_custom : (string, unit) Hashtbl.t = Hashtbl.create 4

let warn_custom_fallback from =
  let key = describe_flags from in
  if not (Hashtbl.mem warned_custom key) then begin
    Hashtbl.add warned_custom key ();
    !on_custom_fallback
      (Mlc_diag.Diag.make ~severity:Mlc_diag.Diag.Warning ~component:"pipeline"
         (Printf.sprintf
            "unrecognised flag set not on the fallback lattice (%s): \
             degradation will fall back to baseline"
            key))
  end

(* The graceful-degradation lattice: each rung drops the optimisation
   most likely to have caused the failure (unroll-and-jam first — it
   multiplies register pressure — then the Snitch extensions) until only
   the direct lowering remains. The list starts at the first rung equal
   to [from] so a run already below the top restarts mid-lattice; an
   unrecognised custom flag set falls straight back to [baseline]. *)
let fallback_lattice (from : flags) : (string * flags) list =
  let rungs =
    [
      ("ours", ours);
      ("ours-unroll_jam", { ours with unroll_jam = false });
      ( "ours-frep-streams",
        { ours with unroll_jam = false; frep = false; streams = false } );
      ("baseline", baseline);
    ]
  in
  let rec from_rung = function
    | [] ->
      (* The named baseline flows are recognised non-lattice starting
         points (they degrade straight to the direct lowering); only a
         flag set matching nothing named anywhere warrants the
         unrecognised-custom warning. *)
      let named =
        if from = clang then Some "clang"
        else if from = mlir then Some "mlir"
        else None
      in
      (match named with
      | Some n -> [ (n, from); ("baseline", baseline) ]
      | None ->
        warn_custom_fallback from;
        [ ("custom", from); ("baseline", baseline) ])
    | (_, f) :: _ as l when f = from -> l
    | _ :: rest -> from_rung rest
  in
  from_rung rungs

(* The target-independent front half: linalg -> structured scf loops,
   with the schedule transforms (scalar replacement, fill fusion,
   unroll-and-jam, stream annotation) and the generic cleanups. Every
   backend lowering starts from this IR; [Backend] pairs it with a
   per-target tail. *)
let front_passes flags =
  List.concat
    [
      [ Linalg_to_stream.pass ];
      (if flags.scalar_replacement then [ Scalar_replacement.pass ] else []);
      (if flags.fuse_fill then [ Fuse_fill.pass ] else []);
      (if flags.unroll_jam then [ Unroll_jam.pass ] else []);
      (if flags.streams then [ Create_streams.pass ] else []);
      [ Lower_to_loops.pass ];
      (if flags.fma then [ Fma_fusion.pass ] else []);
      [ Canonicalize.pass ];
      (if flags.cleanups then [ Cse.pass; Licm.pass; Canonicalize.pass ] else []);
    ]

(* The Snitch backend tail: conversion to the rv dialects, machine-level
   cleanups, SSR/FREP formation. *)
let snitch_lowering flags =
  List.concat
    [
      [ Convert_to_rv.pass flags.pattern_opt; Rv_canonicalize.pass ];
      (if flags.cleanups then
         [ Cse.pass; Licm.pass; Iv_strength_reduce.pass ]
       else []);
      [ Loop_unroll.pass flags.unroll_inner; Rv_canonicalize.pass ];
      (if flags.cleanups then [ Cse.pass ] else []);
      [ Lower_snitch_stream.pass ];
      (if flags.frep then [ Frep_formation.pass ] else []);
      [ Rv_canonicalize.pass; Legalize_stream_writes.pass ];
    ]

let passes flags = front_passes flags @ snitch_lowering flags

(* The pass-list prefix through the pass named [upto], for staged IR
   dumps (snitchc compile-ir --verify-at). Unknown names report the
   available ones so the CLI error can list them. *)
let passes_up_to plist upto =
  if not (List.exists (fun (p : Pass.t) -> p.Pass.name = upto) plist) then
    Error (List.map (fun (p : Pass.t) -> p.Pass.name) plist)
  else begin
    let rec prefix = function
      | [] -> []
      | (p : Pass.t) :: rest ->
        if p.Pass.name = upto then [ p ] else p :: prefix rest
    in
    Ok (prefix plist)
  end

type result = {
  asm : string;
  reports : (string * Mlc_regalloc.Allocator.report) list;
  stats : (string * Asm_emit.stats) list;
}

(* Run the full compilation on a module holding linalg-level functions,
   in place, returning the assembly and per-function statistics.
   [verify_each] arms both the structural verifier and the Mlc_verify
   bounds/race checkpoint after every pass; [checkpoint] substitutes the
   per-pass analysis hook (tests use it to collect verdicts); [passes]
   substitutes the whole pass list (backends compose their own via
   [Backend.passes_for]). *)
let compile ?(flags = ours) ?(verify_each = true) ?checkpoint ?(lint = false)
    ?passes:pass_list (m : Ir.op) : result =
  let checkpoint =
    match checkpoint with
    | Some _ as cp -> cp
    | None -> if verify_each then Some Mlc_verify.Verify.checkpoint else None
  in
  let pass_list =
    match pass_list with Some p -> p | None -> passes flags
  in
  Pass.run ~verify_each ?checkpoint m pass_list;
  let fns = Ir.collect m (fun op -> Ir.Op.name op = Rv_func.func_op) in
  let reports =
    List.map
      (fun fn -> (Rv_func.name fn, Mlc_regalloc.Remat.allocate_with_remat fn))
      fns
  in
  if verify_each then Verifier.verify m;
  let stats = List.map (fun fn -> (Rv_func.name fn, Asm_emit.func_stats fn)) fns in
  if lint then (
    match Mlc_analysis.Lint.error_of (Mlc_analysis.Lint.check_module m) with
    | Some d -> raise (Mlc_diag.Diag.Diagnostic d)
    | None -> ());
  { asm = Asm_emit.emit_module m; reports; stats }
