(** Induction-variable strength reduction on innermost rv_scf loops:
    iv-times-constant becomes a loop-carried value bumped by addi,
    turning per-iteration address multiplies into adds (as the LLVM
    backend behind the paper's baselines would). *)

val pass : Mlc_ir.Pass.t
