(** Legalise stream writes before register allocation: the written value
    must be produced directly into the SSR data register by exactly one
    same-block FPU instruction; anything else (loop results, arguments,
    two-address accumulators, multi-use values) gets an fmv.d copy as
    the producing instruction. *)

val pass : Mlc_ir.Pass.t
