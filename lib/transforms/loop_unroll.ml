(* Classic inner-loop unrolling at the RISC-V level: replicate the body
   [u] times (chaining loop-carried values through the copies, offsetting
   induction-variable uses by k*step) and multiply the step. Trip counts
   with no usable divisor (primes, non-multiples of the factor) are
   split into an unrolled main loop plus a scalar epilogue loop covering
   the remaining trips.

   This is NOT the paper's unroll-and-jam (which interleaves independent
   iterations at the memref_stream level); it models the plain unrolling
   the LLVM backend applies in the Clang/MLIR baseline flows (§4.4: "Max
   Pool benefits the most due to unrolling of some loops ... by the LLVM
   backend"). Evaluation order is preserved exactly. *)

open Mlc_ir
open Mlc_riscv

let const_li v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Rv.li_op ->
    Some (Attr.get_int (Ir.Op.attr_exn op "imm"))
  | _ -> None

let is_innermost loop =
  Ir.find_first loop (fun op -> Ir.Op.name op = Rv_scf.for_op) = None

(* Clone [loop]'s body [u] times into a fresh rv_scf.for over
   [lb_v, ub_v) with step [step * u], inserted before [anchor]. The
   caller guarantees the range holds a multiple of [u] trips. *)
let build_unrolled ~anchor (loop : Ir.op) ~lb_v ~ub_v ~iters ~step ~u =
  let old_body = Rv_scf.body loop in
  let old_iv = Rv_scf.induction_var loop in
  let iter_tys = List.map Ir.Value.ty (Rv_scf.iter_args loop) in
  let region = Ir.Region.single_block ~args:(Ty.Int_reg None :: iter_tys) () in
  let body = Ir.Region.only_block region in
  let new_loop =
    Ir.Op.create ~regions:[ region ]
      ~attrs:[ ("step", Attr.Int (step * u)) ]
      ~results:iter_tys Rv_scf.for_op
      ([ lb_v; ub_v ] @ iters)
  in
  Ir.Op.insert_before ~anchor new_loop;
  let bb = Builder.at_end body in
  let new_iv = Ir.Block.arg body 0 in
  let cur = ref (List.tl (Ir.Block.args body)) in
  for k = 0 to u - 1 do
    let vmap = Hashtbl.create 16 in
    let iv_k = if k = 0 then new_iv else Rv.addi bb new_iv (k * step) in
    Hashtbl.replace vmap (Ir.Value.id old_iv) iv_k;
    List.iter2
      (fun old_arg v -> Hashtbl.replace vmap (Ir.Value.id old_arg) v)
      (Rv_scf.iter_args loop) !cur;
    cur := Util.clone_body_ops old_body bb vmap
  done;
  Builder.create0 bb Rv_scf.yield_op !cur;
  new_loop

let replace_with (loop : Ir.op) (results : Ir.value list) =
  List.iter2
    (fun r v -> Ir.replace_all_uses r ~with_:v)
    (Ir.Op.results loop) results;
  Ir.Op.erase loop

let unroll_loop requested (loop : Ir.op) =
  let step = Rv_scf.step loop in
  match (const_li (Rv_scf.lb loop), const_li (Rv_scf.ub loop)) with
  | Some lb, Some ub when is_innermost loop && step > 0 && (ub - lb) mod step = 0 ->
    let trips = (ub - lb) / step in
    (* Largest divisor of the trip count within the requested factor. *)
    let rec divisor u = if u < 2 then 1 else if trips mod u = 0 then u else divisor (u - 1) in
    let d = divisor (min requested trips) in
    let iters = Rv_scf.iter_operands loop in
    if d >= 2 then begin
      (* The trip count divides evenly: a single unrolled loop. *)
      let new_loop =
        build_unrolled ~anchor:loop loop ~lb_v:(Rv_scf.lb loop)
          ~ub_v:(Rv_scf.ub loop) ~iters ~step ~u:d
      in
      replace_with loop (Ir.Op.results new_loop)
    end
    else begin
      (* No usable divisor (e.g. a prime trip count): unroll by the
         requested factor over the largest multiple of it and mop up
         the remaining trips in a scalar epilogue loop that chains the
         main loop's iteration values. *)
      let u = min requested trips in
      if u >= 2 then begin
        let rem = trips mod u in
        let split = lb + ((trips - rem) * step) in
        let split_v = Rv.li (Builder.before loop) split in
        let main =
          build_unrolled ~anchor:loop loop ~lb_v:(Rv_scf.lb loop)
            ~ub_v:split_v ~iters ~step ~u
        in
        let epilogue =
          build_unrolled ~anchor:loop loop ~lb_v:split_v
            ~ub_v:(Rv_scf.ub loop) ~iters:(Ir.Op.results main) ~step ~u:1
        in
        replace_with loop (Ir.Op.results epilogue)
      end
    end
  | _ -> ()

let pass u =
  Pass.make (Printf.sprintf "loop-unroll-%d" u) (fun m ->
      if u > 1 then
        List.iter (unroll_loop u) (Util.ops_named m Rv_scf.for_op))
