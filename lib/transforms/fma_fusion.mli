(** Fuse single-use multiply-add chains into [arith.fmaf], matching the
    FPU's fmadd (2 FLOPs/cycle peak, paper §4.1). *)

val pass : Mlc_ir.Pass.t
