(* Conversion from the high-level dialects (func, scf, arith, memref,
   memref_stream regions) to the RISC-V dialects (rv_func, rv_scf, rv,
   snitch_stream) — the entry into the backend proper (paper §3.1, §3.4).

   - values become register-typed (float -> !rv.freg, everything else ->
     !rv.reg); memrefs become base-pointer registers;
   - memref accesses become explicit address arithmetic plus fld/fsd;
   - streaming regions become snitch_stream.streaming_region ops with
     fully-resolved byte-stride patterns (including the contiguity and
     repeat optimisations of §3.2);
   - loop iteration inits are copied into fresh registers so the
     allocator can unify loop-carried values without conflicts. *)

open Mlc_ir
open Mlc_dialects
open Mlc_riscv

let fail fmt = Format.kasprintf failwith fmt

type cctx = {
  vmap : (int, Ir.value) Hashtbl.t;
  (* original (pre-conversion) type of each converted value, for
     precision selection *)
  old_ty : (int, Ty.t) Hashtbl.t;
  (* apply the §3.2 stream-pattern optimisations *)
  pattern_opt : bool;
}

let cv ctx v =
  match Hashtbl.find_opt ctx.vmap (Ir.Value.id v) with
  | Some v' -> v'
  | None -> fail "convert_to_rv: unconverted value %%%d" (Ir.Value.id v)

let bind ctx old_v new_v =
  Hashtbl.replace ctx.vmap (Ir.Value.id old_v) new_v;
  Hashtbl.replace ctx.old_ty (Ir.Value.id new_v) (Ir.Value.ty old_v)

let prec_of ctx v =
  (* Original element precision of a converted float value. *)
  match Hashtbl.find_opt ctx.old_ty (Ir.Value.id v) with
  | Some Ty.F32 -> `S
  | Some Ty.F16 -> `S
  | _ -> `D

let float_binop_name name prec =
  let suffix = match prec with `S -> "s" | `D -> "d" in
  match name with
  | "arith.addf" -> "rv.fadd." ^ suffix
  | "arith.subf" -> "rv.fsub." ^ suffix
  | "arith.mulf" -> "rv.fmul." ^ suffix
  | "arith.divf" -> "rv.fdiv." ^ suffix
  | "arith.maximumf" -> "rv.fmax." ^ suffix
  | "arith.minimumf" -> "rv.fmin." ^ suffix
  | "arith.fmaf" -> "rv.fmadd." ^ suffix
  | _ -> fail "not a float binop: %s" name

(* Copy a loop-iteration init into a fresh register so loop unification
   never conflicts with other uses of the same value. *)
let copy_for_iteration bb v =
  match Ir.Value.ty v with
  | Ty.Float_reg _ -> Rv.fmv_d bb v
  | Ty.Int_reg _ -> Rv.mv bb v
  | t -> fail "cannot copy loop init of type %s" (Ty.to_string t)

(* Emit address computation: base register + element-index terms scaled
   by byte strides. Returns (address register, constant byte offset). *)
let emit_address ctx bb base_old indices_old =
  let base = cv ctx base_old in
  let mty = Ir.Value.ty base_old in
  let strides = Stream_patterns.mem_strides_of mty in
  let esz = Ty.byte_width (Ty.memref_elem mty) in
  let addr = ref base in
  let const_off = ref 0 in
  List.iter2
    (fun idx_old stride ->
      let scale = stride * esz in
      if scale <> 0 then
        match Arith.as_constant idx_old with
        | Some (Attr.Int c) -> const_off := !const_off + (c * scale)
        | _ ->
          let idx = cv ctx idx_old in
          let term =
            if scale = 1 then idx
            else
              let s = Rv.li bb scale in
              Rv.mul bb idx s
          in
          addr := Rv.add bb !addr term)
    indices_old strides;
  (!addr, !const_off)

let rec convert_ops ctx (src : Ir.block) (bb : Builder.t) =
  Ir.Block.iter_ops src (fun op -> convert_op ctx bb op)

and convert_op ctx bb op =
  let name = Ir.Op.name op in
  let res i = Ir.Op.result op i in
  let operand i = Ir.Op.operand op i in
  match name with
  | "arith.constant" -> (
    match (Ir.Op.attr_exn op "value", Ir.Value.ty (res 0)) with
    | Attr.Int i, _ -> bind ctx (res 0) (Rv.li bb i)
    | Attr.Float f, Ty.F64 ->
      if f = 0.0 then
        bind ctx (res 0) (Rv.fcvt_d_w bb (Rv.get_register bb "zero"))
      else
        let bits = Rv.li_bits bb f in
        bind ctx (res 0) (Rv.fmv_d_x bb bits)
    | Attr.Float f, Ty.F32 ->
      if f = 0.0 then
        bind ctx (res 0)
          (Builder.create1 bb ~result:Rv.float_reg Rv.fcvt_s_w_op
             [ Rv.get_register bb "zero" ])
      else
        let bits = Rv.li bb (Int32.to_int (Int32.bits_of_float f)) in
        bind ctx (res 0)
          (Builder.create1 bb ~result:Rv.float_reg Rv.fmv_w_x_op [ bits ])
    | a, t ->
      fail "cannot convert constant %s : %s" (Attr.to_string a) (Ty.to_string t))
  | "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf"
  | "arith.maximumf" | "arith.minimumf" ->
    let rv_name = float_binop_name name (prec_of ctx (cv ctx (operand 0))) in
    bind ctx (res 0) (Rv.fbinary bb rv_name (cv ctx (operand 0)) (cv ctx (operand 1)))
  | "arith.fmaf" ->
    let rv_name = float_binop_name name (prec_of ctx (cv ctx (operand 0))) in
    bind ctx (res 0)
      (Rv.fternary bb rv_name (cv ctx (operand 0)) (cv ctx (operand 1))
         (cv ctx (operand 2)))
  | "arith.addi" -> bind ctx (res 0) (Rv.add bb (cv ctx (operand 0)) (cv ctx (operand 1)))
  | "arith.subi" -> bind ctx (res 0) (Rv.sub bb (cv ctx (operand 0)) (cv ctx (operand 1)))
  | "arith.muli" -> bind ctx (res 0) (Rv.mul bb (cv ctx (operand 0)) (cv ctx (operand 1)))
  | "memref.load" ->
    let indices = List.tl (Ir.Op.operands op) in
    let addr, off = emit_address ctx bb (operand 0) indices in
    let elem = Ty.memref_elem (Ir.Value.ty (operand 0)) in
    let load_name = if Ty.equal elem Ty.F32 then Rv.flw_op else Rv.fld_op in
    bind ctx (res 0) (Rv.fload bb load_name ~offset:off addr)
  | "memref.store" ->
    let indices = List.filteri (fun i _ -> i >= 2) (Ir.Op.operands op) in
    let addr, off = emit_address ctx bb (operand 1) indices in
    let elem = Ty.memref_elem (Ir.Value.ty (operand 1)) in
    let store_name = if Ty.equal elem Ty.F32 then Rv.fsw_op else Rv.fsd_op in
    Rv.fstore bb store_name ~offset:off (cv ctx (operand 0)) addr
  | "scf.for" -> convert_scf_for ctx bb op
  | "rvv.setvl" ->
    Rvv.vsetvli bb ~sew:(Rvv_ops.sew_of op) (cv ctx (operand 0))
  | "rvv.load" | "rvv.store" ->
    let memref = operand 0 in
    let indices = List.tl (Ir.Op.operands op) in
    let addr, off = emit_address ctx bb memref indices in
    let addr = if off = 0 then addr else Rv.addi bb addr off in
    let sew =
      if Ty.equal (Ty.memref_elem (Ir.Value.ty memref)) Ty.F32 then 32 else 64
    in
    if name = "rvv.load" then Rvv.vle bb ~vd:(Rvv_ops.vd_of op) ~sew addr
    else Rvv.vse bb ~vs:(Rvv_ops.vs_of op) ~sew addr
  | "rvv.splat" -> Rvv.vfmv_vf bb ~vd:(Rvv_ops.vd_of op) (cv ctx (operand 0))
  | "rvv.copy" ->
    Rvv.vmv_vv bb ~vd:(Rvv_ops.vd_of op) ~vs:(Rvv_ops.vs_of op)
  | "rvv.binary_vv" ->
    Rvv.vfvv bb ~op:(Rvv_ops.op_of op) ~vd:(Rvv_ops.vd_of op)
      ~vs1:(Rvv_ops.vs1_of op) ~vs2:(Rvv_ops.vs2_of op)
  | "rvv.binary_vf" ->
    Rvv.vfvf bb ~op:(Rvv_ops.op_of op) ~vd:(Rvv_ops.vd_of op)
      ~vs2:(Rvv_ops.vs2_of op)
      (cv ctx (operand 0))
  | "rvv.macc_vf" ->
    Rvv.vfmacc_vf bb ~vd:(Rvv_ops.vd_of op) ~vs2:(Rvv_ops.vs2_of op)
      (cv ctx (operand 0))
  | "rvv.macc_vv" ->
    Rvv.vfmacc_vv bb ~vd:(Rvv_ops.vd_of op) ~vs1:(Rvv_ops.vs1_of op)
      ~vs2:(Rvv_ops.vs2_of op)
  | "memref_stream.read" ->
    (* Each architectural read of a stream register pops one element, so
       a value the body consumes more than once must be popped exactly
       once and copied into an ordinary FP register. *)
    let popped = Rv_snitch.read bb (cv ctx (operand 0)) in
    bind ctx (res 0)
      (if Ir.Value.num_uses (res 0) > 1 then Rv.fmv_d bb popped else popped)
  | "memref_stream.write" ->
    Rv_snitch.write bb (cv ctx (operand 0)) (cv ctx (operand 1))
  | "memref_stream.streaming_region" ->
    convert_streaming_region ~pattern_opt:ctx.pattern_opt ctx bb op
  | "func.return" -> Rv_func.return_ bb []
  | other -> fail "convert_to_rv: unhandled op %s" other

and convert_scf_for ctx bb op =
  let lb = cv ctx (Scf.lb op) in
  let ub = cv ctx (Scf.ub op) in
  let step =
    match Arith.as_constant (Scf.step op) with
    | Some (Attr.Int s) -> s
    | _ -> fail "convert_to_rv: scf.for step must be a constant"
  in
  let iter_inits =
    List.map (fun v -> copy_for_iteration bb (cv ctx v)) (Scf.iter_operands op)
  in
  let old_body = Scf.body op in
  let region =
    Ir.Region.single_block
      ~args:(Ty.Int_reg None :: List.map Ir.Value.ty iter_inits)
      ()
  in
  let body = Ir.Region.only_block region in
  let new_for =
    Builder.create bb ~regions:[ region ]
      ~attrs:[ ("step", Attr.Int step) ]
      ~results:(List.map Ir.Value.ty iter_inits)
      Rv_scf.for_op
      ([ lb; ub ] @ iter_inits)
  in
  (* Bind induction variable and iteration args, then convert the body. *)
  bind ctx (Scf.induction_var op) (Ir.Block.arg body 0);
  List.iteri
    (fun i old_arg -> bind ctx old_arg (Ir.Block.arg body (i + 1)))
    (Scf.iter_args op);
  let inner = Builder.at_end body in
  let old_yield = Scf.yield_of op in
  Ir.Block.iter_ops old_body (fun o ->
      if not (Ir.Op.equal o old_yield) then convert_op ctx inner o);
  Builder.create0 inner Rv_scf.yield_op
    (List.map (cv ctx) (Ir.Op.operands old_yield));
  List.iteri (fun i r -> bind ctx r (Ir.Op.result new_for i)) (Ir.Op.results op)

and convert_streaming_region ?(pattern_opt = true) ctx bb op =
  let streams = Memref_stream.streamed_operands op in
  let offsets = Memref_stream.offset_operands op in
  let patterns = Memref_stream.patterns op in
  let n_in = Memref_stream.num_ins op in
  (* Resolve each index pattern to byte strides over the operand's
     layout; apply the §3.2 pattern optimisations. *)
  let resolved =
    List.map2
      (fun (p : Attr.index_pattern) v ->
        let mty = Ir.Value.ty v in
        let resolved =
          Stream_patterns.resolve ~bounds:p.Attr.ip_ub ~map:p.Attr.ip_map
            ~mem_strides:(Stream_patterns.mem_strides_of mty)
            ~elem_size:(Ty.byte_width (Ty.memref_elem mty))
        in
        if pattern_opt then Stream_patterns.optimize resolved else resolved)
      patterns streams
  in
  (* Base pointers: converted memref base + constant map offset +
     runtime hoisted offset (in elements, scaled here). *)
  let pointers =
    List.mapi
      (fun k v ->
        let base = cv ctx v in
        let esz = Ty.byte_width (Ty.memref_elem (Ir.Value.ty v)) in
        let p = List.nth resolved k in
        let base =
          match List.nth_opt offsets k with
          | None -> base
          | Some off_idx -> (
            match Arith.as_constant off_idx with
            | Some (Attr.Int 0) -> base
            | Some (Attr.Int c) -> Rv.addi bb base (c * esz)
            | _ ->
              let scaled =
                if esz = 1 then cv ctx off_idx
                else Rv.mul bb (cv ctx off_idx) (Rv.li bb esz)
              in
              Rv.add bb base scaled)
        in
        if p.Stream_patterns.offset = 0 then base
        else Rv.addi bb base p.Stream_patterns.offset)
      streams
  in
  let hw_patterns =
    List.map
      (fun (p : Stream_patterns.resolved) ->
        { Attr.ub = p.Stream_patterns.ub; strides = p.Stream_patterns.strides })
      resolved
  in
  let in_ptrs = List.filteri (fun i _ -> i < n_in) pointers in
  let out_ptrs = List.filteri (fun i _ -> i >= n_in) pointers in
  (* Scalar streams serve one element per access, so the stream element
     width is the memref element width (4 bytes for f32). *)
  let widths =
    List.map (fun v -> Ty.byte_width (Ty.memref_elem (Ir.Value.ty v))) streams
  in
  let old_body = Memref_stream.body op in
  ignore
    (Snitch_stream.streaming_region bb ~patterns:hw_patterns ~widths
       ~ins:in_ptrs ~outs:out_ptrs (fun inner stream_args ->
         List.iteri
           (fun i old_arg -> bind ctx old_arg (List.nth stream_args i))
           (Ir.Block.args old_body);
         convert_ops ctx old_body inner))

(* Convert one func.func into an rv_func.func inserted right before it;
   the original is erased. *)
let convert_func ?(pattern_opt = true) (fn : Ir.op) =
  let old_entry = Func.body fn in
  let kinds =
    List.map
      (fun v ->
        match Ir.Value.ty v with
        | Ty.F16 | Ty.F32 | Ty.F64 -> Reg.Float_kind
        | _ -> Reg.Int_kind)
      (Ir.Block.args old_entry)
  in
  let b = Builder.before fn in
  let _new_fn, entry = Rv_func.func b ~name:(Func.name fn) ~args:kinds in
  let ctx =
    { vmap = Hashtbl.create 128; old_ty = Hashtbl.create 128; pattern_opt }
  in
  List.iteri
    (fun i old_arg -> bind ctx old_arg (Ir.Block.arg entry i))
    (Ir.Block.args old_entry);
  convert_ops ctx old_entry (Builder.at_end entry);
  Ir.Op.erase fn

let pass pattern_opt =
  Pass.make "convert-to-rv" (fun m ->
      List.iter (convert_func ~pattern_opt) (Util.ops_named m Func.func_op))
