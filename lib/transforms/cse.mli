(** Block-local common-subexpression elimination for pure ops
    (commutative-aware). Register-copy ops are never merged: they exist
    to give loop-carried values private registers. *)

val pass : Mlc_ir.Pass.t
