(* Peephole cleanups at the RISC-V level (paper §3.2: "simple peephole
   rewrites for custom optimizations"):

   - strength reduction: multiplication by a power-of-two li becomes a
     shift; addition of a small li becomes addi;
   - address folding: loads/stores whose base is an addi fold the
     constant into their offset;
   - constant folding of integer chains and dead-code elimination of
     pure ops. *)

open Mlc_ir
open Mlc_riscv

let const_li v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Rv.li_op ->
    Some (Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "imm"))
  | _ -> None

let log2_exact n =
  let rec go i = if 1 lsl i = n then Some i else if 1 lsl i > n then None else go (i + 1) in
  if n <= 0 then None else go 0

let fits_imm12 c = c >= -2048 && c <= 2047

let strength_reduce =
  Rewriter.pattern "rv-strength-reduce" (fun b op ->
      match Ir.Op.name op with
      | "rv.mul" -> (
        let try_shift x c =
          match log2_exact c with
          | Some 0 ->
            Rewriter.replace_op op [ x ];
            Rewriter.Applied
          | Some sh ->
            let shifted = Rv.slli b x sh in
            Rewriter.replace_op op [ shifted ];
            Rewriter.Applied
          | None -> Rewriter.Declined
        in
        match (const_li (Ir.Op.operand op 0), const_li (Ir.Op.operand op 1)) with
        | _, Some c -> try_shift (Ir.Op.operand op 0) c
        | Some c, _ -> try_shift (Ir.Op.operand op 1) c
        | _ -> Rewriter.Declined)
      | "rv.add" -> (
        let try_addi x c =
          if fits_imm12 c then begin
            let a = Rv.addi b x c in
            Rewriter.replace_op op [ a ];
            Rewriter.Applied
          end
          else Rewriter.Declined
        in
        match (const_li (Ir.Op.operand op 0), const_li (Ir.Op.operand op 1)) with
        | _, Some c -> try_addi (Ir.Op.operand op 0) c
        | Some c, _ -> try_addi (Ir.Op.operand op 1) c
        | _ -> Rewriter.Declined)
      | _ -> Rewriter.Declined)

let fold_const_chains =
  Rewriter.pattern "rv-fold-consts" (fun b op ->
      let fold2 f =
        match (const_li (Ir.Op.operand op 0), const_li (Ir.Op.operand op 1)) with
        | Some x, Some y ->
          Rewriter.replace_op op [ Rv.li b (f x y) ];
          Rewriter.Applied
        | _ -> Rewriter.Declined
      in
      match Ir.Op.name op with
      | "rv.add" -> fold2 ( + )
      | "rv.sub" -> fold2 ( - )
      | "rv.mul" -> fold2 ( * )
      | "rv.addi" -> (
        match const_li (Ir.Op.operand op 0) with
        | Some x ->
          Rewriter.replace_op op
            [ Rv.li b (x + Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "imm")) ];
          Rewriter.Applied
        | None -> Rewriter.Declined)
      | "rv.slli" -> (
        match const_li (Ir.Op.operand op 0) with
        | Some x ->
          Rewriter.replace_op op
            [ Rv.li b (x lsl Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "imm")) ];
          Rewriter.Applied
        | None -> Rewriter.Declined)
      | _ -> Rewriter.Declined)

(* Reassociate add-over-addi so constants bubble outward and eventually
   fold into load/store offsets: add(x, addi(y, c)) -> addi(add(x, y), c).
   Unrolled loop bodies rely on this to share one base address across
   copies. *)
let reassociate =
  Rewriter.pattern "rv-reassociate" (fun b op ->
      if Ir.Op.name op <> Rv.add_op then Rewriter.Declined
      else
        let try_side x y =
          match Ir.Value.defining_op y with
          | Some def when Ir.Op.name def = Rv.addi_op ->
            let c = Mlc_ir.Attr.get_int (Ir.Op.attr_exn def "imm") in
            let base_sum = Rv.add b x (Ir.Op.operand def 0) in
            let folded = Rv.addi b base_sum c in
            Rewriter.replace_op op [ folded ];
            Rewriter.Applied
          | _ -> Rewriter.Declined
        in
        match try_side (Ir.Op.operand op 0) (Ir.Op.operand op 1) with
        | Rewriter.Applied -> Rewriter.Applied
        | Rewriter.Declined -> try_side (Ir.Op.operand op 1) (Ir.Op.operand op 0))

(* Collapse addi chains: addi(addi(x, c1), c2) -> addi(x, c1 + c2) when
   the inner addi has no other user. *)
let fold_addi_chain =
  Rewriter.pattern "rv-fold-addi-chain" (fun b op ->
      if Ir.Op.name op <> Rv.addi_op then Rewriter.Declined
      else
        match Ir.Value.defining_op (Ir.Op.operand op 0) with
        | Some inner
          when Ir.Op.name inner = Rv.addi_op
               && Ir.Value.num_uses (Ir.Op.result inner 0) = 1 ->
          let c1 = Mlc_ir.Attr.get_int (Ir.Op.attr_exn inner "imm") in
          let c2 = Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "imm") in
          if fits_imm12 (c1 + c2) then begin
            let merged = Rv.addi b (Ir.Op.operand inner 0) (c1 + c2) in
            Rewriter.replace_op op [ merged ];
            Rewriter.Applied
          end
          else Rewriter.Declined
        | _ -> Rewriter.Declined)

(* Fold addi-computed bases into load/store offsets. *)
let fold_addresses =
  Rewriter.pattern "rv-fold-address" (fun _b op ->
      let fold base_idx =
        let base = Ir.Op.operand op base_idx in
        match Ir.Value.defining_op base with
        | Some def when Ir.Op.name def = Rv.addi_op ->
          let c = Mlc_ir.Attr.get_int (Ir.Op.attr_exn def "imm") in
          let off = Mlc_ir.Attr.get_int (Ir.Op.attr_exn op "offset") in
          if fits_imm12 (off + c) then begin
            Ir.Op.set_operand op base_idx (Ir.Op.operand def 0);
            Ir.Op.set_attr op "offset" (Mlc_ir.Attr.Int (off + c));
            Rewriter.Applied
          end
          else Rewriter.Declined
        | _ -> Rewriter.Declined
      in
      match Ir.Op.name op with
      | "rv.lw" | "rv.ld" | "rv.flw" | "rv.fld" -> fold 0
      | "rv.sw" | "rv.sd" | "rv.fsw" | "rv.fsd" -> fold 1
      | _ -> Rewriter.Declined)

let dce =
  Rewriter.pattern "rv-dce" (fun _b op ->
      if
        Op_registry.is_pure (Ir.Op.name op)
        && List.for_all (fun r -> not (Ir.Value.has_uses r)) (Ir.Op.results op)
      then begin
        Rewriter.erase_op op;
        Rewriter.Applied
      end
      else Rewriter.Declined)

let pass =
  Pass.make "rv-canonicalize" (fun m ->
      ignore
        (Rewriter.rewrite_greedy m
           [
             fold_const_chains; strength_reduce; reassociate; fold_addi_chain;
             fold_addresses; dce;
           ]))
