(** Peephole cleanups at the RISC-V level (paper §3.2): strength
    reduction (mul-by-power-of-two to shift, add-of-constant to addi),
    add/addi reassociation, addi-chain collapsing, folding addi bases
    into load/store offsets, constant folding and DCE. *)

val pass : Mlc_ir.Pass.t
