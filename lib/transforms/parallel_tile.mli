(** Parallel tiling for the multi-core Snitch cluster: wrap a
    linalg-level kernel in an [scf.forall] of per-core instances,
    replacing each partitioned function argument with a
    [cluster.slice] of the thread's contiguous row block. See the
    implementation header for the partitionability rules. *)

open Mlc_ir

(** The kernel cannot be row-partitioned (overlapping window maps, no
    partitionable output, unsupported ops, …); carries the reason. *)
exception Not_partitionable of string

type plan = {
  threads : int;  (** forall instances = active cluster cores *)
  rows : int;  (** total extent of the partitioned leading dimension *)
  partitioned : bool array;  (** per function argument: sliced or shared *)
}

(** Pure analysis: how [tile] would partition [fn_name] over [cores]
    cores. Raises {!Not_partitionable}. *)
val plan_of : cores:int -> Ir.op -> fn_name:string -> plan

(** Apply the transform to [fn_name] inside module [m], in place;
    returns the plan. Raises {!Not_partitionable}. *)
val tile : cores:int -> Ir.op -> fn_name:string -> plan

(** Pipeline form: tile every function in the module. *)
val pass : cores:int -> Pass.t
