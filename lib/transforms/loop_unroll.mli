(** Plain inner-loop unrolling at the RISC-V level (NOT the paper's
    unroll-and-jam): replicate the body, chaining loop-carried values and
    offsetting induction uses, preserving evaluation order exactly.
    Models the LLVM backend's unrolling in the baseline flows (§4.4). *)

(** [pass u] unrolls innermost constant-trip loops by the largest divisor
    of the trip count within [u]; [pass 1] is the identity. *)
val pass : int -> Mlc_ir.Pass.t
