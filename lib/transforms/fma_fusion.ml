(* Fuse multiply-add chains into arith.fmaf, matching the FPU's fmadd
   instruction (2 FLOPs/cycle peak on Snitch, paper §4.1). Applied
   greedily to addf(mulf(a, b), c) / addf(c, mulf(a, b)) where the
   multiply has no other user. *)

open Mlc_ir
open Mlc_dialects

let single_use_mulf v =
  match Ir.Value.defining_op v with
  | Some op when Ir.Op.name op = Arith.mulf_op && Ir.Value.num_uses v = 1 ->
    Some op
  | _ -> None

let pattern =
  Rewriter.pattern "fuse-fma" (fun b op ->
      if Ir.Op.name op <> Arith.addf_op then Rewriter.Declined
      else
        let lhs = Ir.Op.operand op 0 and rhs = Ir.Op.operand op 1 in
        let apply mul_op addend =
          let a = Ir.Op.operand mul_op 0 and x = Ir.Op.operand mul_op 1 in
          let fma = Arith.fmaf b a x addend in
          Rewriter.replace_op op [ fma ];
          Rewriter.erase_op mul_op;
          Rewriter.Applied
        in
        match single_use_mulf lhs with
        | Some mul_op -> apply mul_op rhs
        | None -> (
          match single_use_mulf rhs with
          | Some mul_op -> apply mul_op lhs
          | None -> Rewriter.Declined))

let pass =
  Pass.make "fma-fusion" (fun m -> ignore (Rewriter.rewrite_greedy m [ pattern ]))
