(* Block-local common-subexpression elimination for pure operations.
   Constants and address arithmetic produced by the loop lowering
   otherwise occupy one register each; the classical backends the paper
   compares against (LLVM) perform this folding, so the baseline flows
   need it for a fair register-pressure comparison. *)

open Mlc_ir

let attr_key attrs =
  attrs
  |> List.map (fun (k, v) -> k ^ "=" ^ Attr.to_string v)
  |> List.sort String.compare
  |> String.concat ";"

(* Commutative ops get a canonical operand order in the key. *)
let commutative =
  [ "rv.add"; "rv.mul"; "rv.and"; "rv.or"; "rv.xor"; "arith.addi";
    "arith.muli"; "arith.addf"; "arith.mulf" ]

let op_key op =
  let ids = List.map Ir.Value.id (Ir.Op.operands op) in
  let ids = if List.mem (Ir.Op.name op) commutative then List.sort compare ids else ids in
  Printf.sprintf "%s(%s){%s}:%s" (Ir.Op.name op)
    (String.concat "," (List.map string_of_int ids))
    (attr_key (Ir.Op.attrs op))
    (String.concat ","
       (List.map (fun v -> Ty.to_string (Ir.Value.ty v)) (Ir.Op.results op)))

(* Register-to-register copies exist to give loop-carried values private
   registers (see Convert_to_rv.copy_for_iteration); merging them would
   re-introduce the very conflicts they prevent. *)
let never_cse = [ "rv.mv"; "rv.fmv.d" ]

let run_on_block (block : Ir.block) =
  let seen = Hashtbl.create 32 in
  Ir.Block.iter_ops block (fun op ->
      if
        Op_registry.is_pure (Ir.Op.name op)
        && (not (List.mem (Ir.Op.name op) never_cse))
        && Ir.Op.regions op = [] && Ir.Op.num_results op = 1
      then begin
        let key = op_key op in
        match Hashtbl.find_opt seen key with
        | Some earlier ->
          Ir.replace_all_uses (Ir.Op.result op 0) ~with_:(Ir.Op.result earlier 0);
          Ir.Op.erase op
        | None -> Hashtbl.replace seen key op
      end)

let run_on root =
  Ir.walk_incl root (fun op ->
      List.iter
        (fun (r : Ir.region) -> List.iter run_on_block (Ir.Region.blocks r))
        (Ir.Op.regions op))

let pass = Pass.make "cse" run_on
