(* Materialise snitch_stream.streaming_region ops into the explicit SSR
   configuration sequence (li + scfgwi writes per the assembler contract
   in DESIGN.md), stream enable/disable CSR ops, and the inlined body.
   Runs before register allocation so the configuration code competes for
   registers like any other code, and so the SSR data registers appear in
   the IR for the allocator's exclusion pass (paper §3.3).

   A trailing zero-stride dimension of a read pattern becomes the
   hardware repeat count — the paper's optimisation for repeated accesses
   to the same address (§3.2 d). *)

open Mlc_ir
open Mlc_riscv

let fail fmt = Format.kasprintf failwith fmt

let lower_region (op : Ir.op) =
  let patterns = Snitch_stream.patterns op in
  let widths = Snitch_stream.widths op in
  let n_in = Snitch_stream.num_ins op in
  let bb = Builder.before op in
  List.iteri
    (fun dm (p : Attr.stride_pattern) ->
      let is_read = dm < n_in in
      let resolved =
        { Stream_patterns.ub = p.Attr.ub; strides = p.Attr.strides; offset = 0 }
      in
      let repeat, body_pattern =
        if is_read then Stream_patterns.split_repeat resolved
        else (0, resolved)
      in
      (* Hardware dims are innermost-first; patterns store outermost
         first. A fully-collapsed (scalar) pattern still needs one dim. *)
      let dims =
        match
          List.rev
            (List.combine body_pattern.Stream_patterns.ub
               body_pattern.Stream_patterns.strides)
        with
        | [] -> [ (1, 0) ]
        | dims -> dims
      in
      let n_dims = List.length dims in
      if n_dims > Machine_params.ssr_max_dims then
        fail "stream pattern for data mover %d needs %d hardware dims" dm n_dims;
      Rv.comment bb
        (Printf.sprintf "configure SSR %d (%d dims%s)" dm n_dims
           (if repeat > 0 then Printf.sprintf ", repeat %d" repeat else ""));
      let rep_reg = Rv.li bb repeat in
      Rv_snitch.scfgwi bb rep_reg ~slot:1 ~dm;
      (* Element width (slot 10): only written when it deviates from the
         8-byte default, i.e. for scalar-f32 streams. *)
      let width = List.nth widths dm in
      if width <> 8 then begin
        let w_reg = Rv.li bb width in
        Rv_snitch.scfgwi bb w_reg ~slot:10 ~dm
      end;
      List.iteri
        (fun i (ub, stride) ->
          let b_reg = Rv.li bb (ub - 1) in
          Rv_snitch.scfgwi bb b_reg ~slot:(2 + i) ~dm;
          let s_reg = Rv.li bb stride in
          Rv_snitch.scfgwi bb s_reg ~slot:(6 + i) ~dm)
        dims;
      let ptr = Ir.Op.operand op dm in
      let ptr_slot = (if is_read then 24 else 28) + (n_dims - 1) in
      Rv_snitch.scfgwi bb ptr ~slot:ptr_slot ~dm)
    patterns;
  Rv_snitch.ssr_enable bb;
  (* Inline the body: stream block args become explicit SSR register
     values. *)
  let body = Snitch_stream.body op in
  let stream_regs =
    List.mapi
      (fun i _ -> Rv.get_float_register bb (List.nth Reg.ssr_data_registers i))
      (Ir.Block.args body)
  in
  Rewriter.inline_block_before body ~anchor:op stream_regs;
  let bb_after = Builder.before op in
  Rv_snitch.ssr_disable bb_after;
  Ir.Op.erase op

let pass =
  Pass.make "lower-snitch-stream" (fun m ->
      List.iter lower_region
        (Util.ops_named m Snitch_stream.streaming_region_op))
