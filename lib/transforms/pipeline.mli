(** Pipeline configurations: the paper's full micro-kernel compiler, the
    baseline flows it is compared against (§4.1, Figure 8), and the
    cumulative ablation stages of Table 3. *)

open Mlc_ir
open Mlc_riscv

type flags = {
  streams : bool;  (** access qualifying operands through SSRs (§3.2) *)
  scalar_replacement : bool;
      (** accumulate reductions in registers (§3.4) *)
  frep : bool;  (** turn FP-only loops into FREP hardware loops (§3.2) *)
  fuse_fill : bool;
      (** fold output zero-init into the consumer, making outputs
          write-only and streamable (§4.4) *)
  unroll_jam : bool;
      (** interleave independent iterations to hide FPU latency (§3.4) *)
  fma : bool;  (** contract mul+add chains into fmadd *)
  unroll_inner : int;
      (** plain inner-loop unroll factor modelling the LLVM backend's
          unrolling in the baseline flows (1 = off) *)
  pattern_opt : bool;
      (** the §3.2 compile-time stream-pattern optimisations (contiguity
          collapse, hardware repeat); disable only for ablation *)
  cleanups : bool;
      (** generic backend cleanups (CSE, LICM, IV strength reduction);
          off in the Table 3 "Baseline" to reproduce truly naive direct
          lowering *)
}

(** The full multi-level pipeline (the paper's compiler). *)
val ours : flags

(** The paper's own direct lowering — the Table 3 "Baseline" row. *)
val baseline : flags

(** Substitutes for the LLVM-backed comparison flows (see DESIGN.md):
    naive C via Clang (unrolling + fma contraction) and the upstream
    MLIR pipeline (additionally affine scalar replacement). *)
val clang : flags

val mlir : flags

(** Table 3's cumulative stages, in paper order. *)
val ablation_stages : (string * flags) list

(** One-line [k=v] rendering of a flag set, for crash bundles and JSON
    reports. *)
val describe_flags : flags -> string

(** The graceful-degradation lattice starting at the given flag set:
    [ours → ours-unroll_jam → ours-frep-streams → baseline]. The result
    begins at the first rung structurally equal to the argument (so a
    run already below the top rung resumes mid-lattice); a flag set not
    on the lattice degrades directly to [baseline]. The head is always
    the argument itself. *)
val fallback_lattice : flags -> (string * flags) list

(** Hook receiving the warning emitted when {!fallback_lattice} is asked
    about a flag set not on the lattice (which degrades straight to
    [baseline]). Fired at most once per distinct flag set per process;
    defaults to printing the diagnostic summary on stderr. *)
val on_custom_fallback : (Mlc_diag.Diag.t -> unit) ref

(** The target-independent front half of the pipeline: linalg through
    schedule transforms to structured scf loops plus generic cleanups.
    Shared by every backend; see {!Backend}. *)
val front_passes : flags -> Pass.t list

(** The Snitch backend tail: rv conversion, machine-level cleanups,
    SSR/FREP formation. [passes flags = front_passes flags @
    snitch_lowering flags], exactly. *)
val snitch_lowering : flags -> Pass.t list

(** The full Snitch pass list a flag set induces. *)
val passes : flags -> Pass.t list

(** [passes_up_to plist name] is the prefix of [plist] up to and
    including the pass named [name], or [Error available_names] if no
    pass has that name. *)
val passes_up_to : Pass.t list -> string -> (Pass.t list, string list) result

type result = {
  asm : string;
  reports : (string * Mlc_regalloc.Allocator.report) list;
  stats : (string * Asm_emit.stats) list;
}

(** Run the full compilation on a module of linalg-level functions, in
    place: the pass pipeline, spill-free register allocation (with
    rematerialisation fallback) and assembly emission. With [~lint:true]
    the emitted instruction stream is additionally run through the
    machine-code sanitizer ({!Mlc_analysis.Lint}); any error-severity
    finding raises [Mlc_diag.Diag.Diagnostic].

    [verify_each] (default true) arms both the structural verifier and
    the {!Mlc_verify.Verify.checkpoint} bounds/race analysis after every
    pass; [checkpoint] substitutes that per-pass hook (used by tests to
    collect per-checkpoint verdicts); [passes] substitutes the whole pass
    list (backends compose their own via {!Backend.passes_for}). *)
val compile :
  ?flags:flags ->
  ?verify_each:bool ->
  ?checkpoint:(pass_name:string -> Ir.op -> unit) ->
  ?lint:bool ->
  ?passes:Pass.t list ->
  Ir.op ->
  result
