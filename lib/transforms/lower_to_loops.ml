(* Lower memref_stream.generic to scf.for loop nests (paper §3.4): the
   iteration space becomes explicit loops; streamed operands turn into
   stream read/write ops at the right points of the traversal; the
   scalar-replacement marker decides whether reductions accumulate in
   SSA values threaded through loop iter-args (registers after lowering)
   or read-modify-write the output buffer every iteration (the baseline
   behaviour of Table 3).

   Interleaved trailing dimensions do not become loops: the generic's
   body already holds one copy of the computation per interleaved
   iteration (unroll-and-jam). *)

open Mlc_ir
open Mlc_dialects

let fail fmt = Format.kasprintf failwith fmt

type ctx = {
  generic : Ir.op;
  bounds : int list;
  iterators : Attr.iterator list;
  maps : Affine.map list;
  n_in : int;
  n_out : int;
  u : int;
  inits : Ir.value list;
  scalar_rep : bool;
  old_body : Ir.block;
  (* dim -> current index value *)
  env : (int, Ir.value) Hashtbl.t;
  zero : Ir.value;
  one : Ir.value;
  bound_consts : Ir.value array;
  interleave_consts : Ir.value array;
  (* streaming: operand index -> stream block argument, populated when
     the streaming region is opened at the hoist depth *)
  streamed : int list;
  hoist : int;
  stream_args : (int, Ir.value) Hashtbl.t;
}

let operand_in ctx k = List.nth (Ir.Op.operands ctx.generic) k
let operand_out ctx k = List.nth (Ir.Op.operands ctx.generic) (ctx.n_in + k)

let dim_value ctx d =
  match Hashtbl.find_opt ctx.env d with
  | Some v -> v
  | None -> fail "lower_to_loops: no index bound for dimension %d" d

(* Emit the index values for operand [k] at the current loop point with
   the interleaved dimension fixed to copy [j]. *)
let emit_coords ctx bb k j =
  let m = List.nth ctx.maps k in
  let n = List.length ctx.bounds in
  let dimv d =
    if ctx.u > 1 && d = n - 1 then ctx.interleave_consts.(j) else dim_value ctx d
  in
  List.map (Util.emit_affine bb ~dim_value:dimv) m.Affine.exprs

(* Read the current value of input operand [k] for copy [j]. *)
let read_input ctx bb k j =
  match Hashtbl.find_opt ctx.stream_args k with
  | Some stream -> Memref_stream.read bb stream
  | None -> (
    let v = operand_in ctx k in
    match Ir.Value.ty v with
    | Ty.Memref _ -> Memref.load bb v (emit_coords ctx bb k j)
    | _ -> v (* scalar passed straight through *))

let input_is_streamed ctx k = Hashtbl.mem ctx.stream_args k

(* Instantiate the body once. [out_binding j k] supplies the value bound
   to the current-output argument of copy [j], output [k] (lazily, so
   unused arguments of write-only outputs never force a load). Returns
   the yielded values, copy-major. *)
let instantiate_body ctx bb ~out_binding =
  let vmap = Hashtbl.create 32 in
  for j = 0 to ctx.u - 1 do
    for k = 0 to ctx.n_in - 1 do
      let arg = Ir.Block.arg ctx.old_body ((j * ctx.n_in) + k) in
      if Ir.Value.has_uses arg then
        Hashtbl.replace vmap (Ir.Value.id arg) (read_input ctx bb k j)
      else if
        (* Unused stream inputs still pop an element in hardware. *)
        input_is_streamed ctx k
      then ignore (read_input ctx bb k j)
    done
  done;
  for j = 0 to ctx.u - 1 do
    for k = 0 to ctx.n_out - 1 do
      let arg =
        Ir.Block.arg ctx.old_body ((ctx.u * ctx.n_in) + (j * ctx.n_out) + k)
      in
      if Ir.Value.has_uses arg then
        Hashtbl.replace vmap (Ir.Value.id arg) (out_binding j k)
    done
  done;
  Util.clone_body_ops ctx.old_body bb vmap

(* Store yielded value [v] to output [k] at copy [j]. *)
let store_output ctx bb k j v =
  match Hashtbl.find_opt ctx.stream_args (ctx.n_in + k) with
  | Some stream -> Memref_stream.write bb v stream
  | None -> (
    let out = operand_out ctx k in
    match Ir.Value.ty out with
    | Ty.Memref _ -> Memref.store bb v out (emit_coords ctx bb (ctx.n_in + k) j)
    | t -> fail "lower_to_loops: bad output type %s" (Ty.to_string t))

(* Read back the current value of output [k] (RMW and accumulator-init
   paths); streamed outputs are write-only by construction. *)
let load_output ctx bb k j =
  if Hashtbl.mem ctx.stream_args (ctx.n_in + k) then
    fail "cannot read back a streamed (write-only) output";
  let out = operand_out ctx k in
  match Ir.Value.ty out with
  | Ty.Memref _ -> Memref.load bb out (emit_coords ctx bb (ctx.n_in + k) j)
  | t -> fail "cannot read back a non-memref output (%s)" (Ty.to_string t)

(* The innermost code for a scalar-replaced reduction: run the body once
   with the accumulators bound, return the new accumulators. *)
let reduction_body ctx bb accs =
  instantiate_body ctx bb ~out_binding:(fun j k ->
      List.nth accs ((j * ctx.n_out) + k))

(* Build the nest of reduction loops carrying the accumulators. *)
let rec build_reduction_loops ctx bb red_dims accs =
  match red_dims with
  | [] -> reduction_body ctx bb accs
  | d :: rest ->
    let for_op =
      Scf.for_ bb ~lb:ctx.zero ~ub:ctx.bound_consts.(d) ~step:ctx.one
        ~iter_args:accs (fun bb iv iters ->
          Hashtbl.replace ctx.env d iv;
          build_reduction_loops ctx bb rest iters)
    in
    Ir.Op.results for_op

(* The code at the bottom of the parallel loops. *)
let build_innermost ctx bb red_dims =
  if ctx.scalar_rep && red_dims <> [] then begin
    (* Initial accumulators: the fused fill value, or the current output
       element. *)
    let accs0 =
      List.concat
        (List.init ctx.u (fun j ->
             List.init ctx.n_out (fun k ->
                 match List.nth_opt ctx.inits k with
                 | Some init -> init
                 | None -> load_output ctx bb k j)))
    in
    let accs' = build_reduction_loops ctx bb red_dims accs0 in
    List.iteri
      (fun pos v ->
        let j = pos / ctx.n_out and k = pos mod ctx.n_out in
        store_output ctx bb k j v)
      accs'
  end
  else begin
    (* Read-modify-write form: plain loops over the reduction dims; the
       body loads the current output element and stores the new one every
       iteration. *)
    let rec loops bb = function
      | d :: rest ->
        ignore
          (Scf.for_ bb ~lb:ctx.zero ~ub:ctx.bound_consts.(d) ~step:ctx.one
             (fun bb iv _ ->
               Hashtbl.replace ctx.env d iv;
               loops bb rest;
               []))
      | [] ->
        let yields =
          instantiate_body ctx bb ~out_binding:(fun j k -> load_output ctx bb k j)
        in
        List.iteri
          (fun pos v ->
            let j = pos / ctx.n_out and k = pos mod ctx.n_out in
            store_output ctx bb k j v)
          yields
    in
    loops bb red_dims
  end

(* Open the streaming region at the current depth: compute the hoisted
   pointer offsets from the enclosing loop indices and bind the stream
   block arguments; the remaining loops are built inside. *)
let open_streaming_region ctx bb continue_ =
  let n_dims = List.length ctx.bounds in
  let offset_expr k =
    (* Flat element offset of operand [k]'s access carried by the
       hoisted dims (d < h): sum over map results of the hoisted dims'
       coefficients * mem stride. Constant map terms are excluded —
       they live in the resolved pattern's offset, which the stream
       lowering already folds into the base pointer. *)
    let m = List.nth ctx.maps k in
    let mem_strides =
      Stream_patterns.mem_strides_of
        (Ir.Value.ty (List.nth (Ir.Op.operands ctx.generic) k))
    in
    List.fold_left2
      (fun acc e ms ->
        let dcoef, _, _ = Affine.linear_form ~num_dims:n_dims ~num_syms:0 e in
        let acc = ref acc in
        Array.iteri
          (fun d coef ->
            if d < ctx.hoist && coef <> 0 then
              acc :=
                Affine.add !acc
                  (Affine.mul (Affine.dim d) (Affine.const (coef * ms))))
          dcoef;
        !acc)
      (Affine.const 0) m.Affine.exprs mem_strides
  in
  let offsets =
    List.map
      (fun k ->
        Util.emit_affine bb ~dim_value:(fun d -> dim_value ctx d) (offset_expr k))
      ctx.streamed
  in
  let patterns =
    List.map
      (fun k -> Create_streams.local_index_pattern ctx.generic k ~h:ctx.hoist)
      ctx.streamed
  in
  let in_ks = List.filter (fun k -> k < ctx.n_in) ctx.streamed in
  let out_ks = List.filter (fun k -> k >= ctx.n_in) ctx.streamed in
  let operand k = List.nth (Ir.Op.operands ctx.generic) k in
  ignore
    (Memref_stream.streaming_region bb ~patterns
       ~ins:(List.map operand in_ks)
       ~outs:(List.map operand out_ks)
       ~offsets
       (fun bb stream_args ->
         List.iteri
           (fun pos k -> Hashtbl.replace ctx.stream_args k (List.nth stream_args pos))
           (in_ks @ out_ks);
         continue_ bb))

let rec build_parallel_loops ctx bb depth par_dims red_dims =
  if ctx.streamed <> [] && depth = ctx.hoist then begin
    open_streaming_region ctx bb (fun bb ->
        build_parallel_loops { ctx with streamed = [] } bb depth par_dims red_dims)
  end
  else
    match par_dims with
    | d :: rest ->
      ignore
        (Scf.for_ bb ~lb:ctx.zero ~ub:ctx.bound_consts.(d) ~step:ctx.one
           (fun bb iv _ ->
             Hashtbl.replace ctx.env d iv;
             build_parallel_loops ctx bb (depth + 1) rest red_dims;
             []))
    | [] -> build_innermost ctx bb red_dims

let lower (generic : Ir.op) =
  let bounds = Memref_stream.bounds generic in
  let iterators = Memref_stream.iterator_types generic in
  let u = Memref_stream.unroll_factor generic in
  let n = List.length bounds in
  let loop_dims = List.init (if u > 1 then n - 1 else n) Fun.id in
  let par_dims =
    List.filter (fun d -> List.nth iterators d = Attr.Parallel) loop_dims
  in
  let red_dims =
    List.filter (fun d -> List.nth iterators d = Attr.Reduction) loop_dims
  in
  if par_dims @ red_dims <> loop_dims then
    fail "lower_to_loops: dimensions not in parallel-then-reduction order";
  let bb = Builder.before generic in
  let zero = Arith.const_index bb 0 in
  let one = Arith.const_index bb 1 in
  let bound_consts =
    Array.of_list (List.map (fun bnd -> Arith.const_index bb bnd) bounds)
  in
  let interleave_consts = Array.init u (fun j -> Arith.const_index bb j) in
  let ctx =
    {
      generic;
      bounds;
      iterators;
      maps = Memref_stream.indexing_maps generic;
      n_in = Memref_stream.num_ins generic;
      n_out = Memref_stream.num_outs generic;
      u;
      inits = Memref_stream.inits generic;
      scalar_rep = Scalar_replacement.is_marked generic;
      old_body = Memref_stream.body generic;
      env = Hashtbl.create 8;
      zero;
      one;
      bound_consts;
      interleave_consts;
      streamed = Create_streams.annotated_stream_operands generic;
      hoist = Create_streams.hoist_depth generic;
      stream_args = Hashtbl.create 4;
    }
  in
  (* Reduction dims must have a binding for output-coordinate emission
     even under scalar replacement (they are never referenced there, but
     the affine evaluator is total over the map's domain). *)
  List.iter (fun d -> Hashtbl.replace ctx.env d zero) red_dims;
  build_parallel_loops ctx bb 0 par_dims red_dims;
  Ir.Op.erase generic

let pass =
  Pass.make "lower-memref-stream-to-loops" (fun m ->
      List.iter lower (Util.ops_named m Memref_stream.generic_op))
