(** A minimal JSON codec for the serving protocol. The container ships
    no JSON library, and the wire format only ever carries messages this
    codebase itself produces, so a small exact implementation beats a
    dependency: objects, arrays, strings (with escapes), ints, floats,
    bools, null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

(** Parse a complete JSON document; raises {!Parse_error} on malformed
    input or trailing garbage. *)
val of_string : string -> t

(** Object-field accessors used by the protocol layer. [mem] returns
    [None] for a missing field or a non-object; the typed getters
    return [None] on a type mismatch. *)
val mem : string -> t -> t option

val str : string -> t -> string option
val int : string -> t -> int option
val float : string -> t -> float option
val bool : string -> t -> bool option
