(* The snitchd engine. One select loop owns the listening socket, every
   connection's reads, and admission; dedicated pool workers execute
   admitted requests and write their own responses. All shared state
   (admission depth, idempotency table, counters) lives behind one
   mutex — request bodies are milliseconds-to-seconds of compile/sim
   work, so a single lock is nowhere near contended. *)

module P = Protocol

exception Deadline_exceeded

type config = {
  socket_path : string;
  jobs : int;
  queue_max : int;
  shed_at : int;
  default_deadline_ms : int;
  sim_fuel : int;
  idem_cap : int;
}

let default_config =
  {
    socket_path = "snitchd.sock";
    jobs = 2;
    queue_max = 64;
    shed_at = 48;
    default_deadline_ms = 60_000;
    sim_fuel = 200_000_000;
    idem_cap = 4096;
  }

(* A connection is shared between the select loop (reads, admission)
   and pool workers (response writes): [wmu] guards the fd's write side
   and the lifecycle fields. [pending] counts admitted requests whose
   response this connection still awaits; the fd is closed only when
   the select loop has dropped the conn ([alive = false]) AND no worker
   still holds a send ticket — otherwise a freshly accepted connection
   could reuse the descriptor number and receive a stale response. *)
type conn = {
  fd : Unix.file_descr;
  wmu : Mutex.t;
  mutable alive : bool;
  mutable pending : int;
}

(* Idempotency entries. [In_flight] collects every connection that asked
   for the id while it executes; [Done] replays the encoded response
   bytes verbatim. Transient outcomes (injected faults, deadlines) are
   never stored as [Done] — a retry must re-execute. *)
type idem =
  | In_flight of { digest : string; mutable waiters : conn list }
  | Done of { digest : string; encoded : string }

type lat = { l_total_ms : float; l_phases : Mlc.Runner.phase_totals }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Mlc_parallel.Pool.t;
  mu : Mutex.t;
  idem : (string, idem) Hashtbl.t;
  idem_order : string Queue.t;  (** Done-entry FIFO for the cap *)
  mutable depth : int;  (** admitted, not yet answered *)
  mutable peak : int;
  mutable served : int;
  mutable n_ok : int;
  mutable n_err : int;
  mutable n_rejected : int;
  mutable n_deadline : int;
  mutable n_shed : int;
  mutable n_idem : int;
  mutable lats : lat list;  (** newest first, capped *)
  stopping : bool Atomic.t;
}

let lat_cap = 8192

let create ?(config = default_config) () =
  let cfg = config in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  {
    cfg;
    listen_fd;
    pool = Mlc_parallel.Pool.create ~jobs:(max 1 cfg.jobs) ~dedicated:true ();
    mu = Mutex.create ();
    idem = Hashtbl.create 256;
    idem_order = Queue.create ();
    depth = 0;
    peak = 0;
    served = 0;
    n_ok = 0;
    n_err = 0;
    n_rejected = 0;
    n_deadline = 0;
    n_shed = 0;
    n_idem = 0;
    lats = [];
    stopping = Atomic.make false;
  }

let config t = t.cfg
let stop t = Atomic.set t.stopping true

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* --- connection lifecycle --- *)

let ticket conn =
  Mutex.lock conn.wmu;
  conn.pending <- conn.pending + 1;
  Mutex.unlock conn.wmu

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A worker returns its send ticket; the last ticket on a dropped conn
   closes the fd. *)
let release conn =
  Mutex.lock conn.wmu;
  conn.pending <- conn.pending - 1;
  let close_now = (not conn.alive) && conn.pending = 0 in
  Mutex.unlock conn.wmu;
  if close_now then close_fd conn.fd

(* The select loop drops a conn (EOF or torn frame). *)
let retire conn =
  Mutex.lock conn.wmu;
  conn.alive <- false;
  let close_now = conn.pending = 0 in
  Mutex.unlock conn.wmu;
  if close_now then close_fd conn.fd

(* Write one pre-encoded response frame; a firing truncated-write fault
   sends half the payload and shuts the socket down (shutdown, not
   close: the fd stays owned, the select loop reaps it on the resulting
   EOF, so the descriptor number cannot be reused underneath a
   worker). *)
let send_raw conn payload =
  Mutex.lock conn.wmu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wmu)
    (fun () ->
      if conn.alive then begin
        let truncate = Fault.fires Fault.Truncated_write in
        (try P.write_frame ~truncate conn.fd payload
         with Unix.Unix_error _ | P.Protocol_error _ -> ());
        if truncate then
          try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ()
      end)

let send conn (resp : P.response) =
  send_raw conn (Json.to_string (P.json_of_response resp))

let resp ?(transient = false) ~id status body =
  { P.r_id = id; status; transient; body }

let error_body ?(notes = []) msg =
  ("message", Json.Str msg)
  ::
  (match notes with
  | [] -> []
  | ns -> [ ("notes", Json.Arr (List.map (fun n -> Json.Str n) ns)) ])

(* --- request execution (worker side) --- *)

let flags_of_flow flow =
  match flow with
  | "ours" -> Some Mlc_transforms.Pipeline.ours
  | "mlir" -> Some Mlc_transforms.Pipeline.mlir
  | "clang" -> Some Mlc_transforms.Pipeline.clang
  | "baseline" -> Some Mlc_transforms.Pipeline.baseline
  | rung ->
    (* lattice rung names double as flow names, so a client can pin the
       exact configuration a degraded run reported *)
    List.assoc_opt rung
      (Mlc_transforms.Pipeline.fallback_lattice Mlc_transforms.Pipeline.ours)

let spec_of (r : P.request) =
  match Mlc_kernels.Registry.by_short_name r.P.kernel with
  | Some entry ->
    entry.Mlc_kernels.Registry.instantiate ~n:r.P.n ~m:r.P.m ~k:r.P.k ()
  | None -> failwith (Printf.sprintf "unknown kernel %S" r.P.kernel)

let output_digest outputs =
  let buf = Buffer.create 256 in
  List.iter
    (Array.iter (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x)))
    outputs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let crash_ctx (r : P.request) =
  {
    Mlc_diag.Crash_bundle.flags = None;
    replay =
      Some
        (Printf.sprintf "snitchc %s -k %s -n %d -m %d -K %d --flow %s"
           (match r.P.op with P.Run -> "run" | _ -> "compile")
           r.P.kernel r.P.n r.P.m r.P.k r.P.flow);
  }

(* Compile through the shared artifact cache with the same key the
   runner uses (flags x generic IR text), so a daemon [compile] warms
   subsequent [run] requests and vice versa. *)
let compile_cached ~check_deadline ~flags (spec : Mlc_kernels.Builders.spec) =
  check_deadline ();
  let m = spec.Mlc_kernels.Builders.build () in
  let ir_text = Mlc_ir.Printer.to_string m in
  match Mlc.Compile_cache.lookup ~flags ~ir_text () with
  | `Hit (key, result) -> (key, result, true)
  | `Miss key ->
    check_deadline ();
    let result = Mlc_transforms.Pipeline.compile ~flags ~lint:true m in
    Mlc.Compile_cache.store ~key result;
    (key, result, false)

let exec t (r : P.request) ~shed ~check_deadline : P.response =
  let flow = if shed then "baseline" else r.P.flow in
  let flags =
    match flags_of_flow flow with
    | Some f -> f
    | None -> failwith (Printf.sprintf "unknown flow %S" flow)
  in
  let shed_field = if shed then [ ("shed", Json.Bool true) ] else [] in
  match r.P.op with
  | P.Ping -> resp ~id:r.P.id P.Ok_ [ ("pong", Json.Bool true) ]
  | P.Stats | P.Shutdown ->
    (* answered inline by the select loop; reaching a worker is a bug *)
    resp ~id:r.P.id P.Error_ (error_body "internal: queued control op")
  | P.Run ->
    let spec = spec_of r in
    let res =
      Mlc.Runner.run ~flags ~seed:r.P.seed ~fallback:true
        ~crash_ctx:(crash_ctx r) ~fuel:t.cfg.sim_fuel
        ~on_phase:(fun _ -> check_deadline ())
        spec
    in
    let m = res.Mlc.Runner.metrics in
    resp ~id:r.P.id P.Ok_
      ([
         ("kernel", Json.Str r.P.kernel);
         ("flow", Json.Str flow);
         ("cycles", Json.Int m.Mlc.Runner.cycles);
         ("fpu_util", Json.Float m.Mlc.Runner.fpu_util);
         ("flops_per_cycle", Json.Float m.Mlc.Runner.flops_per_cycle);
         ("max_abs_err", Json.Float res.Mlc.Runner.max_abs_err);
         ("output_md5", Json.Str (output_digest res.Mlc.Runner.outputs));
         ( "asm_md5",
           Json.Str (Digest.to_hex (Digest.string res.Mlc.Runner.asm)) );
       ]
      @ (match res.Mlc.Runner.degradation with
        | None -> []
        | Some d -> [ ("degraded", Json.Str d.Mlc.Runner.rung) ])
      @ shed_field)
  | P.Compile ->
    let spec = spec_of r in
    let _key, result, cached = compile_cached ~check_deadline ~flags spec in
    resp ~id:r.P.id P.Ok_
      ([
         ("kernel", Json.Str r.P.kernel);
         ("flow", Json.Str flow);
         ("asm", Json.Str result.Mlc_transforms.Pipeline.asm);
         ( "asm_md5",
           Json.Str
             (Digest.to_hex (Digest.string result.Mlc_transforms.Pipeline.asm))
         );
         ("cached", Json.Bool cached);
       ]
      @ shed_field)
  | P.Check ->
    let spec = spec_of r in
    let key, result, cached = compile_cached ~check_deadline ~flags spec in
    check_deadline ();
    let program = Mlc.Compile_cache.program_for ~key result in
    let findings = Mlc_analysis.Lint.check_program program in
    let errors = List.length (Mlc_analysis.Lint.errors findings) in
    resp ~id:r.P.id P.Ok_
      ([
         ("kernel", Json.Str r.P.kernel);
         ("flow", Json.Str flow);
         ("findings", Json.Int (List.length findings));
         ("errors", Json.Int errors);
         ("clean", Json.Bool (errors = 0));
         ("cached", Json.Bool cached);
       ]
      @ shed_field)

(* The worker supervisor: whatever the execution raises becomes one
   structured response (and, for real faults, a crash bundle) — a
   worker domain never dies and a request never goes unanswered. *)
let supervise t (r : P.request) ~shed ~deadline : P.response =
  let check_deadline () =
    if Unix.gettimeofday () > deadline then raise Deadline_exceeded
  in
  match
    check_deadline ();
    Fault.hit Fault.Slow_request;
    Fault.hit Fault.Worker_crash;
    exec t r ~shed ~check_deadline
  with
  | response -> response
  | exception Deadline_exceeded ->
    resp ~transient:true ~id:r.P.id P.Deadline
      (error_body "deadline exceeded at a cancellation checkpoint")
  | exception Fault.Injected msg ->
    (* injected crashes are transient by construction: the retry path
       must recompute, not replay the failure *)
    let d = Mlc_diag.Diag.make ~component:"serve" msg in
    ignore (Mlc_diag.Crash_bundle.write ~ctx:(crash_ctx r) d);
    resp ~transient:true ~id:r.P.id P.Error_ (error_body msg)
  | exception exn ->
    let d = Mlc_diag.Diag.of_exn exn in
    ignore (Mlc_diag.Crash_bundle.write ~ctx:(crash_ctx r) d);
    resp ~id:r.P.id P.Error_
      (error_body
         ~notes:(List.filteri (fun i _ -> i < 4) d.Mlc_diag.Diag.notes)
         (Mlc_diag.Diag.summary d))

(* Worker task for one admitted request: execute under the supervisor,
   fold the domain's phase residue into the committed totals (the PR 7
   attribution contract — workers drain, one lock commits), record the
   latency sample, deliver to every waiter, and retire or forget the
   idempotency entry. *)
let run_admitted t (r : P.request) ~shed ~deadline =
  let t0 = Unix.gettimeofday () in
  let response = supervise t r ~shed ~deadline in
  let phase_delta = Mlc.Runner.drain_phases () in
  let total_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let response =
    {
      response with
      P.body = response.P.body @ [ ("total_ms", Json.Float total_ms) ];
    }
  in
  let encoded = Json.to_string (P.json_of_response response) in
  let waiters =
    locked t (fun () ->
        Mlc.Runner.commit_phases phase_delta;
        t.lats <-
          { l_total_ms = total_ms; l_phases = phase_delta }
          ::
          (if List.length t.lats >= lat_cap then
             List.filteri (fun i _ -> i < lat_cap - 1) t.lats
           else t.lats);
        t.depth <- t.depth - 1;
        t.served <- t.served + 1;
        (match response.P.status with
        | P.Ok_ -> t.n_ok <- t.n_ok + 1
        | P.Error_ -> t.n_err <- t.n_err + 1
        | P.Rejected -> t.n_rejected <- t.n_rejected + 1
        | P.Deadline -> t.n_deadline <- t.n_deadline + 1);
        match Hashtbl.find_opt t.idem r.P.id with
        | Some (In_flight { waiters; digest }) ->
          if response.P.transient then
            (* never memoize a transient outcome: the retry must
               re-execute, and it will land on a fresh entry *)
            Hashtbl.remove t.idem r.P.id
          else begin
            Hashtbl.replace t.idem r.P.id (Done { digest; encoded });
            Queue.push r.P.id t.idem_order;
            while Queue.length t.idem_order > t.cfg.idem_cap do
              let old = Queue.pop t.idem_order in
              match Hashtbl.find_opt t.idem old with
              | Some (Done _) -> Hashtbl.remove t.idem old
              | _ -> ()
            done
          end;
          waiters
        | _ -> [])
  in
  List.iter
    (fun c ->
      send_raw c encoded;
      release c)
    waiters

(* --- stats --- *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let stats_body t =
  let served, ok, err, rejected, deadline, shed, idem, depth, peak, lats =
    locked t (fun () ->
        ( t.served, t.n_ok, t.n_err, t.n_rejected, t.n_deadline, t.n_shed,
          t.n_idem, t.depth, t.peak, t.lats ))
  in
  let totals = Array.of_list (List.map (fun l -> l.l_total_ms) lats) in
  let compiles =
    Array.of_list
      (List.filter_map
         (fun l ->
           if l.l_phases.Mlc.Runner.compile_n > 0 then
             Some (l.l_phases.Mlc.Runner.compile_s *. 1000.)
           else None)
         lats)
  in
  Array.sort compare totals;
  Array.sort compare compiles;
  let ph = Mlc.Runner.phases () in
  [
    ("requests", Json.Int served);
    ("ok", Json.Int ok);
    ("errors", Json.Int err);
    ("rejected", Json.Int rejected);
    ("deadline", Json.Int deadline);
    ("shed", Json.Int shed);
    ("idem_hits", Json.Int idem);
    ("queue_depth", Json.Int depth);
    ("queue_peak", Json.Int peak);
    ("cache_hits", Json.Int (Mlc_parallel.Cache.hits ()));
    ("cache_misses", Json.Int (Mlc_parallel.Cache.misses ()));
    ("cache_quarantined", Json.Int (Mlc_parallel.Cache.quarantined ()));
    ("bundles_evicted", Json.Int (Mlc_diag.Crash_bundle.evicted ()));
    ("p50_ms", Json.Float (percentile totals 0.50));
    ("p90_ms", Json.Float (percentile totals 0.90));
    ("p99_ms", Json.Float (percentile totals 0.99));
    ("compile_p50_ms", Json.Float (percentile compiles 0.50));
    ("compile_p99_ms", Json.Float (percentile compiles 0.99));
    ("compile_s", Json.Float ph.Mlc.Runner.compile_s);
    ("sim_s", Json.Float ph.Mlc.Runner.sim_s);
    ("load_s", Json.Float ph.Mlc.Runner.load_s);
    ("compile_n", Json.Int ph.Mlc.Runner.compile_n);
    ("sim_n", Json.Int ph.Mlc.Runner.sim_n);
    ("load_n", Json.Int ph.Mlc.Runner.load_n);
    ("faults_fired", Json.Arr (List.map (fun s -> Json.Str s) (Fault.fired ())));
  ]

(* --- admission (select-loop side) --- *)

let admit t conn (r : P.request) =
  let digest = P.payload_digest r in
  let verdict =
    locked t (fun () ->
        match Hashtbl.find_opt t.idem r.P.id with
        | Some (Done { digest = d; encoded }) ->
          if d = digest then begin
            t.n_idem <- t.n_idem + 1;
            `Replay encoded
          end
          else `Payload_mismatch
        | Some (In_flight entry) ->
          if entry.digest = digest then begin
            t.n_idem <- t.n_idem + 1;
            if not (List.memq conn entry.waiters) then begin
              ticket conn;
              entry.waiters <- conn :: entry.waiters
            end;
            `Joined
          end
          else `Payload_mismatch
        | None ->
          if t.depth >= t.cfg.queue_max then `Reject
          else begin
            let shed = t.depth >= t.cfg.shed_at in
            if shed then t.n_shed <- t.n_shed + 1;
            t.depth <- t.depth + 1;
            if t.depth > t.peak then t.peak <- t.depth;
            ticket conn;
            Hashtbl.replace t.idem r.P.id
              (In_flight { digest; waiters = [ conn ] });
            `Admitted shed
          end)
  in
  match verdict with
  | `Replay encoded ->
    (* bit-identical by construction: the stored bytes are resent *)
    send_raw conn encoded
  | `Joined -> ()
  | `Payload_mismatch ->
    send conn
      (resp ~id:r.P.id P.Error_
         (error_body "id reused with a different payload"))
  | `Reject ->
    locked t (fun () -> t.n_rejected <- t.n_rejected + 1);
    send conn
      (resp ~transient:true ~id:r.P.id P.Rejected
         (error_body "admission queue full"
         @ [ ("retry_after_ms", Json.Int 100) ]))
  | `Admitted shed ->
    let ms =
      if r.P.deadline_ms > 0 then r.P.deadline_ms else t.cfg.default_deadline_ms
    in
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    Mlc_parallel.Pool.submit t.pool (fun () ->
        run_admitted t r ~shed ~deadline)

(* --- the select loop --- *)

let handle_frame t conn payload =
  match P.request_of_json (Json.of_string payload) with
  | exception (Json.Parse_error msg | P.Protocol_error msg) ->
    send conn (resp ~id:"?" P.Error_ (error_body ("bad request: " ^ msg)))
  | r -> (
    match r.P.op with
    | P.Stats -> send conn (resp ~id:r.P.id P.Ok_ (stats_body t))
    | P.Shutdown ->
      send conn (resp ~id:r.P.id P.Ok_ [ ("stopping", Json.Bool true) ]);
      stop t
    | P.Ping -> send conn (resp ~id:r.P.id P.Ok_ [ ("pong", Json.Bool true) ])
    | _ -> admit t conn r)

let serve t =
  let conns : conn list ref = ref [] in
  let accepting = ref true in
  let finished = ref false in
  while not !finished do
    (* stop: close the door, then drain admitted work before exiting *)
    if Atomic.get t.stopping && !accepting then begin
      accepting := false;
      close_fd t.listen_fd
    end;
    if (not !accepting) && locked t (fun () -> t.depth) = 0 then
      finished := true
    else begin
      let fds =
        (if !accepting then [ t.listen_fd ] else [])
        @ List.map (fun c -> c.fd) !conns
      in
      match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            if !accepting && fd = t.listen_fd then begin
              match Unix.accept t.listen_fd with
              | cfd, _ ->
                conns :=
                  { fd = cfd; wmu = Mutex.create (); alive = true; pending = 0 }
                  :: !conns
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd) !conns with
              | None -> ()
              | Some conn -> (
                match P.read_frame conn.fd with
                | `Frame payload -> handle_frame t conn payload
                | `Closed ->
                  conns := List.filter (fun c -> c != conn) !conns;
                  retire conn
                | exception (P.Protocol_error _ | Unix.Unix_error _) ->
                  conns := List.filter (fun c -> c != conn) !conns;
                  retire conn))
          readable
    end
  done;
  (* joining the pool flushes every in-flight response before the
     remaining connections are dropped *)
  Mlc_parallel.Pool.shutdown t.pool;
  List.iter retire !conns;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  locked t (fun () -> t.served)
