(** snitchd's engine: a Unix-domain-socket compile/run/check server over
    the domain pool and the two-tier artifact cache, with the robustness
    layer of ISSUE 8 — bounded admission with overload shedding,
    per-request deadlines with cooperative cancellation, a supervisor
    that converts any worker exception into a structured error plus a
    crash bundle, and an idempotency table making client retries
    exactly-once.

    Threading: {!serve} runs a select loop on the calling domain that
    owns accepts, reads and admission; execution happens on dedicated
    pool workers ({!Mlc_parallel.Pool.submit}) which write their own
    responses under a per-connection mutex. *)

type config = {
  socket_path : string;
  jobs : int;  (** pool worker domains (>= 1, dedicated) *)
  queue_max : int;  (** admitted-but-unfinished cap; beyond: reject *)
  shed_at : int;
      (** depth at which new work is shed to the bottom fallback rung
          (baseline flags) instead of the requested flow; must be
          [<= queue_max]. Shed responses are marked ["shed": true]. *)
  default_deadline_ms : int;  (** for requests with [deadline_ms = 0] *)
  sim_fuel : int;  (** dynamic-instruction cap per simulation *)
  idem_cap : int;  (** completed idempotency entries kept (FIFO) *)
}

val default_config : config

type t

(** Bind the socket (unlinking any stale one), start the worker pool,
    install the SIGPIPE ignore. The server is not accepting until
    {!serve}. *)
val create : ?config:config -> unit -> t

val config : t -> config

(** Accept and serve until {!stop} or a [shutdown] request; drains
    admitted work, answers it, then closes the socket and joins the
    pool. Returns the number of requests served. *)
val serve : t -> int

(** Request a graceful stop from a signal handler or another domain:
    stop admitting, drain in-flight work, exit {!serve}. *)
val stop : t -> unit

(** The stats body served for a [stats] request (also handy for tests
    running the server in-process). Keys include [requests], [ok],
    [errors], [rejected], [deadline], [shed], [idem_hits],
    [queue_depth], [queue_peak], [cache_hits], [cache_misses],
    [cache_quarantined], [bundles_evicted], [p50_ms], [p90_ms],
    [p99_ms], [compile_p50_ms], [compile_p99_ms], per-phase totals
    ([compile_s], [sim_s], [load_s], [compile_n], [sim_n], [load_n] —
    the PR 7 attribution, drained per worker request and committed in
    the stats lock), and [faults_fired]. *)
val stats_body : t -> (string * Json.t) list
