module P = Protocol

type t = {
  socket_path : string;
  mutable fd : Unix.file_descr option;
}

let create ?(socket_path = "snitchd.sock") () = { socket_path; fd = None }

let disconnect t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let close = disconnect

let connect t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    t.fd <- Some fd;
    fd

(* One exchange. The connection carries one request at a time, so the
   next frame is our answer — except that an idempotent daemon may
   interleave a duplicate's replay; match on id to be safe. *)
let rpc_once t (r : P.request) =
  let fd = connect t in
  P.write_frame fd (Json.to_string (P.json_of_request r));
  let rec await () =
    match P.read_frame fd with
    | `Closed -> raise (P.Protocol_error "connection closed before response")
    | `Frame payload ->
      let resp = P.response_of_json (Json.of_string payload) in
      if resp.P.r_id = r.P.id || resp.P.r_id = "?" then resp else await ()
  in
  await ()

type outcome = { response : P.response; retries : int }

exception Gave_up of string

(* Deterministic jitter: a hash of (id, attempt) spread over [0, 1).
   Every retry schedule is reproducible from the request alone. *)
let jitter id attempt =
  let h = Hashtbl.hash (id, attempt, "snitchd-jitter") in
  float_of_int (h land 0xffff) /. 65536.

let backoff id attempt =
  let base = 0.05 *. (2. ** float_of_int (min attempt 5)) in
  Float.min 1.0 base *. (0.5 +. jitter id attempt)

let request ?(patience_s = 120.) t (r : P.request) =
  let give_up = Unix.gettimeofday () +. patience_s in
  let rec go attempt =
    let sleep_then_retry d why =
      if Unix.gettimeofday () +. d > give_up then
        raise
          (Gave_up
             (Printf.sprintf "request %s: out of patience after %d attempts (%s)"
                r.P.id attempt why));
      Unix.sleepf d;
      go (attempt + 1)
    in
    match rpc_once t r with
    | resp -> (
      match resp.P.status with
      | P.Ok_ | P.Error_ when not resp.P.transient ->
        { response = resp; retries = attempt }
      | P.Rejected ->
        let after =
          match Json.int "retry_after_ms" (Json.Obj resp.P.body) with
          | Some ms -> float_of_int ms /. 1000.
          | None -> 0.1
        in
        sleep_then_retry (after *. (0.5 +. jitter r.P.id attempt)) "rejected"
      | P.Deadline | P.Error_ | P.Ok_ ->
        (* transient error/deadline (and the impossible transient ok) *)
        sleep_then_retry (backoff r.P.id attempt) "transient")
    | exception (Unix.Unix_error _ | P.Protocol_error _ | Json.Parse_error _) ->
      (* refused connect, daemon restart, torn frame from a truncated
         write: reconnect and retry under the same id *)
      disconnect t;
      sleep_then_retry (backoff r.P.id attempt) "transport"
  in
  go 0

(* --- the flood workload --- *)

(* A small deterministic matrix: enough shape and op variety to exercise
   cache hits, misses and all three executable ops, small enough that a
   200-request flood completes in CI seconds. *)
let flood_kernels = [| "matmul"; "relu"; "sum" |]
let flood_shapes = [| (4, 4, 4); (8, 4, 4); (4, 8, 8) |]
let flood_flows = [| "ours"; "ours"; "ours"; "baseline" |]

let flood_request ~seed i =
  (* an LCG keyed on (seed, i): stable across processes, unlike
     Hashtbl.hash would be across OCaml versions *)
  let x = ref ((seed * 1_000_003) + (i * 69_069) + 12_345) in
  let next m =
    x := ((!x * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
    !x mod m
  in
  let kernel = flood_kernels.(next (Array.length flood_kernels)) in
  let n, m, k = flood_shapes.(next (Array.length flood_shapes)) in
  let flow = flood_flows.(next (Array.length flood_flows)) in
  let op = match next 4 with 0 -> P.Compile | 1 -> P.Check | _ -> P.Run in
  {
    P.default_request with
    P.id = Printf.sprintf "flood-%d-%d" seed i;
    op;
    kernel;
    n;
    m;
    k;
    flow;
    seed = 42;
  }

type flood_report = {
  sent : int;
  answered : int;
  f_ok : int;
  f_failed : int;
  total_retries : int;
  digest : string;
}

let flood ?(socket_path = "snitchd.sock") ?(jobs = 1) ?(seed = 7)
    ?(patience_s = 120.) ~count () =
  let jobs = max 1 jobs in
  let stripe j =
    let client = create ~socket_path () in
    Fun.protect
      ~finally:(fun () -> close client)
      (fun () ->
        let acc = ref [] in
        let i = ref j in
        while !i < count do
          let r = flood_request ~seed !i in
          (match request ~patience_s client r with
          | outcome -> acc := (r.P.id, Some outcome) :: !acc
          | exception Gave_up _ -> acc := (r.P.id, None) :: !acc);
          i := !i + jobs
        done;
        !acc)
  in
  let results =
    if jobs = 1 then stripe 0
    else
      List.init jobs (fun j -> Domain.spawn (fun () -> stripe j))
      |> List.concat_map Domain.join
  in
  let answered = List.filter_map (fun (id, o) -> Option.map (fun o -> (id, o)) o) results in
  let cores =
    List.map (fun (id, o) -> (id, P.stable_core o.response)) answered
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    sent = count;
    answered = List.length answered;
    f_ok =
      List.length
        (List.filter (fun (_, o) -> o.response.P.status = P.Ok_) answered);
    f_failed =
      List.length
        (List.filter (fun (_, o) -> o.response.P.status <> P.Ok_) answered);
    total_retries = List.fold_left (fun a (_, o) -> a + o.retries) 0 answered;
    digest =
      Digest.to_hex
        (Digest.string (String.concat "\n" (List.map snd cores)));
  }
