(** The snitchd client: one connection, one in-flight request, and the
    retry loop that makes the daemon's idempotency guarantee usable —
    any transport failure (refused connect, torn frame, daemon restart)
    or transient response (injected fault, deadline, overload rejection)
    is retried with exponential backoff and deterministic per-id jitter,
    under the same request id, so the daemon never duplicates work. *)

type t

(** No I/O happens until the first request (lazy connect), so a client
    may be created before its daemon. *)
val create : ?socket_path:string -> unit -> t

val close : t -> unit

(** One request/response exchange, no retries; raises [Unix.Unix_error]
    or {!Protocol.Protocol_error} on transport failure. *)
val rpc_once : t -> Protocol.request -> Protocol.response

type outcome = {
  response : Protocol.response;
  retries : int;  (** transport + transient retries before this answer *)
}

exception Gave_up of string
  (** {!request} exhausted its patience budget. *)

(** Send with retries until a non-transient response arrives: transport
    errors reconnect, [Rejected] honours [retry_after_ms], transient
    errors and deadlines back off exponentially (base 50 ms, factor 2,
    cap 1 s) with jitter derived from the request id and attempt number
    — deterministic, no wall-clock randomness. Gives up (raises
    {!Gave_up}) after [patience_s] (default 120 s) of total waiting. *)
val request : ?patience_s:float -> t -> Protocol.request -> outcome

type flood_report = {
  sent : int;
  answered : int;
  f_ok : int;
  f_failed : int;  (** non-ok terminal responses *)
  total_retries : int;
  digest : string;
      (** MD5 over the id-sorted {!Protocol.stable_core}s of every
          terminal response — the chaos driver's bit-identity probe *)
}

(** Drive a deterministic mixed workload (run/compile/check over a
    seed-chosen kernel/shape/flow matrix) of [count] requests through
    [jobs] client domains. Request ids are [flood-<seed>-<i>], so
    re-running the same flood against a warm daemon exercises the
    idempotency path end to end. *)
val flood :
  ?socket_path:string ->
  ?jobs:int ->
  ?seed:int ->
  ?patience_s:float ->
  count:int ->
  unit ->
  flood_report

(** The request the flood driver issues at index [i] (exposed so tests
    can replay a single flood element). *)
val flood_request : seed:int -> int -> Protocol.request
