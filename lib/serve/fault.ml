(* Deterministic fault injection, keyed by per-site ordinal hit
   counters rather than wall clock or randomness: "crash@3" fires on
   the 3rd supervised request no matter how the pool schedules it. *)

type site = Worker_crash | Slow_request | Truncated_write

exception Injected of string

let site_name = function
  | Worker_crash -> "crash"
  | Slow_request -> "slow"
  | Truncated_write -> "trunc"

let site_index = function
  | Worker_crash -> 0
  | Slow_request -> 1
  | Truncated_write -> 2

(* Armed (ordinal, param) pairs per site, and hit counters. Protected
   by one mutex: sites fire from pool workers and the select loop
   concurrently, and firing must be exactly-once per armed ordinal. *)
let mu = Mutex.create ()
let armed : (int * float) list array = [| []; []; [] |]
let counters = [| 0; 0; 0 |]
let fired_log : string list ref = ref []

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let reset () =
  locked (fun () ->
      Array.fill armed 0 3 [];
      Array.fill counters 0 3 0;
      fired_log := [])

let arm spec =
  reset ();
  let parse_one part =
    let part = String.trim part in
    let site, rest =
      match String.index_opt part '@' with
      | None -> invalid_arg (Printf.sprintf "fault spec %S: missing @" part)
      | Some i ->
        ( String.sub part 0 i,
          String.sub part (i + 1) (String.length part - i - 1) )
    in
    let ordinal, param =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some i ->
        ( String.sub rest 0 i,
          Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    in
    let ordinal =
      match int_of_string_opt ordinal with
      | Some n when n >= 1 -> n
      | _ ->
        invalid_arg (Printf.sprintf "fault spec %S: bad ordinal %S" part ordinal)
    in
    let param =
      match param with
      | None -> 0.2
      | Some p -> (
        match float_of_string_opt p with
        | Some f -> f
        | None ->
          invalid_arg (Printf.sprintf "fault spec %S: bad param %S" part p))
    in
    let site =
      match site with
      | "crash" -> Worker_crash
      | "slow" -> Slow_request
      | "trunc" -> Truncated_write
      | s -> invalid_arg (Printf.sprintf "fault spec %S: unknown site %S" part s)
    in
    (site, ordinal, param)
  in
  if String.trim spec <> "" then
    String.split_on_char ',' spec
    |> List.iter (fun part ->
           let site, ordinal, param = parse_one part in
           let i = site_index site in
           armed.(i) <- (ordinal, param) :: armed.(i))

(* Count a hit; return the armed param if this ordinal fires. *)
let strike site =
  locked (fun () ->
      let i = site_index site in
      counters.(i) <- counters.(i) + 1;
      let n = counters.(i) in
      match List.assoc_opt n armed.(i) with
      | None -> None
      | Some param ->
        fired_log := Printf.sprintf "%s@%d" (site_name site) n :: !fired_log;
        Some param)

let hit site =
  match strike site with
  | None -> ()
  | Some param -> (
    match site with
    | Worker_crash ->
      raise (Injected (Printf.sprintf "injected worker crash (hit %s)"
                         (site_name site)))
    | Slow_request -> Unix.sleepf param
    | Truncated_write -> ())

let fires site = strike site <> None
let hits site = locked (fun () -> counters.(site_index site))
let fired () = locked (fun () -> List.rev !fired_log)

let corrupt_cache_entries ~dir ~n =
  let entries =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | files ->
      let bins =
        Array.to_list files
        |> List.filter (fun f -> Filename.check_suffix f ".bin")
        |> List.sort compare
      in
      Array.of_list bins
  in
  let count = min n (Array.length entries) in
  for i = 0 to count - 1 do
    let path = Filename.concat dir entries.(i) in
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let off = size / 2 in
        ignore (Unix.lseek fd off Unix.SEEK_SET);
        let b = Bytes.make 4 '\xa5' in
        ignore (Unix.write fd b 0 (min 4 (max 1 (size - off)))))
  done;
  count
