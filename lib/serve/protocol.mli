(** The snitchd wire protocol: length-framed canonical JSON over a Unix
    domain socket. Every frame is a 4-byte big-endian payload length
    followed by that many bytes of JSON. Requests carry a client-chosen
    idempotency [id]; the daemon guarantees that two requests with the
    same [id] and payload observe exactly one execution. *)

exception Protocol_error of string

(** Frames larger than this are rejected before allocation (a corrupt
    or malicious length prefix must not OOM the daemon). *)
val max_frame : int

(** Read one length-framed payload. [`Closed] on clean EOF at a frame
    boundary; raises {!Protocol_error} on a torn frame (EOF mid-length
    or mid-payload — the truncated-write fault lands here on the
    peer). *)
val read_frame : Unix.file_descr -> [ `Frame of string | `Closed ]

(** Write [payload] as one frame. [truncate:true] writes the length
    prefix but only half the payload and stops — the injected
    truncated-write fault. *)
val write_frame : ?truncate:bool -> Unix.file_descr -> string -> unit

type op =
  | Ping
  | Compile  (** compile (or serve cached) artifact; returns asm *)
  | Run  (** compile + simulate + validate; returns metrics *)
  | Check  (** compile + lint report on the emitted program *)
  | Stats  (** daemon counters; never queued, answered inline *)
  | Shutdown  (** graceful drain-and-exit *)

type request = {
  id : string;  (** idempotency key, client-chosen, non-empty *)
  op : op;
  kernel : string;  (** registry short name (compile/run/check) *)
  n : int;
  m : int;
  k : int;
  flow : string;  (** "ours" | "ours-unroll_jam" | ... | "baseline" *)
  seed : int;
  deadline_ms : int;  (** 0 = server default *)
}

val default_request : request

(** Encode/decode a request. [request_of_json] raises
    {!Protocol_error} on a missing/invalid field. *)
val json_of_request : request -> Json.t

val request_of_json : Json.t -> request

(** Canonical digest of the request fields that define its work (not
    the id): two ids with equal payload digests are idempotent retries;
    one id across different digests is a client bug the daemon
    rejects. *)
val payload_digest : request -> string

type status =
  | Ok_
  | Error_  (** execution failed; [transient] says whether to retry *)
  | Rejected  (** queue full — back off [retry_after_ms] and retry *)
  | Deadline  (** cancelled at a checkpoint past its deadline *)

val status_name : status -> string
val status_of_name : string -> status

(** A response is the request [id], a [status], and a bag of fields
    ([body]) whose keys depend on the op — kept schemaless here so the
    server can attach counters without protocol churn. [transient]
    marks outcomes (injected faults, deadline, rejection) that a client
    should retry and the idempotency table must never memoize. *)
type response = {
  r_id : string;
  status : status;
  transient : bool;
  body : (string * Json.t) list;
}

val json_of_response : response -> Json.t
val response_of_json : Json.t -> response

(** The response fields that must be bit-identical across retries,
    restarts and fault schedules: everything except timing, queueing
    and degradation bookkeeping. The chaos driver digests these. *)
val stable_core : response -> string
