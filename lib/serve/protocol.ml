exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt
let max_frame = 16 * 1024 * 1024

(* --- framing --- *)

(* Read exactly [n] bytes; [`Eof got] reports a short read. Retries
   EINTR; a read of 0 is EOF. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | r -> go (off + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match really_read fd 4 with
  | `Eof 0 -> `Closed
  | `Eof _ -> fail "torn frame: EOF inside length prefix"
  | `Ok hdr ->
    let len =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    if len > max_frame then fail "frame length %d exceeds max %d" len max_frame;
    (match really_read fd len with
    | `Ok payload -> `Frame (Bytes.unsafe_to_string payload)
    | `Eof got -> fail "torn frame: EOF at %d of %d payload bytes" got len)

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then
      match Unix.write fd buf off len with
      | w -> go (off + w) (len - w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

let write_frame ?(truncate = false) fd payload =
  let len = String.length payload in
  if len > max_frame then fail "frame length %d exceeds max %d" len max_frame;
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (len land 0xff));
  really_write fd hdr 0 4;
  let n = if truncate then len / 2 else len in
  really_write fd (Bytes.unsafe_of_string payload) 0 n

(* --- requests --- *)

type op = Ping | Compile | Run | Check | Stats | Shutdown

let op_name = function
  | Ping -> "ping"
  | Compile -> "compile"
  | Run -> "run"
  | Check -> "check"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "ping" -> Ping
  | "compile" -> Compile
  | "run" -> Run
  | "check" -> Check
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | s -> fail "unknown op %S" s

type request = {
  id : string;
  op : op;
  kernel : string;
  n : int;
  m : int;
  k : int;
  flow : string;
  seed : int;
  deadline_ms : int;
}

let default_request =
  {
    id = "";
    op = Ping;
    kernel = "matmul";
    n = 8;
    m = 8;
    k = 8;
    flow = "ours";
    seed = 42;
    deadline_ms = 0;
  }

let json_of_request r =
  Json.Obj
    [
      ("id", Json.Str r.id);
      ("op", Json.Str (op_name r.op));
      ("kernel", Json.Str r.kernel);
      ("n", Json.Int r.n);
      ("m", Json.Int r.m);
      ("k", Json.Int r.k);
      ("flow", Json.Str r.flow);
      ("seed", Json.Int r.seed);
      ("deadline_ms", Json.Int r.deadline_ms);
    ]

let request_of_json j =
  let str k = match Json.str k j with Some s -> s | None -> fail "missing %s" k in
  let int_or k d = match Json.int k j with Some i -> i | None -> d in
  let d = default_request in
  let id = str "id" in
  if id = "" then fail "empty request id";
  {
    id;
    op = op_of_name (str "op");
    kernel = (match Json.str "kernel" j with Some s -> s | None -> d.kernel);
    n = int_or "n" d.n;
    m = int_or "m" d.m;
    k = int_or "k" d.k;
    flow = (match Json.str "flow" j with Some s -> s | None -> d.flow);
    seed = int_or "seed" d.seed;
    deadline_ms = int_or "deadline_ms" d.deadline_ms;
  }

let payload_digest r =
  (* The id and deadline identify the attempt, not the work. *)
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [
            op_name r.op;
            r.kernel;
            string_of_int r.n;
            string_of_int r.m;
            string_of_int r.k;
            r.flow;
            string_of_int r.seed;
          ]))

(* --- responses --- *)

type status = Ok_ | Error_ | Rejected | Deadline

let status_name = function
  | Ok_ -> "ok"
  | Error_ -> "error"
  | Rejected -> "rejected"
  | Deadline -> "deadline"

let status_of_name = function
  | "ok" -> Ok_
  | "error" -> Error_
  | "rejected" -> Rejected
  | "deadline" -> Deadline
  | s -> fail "unknown status %S" s

type response = {
  r_id : string;
  status : status;
  transient : bool;
  body : (string * Json.t) list;
}

let json_of_response r =
  Json.Obj
    (("id", Json.Str r.r_id)
    :: ("status", Json.Str (status_name r.status))
    :: ("transient", Json.Bool r.transient)
    :: r.body)

let response_of_json j =
  match j with
  | Json.Obj fields ->
    let get k =
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> fail "response missing %s" k
    in
    let r_id = match get "id" with Json.Str s -> s | _ -> fail "bad id" in
    let status =
      match get "status" with
      | Json.Str s -> status_of_name s
      | _ -> fail "bad status"
    in
    let transient =
      match get "transient" with Json.Bool b -> b | _ -> fail "bad transient"
    in
    let body =
      List.filter
        (fun (k, _) -> k <> "id" && k <> "status" && k <> "transient")
        fields
    in
    { r_id; status; transient; body }
  | _ -> fail "response is not an object"

(* Timing, queueing and fault bookkeeping legitimately differ between a
   fault-free run and a faulted-but-recovered one; the semantic payload
   must not. *)
let volatile_fields =
  [
    "total_ms"; "queue_ms"; "retry_after_ms"; "degraded"; "shed"; "cached";
    "attempt"; "worker";
  ]

let stable_core r =
  let body =
    List.filter (fun (k, _) -> not (List.mem k volatile_fields)) r.body
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Json.to_string
    (Json.Obj
       (("id", Json.Str r.r_id)
       :: ("status", Json.Str (status_name r.status))
       :: body))
