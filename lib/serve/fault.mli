(** Deterministic fault injection for the serving daemon's chaos
    harness. Faults are {e armed} before the daemon starts (from the
    [--faults] flag or a test) as a set of (site, ordinal) pairs; each
    instrumented site keeps a global hit counter and {e fires} exactly
    when its counter reaches an armed ordinal — so "the 3rd request
    supervised by a worker crashes" is reproducible regardless of how
    the domain pool schedules it. *)

(** The injectable fault classes (the ISSUE 8 fault matrix). Disk-cache
    corruption has no in-process site: it is injected by scribbling on
    [.mlc-cache] files ({!corrupt_cache_entries}) and exercised through
    {!Mlc_parallel.Cache}'s quarantine path. Mid-request SIGTERM and
    kill-and-restart are injected from outside the process by the CI
    chaos job. *)
type site =
  | Worker_crash  (** raise inside the worker supervisor region *)
  | Slow_request  (** sleep before executing a request *)
  | Truncated_write  (** write half a response frame, then shut down *)

exception Injected of string
  (** Raised by a firing {!Worker_crash} site — deliberately not a
      [Diag.Diagnostic] so it exercises the supervisor's
      arbitrary-exception path. *)

(** Parse and arm a fault spec: comma-separated [site@ordinal[:param]]
    with sites [crash], [slow], [trunc]; [param] is the sleep duration
    in seconds for [slow] (default 0.2). Example:
    ["crash@3,slow@5:0.5,trunc@7"]. Raises [Invalid_argument] on a
    malformed spec. Arming replaces the previous spec and resets all
    hit counters. *)
val arm : string -> unit

(** Disarm everything and reset the hit counters. *)
val reset : unit -> unit

(** Count a hit at [site]; if armed for this ordinal, {!Worker_crash}
    raises {!Injected} and {!Slow_request} sleeps its parameter.
    {!Truncated_write} never raises or sleeps — the writer asks with
    {!fires} instead. *)
val hit : site -> unit

(** Count a hit at [site] and report whether it fires (used by the
    response writer for {!Truncated_write}). *)
val fires : site -> bool

(** Total hits recorded at a site (test observability). *)
val hits : site -> int

(** Fired injections so far, as "site@ordinal" strings in firing order
    (surfaced by the daemon's [stats] response). *)
val fired : unit -> string list

(** Chaos-harness helper: flip bytes in the middle of [n] entries (in
    sorted filename order, for determinism) of an on-disk cache
    directory, returning how many files were corrupted. The daemon must
    quarantine and recompute them. *)
val corrupt_cache_entries : dir:string -> n:int -> int
