(* Minimal JSON: exactly the subset the serving protocol emits and
   consumes. Printing is canonical (no whitespace, fields in the order
   given) so response digests are stable across processes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- printing --- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print with enough digits to round-trip; integral floats keep
   a trailing ".0" so they re-parse as Float, not Int. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> escape_to buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        print_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        print_to buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* --- parsing: recursive descent over a string cursor --- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected %c at offset %d, got %c" ch c.pos x
  | None -> fail "expected %c at offset %d, got end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "bad literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if c.pos >= String.length c.s then fail "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'u' ->
         if c.pos + 4 > String.length c.s then fail "short \\u escape";
         let hex = String.sub c.s c.pos 4 in
         c.pos <- c.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with Failure _ -> fail "bad \\u escape %S" hex
         in
         (* UTF-8 encode the code point (no surrogate-pair handling:
            the protocol never emits one). *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | e -> fail "bad escape \\%c" e);
      go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt tok with
    | Some f -> Float f
    | None -> fail "bad number %S at offset %d" tok start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then begin
      expect c '}';
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          expect c ',';
          fields ((k, v) :: acc)
        | Some '}' ->
          expect c '}';
          List.rev ((k, v) :: acc)
        | _ -> fail "expected , or } at offset %d" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then begin
      expect c ']';
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          expect c ',';
          elems (v :: acc)
        | Some ']' ->
          expect c ']';
          List.rev (v :: acc)
        | _ -> fail "expected , or ] at offset %d" c.pos
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at offset %d" c.pos;
  v

(* --- accessors --- *)

let mem k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str k v = match mem k v with Some (Str s) -> Some s | _ -> None
let int k v = match mem k v with Some (Int i) -> Some i | _ -> None

let float k v =
  match mem k v with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool k v = match mem k v with Some (Bool b) -> Some b | _ -> None
