(** The interval abstract domain over machine integers, the lattice the
    bounds checker ({!Verify.bounds_findings}) interprets index
    arithmetic in. Intervals are inclusive; [Top] is the unknown
    element. After lowering, every loop bound and affine coefficient in
    the structured IR is a compile-time constant, so the domain needs no
    widening: fixpoints are reached in one pass and the only source of
    [Top] is a genuinely data-dependent value (an [iter_args] carry, an
    unrecognised op). *)

type t =
  | Top  (** any integer *)
  | Range of int * int  (** [lo, hi], inclusive, lo <= hi *)

val top : t
val const : int -> t

(** [range lo hi] normalises a possibly-swapped pair. *)
val range : int -> int -> t

val join : t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t

(** Product interval: min/max over the four corner products. *)
val mul : t -> t -> t

(** Is every point of the interval within [lo, hi] (inclusive)?
    [`Yes] — provably inside; [`Escapes] — some concrete point lies
    outside (for the exact post-lowering constants this means a real
    out-of-bounds access exists); [`Unknown] — [Top], nothing provable. *)
val within : t -> lo:int -> hi:int -> [ `Yes | `Escapes | `Unknown ]

val to_string : t -> string
